package webharmony

import (
	"bytes"
	"strings"
	"testing"

	"webharmony/internal/stats"
)

// TestTunedSweepFacade runs a miniature tuned sweep through the public
// API and pushes the result through the report printer and CSV exporter.
func TestTunedSweepFacade(t *testing.T) {
	cfg := TinyLab()
	res := RunTunedSweep(cfg, Shopping, []SweepAxis{BrowsersAxis(60)}, 2, 1, 2, TunerOptions{Seed: 3})
	if len(res.Rows) != 2 || len(res.Cells) != 1 {
		t.Fatalf("got %d rows / %d cells, want 2 / 1", len(res.Rows), len(res.Cells))
	}
	var buf bytes.Buffer
	PrintTunedSweep(&buf, res)
	out := buf.String()
	if !strings.Contains(out, "default WIPS") || !strings.Contains(out, "paired under common random numbers") {
		t.Fatalf("tuned sweep report: %s", out)
	}
	buf.Reset()
	if err := WriteTunedSweepCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"wips_default", "wips_tuned", "gain", "ci95_gain"} {
		if !strings.Contains(buf.String(), col) {
			t.Fatalf("tuned sweep CSV missing column %q:\n%s", col, buf.String())
		}
	}
}

// TestFigure4ReplicatedFacade runs a miniature replicated Figure 4
// through the public API, then the printer and the CSV exporter.
func TestFigure4ReplicatedFacade(t *testing.T) {
	res := RunFigure4Replicated(TinyLab(), 2, 1, 2, TunerOptions{Seed: 3})
	if res.Replicates != 2 {
		t.Fatalf("Replicates = %d, want 2", res.Replicates)
	}
	var buf bytes.Buffer
	PrintFigure4Replicated(&buf, res)
	out := buf.String()
	if !strings.Contains(out, "best-of-browsing") || !strings.Contains(out, "95% CI") {
		t.Fatalf("replicated Figure 4 report: %s", out)
	}
	buf.Reset()
	if err := WriteFigure4ReplicatedCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mean_wips") || !strings.Contains(buf.String(), "ci95_wips") {
		t.Fatalf("replicated Figure 4 CSV:\n%s", buf.String())
	}
}

// TestFigure7ReplicatedFacade runs a miniature replicated reconfiguration
// experiment through the public API; the printer's moved branch is
// covered separately with a synthetic result below since the tiny run
// need not trigger a move.
func TestFigure7ReplicatedFacade(t *testing.T) {
	fo := Figure7a()
	fo.Total = 4
	fo.SwitchAt = 1
	fo.CheckAt = 2
	cfg := TinyLab()
	cfg.Browsers = 300
	cfg.Warm = 4
	res := RunFigure7Replicated(cfg, fo, 2)
	if len(res.WIPS) != fo.Total || len(res.Decisions) != 2 {
		t.Fatalf("got %d iteration summaries / %d decisions, want %d / 2",
			len(res.WIPS), len(res.Decisions), fo.Total)
	}
	var buf bytes.Buffer
	PrintFigure7Replicated(&buf, res)
	if !strings.Contains(buf.String(), "replicates that reconfigured") {
		t.Fatalf("replicated Figure 7 report: %s", buf.String())
	}
	buf.Reset()
	if err := WriteFigure7ReplicatedCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "iteration,mean_wips,sd_wips,ci95_wips") {
		t.Fatalf("replicated Figure 7 CSV:\n%s", buf.String())
	}
}

func TestPrintFigure7ReplicatedMovedBranch(t *testing.T) {
	res := &Figure7Replicated{
		Replicates:  2,
		WIPS:        []stats.Summary{stats.Summarize([]float64{100, 110})},
		Decisions:   []string{"", "proxy node 3 -> application tier"},
		Moved:       1,
		Before:      stats.Summarize([]float64{100}),
		After:       stats.Summarize([]float64{160}),
		Improvement: stats.Summarize([]float64{0.6}),
	}
	var buf bytes.Buffer
	PrintFigure7Replicated(&buf, res)
	out := buf.String()
	for _, want := range []string{
		"replicates that reconfigured: 1 of 2",
		"replicate 1: proxy node 3 -> application tier",
		"paper: +62%/+70%",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("moved-branch report missing %q:\n%s", want, out)
		}
	}
}
