package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// timingRe matches the wall-clock trailer of every experiment block; the
// duration is the one non-deterministic byte sequence in webtune output.
var timingRe = regexp.MustCompile(`done in \d+(\.\d+)?s`)

// captureRun drives the CLI with -out into a fresh directory and returns
// one document holding the normalized stdout plus every exported file
// (sorted by name), so a single golden pins the report and the CSV/JSON
// schema together.
func captureRun(t *testing.T, workers int, args ...string) string {
	t.Helper()
	dir := t.TempDir()
	full := append([]string{"-workers", fmt.Sprint(workers), "-out", dir}, args...)
	code, stdout, stderr := runCLI(t, full...)
	if code != 0 {
		t.Fatalf("webtune %s: exit code %d, stderr: %s", strings.Join(full, " "), code, stderr)
	}
	var doc strings.Builder
	doc.WriteString("=== stdout ===\n")
	doc.WriteString(timingRe.ReplaceAllString(stdout, "done in X.Xs"))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&doc, "=== file: %s ===\n%s", name, data)
	}
	return doc.String()
}

// TestGoldenReports locks the text reports and exported CSV/JSON of the
// replicated experiments against checked-in golden files, and asserts the
// whole document is byte-identical when the worker pool width changes.
// Regenerate with: go test ./cmd/webtune/ -run TestGoldenReports -update
func TestGoldenReports(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation golden test")
	}
	cases := []struct {
		name       string
		args       []string
		altWorkers int // second worker count checked for byte-equality
	}{
		{"table4", []string{"-scale", "tiny", "-iters", "8", "-replicates", "2", "table4"}, 4},
		{"sweep", []string{"-scale", "tiny", "-iters", "3", "-replicates", "2",
			"-sweep", "browsers=60,80", "sweep"}, 4},
		// The acceptance bar for the tuned sweep is byte-equality between
		// -workers 1 and -workers 8 specifically. 200 iterations buys 20
		// tuning steps, enough for the tuner to beat the default at the
		// browsers=200 point, so the golden pins a non-zero paired gain
		// (the browsers=80 point stays at zero gain, pinning that shape
		// too).
		{"tunedsweep", []string{"-scale", "tiny", "-iters", "200", "-replicates", "3",
			"-sweep", "browsers=80,200", "-tuned", "sweep"}, 8},
		{"figure4", []string{"-scale", "tiny", "-iters", "4", "-replicates", "2", "figure4"}, 4},
		{"figure7a", []string{"-scale", "tiny", "-replicates", "2", "figure7a"}, 4},
		// Figure 5 runs through the speculative lookahead engine: workers
		// change how many forked labs evaluate candidates concurrently,
		// never what gets committed. The no-shift variant pins the path
		// where speculation is never discarded.
		{"figure5", []string{"-scale", "tiny", "-iters", "16", "figure5"}, 4},
		{"figure5-noshift", []string{"-scale", "tiny", "-iters", "16", "-shift", "0", "figure5"}, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := captureRun(t, 1, tc.args...)
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("output differs from %s (regenerate with -update if the change is intended):\n--- got\n%s\n--- want\n%s",
					golden, got, want)
			}
			if again := captureRun(t, tc.altWorkers, tc.args...); again != got {
				t.Errorf("output differs between -workers 1 and -workers %d:\n--- workers=1\n%s\n--- workers=%d\n%s",
					tc.altWorkers, got, tc.altWorkers, again)
			}
		})
	}
}
