package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureTelemetry drives the CLI with -trace and -metrics into a fresh
// directory and returns both files' contents.
func captureTelemetry(t *testing.T, workers int, args ...string) (trace, metrics string) {
	t.Helper()
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	metricsPath := filepath.Join(dir, "metrics.csv")
	full := append([]string{
		"-workers", fmt.Sprint(workers), "-trace", tracePath, "-metrics", metricsPath,
	}, args...)
	code, _, stderr := runCLI(t, full...)
	if code != 0 {
		t.Fatalf("webtune %s: exit code %d, stderr: %s", strings.Join(full, " "), code, stderr)
	}
	tb, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	return string(tb), string(mb)
}

// TestGoldenTelemetry locks the trace JSONL and metrics CSV of the tiny
// replicated figure4 run against golden files, and asserts both are
// byte-identical between -workers 1 and -workers 4 — the acceptance bar
// of the telemetry layer's determinism contract.
// Regenerate with: go test ./cmd/webtune/ -run TestGoldenTelemetry -update
func TestGoldenTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation golden test")
	}
	args := []string{"-scale", "tiny", "-iters", "4", "-replicates", "2", "figure4"}
	trace, metrics := captureTelemetry(t, 1, args...)

	for _, g := range []struct{ name, got string }{
		{"figure4-trace.golden", trace},
		{"figure4-metrics.golden", metrics},
	} {
		golden := filepath.Join("testdata", g.name)
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(golden, []byte(g.got), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden (regenerate with -update): %v", err)
		}
		if g.got != string(want) {
			t.Errorf("%s differs from golden (regenerate with -update if the change is intended)", g.name)
		}
	}

	trace4, metrics4 := captureTelemetry(t, 4, args...)
	if trace4 != trace {
		t.Error("trace differs between -workers 1 and -workers 4")
	}
	if metrics4 != metrics {
		t.Error("metrics differ between -workers 1 and -workers 4")
	}
}

// TestTelemetrySinkFailFast asserts an uncreatable output file aborts the
// run before any simulation starts.
func TestTelemetrySinkFailFast(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "no-such-dir")
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"trace", []string{"-trace", filepath.Join(missing, "t.jsonl"), "table1"}, "-trace"},
		{"metrics", []string{"-metrics", filepath.Join(missing, "m.csv"), "table1"}, "-metrics"},
		{"out", []string{"-out", filepath.Join(blocker, "dir"), "table1"}, "-out"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stdout, stderr := runCLI(t, tc.args...)
			if code != 2 {
				t.Errorf("exit code = %d, want 2 (stderr: %s)", code, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Errorf("stderr = %q, want it to name %q", stderr, tc.want)
			}
			if strings.Contains(stdout, "===") {
				t.Errorf("experiment ran despite the bad sink; stdout: %q", stdout)
			}
		})
	}
}
