package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMemoByteEquality is the acceptance bar of the memoization work:
// for each hermetic experiment, output with the cache on must be
// byte-identical to output with the cache off, at worker counts 1, 4
// and 8. captureRun already normalizes the one non-deterministic byte
// sequence (wall-clock durations).
func TestMemoByteEquality(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation equality test")
	}
	cases := []struct {
		name string
		args []string
	}{
		{"figure4", []string{"-scale", "tiny", "-iters", "6", "figure4"}},
		{"table4", []string{"-scale", "tiny", "-iters", "8", "table4"}},
		{"figure5", []string{"-scale", "tiny", "-iters", "16", "figure5"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := captureRun(t, 1, append([]string{"-memo=false"}, tc.args...)...)
			for _, workers := range []int{1, 4, 8} {
				if got := captureRun(t, workers, tc.args...); got != ref {
					t.Errorf("memo on, workers=%d differs from memo off:\n--- memo on\n%s\n--- memo off\n%s",
						workers, got, ref)
				}
			}
		})
	}
}

// TestEvalStatsReport checks -evalstats prints the counter line, that
// the counters are deterministic across reruns, and that a run with
// -memo=false says so instead.
func TestEvalStatsReport(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	args := []string{"-scale", "tiny", "-iters", "8", "-evalstats", "table4"}
	statsLine := func(stdout string) string {
		for _, line := range strings.Split(stdout, "\n") {
			if strings.HasPrefix(line, "evalcache ") {
				return line
			}
		}
		return ""
	}

	code, stdout, stderr := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	line := statsLine(stdout)
	if line == "" {
		t.Fatalf("no evalcache line in stdout:\n%s", stdout)
	}
	for _, field := range []string{"lookups=", "hits=", "misses=", "entries=", "bytes=", "hit_rate="} {
		if !strings.Contains(line, field) {
			t.Errorf("stats line %q missing %s", line, field)
		}
	}
	if strings.Contains(line, "hits=0 ") {
		t.Errorf("table4 produced no cache hits: %q", line)
	}

	_, again, _ := runCLI(t, args...)
	if statsLine(again) != line {
		t.Errorf("stats not deterministic:\n%q\n%q", statsLine(again), line)
	}

	code, stdout, stderr = runCLI(t, "-scale", "tiny", "-iters", "8", "-evalstats", "-memo=false", "table4")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "evalcache off") {
		t.Errorf("-memo=false -evalstats did not report the cache as off:\n%s", stdout)
	}
}

// TestEvalCachePersistRoundTrip checks -evalcache saves a snapshot, that
// a warm-started rerun simulates nothing new (misses=0, hit_rate=1) yet
// prints identical results, and that the snapshot bytes are stable.
func TestEvalCachePersistRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	path := filepath.Join(t.TempDir(), "cache.json")
	args := []string{"-scale", "tiny", "-iters", "8", "-evalstats", "-evalcache", path, "table4"}

	code, cold, stderr := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("cold run: exit code = %d, stderr: %s", code, stderr)
	}
	snap1, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no snapshot written: %v", err)
	}

	code, warm, stderr := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("warm run: exit code = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(warm, "misses=0") || !strings.Contains(warm, "hit_rate=1.0000") {
		t.Errorf("warm run simulated new evaluations:\n%s", warm)
	}
	normalize := func(s string) string { return timingRe.ReplaceAllString(s, "done in X.Xs") }
	strip := func(s string) string { // the stats line legitimately differs cold vs warm
		var keep []string
		for _, line := range strings.Split(normalize(s), "\n") {
			if !strings.HasPrefix(line, "evalcache ") {
				keep = append(keep, line)
			}
		}
		return strings.Join(keep, "\n")
	}
	if strip(warm) != strip(cold) {
		t.Errorf("warm-started results differ:\n--- cold\n%s\n--- warm\n%s", cold, warm)
	}

	snap2, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(snap1) != string(snap2) {
		t.Error("re-saved snapshot differs from the original")
	}

	if code, _, stderr := runCLI(t, "-scale", "tiny", "-evalcache", filepath.Join(path, "nope"), "table1"); code != 2 || !strings.Contains(stderr, "-evalcache") {
		t.Errorf("unreadable cache path: code=%d stderr=%q", code, stderr)
	}
	if err := os.WriteFile(path, []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, stderr := runCLI(t, "-scale", "tiny", "-evalcache", path, "table1"); code != 2 || !strings.Contains(stderr, "version") {
		t.Errorf("bad snapshot version: code=%d stderr=%q", code, stderr)
	}
}

// TestEvalStatsBypassedWithTelemetry pins the telemetry interaction: an
// instrumented run must say memoization was bypassed.
func TestEvalStatsBypassedWithTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	code, stdout, stderr := runCLI(t,
		"-scale", "tiny", "-iters", "8", "-evalstats", "-trace", trace, "table4")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "bypassed while telemetry is attached") {
		t.Errorf("missing bypass notice:\n%s", stdout)
	}
	if !strings.Contains(stdout, "evalcache lookups=0") {
		t.Errorf("instrumented run consulted the cache:\n%s", stdout)
	}
}
