package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI drives the CLI in-process and returns (exit code, stdout, stderr).
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestFlagAndArgumentErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring expected on stderr
	}{
		{"no-experiment", nil, "usage: webtune"},
		{"two-experiments", []string{"table1", "table4"}, "usage: webtune"},
		{"unknown-experiment", []string{"frobnicate"}, `unknown experiment "frobnicate"`},
		{"unknown-flag", []string{"-no-such-flag", "table1"}, "flag provided but not defined"},
		{"bad-scale", []string{"-scale", "huge", "table1"}, `unknown scale "huge"`},
		{"bad-replicates", []string{"-replicates", "0", "table4"}, "-replicates must be >= 1"},
		{"bad-workers-value", []string{"-workers", "x", "table1"}, "invalid value"},
		{"bad-sweep-spec", []string{"-sweep", "cpus=1,2", "sweep"}, `unknown axis "cpus"`},
		{"sweep-without-grid", []string{"sweep"}, "needs a grid"},
		{"tuned-sweep-without-grid", []string{"-tuned", "sweep"}, "needs a grid"},
		{"tuned-outside-sweep", []string{"-tuned", "table1"}, "-tuned only applies to the sweep experiment"},
		{"tuned-nonfinite-think", []string{"-tuned", "-sweep", "think=NaN", "sweep"}, "bad think value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code != 2 {
				t.Errorf("exit code = %d, want 2 (stderr: %s)", code, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Errorf("stderr = %q, want it to contain %q", stderr, tc.want)
			}
		})
	}
}

// TestFlagsParse asserts the knob flags are accepted and reach the run:
// table1 needs no simulation, so this stays instant.
func TestFlagsParse(t *testing.T) {
	code, stdout, stderr := runCLI(t,
		"-replicates", "3", "-workers", "2", "-seed", "7",
		"-sweep", "browsers=100,200", "table1")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "=== table1 ===") || !strings.Contains(stdout, "Browsing") {
		t.Errorf("stdout missing table1 output: %q", stdout)
	}
}

// TestSweepExperimentSmoke runs the sweep experiment end to end on a
// minimal grid and checks the long-form CSV lands in -out.
func TestSweepExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	dir := t.TempDir()
	code, stdout, stderr := runCLI(t,
		"-sweep", "browsers=60", "-iters", "25", "-workers", "2", "-out", dir, "sweep")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "browsers") || !strings.Contains(stdout, "mean WIPS") {
		t.Errorf("stdout missing sweep table: %q", stdout)
	}
	csv, err := os.ReadFile(filepath.Join(dir, "sweep.csv"))
	if err != nil {
		t.Fatalf("sweep.csv not exported: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(csv)), "\n")
	if len(lines) != 2 || lines[0] != "browsers,replicate,wips" {
		t.Errorf("sweep.csv = %q, want a header plus one (combo, replicate) row", string(csv))
	}
	if _, err := os.Stat(filepath.Join(dir, "sweep.json")); err != nil {
		t.Errorf("sweep.json not exported: %v", err)
	}
}
