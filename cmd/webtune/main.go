// Command webtune regenerates the tables and figures of "Automated
// Cluster-Based Web Service Performance Tuning" (HPDC 2004) on the
// simulated cluster.
//
// Usage:
//
//	webtune [flags] <experiment>
//
// Experiments:
//
//	table1    TPC-W workload mixes
//	sec3a     §III.A single-workload tuning statistics
//	figure4   cross-workload configuration matrix
//	table3    tuned parameter values per workload
//	figure5   responsiveness to changing workloads
//	table4    cluster tuning methods (default/duplication/partitioning)
//	figure7a  reconfiguration: proxy node → application tier
//	figure7b  reconfiguration: application node → proxy tier
//	adaptive  the full §IV loop: tuning + periodic reconfiguration
//	sweep     parameter sweep over lab knobs (requires -sweep; add -tuned
//	          to run a tuning session against the default configuration at
//	          every grid point, paired under common random numbers)
//	all       everything above
//
// Flags select the scale (-scale tiny|quick|standard|paper), iteration
// counts, the random seed, the parallel fan-out width (-workers, default
// GOMAXPROCS), the replicate count (-replicates R reruns table4, adaptive,
// figure4, figure7a/b and sweep on R independently seeded labs, reporting
// mean ± σ ± Student-t 95% CI) and the sweep grid
// (-sweep "browsers=400,550;think=0.3,0.6"). Results are bit-for-bit
// identical at any -workers value; see -help.
//
// Evaluations are hermetic and memoized by default (-memo): exact
// configuration repeats are served from a content-addressed cache with
// no observable difference. -evalstats prints the cache counters,
// -evalcache FILE persists the cache across runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"webharmony"
	"webharmony/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies surfaced: argv without the program
// name, the two output streams, and the exit code as the return value, so
// tests can drive the CLI in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("webtune", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scale      = fs.String("scale", "quick", "experiment scale: tiny, quick, standard or paper")
		iters      = fs.Int("iters", 0, "tuning iterations (0 = per-scale default)")
		seed       = fs.Uint64("seed", 1, "random seed")
		guard      = fs.Float64("guard", 0, "extreme-value guard factor (0 disables)")
		outDir     = fs.String("out", "", "also write results as JSON and CSV into this directory")
		sessions   = fs.Bool("sessions", false, "drive browsers through the TPC-W session graph")
		workers    = fs.Int("workers", 0, "parallel workers for independent experiment units (0 = GOMAXPROCS); results are identical at any worker count")
		replicates = fs.Int("replicates", 1, "independent replicates for table4/adaptive/figure4/figure7a/figure7b/sweep; seeds derive per replicate, results report mean ± σ ± 95% CI")
		sweepSpec  = fs.String("sweep", "", `sweep grid for the sweep experiment, e.g. "browsers=400,550;think=0.3,0.6;shape=1/1/1,2/2/2"`)
		tuned      = fs.Bool("tuned", false, "run a tuning session at every sweep grid point and report the paired default-vs-tuned gain (sweep experiment only)")
		shift      = fs.Float64("shift", 0.25, "figure5 workload-shift detection factor: sustained relative deviation from the remembered best that restarts the search (0 disables detection)")
		trace      = fs.String("trace", "", "write the tuner step trace (one JSON line per simplex move, restart or node move) to this file")
		metrics    = fs.String("metrics", "", "write the per-tier metrics timeseries (utilization, queues, hit ratio, pools) as CSV to this file")
		simprofile = fs.String("simprofile", "", "write the simnet event-loop profile as folded stacks (flamegraph.pl/speedscope input) to this file and print a rollup; byte-identical at any -workers")
		latency    = fs.String("latency", "", "write per-(interaction, tier) latency histograms with exact queue-vs-service attribution windows as CSV to this file and print a bottleneck rollup; byte-identical at any -workers")
		spansOut   = fs.String("spans", "", "write sampled per-request span trees (one JSON line per sampled page) to this file; byte-identical at any -workers")
		spanEvery  = fs.Int("span-sample", 997, "with -spans, dump every n-th page's span tree (deterministic systematic sample)")
		memo       = fs.Bool("memo", true, "memoize hermetic evaluations in a content-addressed cache; results are byte-identical with and without it (bypassed while telemetry flags are active)")
		cacheFile  = fs.String("evalcache", "", "persist the evaluation cache to this JSON file: load it before the run if it exists, save it after (warm-starts later runs)")
		evalStats  = fs.Bool("evalstats", false, "print the evaluation-cache counters (lookups, hits, misses, entries, bytes, hit rate) after the run")
	)
	usage := func() {
		fmt.Fprintln(stderr, "usage: webtune [flags] <table1|sec3a|figure4|table3|figure5|table4|figure7a|figure7b|adaptive|sweep|all>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		usage()
		return 2
	}
	if *replicates < 1 {
		fmt.Fprintf(stderr, "webtune: -replicates must be >= 1, got %d\n", *replicates)
		return 2
	}

	cfg, defIters, err := labFor(*scale)
	if err != nil {
		fmt.Fprintf(stderr, "webtune: %v\n", err)
		return 2
	}
	cfg.Seed = *seed
	cfg.Sessions = *sessions
	cfg.Workers = *workers

	// The evaluation cache only skips exact re-simulations, so it is on by
	// default; -evalcache warm-starts it from (and saves it back to) disk.
	var cache *webharmony.EvalCache
	if *memo || *cacheFile != "" {
		cache = webharmony.NewEvalCache()
		cfg.EvalCache = cache
	}
	if *cacheFile != "" {
		data, err := os.ReadFile(*cacheFile)
		switch {
		case err == nil:
			snap, err := webharmony.LoadEvalCacheSnapshot(data)
			if err != nil {
				fmt.Fprintf(stderr, "webtune: -evalcache: %v\n", err)
				return 2
			}
			cache.AddSnapshot(snap)
		case !os.IsNotExist(err):
			fmt.Fprintf(stderr, "webtune: -evalcache: %v\n", err)
			return 2
		}
	}
	n := *iters
	if n == 0 {
		n = defIters
	}
	R := *replicates
	opts := webharmony.TunerOptions{Seed: *seed, GuardFactor: *guard}

	what := fs.Arg(0)
	known := map[string]bool{"table1": true, "sec3a": true, "figure4": true, "table3": true,
		"figure5": true, "table4": true, "figure7a": true, "figure7b": true,
		"adaptive": true, "sweep": true, "all": true}
	if !known[what] {
		fmt.Fprintf(stderr, "webtune: unknown experiment %q\n", what)
		return 2
	}
	var axes []webharmony.SweepAxis
	if *sweepSpec != "" {
		if axes, err = webharmony.ParseSweepSpec(*sweepSpec); err != nil {
			fmt.Fprintf(stderr, "webtune: %v\n", err)
			return 2
		}
	} else if what == "sweep" {
		fmt.Fprintln(stderr, `webtune: the sweep experiment needs a grid, e.g. -sweep "browsers=400,550;think=0.3,0.6"`)
		return 2
	}
	if *tuned && what != "sweep" && what != "all" {
		fmt.Fprintf(stderr, "webtune: -tuned only applies to the sweep experiment, not %q\n", what)
		return 2
	}

	// Create every requested output sink up front: an unwritable path must
	// fail before hours of simulation, not after.
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "webtune: -out: %v\n", err)
			return 2
		}
	}
	var (
		collector   *webharmony.TelemetryCollector
		traceFile   *os.File
		metricsFile *os.File
		profFile    *os.File
		latencyFile *os.File
		spansFile   *os.File
	)
	if *trace != "" || *metrics != "" || *simprofile != "" || *latency != "" || *spansOut != "" {
		collector = webharmony.NewTelemetryCollector()
		cfg.Telemetry = collector
		if *trace != "" {
			if traceFile, err = os.Create(*trace); err != nil {
				fmt.Fprintf(stderr, "webtune: -trace: %v\n", err)
				return 2
			}
		}
		if *metrics != "" {
			if metricsFile, err = os.Create(*metrics); err != nil {
				fmt.Fprintf(stderr, "webtune: -metrics: %v\n", err)
				return 2
			}
		}
		if *simprofile != "" {
			cfg.SimProfile = true
			if profFile, err = os.Create(*simprofile); err != nil {
				fmt.Fprintf(stderr, "webtune: -simprofile: %v\n", err)
				return 2
			}
		}
		if *latency != "" {
			cfg.Spans = true
			if latencyFile, err = os.Create(*latency); err != nil {
				fmt.Fprintf(stderr, "webtune: -latency: %v\n", err)
				return 2
			}
		}
		if *spansOut != "" {
			cfg.Spans = true
			cfg.SpanSampleEvery = *spanEvery
			if spansFile, err = os.Create(*spansOut); err != nil {
				fmt.Fprintf(stderr, "webtune: -spans: %v\n", err)
				return 2
			}
		}
	}

	run := func(name string, fn func()) {
		if what != name && what != "all" {
			return
		}
		start := time.Now()
		fmt.Fprintf(stdout, "=== %s ===\n", name)
		fn()
		fmt.Fprintf(stdout, "--- %s done in %.1fs ---\n\n", name, time.Since(start).Seconds())
	}

	run("table1", func() { webharmony.PrintTable1(stdout) })

	run("sec3a", func() {
		// The two workload runs are independent; fan them out and print
		// in the fixed order afterwards.
		ws := []webharmony.Workload{webharmony.Browsing, webharmony.Ordering}
		results := make([]*webharmony.SingleWorkloadResult, len(ws))
		webharmony.ForEach(cfg.Workers, len(ws), func(i int) {
			c := cfg.WithTelemetryUnit("sec3a:" + ws[i].String())
			results[i] = webharmony.TuneWorkload(c, ws[i], n, max(6, n/10), opts)
		})
		for _, res := range results {
			webharmony.PrintSection3A(stdout, res)
		}
	})

	var fig4 *webharmony.Figure4Result
	ensureFig4 := func() *webharmony.Figure4Result {
		if fig4 == nil {
			c := cfg.WithTelemetryUnit("figure4")
			if R > 1 {
				// The replicated figure4 path owns the "figure4" recorder
				// names; this single run then only serves table3.
				c = cfg.WithTelemetryUnit("table3")
			}
			fig4 = webharmony.RunFigure4(c, n, max(5, n/12), opts)
		}
		return fig4
	}
	run("figure4", func() {
		if R > 1 {
			res := webharmony.RunFigure4Replicated(cfg.WithTelemetryUnit("figure4"), n, max(5, n/12), R, opts)
			webharmony.PrintFigure4Replicated(stdout, res)
			export(*outDir, stderr, "figure4", res, func(w io.Writer) error {
				return webharmony.WriteFigure4ReplicatedCSV(w, res)
			})
			return
		}
		res := ensureFig4()
		webharmony.PrintFigure4(stdout, res)
		export(*outDir, stderr, "figure4", res, func(w io.Writer) error {
			return webharmony.WriteFigure4CSV(w, res)
		})
	})
	run("table3", func() { webharmony.PrintTable3(stdout, ensureFig4()) })

	run("figure5", func() {
		seq := []webharmony.Workload{webharmony.Browsing, webharmony.Shopping, webharmony.Ordering}
		phase := max(10, n/4)
		shiftOpts := opts
		shiftOpts.ShiftFactor = *shift
		res := webharmony.RunFigure5(cfg.WithTelemetryUnit("figure5"), seq, phase, 4, shiftOpts)
		webharmony.PrintFigure5(stdout, res)
		export(*outDir, stderr, "figure5", res, func(w io.Writer) error {
			return webharmony.WriteFigure5CSV(w, res)
		})
	})

	run("table4", func() {
		c := cfg.WithTelemetryUnit("table4")
		c.Browsers = cfg.Browsers * 5 / 2 // 6-node cluster, larger population
		if R > 1 {
			res := webharmony.RunTable4Replicated(c, n, R, opts)
			webharmony.PrintTable4Replicated(stdout, res)
			export(*outDir, stderr, "table4", res, func(w io.Writer) error {
				return webharmony.WriteTable4ReplicatedCSV(w, res)
			})
			return
		}
		res := webharmony.RunTable4(c, n, opts)
		webharmony.PrintTable4(stdout, res)
		export(*outDir, stderr, "table4", res, func(w io.Writer) error {
			return webharmony.WriteTable4CSV(w, res)
		})
	})

	fig7cfg := cfg
	fig7cfg.Browsers = cfg.Browsers * 7 / 2 // the 7-node cluster serves ~3.5x the clients
	if fig7cfg.Warm < 12 {
		fig7cfg.Warm = 12 // re-warm caches fully after each restart
	}
	// The requested Figure 7 variants run as one parallel fan-out; with
	// "all" both variants compute concurrently on the worker pool.
	var (
		fig7names = []string{"figure7a", "figure7b"}
		fig7opts  = []webharmony.Figure7Options{webharmony.Figure7a(), webharmony.Figure7b()}
		fig7res   map[string]*webharmony.Figure7Result
	)
	ensureFig7 := func() map[string]*webharmony.Figure7Result {
		if fig7res == nil {
			var names []string
			var fos []webharmony.Figure7Options
			for i, name := range fig7names {
				if what == name || what == "all" {
					names = append(names, name)
					fos = append(fos, fig7opts[i])
				}
			}
			c := fig7cfg.WithTelemetryUnit("figure7")
			if len(names) == 1 {
				c = fig7cfg.WithTelemetryUnit(names[0])
			}
			results := webharmony.RunFigure7Variants(c, fos...)
			fig7res = make(map[string]*webharmony.Figure7Result, len(names))
			for i, name := range names {
				fig7res[name] = results[i]
			}
		}
		return fig7res
	}
	showFig7 := func(name string) {
		if R > 1 {
			fo := fig7opts[0]
			if name == "figure7b" {
				fo = fig7opts[1]
			}
			res := webharmony.RunFigure7Replicated(fig7cfg.WithTelemetryUnit(name), fo, R)
			webharmony.PrintFigure7Replicated(stdout, res)
			export(*outDir, stderr, name, res, func(w io.Writer) error {
				return webharmony.WriteFigure7ReplicatedCSV(w, res)
			})
			return
		}
		res := ensureFig7()[name]
		webharmony.PrintFigure7(stdout, res)
		export(*outDir, stderr, name, res, func(w io.Writer) error {
			return webharmony.WriteFigure7CSV(w, res)
		})
		if *outDir != "" && res.Timeline != nil {
			f, err := os.Create(filepath.Join(*outDir, name+"-utilization.csv"))
			if err == nil {
				defer f.Close()
				if err := res.Timeline.WriteCSV(f); err != nil {
					fmt.Fprintf(stderr, "webtune: %v\n", err)
				}
			}
		}
	}
	run("figure7a", func() { showFig7("figure7a") })
	run("figure7b", func() { showFig7("figure7b") })

	run("adaptive", func() {
		// The full §IV loop: tuning every iteration, reconfiguration
		// checks at a lower frequency, on a mis-provisioned cluster.
		c := fig7cfg.WithTelemetryUnit("adaptive")
		c.ProxyNodes, c.AppNodes, c.DBNodes = 2, 4, 1
		if c.Warm < 12 {
			c.Warm = 12
		}
		aOpts := webharmony.AdaptiveOptions{
			Strategy:      webharmony.StrategyDuplication,
			Tuner:         opts,
			ReconfigEvery: 8,
		}
		const aIters = 24
		if R > 1 {
			// R independent replicates, fanned out in parallel.
			results := webharmony.RunAdaptiveReplicated(c, webharmony.Browsing, aIters, R, aOpts)
			printAdaptiveReplicated(stdout, results)
			export(*outDir, stderr, "adaptive", results, nil)
			return
		}
		lab := webharmony.NewLab(c, webharmony.Browsing)
		res := webharmony.RunAdaptive(lab, aIters, aOpts)
		printAdaptive(stdout, res)
		export(*outDir, stderr, "adaptive", res, nil)
	})

	run("sweep", func() {
		if axes == nil {
			return // "all" without a -sweep grid
		}
		if *tuned {
			res := webharmony.RunTunedSweep(cfg.WithTelemetryUnit("tunedsweep"), webharmony.Shopping, axes, R, max(3, n/25), max(6, n/10), opts)
			webharmony.PrintTunedSweep(stdout, res)
			export(*outDir, stderr, "tunedsweep", res, func(w io.Writer) error {
				return webharmony.WriteTunedSweepCSV(w, res)
			})
			return
		}
		res := webharmony.RunSweep(cfg.WithTelemetryUnit("sweep"), webharmony.Shopping, axes, R, max(3, n/25))
		webharmony.PrintSweep(stdout, res)
		export(*outDir, stderr, "sweep", res, func(w io.Writer) error {
			return webharmony.WriteSweepCSV(w, res)
		})
	})

	// Settle the evaluation cache first: save the snapshot, report the
	// counters, and hand them to the telemetry collector for export.
	if cache != nil {
		if collector != nil {
			collector.SetEvalStats(webharmony.TelemetryEvalStats(cache.Stats()))
		}
		if *cacheFile != "" {
			data, err := cache.Snapshot().Marshal()
			if err == nil {
				err = os.WriteFile(*cacheFile, data, 0o644)
			}
			if err != nil {
				fmt.Fprintf(stderr, "webtune: -evalcache: %v\n", err)
				return 1
			}
		}
	}
	if *evalStats {
		switch {
		case cache == nil:
			fmt.Fprintln(stdout, "evalcache off (-memo=false)")
		default:
			if collector != nil {
				// Memoization is bypassed while telemetry is attached (a hit
				// would skip per-evaluation recorder registration), so the
				// counters only reflect uninstrumented evaluations — none,
				// for a fully instrumented run.
				fmt.Fprintln(stdout, "evalcache bypassed while telemetry is attached")
			}
			if err := webharmony.WriteEvalStats(stdout, cache.Stats()); err != nil {
				fmt.Fprintf(stderr, "webtune: -evalstats: %v\n", err)
				return 1
			}
		}
	}

	// Flush the telemetry sinks last, once every experiment has finished.
	if traceFile != nil {
		err := collector.WriteTrace(traceFile)
		if cerr := traceFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(stderr, "webtune: -trace: %v\n", err)
			return 1
		}
	}
	if metricsFile != nil {
		err := collector.WriteMetrics(metricsFile)
		if cerr := metricsFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(stderr, "webtune: -metrics: %v\n", err)
			return 1
		}
	}
	if profFile != nil {
		err := collector.WriteSimProfile(profFile)
		if cerr := profFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(stderr, "webtune: -simprofile: %v\n", err)
			return 1
		}
		if err := collector.WriteSimProfileRollup(stdout); err != nil {
			fmt.Fprintf(stderr, "webtune: -simprofile: %v\n", err)
			return 1
		}
	}
	if latencyFile != nil {
		err := collector.WriteLatency(latencyFile)
		if cerr := latencyFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(stderr, "webtune: -latency: %v\n", err)
			return 1
		}
		if err := collector.WriteLatencyRollup(stdout); err != nil {
			fmt.Fprintf(stderr, "webtune: -latency: %v\n", err)
			return 1
		}
	}
	if spansFile != nil {
		err := collector.WriteSpans(spansFile)
		if cerr := spansFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(stderr, "webtune: -spans: %v\n", err)
			return 1
		}
	}
	return 0
}

// printAdaptive renders one adaptive run's per-iteration series.
func printAdaptive(w io.Writer, res *webharmony.AdaptiveResult) {
	for i, wips := range res.WIPS {
		marker := ""
		for _, mv := range res.Moves {
			if mv.Iteration == i {
				marker = "   <- " + mv.Decision.String()
			}
		}
		fmt.Fprintf(w, "iter %2d  layout %s  %7.1f WIPS%s\n", i+1, res.Layouts[i], wips, marker)
	}
}

// printAdaptiveReplicated renders one summary line per replicate (final
// layout, second-half mean WIPS, moves) and the across-replicate summary.
func printAdaptiveReplicated(w io.Writer, results []*webharmony.AdaptiveResult) {
	steady := make([]float64, len(results))
	for r, res := range results {
		half := res.WIPS[len(res.WIPS)/2:]
		sum := 0.0
		for _, v := range half {
			sum += v
		}
		steady[r] = sum / float64(len(half))
		fmt.Fprintf(w, "replicate %d: final layout %s, steady %7.1f WIPS, %d move(s)\n",
			r, res.Layouts[len(res.Layouts)-1], steady[r], len(res.Moves))
	}
	s := stats.Summarize(steady)
	fmt.Fprintf(w, "steady-state WIPS across %d replicates: %.1f ± %.1f (95%% CI ±%.1f)\n",
		len(results), s.Mean, s.StdDev, s.CI95)
}

// labFor maps a scale name to a lab configuration and default iterations.
func labFor(scale string) (webharmony.LabConfig, int, error) {
	switch scale {
	case "tiny":
		return webharmony.TinyLab(), 16, nil
	case "quick":
		return webharmony.QuickLab(), 80, nil
	case "standard":
		return webharmony.StandardLab(), 200, nil
	case "paper":
		return webharmony.PaperLab(), 200, nil
	default:
		return webharmony.LabConfig{}, 0, fmt.Errorf("unknown scale %q", scale)
	}
}

// export writes a result as <dir>/<name>.json and, when csv is non-nil,
// <dir>/<name>.csv. A missing -out directory disables export.
func export(dir string, stderr io.Writer, name string, result any, csv func(io.Writer) error) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(stderr, "webtune: %v\n", err)
		return
	}
	jf, err := os.Create(filepath.Join(dir, name+".json"))
	if err != nil {
		fmt.Fprintf(stderr, "webtune: %v\n", err)
		return
	}
	defer jf.Close()
	if err := webharmony.WriteJSON(jf, result); err != nil {
		fmt.Fprintf(stderr, "webtune: %v\n", err)
	}
	if csv == nil {
		return
	}
	cf, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		fmt.Fprintf(stderr, "webtune: %v\n", err)
		return
	}
	defer cf.Close()
	if err := csv(cf); err != nil {
		fmt.Fprintf(stderr, "webtune: %v\n", err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
