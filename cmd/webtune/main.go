// Command webtune regenerates the tables and figures of "Automated
// Cluster-Based Web Service Performance Tuning" (HPDC 2004) on the
// simulated cluster.
//
// Usage:
//
//	webtune [flags] <experiment>
//
// Experiments:
//
//	table1    TPC-W workload mixes
//	sec3a     §III.A single-workload tuning statistics
//	figure4   cross-workload configuration matrix
//	table3    tuned parameter values per workload
//	figure5   responsiveness to changing workloads
//	table4    cluster tuning methods (default/duplication/partitioning)
//	figure7a  reconfiguration: proxy node → application tier
//	figure7b  reconfiguration: application node → proxy tier
//	adaptive  the full §IV loop: tuning + periodic reconfiguration
//	all       everything above
//
// Flags select the scale (-scale quick|standard|paper), iteration counts,
// the random seed and the parallel fan-out width (-workers, default
// GOMAXPROCS — results are bit-for-bit identical at any width); see -help.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"webharmony"
)

func main() {
	var (
		scale    = flag.String("scale", "quick", "experiment scale: quick, standard or paper")
		iters    = flag.Int("iters", 0, "tuning iterations (0 = per-scale default)")
		seed     = flag.Uint64("seed", 1, "random seed")
		guard    = flag.Float64("guard", 0, "extreme-value guard factor (0 disables)")
		outDir   = flag.String("out", "", "also write results as JSON and CSV into this directory")
		sessions = flag.Bool("sessions", false, "drive browsers through the TPC-W session graph")
		workers  = flag.Int("workers", 0, "parallel workers for independent experiment units (0 = GOMAXPROCS); results are identical at any worker count")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: webtune [flags] <table1|sec3a|figure4|table3|figure5|table4|figure7a|figure7b|adaptive|all>")
		flag.PrintDefaults()
		os.Exit(2)
	}

	cfg, defIters := labFor(*scale)
	cfg.Seed = *seed
	cfg.Sessions = *sessions
	cfg.Workers = *workers
	n := *iters
	if n == 0 {
		n = defIters
	}
	opts := webharmony.TunerOptions{Seed: *seed, GuardFactor: *guard}

	what := flag.Arg(0)
	run := func(name string, fn func()) {
		if what != name && what != "all" {
			return
		}
		start := time.Now()
		fmt.Printf("=== %s ===\n", name)
		fn()
		fmt.Printf("--- %s done in %.1fs ---\n\n", name, time.Since(start).Seconds())
	}

	known := map[string]bool{"table1": true, "sec3a": true, "figure4": true, "table3": true,
		"figure5": true, "table4": true, "figure7a": true, "figure7b": true,
		"adaptive": true, "all": true}
	if !known[what] {
		fmt.Fprintf(os.Stderr, "webtune: unknown experiment %q\n", what)
		os.Exit(2)
	}

	run("table1", func() { webharmony.PrintTable1(os.Stdout) })

	run("sec3a", func() {
		for _, w := range []webharmony.Workload{webharmony.Browsing, webharmony.Ordering} {
			res := webharmony.TuneWorkload(cfg, w, n, max(6, n/10), opts)
			webharmony.PrintSection3A(os.Stdout, res)
		}
	})

	var fig4 *webharmony.Figure4Result
	ensureFig4 := func() *webharmony.Figure4Result {
		if fig4 == nil {
			fig4 = webharmony.RunFigure4(cfg, n, max(5, n/12), opts)
		}
		return fig4
	}
	run("figure4", func() {
		res := ensureFig4()
		webharmony.PrintFigure4(os.Stdout, res)
		export(*outDir, "figure4", res, func(w io.Writer) error {
			return webharmony.WriteFigure4CSV(w, res)
		})
	})
	run("table3", func() { webharmony.PrintTable3(os.Stdout, ensureFig4()) })

	run("figure5", func() {
		seq := []webharmony.Workload{webharmony.Browsing, webharmony.Shopping, webharmony.Ordering}
		phase := max(10, n/4)
		shiftOpts := opts
		shiftOpts.ShiftFactor = 0.25
		res := webharmony.RunFigure5(cfg, seq, phase, 4, shiftOpts)
		webharmony.PrintFigure5(os.Stdout, res)
		export(*outDir, "figure5", res, func(w io.Writer) error {
			return webharmony.WriteFigure5CSV(w, res)
		})
	})

	run("table4", func() {
		c := cfg
		c.Browsers = cfg.Browsers * 5 / 2 // 6-node cluster, larger population
		res := webharmony.RunTable4(c, n, opts)
		webharmony.PrintTable4(os.Stdout, res)
		export(*outDir, "table4", res, func(w io.Writer) error {
			return webharmony.WriteTable4CSV(w, res)
		})
	})

	fig7cfg := cfg
	fig7cfg.Browsers = cfg.Browsers * 7 / 2 // the 7-node cluster serves ~3.5x the clients
	if fig7cfg.Warm < 12 {
		fig7cfg.Warm = 12 // re-warm caches fully after each restart
	}
	// The requested Figure 7 variants run as one parallel fan-out; with
	// "all" both variants compute concurrently on the worker pool.
	var (
		fig7names = []string{"figure7a", "figure7b"}
		fig7opts  = []webharmony.Figure7Options{webharmony.Figure7a(), webharmony.Figure7b()}
		fig7res   map[string]*webharmony.Figure7Result
	)
	ensureFig7 := func() map[string]*webharmony.Figure7Result {
		if fig7res == nil {
			var names []string
			var fos []webharmony.Figure7Options
			for i, name := range fig7names {
				if what == name || what == "all" {
					names = append(names, name)
					fos = append(fos, fig7opts[i])
				}
			}
			results := webharmony.RunFigure7Variants(fig7cfg, fos...)
			fig7res = make(map[string]*webharmony.Figure7Result, len(names))
			for i, name := range names {
				fig7res[name] = results[i]
			}
		}
		return fig7res
	}
	showFig7 := func(name string) {
		res := ensureFig7()[name]
		webharmony.PrintFigure7(os.Stdout, res)
		export(*outDir, name, res, func(w io.Writer) error {
			return webharmony.WriteFigure7CSV(w, res)
		})
		if *outDir != "" && res.Timeline != nil {
			f, err := os.Create(filepath.Join(*outDir, name+"-utilization.csv"))
			if err == nil {
				defer f.Close()
				if err := res.Timeline.WriteCSV(f); err != nil {
					fmt.Fprintf(os.Stderr, "webtune: %v\n", err)
				}
			}
		}
	}
	run("figure7a", func() { showFig7("figure7a") })
	run("figure7b", func() { showFig7("figure7b") })

	run("adaptive", func() {
		// The full §IV loop: tuning every iteration, reconfiguration
		// checks at a lower frequency, on a mis-provisioned cluster.
		c := fig7cfg
		c.ProxyNodes, c.AppNodes, c.DBNodes = 2, 4, 1
		if c.Warm < 12 {
			c.Warm = 12
		}
		lab := webharmony.NewLab(c, webharmony.Browsing)
		res := webharmony.RunAdaptive(lab, 24, webharmony.AdaptiveOptions{
			Strategy:      webharmony.StrategyDuplication,
			Tuner:         opts,
			ReconfigEvery: 8,
		})
		for i, w := range res.WIPS {
			marker := ""
			for _, mv := range res.Moves {
				if mv.Iteration == i {
					marker = "   <- " + mv.Decision.String()
				}
			}
			fmt.Printf("iter %2d  layout %s  %7.1f WIPS%s\n", i+1, res.Layouts[i], w, marker)
		}
		export(*outDir, "adaptive", res, nil)
	})
}

// labFor maps a scale name to a lab configuration and default iterations.
func labFor(scale string) (webharmony.LabConfig, int) {
	switch scale {
	case "quick":
		return webharmony.QuickLab(), 80
	case "standard":
		return webharmony.StandardLab(), 200
	case "paper":
		return webharmony.PaperLab(), 200
	default:
		fmt.Fprintf(os.Stderr, "webtune: unknown scale %q\n", scale)
		os.Exit(2)
		return webharmony.LabConfig{}, 0
	}
}

// export writes a result as <dir>/<name>.json and, when csv is non-nil,
// <dir>/<name>.csv. A missing -out directory disables export.
func export(dir, name string, result any, csv func(io.Writer) error) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "webtune: %v\n", err)
		return
	}
	jf, err := os.Create(filepath.Join(dir, name+".json"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "webtune: %v\n", err)
		return
	}
	defer jf.Close()
	if err := webharmony.WriteJSON(jf, result); err != nil {
		fmt.Fprintf(os.Stderr, "webtune: %v\n", err)
	}
	if csv == nil {
		return
	}
	cf, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "webtune: %v\n", err)
		return
	}
	defer cf.Close()
	if err := csv(cf); err != nil {
		fmt.Fprintf(os.Stderr, "webtune: %v\n", err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
