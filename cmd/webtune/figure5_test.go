package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// captureFigure5 runs the figure5 experiment with every output sink
// enabled — report, CSV/JSON exports, step trace, metrics timeseries and
// simprofile folded stacks — and returns one normalized document holding
// all of it, so a single string comparison covers every byte the
// experiment can produce.
func captureFigure5(t *testing.T, workers int, seed, shift string) string {
	t.Helper()
	dir := t.TempDir()
	args := []string{
		"-workers", fmt.Sprint(workers),
		"-scale", "tiny", "-iters", "16",
		"-seed", seed, "-shift", shift,
		"-out", dir,
		"-trace", filepath.Join(dir, "trace.jsonl"),
		"-metrics", filepath.Join(dir, "metrics.csv"),
		"-simprofile", filepath.Join(dir, "prof.folded"),
		"figure5",
	}
	code, stdout, stderr := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("webtune %s: exit code %d, stderr: %s", strings.Join(args, " "), code, stderr)
	}
	var doc strings.Builder
	doc.WriteString("=== stdout ===\n")
	doc.WriteString(timingRe.ReplaceAllString(stdout, "done in X.Xs"))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&doc, "=== file: %s ===\n%s", name, data)
	}
	return doc.String()
}

// TestFigure5EquivalentAcrossWorkers is the tentpole's acceptance bar at
// the CLI level: `webtune figure5` produces byte-identical output —
// WIPS report, exports, trace, metrics and simprofile — at -workers 1, 4
// and 8, across three seeds and with shift detection both enabled and
// disabled. The worker pool only changes how many forked labs evaluate
// speculative candidates concurrently, never what is committed.
//
// Each (seed, shift) document is additionally pinned against a checked-in
// golden, so the matrix guards against behavior drift over time (a pooled
// request record reordering an event, say), not just divergence between
// worker counts within one build. Regenerate (only when a behavior change
// is intended) with:
//
//	go test ./cmd/webtune/ -run TestFigure5EquivalentAcrossWorkers -update
func TestFigure5EquivalentAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation determinism matrix")
	}
	for _, seed := range []string{"1", "2", "3"} {
		for _, shift := range []string{"0", "0.25"} {
			t.Run("seed="+seed+"/shift="+shift, func(t *testing.T) {
				base := captureFigure5(t, 1, seed, shift)
				if !strings.Contains(base, "=== file: trace.jsonl ===") ||
					!strings.Contains(base, "=== file: metrics.csv ===") ||
					!strings.Contains(base, "=== file: prof.folded ===") {
					t.Fatalf("telemetry sinks missing from document:\n%.400s", base)
				}
				golden := filepath.Join("testdata",
					fmt.Sprintf("figure5-matrix-seed%s-shift%s.golden", seed, shift))
				if *update {
					if err := os.WriteFile(golden, []byte(base), 0o644); err != nil {
						t.Fatal(err)
					}
				}
				want, err := os.ReadFile(golden)
				if err != nil {
					t.Fatalf("missing golden (regenerate with -update): %v", err)
				}
				if base != string(want) {
					t.Errorf("output differs from %s (regenerate with -update if the change is intended)", golden)
				}
				for _, workers := range []int{4, 8} {
					if got := captureFigure5(t, workers, seed, shift); got != base {
						t.Errorf("output differs between -workers 1 and -workers %d (seed %s, shift %s)",
							workers, seed, shift)
					}
				}
			})
		}
	}
}
