package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureSimProfile drives the CLI with -simprofile and returns the folded
// file bytes and the CLI's stdout.
func captureSimProfile(t *testing.T, workers int, args ...string) (folded, stdout string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prof.folded")
	full := append([]string{"-workers", fmt.Sprint(workers), "-simprofile", path}, args...)
	code, out, stderr := runCLI(t, full...)
	if code != 0 {
		t.Fatalf("webtune %s: exit code %d, stderr: %s", strings.Join(full, " "), code, stderr)
	}
	fb, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(fb), out
}

// TestSimProfileDeterministicAcrossWorkers is the profiler's acceptance
// bar: -simprofile must emit byte-identical folded stacks at -workers 1
// and -workers 4, because everything in the profile derives from the
// deterministic event sequence and the collector merges per-unit profiles
// in a fixed order.
func TestSimProfileDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation determinism test")
	}
	args := []string{"-scale", "tiny", "-iters", "4", "-replicates", "2", "figure4"}
	folded1, out1 := captureSimProfile(t, 1, args...)
	folded4, _ := captureSimProfile(t, 4, args...)
	if folded1 != folded4 {
		t.Error("folded stacks differ between -workers 1 and -workers 4")
	}
	if folded1 == "" {
		t.Fatal("folded profile is empty")
	}
	// The folded file is flamegraph.pl/speedscope input: every line is
	// "frames weight" with semicolon-separated frames and an integer weight.
	for i, line := range strings.Split(strings.TrimRight(folded1, "\n"), "\n") {
		fields := strings.Split(line, " ")
		if len(fields) != 2 {
			t.Fatalf("folded line %d has %d space-separated fields, want 2: %q", i+1, len(fields), line)
		}
		if fields[0] == "" {
			t.Fatalf("folded line %d has an empty stack: %q", i+1, line)
		}
	}
	// Sanity: the rollup reaches stdout and attributes the simulation's
	// dominant components.
	if !strings.Contains(out1, "simnet event-loop profile:") {
		t.Error("stdout lacks the profile rollup")
	}
	for _, frame := range []string{"browser/think", "page/", "tier/"} {
		if !strings.Contains(folded1, frame) {
			t.Errorf("profile lacks expected frame %q", frame)
		}
	}
}

// TestSimProfileSinkFailFast: an uncreatable -simprofile path must abort
// before any simulation runs, like the other telemetry sinks.
func TestSimProfileSinkFailFast(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "no-such-dir", "p.folded")
	code, stdout, stderr := runCLI(t, "-simprofile", missing, "table1")
	if code != 2 {
		t.Errorf("exit code = %d, want 2 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "-simprofile") {
		t.Errorf("stderr = %q, want it to name -simprofile", stderr)
	}
	if strings.Contains(stdout, "===") {
		t.Errorf("experiment ran despite the bad sink; stdout: %q", stdout)
	}
}
