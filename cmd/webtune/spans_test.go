package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureSpans drives the CLI with -latency and -spans into a fresh
// directory and returns both files' contents plus stdout.
func captureSpans(t *testing.T, workers int, args ...string) (latency, spans, stdout string) {
	t.Helper()
	dir := t.TempDir()
	latencyPath := filepath.Join(dir, "latency.csv")
	spansPath := filepath.Join(dir, "spans.jsonl")
	full := append([]string{
		"-workers", fmt.Sprint(workers),
		"-latency", latencyPath, "-spans", spansPath, "-span-sample", "4999",
	}, args...)
	code, out, stderr := runCLI(t, full...)
	if code != 0 {
		t.Fatalf("webtune %s: exit code %d, stderr: %s", strings.Join(full, " "), code, stderr)
	}
	lb, err := os.ReadFile(latencyPath)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := os.ReadFile(spansPath)
	if err != nil {
		t.Fatal(err)
	}
	return string(lb), string(sb), out
}

// TestGoldenSpans locks the -latency CSV and -spans JSONL of the tiny
// figure7a run against golden files, asserts both are byte-identical
// across -workers 1, 4 and 8 (the span layer's determinism contract), and
// checks the attribution report names the application tier — the
// pre-reconfiguration hot tier of Figure 7(a) — as the top queue-wait
// contributor.
// Regenerate with: go test ./cmd/webtune/ -run TestGoldenSpans -update
func TestGoldenSpans(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation golden test")
	}
	args := []string{"-scale", "tiny", "-iters", "4", "figure7a"}
	latency, spans, stdout := captureSpans(t, 1, args...)

	for _, g := range []struct{ name, got string }{
		{"figure7a-latency.golden", latency},
		{"figure7a-spans.golden", spans},
	} {
		golden := filepath.Join("testdata", g.name)
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(golden, []byte(g.got), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden (regenerate with -update): %v", err)
		}
		if g.got != string(want) {
			t.Errorf("%s differs from golden (regenerate with -update if the change is intended)", g.name)
		}
	}

	// Figure 7(a) starts app-bound (4 proxy / 2 app / 1 db under the
	// ordering shift); the bottleneck rollup must say so.
	if !strings.Contains(stdout, "queue-wait app") {
		t.Errorf("bottleneck rollup does not rank app first:\n%s", stdout)
	}
	// The attribution section ties windows to iterations.
	if !strings.Contains(latency, "# attribution") {
		t.Error("latency output missing the attribution section")
	}

	for _, workers := range []int{4, 8} {
		lw, sw, _ := captureSpans(t, workers, args...)
		if lw != latency {
			t.Errorf("-latency differs between -workers 1 and -workers %d", workers)
		}
		if sw != spans {
			t.Errorf("-spans differs between -workers 1 and -workers %d", workers)
		}
	}
}

// TestGoldenSpansFigure4 pins worker-count byte-equality on the fan-out
// heavy figure4 run too: every matrix cell is its own lab with its own
// sink, merged in (replicate, unit) order.
func TestGoldenSpansFigure4(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation golden test")
	}
	args := []string{"-scale", "tiny", "-iters", "4", "figure4"}
	latency, spans, _ := captureSpans(t, 1, args...)
	if !strings.HasPrefix(latency, "replicate,unit,interaction,tier,kind,") {
		t.Fatalf("unexpected latency header: %q", strings.SplitN(latency, "\n", 2)[0])
	}
	l4, s4, _ := captureSpans(t, 4, args...)
	if l4 != latency {
		t.Error("-latency differs between -workers 1 and -workers 4")
	}
	if s4 != spans {
		t.Error("-spans differs between -workers 1 and -workers 4")
	}
}

// TestSpanSinkFailFast asserts an uncreatable -latency/-spans path aborts
// before any simulation starts.
func TestSpanSinkFailFast(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "no-such-dir")
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"latency", []string{"-latency", filepath.Join(missing, "l.csv"), "table1"}, "-latency"},
		{"spans", []string{"-spans", filepath.Join(missing, "s.jsonl"), "table1"}, "-spans"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stdout, stderr := runCLI(t, tc.args...)
			if code != 2 {
				t.Errorf("exit code = %d, want 2 (stderr: %s)", code, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Errorf("stderr = %q, want it to name %q", stderr, tc.want)
			}
			if strings.Contains(stdout, "===") {
				t.Errorf("experiment ran despite the bad sink; stdout: %q", stdout)
			}
		})
	}
}

// TestSpanFlagsShortSmoke is the short-mode companion of the golden
// tests: one tiny figure7a run with both span outputs, cheap enough for
// the -short coverage job, asserting the files materialize with the
// expected schema and the rollup reaches stdout.
func TestSpanFlagsShortSmoke(t *testing.T) {
	dir := t.TempDir()
	latencyPath := filepath.Join(dir, "latency.csv")
	spansPath := filepath.Join(dir, "spans.jsonl")
	code, stdout, stderr := runCLI(t,
		"-scale", "tiny", "-iters", "2",
		"-latency", latencyPath, "-spans", spansPath, "-span-sample", "997",
		"figure7a")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	lb, err := os.ReadFile(latencyPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(lb), "replicate,unit,interaction,tier,kind,") {
		t.Errorf("latency.csv header wrong: %q", strings.SplitN(string(lb), "\n", 2)[0])
	}
	if !strings.Contains(string(lb), "# attribution") {
		t.Error("latency.csv missing attribution section")
	}
	sb, err := os.ReadFile(spansPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(sb), "\"spans\":") {
		t.Error("spans.jsonl has no span rows")
	}
	if !strings.Contains(stdout, "queue-wait") {
		t.Errorf("stdout missing latency rollup: %q", stdout)
	}
}
