// Command tpcwgen inspects the TPC-W workload generator: it prints the
// Table 1 mixes, verifies that sampled traffic matches them, and can dump
// a trace of emulated-browser page requests.
//
// Usage:
//
//	tpcwgen mix                  print Table 1
//	tpcwgen [-n 100000] verify   sample interactions and compare to Table 1
//	tpcwgen [-n 20] trace        print a page-request trace
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"text/tabwriter"

	"webharmony"
	"webharmony/internal/rng"
	"webharmony/internal/tpcw"
	"webharmony/internal/webobj"
)

func main() {
	var (
		n        = flag.Int("n", 0, "sample size (verify) or trace length (trace)")
		workload = flag.String("workload", "shopping", "workload: browsing, shopping or ordering")
		seed     = flag.Uint64("seed", 1, "random seed")
		scale    = flag.Int("scale", 10000, "TPC-W scale factor (items)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tpcwgen [flags] <mix|verify|trace>")
		os.Exit(2)
	}
	w, ok := parseWorkload(*workload)
	if !ok {
		fmt.Fprintf(os.Stderr, "tpcwgen: unknown workload %q\n", *workload)
		os.Exit(2)
	}

	switch flag.Arg(0) {
	case "mix":
		webharmony.PrintTable1(os.Stdout)
	case "verify":
		samples := *n
		if samples == 0 {
			samples = 100000
		}
		verify(w, samples, *seed)
	case "trace":
		length := *n
		if length == 0 {
			length = 20
		}
		trace(w, length, *seed, *scale)
	default:
		fmt.Fprintf(os.Stderr, "tpcwgen: unknown command %q\n", flag.Arg(0))
		os.Exit(2)
	}
}

func parseWorkload(s string) (tpcw.Workload, bool) {
	for _, w := range tpcw.Workloads() {
		if w.String() == s {
			return w, true
		}
	}
	return 0, false
}

func verify(w tpcw.Workload, n int, seed uint64) {
	s := tpcw.NewSampler(w, rng.New(seed))
	var counts [tpcw.NumInteractions]int
	for i := 0; i < n; i++ {
		counts[s.Next()]++
	}
	mix := tpcw.Mix(w)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Interaction\tTable 1\tSampled (n=%d)\tDelta\n", n)
	worst := 0.0
	for i := 0; i < tpcw.NumInteractions; i++ {
		got := float64(counts[i]) / float64(n) * 100
		delta := got - mix[i]
		if math.Abs(delta) > worst {
			worst = math.Abs(delta)
		}
		fmt.Fprintf(tw, "%s\t%.2f %%\t%.2f %%\t%+.2f\n", tpcw.Interaction(i), mix[i], got, delta)
	}
	tw.Flush()
	fmt.Printf("largest deviation: %.2f percentage points\n", worst)
}

func trace(w tpcw.Workload, n int, seed uint64, scale int) {
	src := rng.New(seed)
	cat := webobj.NewCatalog(scale, seed)
	gen := tpcw.NewPageGen(cat, src.Split(1))
	s := tpcw.NewSampler(w, src.Split(2))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "#\tInteraction\tClass\tHTML\tDB\tImages\tPage bytes")
	for i := 0; i < n; i++ {
		pr := gen.Page(s.Next(), i%100)
		total := pr.HTML.Size
		for _, img := range pr.Images {
			total += img.Size
		}
		kind := "dynamic"
		if pr.Profile.Static {
			kind = "static"
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s %dB\t%s\t%d\t%d\n",
			i+1, pr.Interaction, pr.Interaction.Class(), kind, pr.HTML.Size,
			pr.Profile.DB, len(pr.Images), total)
	}
	tw.Flush()
}
