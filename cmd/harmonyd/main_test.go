package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"webharmony/internal/hproto"
	"webharmony/internal/param"
)

// syncBuffer is an io.Writer the daemon goroutine and the test can share.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitFor polls the daemon's stdout until the pattern appears, returning
// the first capture group.
func waitFor(t *testing.T, buf *syncBuffer, pattern string) string {
	t.Helper()
	re := regexp.MustCompile(pattern)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := re.FindStringSubmatch(buf.String()); m != nil {
			return m[1]
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("daemon output never matched %q; output so far:\n%s", pattern, buf.String())
	return ""
}

// TestDebugAddrServesIntrospection boots the daemon with -debug-addr,
// runs a scripted tuning session against it and asserts the /debug/vars
// counters advanced, then shuts it down via the signal channel.
func TestDebugAddrServesIntrospection(t *testing.T) {
	var stdout, stderr syncBuffer
	sig := make(chan os.Signal, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0"},
			&stdout, &stderr, sig)
	}()
	addr := waitFor(t, &stdout, `harmonyd listening on ([\S]+)`)
	debugURL := waitFor(t, &stdout, `harmonyd debug on (http://[\S]+)/debug/vars`)

	c, err := hproto.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	defs := []param.Def{{Name: "threads", Min: 1, Max: 64, Default: 8, Step: 1}}
	if err := c.Register("web", defs, "", 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Next("web"); err != nil {
		t.Fatal(err)
	}
	if err := c.Report("web", 120); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(debugURL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("bad /debug/vars JSON %q: %v", body, err)
	}
	for key, want := range map[string]string{
		"sessions": "1", "sessions_created": "1", "asks": "1", "tells": "1",
		"frames": "3", "conns": "1", "conns_open": "1",
		"drain_state": `"running"`,
	} {
		if got := strings.TrimSpace(string(vars[key])); got != want {
			t.Errorf("/debug/vars %s = %s, want %s", key, got, want)
		}
	}

	// pprof must answer too.
	resp, err = http.Get(debugURL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d, want 200", resp.StatusCode)
	}

	c.Close()
	sig <- os.Interrupt
	if code := <-exit; code != 0 {
		t.Fatalf("daemon exit code = %d, want 0; stderr:\n%s", code, stderr.String())
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	var stdout, stderr syncBuffer
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr, nil); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestBadDebugAddrFails(t *testing.T) {
	var stdout, stderr syncBuffer
	code := run([]string{"-addr", "127.0.0.1:0", "-debug-addr", "256.256.256.256:1"},
		&stdout, &stderr, nil)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-debug-addr") {
		t.Errorf("stderr should name the failing flag, got:\n%s", stderr.String())
	}
}
