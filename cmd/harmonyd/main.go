// Command harmonyd runs a standalone Active Harmony tuning server speaking
// the JSON-lines protocol of internal/hproto over TCP.
//
// Applications (or the examples/remote-tuning client) register their
// tunable parameters, then alternate next/report requests; the server runs
// the adapted Nelder-Mead simplex per session:
//
//	{"op":"register","session":"web","params":[{"name":"threads","min":1,"max":512,"default":20,"step":1}]}
//	{"op":"next","session":"web"}
//	{"op":"report","session":"web","perf":118.2}
//	{"op":"best","session":"web"}
//
// Usage:
//
//	harmonyd [-addr 127.0.0.1:7779] [-drain 5s] [-debug-addr 127.0.0.1:7780]
//
// With -drain, shutdown on SIGINT is graceful: the listener stops at
// once, but in-flight requests get up to the drain window to finish
// before their connections are cut.
//
// With -debug-addr, a side HTTP listener serves runtime introspection:
// /debug/vars reports the protocol counters (sessions, asks, tells,
// frames decoded, connections, drain state) as expvar-style JSON, and
// /debug/pprof/ exposes the standard net/http/pprof profiles.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"

	"webharmony/internal/hproto"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, sig))
}

// run is main with its dependencies surfaced — argv, the output streams
// and the shutdown signal channel — so tests can drive the daemon
// in-process and terminate it without sending a real signal.
func run(args []string, stdout, stderr io.Writer, sig <-chan os.Signal) int {
	fs := flag.NewFlagSet("harmonyd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7779", "listen address")
	drain := fs.Duration("drain", 0, "on shutdown, let in-flight requests finish for up to this long before cutting connections (0 = cut immediately)")
	debugAddr := fs.String("debug-addr", "", "serve /debug/vars and /debug/pprof on this side address (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	srv, err := hproto.NewServer(*addr)
	if err != nil {
		fmt.Fprintf(stderr, "harmonyd: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "harmonyd listening on %s\n", srv.Addr())

	var dbg net.Listener
	if *debugAddr != "" {
		dbg, err = net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintf(stderr, "harmonyd: -debug-addr: %v\n", err)
			_ = srv.Close()
			return 1
		}
		fmt.Fprintf(stdout, "harmonyd debug on http://%s/debug/vars\n", dbg.Addr())
		go func() { _ = http.Serve(dbg, srv.DebugHandler()) }()
	}

	<-sig
	if *drain > 0 {
		fmt.Fprintf(stdout, "harmonyd: shutting down (draining up to %v)\n", *drain)
		err = srv.DrainClose(*drain)
	} else {
		fmt.Fprintln(stdout, "harmonyd: shutting down")
		err = srv.Close()
	}
	if dbg != nil {
		_ = dbg.Close()
	}
	if err != nil {
		fmt.Fprintf(stderr, "harmonyd: close: %v\n", err)
		return 1
	}
	return 0
}
