// Command harmonyd runs a standalone Active Harmony tuning server speaking
// the JSON-lines protocol of internal/hproto over TCP.
//
// Applications (or the examples/remote-tuning client) register their
// tunable parameters, then alternate next/report requests; the server runs
// the adapted Nelder-Mead simplex per session:
//
//	{"op":"register","session":"web","params":[{"name":"threads","min":1,"max":512,"default":20,"step":1}]}
//	{"op":"next","session":"web"}
//	{"op":"report","session":"web","perf":118.2}
//	{"op":"best","session":"web"}
//
// Usage:
//
//	harmonyd [-addr 127.0.0.1:7779] [-drain 5s]
//
// With -drain, shutdown on SIGINT is graceful: the listener stops at
// once, but in-flight requests get up to the drain window to finish
// before their connections are cut.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"webharmony/internal/hproto"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7779", "listen address")
	drain := flag.Duration("drain", 0, "on shutdown, let in-flight requests finish for up to this long before cutting connections (0 = cut immediately)")
	flag.Parse()

	srv, err := hproto.NewServer(*addr)
	if err != nil {
		log.Fatalf("harmonyd: %v", err)
	}
	fmt.Printf("harmonyd listening on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	if *drain > 0 {
		fmt.Printf("harmonyd: shutting down (draining up to %v)\n", *drain)
		err = srv.DrainClose(*drain)
	} else {
		fmt.Println("harmonyd: shutting down")
		err = srv.Close()
	}
	if err != nil {
		log.Printf("harmonyd: close: %v", err)
	}
}
