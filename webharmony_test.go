package webharmony

import (
	"bytes"
	"strings"
	"testing"

	"webharmony/internal/cluster"
	"webharmony/internal/harmony"
)

type clusterTier = cluster.Tier

func tierByName(name string) clusterTier {
	for _, t := range cluster.Tiers() {
		if t.String() == name {
			return t
		}
	}
	panic("unknown tier " + name)
}

func TestPrintTable1ContainsPaperValues(t *testing.T) {
	var buf bytes.Buffer
	PrintTable1(&buf)
	out := buf.String()
	for _, want := range []string{
		"Home", "29.00 %", "16.00 %", "9.12 %",
		"Buy Confirm", "10.18 %", "Admin Confirm", "0.11 %",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q", want)
		}
	}
}

func TestWorkloadsFacade(t *testing.T) {
	ws := Workloads()
	if len(ws) != 3 || ws[0] != Browsing || ws[2] != Ordering {
		t.Fatalf("Workloads = %v", ws)
	}
}

func TestQuickEndToEndFacade(t *testing.T) {
	// A miniature end-to-end run through the public API: build a lab,
	// tune briefly, print every report.
	cfg := QuickLab()
	cfg.Scale = 500
	cfg.Measure = 15
	res := TuneWorkload(cfg, Shopping, 12, 3, TunerOptions{Seed: 1})
	var buf bytes.Buffer
	PrintSection3A(&buf, res)
	if !strings.Contains(buf.String(), "shopping") {
		t.Fatalf("Section 3A report: %s", buf.String())
	}

	f5 := RunFigure5(cfg, []Workload{Browsing, Ordering}, 5, 2, TunerOptions{Seed: 2, ShiftFactor: 0.3})
	buf.Reset()
	PrintFigure5(&buf, f5)
	if !strings.Contains(buf.String(), "workload change") {
		t.Fatalf("Figure 5 report: %s", buf.String())
	}
}

func TestFigure7OptionsFacade(t *testing.T) {
	a, b := Figure7a(), Figure7b()
	if a.ProxyNodes != 4 || a.AppNodes != 2 {
		t.Fatalf("Figure7a = %+v", a)
	}
	if b.ProxyNodes != 2 || b.AppNodes != 4 {
		t.Fatalf("Figure7b = %+v", b)
	}
	if a.SwitchTo != Ordering || b.SwitchTo != Browsing {
		t.Fatal("workload sequences wrong")
	}
}

func TestPrintersHandleEmptyResults(t *testing.T) {
	var buf bytes.Buffer
	PrintFigure7(&buf, &Figure7Result{MovedAt: -1})
	if !strings.Contains(buf.String(), "no reconfiguration") {
		t.Fatal("empty Figure 7 not handled")
	}
	PrintTable4(&buf, &Table4Result{})
	PrintConfig(&buf, "proxy", map[string]int64{"cache_mem": 8, "a": 1})
	if !strings.Contains(buf.String(), "cache_mem = 8") {
		t.Fatal("PrintConfig wrong")
	}
}

func TestAlgoConstantsExposed(t *testing.T) {
	if AlgoNelderMead != harmony.AlgoNelderMead || AlgoRandom != harmony.AlgoRandom ||
		AlgoCoordinate != harmony.AlgoCoordinate {
		t.Fatal("algorithm constants drifted")
	}
}

func TestLabFacade(t *testing.T) {
	lab := NewLab(QuickLab(), Browsing)
	if lab.Sys == nil || lab.Driver == nil {
		t.Fatal("lab not wired")
	}
	if got := lab.Sys.Cluster.Layout(); got != "1/1/1" {
		t.Fatalf("layout = %s", got)
	}
}

func syntheticFigure4() *Figure4Result {
	res := &Figure4Result{
		Best: map[Workload]map[clusterTier]Config{},
	}
	res.Default = [3]float64{100, 110, 95}
	for _, w := range Workloads() {
		res.Matrix[w] = [3]float64{105, 115, 100}
		cfgs := map[clusterTier]Config{}
		lab := NewLab(QuickLab(), w)
		for _, spec := range lab.Tiers() {
			cfgs[tierByName(spec.Name)] = spec.Space.DefaultConfig()
		}
		res.Best[w] = cfgs
		res.Improvement[w] = 0.05
	}
	return res
}

func TestPrintFigure4AndTable3(t *testing.T) {
	res := syntheticFigure4()
	var buf bytes.Buffer
	PrintFigure4(&buf, res)
	out := buf.String()
	if !strings.Contains(out, "best-of-browsing") || !strings.Contains(out, "15% / 16% / 5%") {
		t.Fatalf("Figure 4 report: %s", out)
	}
	buf.Reset()
	PrintTable3(&buf, res)
	out = buf.String()
	for _, want := range []string{"cache_mem", "maxProcessors", "join_buffer_size", "[proxy server]", "[db server]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 3 report missing %q:\n%s", want, out)
		}
	}
}

func TestExportWrappers(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteFigure4CSV(&buf, syntheticFigure4()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "best-of-shopping") {
		t.Fatal("figure4 csv wrong")
	}
	buf.Reset()
	if err := WriteTable4CSV(&buf, &Table4Result{}); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteSeriesCSV(&buf, "wips", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	f5 := &Figure5Result{WIPS: []float64{1}, Workload: []Workload{Browsing}}
	if err := WriteFigure5CSV(&buf, f5); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteFigure7CSV(&buf, &Figure7Result{WIPS: []float64{1}, Layouts: []string{"1/1/1"}, MovedAt: -1}); err != nil {
		t.Fatal(err)
	}
}
