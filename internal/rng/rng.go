// Package rng provides deterministic pseudo-random number generation and
// the probability distributions used by the web-cluster simulator.
//
// Everything in this repository that is stochastic draws from an rng.Source
// seeded explicitly by the caller, so a whole experiment is reproducible
// bit-for-bit from its seed. Sources can be split into independent streams
// (one per emulated browser, per cache, per server...) so that adding a
// consumer does not perturb the draws seen by the others.
package rng

import "math"

// Source is a deterministic 64-bit pseudo-random source based on
// xoshiro256**, seeded via splitmix64. It is NOT safe for concurrent use;
// split independent streams instead (see Split).
type Source struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances the given state and returns the next output.
// It is used both for seeding and for deriving split streams.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds yield
// statistically independent streams.
func New(seed uint64) *Source {
	src := Seeded(seed)
	return &src
}

// Seeded returns a Source value seeded exactly as New(seed) — same seeding,
// same stream — for transient throwaway sources that should live on the
// caller's stack instead of costing a heap allocation each.
func Seeded(seed uint64) Source {
	s := seed
	return Source{
		s0: splitmix64(&s),
		s1: splitmix64(&s),
		s2: splitmix64(&s),
		s3: splitmix64(&s),
	}
}

// Clone returns an independent copy of the source frozen at its current
// state: the clone produces exactly the stream the original would, without
// advancing it. This is what non-committing lookahead needs — a tuner can
// replay the draws its next Ask would make on a clone and leave its real
// stream untouched.
func (s *Source) Clone() *Source {
	c := *s
	return &c
}

// Split derives an independent child stream from the source's current state
// and the given salt. The parent's state advances, so successive splits with
// the same salt still produce distinct children.
func (s *Source) Split(salt uint64) *Source {
	mix := s.Uint64() ^ (salt * 0x9e3779b97f4a7c15)
	return New(mix)
}

// TaskSeed derives an independent seed for task index task from a base
// seed. Unlike Source.Split it is a pure function of (base, task) — no
// stream state advances — so parallel workers can derive their tasks'
// seeds in any order and still agree bit-for-bit with a sequential run.
// This is the seed-derivation contract for experiment fan-outs that need
// per-task streams (multi-seed replication, parameter sweeps): task i of a
// run seeded s uses TaskSeed(s, i), independent of which worker runs it.
func TaskSeed(base, task uint64) uint64 {
	s := base + (task+1)*0x9e3779b97f4a7c15
	x := splitmix64(&s)
	return x ^ splitmix64(&s)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// IntRange returns a uniform integer in [lo, hi]. It panics if hi < lo.
func (s *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Exp returns an exponentially distributed value with the given mean.
// The mean must be positive.
func (s *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp with non-positive mean")
	}
	u := s.Float64()
	// Guard against log(0).
	for u == 0 {
		u = s.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the Box-Muller transform.
func (s *Source) Normal(mean, stddev float64) float64 {
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns a log-normally distributed value whose underlying
// normal has parameters mu and sigma.
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Pareto returns a Pareto-distributed value with the given scale (minimum)
// and shape alpha. Used for heavy-tailed web object sizes.
func (s *Source) Pareto(scale, alpha float64) float64 {
	if scale <= 0 || alpha <= 0 {
		panic("rng: Pareto with non-positive scale or alpha")
	}
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	return scale / math.Pow(u, 1/alpha)
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	return s.Float64() < p
}

// Zipf draws ranks in [0, n) following a Zipf distribution with exponent
// theta. It uses the rejection-inversion method of Hörmann and Derflinger,
// which is O(1) per draw after O(1) setup.
type Zipf struct {
	src              *Source
	n                uint64
	theta            float64
	oneMinusTheta    float64
	oneOverOneMinus  float64
	hIntegralX1      float64
	hIntegralNumElem float64
	sVal             float64
}

// NewZipf returns a Zipf sampler over ranks [0, n) with exponent theta.
// theta must be > 0 and != 1; typical web popularity uses theta ≈ 0.8–1.0
// (pass e.g. 0.99 rather than exactly 1).
func NewZipf(src *Source, n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("rng: NewZipf with n == 0")
	}
	if theta <= 0 || theta == 1 {
		panic("rng: NewZipf requires theta > 0 and theta != 1")
	}
	z := &Zipf{src: src, n: n, theta: theta}
	z.oneMinusTheta = 1 - theta
	z.oneOverOneMinus = 1 / z.oneMinusTheta
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralNumElem = z.hIntegral(float64(n) + 0.5)
	z.sVal = 2 - z.hIntegralInv(z.hIntegral(2.5)-z.h(2))
	return z
}

func (z *Zipf) h(x float64) float64 { return math.Exp(-z.theta * math.Log(x)) }

func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2(z.oneMinusTheta*logX) * logX
}

func (z *Zipf) hIntegralInv(x float64) float64 {
	t := x * z.oneMinusTheta
	if t < -1 {
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log(1+x)/x with a series expansion near zero.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x*(0.5-x*(1.0/3.0-0.25*x))
}

// helper2 computes (exp(x)-1)/x with a series expansion near zero.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x*0.5*(1+x*(1.0/3.0)*(1+0.25*x))
}

// Next draws the next rank in [0, n). Rank 0 is the most popular.
func (z *Zipf) Next() uint64 {
	for {
		u := z.hIntegralNumElem + z.src.Float64()*(z.hIntegralX1-z.hIntegralNumElem)
		x := z.hIntegralInv(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > float64(z.n) {
			k = float64(z.n)
		}
		if k-x <= z.sVal || u >= z.hIntegral(k+0.5)-z.h(k) {
			return uint64(k) - 1
		}
	}
}

// N returns the number of ranks the sampler draws from.
func (z *Zipf) N() uint64 { return z.n }

// Theta returns the sampler's exponent.
func (z *Zipf) Theta() float64 { return z.theta }

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
