package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical draws out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(1) // same salt, later parent state
	c3 := parent.Split(2)
	if c1.Uint64() == c2.Uint64() && c1.Uint64() == c2.Uint64() {
		t.Fatal("repeated splits with the same salt produced identical streams")
	}
	if c1.Uint64() == c3.Uint64() {
		t.Fatal("splits with different salts produced identical draws")
	}
}

func TestTaskSeedPureAndDistinct(t *testing.T) {
	// Pure: the same (base, task) always derives the same seed, regardless
	// of call order — the property parallel fan-outs rely on.
	if TaskSeed(7, 3) != TaskSeed(7, 3) {
		t.Error("TaskSeed is not a pure function")
	}
	// Distinct across tasks and bases, and never the base itself.
	seen := map[uint64][2]uint64{}
	for base := uint64(0); base < 8; base++ {
		for task := uint64(0); task < 64; task++ {
			s := TaskSeed(base, task)
			if s == base {
				t.Errorf("TaskSeed(%d, %d) returned the base seed", base, task)
			}
			if prev, dup := seen[s]; dup {
				t.Errorf("TaskSeed collision: (%d,%d) and (%d,%d) -> %d",
					base, task, prev[0], prev[1], s)
			}
			seen[s] = [2]uint64{base, task}
		}
	}
}

func TestTaskSeedStreamsDiverge(t *testing.T) {
	// Streams seeded from adjacent tasks must decorrelate immediately.
	a := New(TaskSeed(1, 0))
	b := New(TaskSeed(1, 1))
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("adjacent task streams shared %d of 64 outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) hit only %d distinct values in 1000 draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	s := New(9)
	for i := 0; i < 1000; i++ {
		v := s.IntRange(-5, 5)
		if v < -5 || v > 5 {
			t.Fatalf("IntRange(-5,5) = %d out of range", v)
		}
	}
	if got := s.IntRange(3, 3); got != 3 {
		t.Fatalf("IntRange(3,3) = %d, want 3", got)
	}
}

func TestExpMean(t *testing.T) {
	s := New(13)
	const n = 200000
	const mean = 2.5
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp returned negative value %v", v)
		}
		sum += v
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.02 {
		t.Fatalf("Exp mean = %v, want ~%v", got, mean)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(17)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Fatalf("Normal stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestParetoBounds(t *testing.T) {
	s := New(19)
	for i := 0; i < 10000; i++ {
		v := s.Pareto(100, 1.5)
		if v < 100 {
			t.Fatalf("Pareto below scale: %v", v)
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(23)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestZipfRange(t *testing.T) {
	s := New(29)
	z := NewZipf(s, 1000, 0.9)
	for i := 0; i < 10000; i++ {
		r := z.Next()
		if r >= 1000 {
			t.Fatalf("Zipf rank %d out of range", r)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(31)
	z := NewZipf(s, 10000, 0.99)
	const n = 100000
	top10 := 0
	for i := 0; i < n; i++ {
		if z.Next() < 10 {
			top10++
		}
	}
	// With theta≈1 over 10k items the top 10 ranks should capture a large
	// share (harmonic ratio ≈ H(10)/H(10000) ≈ 0.3).
	share := float64(top10) / n
	if share < 0.15 || share > 0.45 {
		t.Fatalf("Zipf top-10 share = %v, want heavy skew in [0.15,0.45]", share)
	}
}

func TestZipfMonotonePopularity(t *testing.T) {
	s := New(37)
	z := NewZipf(s, 100, 0.8)
	counts := make([]int, 100)
	for i := 0; i < 500000; i++ {
		counts[z.Next()]++
	}
	// Rank 0 should be drawn noticeably more often than rank 50.
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf not skewed: count[0]=%d count[50]=%d", counts[0], counts[50])
	}
	if counts[0] <= counts[99] {
		t.Fatalf("Zipf not skewed: count[0]=%d count[99]=%d", counts[0], counts[99])
	}
}

func TestZipfPanics(t *testing.T) {
	cases := []struct {
		n     uint64
		theta float64
	}{{0, 0.5}, {10, 0}, {10, 1}, {10, -1}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %v) did not panic", c.n, c.theta)
				}
			}()
			NewZipf(New(1), c.n, c.theta)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		n := 1 + int(seed%64)
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniformWithinBounds(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		lo, hi := -3.0, 7.0
		for i := 0; i < 100; i++ {
			v := s.Uniform(lo, hi)
			if v < lo || v >= hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(41)
	for i := 0; i < 10000; i++ {
		if v := s.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal returned non-positive %v", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = s.Uint64()
	}
	_ = sink
}

func BenchmarkZipfNext(b *testing.B) {
	s := New(1)
	z := NewZipf(s, 100000, 0.9)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = z.Next()
	}
	_ = sink
}
