package proxy

import (
	"testing"
	"testing/quick"

	"webharmony/internal/rng"
	"webharmony/internal/webobj"
)

// oracle is a deliberately naive reference implementation of the cache's
// semantics: a recency-ordered slice (most recent first) of disk-resident
// entries plus an in-memory flag. It trades efficiency for obviousness so
// the production bucketed/intrusive-list implementation can be checked
// against it operation by operation.
type oracle struct {
	cfg     Config
	diskCap int64
	// entries[0] is the most recently used.
	entries []oracleEntry
}

type oracleEntry struct {
	id    uint64
	size  int64
	inMem bool
}

func newOracle(cfg Config, diskCap int64) *oracle {
	return &oracle{cfg: cfg, diskCap: diskCap}
}

func (o *oracle) find(id uint64) int {
	for i, e := range o.entries {
		if e.id == id {
			return i
		}
	}
	return -1
}

func (o *oracle) memBytes() int64 {
	var b int64
	for _, e := range o.entries {
		if e.inMem {
			b += e.size
		}
	}
	return b
}

func (o *oracle) diskBytes() int64 {
	var b int64
	for _, e := range o.entries {
		b += e.size
	}
	return b
}

// lookup mirrors Cache.Lookup: classify, then promote to MRU.
func (o *oracle) lookup(obj webobj.Object) LookupResult {
	i := o.find(obj.ID)
	if i < 0 {
		return Miss
	}
	e := o.entries[i]
	copy(o.entries[1:i+1], o.entries[:i])
	o.entries[0] = e
	if e.inMem {
		return HitMem
	}
	return HitDisk
}

// admit mirrors Cache.Admit.
func (o *oracle) admit(obj webobj.Object) bool {
	if !obj.Cacheable() {
		return false
	}
	sizeKB := obj.Size >> 10
	if sizeKB < o.cfg.MinObjectKB || sizeKB > o.cfg.MaxObjectKB || obj.Size > o.diskCap {
		return false
	}
	if o.find(obj.ID) >= 0 {
		return false
	}
	e := oracleEntry{id: obj.ID, size: obj.Size, inMem: sizeKB <= o.cfg.MaxObjectMemKB}
	o.entries = append([]oracleEntry{e}, o.entries...)
	// Memory limit: demote LRU in-memory entries.
	limit := o.cfg.CacheMemMB << 20
	for o.memBytes() > limit {
		for i := len(o.entries) - 1; i >= 0; i-- {
			if o.entries[i].inMem {
				o.entries[i].inMem = false
				break
			}
		}
	}
	// Disk watermarks: evict LRU entirely.
	high := o.diskCap / 100 * o.cfg.SwapHighPct
	if o.diskBytes() > high {
		low := o.diskCap / 100 * o.cfg.SwapLowPct
		for o.diskBytes() > low && len(o.entries) > 0 {
			o.entries = o.entries[:len(o.entries)-1]
		}
	}
	return true
}

// TestCacheMatchesOracle drives the production cache and the oracle with
// an identical random operation stream and requires identical observable
// behaviour at every step.
func TestCacheMatchesOracle(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		cfg := DecodeConfig(Space().DefaultConfig())
		cfg.CacheMemMB = int64(4 + src.Intn(12))
		cfg.MaxObjectMemKB = int64(2 + 2*src.Intn(40))
		cfg.MinObjectKB = int64(2 * src.Intn(4))
		cfg.MaxObjectKB = int64(256 + 256*src.Intn(8))
		cfg.SwapLowPct = int64(50 + src.Intn(30))
		cfg.SwapHighPct = cfg.SwapLowPct + int64(src.Intn(10))
		diskCap := int64(128<<10 + src.Intn(2<<20))

		c := New(cfg, diskCap)
		o := newOracle(cfg, diskCap)

		for step := 0; step < 1500; step++ {
			id := uint64(src.Intn(300))
			// Deterministic per-ID size so re-references agree.
			size := int64(1<<10) + int64(id%97)*1024
			kind := webobj.KindStatic
			switch id % 3 {
			case 1:
				kind = webobj.KindImage
			case 2:
				kind = webobj.KindDynamic
			}
			obj := webobj.Object{ID: id, Kind: kind, Size: size}
			got, _ := c.Lookup(obj)
			want := o.lookup(obj)
			if got != want {
				t.Logf("seed %d step %d id %d: lookup %v, oracle %v", seed, step, id, got, want)
				return false
			}
			if got == Miss {
				ga := c.Admit(obj)
				wa := o.admit(obj)
				if ga != wa {
					t.Logf("seed %d step %d id %d: admit %v, oracle %v", seed, step, id, ga, wa)
					return false
				}
			}
			if c.MemBytes() != o.memBytes() || c.DiskBytes() != o.diskBytes() {
				t.Logf("seed %d step %d: bytes mem %d/%d disk %d/%d",
					seed, step, c.MemBytes(), o.memBytes(), c.DiskBytes(), o.diskBytes())
				return false
			}
		}
		return c.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestCacheMatchesOracleAcrossReconfigure extends the differential test
// across a Reconfigure boundary.
func TestCacheMatchesOracleAcrossReconfigure(t *testing.T) {
	src := rng.New(77)
	cfg := DecodeConfig(Space().DefaultConfig())
	diskCap := int64(1 << 20)
	c := New(cfg, diskCap)
	o := newOracle(cfg, diskCap)
	touch := func(n int) {
		for step := 0; step < n; step++ {
			id := uint64(src.Intn(120))
			size := int64(1<<10) + int64(id%31)*2048
			obj := webobj.Object{ID: id, Kind: webobj.KindStatic, Size: size}
			got, _ := c.Lookup(obj)
			want := o.lookup(obj)
			if got != want {
				t.Fatalf("step %d id %d: %v vs oracle %v", step, id, got, want)
			}
			if got == Miss {
				c.Admit(obj)
				o.admit(obj)
			}
		}
	}
	touch(600)
	// Reconfigure: cache keeps disk entries, demotes memory. Mirror in
	// the oracle.
	cfg2 := cfg
	cfg2.CacheMemMB = 16
	cfg2.ObjectsPerBucket = 80
	c.Reconfigure(cfg2)
	for i := range o.entries {
		o.entries[i].inMem = false
	}
	o.cfg = cfg2
	touch(600)
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
