// Package proxy models the presentation tier: a Squid-like caching proxy
// whose behaviour is governed by the seven tunable parameters of Table 3 of
// the paper. The cache is real — a bucketed hash directory over a two-level
// (memory + disk) store with LRU replacement and watermark-driven disk
// eviction — so the parameters have the same qualitative effects as in
// Squid: cache_mem trades memory for fast hits, the object-size limits
// gate admission, store_objects_per_bucket changes directory scan costs,
// and the swap watermarks barely matter (as the paper observed).
package proxy

import (
	"fmt"

	"webharmony/internal/param"
	"webharmony/internal/webobj"
)

// Parameter names, as in Table 3.
const (
	ParamCacheMem         = "cache_mem"                     // MB of memory cache
	ParamSwapLow          = "cache_swap_low"                // disk low watermark, %
	ParamSwapHigh         = "cache_swap_high"               // disk high watermark, %
	ParamMaxObjectSize    = "maximum_object_size"           // KB, admission cap
	ParamMinObjectSize    = "minimum_object_size"           // KB, admission floor
	ParamMaxObjectSizeMem = "maximum_object_size_in_memory" // KB
	ParamObjectsPerBucket = "store_objects_per_bucket"
)

// Space returns the proxy tier's tunable-parameter space with the paper's
// default values.
func Space() *param.Space {
	return param.MustSpace(
		param.Def{Name: ParamCacheMem, Min: 4, Max: 512, Default: 8, Step: 1, Unit: "MB"},
		param.Def{Name: ParamSwapLow, Min: 50, Max: 96, Default: 90, Step: 1, Unit: "%"},
		param.Def{Name: ParamSwapHigh, Min: 55, Max: 97, Default: 95, Step: 1, Unit: "%"},
		param.Def{Name: ParamMaxObjectSize, Min: 256, Max: 16384, Default: 4096, Step: 256, Unit: "KB"},
		param.Def{Name: ParamMinObjectSize, Min: 0, Max: 2048, Default: 0, Step: 2, Unit: "KB"},
		param.Def{Name: ParamMaxObjectSizeMem, Min: 2, Max: 4096, Default: 8, Step: 2, Unit: "KB"},
		param.Def{Name: ParamObjectsPerBucket, Min: 5, Max: 320, Default: 20, Step: 5},
	)
}

// Config is the decoded proxy configuration.
type Config struct {
	CacheMemMB       int64
	SwapLowPct       int64
	SwapHighPct      int64
	MaxObjectKB      int64
	MinObjectKB      int64
	MaxObjectMemKB   int64
	ObjectsPerBucket int64
}

// DecodeConfig interprets a param.Config laid out per Space().
func DecodeConfig(c param.Config) Config {
	sp := Space()
	if len(c) != sp.Len() {
		panic(fmt.Sprintf("proxy: config has %d values, want %d", len(c), sp.Len()))
	}
	get := func(name string) int64 { return c[sp.IndexOf(name)] }
	cfg := Config{
		CacheMemMB:       get(ParamCacheMem),
		SwapLowPct:       get(ParamSwapLow),
		SwapHighPct:      get(ParamSwapHigh),
		MaxObjectKB:      get(ParamMaxObjectSize),
		MinObjectKB:      get(ParamMinObjectSize),
		MaxObjectMemKB:   get(ParamMaxObjectSizeMem),
		ObjectsPerBucket: get(ParamObjectsPerBucket),
	}
	if cfg.SwapLowPct > cfg.SwapHighPct {
		cfg.SwapLowPct = cfg.SwapHighPct
	}
	return cfg
}

// MemoryFootprint returns the bytes of node memory the proxy consumes for
// its in-memory cache plus directory overhead.
func (c Config) MemoryFootprint() int64 {
	const perBucketOverhead = 256 // directory bucket headers
	buckets := c.bucketCount()
	return c.CacheMemMB<<20 + int64(buckets)*perBucketOverhead
}

func (c Config) bucketCount() int {
	// Size the directory for the expected object population of the disk
	// store, as Squid does from cache_dir parameters.
	const expectedObjects = 1 << 17
	b := expectedObjects / int(c.ObjectsPerBucket)
	if b < 1 {
		b = 1
	}
	return b
}

// LookupResult classifies a cache probe.
type LookupResult int

const (
	// Miss means the object is not cached; it must be fetched upstream.
	Miss LookupResult = iota
	// HitDisk means the object is cached on disk only.
	HitDisk
	// HitMem means the object is cached in memory.
	HitMem
)

// String returns the result name.
func (r LookupResult) String() string {
	switch r {
	case Miss:
		return "miss"
	case HitDisk:
		return "hit-disk"
	case HitMem:
		return "hit-mem"
	default:
		return "unknown"
	}
}

// entry is a cached object in the store directory.
type entry struct {
	id    uint64
	size  int64
	inMem bool

	bucketNext *entry // singly-linked bucket chain

	// Intrusive LRU links; disk list covers all entries, mem list covers
	// in-memory entries only.
	diskPrev, diskNext *entry
	memPrev, memNext   *entry
}

// lruList is an intrusive doubly-linked LRU list with sentinel-free ends.
type lruList struct {
	head, tail *entry // head = most recent
	getPrev    func(*entry) *entry
	getNext    func(*entry) *entry
	setPrev    func(*entry, *entry)
	setNext    func(*entry, *entry)
}

func newDiskList() *lruList {
	return &lruList{
		getPrev: func(e *entry) *entry { return e.diskPrev },
		getNext: func(e *entry) *entry { return e.diskNext },
		setPrev: func(e, v *entry) { e.diskPrev = v },
		setNext: func(e, v *entry) { e.diskNext = v },
	}
}

func newMemList() *lruList {
	return &lruList{
		getPrev: func(e *entry) *entry { return e.memPrev },
		getNext: func(e *entry) *entry { return e.memNext },
		setPrev: func(e, v *entry) { e.memPrev = v },
		setNext: func(e, v *entry) { e.memNext = v },
	}
}

func (l *lruList) pushFront(e *entry) {
	l.setPrev(e, nil)
	l.setNext(e, l.head)
	if l.head != nil {
		l.setPrev(l.head, e)
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
}

func (l *lruList) remove(e *entry) {
	prev, next := l.getPrev(e), l.getNext(e)
	if prev != nil {
		l.setNext(prev, next)
	} else {
		l.head = next
	}
	if next != nil {
		l.setPrev(next, prev)
	} else {
		l.tail = prev
	}
	l.setPrev(e, nil)
	l.setNext(e, nil)
}

func (l *lruList) moveFront(e *entry) {
	if l.head == e {
		return
	}
	l.remove(e)
	l.pushFront(e)
}

// Stats counts cache activity since the last reset.
type Stats struct {
	HitsMem       uint64
	HitsDisk      uint64
	Misses        uint64
	Admitted      uint64
	RejectedSize  uint64 // admission declined by object-size limits
	EvictedDisk   uint64
	DemotedMem    uint64 // pushed out of memory but kept on disk
	BytesServed   int64
	DirectoryScan uint64 // total entries scanned during lookups
}

// HitRatio returns (mem+disk hits) / lookups, or 0 with no lookups.
func (s Stats) HitRatio() float64 {
	total := s.HitsMem + s.HitsDisk + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.HitsMem+s.HitsDisk) / float64(total)
}

// Cache is the proxy's object store.
type Cache struct {
	cfg      Config
	diskCap  int64
	buckets  []*entry
	memList  *lruList
	diskList *lruList
	memBytes int64
	dskBytes int64
	count    int
	stats    Stats
}

// New creates a cache with the given configuration and disk capacity in
// bytes.
func New(cfg Config, diskCapacity int64) *Cache {
	if diskCapacity <= 0 {
		panic("proxy: disk capacity must be positive")
	}
	return &Cache{
		cfg:      cfg,
		diskCap:  diskCapacity,
		buckets:  make([]*entry, cfg.bucketCount()),
		memList:  newMemList(),
		diskList: newDiskList(),
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) bucketOf(id uint64) int {
	h := id * 0x9e3779b97f4a7c15
	return int(h % uint64(len(c.buckets)))
}

func (c *Cache) find(id uint64) (*entry, int) {
	scanned := 0
	for e := c.buckets[c.bucketOf(id)]; e != nil; e = e.bucketNext {
		scanned++
		if e.id == id {
			return e, scanned
		}
	}
	return nil, scanned
}

// Lookup probes the cache for o, promoting hits to most-recently-used.
// It returns the hit class and the number of directory entries scanned
// (the caller charges CPU proportional to the scan).
func (c *Cache) Lookup(o webobj.Object) (LookupResult, int) {
	e, scanned := c.find(o.ID)
	c.stats.DirectoryScan += uint64(scanned)
	if e == nil {
		c.stats.Misses++
		return Miss, scanned
	}
	c.diskList.moveFront(e)
	c.stats.BytesServed += e.size
	if e.inMem {
		c.memList.moveFront(e)
		c.stats.HitsMem++
		return HitMem, scanned
	}
	c.stats.HitsDisk++
	return HitDisk, scanned
}

// Admit inserts a fetched object into the cache, applying the size-based
// admission policy and evicting per the watermarks. Objects already cached
// or not cacheable are ignored. It reports whether the object was admitted.
func (c *Cache) Admit(o webobj.Object) bool {
	if !o.Cacheable() {
		return false
	}
	sizeKB := o.Size >> 10
	if sizeKB < c.cfg.MinObjectKB || sizeKB > c.cfg.MaxObjectKB || o.Size > c.diskCap {
		c.stats.RejectedSize++
		return false
	}
	if e, _ := c.find(o.ID); e != nil {
		return false // already cached
	}
	e := &entry{id: o.ID, size: o.Size}
	b := c.bucketOf(o.ID)
	e.bucketNext = c.buckets[b]
	c.buckets[b] = e
	c.diskList.pushFront(e)
	c.dskBytes += e.size
	c.count++
	c.stats.Admitted++

	if sizeKB <= c.cfg.MaxObjectMemKB {
		e.inMem = true
		c.memList.pushFront(e)
		c.memBytes += e.size
		c.enforceMem()
	}
	c.enforceDisk()
	return true
}

// enforceMem demotes least-recently-used in-memory entries until the
// memory cache fits in cache_mem.
func (c *Cache) enforceMem() {
	limit := c.cfg.CacheMemMB << 20
	for c.memBytes > limit && c.memList.tail != nil {
		e := c.memList.tail
		c.memList.remove(e)
		e.inMem = false
		c.memBytes -= e.size
		c.stats.DemotedMem++
	}
}

// enforceDisk applies the watermark policy: when usage exceeds the high
// watermark, evict LRU entries until usage drops to the low watermark.
func (c *Cache) enforceDisk() {
	high := c.diskCap / 100 * c.cfg.SwapHighPct
	if c.dskBytes <= high {
		return
	}
	low := c.diskCap / 100 * c.cfg.SwapLowPct
	for c.dskBytes > low && c.diskList.tail != nil {
		c.evict(c.diskList.tail)
	}
}

// evict removes an entry entirely (disk and, if present, memory).
func (c *Cache) evict(e *entry) {
	c.diskList.remove(e)
	c.dskBytes -= e.size
	if e.inMem {
		c.memList.remove(e)
		c.memBytes -= e.size
		e.inMem = false
	}
	// Unlink from the bucket chain.
	b := c.bucketOf(e.id)
	if c.buckets[b] == e {
		c.buckets[b] = e.bucketNext
	} else {
		for p := c.buckets[b]; p != nil; p = p.bucketNext {
			if p.bucketNext == e {
				p.bucketNext = e.bucketNext
				break
			}
		}
	}
	e.bucketNext = nil
	c.count--
	c.stats.EvictedDisk++
}

// Len returns the number of cached objects.
func (c *Cache) Len() int { return c.count }

// MemBytes returns the bytes held in the memory level.
func (c *Cache) MemBytes() int64 { return c.memBytes }

// DiskBytes returns the bytes held on disk (includes in-memory objects,
// which are also persisted, as in Squid).
func (c *Cache) DiskBytes() int64 { return c.dskBytes }

// Stats returns a snapshot of the activity counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the activity counters, keeping cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Reconfigure applies a new configuration the way a Squid restart does:
// the disk store survives (objects stay cached, in recency order), the
// memory level is lost, the store directory is rebuilt for the new bucket
// geometry, and the new watermarks are enforced. Activity counters reset.
func (c *Cache) Reconfigure(cfg Config) {
	// Collect surviving entries from least to most recently used so that
	// re-insertion preserves recency.
	var survivors []*entry
	for e := c.diskList.tail; e != nil; e = e.diskPrev {
		survivors = append(survivors, e)
	}
	c.cfg = cfg
	c.buckets = make([]*entry, cfg.bucketCount())
	c.memList = newMemList()
	c.diskList = newDiskList()
	c.memBytes, c.dskBytes, c.count = 0, 0, 0
	c.stats = Stats{}
	for _, e := range survivors {
		e.inMem = false
		e.bucketNext = nil
		e.memPrev, e.memNext = nil, nil
		e.diskPrev, e.diskNext = nil, nil
		b := c.bucketOf(e.id)
		e.bucketNext = c.buckets[b]
		c.buckets[b] = e
		c.diskList.pushFront(e)
		c.dskBytes += e.size
		c.count++
	}
	c.enforceDisk()
	c.stats = Stats{} // eviction counts from reconfiguration don't count
}

// Clear empties the cache (a server restart).
func (c *Cache) Clear() {
	for i := range c.buckets {
		c.buckets[i] = nil
	}
	c.memList = newMemList()
	c.diskList = newDiskList()
	c.memBytes, c.dskBytes, c.count = 0, 0, 0
}

// CheckInvariants verifies internal consistency; used by property tests.
func (c *Cache) CheckInvariants() error {
	var memBytes, diskBytes int64
	var memCount, diskCount, bucketCount int
	for e := c.memList.head; e != nil; e = e.memNext {
		if !e.inMem {
			return fmt.Errorf("mem list contains non-mem entry %d", e.id)
		}
		memBytes += e.size
		memCount++
	}
	for e := c.diskList.head; e != nil; e = e.diskNext {
		diskBytes += e.size
		diskCount++
	}
	for _, b := range c.buckets {
		for e := b; e != nil; e = e.bucketNext {
			bucketCount++
		}
	}
	if memBytes != c.memBytes {
		return fmt.Errorf("memBytes %d != list sum %d", c.memBytes, memBytes)
	}
	if diskBytes != c.dskBytes {
		return fmt.Errorf("diskBytes %d != list sum %d", c.dskBytes, diskBytes)
	}
	if diskCount != c.count || bucketCount != c.count {
		return fmt.Errorf("count %d, disk list %d, buckets %d", c.count, diskCount, bucketCount)
	}
	if memCount > diskCount {
		return fmt.Errorf("memory level larger than disk level")
	}
	if c.memBytes > c.cfg.CacheMemMB<<20 {
		return fmt.Errorf("memory over capacity: %d > %d", c.memBytes, c.cfg.CacheMemMB<<20)
	}
	if c.dskBytes > c.diskCap {
		return fmt.Errorf("disk over capacity: %d > %d", c.dskBytes, c.diskCap)
	}
	return nil
}
