package proxy

import (
	"testing"
	"testing/quick"

	"webharmony/internal/param"
	"webharmony/internal/rng"
	"webharmony/internal/webobj"
)

func defaultConfig() Config { return DecodeConfig(Space().DefaultConfig()) }

func obj(id uint64, size int64, kind webobj.Kind) webobj.Object {
	return webobj.Object{ID: id, Kind: kind, Size: size}
}

func TestSpaceDefaultsMatchTable3(t *testing.T) {
	cfg := defaultConfig()
	if cfg.CacheMemMB != 8 {
		t.Errorf("cache_mem default = %d, want 8", cfg.CacheMemMB)
	}
	if cfg.SwapLowPct != 90 || cfg.SwapHighPct != 95 {
		t.Errorf("swap watermarks = %d/%d, want 90/95", cfg.SwapLowPct, cfg.SwapHighPct)
	}
	if cfg.MaxObjectKB != 4096 || cfg.MinObjectKB != 0 {
		t.Errorf("object size limits = %d/%d, want 4096/0", cfg.MaxObjectKB, cfg.MinObjectKB)
	}
	if cfg.MaxObjectMemKB != 8 {
		t.Errorf("max_in_memory default = %d, want 8", cfg.MaxObjectMemKB)
	}
	if cfg.ObjectsPerBucket != 20 {
		t.Errorf("objects_per_bucket default = %d, want 20", cfg.ObjectsPerBucket)
	}
}

func TestDecodeConfigNormalizesWatermarks(t *testing.T) {
	sp := Space()
	c := sp.DefaultConfig()
	c[sp.IndexOf(ParamSwapLow)] = 96
	c[sp.IndexOf(ParamSwapHigh)] = 55
	cfg := DecodeConfig(c)
	if cfg.SwapLowPct > cfg.SwapHighPct {
		t.Fatalf("low %d > high %d after decode", cfg.SwapLowPct, cfg.SwapHighPct)
	}
}

func TestDecodeConfigPanicsOnWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on short config")
		}
	}()
	DecodeConfig(param.Config{1, 2})
}

func TestLookupMissThenHit(t *testing.T) {
	c := New(defaultConfig(), 1<<30)
	o := obj(1, 4<<10, webobj.KindStatic)
	if r, _ := c.Lookup(o); r != Miss {
		t.Fatalf("first lookup = %v, want miss", r)
	}
	if !c.Admit(o) {
		t.Fatal("admission refused")
	}
	r, _ := c.Lookup(o)
	if r != HitMem {
		t.Fatalf("second lookup = %v, want hit-mem (4KB <= 8KB mem limit)", r)
	}
	st := c.Stats()
	if st.Misses != 1 || st.HitsMem != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLargeObjectHitsDiskNotMem(t *testing.T) {
	c := New(defaultConfig(), 1<<30)
	o := obj(2, 100<<10, webobj.KindImage) // 100KB > 8KB mem limit
	c.Admit(o)
	if r, _ := c.Lookup(o); r != HitDisk {
		t.Fatalf("lookup = %v, want hit-disk", r)
	}
	if c.MemBytes() != 0 {
		t.Fatal("large object occupies memory level")
	}
}

func TestAdmissionSizeLimits(t *testing.T) {
	cfg := defaultConfig()
	cfg.MinObjectKB = 10
	cfg.MaxObjectKB = 100
	c := New(cfg, 1<<30)
	if c.Admit(obj(1, 5<<10, webobj.KindStatic)) {
		t.Fatal("under-min object admitted")
	}
	if c.Admit(obj(2, 200<<10, webobj.KindImage)) {
		t.Fatal("over-max object admitted")
	}
	if !c.Admit(obj(3, 50<<10, webobj.KindImage)) {
		t.Fatal("mid-size object rejected")
	}
	if c.Stats().RejectedSize != 2 {
		t.Fatalf("RejectedSize = %d, want 2", c.Stats().RejectedSize)
	}
}

func TestDynamicObjectsNeverCached(t *testing.T) {
	c := New(defaultConfig(), 1<<30)
	if c.Admit(obj(9, 4<<10, webobj.KindDynamic)) {
		t.Fatal("dynamic object admitted")
	}
}

func TestDuplicateAdmitIgnored(t *testing.T) {
	c := New(defaultConfig(), 1<<30)
	o := obj(1, 4<<10, webobj.KindStatic)
	c.Admit(o)
	if c.Admit(o) {
		t.Fatal("duplicate admit succeeded")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestMemoryEvictionLRU(t *testing.T) {
	cfg := defaultConfig()
	cfg.CacheMemMB = 4 // 4 MB memory level
	cfg.MaxObjectMemKB = 2048
	c := New(cfg, 1<<30)
	// Three 2MB objects: only two fit in memory.
	for id := uint64(1); id <= 3; id++ {
		c.Admit(obj(id, 2<<20, webobj.KindImage))
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	// Object 1 was LRU in memory → demoted to disk-only.
	if r, _ := c.Lookup(obj(1, 2<<20, webobj.KindImage)); r != HitDisk {
		t.Fatalf("LRU object = %v, want hit-disk after demotion", r)
	}
	if r, _ := c.Lookup(obj(3, 2<<20, webobj.KindImage)); r != HitMem {
		t.Fatalf("MRU object = %v, want hit-mem", r)
	}
	if c.Stats().DemotedMem == 0 {
		t.Fatal("no demotion recorded")
	}
}

func TestDiskWatermarkEviction(t *testing.T) {
	cfg := defaultConfig()
	cfg.SwapLowPct = 50
	cfg.SwapHighPct = 80
	c := New(cfg, 100<<10) // 100 KB disk
	// Insert 4KB objects until we cross the 80% watermark; the first time
	// eviction fires, usage must drop to the low watermark (hysteresis).
	checkedDrop := false
	for id := uint64(0); id < 25; id++ {
		before := c.Stats().EvictedDisk
		c.Admit(obj(id, 4<<10, webobj.KindStatic))
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if c.DiskBytes() > 80<<10 {
			t.Fatalf("disk bytes %d above high watermark", c.DiskBytes())
		}
		if !checkedDrop && c.Stats().EvictedDisk > before {
			if c.DiskBytes() > 50<<10 {
				t.Fatalf("disk bytes %d above low watermark right after eviction", c.DiskBytes())
			}
			checkedDrop = true
		}
	}
	if !checkedDrop {
		t.Fatal("no disk evictions despite overflow")
	}
}

func TestEvictionRemovesFromMemoryToo(t *testing.T) {
	cfg := defaultConfig()
	cfg.MaxObjectMemKB = 64
	cfg.SwapLowPct = 50
	cfg.SwapHighPct = 60
	c := New(cfg, 64<<10)
	for id := uint64(0); id < 20; id++ {
		c.Admit(obj(id, 4<<10, webobj.KindStatic))
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLookupPromotesLRU(t *testing.T) {
	cfg := defaultConfig()
	cfg.CacheMemMB = 4
	cfg.MaxObjectMemKB = 2048
	c := New(cfg, 1<<30)
	c.Admit(obj(1, 2<<20, webobj.KindImage))
	c.Admit(obj(2, 2<<20, webobj.KindImage))
	c.Lookup(obj(1, 2<<20, webobj.KindImage)) // promote 1
	c.Admit(obj(3, 2<<20, webobj.KindImage))  // evicts LRU = 2
	if r, _ := c.Lookup(obj(1, 2<<20, webobj.KindImage)); r != HitMem {
		t.Fatal("recently used object demoted")
	}
	if r, _ := c.Lookup(obj(2, 2<<20, webobj.KindImage)); r != HitDisk {
		t.Fatal("least recently used object kept in memory")
	}
}

func TestBucketScanCost(t *testing.T) {
	// Fewer objects per bucket → more buckets → shorter scans.
	many := defaultConfig()
	many.ObjectsPerBucket = 320
	few := defaultConfig()
	few.ObjectsPerBucket = 5
	cm := New(many, 1<<30)
	cf := New(few, 1<<30)
	for id := uint64(0); id < 5000; id++ {
		o := obj(id, 4<<10, webobj.KindStatic)
		cm.Admit(o)
		cf.Admit(o)
	}
	for id := uint64(0); id < 5000; id++ {
		o := obj(id, 4<<10, webobj.KindStatic)
		cm.Lookup(o)
		cf.Lookup(o)
	}
	if cm.Stats().DirectoryScan <= cf.Stats().DirectoryScan {
		t.Fatalf("large buckets scanned %d <= small buckets %d",
			cm.Stats().DirectoryScan, cf.Stats().DirectoryScan)
	}
}

func TestClear(t *testing.T) {
	c := New(defaultConfig(), 1<<30)
	for id := uint64(0); id < 100; id++ {
		c.Admit(obj(id, 4<<10, webobj.KindStatic))
	}
	c.Clear()
	if c.Len() != 0 || c.MemBytes() != 0 || c.DiskBytes() != 0 {
		t.Fatal("Clear left residue")
	}
	if r, _ := c.Lookup(obj(1, 4<<10, webobj.KindStatic)); r != Miss {
		t.Fatal("object survived Clear")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHitRatio(t *testing.T) {
	var s Stats
	if s.HitRatio() != 0 {
		t.Fatal("empty HitRatio != 0")
	}
	s = Stats{HitsMem: 3, HitsDisk: 1, Misses: 4}
	if s.HitRatio() != 0.5 {
		t.Fatalf("HitRatio = %v, want 0.5", s.HitRatio())
	}
}

func TestMemoryFootprintGrowsWithCacheMem(t *testing.T) {
	small := defaultConfig()
	big := defaultConfig()
	big.CacheMemMB = 64
	if big.MemoryFootprint() <= small.MemoryFootprint() {
		t.Fatal("footprint not monotone in cache_mem")
	}
}

func TestInvariantsUnderRandomWorkload(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		cfg := defaultConfig()
		cfg.CacheMemMB = int64(4 + src.Intn(8))
		cfg.MaxObjectMemKB = int64(2 + 2*src.Intn(64))
		cfg.SwapLowPct = int64(50 + src.Intn(40))
		cfg.SwapHighPct = cfg.SwapLowPct + int64(src.Intn(7))
		c := New(cfg, int64(256<<10+src.Intn(1<<20)))
		for i := 0; i < 2000; i++ {
			id := uint64(src.Intn(500))
			size := int64(1<<10 + src.Intn(64<<10))
			kind := webobj.KindStatic
			if src.Bernoulli(0.3) {
				kind = webobj.KindImage
			}
			o := obj(id, size, kind)
			if r, _ := c.Lookup(o); r == Miss {
				c.Admit(o)
			}
		}
		return c.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHigherCacheMemImprovesMemHitRate(t *testing.T) {
	run := func(memMB int64) float64 {
		cfg := defaultConfig()
		cfg.CacheMemMB = memMB
		cfg.MaxObjectMemKB = 512
		c := New(cfg, 1<<31)
		cat := webobj.NewCatalog(2000, 1)
		pop := webobj.NewPopularity(cat, rng.New(42), 0.9)
		for i := 0; i < 30000; i++ {
			o := pop.Next()
			if r, _ := c.Lookup(o); r == Miss {
				c.Admit(o)
			}
		}
		st := c.Stats()
		return float64(st.HitsMem) / float64(st.HitsMem+st.HitsDisk+st.Misses)
	}
	small, large := run(4), run(256)
	if large <= small {
		t.Fatalf("mem hit rate not improved by cache_mem: 4MB=%v 256MB=%v", small, large)
	}
}

func TestLookupResultString(t *testing.T) {
	if Miss.String() != "miss" || HitDisk.String() != "hit-disk" ||
		HitMem.String() != "hit-mem" || LookupResult(9).String() != "unknown" {
		t.Fatal("LookupResult.String wrong")
	}
}

func TestNewPanicsOnBadDisk(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero disk capacity")
		}
	}()
	New(defaultConfig(), 0)
}

func BenchmarkCacheLookupHit(b *testing.B) {
	c := New(defaultConfig(), 1<<30)
	o := obj(1, 4<<10, webobj.KindStatic)
	c.Admit(o)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(o)
	}
}

func BenchmarkCacheAdmitEvict(b *testing.B) {
	cfg := defaultConfig()
	c := New(cfg, 10<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Admit(obj(uint64(i), 4<<10, webobj.KindStatic))
	}
}

func TestReconfigureKeepsDiskEntries(t *testing.T) {
	c := New(defaultConfig(), 1<<30)
	for id := uint64(0); id < 50; id++ {
		c.Admit(obj(id, 16<<10, webobj.KindStatic))
	}
	before := c.Len()
	cfg := defaultConfig()
	cfg.CacheMemMB = 32
	cfg.ObjectsPerBucket = 40 // different directory geometry
	c.Reconfigure(cfg)
	if c.Len() != before {
		t.Fatalf("Len after reconfigure = %d, want %d", c.Len(), before)
	}
	if c.MemBytes() != 0 {
		t.Fatal("memory level survived restart")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// All objects still served (from disk).
	for id := uint64(0); id < 50; id++ {
		if r, _ := c.Lookup(obj(id, 16<<10, webobj.KindStatic)); r != HitDisk {
			t.Fatalf("object %d = %v after reconfigure, want hit-disk", id, r)
		}
	}
}

func TestReconfigurePreservesRecency(t *testing.T) {
	cfg := defaultConfig()
	c := New(cfg, 1<<30)
	for id := uint64(0); id < 10; id++ {
		c.Admit(obj(id, 4<<10, webobj.KindStatic))
	}
	c.Lookup(obj(0, 4<<10, webobj.KindStatic)) // promote 0 to MRU
	// Shrink the disk via watermarks so old entries evict on reconfigure.
	small := defaultConfig()
	c.Reconfigure(small)
	// Entry 0 must still be the most recent: filling the cache to force
	// evictions should evict others first. Verify by reconfiguring onto a
	// tiny store.
	tiny := New(small, 24<<10)
	for id := uint64(0); id < 10; id++ {
		tiny.Admit(obj(id, 4<<10, webobj.KindStatic))
	}
	// indirect check: invariants hold and LRU list is consistent.
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReconfigureEnforcesNewWatermarks(t *testing.T) {
	cfg := defaultConfig()
	cfg.SwapLowPct = 90
	cfg.SwapHighPct = 95
	c := New(cfg, 100<<10)
	for id := uint64(0); id < 20; id++ {
		c.Admit(obj(id, 4<<10, webobj.KindStatic))
	}
	filled := c.DiskBytes()
	lower := defaultConfig()
	lower.SwapLowPct = 30
	lower.SwapHighPct = 40
	c.Reconfigure(lower)
	if c.DiskBytes() >= filled || c.DiskBytes() > 40<<10 {
		t.Fatalf("watermarks not enforced on reconfigure: %d bytes", c.DiskBytes())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReconfigureResetsStats(t *testing.T) {
	c := New(defaultConfig(), 1<<30)
	c.Admit(obj(1, 4<<10, webobj.KindStatic))
	c.Lookup(obj(1, 4<<10, webobj.KindStatic))
	c.Reconfigure(defaultConfig())
	if c.Stats() != (Stats{}) {
		t.Fatalf("stats survived reconfigure: %+v", c.Stats())
	}
}
