package cluster

import (
	"testing"
	"testing/quick"

	"webharmony/internal/simnet"
)

func newEngine() *simnet.Engine { return &simnet.Engine{} }

func TestTierString(t *testing.T) {
	if TierProxy.String() != "proxy" || TierApp.String() != "app" ||
		TierDB.String() != "db" || Tier(9).String() != "unknown" {
		t.Fatal("Tier.String wrong")
	}
	if len(Tiers()) != 3 {
		t.Fatal("Tiers() wrong")
	}
}

func TestResourceString(t *testing.T) {
	names := map[Resource]string{ResCPU: "cpu", ResMemory: "memory", ResNet: "net", ResDisk: "disk"}
	for r, want := range names {
		if r.String() != want {
			t.Fatalf("Resource(%d).String = %q, want %q", r, r.String(), want)
		}
	}
	if Resource(99).String() != "unknown" {
		t.Fatal("unknown resource name")
	}
	if NumResources != 4 {
		t.Fatalf("NumResources = %d, want 4", NumResources)
	}
}

func TestDefaultHardwareMatchesTable2(t *testing.T) {
	hw := DefaultHardware()
	if hw.Cores != 2 {
		t.Error("paper machines are dual-processor")
	}
	if hw.MemoryBytes != 1<<30 {
		t.Error("paper machines have 1 GB memory")
	}
	if hw.NetRate != 12.5*(1<<20) {
		t.Error("paper network is 100 Mb/s")
	}
}

func TestNewClusterLayout(t *testing.T) {
	c := New(newEngine(), DefaultHardware(), 4, 2, 1)
	if len(c.Nodes()) != 7 {
		t.Fatalf("nodes = %d, want 7", len(c.Nodes()))
	}
	if c.TierSize(TierProxy) != 4 || c.TierSize(TierApp) != 2 || c.TierSize(TierDB) != 1 {
		t.Fatalf("layout = %s", c.Layout())
	}
	if c.Layout() != "4/2/1" {
		t.Fatalf("Layout = %q", c.Layout())
	}
	if c.Node(0).Tier() != TierProxy || c.Node(6).Tier() != TierDB {
		t.Fatal("tier assignment order wrong")
	}
	if c.Node(99) != nil {
		t.Fatal("missing node should be nil")
	}
}

func TestNewClusterPanicsOnEmptyTier(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for empty tier")
		}
	}()
	New(newEngine(), DefaultHardware(), 1, 0, 1)
}

func TestSetTierMovesNode(t *testing.T) {
	c := New(newEngine(), DefaultHardware(), 2, 2, 1)
	n := c.TierNodes(TierProxy)[0]
	n.SetTier(TierApp)
	if c.TierSize(TierProxy) != 1 || c.TierSize(TierApp) != 3 {
		t.Fatalf("after move layout = %s", c.Layout())
	}
}

func TestMemoryPressureSlowdown(t *testing.T) {
	eng := newEngine()
	n := NewNode(eng, 0, TierApp, DefaultHardware())
	n.SetMemUsed(512 << 20)
	if n.Slowdown() != 1 {
		t.Fatalf("slowdown below capacity = %v, want 1", n.Slowdown())
	}
	n.SetMemUsed(1 << 30)
	if n.Slowdown() != 1 {
		t.Fatalf("slowdown at capacity = %v, want 1", n.Slowdown())
	}
	n.SetMemUsed(3 << 29) // 1.5 GB: 50% overcommit
	s := n.Slowdown()
	if s <= 1 {
		t.Fatalf("no slowdown at 50%% overcommit")
	}
	n.SetMemUsed(2 << 30) // 100% overcommit
	if n.Slowdown() <= s {
		t.Fatal("slowdown not monotone in overcommit")
	}
	n.SetMemUsed(-5)
	if n.MemUsed() != 0 {
		t.Fatal("negative memory not clamped")
	}
}

func TestMemoryPressureSlowsCPU(t *testing.T) {
	eng := newEngine()
	n := NewNode(eng, 0, TierApp, DefaultHardware())
	var normalDone, thrashDone float64
	n.CPU().Submit(1, func() { normalDone = eng.Now() })
	eng.Run()
	n.SetMemUsed(2 << 30)
	start := eng.Now()
	n.CPU().Submit(1, func() { thrashDone = eng.Now() - start })
	eng.Run()
	if thrashDone <= normalDone {
		t.Fatalf("thrashing job (%v) not slower than normal (%v)", thrashDone, normalDone)
	}
}

func TestMemUtilizationClamped(t *testing.T) {
	n := NewNode(newEngine(), 0, TierApp, DefaultHardware())
	n.SetMemUsed(4 << 30)
	if n.MemUtilization() != 1 {
		t.Fatalf("MemUtilization = %v, want clamped 1", n.MemUtilization())
	}
}

func TestUtilizationWindow(t *testing.T) {
	eng := newEngine()
	n := NewNode(eng, 0, TierProxy, DefaultHardware())
	snap := n.Snapshot()
	// Occupy one of two cores for the whole window.
	n.CPU().Submit(10, nil)
	eng.RunUntil(10)
	u := n.Utilization(snap)
	if u[ResCPU] < 0.45 || u[ResCPU] > 0.55 {
		t.Fatalf("CPU utilization = %v, want ~0.5", u[ResCPU])
	}
	if u[ResDisk] != 0 || u[ResNet] != 0 {
		t.Fatal("idle resources show utilization")
	}
}

func TestDemandConversions(t *testing.T) {
	n := NewNode(newEngine(), 0, TierDB, DefaultHardware())
	d := n.DiskDemand(30 << 20) // 30 MB at 30 MB/s = 1s + seek
	if d < 1.0 || d > 1.01 {
		t.Fatalf("DiskDemand = %v, want ~1.004", d)
	}
	nd := n.NetDemand(12_500_000 * 2)
	if nd < 1.8 || nd > 2.0 {
		t.Fatalf("NetDemand = %v, want ~1.9", nd)
	}
}

func TestNodePanicsOnBadHardware(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for invalid hardware")
		}
	}()
	NewNode(newEngine(), 0, TierApp, Hardware{})
}

func TestSlowdownMonotoneProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		eng := newEngine()
		n := NewNode(eng, 0, TierApp, DefaultHardware())
		lo, hi := int64(a), int64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		n.SetMemUsed(lo << 10)
		sLo := n.Slowdown()
		n.SetMemUsed(hi << 10)
		sHi := n.Slowdown()
		return sHi >= sLo && sLo >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpanSiteVocabulary(t *testing.T) {
	seen := make(map[string]bool)
	for site := 0; site < NumSpanSites; site++ {
		name := SpanSiteName(uint8(site))
		if name == "" || name == "unknown" {
			t.Errorf("site %d has no name", site)
		}
		if seen[name] {
			t.Errorf("duplicate site name %q", name)
		}
		seen[name] = true
		g := SpanSiteGroup(uint8(site))
		if int(g) >= NumSpanGroups {
			t.Errorf("site %q maps to out-of-range group %d", name, g)
		}
		if gn := SpanGroupName(g); gn == "" || gn == "unknown" {
			t.Errorf("group %d of site %q has no name", g, name)
		}
	}
	if got := SpanSiteName(uint8(NumSpanSites)); got != "unknown" {
		t.Errorf("SpanSiteName(out of range) = %q, want \"unknown\"", got)
	}
	if got := SpanSiteGroup(uint8(NumSpanSites)); got != SpanGroupOther {
		t.Errorf("SpanSiteGroup(out of range) = %d, want other", got)
	}
	if got := SpanGroupName(uint8(NumSpanGroups)); got != "unknown" {
		t.Errorf("SpanGroupName(out of range) = %q, want \"unknown\"", got)
	}
	// The reserved unattributed site rolls up to "other".
	if SpanSiteName(SpanSiteNone) != "other" || SpanSiteGroup(SpanSiteNone) != SpanGroupOther {
		t.Error("site 0 must be the unattributed residual")
	}
}

// TestSpanSitesFollowTier runs one job through a node's CPU before and
// after a tier move and asserts the recorded attribution site follows the
// move — the property the bottleneck report depends on during §IV
// reconfigurations.
func TestSpanSitesFollowTier(t *testing.T) {
	eng := newEngine()
	n := NewNode(eng, 0, TierProxy, DefaultHardware())

	runOne := func() simnet.SpanSeg {
		var buf simnet.SpanBuf
		eng.Schedule(0, func() {
			buf.Begin(eng.NowTicks())
			prev := eng.SetSpan(&buf)
			n.CPU().Submit(0.001, func() { buf.CloseAt(eng.NowTicks()) })
			eng.SetSpan(prev)
		})
		eng.Run()
		if len(buf.Segs) != 1 {
			t.Fatalf("got %d segments, want 1", len(buf.Segs))
		}
		return buf.Segs[0]
	}

	if seg := runOne(); seg.Site != SpanSiteProxyCPU {
		t.Errorf("proxy-tier CPU seg at site %s, want proxy.cpu", SpanSiteName(seg.Site))
	}
	n.SetTier(TierDB)
	if seg := runOne(); seg.Site != SpanSiteDBCPU {
		t.Errorf("after move, CPU seg at site %s, want db.cpu", SpanSiteName(seg.Site))
	}
	if n.Disk() == nil || n.NIC() == nil || n.Hardware() != DefaultHardware() {
		t.Error("node accessors broken")
	}
	if n.ID() != 0 || n.Name() == "" {
		t.Errorf("node identity broken: id %d name %q", n.ID(), n.Name())
	}
}
