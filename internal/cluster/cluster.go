// Package cluster models the machines of the web cluster: each node has a
// dual-core CPU, a disk, a network interface and 1 GB of memory, matching
// the paper's testbed (Table 2). Nodes belong to tiers (proxy, application,
// database) and can be reassigned between tiers — the mechanism behind the
// automatic reconfiguration experiments of §IV.
package cluster

import (
	"fmt"

	"webharmony/internal/simnet"
)

// Tier identifies a functional tier of the web service.
type Tier int

const (
	// TierProxy is the presentation tier (Squid-like caches).
	TierProxy Tier = iota
	// TierApp is the middleware tier (Tomcat-like application servers).
	TierApp
	// TierDB is the backend tier (MySQL-like database servers).
	TierDB
)

// String returns the tier name.
func (t Tier) String() string {
	switch t {
	case TierProxy:
		return "proxy"
	case TierApp:
		return "app"
	case TierDB:
		return "db"
	default:
		return "unknown"
	}
}

// Tiers lists all tiers in pipeline order.
func Tiers() []Tier { return []Tier{TierProxy, TierApp, TierDB} }

// Resource identifies a monitored node resource (§IV: CPU load, memory
// usage, network bandwidth and disk I/O).
type Resource int

const (
	// ResCPU is processor utilization.
	ResCPU Resource = iota
	// ResMemory is memory usage relative to capacity.
	ResMemory
	// ResNet is network-interface utilization.
	ResNet
	// ResDisk is disk utilization.
	ResDisk
	numResources
)

// NumResources is the number of monitored resources per node.
const NumResources = int(numResources)

// String returns the resource name.
func (r Resource) String() string {
	switch r {
	case ResCPU:
		return "cpu"
	case ResMemory:
		return "memory"
	case ResNet:
		return "net"
	case ResDisk:
		return "disk"
	default:
		return "unknown"
	}
}

// Span attribution sites: the per-request span layer (simnet's SpanBuf)
// records which resource each segment of a request's timeline was spent
// at, as an opaque uint8. This is the cluster-wide vocabulary for those
// sites — tier resources (assigned to node stations by tier, updated when
// a node moves tiers) plus the tier servers' pools and the inter-tier
// hops. Site 0 is simnet's reserved "unattributed" site.
const (
	// SpanSiteNone is unattributed time (simnet's residual site).
	SpanSiteNone uint8 = iota
	SpanSiteProxyCPU
	SpanSiteProxyDisk
	SpanSiteProxyNIC
	SpanSiteAppCPU
	SpanSiteAppDisk
	SpanSiteAppNIC
	SpanSiteAppHTTPPool // Tomcat HTTP connector accept queue / processors
	SpanSiteAppAJPPool  // Tomcat AJP servlet-worker pool
	SpanSiteDBCPU
	SpanSiteDBDisk
	SpanSiteDBNIC
	SpanSiteDBConnPool   // MySQL max_connections listener
	SpanSiteDBThreadPool // MySQL thread_concurrency gate
	SpanSiteXfer         // inter-tier LAN hop
	SpanSiteExt          // external services (TPC-W payment gateway)
	numSpanSites
)

// NumSpanSites is the number of defined span sites.
const NumSpanSites = int(numSpanSites)

// spanSiteNames indexes site → exported name, in site order.
var spanSiteNames = [NumSpanSites]string{
	"other",
	"proxy.cpu", "proxy.disk", "proxy.nic",
	"app.cpu", "app.disk", "app.nic", "app.http", "app.ajp",
	"db.cpu", "db.disk", "db.nic", "db.conns", "db.threads",
	"xfer", "ext",
}

// SpanSiteName returns the site's exported name ("proxy.cpu", "xfer", ...).
func SpanSiteName(site uint8) string {
	if int(site) >= NumSpanSites {
		return "unknown"
	}
	return spanSiteNames[site]
}

// Span attribution groups: sites rolled up to the granularity bottleneck
// reports rank — the three tiers, the network, external services and the
// unattributed residual.
const (
	SpanGroupProxy uint8 = iota
	SpanGroupApp
	SpanGroupDB
	SpanGroupNet
	SpanGroupExt
	SpanGroupOther
	numSpanGroups
)

// NumSpanGroups is the number of span attribution groups.
const NumSpanGroups = int(numSpanGroups)

// spanSiteGroups indexes site → group, in site order.
var spanSiteGroups = [NumSpanSites]uint8{
	SpanGroupOther,
	SpanGroupProxy, SpanGroupProxy, SpanGroupProxy,
	SpanGroupApp, SpanGroupApp, SpanGroupApp, SpanGroupApp, SpanGroupApp,
	SpanGroupDB, SpanGroupDB, SpanGroupDB, SpanGroupDB, SpanGroupDB,
	SpanGroupNet, SpanGroupExt,
}

// SpanSiteGroup returns the attribution group a site rolls up to.
func SpanSiteGroup(site uint8) uint8 {
	if int(site) >= NumSpanSites {
		return SpanGroupOther
	}
	return spanSiteGroups[site]
}

// spanGroupNames indexes group → exported name, in group order.
var spanGroupNames = [NumSpanGroups]string{"proxy", "app", "db", "net", "ext", "other"}

// SpanGroupName returns the group's exported name.
func SpanGroupName(g uint8) string {
	if int(g) >= NumSpanGroups {
		return "unknown"
	}
	return spanGroupNames[g]
}

// Hardware describes a node's physical capacities.
type Hardware struct {
	Cores       int     // CPU cores (paper: dual processors)
	CPUSpeed    float64 // relative speed multiplier, 1.0 = reference
	MemoryBytes int64   // RAM (paper: 1 GB)
	DiskRate    float64 // sequential bytes/second for service-time math
	NetRate     float64 // NIC bytes/second (paper: 100 Mb/s)
}

// DefaultHardware returns the paper's machine: dual 1.67 GHz Athlon,
// 1 GB RAM, 100 Mb/s Ethernet, commodity IDE disk.
func DefaultHardware() Hardware {
	return Hardware{
		Cores:       2,
		CPUSpeed:    1.0,
		MemoryBytes: 1 << 30,
		DiskRate:    30 << 20,         // 30 MB/s
		NetRate:     12.5 * (1 << 20), // 100 Mb/s = 12.5 MB/s
	}
}

// Node is one machine of the cluster.
type Node struct {
	id   int
	name string
	hw   Hardware
	tier Tier

	cpu  *simnet.Station
	disk *simnet.Station
	nic  *simnet.Station

	memUsed int64
	eng     *simnet.Engine
}

// NewNode creates a node with the given hardware assigned to tier.
func NewNode(eng *simnet.Engine, id int, tier Tier, hw Hardware) *Node {
	if hw.Cores <= 0 || hw.CPUSpeed <= 0 || hw.MemoryBytes <= 0 || hw.DiskRate <= 0 || hw.NetRate <= 0 {
		panic("cluster: invalid hardware")
	}
	name := fmt.Sprintf("node%d", id)
	n := &Node{
		id:   id,
		name: name,
		hw:   hw,
		tier: tier,
		cpu:  simnet.NewStation(eng, name+".cpu", hw.Cores, hw.CPUSpeed),
		disk: simnet.NewStation(eng, name+".disk", 1, 1.0),
		nic:  simnet.NewStation(eng, name+".nic", 1, 1.0),
		eng:  eng,
	}
	n.applySpanSites()
	return n
}

// applySpanSites points the node's stations at the span sites of its
// current tier, so latency attribution follows reconfiguration moves.
func (n *Node) applySpanSites() {
	var cpu, disk, nic uint8
	switch n.tier {
	case TierProxy:
		cpu, disk, nic = SpanSiteProxyCPU, SpanSiteProxyDisk, SpanSiteProxyNIC
	case TierApp:
		cpu, disk, nic = SpanSiteAppCPU, SpanSiteAppDisk, SpanSiteAppNIC
	case TierDB:
		cpu, disk, nic = SpanSiteDBCPU, SpanSiteDBDisk, SpanSiteDBNIC
	}
	n.cpu.SetSpanSite(cpu)
	n.disk.SetSpanSite(disk)
	n.nic.SetSpanSite(nic)
}

// ID returns the node's identifier.
func (n *Node) ID() int { return n.id }

// Name returns the node's diagnostic name.
func (n *Node) Name() string { return n.name }

// Tier returns the node's current tier.
func (n *Node) Tier() Tier { return n.tier }

// SetTier reassigns the node to another tier (the reconfiguration move),
// re-pointing its stations' span sites so attribution follows the move.
// The caller is responsible for draining or migrating in-flight work.
func (n *Node) SetTier(t Tier) {
	n.tier = t
	n.applySpanSites()
}

// Hardware returns the node's hardware description.
func (n *Node) Hardware() Hardware { return n.hw }

// CPU returns the node's CPU station. Service demands are in seconds of
// reference-speed compute.
func (n *Node) CPU() *simnet.Station { return n.cpu }

// Disk returns the node's disk station.
func (n *Node) Disk() *simnet.Station { return n.disk }

// NIC returns the node's network station.
func (n *Node) NIC() *simnet.Station { return n.nic }

// DiskDemand converts a byte count to seconds of disk service.
func (n *Node) DiskDemand(bytes int64) float64 {
	const seekTime = 0.004 // 4 ms average seek+rotate
	return seekTime + float64(bytes)/n.hw.DiskRate
}

// NetDemand converts a byte count to seconds of NIC service.
func (n *Node) NetDemand(bytes int64) float64 {
	return float64(bytes) / n.hw.NetRate
}

// SetMemUsed records the node's current memory footprint and applies the
// thrashing penalty: when the footprint exceeds physical memory, CPU and
// disk slow down smoothly (paging steals cycles and disk bandwidth).
func (n *Node) SetMemUsed(bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	n.memUsed = bytes
	slow := n.Slowdown()
	n.cpu.SetSpeed(n.hw.CPUSpeed / slow)
	n.disk.SetSpeed(1.0 / slow)
}

// MemUsed returns the recorded memory footprint.
func (n *Node) MemUsed() int64 { return n.memUsed }

// Slowdown returns the current thrashing multiplier (1 = no pressure).
// Overcommit by fraction f costs 1 + 12f + 40f²: mild at first, then steep,
// which is how real paging behaves.
func (n *Node) Slowdown() float64 {
	over := float64(n.memUsed-n.hw.MemoryBytes) / float64(n.hw.MemoryBytes)
	if over <= 0 {
		return 1
	}
	return 1 + 12*over + 40*over*over
}

// MemUtilization returns memory usage relative to capacity, clamped to 1.
func (n *Node) MemUtilization() float64 {
	u := float64(n.memUsed) / float64(n.hw.MemoryBytes)
	if u > 1 {
		return 1
	}
	return u
}

// UtilSnapshot captures the busy-time counters needed to compute
// utilizations over a window.
type UtilSnapshot struct {
	at   float64
	cpu  float64
	disk float64
	nic  float64
}

// Snapshot records the node's counters at the current simulated time.
func (n *Node) Snapshot() UtilSnapshot {
	return UtilSnapshot{
		at:   n.eng.Now(),
		cpu:  n.cpu.BusyTime(),
		disk: n.disk.BusyTime(),
		nic:  n.nic.BusyTime(),
	}
}

// Utilization returns the per-resource utilizations accumulated since the
// snapshot, indexed by Resource. Memory utilization is instantaneous.
func (n *Node) Utilization(s UtilSnapshot) [NumResources]float64 {
	var u [NumResources]float64
	u[ResCPU] = n.cpu.Utilization(s.cpu, s.at)
	u[ResDisk] = n.disk.Utilization(s.disk, s.at)
	u[ResNet] = n.nic.Utilization(s.nic, s.at)
	u[ResMemory] = n.MemUtilization()
	return u
}

// Cluster is the collection of nodes.
type Cluster struct {
	nodes []*Node

	// byTier holds the backing arrays TierNodes reuses across calls, so
	// the request router's per-request tier picks allocate nothing.
	byTier [3][]*Node
}

// New creates a cluster of nodes: counts[t] nodes are assigned to tier t.
func New(eng *simnet.Engine, hw Hardware, proxyN, appN, dbN int) *Cluster {
	if proxyN < 1 || appN < 1 || dbN < 1 {
		panic("cluster: each tier needs at least one node")
	}
	c := &Cluster{}
	id := 0
	add := func(tier Tier, n int) {
		for i := 0; i < n; i++ {
			c.nodes = append(c.nodes, NewNode(eng, id, tier, hw))
			id++
		}
	}
	add(TierProxy, proxyN)
	add(TierApp, appN)
	add(TierDB, dbN)
	return c
}

// Nodes returns all nodes. Callers must not modify the slice.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Node returns the node with the given ID, or nil.
func (c *Cluster) Node(id int) *Node {
	for _, n := range c.nodes {
		if n.id == id {
			return n
		}
	}
	return nil
}

// TierNodes returns the nodes currently serving tier t, in ID order. The
// returned slice's backing array is reused by the next TierNodes call for
// the same tier: callers must not modify it or retain it across tier
// reassignments.
func (c *Cluster) TierNodes(t Tier) []*Node {
	out := c.byTier[t][:0]
	for _, n := range c.nodes {
		if n.tier == t {
			out = append(out, n)
		}
	}
	c.byTier[t] = out
	return out
}

// TierSize returns the number of nodes in tier t (M(t) in the paper).
func (c *Cluster) TierSize(t Tier) int { return len(c.TierNodes(t)) }

// Layout describes the cluster as "proxy/app/db" counts.
func (c *Cluster) Layout() string {
	return fmt.Sprintf("%d/%d/%d",
		c.TierSize(TierProxy), c.TierSize(TierApp), c.TierSize(TierDB))
}
