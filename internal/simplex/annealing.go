package simplex

import (
	"math"

	"webharmony/internal/param"
	"webharmony/internal/rng"
)

// SimulatedAnnealing is an ask/tell annealer over the parameter lattice.
// The paper's related work (Nimrod/O) applies simulated annealing to the
// same kind of search; it is included as a comparison algorithm. Proposals
// perturb a random subset of coordinates of the current point by a
// temperature-scaled step; worse results are accepted with the Metropolis
// probability, and the temperature decays geometrically per evaluation.
type SimulatedAnnealing struct {
	space *param.Space
	src   *rng.Source

	temp    float64 // current temperature, in unit-cube distance
	cooling float64 // per-evaluation temperature multiplier
	minTemp float64

	current     []float64 // unit-cube position of the accepted point
	currentCost float64
	haveCurrent bool

	pending []float64
	asked   bool
	first   bool

	best     param.Config
	bestCost float64
	haveBest bool
	evals    int

	// scale converts cost differences into acceptance probabilities; it
	// adapts to the observed cost magnitudes.
	scale float64

	obs StepObserver
}

// SetObserver installs a step observer (nil detaches it).
func (sa *SimulatedAnnealing) SetObserver(obs StepObserver) { sa.obs = obs }

// AnnealingOptions configures a SimulatedAnnealing tuner. Zero fields take
// defaults (initial temperature 0.25, cooling 0.97, minimum 0.01).
type AnnealingOptions struct {
	InitTemp float64
	Cooling  float64
	MinTemp  float64
	Seed     uint64
}

func (o AnnealingOptions) withDefaults() AnnealingOptions {
	if o.InitTemp == 0 {
		o.InitTemp = 0.25
	}
	if o.Cooling == 0 {
		o.Cooling = 0.97
	}
	if o.MinTemp == 0 {
		o.MinTemp = 0.01
	}
	return o
}

// NewSimulatedAnnealing creates an annealer anchored at the space default.
func NewSimulatedAnnealing(space *param.Space, opts AnnealingOptions) *SimulatedAnnealing {
	opts = opts.withDefaults()
	sa := &SimulatedAnnealing{
		space:   space,
		src:     rng.New(opts.Seed ^ 0xa77ea1),
		temp:    opts.InitTemp,
		cooling: opts.Cooling,
		minTemp: opts.MinTemp,
		first:   true,
	}
	sa.current = space.Normalize(space.DefaultConfig())
	return sa
}

// Ask returns the next configuration to evaluate.
func (sa *SimulatedAnnealing) Ask() param.Config {
	if sa.asked {
		panic("simplex: Ask called twice without Tell")
	}
	sa.asked = true
	if sa.first {
		sa.pending = append([]float64(nil), sa.current...)
		return sa.space.Denormalize(sa.pending)
	}
	// Perturb a random non-empty subset of coordinates.
	u := append([]float64(nil), sa.current...)
	k := 1 + sa.src.Intn(len(u))
	for _, i := range sa.src.Perm(len(u))[:k] {
		u[i] += sa.src.Normal(0, sa.temp)
	}
	sa.pending = clampCube(u)
	return sa.space.Denormalize(sa.pending)
}

// Peek returns the next proposal without mutating the annealer. The
// horizon is one: Tell decides acceptance with a Metropolis draw (and
// cools the temperature), so every later proposal depends on the cost.
// The perturbation draws are replayed on a clone of the rng stream.
func (sa *SimulatedAnnealing) Peek(max int) []param.Config {
	if sa.asked {
		panic("simplex: Peek with an outstanding proposal")
	}
	if sa.first {
		return []param.Config{sa.space.Denormalize(sa.current)}
	}
	src := sa.src.Clone()
	u := append([]float64(nil), sa.current...)
	k := 1 + src.Intn(len(u))
	for _, i := range src.Perm(len(u))[:k] {
		u[i] += src.Normal(0, sa.temp)
	}
	return []param.Config{sa.space.Denormalize(clampCube(u))}
}

// Tell reports the cost (lower is better) for the last proposal.
func (sa *SimulatedAnnealing) Tell(cost float64) {
	if !sa.asked {
		panic("simplex: Tell without Ask")
	}
	sa.asked = false
	sa.evals++
	cfg := sa.space.Denormalize(sa.pending)
	if !sa.haveBest || cost < sa.bestCost {
		sa.best = cfg.Clone()
		sa.bestCost = cost
		sa.haveBest = true
	}
	move := "anneal"
	if sa.first {
		move = "init"
	}
	emit(sa.obs, Step{
		Move: move, Config: cfg,
		Cost: cost, BestCost: sa.bestCost, Evaluations: sa.evals,
	})
	if sa.first {
		sa.first = false
		sa.currentCost = cost
		sa.haveCurrent = true
		sa.scale = math.Abs(cost)/10 + 1e-9
		return
	}
	accept := cost <= sa.currentCost
	if !accept {
		// Metropolis criterion on the adaptive cost scale.
		p := math.Exp(-(cost - sa.currentCost) / (sa.scale * sa.temp * 4))
		accept = sa.src.Bernoulli(p)
	}
	if accept {
		sa.current = append(sa.current[:0], sa.pending...)
		sa.currentCost = cost
	}
	sa.temp *= sa.cooling
	if sa.temp < sa.minTemp {
		sa.temp = sa.minTemp
	}
}

// Best returns the best configuration seen so far.
func (sa *SimulatedAnnealing) Best() (param.Config, float64, bool) {
	if !sa.haveBest {
		return sa.space.DefaultConfig(), 0, false
	}
	return sa.best.Clone(), sa.bestCost, true
}

// Reset re-anchors the annealer at the given configuration and reheats.
func (sa *SimulatedAnnealing) Reset(around param.Config) {
	anchor := around.Clone()
	sa.space.Clamp(anchor)
	sa.current = sa.space.Normalize(anchor)
	sa.asked = false
	sa.haveBest = false
	sa.haveCurrent = false
	sa.first = true
	sa.temp = 0.25
	emit(sa.obs, Step{Move: "reset", Config: anchor.Clone(), Evaluations: sa.evals})
}

// Converged reports whether the temperature has cooled to the point where
// proposals rarely leave the current lattice point.
func (sa *SimulatedAnnealing) Converged() bool { return sa.temp <= sa.minTemp }

// Evaluations returns the number of completed Ask/Tell cycles.
func (sa *SimulatedAnnealing) Evaluations() int { return sa.evals }

// Temperature returns the current annealing temperature (diagnostic).
func (sa *SimulatedAnnealing) Temperature() float64 { return sa.temp }

var _ Tuner = (*SimulatedAnnealing)(nil)
