package simplex

import (
	"math"
	"testing"
	"testing/quick"

	"webharmony/internal/param"
	"webharmony/internal/rng"
)

func space2D() *param.Space {
	return param.MustSpace(
		param.Def{Name: "x", Min: 0, Max: 200, Default: 20, Step: 1},
		param.Def{Name: "y", Min: 0, Max: 200, Default: 180, Step: 1},
	)
}

// bowl is a convex quadratic with minimum at (tx, ty).
func bowl(tx, ty float64) func(param.Config) float64 {
	return func(c param.Config) float64 {
		dx := float64(c[0]) - tx
		dy := float64(c[1]) - ty
		return dx*dx + 2*dy*dy
	}
}

// drive runs n Ask/Tell cycles of t against f.
func drive(t Tuner, f func(param.Config) float64, n int) {
	for i := 0; i < n; i++ {
		cfg := t.Ask()
		t.Tell(f(cfg))
	}
}

func TestNelderMeadFindsBowlMinimum(t *testing.T) {
	sp := space2D()
	nm := NewNelderMead(sp, Options{})
	f := bowl(120, 60)
	drive(nm, f, 200)
	best, cost, ok := nm.Best()
	if !ok {
		t.Fatal("no best after 200 evals")
	}
	if cost > 100 { // within 10 units of the optimum in each dim
		t.Fatalf("best cost %v at %v, want near 0 at (120,60)", cost, best)
	}
}

func TestNelderMeadBeatsRandomOnBowl(t *testing.T) {
	sp := space2D()
	f := bowl(77, 133)
	nm := NewNelderMead(sp, Options{Seed: 1})
	rs := NewRandomSearch(sp, 1)
	drive(nm, f, 60)
	drive(rs, f, 60)
	_, nmCost, _ := nm.Best()
	_, rsCost, _ := rs.Best()
	if nmCost > rsCost {
		t.Fatalf("simplex (%v) did not beat random (%v) in 60 evals", nmCost, rsCost)
	}
}

func TestNelderMeadProposalsAlwaysFeasible(t *testing.T) {
	sp := param.MustSpace(
		param.Def{Name: "a", Min: 5, Max: 250, Default: 10, Step: 5},
		param.Def{Name: "b", Min: 0, Max: 7, Default: 3, Step: 1},
		param.Def{Name: "c", Min: 1000, Max: 100000, Default: 2000, Step: 512},
	)
	f := func(seed uint64) bool {
		nm := NewNelderMead(sp, Options{Seed: seed})
		src := rng.New(seed)
		for i := 0; i < 100; i++ {
			cfg := nm.Ask()
			if !sp.Feasible(cfg) {
				return false
			}
			nm.Tell(src.Float64() * 100) // noisy landscape
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestNelderMeadInitialEvalsCoverSimplex(t *testing.T) {
	// Tuning n parameters requires exploring n+1 configurations before the
	// first reflection (the paper's scalability bottleneck).
	sp := param.MustSpace(
		param.Def{Name: "a", Min: 0, Max: 100, Default: 50, Step: 1},
		param.Def{Name: "b", Min: 0, Max: 100, Default: 50, Step: 1},
		param.Def{Name: "c", Min: 0, Max: 100, Default: 50, Step: 1},
	)
	nm := NewNelderMead(sp, Options{})
	seen := map[string]bool{}
	for i := 0; i < sp.Len()+1; i++ {
		cfg := nm.Ask()
		seen[cfg.Key()] = true
		nm.Tell(1)
	}
	if len(seen) < sp.Len()+1 {
		t.Fatalf("initial simplex proposed only %d distinct configs, want %d", len(seen), sp.Len()+1)
	}
}

func TestNelderMeadFirstProposalIsDefault(t *testing.T) {
	sp := space2D()
	nm := NewNelderMead(sp, Options{})
	first := nm.Ask()
	if !first.Equal(sp.DefaultConfig()) {
		t.Fatalf("first proposal %v, want default %v", first, sp.DefaultConfig())
	}
}

func TestNelderMeadProtocolPanics(t *testing.T) {
	sp := space2D()
	nm := NewNelderMead(sp, Options{})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Tell before Ask did not panic")
			}
		}()
		nm.Tell(1)
	}()
	nm.Ask()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double Ask did not panic")
			}
		}()
		nm.Ask()
	}()
}

func TestNelderMeadReset(t *testing.T) {
	sp := space2D()
	nm := NewNelderMead(sp, Options{})
	drive(nm, bowl(120, 60), 50)
	best, _, _ := nm.Best()
	nm.Reset(best)
	if _, _, ok := nm.Best(); ok {
		t.Fatal("Best not cleared after Reset")
	}
	// After reset the search re-anchors near `best`.
	first := nm.Ask()
	if !first.Equal(best) {
		t.Fatalf("first proposal after Reset = %v, want anchor %v", first, best)
	}
	nm.Tell(1)
	// And it can keep improving toward a new optimum.
	drive(nm, bowl(20, 20), 100)
	_, cost, _ := nm.Best()
	if cost > 2000 {
		t.Fatalf("after reset+retune cost = %v, want near new optimum", cost)
	}
}

func TestNelderMeadResetWithOutstandingAsk(t *testing.T) {
	sp := space2D()
	nm := NewNelderMead(sp, Options{})
	nm.Ask()
	nm.Reset(sp.DefaultConfig()) // must not panic
	cfg := nm.Ask()              // protocol restarts cleanly
	if !sp.Feasible(cfg) {
		t.Fatal("infeasible proposal after mid-flight Reset")
	}
}

func TestNelderMeadConvergesOnConstantFunction(t *testing.T) {
	sp := param.MustSpace(param.Def{Name: "a", Min: 0, Max: 10, Default: 5, Step: 1})
	nm := NewNelderMead(sp, Options{})
	for i := 0; i < 300 && !nm.Converged(); i++ {
		nm.Ask()
		nm.Tell(1) // flat landscape: repeated shrinks collapse the simplex
	}
	if !nm.Converged() {
		t.Fatal("simplex did not collapse on a flat landscape in 300 evals")
	}
}

func TestNelderMeadGuardKeepsProposalsOffBoundary(t *testing.T) {
	sp := param.MustSpace(
		param.Def{Name: "a", Min: 0, Max: 1000, Default: 500, Step: 1},
		param.Def{Name: "b", Min: 0, Max: 1000, Default: 500, Step: 1},
	)
	// Steep landscape pushing toward the (0,0) corner: unguarded NM jumps
	// straight to extremes.
	f := func(c param.Config) float64 { return float64(c[0] + c[1]) }
	guarded := NewNelderMead(sp, Options{GuardFactor: 0.3, Seed: 5})
	extremes := 0
	for i := 0; i < 40; i++ {
		cfg := guarded.Ask()
		if cfg[0] == 0 || cfg[1] == 0 {
			extremes++
		}
		guarded.Tell(f(cfg))
	}
	unguarded := NewNelderMead(sp, Options{Seed: 5})
	extremesU := 0
	for i := 0; i < 40; i++ {
		cfg := unguarded.Ask()
		if cfg[0] == 0 || cfg[1] == 0 {
			extremesU++
		}
		unguarded.Tell(f(cfg))
	}
	if extremes >= extremesU {
		t.Fatalf("guard did not reduce extreme-value proposals: guarded=%d unguarded=%d", extremes, extremesU)
	}
}

func TestNelderMeadEvaluationsCount(t *testing.T) {
	sp := space2D()
	nm := NewNelderMead(sp, Options{})
	drive(nm, bowl(1, 1), 17)
	if nm.Evaluations() != 17 {
		t.Fatalf("Evaluations = %d, want 17", nm.Evaluations())
	}
}

func TestRandomSearchFirstIsDefault(t *testing.T) {
	sp := space2D()
	rs := NewRandomSearch(sp, 9)
	if !rs.Ask().Equal(sp.DefaultConfig()) {
		t.Fatal("random search should measure the default first")
	}
	rs.Tell(5)
	best, cost, ok := rs.Best()
	if !ok || cost != 5 || !best.Equal(sp.DefaultConfig()) {
		t.Fatal("best not tracked")
	}
}

func TestRandomSearchFeasibility(t *testing.T) {
	sp := param.MustSpace(
		param.Def{Name: "a", Min: 3, Max: 33, Default: 3, Step: 3},
	)
	rs := NewRandomSearch(sp, 2)
	for i := 0; i < 200; i++ {
		if cfg := rs.Ask(); !sp.Feasible(cfg) {
			t.Fatalf("infeasible random proposal %v", cfg)
		}
		rs.Tell(0)
	}
	if rs.Converged() {
		t.Fatal("random search must never report convergence")
	}
}

func TestCoordinateSearchDescendsBowl(t *testing.T) {
	sp := space2D()
	cs := NewCoordinateSearch(sp, 0)
	drive(cs, bowl(100, 100), 300)
	_, cost, _ := cs.Best()
	if cost > 500 {
		t.Fatalf("coordinate search cost = %v, want < 500", cost)
	}
}

func TestCoordinateSearchConvergence(t *testing.T) {
	sp := param.MustSpace(param.Def{Name: "a", Min: 0, Max: 100, Default: 50, Step: 10})
	cs := NewCoordinateSearch(sp, 0)
	for i := 0; i < 500 && !cs.Converged(); i++ {
		cfg := cs.Ask()
		cs.Tell(math.Abs(float64(cfg[0]) - 50))
	}
	if !cs.Converged() {
		t.Fatal("coordinate search did not converge in 500 evals")
	}
}

func TestCoordinateSearchReset(t *testing.T) {
	sp := space2D()
	cs := NewCoordinateSearch(sp, 0)
	drive(cs, bowl(10, 10), 50)
	anchor := param.Config{150, 150}
	cs.Reset(anchor)
	first := cs.Ask()
	if !first.Equal(anchor) {
		t.Fatalf("first proposal after Reset = %v, want %v", first, anchor)
	}
}

func TestTunersDeterministicGivenSeed(t *testing.T) {
	sp := space2D()
	f := bowl(42, 42)
	run := func() []string {
		nm := NewNelderMead(sp, Options{Seed: 77})
		var keys []string
		for i := 0; i < 30; i++ {
			cfg := nm.Ask()
			keys = append(keys, cfg.Key())
			nm.Tell(f(cfg))
		}
		return keys
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed runs diverged at eval %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestNelderMeadHighDimensional(t *testing.T) {
	// 24 parameters, like Table 3.
	defs := make([]param.Def, 24)
	for i := range defs {
		defs[i] = param.Def{Name: string(rune('a' + i)), Min: 0, Max: 1000, Default: 500, Step: 1}
	}
	sp := param.MustSpace(defs...)
	nm := NewNelderMead(sp, Options{})
	f := func(c param.Config) float64 {
		s := 0.0
		for _, v := range c {
			d := float64(v) - 300
			s += d * d
		}
		return s
	}
	defCost := f(sp.DefaultConfig())
	drive(nm, f, 200)
	_, cost, _ := nm.Best()
	if cost >= defCost {
		t.Fatalf("no improvement over default in 24-D: %v >= %v", cost, defCost)
	}
}

func BenchmarkNelderMeadAskTell(b *testing.B) {
	sp := space2D()
	nm := NewNelderMead(sp, Options{})
	f := bowl(50, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := nm.Ask()
		nm.Tell(f(cfg))
	}
}

func BenchmarkNelderMead24D(b *testing.B) {
	defs := make([]param.Def, 24)
	for i := range defs {
		defs[i] = param.Def{Name: string(rune('a' + i)), Min: 0, Max: 1000, Default: 500, Step: 1}
	}
	sp := param.MustSpace(defs...)
	nm := NewNelderMead(sp, Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := nm.Ask()
		nm.Tell(float64(cfg[0]))
	}
}
