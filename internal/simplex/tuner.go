// Package simplex implements the tuning algorithms at the kernel of the
// Active Harmony server. The primary algorithm is the Nelder-Mead simplex
// method adapted, as in §II.B of the paper, to the bounded integer lattices
// of server parameters: proposals made in a continuous unit cube are
// evaluated at the nearest feasible integer point.
//
// Because a live system yields exactly one performance measurement per
// tuning iteration, the algorithms are "ask/tell" state machines rather
// than closed-loop optimizers: Ask returns the next configuration to try,
// and Tell reports the measured cost (lower is better) for it.
package simplex

import (
	"fmt"

	"webharmony/internal/param"
	"webharmony/internal/rng"
)

// Tuner is a sequential configuration optimizer. Lower cost is better;
// callers maximizing throughput report the negated metric.
//
// The protocol is strict alternation: Ask, then Tell, then Ask...
// Implementations panic on protocol violations.
type Tuner interface {
	// Ask returns the next configuration to evaluate.
	Ask() param.Config
	// Tell reports the cost observed for the configuration returned by the
	// immediately preceding Ask.
	Tell(cost float64)
	// Best returns the best configuration and cost seen so far. Before any
	// Tell it returns the space default and +Inf semantics are avoided by
	// returning ok=false.
	Best() (param.Config, float64, bool)
	// Reset re-centers the search around the given configuration,
	// discarding accumulated state. Used when the environment shifts
	// (e.g. the workload changes) and old measurements are stale.
	Reset(around param.Config)
	// Converged reports whether the algorithm has effectively stopped
	// moving (every candidate it would propose rounds to the same point).
	Converged() bool
	// Evaluations returns the number of completed Ask/Tell cycles.
	Evaluations() int
	// Peek returns up to max upcoming proposals without mutating the
	// tuner: Peek(k) followed by k Ask/Tell cycles yields exactly the
	// peeked configurations in order, whatever costs the Tells report.
	// At least one configuration is returned (the next Ask); fewer than
	// max when the tuner's later moves depend on costs it has not seen
	// yet (its tell-independent horizon). Like Ask, Peek panics while a
	// proposal is outstanding. Speculative evaluation engines use it to
	// fan candidate measurements out in parallel.
	Peek(max int) []param.Config
}

// Options configures a NelderMead tuner. Zero fields take the standard
// coefficients (alpha=1, gamma=2, rho=0.5, sigma=0.5, delta=0.25).
type Options struct {
	Alpha float64 // reflection coefficient
	Gamma float64 // expansion coefficient
	Rho   float64 // contraction coefficient
	Sigma float64 // shrink coefficient
	Delta float64 // initial simplex edge length in unit-cube units

	// GuardFactor, when in (0, 1), implements the paper's proposed
	// extreme-value guard: a proposal coordinate that lands on the cube
	// boundary is pulled back so it only moves GuardFactor of the distance
	// from the current best vertex to the boundary. 0 (or >= 1) disables
	// the guard, matching the published system.
	GuardFactor float64

	// Seed perturbs the initial simplex orientation; tuners with different
	// seeds explore in different orders.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Alpha == 0 {
		o.Alpha = 1
	}
	if o.Gamma == 0 {
		o.Gamma = 2
	}
	if o.Rho == 0 {
		o.Rho = 0.5
	}
	if o.Sigma == 0 {
		o.Sigma = 0.5
	}
	if o.Delta == 0 {
		o.Delta = 0.25
	}
	return o
}

type phase int

const (
	phaseInit phase = iota // evaluating the initial simplex vertices
	phaseReflect
	phaseExpand
	phaseContract
	phaseShrink
)

type vertex struct {
	u    []float64 // unit-cube coordinates
	cost float64
}

// NelderMead is the paper-adapted simplex tuner.
type NelderMead struct {
	space *param.Space
	opts  Options
	src   *rng.Source

	verts   []vertex
	phase   phase
	idx     int // vertex being evaluated during init/shrink
	pending []float64
	asked   bool

	reflected     vertex // candidate from the reflection step
	bestConfig    param.Config
	bestCost      float64
	haveBest      bool
	evals         int
	lastWasInside bool

	obs      StepObserver
	lastMove string // move kind of the outstanding Ask, reported at Tell
}

// SetObserver installs a step observer (nil detaches it).
func (nm *NelderMead) SetObserver(obs StepObserver) { nm.obs = obs }

// NewNelderMead creates a simplex tuner over the given space. The initial
// simplex is anchored at the space's default configuration.
func NewNelderMead(space *param.Space, opts Options) *NelderMead {
	nm := &NelderMead{
		space: space,
		opts:  opts.withDefaults(),
		src:   rng.New(opts.Seed ^ 0x5f3759df),
	}
	nm.initSimplex(space.DefaultConfig())
	return nm
}

// initSimplex builds the k+1 initial vertices around the anchor config.
func (nm *NelderMead) initSimplex(anchor param.Config) {
	k := nm.space.Len()
	base := nm.space.Normalize(anchor)
	nm.verts = make([]vertex, 0, k+1)
	nm.verts = append(nm.verts, vertex{u: base})
	for i := 0; i < k; i++ {
		u := append([]float64(nil), base...)
		d := nm.opts.Delta
		// Flip direction away from the nearer boundary so the vertex
		// stays inside the cube, with a small random jitter for tie-breaks.
		if u[i]+d > 1 {
			d = -d
		}
		u[i] += d
		u[i] += nm.src.Uniform(-0.02, 0.02)
		nm.verts = append(nm.verts, vertex{u: clampCube(u)})
	}
	nm.phase = phaseInit
	nm.idx = 0
	nm.asked = false
}

func clampCube(u []float64) []float64 {
	for i, v := range u {
		if v < 0 {
			u[i] = 0
		} else if v > 1 {
			u[i] = 1
		}
	}
	return u
}

// Ask returns the next configuration to evaluate.
func (nm *NelderMead) Ask() param.Config {
	if nm.asked {
		panic("simplex: Ask called twice without Tell")
	}
	nm.asked = true
	switch nm.phase {
	case phaseInit:
		nm.lastMove = "init"
		nm.pending = nm.verts[nm.idx].u
	case phaseShrink:
		nm.lastMove = "shrink"
		nm.pending = nm.verts[nm.idx].u
	case phaseReflect:
		nm.lastMove = "reflect"
		nm.pending = nm.reflectPoint(nm.opts.Alpha)
	case phaseExpand:
		nm.lastMove = "expand"
		nm.pending = nm.reflectPoint(nm.opts.Alpha * nm.opts.Gamma)
	case phaseContract:
		nm.lastMove = "contract"
		if nm.lastWasInside {
			nm.pending = nm.reflectPoint(-nm.opts.Rho)
		} else {
			nm.pending = nm.reflectPoint(nm.opts.Alpha * nm.opts.Rho)
		}
	}
	return nm.space.Denormalize(nm.pending)
}

// Peek returns up to max upcoming proposals without mutating the simplex.
// During init and shrink the remaining vertex evaluations are fully
// predetermined (Tell only records their costs until the phase completes),
// so the whole tail of the phase is visible; during reflect, expand and
// contract the next proposal is a pure function of the current simplex but
// every later move depends on the cost it draws, so the horizon is one.
func (nm *NelderMead) Peek(max int) []param.Config {
	if nm.asked {
		panic("simplex: Peek with an outstanding proposal")
	}
	if max < 1 {
		max = 1
	}
	var out []param.Config
	switch nm.phase {
	case phaseInit, phaseShrink:
		for i := nm.idx; i < len(nm.verts) && len(out) < max; i++ {
			out = append(out, nm.space.Denormalize(nm.verts[i].u))
		}
	case phaseReflect:
		out = append(out, nm.space.Denormalize(nm.reflectPoint(nm.opts.Alpha)))
	case phaseExpand:
		out = append(out, nm.space.Denormalize(nm.reflectPoint(nm.opts.Alpha*nm.opts.Gamma)))
	case phaseContract:
		coef := nm.opts.Alpha * nm.opts.Rho
		if nm.lastWasInside {
			coef = -nm.opts.Rho
		}
		out = append(out, nm.space.Denormalize(nm.reflectPoint(coef)))
	}
	return out
}

// reflectPoint returns centroid + coef*(centroid - worst), clamped to the
// cube and optionally guarded against extreme values.
func (nm *NelderMead) reflectPoint(coef float64) []float64 {
	k := len(nm.verts) - 1
	worst := nm.verts[len(nm.verts)-1]
	c := make([]float64, nm.space.Len())
	for _, v := range nm.verts[:k] {
		for i := range c {
			c[i] += v.u[i] / float64(k)
		}
	}
	u := make([]float64, len(c))
	for i := range c {
		u[i] = c[i] + coef*(c[i]-worst.u[i])
	}
	if g := nm.opts.GuardFactor; g > 0 && g < 1 {
		bestU := nm.verts[0].u
		for i := range u {
			if u[i] <= 0 {
				u[i] = bestU[i] * (1 - g) // move only g of the way to 0
			} else if u[i] >= 1 {
				u[i] = bestU[i] + (1-bestU[i])*g
			}
		}
	}
	return clampCube(u)
}

// Tell reports the cost of the configuration returned by the last Ask.
func (nm *NelderMead) Tell(cost float64) {
	if !nm.asked {
		panic("simplex: Tell without Ask")
	}
	nm.asked = false
	nm.evals++
	cfg := nm.space.Denormalize(nm.pending)
	if !nm.haveBest || cost < nm.bestCost {
		nm.bestConfig = cfg.Clone()
		nm.bestCost = cost
		nm.haveBest = true
	}
	emit(nm.obs, Step{
		Move: nm.lastMove, Config: cfg,
		Cost: cost, BestCost: nm.bestCost, Evaluations: nm.evals,
	})

	switch nm.phase {
	case phaseInit:
		nm.verts[nm.idx].cost = cost
		nm.idx++
		if nm.idx == len(nm.verts) {
			nm.sortVerts()
			nm.phase = phaseReflect
		}
	case phaseShrink:
		nm.verts[nm.idx].cost = cost
		nm.idx++
		if nm.idx == len(nm.verts) {
			nm.sortVerts()
			nm.phase = phaseReflect
		}
	case phaseReflect:
		nm.reflected = vertex{u: append([]float64(nil), nm.pending...), cost: cost}
		switch {
		case cost < nm.verts[0].cost:
			nm.phase = phaseExpand
		case cost < nm.verts[len(nm.verts)-2].cost:
			nm.replaceWorst(nm.reflected)
			nm.phase = phaseReflect
		default:
			nm.lastWasInside = cost >= nm.verts[len(nm.verts)-1].cost
			nm.phase = phaseContract
		}
	case phaseExpand:
		if cost < nm.reflected.cost {
			nm.replaceWorst(vertex{u: append([]float64(nil), nm.pending...), cost: cost})
		} else {
			nm.replaceWorst(nm.reflected)
		}
		nm.phase = phaseReflect
	case phaseContract:
		worst := nm.verts[len(nm.verts)-1]
		ref := nm.reflected.cost
		if worst.cost < ref {
			ref = worst.cost
		}
		if cost < ref {
			nm.replaceWorst(vertex{u: append([]float64(nil), nm.pending...), cost: cost})
			nm.phase = phaseReflect
		} else {
			nm.shrink()
		}
	}
}

func (nm *NelderMead) sortVerts() {
	// Insertion sort: the simplex is small and mostly sorted.
	for i := 1; i < len(nm.verts); i++ {
		v := nm.verts[i]
		j := i - 1
		for j >= 0 && nm.verts[j].cost > v.cost {
			nm.verts[j+1] = nm.verts[j]
			j--
		}
		nm.verts[j+1] = v
	}
}

func (nm *NelderMead) replaceWorst(v vertex) {
	nm.verts[len(nm.verts)-1] = v
	nm.sortVerts()
}

// shrink pulls every vertex except the best toward the best and schedules
// their re-evaluation.
func (nm *NelderMead) shrink() {
	best := nm.verts[0]
	for i := 1; i < len(nm.verts); i++ {
		for j := range nm.verts[i].u {
			nm.verts[i].u[j] = best.u[j] + nm.opts.Sigma*(nm.verts[i].u[j]-best.u[j])
		}
		clampCube(nm.verts[i].u)
	}
	nm.phase = phaseShrink
	nm.idx = 1 // vertex 0 keeps its cost
}

// Best returns the best configuration and its cost observed so far.
func (nm *NelderMead) Best() (param.Config, float64, bool) {
	if !nm.haveBest {
		return nm.space.DefaultConfig(), 0, false
	}
	return nm.bestConfig.Clone(), nm.bestCost, true
}

// Reset re-centers the simplex around the given configuration and discards
// all stored costs; the next Asks re-evaluate a fresh simplex.
func (nm *NelderMead) Reset(around param.Config) {
	if nm.asked {
		// Abandon the outstanding proposal; the caller is restarting.
		nm.asked = false
	}
	nm.haveBest = false
	nm.initSimplex(around)
	emit(nm.obs, Step{Move: "reset", Config: around.Clone(), Evaluations: nm.evals})
}

// Converged reports whether every vertex of the simplex rounds to the same
// feasible configuration — the integer-lattice analogue of a zero-diameter
// simplex.
func (nm *NelderMead) Converged() bool {
	if nm.phase == phaseInit {
		return false
	}
	first := nm.space.Denormalize(nm.verts[0].u)
	for _, v := range nm.verts[1:] {
		if !nm.space.Denormalize(v.u).Equal(first) {
			return false
		}
	}
	return true
}

// Evaluations returns the number of completed Ask/Tell cycles.
func (nm *NelderMead) Evaluations() int { return nm.evals }

// String describes the tuner state, for diagnostics.
func (nm *NelderMead) String() string {
	return fmt.Sprintf("NelderMead{dim=%d evals=%d phase=%d}", nm.space.Len(), nm.evals, nm.phase)
}
