package simplex

import "webharmony/internal/param"

// Step is one completed tuner transition, delivered to a StepObserver.
// Observers receive a Step per Tell (the evaluated proposal, its cost and
// the best cost so far) and per Reset (Move "reset", no cost).
type Step struct {
	// Move names the transition that produced the evaluated proposal:
	// "init", "reflect", "expand", "contract" and "shrink" for the simplex
	// kernel; "anneal", "random" and "probe" for the baseline algorithms;
	// "reset" when the search re-anchors without an evaluation.
	Move string
	// Config is the evaluated configuration ("reset" steps carry the
	// anchor the search re-centered on). Observers must not modify it.
	Config param.Config
	// Cost is the reported cost (lower is better; callers maximizing
	// throughput report the negated metric). Zero for "reset" steps.
	Cost float64
	// BestCost is the best cost seen since the last reset.
	BestCost float64
	// Evaluations counts completed Ask/Tell cycles, including this one.
	Evaluations int
}

// StepObserver receives one callback per completed tuning step. Observers
// run synchronously on the tuner's call path and must be cheap; a nil
// observer disables tracing entirely (the tuners only pay a nil check).
type StepObserver func(Step)

// Observable is implemented by tuners that can report their steps.
type Observable interface {
	// SetObserver installs the observer (nil detaches it).
	SetObserver(StepObserver)
}

// emit invokes the observer if one is attached.
func emit(obs StepObserver, s Step) {
	if obs != nil {
		obs(s)
	}
}
