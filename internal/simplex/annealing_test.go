package simplex

import (
	"testing"
	"testing/quick"

	"webharmony/internal/param"
	"webharmony/internal/rng"
)

func TestAnnealingFindsBowlMinimum(t *testing.T) {
	sp := space2D()
	sa := NewSimulatedAnnealing(sp, AnnealingOptions{Seed: 1})
	f := bowl(130, 70)
	defCost := f(sp.DefaultConfig())
	drive(sa, f, 300)
	_, cost, ok := sa.Best()
	if !ok || cost >= defCost {
		t.Fatalf("no improvement: %v vs default %v", cost, defCost)
	}
	if cost > 2000 {
		t.Fatalf("cost %v far from optimum", cost)
	}
}

func TestAnnealingFirstProposalIsDefault(t *testing.T) {
	sp := space2D()
	sa := NewSimulatedAnnealing(sp, AnnealingOptions{Seed: 2})
	if !sa.Ask().Equal(sp.DefaultConfig()) {
		t.Fatal("first proposal should be the default configuration")
	}
	sa.Tell(1)
}

func TestAnnealingProposalsFeasible(t *testing.T) {
	sp := param.MustSpace(
		param.Def{Name: "a", Min: 5, Max: 250, Default: 10, Step: 5},
		param.Def{Name: "b", Min: 0, Max: 7, Default: 3, Step: 1},
	)
	f := func(seed uint64) bool {
		sa := NewSimulatedAnnealing(sp, AnnealingOptions{Seed: seed})
		src := rng.New(seed)
		for i := 0; i < 150; i++ {
			if cfg := sa.Ask(); !sp.Feasible(cfg) {
				return false
			}
			sa.Tell(src.Float64() * 100)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestAnnealingCoolsAndConverges(t *testing.T) {
	sp := space2D()
	sa := NewSimulatedAnnealing(sp, AnnealingOptions{Seed: 3})
	t0 := sa.Temperature()
	drive(sa, bowl(50, 50), 250)
	if sa.Temperature() >= t0 {
		t.Fatal("temperature did not cool")
	}
	if !sa.Converged() {
		t.Fatalf("not converged after 250 evals (T=%v)", sa.Temperature())
	}
	if sa.Evaluations() != 250 {
		t.Fatal("evaluation count wrong")
	}
}

func TestAnnealingAcceptsWorseEarly(t *testing.T) {
	// At high temperature the annealer must sometimes move to worse
	// points (otherwise it is just hill climbing). Feed it a landscape
	// where every move is slightly worse and check the current point
	// still moves.
	sp := space2D()
	sa := NewSimulatedAnnealing(sp, AnnealingOptions{Seed: 4})
	first := sa.Ask()
	sa.Tell(100)
	moved := false
	for i := 0; i < 50; i++ {
		cfg := sa.Ask()
		sa.Tell(101) // always slightly worse than the start
		if !cfg.Equal(first) {
			moved = true
		}
	}
	if !moved {
		t.Fatal("annealer never proposed a different point")
	}
}

func TestAnnealingReset(t *testing.T) {
	sp := space2D()
	sa := NewSimulatedAnnealing(sp, AnnealingOptions{Seed: 5})
	drive(sa, bowl(10, 10), 100)
	anchor := param.Config{150, 150}
	sa.Reset(anchor)
	if sa.Converged() {
		t.Fatal("Reset did not reheat")
	}
	if !sa.Ask().Equal(anchor) {
		t.Fatal("first proposal after Reset should be the anchor")
	}
	sa.Tell(1)
	if _, _, ok := sa.Best(); !ok {
		t.Fatal("best not tracked after reset")
	}
}

func TestAnnealingProtocolPanics(t *testing.T) {
	sp := space2D()
	sa := NewSimulatedAnnealing(sp, AnnealingOptions{})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Tell before Ask did not panic")
			}
		}()
		sa.Tell(1)
	}()
	sa.Ask()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double Ask did not panic")
			}
		}()
		sa.Ask()
	}()
}

func TestAnnealingDeterministic(t *testing.T) {
	run := func() []string {
		sp := space2D()
		sa := NewSimulatedAnnealing(sp, AnnealingOptions{Seed: 7})
		f := bowl(42, 42)
		var keys []string
		for i := 0; i < 60; i++ {
			cfg := sa.Ask()
			keys = append(keys, cfg.Key())
			sa.Tell(f(cfg))
		}
		return keys
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed runs diverged at eval %d", i)
		}
	}
}
