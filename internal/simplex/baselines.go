package simplex

import (
	"webharmony/internal/param"
	"webharmony/internal/rng"
)

// RandomSearch proposes uniform random lattice points, remembering the best.
// It is the naive baseline the simplex method is compared against in the
// ablation benchmarks.
type RandomSearch struct {
	space    *param.Space
	src      *rng.Source
	pending  param.Config
	asked    bool
	best     param.Config
	bestCost float64
	haveBest bool
	evals    int
	first    bool

	obs      StepObserver
	lastMove string
}

// NewRandomSearch creates a random-search tuner; the first proposal is the
// space default so the baseline configuration is always measured.
func NewRandomSearch(space *param.Space, seed uint64) *RandomSearch {
	return &RandomSearch{space: space, src: rng.New(seed ^ 0xdecafbad), first: true}
}

// SetObserver installs a step observer (nil detaches it).
func (r *RandomSearch) SetObserver(obs StepObserver) { r.obs = obs }

// Ask returns the next configuration to evaluate.
func (r *RandomSearch) Ask() param.Config {
	if r.asked {
		panic("simplex: Ask called twice without Tell")
	}
	r.asked = true
	r.lastMove = "random"
	if r.first {
		r.first = false
		r.lastMove = "init"
		r.pending = r.space.DefaultConfig()
		return r.pending.Clone()
	}
	u := make([]float64, r.space.Len())
	for i := range u {
		u[i] = r.src.Float64()
	}
	r.pending = r.space.Denormalize(u)
	return r.pending.Clone()
}

// Peek returns up to max upcoming proposals without mutating the search.
// Random search is fully tell-independent — Tell never touches the rng
// stream — so the horizon is unbounded: the draws are replayed on a clone.
func (r *RandomSearch) Peek(max int) []param.Config {
	if r.asked {
		panic("simplex: Peek with an outstanding proposal")
	}
	if max < 1 {
		max = 1
	}
	out := make([]param.Config, 0, max)
	src := r.src.Clone()
	first := r.first
	for len(out) < max {
		if first {
			first = false
			out = append(out, r.space.DefaultConfig())
			continue
		}
		u := make([]float64, r.space.Len())
		for i := range u {
			u[i] = src.Float64()
		}
		out = append(out, r.space.Denormalize(u))
	}
	return out
}

// Tell reports the cost for the last proposal.
func (r *RandomSearch) Tell(cost float64) {
	if !r.asked {
		panic("simplex: Tell without Ask")
	}
	r.asked = false
	r.evals++
	if !r.haveBest || cost < r.bestCost {
		r.best = r.pending.Clone()
		r.bestCost = cost
		r.haveBest = true
	}
	emit(r.obs, Step{
		Move: r.lastMove, Config: r.pending,
		Cost: cost, BestCost: r.bestCost, Evaluations: r.evals,
	})
}

// Best returns the best configuration seen so far.
func (r *RandomSearch) Best() (param.Config, float64, bool) {
	if !r.haveBest {
		return r.space.DefaultConfig(), 0, false
	}
	return r.best.Clone(), r.bestCost, true
}

// Reset discards history; random search has no positional state to recenter.
func (r *RandomSearch) Reset(around param.Config) {
	r.asked = false
	r.haveBest = false
	r.first = true
	emit(r.obs, Step{Move: "reset", Evaluations: r.evals})
}

// Converged always reports false: random search never stops proposing.
func (r *RandomSearch) Converged() bool { return false }

// Evaluations returns the number of completed Ask/Tell cycles.
func (r *RandomSearch) Evaluations() int { return r.evals }

// CoordinateSearch is a cyclic hill climber: it sweeps one parameter at a
// time, trying the current value plus and minus a step, keeping whichever
// improves, and halving the step when a full sweep yields no improvement.
// It models "tune each knob independently" — the manual strategy the paper
// argues against for coupled systems.
type CoordinateSearch struct {
	space   *param.Space
	current param.Config
	curCost float64
	haveCur bool

	dim      int
	dir      int // +1 then -1 per dimension
	step     []float64
	improved bool

	pending  param.Config
	asked    bool
	best     param.Config
	bestCost float64
	haveBest bool
	evals    int
	phase    int // 0: evaluate current; 1: probing

	obs      StepObserver
	lastMove string
}

// SetObserver installs a step observer (nil detaches it).
func (c *CoordinateSearch) SetObserver(obs StepObserver) { c.obs = obs }

// NewCoordinateSearch creates a coordinate-descent tuner anchored at the
// space default. initialStep is in unit-cube units (0 uses 0.25).
func NewCoordinateSearch(space *param.Space, initialStep float64) *CoordinateSearch {
	if initialStep <= 0 {
		initialStep = 0.25
	}
	steps := make([]float64, space.Len())
	for i := range steps {
		steps[i] = initialStep
	}
	return &CoordinateSearch{
		space:   space,
		current: space.DefaultConfig(),
		step:    steps,
		dir:     1,
	}
}

// Ask returns the next configuration to evaluate.
func (c *CoordinateSearch) Ask() param.Config {
	if c.asked {
		panic("simplex: Ask called twice without Tell")
	}
	c.asked = true
	c.lastMove = "probe"
	if c.phase == 0 {
		c.lastMove = "init"
		c.pending = c.current.Clone()
		return c.pending.Clone()
	}
	u := c.space.Normalize(c.current)
	u[c.dim] += float64(c.dir) * c.step[c.dim]
	c.pending = c.space.Denormalize(clampCube(u))
	return c.pending.Clone()
}

// Peek returns up to max upcoming proposals without mutating the search.
// Evaluating the anchor (phase 0) never depends on its cost, and the first
// probe direction is fixed, so the horizon from phase 0 is two; once
// probing, each accept/reject decision steers the sweep, so it is one.
func (c *CoordinateSearch) Peek(max int) []param.Config {
	if c.asked {
		panic("simplex: Peek with an outstanding proposal")
	}
	if max < 1 {
		max = 1
	}
	probe := func() param.Config {
		u := c.space.Normalize(c.current)
		u[c.dim] += float64(c.dir) * c.step[c.dim]
		return c.space.Denormalize(clampCube(u))
	}
	if c.phase == 0 {
		out := []param.Config{c.current.Clone()}
		if max > 1 {
			out = append(out, probe())
		}
		return out
	}
	return []param.Config{probe()}
}

// Tell reports the cost for the last proposal.
func (c *CoordinateSearch) Tell(cost float64) {
	if !c.asked {
		panic("simplex: Tell without Ask")
	}
	c.asked = false
	c.evals++
	if !c.haveBest || cost < c.bestCost {
		c.best = c.pending.Clone()
		c.bestCost = cost
		c.haveBest = true
	}
	emit(c.obs, Step{
		Move: c.lastMove, Config: c.pending,
		Cost: cost, BestCost: c.bestCost, Evaluations: c.evals,
	})
	if c.phase == 0 {
		c.curCost = cost
		c.haveCur = true
		c.phase = 1
		return
	}
	if cost < c.curCost {
		c.current = c.pending.Clone()
		c.curCost = cost
		c.improved = true
	}
	c.advance()
}

func (c *CoordinateSearch) advance() {
	if c.dir == 1 {
		c.dir = -1
		return
	}
	c.dir = 1
	c.dim++
	if c.dim >= c.space.Len() {
		c.dim = 0
		if !c.improved {
			for i := range c.step {
				c.step[i] /= 2
			}
		}
		c.improved = false
	}
}

// Best returns the best configuration seen so far.
func (c *CoordinateSearch) Best() (param.Config, float64, bool) {
	if !c.haveBest {
		return c.space.DefaultConfig(), 0, false
	}
	return c.best.Clone(), c.bestCost, true
}

// Reset re-anchors the search at the given configuration.
func (c *CoordinateSearch) Reset(around param.Config) {
	c.asked = false
	c.haveBest = false
	c.haveCur = false
	c.current = around.Clone()
	c.space.Clamp(c.current)
	c.dim = 0
	c.dir = 1
	c.phase = 0
	for i := range c.step {
		c.step[i] = 0.25
	}
	emit(c.obs, Step{Move: "reset", Config: c.current.Clone(), Evaluations: c.evals})
}

// Converged reports whether the probe step has collapsed below one lattice
// level for every parameter.
func (c *CoordinateSearch) Converged() bool {
	for i, d := range c.space.Defs() {
		span := float64(d.Max - d.Min)
		if span == 0 {
			continue
		}
		if c.step[i]*span >= float64(d.Step) {
			return false
		}
	}
	return true
}

// Evaluations returns the number of completed Ask/Tell cycles.
func (c *CoordinateSearch) Evaluations() int { return c.evals }

// Compile-time interface checks.
var (
	_ Tuner = (*NelderMead)(nil)
	_ Tuner = (*RandomSearch)(nil)
	_ Tuner = (*CoordinateSearch)(nil)
)
