package simplex

import (
	"testing"

	"webharmony/internal/param"
	"webharmony/internal/rng"
)

// peekTuners builds one of each tuner kind over the same space, seeded
// from seed, so the Peek contract can be checked generically.
func peekTuners(sp *param.Space, seed uint64) map[string]Tuner {
	return map[string]Tuner{
		"nelder-mead": NewNelderMead(sp, Options{Seed: seed}),
		"random":      NewRandomSearch(sp, seed),
		"coordinate":  NewCoordinateSearch(sp, 0),
		"annealing":   NewSimulatedAnnealing(sp, AnnealingOptions{Seed: seed}),
	}
}

// TestPeekPredictsAsk drives every tuner through many cycles with varied
// costs; before each cycle it peeks as deep as the tuner allows and checks
// that the subsequent Asks propose exactly the peeked configurations, in
// order, and that peeking twice returns the same thing (no mutation).
func TestPeekPredictsAsk(t *testing.T) {
	sp := space2D()
	for seed := uint64(1); seed <= 3; seed++ {
		costs := rng.New(seed * 77)
		for name, tn := range peekTuners(sp, seed) {
			var expected []param.Config // still-unconsumed peeked proposals
			for i := 0; i < 60; i++ {
				peeked := tn.Peek(8)
				if len(peeked) == 0 {
					t.Fatalf("%s seed %d: Peek returned nothing", name, seed)
				}
				again := tn.Peek(8)
				if len(again) != len(peeked) {
					t.Fatalf("%s seed %d: repeated Peek depth %d != %d", name, seed, len(again), len(peeked))
				}
				for j := range peeked {
					if !peeked[j].Equal(again[j]) {
						t.Fatalf("%s seed %d: repeated Peek diverged at %d: %v != %v",
							name, seed, j, peeked[j], again[j])
					}
				}
				// The tail of an earlier, deeper peek must still be honored.
				if len(expected) > 0 && !peeked[0].Equal(expected[0]) {
					t.Fatalf("%s seed %d iter %d: earlier Peek promised %v, now proposes %v",
						name, seed, i, expected[0], peeked[0])
				}
				expected = peeked[1:]
				got := tn.Ask()
				if !got.Equal(peeked[0]) {
					t.Fatalf("%s seed %d iter %d: Ask %v != Peek %v", name, seed, i, got, peeked[0])
				}
				tn.Tell(costs.Uniform(-100, 100))
			}
		}
	}
}

// TestPeekDoesNotPerturbTwin steps two identically-seeded tuners through
// the same costs, peeking only one of them, and checks their proposal
// streams never diverge — Peek is side-effect free.
func TestPeekDoesNotPerturbTwin(t *testing.T) {
	sp := space2D()
	peekers := peekTuners(sp, 9)
	plains := peekTuners(sp, 9)
	costs := rng.New(123)
	for name, peeker := range peekers {
		plain := plains[name]
		for i := 0; i < 80; i++ {
			peeker.Peek(1 + i%7)
			a, b := peeker.Ask(), plain.Ask()
			if !a.Equal(b) {
				t.Fatalf("%s iter %d: peeked tuner proposes %v, twin %v", name, i, a, b)
			}
			c := costs.Uniform(-50, 50)
			peeker.Tell(c)
			plain.Tell(c)
			if i == 40 {
				anchor := sp.DefaultConfig()
				peeker.Reset(anchor)
				plain.Reset(anchor)
			}
		}
	}
}

// TestPeekHorizons pins the documented tell-independent horizons: a fresh
// Nelder-Mead simplex exposes all dim+1 initial vertices, random search is
// unbounded, coordinate search sees anchor + first probe, annealing one.
func TestPeekHorizons(t *testing.T) {
	sp := space2D()
	want := map[string]int{
		"nelder-mead": sp.Len() + 1,
		"random":      12,
		"coordinate":  2,
		"annealing":   1,
	}
	for name, tn := range peekTuners(sp, 4) {
		if got := len(tn.Peek(12)); got != want[name] {
			t.Fatalf("%s: fresh Peek(12) depth = %d, want %d", name, got, want[name])
		}
	}
	// After a reset mid-run the simplex re-exposes a full init phase.
	nm := NewNelderMead(sp, Options{Seed: 2})
	drive(nm, bowl(50, 50), 10)
	nm.Reset(sp.DefaultConfig())
	if got := len(nm.Peek(12)); got != sp.Len()+1 {
		t.Fatalf("post-reset Peek depth = %d, want %d", got, sp.Len()+1)
	}
}

// TestPeekPanicsWhenAsked pins the protocol: peeking with an outstanding
// proposal is a bug, exactly like a double Ask.
func TestPeekPanicsWhenAsked(t *testing.T) {
	for name, tn := range peekTuners(space2D(), 1) {
		tn.Ask()
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: Peek with outstanding proposal did not panic", name)
				}
			}()
			tn.Peek(1)
		}()
	}
}

// TestPeekDepthBeyondPhase checks the simplex peek stops at the phase
// boundary: once only one init vertex remains, Peek(8) returns one entry,
// because the following reflection depends on the init costs.
func TestPeekDepthBeyondPhase(t *testing.T) {
	sp := space2D()
	nm := NewNelderMead(sp, Options{Seed: 3})
	costs := rng.New(5)
	for done := 0; done < sp.Len(); done++ { // leave one init vertex
		nm.Ask()
		nm.Tell(costs.Uniform(1, 9))
	}
	if got := len(nm.Peek(8)); got != 1 {
		t.Fatalf("one init vertex left: Peek depth = %d, want 1", got)
	}
}
