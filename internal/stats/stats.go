// Package stats provides the statistical accumulators and summaries used
// when measuring simulated web-cluster performance: online mean/variance,
// percentiles, histograms, utilization counters and time series.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates a stream of observations using Welford's online
// algorithm, yielding numerically stable mean and variance along with the
// minimum and maximum. The zero value is ready to use.
type Running struct {
	n        int
	mean     float64
	m2       float64
	min, max float64
}

// Add records one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N returns the number of observations recorded.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean, or 0 if no observations were recorded.
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased sample variance (n-1 denominator),
// or 0 for fewer than two observations.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observation, or 0 if none were recorded.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation, or 0 if none were recorded.
func (r *Running) Max() float64 { return r.max }

// Sum returns the running total of observations.
func (r *Running) Sum() float64 { return r.mean * float64(r.n) }

// Reset discards all recorded observations.
func (r *Running) Reset() { *r = Running{} }

// Merge combines another accumulator into r, as if all of other's
// observations had been added to r directly (Chan et al. parallel variant).
func (r *Running) Merge(other *Running) {
	if other.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *other
		return
	}
	n := r.n + other.n
	delta := other.mean - r.mean
	mean := r.mean + delta*float64(other.n)/float64(n)
	m2 := r.m2 + other.m2 + delta*delta*float64(r.n)*float64(other.n)/float64(n)
	if other.min < r.min {
		r.min = other.min
	}
	if other.max > r.max {
		r.max = other.max
	}
	r.n, r.mean, r.m2 = n, mean, m2
}

// CI95 returns the half-width of a 95% confidence interval for the mean
// using the normal approximation (adequate for the sample sizes used by the
// experiments, which have n >= 30).
func (r *Running) CI95() float64 {
	if r.n < 2 {
		return 0
	}
	return 1.96 * r.StdDev() / math.Sqrt(float64(r.n))
}

// String formats the accumulator as "mean ± stddev (n=...)".
func (r *Running) String() string {
	return fmt.Sprintf("%.2f ± %.2f (n=%d)", r.Mean(), r.StdDev(), r.n)
}

// Sample stores raw observations for percentile queries.
type Sample struct {
	data   []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.data = append(s.data, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.data) }

// Values returns the recorded observations in insertion order.
// The returned slice is owned by the Sample; callers must not modify it.
func (s *Sample) Values() []float64 { return s.data }

// Mean returns the sample mean, or 0 when empty.
func (s *Sample) Mean() float64 {
	if len(s.data) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.data {
		sum += v
	}
	return sum / float64(len(s.data))
}

// StdDev returns the sample standard deviation (n-1), or 0 for n < 2.
func (s *Sample) StdDev() float64 {
	n := len(s.data)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, v := range s.data {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(n-1))
}

func (s *Sample) sortIfNeeded() {
	if !s.sorted {
		sort.Float64s(s.data)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. It returns 0 when empty.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.data) == 0 {
		return 0
	}
	if p <= 0 {
		s.sortIfNeeded()
		return s.data[0]
	}
	if p >= 100 {
		s.sortIfNeeded()
		return s.data[len(s.data)-1]
	}
	s.sortIfNeeded()
	rank := p / 100 * float64(len(s.data)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.data[lo]
	}
	frac := rank - float64(lo)
	return s.data[lo]*(1-frac) + s.data[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Histogram counts observations in fixed-width bins over [lo, hi); values
// outside the range are clamped into the edge bins.
type Histogram struct {
	lo, hi float64
	bins   []int
	n      int
}

// NewHistogram creates a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if hi <= lo || bins <= 0 {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.bins)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.bins) {
		i = len(h.bins) - 1
	}
	h.bins[i]++
	h.n++
}

// N returns the total number of observations.
func (h *Histogram) N() int { return h.n }

// Bin returns the count in bin i.
func (h *Histogram) Bin(i int) int { return h.bins[i] }

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.bins) }

// TimePoint is a single (time, value) observation in a TimeSeries.
type TimePoint struct {
	T float64
	V float64
}

// TimeSeries records timestamped values, e.g. WIPS per tuning iteration.
type TimeSeries struct {
	points []TimePoint
}

// Add appends an observation. Times should be non-decreasing.
func (ts *TimeSeries) Add(t, v float64) {
	ts.points = append(ts.points, TimePoint{T: t, V: v})
}

// Len returns the number of points.
func (ts *TimeSeries) Len() int { return len(ts.points) }

// At returns the i-th point.
func (ts *TimeSeries) At(i int) TimePoint { return ts.points[i] }

// Points returns the underlying points. Callers must not modify them.
func (ts *TimeSeries) Points() []TimePoint { return ts.points }

// Window returns the values with T in [lo, hi).
func (ts *TimeSeries) Window(lo, hi float64) []float64 {
	var out []float64
	for _, p := range ts.points {
		if p.T >= lo && p.T < hi {
			out = append(out, p.V)
		}
	}
	return out
}

// MeanOf returns the arithmetic mean of vs, or 0 when empty.
func MeanOf(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// StdDevOf returns the sample standard deviation of vs (n-1 denominator).
func StdDevOf(vs []float64) float64 {
	n := len(vs)
	if n < 2 {
		return 0
	}
	m := MeanOf(vs)
	sum := 0.0
	for _, v := range vs {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(n-1))
}

// Summary condenses a set of replicated measurements (one value per
// replicate) into the statistics the experiment reports print: sample
// size, mean, standard deviation and the half-width of a 95% confidence
// interval for the mean.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	CI95   float64
}

// Summarize computes the Summary of vs. Non-finite values (NaN, ±Inf) are
// skipped — a replicate whose measurement went wrong must not poison the
// aggregate — so N reports the number of finite observations actually
// summarized. With N == 1 the standard deviation and interval are 0, and
// with N == 0 the Summary is all zeros.
func Summarize(vs []float64) Summary {
	var r Running
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		r.Add(v)
	}
	s := Summary{N: r.N(), Mean: r.Mean(), StdDev: r.StdDev()}
	if s.N >= 2 {
		s.CI95 = TCritical95(s.N-1) * s.StdDev / math.Sqrt(float64(s.N))
	}
	return s
}

// String formats the summary as "mean ± stddev (95% CI ±ci, n=...)".
func (s Summary) String() string {
	return fmt.Sprintf("%.2f ± %.2f (95%% CI ±%.2f, n=%d)", s.Mean, s.StdDev, s.CI95, s.N)
}

// CI95Of returns the half-width of a 95% confidence interval for the mean
// of vs using the Student-t critical value — the right interval for the
// small replicate counts (R = 3…10) the replication engine runs with,
// where the normal approximation of Running.CI95 is too tight. It returns
// 0 for fewer than two finite observations.
func CI95Of(vs []float64) float64 { return Summarize(vs).CI95 }

// PairedDiff returns the element-wise differences ys[i] − xs[i]. The
// slices must have equal length; it panics otherwise. Used with paired
// observations taken under common random numbers (the same replicate seed
// driving both arms), where the difference series carries far less
// variance than either arm alone.
func PairedDiff(xs, ys []float64) []float64 {
	if len(xs) != len(ys) {
		panic("stats: PairedDiff needs equally long slices")
	}
	out := make([]float64, len(xs))
	for i := range xs {
		out[i] = ys[i] - xs[i]
	}
	return out
}

// SummarizePaired summarizes the paired differences ys − xs: the paired-t
// analysis for two treatments measured replicate by replicate under
// common random numbers. The returned CI95 is the half-width of the
// Student-t interval on the mean difference; an interval excluding zero
// means the treatments differ significantly at the 5% level.
func SummarizePaired(xs, ys []float64) Summary {
	return Summarize(PairedDiff(xs, ys))
}

// tCrit95 holds two-sided 95% Student-t critical values for 1…30 degrees
// of freedom (index df-1).
var tCrit95 = [30]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom. Beyond 30 degrees of freedom it returns the normal
// value 1.96; df < 1 yields 0 (no interval can be formed).
func TCritical95(df int) float64 {
	if df < 1 {
		return 0
	}
	if df <= len(tCrit95) {
		return tCrit95[df-1]
	}
	return 1.96
}

// FractionAbove returns the fraction of vs strictly greater than threshold.
func FractionAbove(vs []float64, threshold float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	c := 0
	for _, v := range vs {
		if v > threshold {
			c++
		}
	}
	return float64(c) / float64(len(vs))
}

// Improvement returns the relative improvement of measured over baseline,
// e.g. 0.16 for a 16% gain. A non-positive baseline yields 0.
func Improvement(baseline, measured float64) float64 {
	if baseline <= 0 {
		return 0
	}
	return (measured - baseline) / baseline
}
