package stats

import (
	"math"
	"testing"
)

func TestSummarize(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	cases := []struct {
		name string
		vs   []float64
		want Summary
	}{
		{
			// mean 5, variance 32/7, CI95 = t(7)·σ/√8 with t(7) = 2.365.
			name: "hand-computed-eight",
			vs:   []float64{2, 4, 4, 4, 5, 5, 7, 9},
			want: Summary{
				N: 8, Mean: 5,
				StdDev: math.Sqrt(32.0 / 7.0),
				CI95:   2.365 * math.Sqrt(32.0/7.0) / math.Sqrt(8),
			},
		},
		{
			// Two observations: σ = √2, CI95 = t(1)·√2/√2 = 12.706.
			name: "two-values",
			vs:   []float64{1, 3},
			want: Summary{N: 2, Mean: 2, StdDev: math.Sqrt2, CI95: 12.706},
		},
		{
			// R = 1: a single replicate has no spread estimate.
			name: "single-replicate",
			vs:   []float64{42},
			want: Summary{N: 1, Mean: 42},
		},
		{
			name: "zero-variance",
			vs:   []float64{5, 5, 5, 5},
			want: Summary{N: 4, Mean: 5},
		},
		{
			// Non-finite replicates are skipped, not propagated.
			name: "nan-guard",
			vs:   []float64{1, nan, 3, inf, -inf},
			want: Summary{N: 2, Mean: 2, StdDev: math.Sqrt2, CI95: 12.706},
		},
		{name: "empty", vs: nil, want: Summary{}},
		{name: "all-nan", vs: []float64{nan, nan}, want: Summary{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Summarize(tc.vs)
			if got.N != tc.want.N {
				t.Errorf("N = %d, want %d", got.N, tc.want.N)
			}
			approx := func(name string, got, want float64) {
				if math.IsNaN(got) || math.Abs(got-want) > 1e-9 {
					t.Errorf("%s = %v, want %v", name, got, want)
				}
			}
			approx("Mean", got.Mean, tc.want.Mean)
			approx("StdDev", got.StdDev, tc.want.StdDev)
			approx("CI95", got.CI95, tc.want.CI95)
		})
	}
}

func TestCI95OfMatchesSummarize(t *testing.T) {
	vs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got, want := CI95Of(vs), Summarize(vs).CI95; got != want {
		t.Errorf("CI95Of = %v, want %v", got, want)
	}
}

func TestTCritical95(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{0, 0}, {-3, 0},
		{1, 12.706}, {2, 4.303}, {5, 2.571}, {7, 2.365},
		{30, 2.042}, {31, 1.96}, {1000, 1.96},
	}
	for _, tc := range cases {
		if got := TCritical95(tc.df); got != tc.want {
			t.Errorf("TCritical95(%d) = %v, want %v", tc.df, got, tc.want)
		}
	}
}

func TestPairedDiff(t *testing.T) {
	got := PairedDiff([]float64{1, 2, 3}, []float64{4, 2, 1})
	want := []float64{3, 0, -2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("PairedDiff[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("PairedDiff accepted mismatched lengths")
		}
	}()
	PairedDiff([]float64{1}, []float64{1, 2})
}

// TestSummarizePaired verifies the paired-t reduction: the summary of the
// differences, not the difference of the summaries. Under common random
// numbers the per-pair noise cancels, so the difference series here has
// zero variance even though both arms vary.
func TestSummarizePaired(t *testing.T) {
	base := []float64{10, 20, 30}
	tuned := []float64{12, 22, 32}
	s := SummarizePaired(base, tuned)
	if s.N != 3 || s.Mean != 2 || s.StdDev != 0 || s.CI95 != 0 {
		t.Errorf("SummarizePaired = %+v, want N=3 Mean=2 with zero spread", s)
	}
	if got, want := SummarizePaired(base, []float64{13, 21, 35}), Summarize([]float64{3, 1, 5}); got != want {
		t.Errorf("SummarizePaired = %+v, want %+v", got, want)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 3})
	if got, want := s.String(), "2.00 ± 1.41 (95% CI ±12.71, n=2)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
