package stats

import "math/bits"

// LatencyHist is a fixed-size log-linear histogram for non-negative integer
// latencies (the span layer's microsecond ticks). Values 0..7 get exact
// buckets; above that each power-of-two octave is split into 8 sub-buckets,
// so quantile estimates are exact below 8 and within 1/8 of the value
// (≈3% at the bucket's upper bound) everywhere else — and, critically for
// the telemetry determinism contract, Quantile depends only on the bucket
// counts, so merged histograms report byte-identical percentiles no matter
// how the observations were partitioned across workers.
//
// The counts array is fixed-size so the zero value is ready to use and the
// type can be embedded by value in pooled records and large tables without
// per-cell allocation.
type LatencyHist struct {
	counts [latencyBuckets]uint32
	n      int64
	sum    int64
	max    int64
}

// latencyBuckets covers the full non-negative int63 range: 8 exact buckets
// plus 8 sub-buckets for each of octaves 3..62.
const latencyBuckets = 8 + 8*60

// latencyBucket maps a value to its bucket index.
func latencyBucket(v int64) int {
	if v < 8 {
		return int(v)
	}
	o := bits.Len64(uint64(v)) - 1 // octave: floor(log2 v), >= 3
	return 8 + (o-3)*8 + int((v>>(o-3))&7)
}

// latencyBucketMax returns the largest value mapping to bucket idx — the
// bound Quantile reports, chosen over the lower bound so reported
// percentiles never understate the observed latency.
func latencyBucketMax(idx int) int64 {
	if idx < 8 {
		return int64(idx)
	}
	o := (idx-8)/8 + 3
	sub := int64((idx - 8) % 8)
	// Bucket spans [base + sub*step, base + (sub+1)*step - 1] where
	// base = 2^o and step = 2^(o-3).
	return 1<<o + (sub+1)<<(o-3) - 1
}

// Observe records one latency. Negative values clamp to zero.
func (h *LatencyHist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[latencyBucket(v)]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// N returns the number of observations.
func (h *LatencyHist) N() int64 { return h.n }

// Sum returns the sum of all observations.
func (h *LatencyHist) Sum() int64 { return h.sum }

// Max returns the largest observation, or 0 if empty.
func (h *LatencyHist) Max() int64 { return h.max }

// Mean returns the exact mean of all observations, or 0 if empty.
func (h *LatencyHist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile returns the upper bound of the bucket holding the q-th quantile
// observation (0 <= q <= 1), or 0 if the histogram is empty. The rank
// convention is ceil(q*n) with a floor of 1, so Quantile(0.5) of a single
// observation returns that observation's bucket.
func (h *LatencyHist) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	rank := int64(q*float64(h.n) + 0.999999)
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var seen int64
	for i, c := range h.counts {
		seen += int64(c)
		if seen >= rank {
			m := latencyBucketMax(i)
			if m > h.max {
				// The top occupied bucket's bound can overshoot the
				// true maximum; never report beyond it.
				m = h.max
			}
			return m
		}
	}
	return h.max
}

// Merge folds o's observations into h.
func (h *LatencyHist) Merge(o *LatencyHist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Reset clears the histogram for reuse.
func (h *LatencyHist) Reset() {
	h.counts = [latencyBuckets]uint32{}
	h.n = 0
	h.sum = 0
	h.max = 0
}
