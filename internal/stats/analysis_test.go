package stats

import (
	"math"
	"testing"

	"webharmony/internal/rng"
)

func TestMovingAverageFlat(t *testing.T) {
	vs := []float64{5, 5, 5, 5, 5}
	for _, v := range MovingAverage(vs, 3) {
		if v != 5 {
			t.Fatalf("flat series smoothed to %v", v)
		}
	}
}

func TestMovingAverageSmooths(t *testing.T) {
	vs := []float64{0, 10, 0, 10, 0, 10}
	sm := MovingAverage(vs, 3)
	// Interior points average their neighbourhood.
	if math.Abs(sm[2]-20.0/3) > 1e-9 {
		t.Fatalf("sm[2] = %v", sm[2])
	}
	if len(sm) != len(vs) {
		t.Fatal("length changed")
	}
	if MovingAverage(nil, 3) != nil || MovingAverage(vs, 0) != nil {
		t.Fatal("degenerate inputs should return nil")
	}
}

func TestEWMA(t *testing.T) {
	vs := []float64{1, 1, 1, 10}
	e := EWMA(vs, 0.5)
	if e[0] != 1 || e[3] <= e[2] {
		t.Fatalf("EWMA = %v", e)
	}
	if EWMA(vs, 0) != nil || EWMA(vs, 1.5) != nil || EWMA(nil, 0.5) != nil {
		t.Fatal("degenerate inputs should return nil")
	}
	// alpha=1 reproduces the input.
	for i, v := range EWMA(vs, 1) {
		if v != vs[i] {
			t.Fatal("alpha=1 should be identity")
		}
	}
}

func TestAutocorrelation(t *testing.T) {
	// Alternating series: strong negative lag-1 correlation.
	alt := []float64{1, -1, 1, -1, 1, -1, 1, -1}
	if r := Autocorrelation(alt, 1); r > -0.7 {
		t.Fatalf("alternating lag-1 autocorrelation = %v, want strongly negative", r)
	}
	// Perfectly correlated at lag 2.
	if r := Autocorrelation(alt, 2); r < 0.7 {
		t.Fatalf("alternating lag-2 autocorrelation = %v, want strongly positive", r)
	}
	// White noise: near zero.
	src := rng.New(5)
	noise := make([]float64, 2000)
	for i := range noise {
		noise[i] = src.Normal(0, 1)
	}
	if r := Autocorrelation(noise, 1); math.Abs(r) > 0.1 {
		t.Fatalf("white-noise lag-1 autocorrelation = %v", r)
	}
	// Degenerate inputs.
	if Autocorrelation(alt, 0) != 0 || Autocorrelation(alt, 99) != 0 {
		t.Fatal("out-of-range lags should be 0")
	}
	if Autocorrelation([]float64{3, 3, 3, 3}, 1) != 0 {
		t.Fatal("constant series should be 0")
	}
}

func TestMSERTruncationFindsWarmup(t *testing.T) {
	// A series that ramps up for 20 points then is steady noise around 100.
	src := rng.New(9)
	var vs []float64
	for i := 0; i < 20; i++ {
		vs = append(vs, 5*float64(i))
	}
	for i := 0; i < 80; i++ {
		vs = append(vs, 100+src.Normal(0, 1))
	}
	d := MSERTruncation(vs)
	if d < 10 || d > 30 {
		t.Fatalf("MSER truncation = %d, want ≈20", d)
	}
	m := SteadyStateMean(vs)
	if math.Abs(m-100) > 2 {
		t.Fatalf("steady-state mean = %v, want ≈100", m)
	}
}

func TestMSERTruncationSteadySeries(t *testing.T) {
	src := rng.New(11)
	vs := make([]float64, 100)
	for i := range vs {
		vs[i] = 50 + src.Normal(0, 1)
	}
	if d := MSERTruncation(vs); d > 40 {
		t.Fatalf("steady series truncated at %d", d)
	}
	if MSERTruncation([]float64{1, 2}) != 0 {
		t.Fatal("short series should not truncate")
	}
}

func TestLinreg(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	a, b := Linreg(xs, ys)
	if math.Abs(a-1) > 1e-9 || math.Abs(b-2) > 1e-9 {
		t.Fatalf("fit = %v + %v x", a, b)
	}
	// Degenerate: constant x.
	a, b = Linreg([]float64{2, 2}, []float64{1, 3})
	if b != 0 || a != 2 {
		t.Fatalf("constant-x fit = %v + %v x", a, b)
	}
	if a, b := Linreg(nil, nil); a != 0 || b != 0 {
		t.Fatal("empty fit should be zero")
	}
}
