package stats

import "math"

// Analysis helpers for simulation output: smoothing, initialization-bias
// truncation, and correlation diagnostics. These back the experiment
// reports (smoothing the Figure 5 series, deciding how much warm-up an
// iteration window needs).

// MovingAverage returns the centered moving average of vs with the given
// window (clamped to the available points near the edges). An empty input
// or window < 1 returns a copy/nil respectively.
func MovingAverage(vs []float64, window int) []float64 {
	if window < 1 || len(vs) == 0 {
		return nil
	}
	out := make([]float64, len(vs))
	half := window / 2
	for i := range vs {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= len(vs) {
			hi = len(vs) - 1
		}
		sum := 0.0
		for j := lo; j <= hi; j++ {
			sum += vs[j]
		}
		out[i] = sum / float64(hi-lo+1)
	}
	return out
}

// EWMA returns the exponentially weighted moving average of vs with
// smoothing factor alpha in (0, 1].
func EWMA(vs []float64, alpha float64) []float64 {
	if len(vs) == 0 || alpha <= 0 || alpha > 1 {
		return nil
	}
	out := make([]float64, len(vs))
	out[0] = vs[0]
	for i := 1; i < len(vs); i++ {
		out[i] = alpha*vs[i] + (1-alpha)*out[i-1]
	}
	return out
}

// Autocorrelation returns the lag-k sample autocorrelation of vs, in
// [-1, 1]. It returns 0 for degenerate inputs (k out of range, constant
// series).
func Autocorrelation(vs []float64, k int) float64 {
	n := len(vs)
	if k <= 0 || k >= n {
		return 0
	}
	mean := MeanOf(vs)
	var num, den float64
	for i := 0; i < n; i++ {
		d := vs[i] - mean
		den += d * d
	}
	if den == 0 {
		return 0
	}
	for i := 0; i < n-k; i++ {
		num += (vs[i] - mean) * (vs[i+k] - mean)
	}
	return num / den
}

// MSERTruncation returns the warm-up truncation point suggested by the
// MSER (Marginal Standard Error Rule) heuristic: the prefix length d that
// minimizes the squared standard error of the remaining observations.
// The search is limited to the first half of the series, per standard
// practice. It returns 0 for series shorter than 4 observations.
func MSERTruncation(vs []float64) int {
	n := len(vs)
	if n < 4 {
		return 0
	}
	bestD, bestScore := 0, math.Inf(1)
	for d := 0; d <= n/2; d++ {
		m := n - d
		tail := vs[d:]
		mean := MeanOf(tail)
		var ss float64
		for _, v := range tail {
			dd := v - mean
			ss += dd * dd
		}
		score := ss / float64(m) / float64(m)
		if score < bestScore {
			bestScore = score
			bestD = d
		}
	}
	return bestD
}

// SteadyStateMean truncates the series at the MSER point and returns the
// mean of the remainder — a bias-corrected estimate of the steady-state
// level of a simulation output series.
func SteadyStateMean(vs []float64) float64 {
	d := MSERTruncation(vs)
	return MeanOf(vs[d:])
}

// Linreg fits y = a + b·x by least squares over the paired samples and
// returns (a, b). Mismatched or empty inputs return zeros.
func Linreg(xs, ys []float64) (a, b float64) {
	n := len(xs)
	if n == 0 || n != len(ys) {
		return 0, 0
	}
	mx, my := MeanOf(xs), MeanOf(ys)
	var num, den float64
	for i := 0; i < n; i++ {
		num += (xs[i] - mx) * (ys[i] - my)
		den += (xs[i] - mx) * (xs[i] - mx)
	}
	if den == 0 {
		return my, 0
	}
	b = num / den
	a = my - b*mx
	return a, b
}
