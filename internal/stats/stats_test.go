package stats

import (
	"math"
	"testing"
	"testing/quick"

	"webharmony/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRunningBasics(t *testing.T) {
	var r Running
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(v)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d, want 8", r.N())
	}
	if !almostEqual(r.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", r.Mean())
	}
	// Population variance is 4; sample variance is 32/7.
	if !almostEqual(r.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", r.Variance(), 32.0/7.0)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", r.Min(), r.Max())
	}
	if !almostEqual(r.Sum(), 40, 1e-9) {
		t.Fatalf("Sum = %v, want 40", r.Sum())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.StdDev() != 0 || r.CI95() != 0 {
		t.Fatal("empty Running should report zeros")
	}
}

func TestRunningSingle(t *testing.T) {
	var r Running
	r.Add(3.5)
	if r.Variance() != 0 {
		t.Fatalf("single-observation variance = %v, want 0", r.Variance())
	}
	if r.Min() != 3.5 || r.Max() != 3.5 {
		t.Fatal("single-observation min/max wrong")
	}
}

func TestRunningReset(t *testing.T) {
	var r Running
	r.Add(1)
	r.Add(2)
	r.Reset()
	if r.N() != 0 || r.Mean() != 0 {
		t.Fatal("Reset did not clear accumulator")
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(100)
		var all, a, b Running
		for i := 0; i < n; i++ {
			v := src.Normal(10, 5)
			all.Add(v)
			if i%2 == 0 {
				a.Add(v)
			} else {
				b.Add(v)
			}
		}
		a.Merge(&b)
		return a.N() == all.N() &&
			almostEqual(a.Mean(), all.Mean(), 1e-9) &&
			almostEqual(a.Variance(), all.Variance(), 1e-6) &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunningMergeEmpty(t *testing.T) {
	var a, b Running
	a.Add(5)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 1 || a.Mean() != 5 {
		t.Fatal("merge with empty changed accumulator")
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 5 {
		t.Fatal("merge into empty did not copy")
	}
}

func TestSamplePercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Median(); !almostEqual(got, 50.5, 1e-9) {
		t.Fatalf("Median = %v, want 50.5", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("P0 = %v, want 1", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Fatalf("P100 = %v, want 100", got)
	}
	if got := s.Percentile(95); got < 94 || got > 97 {
		t.Fatalf("P95 = %v, want ~95", got)
	}
}

func TestSampleEmptyPercentile(t *testing.T) {
	var s Sample
	if s.Percentile(50) != 0 || s.Mean() != 0 || s.StdDev() != 0 {
		t.Fatal("empty Sample should report zeros")
	}
}

func TestSamplePercentileAfterInterleavedAdds(t *testing.T) {
	var s Sample
	s.Add(5)
	s.Add(1)
	_ = s.Median() // forces sort
	s.Add(3)       // invalidates sort
	if got := s.Median(); got != 3 {
		t.Fatalf("Median after re-add = %v, want 3", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i := 0; i < 10; i++ {
		if h.Bin(i) != 1 {
			t.Fatalf("bin %d = %d, want 1", i, h.Bin(i))
		}
	}
	h.Add(-5) // clamps into bin 0
	h.Add(50) // clamps into last bin
	if h.Bin(0) != 2 || h.Bin(9) != 2 {
		t.Fatal("out-of-range values not clamped into edge bins")
	}
	if h.N() != 12 {
		t.Fatalf("N = %d, want 12", h.N())
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram with hi <= lo did not panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestTimeSeriesWindow(t *testing.T) {
	var ts TimeSeries
	for i := 0; i < 10; i++ {
		ts.Add(float64(i), float64(i*i))
	}
	w := ts.Window(3, 6)
	if len(w) != 3 || w[0] != 9 || w[2] != 25 {
		t.Fatalf("Window(3,6) = %v", w)
	}
	if ts.Len() != 10 || ts.At(2).V != 4 {
		t.Fatal("Len/At wrong")
	}
}

func TestMeanStdDevOf(t *testing.T) {
	vs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almostEqual(MeanOf(vs), 5, 1e-12) {
		t.Fatal("MeanOf wrong")
	}
	if !almostEqual(StdDevOf(vs), math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatal("StdDevOf wrong")
	}
	if MeanOf(nil) != 0 || StdDevOf(nil) != 0 || StdDevOf([]float64{1}) != 0 {
		t.Fatal("degenerate inputs should yield 0")
	}
}

func TestFractionAbove(t *testing.T) {
	vs := []float64{1, 2, 3, 4}
	if got := FractionAbove(vs, 2); got != 0.5 {
		t.Fatalf("FractionAbove = %v, want 0.5", got)
	}
	if FractionAbove(nil, 0) != 0 {
		t.Fatal("FractionAbove(nil) != 0")
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(100, 116); !almostEqual(got, 0.16, 1e-12) {
		t.Fatalf("Improvement = %v, want 0.16", got)
	}
	if Improvement(0, 10) != 0 {
		t.Fatal("Improvement with zero baseline should be 0")
	}
	if got := Improvement(100, 90); !almostEqual(got, -0.10, 1e-12) {
		t.Fatalf("negative Improvement = %v, want -0.10", got)
	}
}

func TestRunningStringFormat(t *testing.T) {
	var r Running
	r.Add(1)
	r.Add(3)
	if got := r.String(); got != "2.00 ± 1.41 (n=2)" {
		t.Fatalf("String = %q", got)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	src := rng.New(99)
	var small, large Running
	for i := 0; i < 10; i++ {
		small.Add(src.Normal(0, 1))
	}
	for i := 0; i < 1000; i++ {
		large.Add(src.Normal(0, 1))
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI95 did not shrink: small=%v large=%v", small.CI95(), large.CI95())
	}
}
