package stats

import (
	"math/rand"
	"testing"
)

func TestLatencyBucketBounds(t *testing.T) {
	// Every value maps to a bucket whose max is >= the value, and bucket
	// indexes are monotone in the value.
	prev := -1
	for _, v := range []int64{0, 1, 7, 8, 9, 15, 16, 63, 64, 100, 1000, 4095, 4096, 1 << 20, 1<<40 + 12345} {
		idx := latencyBucket(v)
		if idx <= prev && v > 0 {
			// Not strictly increasing (nearby values share buckets) but
			// never decreasing.
			if idx < prev {
				t.Errorf("bucket(%d) = %d < previous %d", v, idx, prev)
			}
		}
		if m := latencyBucketMax(idx); m < v {
			t.Errorf("bucketMax(bucket(%d)) = %d < value", v, m)
		}
		prev = idx
	}
	// Exact range: buckets 0..7 are singletons.
	for v := int64(0); v < 8; v++ {
		if m := latencyBucketMax(latencyBucket(v)); m != v {
			t.Errorf("exact bucket for %d has max %d", v, m)
		}
	}
}

func TestLatencyBucketRelativeError(t *testing.T) {
	// Bucket width is value/8, so the upper bound overshoots by < 12.5%.
	for v := int64(8); v < 1<<22; v = v*7/5 + 1 {
		m := latencyBucketMax(latencyBucket(v))
		if m < v {
			t.Fatalf("bucketMax < value at %d", v)
		}
		if float64(m-v) > float64(v)/8 {
			t.Errorf("bucket overshoot at %d: max %d (err %.1f%%)", v, m, 100*float64(m-v)/float64(v))
		}
	}
}

func TestLatencyHistQuantiles(t *testing.T) {
	var h LatencyHist
	if h.Quantile(0.5) != 0 || h.N() != 0 || h.Mean() != 0 {
		t.Fatal("zero-value histogram not empty")
	}
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if h.N() != 100 || h.Sum() != 5050 || h.Max() != 100 {
		t.Fatalf("n=%d sum=%d max=%d", h.N(), h.Sum(), h.Max())
	}
	if m := h.Mean(); m != 50.5 {
		t.Errorf("mean = %v, want 50.5", m)
	}
	// p50 rank is the 50th observation (value 50); its bucket max may
	// overshoot by < 12.5%.
	p50 := h.Quantile(0.5)
	if p50 < 50 || p50 > 56 {
		t.Errorf("p50 = %d, want in [50,56]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 99 || p99 > 111 {
		t.Errorf("p99 = %d, want in [99,111]", p99)
	}
	if h.Quantile(1.0) != 100 {
		t.Errorf("p100 = %d, want exact max 100", h.Quantile(1.0))
	}
	if h.Quantile(0) != 1 {
		t.Errorf("p0 = %d, want first observation's bucket 1", h.Quantile(0))
	}
}

func TestLatencyHistSingleObservation(t *testing.T) {
	var h LatencyHist
	h.Observe(5)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 5 {
			t.Errorf("Quantile(%v) = %d, want 5", q, got)
		}
	}
	var n LatencyHist
	n.Observe(-3) // clamps to zero
	if n.Quantile(0.5) != 0 || n.Sum() != 0 {
		t.Error("negative observation not clamped to zero")
	}
}

func TestLatencyHistMergeMatchesSequential(t *testing.T) {
	// Partitioning observations across histograms and merging must yield
	// identical quantiles to observing sequentially — the property the
	// worker-count determinism contract rests on.
	rng := rand.New(rand.NewSource(42))
	var whole LatencyHist
	parts := make([]LatencyHist, 4)
	for i := 0; i < 10000; i++ {
		v := int64(rng.ExpFloat64() * 50000)
		whole.Observe(v)
		parts[i%4].Observe(v)
	}
	var merged LatencyHist
	for i := range parts {
		merged.Merge(&parts[i])
	}
	if merged.N() != whole.N() || merged.Sum() != whole.Sum() || merged.Max() != whole.Max() {
		t.Fatalf("merged n/sum/max diverge: %d/%d/%d vs %d/%d/%d",
			merged.N(), merged.Sum(), merged.Max(), whole.N(), whole.Sum(), whole.Max())
	}
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		if a, b := merged.Quantile(q), whole.Quantile(q); a != b {
			t.Errorf("Quantile(%v): merged %d != sequential %d", q, a, b)
		}
	}
}

func TestLatencyHistReset(t *testing.T) {
	var h LatencyHist
	h.Observe(12345)
	h.Reset()
	if h.N() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Error("Reset left state behind")
	}
}

func BenchmarkLatencyHistObserve(b *testing.B) {
	var h LatencyHist
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) * 37 % 1000000)
	}
}
