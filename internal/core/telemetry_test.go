package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"webharmony/internal/harmony"
	"webharmony/internal/telemetry"
	"webharmony/internal/tpcw"
)

// TestTelemetryZeroOverhead pins the tentpole's core invariant: an
// instrumented run measures exactly what a bare run measures. The sampler
// only reads simulation state and the trace observer fires outside the
// engine, so enabling telemetry must not change a single WIPS value.
func TestTelemetryZeroOverhead(t *testing.T) {
	cfg := TinyLab()
	opts := harmony.Options{Seed: 1}

	bare := TuneWorkload(cfg, tpcw.Browsing, 6, 4, opts)

	tcfg := cfg
	tcfg.Telemetry = telemetry.NewCollector()
	instrumented := TuneWorkload(tcfg, tpcw.Browsing, 6, 4, opts)

	if !reflect.DeepEqual(bare.Baseline, instrumented.Baseline) {
		t.Errorf("telemetry changed the baseline series:\nbare %v\nwith %v",
			bare.Baseline, instrumented.Baseline)
	}
	if !reflect.DeepEqual(bare.Tuning, instrumented.Tuning) {
		t.Errorf("telemetry changed the tuning series:\nbare %v\nwith %v",
			bare.Tuning, instrumented.Tuning)
	}
	if bare.BestWIPS != instrumented.BestWIPS {
		t.Errorf("telemetry changed BestWIPS: bare %v, with %v",
			bare.BestWIPS, instrumented.BestWIPS)
	}
	if tcfg.Telemetry.Empty() {
		t.Error("instrumented run recorded no telemetry")
	}
}

// TestTuneWorkloadTraceContents checks the trace stream a tuning run
// emits: a restart from the session's anchored reset, then one step per
// tuning iteration with sim-time and evaluation counters advancing and a
// full parameter map attached.
func TestTuneWorkloadTraceContents(t *testing.T) {
	cfg := TinyLab()
	cfg.Telemetry = telemetry.NewCollector()
	const iters = 5
	TuneWorkload(cfg, tpcw.Browsing, iters, 2, harmony.Options{Seed: 1})

	events := decodeTrace(t, cfg.Telemetry)

	if len(events) < iters+1 {
		t.Fatalf("got %d events, want at least %d (reset + %d steps)", len(events), iters+1, iters)
	}
	var steps, restarts int
	lastT := -1.0
	for _, ev := range events {
		switch ev.Kind {
		case "step":
			steps++
			if ev.Config == nil {
				t.Fatalf("step event %+v has no config", ev)
			}
		case "restart":
			restarts++
		default:
			t.Fatalf("unexpected event kind %q", ev.Kind)
		}
		if ev.Unit != "tuning" {
			t.Fatalf("event unit = %q, want \"tuning\"", ev.Unit)
		}
		if ev.T < lastT {
			t.Fatalf("sim-time went backwards: %v after %v", ev.T, lastT)
		}
		lastT = ev.T
	}
	if steps != iters {
		t.Errorf("got %d step events, want %d", steps, iters)
	}
	if restarts < 1 {
		t.Error("expected at least one restart event (the anchored reset)")
	}
}

// TestMoveEventSimTime checks that RunAdaptive stamps executed moves with
// the simulated time and mirrors them into the trace stream.
func TestMoveEventSimTime(t *testing.T) {
	cfg := TinyLab()
	// A lopsided cluster under heavy load, so the reconfiguration check
	// fires within a short run.
	cfg.ProxyNodes, cfg.AppNodes, cfg.DBNodes = 3, 1, 1
	cfg.Browsers = 240
	cfg.Telemetry = telemetry.NewCollector()
	lab := NewLab(cfg, tpcw.Browsing)
	res := RunAdaptive(lab, 8, AdaptiveOptions{
		Strategy:      harmony.StrategyDuplication,
		Tuner:         harmony.Options{Seed: 1},
		ReconfigEvery: 2,
		MaxMoves:      1,
	})
	if len(res.Moves) == 0 {
		t.Skip("no reconfiguration triggered at this scale")
	}
	mv := res.Moves[0]
	if mv.SimTime <= 0 {
		t.Errorf("MoveEvent.SimTime = %v, want > 0", mv.SimTime)
	}
	var moves int
	for _, ev := range decodeTrace(t, cfg.Telemetry) {
		if ev.Kind == "move" {
			moves++
			if ev.Iter != mv.Iteration {
				t.Errorf("move event iter = %d, want %d", ev.Iter, mv.Iteration)
			}
		}
	}
	if moves != len(res.Moves) {
		t.Errorf("trace has %d move events, result has %d", moves, len(res.Moves))
	}
}

// decodeTrace round-trips a collector's trace through WriteTrace and
// parses every JSON line back into an Event.
func decodeTrace(t *testing.T, c *telemetry.Collector) []telemetry.Event {
	t.Helper()
	var buf bytes.Buffer
	if err := c.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []telemetry.Event
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var ev telemetry.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		events = append(events, ev)
	}
	return events
}
