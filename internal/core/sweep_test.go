package core

import (
	"bytes"
	"strings"
	"testing"

	"webharmony/internal/tpcw"
)

func sweepCSV(t *testing.T, res *SweepResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSweepCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunSweepDeterminism pins the byte-equality contract for the grid
// driver: the long-form CSV is identical at workers=1 and workers=4.
func TestRunSweepDeterminism(t *testing.T) {
	axes := func() []SweepAxis {
		return []SweepAxis{BrowsersAxis(60, 80), ThinkAxis(0.4, 0.6)}
	}
	got := map[int][]byte{}
	for _, workers := range []int{1, 4} {
		cfg := parallelTestLab()
		cfg.Workers = workers
		got[workers] = sweepCSV(t, RunSweep(cfg, tpcw.Shopping, axes(), 2, 1))
	}
	if !bytes.Equal(got[1], got[4]) {
		t.Errorf("sweep CSV differs between workers=1 and workers=4:\n--- workers=1\n%s\n--- workers=4\n%s",
			got[1], got[4])
	}
}

// TestRunSweepRowOrder asserts the long-form layout: one row per
// (combination, replicate), combinations row-major with the last axis
// fastest, replicates innermost.
func TestRunSweepRowOrder(t *testing.T) {
	cfg := parallelTestLab()
	cfg.Workers = 2
	axes := []SweepAxis{BrowsersAxis(60, 80), ThinkAxis(0.4, 0.6)}
	res := RunSweep(cfg, tpcw.Shopping, axes, 2, 1)

	if want := []string{"browsers", "think"}; strings.Join(res.Axes, ",") != strings.Join(want, ",") {
		t.Fatalf("axes = %v, want %v", res.Axes, want)
	}
	wantRows := []struct {
		values string
		rep    int
	}{
		{"60,0.4", 0}, {"60,0.4", 1},
		{"60,0.6", 0}, {"60,0.6", 1},
		{"80,0.4", 0}, {"80,0.4", 1},
		{"80,0.6", 0}, {"80,0.6", 1},
	}
	if len(res.Rows) != len(wantRows) {
		t.Fatalf("got %d rows, want %d", len(res.Rows), len(wantRows))
	}
	for i, row := range res.Rows {
		if got := strings.Join(row.Values, ","); got != wantRows[i].values || row.Replicate != wantRows[i].rep {
			t.Errorf("row %d = (%s, r%d), want (%s, r%d)",
				i, got, row.Replicate, wantRows[i].values, wantRows[i].rep)
		}
		if row.WIPS <= 0 {
			t.Errorf("row %d has non-positive WIPS %v", i, row.WIPS)
		}
	}
}

// TestRunSweepGridIndependence asserts the common-random-numbers seeding:
// a combination's rows are identical no matter which other combinations
// the grid contains, because replicate seeds depend only on the replicate
// index.
func TestRunSweepGridIndependence(t *testing.T) {
	cfg := parallelTestLab()
	cfg.Workers = 2
	alone := RunSweep(cfg, tpcw.Shopping, []SweepAxis{BrowsersAxis(60)}, 2, 1)
	within := RunSweep(cfg, tpcw.Shopping, []SweepAxis{BrowsersAxis(60, 80)}, 2, 1)
	for r := 0; r < 2; r++ {
		if alone.Rows[r].WIPS != within.Rows[r].WIPS {
			t.Errorf("replicate %d of browsers=60 depends on the grid: %v alone vs %v in a 2-point grid",
				r, alone.Rows[r].WIPS, within.Rows[r].WIPS)
		}
	}
}

func TestWriteSweepCSVGolden(t *testing.T) {
	res := &SweepResult{
		Axes:       []string{"browsers", "shape"},
		Replicates: 1,
		Rows: []SweepRow{
			{Values: []string{"100", "1/1/1"}, Replicate: 0, WIPS: 12.5},
			{Values: []string{"100", "2/2/2"}, Replicate: 0, WIPS: 20},
		},
	}
	want := "browsers,shape,replicate,wips\n100,1/1/1,0,12.5\n100,2/2/2,0,20\n"
	if got := string(sweepCSV(t, res)); got != want {
		t.Errorf("sweep CSV = %q, want %q", got, want)
	}
}

func TestParseSweepSpec(t *testing.T) {
	good := []struct {
		spec   string
		axes   []string
		labels []string // labels of the last axis
	}{
		{"browsers=100,200", []string{"browsers"}, []string{"100", "200"}},
		{"browsers=100;think=0.3,0.6", []string{"browsers", "think"}, []string{"0.3", "0.6"}},
		{" scale=1000 ; shape=1/1/1,2/2/2 ", []string{"scale", "shape"}, []string{"1/1/1", "2/2/2"}},
	}
	for _, tc := range good {
		axes, err := ParseSweepSpec(tc.spec)
		if err != nil {
			t.Errorf("ParseSweepSpec(%q) failed: %v", tc.spec, err)
			continue
		}
		var names []string
		for _, ax := range axes {
			names = append(names, ax.Name)
		}
		if strings.Join(names, ",") != strings.Join(tc.axes, ",") {
			t.Errorf("ParseSweepSpec(%q) axes = %v, want %v", tc.spec, names, tc.axes)
			continue
		}
		last := axes[len(axes)-1]
		if strings.Join(last.Labels, ",") != strings.Join(tc.labels, ",") {
			t.Errorf("ParseSweepSpec(%q) last labels = %v, want %v", tc.spec, last.Labels, tc.labels)
		}
	}

	bad := []string{
		"",
		";;",
		"browsers",
		"browsers=",
		"browsers=abc",
		"browsers=0",
		"think=-1",
		"shape=1/1",
		"shape=1/1/x",
		"shape=0/1/1",
		"cpus=1,2",
		"browsers=10;browsers=20",
	}
	for _, spec := range bad {
		if _, err := ParseSweepSpec(spec); err == nil {
			t.Errorf("ParseSweepSpec(%q) succeeded, want error", spec)
		}
	}
}

// TestParseSweepSpecApplies checks each supported axis mutates the right
// LabConfig knob.
func TestParseSweepSpecApplies(t *testing.T) {
	axes, err := ParseSweepSpec("browsers=123;scale=4500;think=0.75;shape=3/2/1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := QuickLab()
	for _, ax := range axes {
		ax.Apply(&cfg, 0)
	}
	if cfg.Browsers != 123 || cfg.Scale != 4500 || cfg.ThinkMean != 0.75 {
		t.Errorf("applied cfg = browsers %d, scale %d, think %v", cfg.Browsers, cfg.Scale, cfg.ThinkMean)
	}
	if cfg.ProxyNodes != 3 || cfg.AppNodes != 2 || cfg.DBNodes != 1 {
		t.Errorf("applied shape = %d/%d/%d, want 3/2/1", cfg.ProxyNodes, cfg.AppNodes, cfg.DBNodes)
	}
}
