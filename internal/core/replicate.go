package core

import (
	"webharmony/internal/harmony"
	"webharmony/internal/rng"
	"webharmony/internal/stats"
	"webharmony/internal/tpcw"
)

// Replicate runs R independent replicates of an experiment unit and
// returns their results, one slot per replicate. Replicate r runs under a
// copy of cfg whose Seed is rng.TaskSeed(cfg.Seed, r) — a pure function of
// the pair, so a replicate's result depends only on (cfg, r), never on R,
// the worker count or which worker ran it. The replicates fan out over
// the cfg.Workers pool; each unit must build its own state from the
// configuration it is handed (the usual ForEach contract) and write
// nothing but its return value, which Replicate stores into the
// index-addressed slot r. Under that contract the returned slice is
// bit-for-bit identical at every worker count.
//
// Stochastic inputs the unit takes besides the lab seed (e.g. a tuner's
// harmony.Options.Seed) must be re-derived per replicate the same way —
// see ReplicateSeed — or replicates would share tuner randomness.
func Replicate[T any](cfg LabConfig, R int, unit func(cfg LabConfig, r int) T) []T {
	out := make([]T, R)
	ForEach(cfg.Workers, R, func(r int) {
		rcfg := cfg
		rcfg.Seed = rng.TaskSeed(cfg.Seed, uint64(r))
		rcfg.TelemetryReplicate = r
		out[r] = unit(rcfg, r)
	})
	return out
}

// ReplicateSeed derives the seed replicate r uses from a base seed. It is
// the same derivation Replicate applies to LabConfig.Seed, exported so
// units can derive secondary seeds (tuner options, fault schedules) that
// stay aligned with their replicate index.
func ReplicateSeed(base uint64, r int) uint64 {
	return rng.TaskSeed(base, uint64(r))
}

// Table4MethodStats is one row of the replicated Table 4: the WIPS of a
// cluster tuning method summarized across R independent replicates.
type Table4MethodStats struct {
	Method string
	// WIPS[r] is replicate r's result (the best configuration's WIPS for
	// tuned methods, the mean default-configuration WIPS for "none").
	WIPS []float64
	// Mean, StdDev and CI95 summarize WIPS across replicates. This is the
	// across-replicate σ the paper's Table 4 calls for, replacing the
	// single-run second-half σ of Table4Row.
	Mean   float64
	StdDev float64
	CI95   float64
	// Improvement compares the method's mean to the baseline's mean.
	Improvement float64
	// Iterations is the initial-exploration length of the method's widest
	// tuning server (structural, identical across replicates).
	Iterations int
}

// Table4Replicated is the Table 4 comparison of cluster tuning methods
// with R replicates per method.
type Table4Replicated struct {
	Replicates int
	Rows       []Table4MethodStats
}

// RunTable4Replicated reruns the Table 4 method comparison R times, each
// replicate on labs and tuners seeded from ReplicateSeed, and reports
// mean ± σ and a Student-t 95% confidence interval per method across the
// replicates. The R×5 (baseline + four methods) units fan out over
// cfg.Workers; output is bit-for-bit identical at any worker count.
func RunTable4Replicated(cfg LabConfig, iters, R int, opts harmony.Options) *Table4Replicated {
	if R < 1 {
		panic("core: RunTable4Replicated needs R >= 1")
	}
	runs := Replicate(cfg, R, func(rcfg LabConfig, r int) *Table4Result {
		ropts := opts
		ropts.Seed = ReplicateSeed(opts.Seed, r)
		return RunTable4(rcfg, iters, ropts)
	})

	res := &Table4Replicated{Replicates: R}
	for i := range runs[0].Rows {
		row := Table4MethodStats{
			Method:     runs[0].Rows[i].Method,
			WIPS:       make([]float64, R),
			Iterations: runs[0].Rows[i].Iterations,
		}
		for r, run := range runs {
			row.WIPS[r] = run.Rows[i].WIPS
		}
		s := stats.Summarize(row.WIPS)
		row.Mean, row.StdDev, row.CI95 = s.Mean, s.StdDev, s.CI95
		res.Rows = append(res.Rows, row)
	}
	baseMean := res.Rows[0].Mean
	for i := 1; i < len(res.Rows); i++ {
		res.Rows[i].Improvement = stats.Improvement(baseMean, res.Rows[i].Mean)
	}
	return res
}

// RunAdaptiveReplicated runs R independent replicates of the full §IV
// adaptive loop (RunAdaptive) on the given setup and workload, fanned out
// over cfg.Workers. Each replicate builds its own lab from
// ReplicateSeed(cfg.Seed, r) and a tuner seeded ReplicateSeed of
// opts.Tuner.Seed, so element r is reproducible in isolation. This
// replaces the sequential replication loop the CLI used to run.
func RunAdaptiveReplicated(cfg LabConfig, w tpcw.Workload, iters, R int, opts AdaptiveOptions) []*AdaptiveResult {
	return Replicate(cfg, R, func(rcfg LabConfig, r int) *AdaptiveResult {
		ropts := opts
		ropts.Tuner.Seed = ReplicateSeed(opts.Tuner.Seed, r)
		lab := NewLab(rcfg, w)
		return RunAdaptive(lab, iters, ropts)
	})
}
