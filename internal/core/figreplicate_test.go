package core

import (
	"bytes"
	"testing"

	"webharmony/internal/harmony"
	"webharmony/internal/stats"
	"webharmony/internal/tpcw"
)

// TestRunFigure4ReplicatedDeterminism extends the Figure 4 determinism
// contract to the replicated runner: JSON and CSV, including the
// across-replicate mean/σ/CI cells, are byte-identical at workers=1 and
// workers=4.
func TestRunFigure4ReplicatedDeterminism(t *testing.T) {
	got := map[int][]byte{}
	var res *Figure4Replicated
	for _, workers := range []int{1, 4} {
		cfg := parallelTestLab()
		cfg.Workers = workers
		res = RunFigure4Replicated(cfg, 3, 1, 2, harmony.Options{Seed: 3})
		var buf bytes.Buffer
		if err := WriteFigure4ReplicatedCSV(&buf, res); err != nil {
			t.Fatal(err)
		}
		got[workers] = append(exportJSON(t, res), buf.Bytes()...)
	}
	if !bytes.Equal(got[1], got[4]) {
		t.Errorf("replicated Figure 4 export differs between workers=1 and workers=4:\n--- workers=1\n%s\n--- workers=4\n%s",
			got[1], got[4])
	}
	if res.Replicates != 2 {
		t.Fatalf("Replicates = %d, want 2", res.Replicates)
	}
	for _, w := range tpcw.Workloads() {
		if res.Default[w].N != 2 || res.Matrix[w][w].N != 2 || res.Improvement[w].N != 2 {
			t.Errorf("workload %v summaries have N = %d/%d/%d, want 2 each",
				w, res.Default[w].N, res.Matrix[w][w].N, res.Improvement[w].N)
		}
	}
}

// TestRunFigure4ReplicatedMatchesDirectRuns asserts each replicate is the
// plain RunFigure4 under the derived seeds, and the summaries are the
// stats of those runs — the replicated runner adds aggregation, never new
// randomness.
func TestRunFigure4ReplicatedMatchesDirectRuns(t *testing.T) {
	cfg := parallelTestLab()
	cfg.Workers = 2
	opts := harmony.Options{Seed: 3}
	rep := RunFigure4Replicated(cfg, 3, 1, 2, opts)

	vals := make([]float64, 2)
	for r := 0; r < 2; r++ {
		rcfg := cfg
		rcfg.Seed = ReplicateSeed(cfg.Seed, r)
		ropts := opts
		ropts.Seed = ReplicateSeed(opts.Seed, r)
		direct := RunFigure4(rcfg, 3, 1, ropts)
		vals[r] = direct.Matrix[tpcw.Shopping][tpcw.Ordering]
	}
	if want := stats.Summarize(vals); rep.Matrix[tpcw.Shopping][tpcw.Ordering] != want {
		t.Errorf("Matrix[shopping][ordering] = %+v, want the direct runs' summary %+v",
			rep.Matrix[tpcw.Shopping][tpcw.Ordering], want)
	}
}

// TestRunFigure7ReplicatedDeterminism pins the replicated reconfiguration
// runner: byte-identical JSON and CSV at workers=1 and workers=4, with
// the worker pool deliberately wider than the replicate count so the
// fan-out is exercised under -race (the CI race job covers this package).
func TestRunFigure7ReplicatedDeterminism(t *testing.T) {
	fo := Figure7a()
	fo.Total = 6
	fo.SwitchAt = 1
	fo.CheckAt = 2
	got := map[int][]byte{}
	var res *Figure7Replicated
	for _, workers := range []int{1, 4} {
		cfg := parallelTestLab()
		cfg.Browsers = 300 // 7-node cluster
		cfg.Warm = 4
		cfg.Workers = workers
		res = RunFigure7Replicated(cfg, fo, 3)
		var buf bytes.Buffer
		if err := WriteFigure7ReplicatedCSV(&buf, res); err != nil {
			t.Fatal(err)
		}
		got[workers] = append(exportJSON(t, res), buf.Bytes()...)
	}
	if !bytes.Equal(got[1], got[4]) {
		t.Errorf("replicated Figure 7 export differs between workers=1 and workers=4:\n--- workers=1\n%s\n--- workers=4\n%s",
			got[1], got[4])
	}

	if len(res.WIPS) != fo.Total || len(res.Decisions) != 3 {
		t.Fatalf("got %d iteration summaries / %d decisions, want %d / 3",
			len(res.WIPS), len(res.Decisions), fo.Total)
	}
	for i, s := range res.WIPS {
		if s.N != 3 || s.Mean <= 0 {
			t.Errorf("iteration %d summary %+v, want N=3 and positive mean", i, s)
		}
	}

	// Replicate r must be the plain RunFigure7 under the derived seed,
	// and the iteration summaries the stats of those direct runs.
	cfg := parallelTestLab()
	cfg.Browsers = 300
	cfg.Warm = 4
	cfg.Workers = 2
	directs := make([]*Figure7Result, 2)
	for r := range directs {
		rcfg := cfg
		rcfg.Seed = ReplicateSeed(cfg.Seed, r)
		directs[r] = RunFigure7(rcfg, fo, nil)
	}
	check := RunFigure7Replicated(cfg, fo, 2)
	for r, direct := range directs {
		moved := ""
		if direct.Moved {
			moved = direct.Decision.String()
		}
		if check.Decisions[r] != moved {
			t.Errorf("replicate %d decision = %q, want the direct run's %q", r, check.Decisions[r], moved)
		}
	}
	for i := range check.WIPS {
		want := stats.Summarize([]float64{directs[0].WIPS[i], directs[1].WIPS[i]})
		if check.WIPS[i] != want {
			t.Errorf("WIPS[%d] = %+v, want the direct runs' summary %+v", i, check.WIPS[i], want)
		}
	}
}
