package core

import (
	"fmt"

	"webharmony/internal/cluster"
	"webharmony/internal/evalcache"
	"webharmony/internal/harmony"
	"webharmony/internal/param"
	"webharmony/internal/rng"
	"webharmony/internal/tpcw"
	"webharmony/internal/websim"
)

// This file is the hermetic evaluation engine (DESIGN.md §10): every
// configuration evaluation the sequential experiment runners make —
// tuning iterations, baseline windows, Figure 4 matrix cells, tuned-sweep
// arms — runs in a fresh per-evaluation lab whose rng streams derive from
// the evaluation's canonical key (the node configurations, workload, lab
// shape, window lengths and base seed). The measurement is therefore a
// pure function of that key:
//
//   - re-proposing an already-measured lattice point (integer rounding,
//     simplex shrink steps near convergence, post-restart re-anchoring)
//     reproduces the earlier measurement exactly, so the content-addressed
//     memo table in internal/evalcache can return the stored value with
//     zero observable difference — cache on/off is byte-identical *by
//     construction*, not by test luck;
//   - the per-config (not per-step) streams are a common-random-numbers
//     discipline: two configurations are always compared under streams
//     that depend only on themselves, never on when they were proposed.
//
// Live-cluster paths keep their history: RunFigure7/RunAdaptive measure a
// continuously-running system whose node moves and cache states are the
// object of study, so they stay on Lab.MeasureIteration.

// evalSpec assembles the canonical key inputs of one evaluation from the
// lab configuration. Telemetry/profiling fields and Workers are excluded:
// they never change what a run measures.
func evalSpec(cfg LabConfig, w tpcw.Workload, nodeCfgs map[int]param.Config) evalcache.Spec {
	return evalcache.Spec{
		ProxyNodes: cfg.ProxyNodes,
		AppNodes:   cfg.AppNodes,
		DBNodes:    cfg.DBNodes,
		WorkLines:  cfg.WorkLines,
		Browsers:   cfg.Browsers,
		ThinkMean:  cfg.ThinkMean,
		Scale:      cfg.Scale,
		Sessions:   cfg.Sessions,
		Warm:       cfg.Warm,
		Measure:    cfg.Measure,
		Cool:       cfg.Cool,
		Seed:       cfg.Seed,
		Workload:   w.String(),
		Nodes:      nodeCfgs,
	}
}

// EvalConfig measures one node→configuration assignment hermetically: a
// fresh lab is built from the parent's configuration with rng streams
// seeded from the evaluation key, the configurations are staged, and one
// warm/measure/cool window runs. Nodes absent from nodeCfgs keep their
// space defaults (the runners always pass complete assignments).
//
// When the parent configuration carries an EvalCache, the evaluation is
// memoized under its key. Memoization is bypassed while telemetry is
// attached: a cache hit would skip the per-evaluation recorder/sampler
// registration and change the telemetry byte stream, and instrumented
// runs are for inspection, not wall-clock. Results are identical either
// way — an evaluation is a pure function of its key.
func (l *Lab) EvalConfig(w tpcw.Workload, nodeCfgs map[int]param.Config, unit string) websim.Measurement {
	key := evalSpec(l.Cfg, w, nodeCfgs).Key()
	compute := func() websim.Measurement {
		cfg := telemetrySub(l.Cfg, unit)
		cfg.Seed = rng.TaskSeed(l.Cfg.Seed, key.Hash())
		cfg.Workers = 1
		f := NewLab(cfg, w)
		for node, nc := range nodeCfgs {
			f.Sys.SetNodeConfig(node, nc)
		}
		return f.MeasureIteration(true)
	}
	if cache := l.Cfg.EvalCache; cache != nil && l.Cfg.Telemetry == nil {
		m, _ := cache.Do(key, compute)
		return m
	}
	return compute()
}

// tierNodeConfigs expands a per-tier configuration map to the complete
// node→configuration assignment of the lab's current layout (every node
// of a tier gets its own clone of the tier's configuration).
func (l *Lab) tierNodeConfigs(cfgs map[cluster.Tier]param.Config) map[int]param.Config {
	out := make(map[int]param.Config)
	for t, cfg := range cfgs {
		for _, n := range l.Sys.Cluster.TierNodes(t) {
			out[n.ID()] = cfg.Clone()
		}
	}
	return out
}

// hermeticRun drives a tuning strategy through hermetic per-evaluation
// labs: each iteration peeks the strategy's next proposal
// (Strategy.Lookahead — non-committing), measures it via EvalConfig, and
// commits the measurement in place of target.RunIteration
// (Strategy.CommitStep). The authoritative lab's engine never runs, so
// trace timestamps come from a virtual clock advancing one full iteration
// window per committed step — the cadence an engine clock would follow.
type hermeticRun struct {
	lab    *Lab
	w      tpcw.Workload
	vt     float64 // virtual clock for trace timestamps
	window float64
	step   int
}

// newHermeticRun prepares a hermetic tuning run on the given lab.
func newHermeticRun(lab *Lab, w tpcw.Workload) *hermeticRun {
	return &hermeticRun{lab: lab, w: w, window: lab.Cfg.Warm + lab.Cfg.Measure + lab.Cfg.Cool}
}

// options attaches the virtual-clock trace observer, unless the caller
// supplied an observer of its own. No-op when the lab has no telemetry.
func (h *hermeticRun) options(opts harmony.Options) harmony.Options {
	if opts.Observe == nil && opts.Observer == nil {
		opts.Observe = specObserve(h.lab.Recorder(), &h.vt)
	}
	return opts
}

// Step runs one hermetic tuning iteration and returns its WIPS. The
// telemetry unit carries the strategy epoch and the global step index,
// matching the speculative Figure 5 runner's naming.
func (h *hermeticRun) Step(st *harmony.Strategy) float64 {
	props := st.Lookahead(1)
	if len(props) == 0 {
		panic("core: hermetic step peeked no proposal")
	}
	m := h.lab.EvalConfig(h.w, props[0], fmt.Sprintf("e%02d/s%05d", st.Epoch(), h.step))
	h.vt += h.window
	st.CommitStep(m.WIPS, m.LineWIPS)
	h.step++
	return m.WIPS
}
