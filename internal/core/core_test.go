package core

import (
	"testing"

	"webharmony/internal/cluster"
	"webharmony/internal/harmony"
	"webharmony/internal/tpcw"
)

func TestLabImplementsTarget(t *testing.T) {
	lab := NewLab(QuickLab(), tpcw.Shopping)
	tiers := lab.Tiers()
	if len(tiers) != 3 {
		t.Fatalf("tiers = %d", len(tiers))
	}
	if tiers[0].Name != "proxy" || len(tiers[0].Nodes) != 1 {
		t.Fatalf("tier spec = %+v", tiers[0])
	}
	wips, lines := lab.RunIteration()
	if wips <= 0 {
		t.Fatal("no throughput from RunIteration")
	}
	if lines != nil {
		t.Fatal("line WIPS without work lines")
	}
	if lab.Iterations() != 1 {
		t.Fatal("iteration count wrong")
	}
	if len(lab.LastReadings()) != 3 {
		t.Fatal("readings missing")
	}
}

func TestMeasureConfigSeries(t *testing.T) {
	lab := NewLab(QuickLab(), tpcw.Browsing)
	series := lab.MeasureConfig(DefaultConfigs(), 3)
	if len(series) != 3 {
		t.Fatalf("series = %v", series)
	}
	for _, v := range series {
		if v <= 0 {
			t.Fatalf("zero-throughput iteration in %v", series)
		}
	}
}

func TestTuneWorkloadImproves(t *testing.T) {
	res := TuneWorkload(QuickLab(), tpcw.Ordering, 50, 6, harmony.Options{Seed: 2})
	if len(res.Tuning) != 50 || len(res.Baseline) != 6 {
		t.Fatal("series lengths wrong")
	}
	if res.BestWIPS <= 0 {
		t.Fatal("no best WIPS")
	}
	if res.AvgImprovement < -0.05 {
		t.Fatalf("tuning made things much worse: %v", res.AvgImprovement)
	}
	if res.FracBetter < 0.3 {
		t.Fatalf("only %.0f%% of tuned iterations beat default", 100*res.FracBetter)
	}
	for _, tier := range cluster.Tiers() {
		if _, ok := res.BestConfigs[tier]; !ok {
			t.Fatalf("missing best config for tier %v", tier)
		}
	}
	t.Logf("%v: baseline=%.1f best=%.1f avgImp=%.1f%% fracBetter=%.2f",
		res.Workload, res.Baseline[0], res.BestWIPS, 100*res.AvgImprovement, res.FracBetter)
}

func TestRunFigure5SwitchesWorkloads(t *testing.T) {
	cfg := QuickLab()
	res := RunFigure5(cfg, []tpcw.Workload{tpcw.Browsing, tpcw.Ordering}, 10, 3,
		harmony.Options{Seed: 3, ShiftFactor: 0.25})
	if len(res.WIPS) != 30 {
		t.Fatalf("WIPS series = %d", len(res.WIPS))
	}
	if len(res.Switches) != 2 || res.Switches[0] != 10 || res.Switches[1] != 20 {
		t.Fatalf("switches = %v", res.Switches)
	}
	if res.Workload[5] != tpcw.Browsing || res.Workload[15] != tpcw.Ordering || res.Workload[25] != tpcw.Browsing {
		t.Fatal("workload labels wrong")
	}
	if len(res.Recovery) != 2 {
		t.Fatalf("recovery = %v", res.Recovery)
	}
	for _, r := range res.Recovery {
		if r < 1 || r > 10 {
			t.Fatalf("recovery out of range: %v", res.Recovery)
		}
	}
	t.Logf("recovery=%v restarts=%d", res.Recovery, res.Restarts)
}

func TestRunFigure5PanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	RunFigure5(QuickLab(), nil, 10, 2, harmony.Options{})
}

func TestFormatLayoutSeries(t *testing.T) {
	if got := FormatLayoutSeries(nil); got != "" {
		t.Fatalf("empty = %q", got)
	}
	got := FormatLayoutSeries([]string{"4/2/1", "4/2/1", "3/3/1", "3/3/1"})
	if got != "4/2/1 →(iter 2) 3/3/1" {
		t.Fatalf("got %q", got)
	}
}

func TestDefaultConfigsComplete(t *testing.T) {
	dc := DefaultConfigs()
	if len(dc) != 3 {
		t.Fatal("missing tiers")
	}
	if len(dc[cluster.TierDB]) != 9 {
		t.Fatal("db default wrong arity")
	}
}

func TestLabConfigs(t *testing.T) {
	p := PaperLab()
	if p.Warm != 100 || p.Measure != 1000 || p.Cool != 100 {
		t.Fatal("PaperLab windows must match §III.A")
	}
	s := StandardLab()
	if s.Measure >= p.Measure {
		t.Fatal("StandardLab should be shorter")
	}
	q := QuickLab()
	if q.Browsers >= s.Browsers {
		t.Fatal("QuickLab should be smaller")
	}
}
