package core

import (
	"webharmony/internal/harmony"
	"webharmony/internal/rng"
	"webharmony/internal/stats"
	"webharmony/internal/tpcw"
)

// TunedSweepRow is one paired observation of a tuned sweep: a knob
// combination, a replicate index, the default configuration's mean WIPS,
// the tuned configuration's mean WIPS on an identically seeded lab, and
// the absolute/relative gain of tuning.
type TunedSweepRow struct {
	Values      []string
	Replicate   int
	DefaultWIPS float64
	TunedWIPS   float64
	// Gain is TunedWIPS − DefaultWIPS; RelGain is Gain/DefaultWIPS (0.05
	// for a 5% gain). Both arms of a replicate share a seed (common
	// random numbers), so the gain is a paired difference.
	Gain    float64
	RelGain float64
}

// TunedSweepCell aggregates one knob combination across its replicates:
// mean ± σ ± Student-t 95% CI for the default arm, the tuned arm, and the
// paired gain (absolute and relative).
type TunedSweepCell struct {
	Values  []string
	Default stats.Summary
	Tuned   stats.Summary
	// Gain and RelGain are paired-t summaries of the per-replicate
	// differences — the variance-reduced comparison common random
	// numbers buy. A Gain interval excluding zero means tuning pays (or
	// costs) significantly at this grid point.
	Gain    stats.Summary
	RelGain stats.Summary
}

// TunedSweepResult is the output of RunTunedSweep: long-form paired rows
// (combinations row-major, last axis fastest, replicates innermost) plus
// one aggregated cell per combination in the same order — the repo's
// answer to "where does tuning pay most?".
type TunedSweepResult struct {
	Axes       []string
	Workload   tpcw.Workload
	Replicates int
	// Iters is the measured iterations per arm evaluation; TuneIters is
	// the tuning-session length per replicate.
	Iters     int
	TuneIters int
	Rows      []TunedSweepRow
	Cells     []TunedSweepCell
}

// RunTunedSweep maps where tuning pays across the grid spanned by axes:
// for every knob combination it runs R replicated tuning sessions
// alongside R default-configuration replicates and reports the paired
// gain per cell. Replicate r of a combination runs the §III.A procedure
// under seed rng.TaskSeed(cfg.Seed, r): measure the default configuration
// for iters iterations, tune for tuneIters iterations with a tuner seeded
// ReplicateSeed(opts.Seed, r), then evaluate the best configuration for
// iters iterations on a fresh, identically seeded lab. The default arm is
// computed exactly as RunSweep computes it, so a tuned sweep's
// DefaultWIPS column reproduces RunSweep's wips column bit-for-bit.
//
// Seeds depend only on the replicate index — never on the combination,
// the grid, R or the worker count — so combinations are compared under
// common random numbers and a cell's numbers are independent of which
// other cells the grid contains. All combos×R units fan out over the
// cfg.Workers pool; each builds its own labs, so the result is
// bit-for-bit identical at any worker count.
func RunTunedSweep(cfg LabConfig, w tpcw.Workload, axes []SweepAxis, R, iters, tuneIters int, opts harmony.Options) *TunedSweepResult {
	if len(axes) == 0 || R < 1 || iters < 1 || tuneIters < 1 {
		panic("core: RunTunedSweep needs at least one axis, R >= 1, iters >= 1 and tuneIters >= 1")
	}
	combos := 1
	for _, ax := range axes {
		if len(ax.Labels) == 0 {
			panic("core: RunTunedSweep axis " + ax.Name + " has no values")
		}
		combos *= len(ax.Labels)
	}

	res := &TunedSweepResult{
		Workload: w, Replicates: R, Iters: iters, TuneIters: tuneIters,
	}
	for _, ax := range axes {
		res.Axes = append(res.Axes, ax.Name)
	}
	res.Rows = make([]TunedSweepRow, combos*R)
	ForEach(cfg.Workers, combos*R, func(k int) {
		combo, r := k/R, k%R
		ccfg := cfg
		ccfg.Seed = rng.TaskSeed(cfg.Seed, uint64(r))
		ccfg.TelemetryReplicate = r
		values := make([]string, len(axes))
		// Decode the combination index digit by digit, last axis fastest.
		c := combo
		for j := len(axes) - 1; j >= 0; j-- {
			i := c % len(axes[j].Labels)
			c /= len(axes[j].Labels)
			axes[j].Apply(&ccfg, i)
			values[j] = axes[j].Labels[i]
		}
		ropts := opts
		ropts.Seed = ReplicateSeed(opts.Seed, r)
		ccfg = telemetrySub(ccfg, comboName(axes, values))
		// TuneWorkload measures the default configuration (the baseline
		// arm, identical to RunSweep's procedure) and runs the tuning
		// session; the best configuration is then evaluated on a fresh
		// lab under the same seed so both arms see the same randomness.
		run := TuneWorkload(ccfg, w, tuneIters, iters, ropts)
		def := stats.MeanOf(run.Baseline)
		eval := NewLab(telemetrySub(ccfg, "eval"), w)
		tuned := stats.MeanOf(eval.MeasureConfig(run.BestConfigs, iters))
		res.Rows[k] = TunedSweepRow{
			Values:      values,
			Replicate:   r,
			DefaultWIPS: def,
			TunedWIPS:   tuned,
			Gain:        tuned - def,
			RelGain:     stats.Improvement(def, tuned),
		}
	})

	res.Cells = make([]TunedSweepCell, combos)
	for c := 0; c < combos; c++ {
		defs := make([]float64, R)
		tuneds := make([]float64, R)
		rels := make([]float64, R)
		for r := 0; r < R; r++ {
			row := res.Rows[c*R+r]
			defs[r], tuneds[r], rels[r] = row.DefaultWIPS, row.TunedWIPS, row.RelGain
		}
		res.Cells[c] = TunedSweepCell{
			Values:  res.Rows[c*R].Values,
			Default: stats.Summarize(defs),
			Tuned:   stats.Summarize(tuneds),
			Gain:    stats.SummarizePaired(defs, tuneds),
			RelGain: stats.Summarize(rels),
		}
	}
	return res
}
