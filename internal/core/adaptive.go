package core

import (
	"webharmony/internal/cluster"
	"webharmony/internal/harmony"
	"webharmony/internal/monitor"
	"webharmony/internal/param"
	"webharmony/internal/reconfig"
	"webharmony/internal/telemetry"
)

// AdaptiveOptions configures the full Active Harmony loop of §IV:
// parameter tuning every iteration, plus the reconfiguration check at a
// lower frequency (the paper suggests every ~50 iterations, since moving a
// node reacts to long-term trends and costs more).
type AdaptiveOptions struct {
	Strategy      harmony.StrategyKind
	Tuner         harmony.Options
	ReconfigEvery int // reconfiguration check period in iterations
	WorkLines     int // for the partitioning strategies
	MaxMoves      int // safety bound on node moves (0 = unlimited)
}

func (o AdaptiveOptions) withDefaults() AdaptiveOptions {
	if o.ReconfigEvery == 0 {
		o.ReconfigEvery = 50
	}
	return o
}

// MoveEvent records one executed reconfiguration.
type MoveEvent struct {
	Iteration int     // 0-based iteration after which the move ran
	SimTime   float64 // simulated seconds at which the move ran
	Decision  reconfig.Decision
}

// AdaptiveResult is the output of RunAdaptive.
type AdaptiveResult struct {
	WIPS    []float64
	Layouts []string
	Moves   []MoveEvent
}

// RunAdaptive runs iters tuning iterations on the lab with periodic
// reconfiguration checks. After a node moves, the tuning strategy is
// rebuilt for the new tier layout, seeded with the best configurations
// found so far (tuning restarts, as the cluster is effectively a new
// system — the cost the paper accepts by running reconfiguration at a
// lower frequency).
func RunAdaptive(lab *Lab, iters int, opts AdaptiveOptions) *AdaptiveResult {
	opts = opts.withDefaults()
	res := &AdaptiveResult{}
	costs := labCosts(lab)
	topts := withTrace(opts.Tuner, lab)
	st := harmony.NewStrategy(opts.Strategy, lab, opts.WorkLines, topts)
	acc := newUtilAccumulator()
	for i := 0; i < iters; i++ {
		wips := st.Step()
		res.WIPS = append(res.WIPS, wips)
		res.Layouts = append(res.Layouts, lab.Sys.Cluster.Layout())
		acc.add(lab.LastReadings())

		if (i+1)%opts.ReconfigEvery != 0 {
			continue
		}
		// React to the period's average utilization, not the last
		// iteration's (whose configuration may be a tuner probe): the
		// paper runs reconfiguration at a lower frequency precisely
		// because it responds to longer-term trends.
		readings := acc.average()
		acc = newUtilAccumulator()
		if opts.MaxMoves > 0 && len(res.Moves) >= opts.MaxMoves {
			continue
		}
		d, ok := reconfig.Decide(readings, monitor.DefaultThresholds(),
			lab.Sys.Cluster, costs, monitor.DefaultUrgencyOrder())
		if !ok {
			continue
		}
		// Deploy the strategy's best configurations before the move so the
		// rebuilt strategy starts from them, then move the node with the
		// destination tier's best configuration.
		best := st.BestNodeConfigs()
		for n, cfg := range best {
			if lab.Sys.Cluster.Node(n) != nil {
				lab.Sys.SetNodeConfig(n, cfg)
			}
		}
		lab.Sys.MoveNode(d.Node, d.To, bestForTier(lab, best, d.To))
		res.Moves = append(res.Moves, MoveEvent{
			Iteration: i, SimTime: lab.Sys.Eng.Now(), Decision: d,
		})
		lab.RecordEvent(telemetry.Event{
			Session: "reconfig", Kind: "move", Move: d.String(), Iter: i,
		})
		st = harmony.NewStrategy(opts.Strategy, lab, opts.WorkLines, topts)
	}
	return res
}

// utilAccumulator averages per-node utilizations across iterations.
type utilAccumulator struct {
	sum   map[int][cluster.NumResources]float64
	count map[int]int
	tier  map[int]cluster.Tier
	order []int
}

func newUtilAccumulator() *utilAccumulator {
	return &utilAccumulator{
		sum:   make(map[int][cluster.NumResources]float64),
		count: make(map[int]int),
		tier:  make(map[int]cluster.Tier),
	}
}

func (a *utilAccumulator) add(readings []monitor.Reading) {
	for _, r := range readings {
		if _, seen := a.count[r.Node]; !seen {
			a.order = append(a.order, r.Node)
		}
		s := a.sum[r.Node]
		for j := 0; j < cluster.NumResources; j++ {
			s[j] += r.Util[j]
		}
		a.sum[r.Node] = s
		a.count[r.Node]++
		a.tier[r.Node] = r.Tier // track the latest tier assignment
	}
}

func (a *utilAccumulator) average() []monitor.Reading {
	out := make([]monitor.Reading, 0, len(a.order))
	for _, n := range a.order {
		r := monitor.Reading{Node: n, Tier: a.tier[n]}
		s := a.sum[n]
		c := float64(a.count[n])
		for j := 0; j < cluster.NumResources; j++ {
			r.Util[j] = s[j] / c
		}
		out = append(out, r)
	}
	return out
}

// bestForTier picks any node configuration of the given tier from the
// node→config map (nodes of a tier share configurations under duplication;
// under other strategies an arbitrary member is still the best seed
// available), falling back to the tier default.
func bestForTier(lab *Lab, nodeCfgs map[int]param.Config, t cluster.Tier) param.Config {
	for _, n := range lab.Sys.Cluster.TierNodes(t) {
		if cfg, ok := nodeCfgs[n.ID()]; ok {
			return cfg
		}
	}
	return nil // MoveNode falls back to the tier default
}
