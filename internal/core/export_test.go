package core

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"webharmony/internal/reconfig"
	"webharmony/internal/tpcw"
)

func TestWriteJSON(t *testing.T) {
	res := &Table4Result{Rows: []Table4Row{{Method: "none", WIPS: 110.4, StdDev: 2.1}}}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var back Table4Result
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != 1 || back.Rows[0].WIPS != 110.4 {
		t.Fatalf("round trip: %+v", back)
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, "wips", []float64{1.5, 2.25}); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][1] != "wips" || rows[2][1] != "2.25" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestWriteFigure5CSV(t *testing.T) {
	res := &Figure5Result{
		WIPS:     []float64{100, 90},
		Workload: []tpcw.Workload{tpcw.Browsing, tpcw.Ordering},
	}
	var buf bytes.Buffer
	if err := WriteFigure5CSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "browsing") || !strings.Contains(buf.String(), "ordering") {
		t.Fatalf("csv: %s", buf.String())
	}
}

func TestWriteFigure7CSV(t *testing.T) {
	res := &Figure7Result{
		WIPS:    []float64{100, 160},
		Layouts: []string{"4/2/1", "3/3/1"},
		MovedAt: 0,
		Moved:   true,
		Decision: reconfig.Decision{
			Node: 2, From: 0, To: 1, Overloaded: 4,
		},
	}
	var buf bytes.Buffer
	if err := WriteFigure7CSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "move node2") {
		t.Fatalf("move event missing: %s", out)
	}
	if !strings.Contains(out, "3/3/1") {
		t.Fatalf("layout missing: %s", out)
	}
}

func TestWriteFigure4CSV(t *testing.T) {
	res := &Figure4Result{}
	res.Default = [3]float64{1, 2, 3}
	res.Matrix[tpcw.Ordering] = [3]float64{4, 5, 6}
	var buf bytes.Buffer
	if err := WriteFigure4CSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 { // header + default + 3 best-of rows
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[4][0] != "best-of-ordering" || rows[4][3] != "6" {
		t.Fatalf("ordering row = %v", rows[4])
	}
}

func TestWriteTable4CSV(t *testing.T) {
	res := &Table4Result{Rows: []Table4Row{
		{Method: "duplication", WIPS: 133.7, StdDev: 29.5, Improvement: 0.212, Iterations: 33},
	}}
	var buf bytes.Buffer
	if err := WriteTable4CSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "duplication,133.7,29.5,0.212,33") {
		t.Fatalf("csv: %s", buf.String())
	}
}

func TestExportName(t *testing.T) {
	cases := map[string]any{
		"sec3a":    &SingleWorkloadResult{},
		"figure4":  &Figure4Result{},
		"figure5":  &Figure5Result{},
		"table4":   &Table4Result{},
		"figure7":  &Figure7Result{},
		"adaptive": &AdaptiveResult{},
	}
	for want, v := range cases {
		if got := ExportName(v); got != want {
			t.Errorf("ExportName(%T) = %q, want %q", v, got, want)
		}
	}
	if ExportName(42) == "" {
		t.Error("unknown type should still name itself")
	}
}
