package core

import (
	"testing"

	"webharmony/internal/harmony"
	"webharmony/internal/stats"
	"webharmony/internal/tpcw"
)

// TestRunAdaptiveTunesAndReconfigures runs the full §IV loop on the
// Figure 7(b)-shaped imbalance (2 proxies / 4 apps under browsing): the
// parameter tuner runs every iteration and the reconfiguration check,
// firing at its lower frequency, must eventually move an application node
// into the proxy tier and raise throughput.
func TestRunAdaptiveTunesAndReconfigures(t *testing.T) {
	if testing.Short() {
		t.Skip("full adaptive run")
	}
	cfg := quickFig7Lab()
	cfg.ProxyNodes, cfg.AppNodes, cfg.DBNodes = 2, 4, 1
	lab := NewLab(cfg, tpcw.Browsing)
	// Start from the generous (pre-tuned) configurations so the imbalance
	// signal is about topology, not thread starvation.
	for tier, c := range GenerousConfigs() {
		lab.Sys.SetTierConfig(tier, c)
	}
	res := RunAdaptive(lab, 24, AdaptiveOptions{
		Strategy:      harmony.StrategyDuplication,
		Tuner:         harmony.Options{Seed: 3},
		ReconfigEvery: 8,
		MaxMoves:      1,
	})
	if len(res.WIPS) != 24 || len(res.Layouts) != 24 {
		t.Fatalf("series lengths: %d / %d", len(res.WIPS), len(res.Layouts))
	}
	if len(res.Moves) != 1 {
		t.Fatalf("moves = %d, want 1 (layouts: %s)", len(res.Moves), FormatLayoutSeries(res.Layouts))
	}
	mv := res.Moves[0]
	if mv.Decision.To.String() != "proxy" {
		t.Fatalf("moved to %v, want proxy tier", mv.Decision.To)
	}
	if (mv.Iteration+1)%8 != 0 {
		t.Fatalf("move at iteration %d, want a multiple of the check period", mv.Iteration+1)
	}
	before := stats.MeanOf(res.WIPS[mv.Iteration/2 : mv.Iteration+1])
	after := stats.MeanOf(res.WIPS[mv.Iteration+2:])
	t.Logf("layouts: %s", FormatLayoutSeries(res.Layouts))
	t.Logf("before=%.1f after=%.1f", before, after)
	if after <= before {
		t.Fatalf("adaptive loop did not improve throughput: %.1f -> %.1f", before, after)
	}
}

// TestRunAdaptiveNoMoveOnBalancedCluster verifies the reconfiguration
// check stays quiet when no tier is overloaded.
func TestRunAdaptiveNoMoveOnBalancedCluster(t *testing.T) {
	cfg := QuickLab()
	cfg.Browsers = 60 // light load: nothing saturates
	lab := NewLab(cfg, tpcw.Shopping)
	res := RunAdaptive(lab, 6, AdaptiveOptions{
		Strategy:      harmony.StrategyDuplication,
		Tuner:         harmony.Options{Seed: 1},
		ReconfigEvery: 2,
	})
	if len(res.Moves) != 0 {
		t.Fatalf("unexpected moves on a balanced cluster: %+v", res.Moves)
	}
}

// TestRunAdaptiveMaxMovesBound verifies the safety bound.
func TestRunAdaptiveMaxMovesBound(t *testing.T) {
	if testing.Short() {
		t.Skip("full adaptive run")
	}
	cfg := quickFig7Lab()
	cfg.ProxyNodes, cfg.AppNodes, cfg.DBNodes = 2, 4, 1
	lab := NewLab(cfg, tpcw.Browsing)
	for tier, c := range GenerousConfigs() {
		lab.Sys.SetTierConfig(tier, c)
	}
	res := RunAdaptive(lab, 20, AdaptiveOptions{
		Strategy:      harmony.StrategyDuplication,
		Tuner:         harmony.Options{Seed: 3},
		ReconfigEvery: 4,
		MaxMoves:      1,
	})
	if len(res.Moves) > 1 {
		t.Fatalf("MaxMoves violated: %d moves", len(res.Moves))
	}
}
