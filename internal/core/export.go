package core

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"webharmony/internal/tpcw"
)

// WriteJSON serializes any experiment result as indented JSON.
func WriteJSON(w io.Writer, result any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(result)
}

// WriteSeriesCSV writes an iteration-indexed series with the given value
// column name.
func WriteSeriesCSV(w io.Writer, name string, series []float64) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"iteration", name}); err != nil {
		return err
	}
	for i, v := range series {
		if err := cw.Write([]string{strconv.Itoa(i + 1), formatFloat(v)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure5CSV writes the responsiveness run as iteration, workload,
// WIPS rows.
func WriteFigure5CSV(w io.Writer, res *Figure5Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"iteration", "workload", "wips"}); err != nil {
		return err
	}
	for i, v := range res.WIPS {
		if err := cw.Write([]string{
			strconv.Itoa(i + 1), res.Workload[i].String(), formatFloat(v),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure7CSV writes a reconfiguration run as iteration, layout, WIPS
// rows with the move marked.
func WriteFigure7CSV(w io.Writer, res *Figure7Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"iteration", "layout", "wips", "event"}); err != nil {
		return err
	}
	for i, v := range res.WIPS {
		event := ""
		if i == res.MovedAt {
			event = res.Decision.String()
		}
		if err := cw.Write([]string{
			strconv.Itoa(i + 1), res.Layouts[i], formatFloat(v), event,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure4CSV writes the cross-workload matrix.
func WriteFigure4CSV(w io.Writer, res *Figure4Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"config", "browsing", "shopping", "ordering"}); err != nil {
		return err
	}
	row := func(name string, vals [3]float64) error {
		return cw.Write([]string{name,
			formatFloat(vals[0]), formatFloat(vals[1]), formatFloat(vals[2])})
	}
	if err := row("default", res.Default); err != nil {
		return err
	}
	for _, from := range tpcw.Workloads() {
		if err := row("best-of-"+from.String(), res.Matrix[from]); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable4CSV writes the cluster tuning method comparison.
func WriteTable4CSV(w io.Writer, res *Table4Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"method", "wips", "stddev", "improvement", "iterations"}); err != nil {
		return err
	}
	for _, r := range res.Rows {
		if err := cw.Write([]string{
			r.Method, formatFloat(r.WIPS), formatFloat(r.StdDev),
			formatFloat(r.Improvement), strconv.Itoa(r.Iterations),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable4ReplicatedCSV writes the replicated cluster tuning method
// comparison: per-method mean ± σ and 95% CI across replicates, plus the
// per-replicate WIPS in long form (one trailing column per replicate).
func WriteTable4ReplicatedCSV(w io.Writer, res *Table4Replicated) error {
	cw := csv.NewWriter(w)
	header := []string{"method", "mean_wips", "stddev", "ci95", "improvement", "iterations"}
	for r := 0; r < res.Replicates; r++ {
		header = append(header, "wips_r"+strconv.Itoa(r))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range res.Rows {
		rec := []string{
			row.Method, formatFloat(row.Mean), formatFloat(row.StdDev),
			formatFloat(row.CI95), formatFloat(row.Improvement),
			strconv.Itoa(row.Iterations),
		}
		for _, v := range row.WIPS {
			rec = append(rec, formatFloat(v))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSweepCSV writes a parameter sweep in long form: one row per
// (knob-combination, replicate), one column per axis plus the replicate
// index and the measured mean WIPS.
func WriteSweepCSV(w io.Writer, res *SweepResult) error {
	cw := csv.NewWriter(w)
	header := append(append([]string{}, res.Axes...), "replicate", "wips")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range res.Rows {
		rec := append(append([]string{}, row.Values...),
			strconv.Itoa(row.Replicate), formatFloat(row.WIPS))
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// ExportName maps a result type to a stable experiment identifier used in
// file names.
func ExportName(result any) string {
	switch result.(type) {
	case *SingleWorkloadResult:
		return "sec3a"
	case *Figure4Result:
		return "figure4"
	case *Figure5Result:
		return "figure5"
	case *Table4Result:
		return "table4"
	case *Table4Replicated:
		return "table4"
	case *SweepResult:
		return "sweep"
	case *Figure7Result:
		return "figure7"
	case *AdaptiveResult:
		return "adaptive"
	default:
		return fmt.Sprintf("%T", result)
	}
}
