package core

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"webharmony/internal/stats"
	"webharmony/internal/tpcw"
)

// WriteJSON serializes any experiment result as indented JSON.
func WriteJSON(w io.Writer, result any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(result)
}

// WriteSeriesCSV writes an iteration-indexed series with the given value
// column name.
func WriteSeriesCSV(w io.Writer, name string, series []float64) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"iteration", name}); err != nil {
		return err
	}
	for i, v := range series {
		if err := cw.Write([]string{strconv.Itoa(i + 1), formatFloat(v)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure5CSV writes the responsiveness run as iteration, workload,
// WIPS rows.
func WriteFigure5CSV(w io.Writer, res *Figure5Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"iteration", "workload", "wips"}); err != nil {
		return err
	}
	for i, v := range res.WIPS {
		if err := cw.Write([]string{
			strconv.Itoa(i + 1), res.Workload[i].String(), formatFloat(v),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure7CSV writes a reconfiguration run as iteration, layout, WIPS
// rows with the move marked.
func WriteFigure7CSV(w io.Writer, res *Figure7Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"iteration", "layout", "wips", "event"}); err != nil {
		return err
	}
	for i, v := range res.WIPS {
		event := ""
		if i == res.MovedAt {
			event = res.Decision.String()
		}
		if err := cw.Write([]string{
			strconv.Itoa(i + 1), res.Layouts[i], formatFloat(v), event,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure4CSV writes the cross-workload matrix.
func WriteFigure4CSV(w io.Writer, res *Figure4Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"config", "browsing", "shopping", "ordering"}); err != nil {
		return err
	}
	row := func(name string, vals [3]float64) error {
		return cw.Write([]string{name,
			formatFloat(vals[0]), formatFloat(vals[1]), formatFloat(vals[2])})
	}
	if err := row("default", res.Default); err != nil {
		return err
	}
	for _, from := range tpcw.Workloads() {
		if err := row("best-of-"+from.String(), res.Matrix[from]); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable4CSV writes the cluster tuning method comparison.
func WriteTable4CSV(w io.Writer, res *Table4Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"method", "wips", "stddev", "improvement", "iterations"}); err != nil {
		return err
	}
	for _, r := range res.Rows {
		if err := cw.Write([]string{
			r.Method, formatFloat(r.WIPS), formatFloat(r.StdDev),
			formatFloat(r.Improvement), strconv.Itoa(r.Iterations),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable4ReplicatedCSV writes the replicated cluster tuning method
// comparison: per-method mean ± σ and 95% CI across replicates, plus the
// per-replicate WIPS in long form (one trailing column per replicate).
func WriteTable4ReplicatedCSV(w io.Writer, res *Table4Replicated) error {
	cw := csv.NewWriter(w)
	header := []string{"method", "mean_wips", "stddev", "ci95", "improvement", "iterations"}
	for r := 0; r < res.Replicates; r++ {
		header = append(header, "wips_r"+strconv.Itoa(r))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range res.Rows {
		rec := []string{
			row.Method, formatFloat(row.Mean), formatFloat(row.StdDev),
			formatFloat(row.CI95), formatFloat(row.Improvement),
			strconv.Itoa(row.Iterations),
		}
		for _, v := range row.WIPS {
			rec = append(rec, formatFloat(v))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSweepCSV writes a parameter sweep in long form: one row per
// (knob-combination, replicate), one column per axis plus the replicate
// index and the measured mean WIPS.
func WriteSweepCSV(w io.Writer, res *SweepResult) error {
	cw := csv.NewWriter(w)
	header := append(append([]string{}, res.Axes...), "replicate", "wips")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range res.Rows {
		rec := append(append([]string{}, row.Values...),
			strconv.Itoa(row.Replicate), formatFloat(row.WIPS))
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTunedSweepCSV writes a tuned sweep in long form: one row per
// (knob-combination, replicate) carrying the paired observation
// (wips_default, wips_tuned, gain, rel_gain) followed by the row's cell
// aggregates (mean ± σ ± Student-t 95% CI for both arms and the paired
// gain), repeated on every row of the cell so each row is self-contained
// for group-by-free plotting.
func WriteTunedSweepCSV(w io.Writer, res *TunedSweepResult) error {
	cw := csv.NewWriter(w)
	header := append(append([]string{}, res.Axes...),
		"replicate", "wips_default", "wips_tuned", "gain", "rel_gain",
		"mean_default", "sd_default", "ci95_default",
		"mean_tuned", "sd_tuned", "ci95_tuned",
		"mean_gain", "sd_gain", "ci95_gain",
		"mean_rel_gain", "ci95_rel_gain")
	if err := cw.Write(header); err != nil {
		return err
	}
	for k, row := range res.Rows {
		cell := res.Cells[k/res.Replicates]
		rec := append(append([]string{}, row.Values...),
			strconv.Itoa(row.Replicate),
			formatFloat(row.DefaultWIPS), formatFloat(row.TunedWIPS),
			formatFloat(row.Gain), formatFloat(row.RelGain),
			formatFloat(cell.Default.Mean), formatFloat(cell.Default.StdDev), formatFloat(cell.Default.CI95),
			formatFloat(cell.Tuned.Mean), formatFloat(cell.Tuned.StdDev), formatFloat(cell.Tuned.CI95),
			formatFloat(cell.Gain.Mean), formatFloat(cell.Gain.StdDev), formatFloat(cell.Gain.CI95),
			formatFloat(cell.RelGain.Mean), formatFloat(cell.RelGain.CI95))
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure4ReplicatedCSV writes the replicated cross-workload matrix
// in long form: one row per (configuration, workload) cell with its
// across-replicate mean ± σ ± 95% CI; native cells additionally carry the
// summarized improvement over the default configuration.
func WriteFigure4ReplicatedCSV(w io.Writer, res *Figure4Replicated) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"config", "workload",
		"mean_wips", "sd_wips", "ci95_wips",
		"mean_native_improvement", "ci95_native_improvement"}); err != nil {
		return err
	}
	row := func(name string, on tpcw.Workload, s, imp *stats.Summary) error {
		rec := []string{name, on.String(),
			formatFloat(s.Mean), formatFloat(s.StdDev), formatFloat(s.CI95), "", ""}
		if imp != nil {
			rec[5], rec[6] = formatFloat(imp.Mean), formatFloat(imp.CI95)
		}
		return cw.Write(rec)
	}
	for _, on := range tpcw.Workloads() {
		if err := row("default", on, &res.Default[on], nil); err != nil {
			return err
		}
	}
	for _, from := range tpcw.Workloads() {
		for _, on := range tpcw.Workloads() {
			var imp *stats.Summary
			if from == on {
				imp = &res.Improvement[on]
			}
			if err := row("best-of-"+from.String(), on, &res.Matrix[from][on], imp); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure7ReplicatedCSV writes a replicated reconfiguration run as
// one row per iteration with the across-replicate mean ± σ ± 95% CI.
func WriteFigure7ReplicatedCSV(w io.Writer, res *Figure7Replicated) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"iteration", "mean_wips", "sd_wips", "ci95_wips"}); err != nil {
		return err
	}
	for i, s := range res.WIPS {
		if err := cw.Write([]string{strconv.Itoa(i + 1),
			formatFloat(s.Mean), formatFloat(s.StdDev), formatFloat(s.CI95)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// ExportName maps a result type to a stable experiment identifier used in
// file names.
func ExportName(result any) string {
	switch result.(type) {
	case *SingleWorkloadResult:
		return "sec3a"
	case *Figure4Result:
		return "figure4"
	case *Figure4Replicated:
		return "figure4"
	case *Figure7Replicated:
		return "figure7"
	case *TunedSweepResult:
		return "tunedsweep"
	case *Figure5Result:
		return "figure5"
	case *Table4Result:
		return "table4"
	case *Table4Replicated:
		return "table4"
	case *SweepResult:
		return "sweep"
	case *Figure7Result:
		return "figure7"
	case *AdaptiveResult:
		return "adaptive"
	default:
		return fmt.Sprintf("%T", result)
	}
}
