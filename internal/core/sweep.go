package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"webharmony/internal/rng"
	"webharmony/internal/tpcw"
)

// SweepAxis is one knob of a parameter sweep: a name, one label per
// candidate value (used in reports and the long-form CSV) and an Apply
// function that installs the i-th value into a LabConfig. Constructors
// exist for the lab knobs the ROADMAP names (browsers, store scale, think
// time, cluster shape); custom axes just fill the struct.
type SweepAxis struct {
	Name   string
	Labels []string
	Apply  func(cfg *LabConfig, i int)
}

// BrowsersAxis sweeps the emulated-browser population.
func BrowsersAxis(vals ...int) SweepAxis {
	ax := SweepAxis{Name: "browsers"}
	for _, v := range vals {
		ax.Labels = append(ax.Labels, strconv.Itoa(v))
	}
	ax.Apply = func(cfg *LabConfig, i int) { cfg.Browsers = vals[i] }
	return ax
}

// ScaleAxis sweeps the TPC-W store scale (catalog size).
func ScaleAxis(vals ...int) SweepAxis {
	ax := SweepAxis{Name: "scale"}
	for _, v := range vals {
		ax.Labels = append(ax.Labels, strconv.Itoa(v))
	}
	ax.Apply = func(cfg *LabConfig, i int) { cfg.Scale = vals[i] }
	return ax
}

// ThinkAxis sweeps the mean browser think time in seconds.
func ThinkAxis(vals ...float64) SweepAxis {
	ax := SweepAxis{Name: "think"}
	for _, v := range vals {
		ax.Labels = append(ax.Labels, strconv.FormatFloat(v, 'g', -1, 64))
	}
	ax.Apply = func(cfg *LabConfig, i int) { cfg.ThinkMean = vals[i] }
	return ax
}

// ShapeAxis sweeps the cluster shape; each value is proxy/app/db node
// counts, labeled like the Layout strings ("2/2/2").
func ShapeAxis(shapes ...[3]int) SweepAxis {
	ax := SweepAxis{Name: "shape"}
	for _, s := range shapes {
		ax.Labels = append(ax.Labels, fmt.Sprintf("%d/%d/%d", s[0], s[1], s[2]))
	}
	ax.Apply = func(cfg *LabConfig, i int) {
		cfg.ProxyNodes, cfg.AppNodes, cfg.DBNodes = shapes[i][0], shapes[i][1], shapes[i][2]
	}
	return ax
}

// SweepRow is one observation of a sweep: a knob combination (one label
// per axis, in axis order), a replicate index and the measured mean WIPS.
type SweepRow struct {
	Values    []string
	Replicate int
	WIPS      float64
}

// SweepResult is the long-form output of RunSweep: one row per
// (knob-combination, replicate), combinations in row-major axis order
// (last axis fastest) with replicates innermost.
type SweepResult struct {
	Axes       []string
	Workload   tpcw.Workload
	Replicates int
	Iters      int
	Rows       []SweepRow
}

// RunSweep measures the default configuration's WIPS over the full grid
// spanned by axes, with R replicates per knob combination and iters
// measured iterations per replicate, mapping the response surface beyond
// the paper's single operating point. All points fan out over the
// cfg.Workers pool; each builds its own lab, so the result is bit-for-bit
// identical at any worker count.
//
// Replicate r of every combination runs under seed
// rng.TaskSeed(cfg.Seed, r) — the seed depends only on the replicate
// index, not on the combination or the grid, so (a) combinations are
// compared under common random numbers (paired samples, a standard
// simulation variance-reduction technique) and (b) a combination's rows
// are identical no matter which other combinations the grid contains.
func RunSweep(cfg LabConfig, w tpcw.Workload, axes []SweepAxis, R, iters int) *SweepResult {
	if len(axes) == 0 || R < 1 || iters < 1 {
		panic("core: RunSweep needs at least one axis, R >= 1 and iters >= 1")
	}
	combos := 1
	for _, ax := range axes {
		if len(ax.Labels) == 0 {
			panic("core: RunSweep axis " + ax.Name + " has no values")
		}
		combos *= len(ax.Labels)
	}

	res := &SweepResult{Workload: w, Replicates: R, Iters: iters}
	for _, ax := range axes {
		res.Axes = append(res.Axes, ax.Name)
	}
	res.Rows = make([]SweepRow, combos*R)
	ForEach(cfg.Workers, combos*R, func(k int) {
		combo, r := k/R, k%R
		ccfg := cfg
		ccfg.Seed = rng.TaskSeed(cfg.Seed, uint64(r))
		ccfg.TelemetryReplicate = r
		values := make([]string, len(axes))
		// Decode the combination index digit by digit, last axis fastest.
		c := combo
		for j := len(axes) - 1; j >= 0; j-- {
			i := c % len(axes[j].Labels)
			c /= len(axes[j].Labels)
			axes[j].Apply(&ccfg, i)
			values[j] = axes[j].Labels[i]
		}
		ccfg = telemetrySub(ccfg, comboName(axes, values))
		lab := NewLab(ccfg, w)
		series := lab.MeasureConfig(DefaultConfigs(), iters)
		sum := 0.0
		for _, v := range series {
			sum += v
		}
		res.Rows[k] = SweepRow{Values: values, Replicate: r, WIPS: sum / float64(iters)}
	})
	return res
}

// comboName renders one grid point as a telemetry unit segment,
// "axis=label" pairs joined with ";" — commas would break the metrics CSV,
// whose unit column is unquoted.
func comboName(axes []SweepAxis, values []string) string {
	parts := make([]string, len(axes))
	for j, ax := range axes {
		parts[j] = ax.Name + "=" + values[j]
	}
	return strings.Join(parts, ";")
}

// ParseSweepSpec parses a compact sweep-grid description into axes. The
// grammar is semicolon-separated axes, each "name=v1,v2,...":
//
//	browsers=140,250;think=0.3,0.6;shape=1/1/1,2/2/2
//
// Supported axis names are browsers, scale, think and shape (shape values
// are proxy/app/db counts). It is the format of webtune's -sweep flag.
func ParseSweepSpec(spec string) ([]SweepAxis, error) {
	var axes []SweepAxis
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, list, ok := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" || strings.TrimSpace(list) == "" {
			return nil, fmt.Errorf("sweep: bad axis %q (want name=v1,v2,...)", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("sweep: duplicate axis %q", name)
		}
		seen[name] = true
		vals := strings.Split(list, ",")
		switch name {
		case "browsers", "scale":
			var ints []int
			for _, v := range vals {
				n, err := strconv.Atoi(strings.TrimSpace(v))
				if err != nil || n <= 0 {
					return nil, fmt.Errorf("sweep: bad %s value %q", name, v)
				}
				ints = append(ints, n)
			}
			if name == "browsers" {
				axes = append(axes, BrowsersAxis(ints...))
			} else {
				axes = append(axes, ScaleAxis(ints...))
			}
		case "think":
			var fs []float64
			for _, v := range vals {
				x, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
				// Reject non-finite values explicitly: NaN compares false
				// against everything (so it would slip past x <= 0) and a
				// +Inf think time would wedge the simulation.
				if err != nil || math.IsNaN(x) || math.IsInf(x, 0) || x <= 0 {
					return nil, fmt.Errorf("sweep: bad think value %q", v)
				}
				fs = append(fs, x)
			}
			axes = append(axes, ThinkAxis(fs...))
		case "shape":
			var shapes [][3]int
			for _, v := range vals {
				fields := strings.Split(strings.TrimSpace(v), "/")
				if len(fields) != 3 {
					return nil, fmt.Errorf("sweep: bad shape %q (want proxy/app/db)", v)
				}
				var s [3]int
				for i, f := range fields {
					n, err := strconv.Atoi(f)
					if err != nil || n < 1 {
						return nil, fmt.Errorf("sweep: bad shape %q (want proxy/app/db)", v)
					}
					s[i] = n
				}
				shapes = append(shapes, s)
			}
			axes = append(axes, ShapeAxis(shapes...))
		default:
			return nil, fmt.Errorf("sweep: unknown axis %q (have browsers, scale, think, shape)", name)
		}
	}
	if len(axes) == 0 {
		return nil, fmt.Errorf("sweep: empty spec")
	}
	return axes, nil
}
