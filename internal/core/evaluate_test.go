package core

import (
	"math"
	"reflect"
	"testing"

	"webharmony/internal/evalcache"
	"webharmony/internal/harmony"
	"webharmony/internal/tpcw"
)

// TestEvalConfigPure checks the hermetic contract directly: the same
// assignment measured from two different labs — one of which has run
// other evaluations in between — yields bit-identical measurements.
func TestEvalConfigPure(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	cfg := TinyLab()
	nodeCfgs := NewLab(cfg, tpcw.Shopping).tierNodeConfigs(DefaultConfigs())

	a := NewLab(cfg, tpcw.Shopping)
	m1 := a.EvalConfig(tpcw.Shopping, nodeCfgs, "first")

	b := NewLab(cfg, tpcw.Shopping)
	b.EvalConfig(tpcw.Ordering, nodeCfgs, "noise") // unrelated evaluation in between
	m2 := b.EvalConfig(tpcw.Shopping, nodeCfgs, "second")

	if !reflect.DeepEqual(m1, m2) {
		t.Fatalf("evaluation depends on lab history:\n%+v\n%+v", m1, m2)
	}
}

// TestMeasureConfigWindowsIdentical pins the DESIGN.md §10 deviation:
// repeated windows of one configuration are exact repeats, so the series
// is constant within a run (variance lives across replicates).
func TestMeasureConfigWindowsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	lab := NewLab(TinyLab(), tpcw.Shopping)
	series := lab.MeasureConfig(DefaultConfigs(), 3)
	if len(series) != 3 {
		t.Fatalf("len = %d, want 3", len(series))
	}
	for i, v := range series {
		if v != series[0] {
			t.Fatalf("window %d = %v, differs from window 0 = %v", i, v, series[0])
		}
	}
}

// TestTuneWorkloadCacheTransparent checks the memo cache's core promise:
// the full §III.A experiment produces identical results with and without
// a cache attached, and the cache actually absorbs repeat evaluations.
func TestTuneWorkloadCacheTransparent(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	cfg := TinyLab()
	const iters, baseIters = 12, 3
	opts := harmony.Options{Seed: 1}

	plain := TuneWorkload(cfg, tpcw.Shopping, iters, baseIters, opts)

	cached := cfg
	cached.EvalCache = evalcache.New()
	memo := TuneWorkload(cached, tpcw.Shopping, iters, baseIters, opts)

	if !reflect.DeepEqual(plain, memo) {
		t.Fatalf("cache changed the experiment:\nplain %+v\nmemo  %+v", plain, memo)
	}
	s := cached.EvalCache.Stats()
	if s.Lookups != iters+baseIters {
		t.Fatalf("lookups = %d, want %d (every evaluation must consult the cache)", s.Lookups, iters+baseIters)
	}
	if s.Hits == 0 {
		t.Fatal("no hits: repeated baseline windows alone must hit")
	}
	if s.Misses+s.Hits != s.Lookups || s.Entries != s.Misses {
		t.Fatalf("inconsistent stats: %+v", s)
	}
}

// TestRunTable4SmallIters is the regression test for the baseline window
// arithmetic: iters/4 rounds to zero below four iterations, which used
// to produce an empty baseline series and NaN means in every improvement
// column. The clamp guarantees at least one window.
func TestRunTable4SmallIters(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	res := RunTable4(TinyLab(), 2, harmony.Options{Seed: 1})
	base := res.Rows[0]
	if base.Method != "none" {
		t.Fatalf("row 0 method = %q, want none", base.Method)
	}
	if math.IsNaN(base.WIPS) || base.WIPS <= 0 {
		t.Fatalf("baseline WIPS = %v with iters=2, want a positive measurement", base.WIPS)
	}
	for _, row := range res.Rows[1:] {
		if math.IsNaN(row.Improvement) {
			t.Fatalf("method %s improvement is NaN", row.Method)
		}
	}
}

// TestFigure5SharesEvalCache checks the speculative engine consults the
// same memo table as the sequential runners: a second identical run on a
// shared cache performs no new simulations.
func TestFigure5SharesEvalCache(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	cfg := TinyLab()
	cache := evalcache.New()
	cfg.EvalCache = cache
	seq := []tpcw.Workload{tpcw.Browsing, tpcw.Ordering}
	opts := harmony.Options{Seed: 1}

	first := RunFigure5(cfg, seq, 6, 2, opts)
	after := cache.Stats()
	if after.Misses == 0 {
		t.Fatal("figure5 bypassed the cache entirely")
	}
	second := RunFigure5(cfg, seq, 6, 2, opts)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("warm rerun diverged:\n%+v\n%+v", first, second)
	}
	if s := cache.Stats(); s.Misses != after.Misses {
		t.Fatalf("warm rerun simulated %d new evaluations, want 0", s.Misses-after.Misses)
	}
}
