package core

import (
	"webharmony/internal/harmony"
	"webharmony/internal/stats"
	"webharmony/internal/tpcw"
)

// Figure4Replicated is the cross-workload configuration matrix of
// Figure 4 with every cell summarized across R independent replicates.
type Figure4Replicated struct {
	Replicates int
	// Matrix[i][j] summarizes, across replicates, the WIPS of workload j
	// running under the configuration tuned for workload i.
	Matrix [3][3]stats.Summary
	// Default[j] summarizes workload j's default-configuration WIPS.
	Default [3]stats.Summary
	// Improvement[j] summarizes the per-replicate native improvement
	// (Matrix[j][j] vs Default[j], the table under Figure 4).
	Improvement [3]stats.Summary
}

// RunFigure4Replicated reruns the Figure 4 cross-workload experiment R
// times, each replicate on labs and tuners seeded from ReplicateSeed, and
// reports mean ± σ and a Student-t 95% confidence interval per matrix
// cell across the replicates. The R replicates (each itself a parallel
// Figure 4 run) fan out over cfg.Workers; output is bit-for-bit identical
// at any worker count.
func RunFigure4Replicated(cfg LabConfig, iters, evalIters, R int, opts harmony.Options) *Figure4Replicated {
	if R < 1 {
		panic("core: RunFigure4Replicated needs R >= 1")
	}
	runs := Replicate(cfg, R, func(rcfg LabConfig, r int) *Figure4Result {
		ropts := opts
		ropts.Seed = ReplicateSeed(opts.Seed, r)
		return RunFigure4(rcfg, iters, evalIters, ropts)
	})

	res := &Figure4Replicated{Replicates: R}
	vals := make([]float64, R)
	for _, from := range tpcw.Workloads() {
		for _, on := range tpcw.Workloads() {
			for r, run := range runs {
				vals[r] = run.Matrix[from][on]
			}
			res.Matrix[from][on] = stats.Summarize(vals)
		}
	}
	for _, w := range tpcw.Workloads() {
		for r, run := range runs {
			vals[r] = run.Default[w]
		}
		res.Default[w] = stats.Summarize(vals)
		for r, run := range runs {
			vals[r] = run.Improvement[w]
		}
		res.Improvement[w] = stats.Summarize(vals)
	}
	return res
}

// Figure7Replicated is a reconfiguration experiment (Figure 7) with R
// independent replicates: the per-iteration WIPS summarized across
// replicates plus the before/after comparison over the replicates whose
// reconfiguration check fired.
type Figure7Replicated struct {
	Replicates int
	Options    Figure7Options
	// WIPS[i] summarizes iteration i's WIPS across replicates.
	WIPS []stats.Summary
	// Decisions[r] is replicate r's reconfiguration decision, or "" when
	// that replicate never moved a node; Moved counts the non-empty ones.
	Decisions []string
	Moved     int
	// Before, After and Improvement summarize the pre-/post-move windows
	// across the replicates that moved (all zeros when none did).
	Before      stats.Summary
	After       stats.Summary
	Improvement stats.Summary
}

// RunFigure7Replicated reruns a Figure 7 reconfiguration experiment R
// times on independently seeded labs (replicate r under seed
// ReplicateSeed(cfg.Seed, r)) and reports mean ± σ and a Student-t 95%
// confidence interval per iteration, plus the before/after jump across
// the replicates that reconfigured. The replicates fan out over
// cfg.Workers; output is bit-for-bit identical at any worker count.
func RunFigure7Replicated(cfg LabConfig, fo Figure7Options, R int) *Figure7Replicated {
	if R < 1 {
		panic("core: RunFigure7Replicated needs R >= 1")
	}
	runs := Replicate(cfg, R, func(rcfg LabConfig, r int) *Figure7Result {
		return RunFigure7(rcfg, fo, nil)
	})

	res := &Figure7Replicated{Replicates: R, Options: fo}
	res.WIPS = make([]stats.Summary, fo.Total)
	vals := make([]float64, R)
	for i := 0; i < fo.Total; i++ {
		for r, run := range runs {
			vals[r] = run.WIPS[i]
		}
		res.WIPS[i] = stats.Summarize(vals)
	}
	var before, after, improvement []float64
	for _, run := range runs {
		d := ""
		if run.Moved {
			d = run.Decision.String()
			before = append(before, run.Before)
			after = append(after, run.After)
			improvement = append(improvement, run.Improvement)
		}
		res.Decisions = append(res.Decisions, d)
	}
	res.Moved = len(before)
	res.Before = stats.Summarize(before)
	res.After = stats.Summarize(after)
	res.Improvement = stats.Summarize(improvement)
	return res
}
