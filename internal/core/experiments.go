package core

import (
	"fmt"

	"webharmony/internal/cluster"
	"webharmony/internal/harmony"
	"webharmony/internal/monitor"
	"webharmony/internal/param"
	"webharmony/internal/reconfig"
	"webharmony/internal/stats"
	"webharmony/internal/telemetry"
	"webharmony/internal/tpcw"
	"webharmony/internal/websim"
)

// SingleWorkloadResult is the §III.A experiment: tune one workload on the
// 4-machine setup and compare against the default configuration.
type SingleWorkloadResult struct {
	Workload tpcw.Workload
	Baseline []float64 // WIPS of repeated default-configuration iterations
	Tuning   []float64 // WIPS per tuning iteration

	BestConfigs map[cluster.Tier]param.Config
	BestWIPS    float64

	// Second-half statistics, as reported in §III.A.
	AvgImprovement float64 // mean(second half) / mean(baseline) − 1
	FracBetter     float64 // fraction of second-half iterations above baseline
}

// TuneWorkload runs the §III.A single-workload tuning experiment: iters
// tuning iterations with a single Harmony server over all parameters of
// the 1/1/1 cluster, plus baselineIters unturned iterations for reference.
// Both the baseline windows and the tuning iterations run hermetically
// (DESIGN.md §10): every evaluation is a fresh per-evaluation lab keyed by
// its configuration, so re-proposed lattice points are exact repeats and
// memoize under cfg.EvalCache.
func TuneWorkload(cfg LabConfig, w tpcw.Workload, iters, baselineIters int, opts harmony.Options) *SingleWorkloadResult {
	res := &SingleWorkloadResult{Workload: w}

	// Baseline: the default configuration, measured repeatedly.
	base := NewLab(telemetrySub(cfg, "baseline"), w)
	res.Baseline = base.MeasureConfig(DefaultConfigs(), baselineIters)

	// Tuning run on a fresh, identically-seeded lab.
	lab := NewLab(telemetrySub(cfg, "tuning"), w)
	h := newHermeticRun(lab, w)
	st := harmony.NewStrategy(harmony.StrategyDefault, lab, 0, h.options(opts))
	for i := 0; i < iters; i++ {
		h.Step(st)
	}
	res.Tuning = st.Perf()
	res.BestWIPS, _ = st.Best()
	res.BestConfigs = tierConfigs(lab, st.BestNodeConfigs())

	baseMean := stats.MeanOf(res.Baseline)
	half := res.Tuning[len(res.Tuning)/2:]
	res.AvgImprovement = stats.Improvement(baseMean, stats.MeanOf(half))
	res.FracBetter = stats.FractionAbove(half, baseMean)
	return res
}

// tierConfigs reduces a node→config map to one configuration per tier
// (nodes of a tier share the configuration under the strategies used
// here; the first node of the tier is taken as representative).
func tierConfigs(lab *Lab, nodeCfgs map[int]param.Config) map[cluster.Tier]param.Config {
	out := make(map[cluster.Tier]param.Config)
	for _, t := range cluster.Tiers() {
		nodes := lab.Sys.Cluster.TierNodes(t)
		if len(nodes) == 0 {
			continue
		}
		if cfg, ok := nodeCfgs[nodes[0].ID()]; ok {
			out[t] = cfg
		}
	}
	return out
}

// Figure4Result is the cross-workload configuration matrix of Figure 4.
type Figure4Result struct {
	// Matrix[i][j] is the WIPS of workload j running under the best
	// configuration tuned for workload i (Table 1 order).
	Matrix [3][3]float64
	// Default[j] is workload j's WIPS under the default configuration.
	Default [3]float64
	// Improvement[j] is Matrix[j][j] relative to Default[j] (the table
	// under Figure 4: 15% / 16% / 5% in the paper).
	Improvement [3]float64
	// Best holds the tuned per-tier configurations (Table 3).
	Best map[tpcw.Workload]map[cluster.Tier]param.Config
	// Runs keeps the underlying tuning runs for further analysis.
	Runs map[tpcw.Workload]*SingleWorkloadResult
}

// RunFigure4 tunes each workload for iters iterations, then applies every
// best configuration to every workload, reproducing Figure 4 and Table 3.
// evalIters iterations are averaged per matrix cell.
//
// The three tuning runs are independent (each builds its own lab from
// cfg.Seed) and fan out over cfg.Workers, as do the nine evaluation
// matrix cells once every best configuration is known. The output is
// bit-for-bit identical at any worker count.
func RunFigure4(cfg LabConfig, iters, evalIters int, opts harmony.Options) *Figure4Result {
	res := &Figure4Result{
		Best: make(map[tpcw.Workload]map[cluster.Tier]param.Config),
		Runs: make(map[tpcw.Workload]*SingleWorkloadResult),
	}
	ws := tpcw.Workloads()

	// Phase 1: one tuning run per workload, each writing its own slot.
	runs := make([]*SingleWorkloadResult, len(ws))
	ForEach(cfg.Workers, len(ws), func(i int) {
		runs[i] = TuneWorkload(telemetrySub(cfg, "tune:"+ws[i].String()), ws[i], iters, evalIters, opts)
	})
	for i, w := range ws {
		res.Runs[w] = runs[i]
		res.Best[w] = runs[i].BestConfigs
		res.Default[w] = stats.MeanOf(runs[i].Baseline)
	}

	// Phase 2: the evaluation matrix, one cell per (from, on) pair. The
	// best-configuration maps are read-only from here on.
	ForEach(cfg.Workers, len(ws)*len(ws), func(k int) {
		from, on := ws[k/len(ws)], ws[k%len(ws)]
		lab := NewLab(telemetrySub(cfg, fmt.Sprintf("eval:%s-on-%s", from, on)), on)
		series := lab.MeasureConfig(res.Best[from], evalIters)
		res.Matrix[from][on] = stats.MeanOf(series)
	})
	for _, w := range ws {
		res.Improvement[w] = stats.Improvement(res.Default[w], res.Matrix[w][w])
	}
	return res
}

// Figure5Result is the workload-responsiveness experiment of Figure 5.
type Figure5Result struct {
	WIPS     []float64       // per iteration
	Workload []tpcw.Workload // active workload per iteration
	Switches []int           // iteration indices (0-based) where the workload changed
	// Recovery holds, per switch, the iterations needed to re-reach the
	// phase's 90% steady band; RecoveryNone when it never did.
	Recovery []int
	PhaseLen int
	Restarts int // tuning-session restarts triggered by shift detection
}

// RunFigure5 runs tuning under a workload that changes every phaseLen
// iterations, following seq (cycled). Shift detection should be enabled in
// opts for the paper's responsiveness behaviour.
//
// Candidate evaluation fans out over cfg.Workers via speculative
// lookahead (see runFigure5): the tuners' tell-independent proposals are
// measured concurrently in forked labs and committed in proposal order,
// with speculation past any shift-detection restart discarded. The
// output — WIPS series, Recovery, Restarts, telemetry traces/metrics and
// simprofile stacks — is bit-for-bit identical at every worker count.
func RunFigure5(cfg LabConfig, seq []tpcw.Workload, phaseLen, phases int, opts harmony.Options) *Figure5Result {
	res, _ := runFigure5(cfg, seq, phaseLen, phases, figure5Lookahead, opts)
	return res
}

// Table4Row is one row of Table 4 (cluster tuning methods).
type Table4Row struct {
	Method      string
	WIPS        float64 // best configuration's WIPS after the run
	StdDev      float64 // of the second half of iterations
	Improvement float64 // vs the no-tuning baseline
	// Iterations is the initial-exploration length of the method's widest
	// tuning server (the paper's n+1 scalability cost): how long before
	// tuning can take effect.
	Iterations int
}

// Table4Result is the Table 4 comparison of cluster tuning methods.
type Table4Result struct {
	Rows []Table4Row
}

// RunTable4 compares cluster tuning methods on a 2/2/2 cluster with two
// work lines under the shopping mix: no tuning, the default method (one
// server, all parameters), parameter duplication, parameter partitioning,
// and the hybrid (§III.B future work).
//
// The baseline and the four method runs are independent replications,
// each on its own identically-seeded lab, and fan out over cfg.Workers;
// the improvement column is filled in after the join. Output is
// bit-for-bit identical at any worker count.
func RunTable4(cfg LabConfig, iters int, opts harmony.Options) *Table4Result {
	cfg.ProxyNodes, cfg.AppNodes, cfg.DBNodes = 2, 2, 2
	cfg.WorkLines = 2

	kinds := []harmony.StrategyKind{
		harmony.StrategyDefault,
		harmony.StrategyDuplication,
		harmony.StrategyPartitioning,
		harmony.StrategyHybrid,
	}

	rows := make([]Table4Row, 1+len(kinds))
	ForEach(cfg.Workers, len(rows), func(i int) {
		if i == 0 {
			// Baseline: no tuning. At least one window must run even for
			// iters < 4 — iters/4 == 0 would yield an empty series whose
			// mean (and every improvement column derived from it) is NaN.
			base := NewLab(telemetrySub(cfg, "baseline"), tpcw.Shopping)
			baseIters := iters / 4
			if baseIters < 1 {
				baseIters = 1
			}
			baseSeries := base.MeasureConfig(DefaultConfigs(), baseIters)
			rows[0] = Table4Row{
				Method: "none",
				WIPS:   stats.MeanOf(baseSeries),
				StdDev: stats.StdDevOf(baseSeries[len(baseSeries)/2:]),
			}
			return
		}
		kind := kinds[i-1]
		lab := NewLab(telemetrySub(cfg, "method:"+kind.String()), tpcw.Shopping)
		h := newHermeticRun(lab, tpcw.Shopping)
		st := harmony.NewStrategy(kind, lab, cfg.WorkLines, h.options(opts))
		for k := 0; k < iters; k++ {
			h.Step(st)
		}
		best, _ := st.Best()
		perf := st.Perf()
		rows[i] = Table4Row{
			Method:     kind.String(),
			WIPS:       best,
			StdDev:     stats.StdDevOf(perf[len(perf)/2:]),
			Iterations: st.ExplorationIterations(),
		}
	})
	baseMean := rows[0].WIPS
	for i := 1; i < len(rows); i++ {
		rows[i].Improvement = stats.Improvement(baseMean, rows[i].WIPS)
	}
	return &Table4Result{Rows: rows}
}

// Figure7Result is one automatic-reconfiguration experiment (Figure 7).
type Figure7Result struct {
	WIPS    []float64 // per iteration
	Layouts []string  // cluster layout per iteration

	Decision    reconfig.Decision
	Moved       bool
	MovedAt     int // iteration index (0-based) after which the move ran
	Before      float64
	After       float64
	Improvement float64

	// Timeline holds periodic per-node utilization samples over the whole
	// run — the data behind the paper's utilization narrative ("the
	// application servers are highly loaded... some proxy servers are
	// idling"). Not serialized to JSON; use its WriteCSV.
	Timeline *monitor.Timeline `json:"-"`
}

// Figure7Options selects the variant of the experiment.
type Figure7Options struct {
	ProxyNodes, AppNodes, DBNodes int
	Start                         tpcw.Workload
	SwitchTo                      tpcw.Workload // Start again for "no switch"
	SwitchAt                      int           // iteration of the workload change
	CheckAt                       int           // iteration of the reconfiguration check
	Total                         int
}

// Figure7a returns the §IV variant (a): 4 proxy + 2 app nodes, browsing
// changing to ordering, with the reconfiguration check after the change.
func Figure7a() Figure7Options {
	return Figure7Options{
		ProxyNodes: 4, AppNodes: 2, DBNodes: 1,
		Start: tpcw.Browsing, SwitchTo: tpcw.Ordering,
		SwitchAt: 9, CheckAt: 12, Total: 24,
	}
}

// Figure7b returns variant (b): 2 proxy + 4 app nodes under a browsing
// workload throughout.
func Figure7b() Figure7Options {
	return Figure7Options{
		ProxyNodes: 2, AppNodes: 4, DBNodes: 1,
		Start: tpcw.Browsing, SwitchTo: tpcw.Browsing,
		SwitchAt: -1, CheckAt: 12, Total: 24,
	}
}

// GenerousConfigs returns per-tier configurations with ample thread and
// connection capacity (memory-safe), approximating a system whose
// parameters Harmony has already tuned. Figure 7 isolates the remaining
// load-imbalance problem, which no parameter setting can fix.
func GenerousConfigs() map[cluster.Tier]param.Config {
	out := DefaultConfigs()
	asp := websim.SpaceFor(cluster.TierApp)
	a := out[cluster.TierApp]
	set := func(sp *param.Space, c param.Config, name string, v int64) {
		c[sp.IndexOf(name)] = v
	}
	set(asp, a, "minProcessors", 64)
	set(asp, a, "maxProcessors", 256)
	set(asp, a, "acceptCount", 1024)
	set(asp, a, "AJPminProcessors", 64)
	set(asp, a, "AJPmaxProcessors", 256)
	set(asp, a, "AJPacceptCount", 1024)
	set(asp, a, "bufferSize", 8192)
	dsp := websim.SpaceFor(cluster.TierDB)
	d := out[cluster.TierDB]
	set(dsp, d, "max_connections", 1001)
	set(dsp, d, "thread_con", 64)
	set(dsp, d, "join_buffer_size", 262144)
	set(dsp, d, "table_cache", 905)
	set(dsp, d, "binlog_cache_size", 262144)
	set(dsp, d, "delayed_queue_size", 4000)
	psp := websim.SpaceFor(cluster.TierProxy)
	p := out[cluster.TierProxy]
	set(psp, p, "cache_mem", 64)
	set(psp, p, "maximum_object_size_in_memory", 128)
	return out
}

// RunFigure7 runs a reconfiguration experiment. Tier configurations are
// held fixed at tierCfgs (nil = GenerousConfigs, approximating an already
// parameter-tuned system) so the measured jump is attributable to the
// topology change, as in the paper's figures.
func RunFigure7(cfg LabConfig, fo Figure7Options, tierCfgs map[cluster.Tier]param.Config) *Figure7Result {
	cfg.ProxyNodes, cfg.AppNodes, cfg.DBNodes = fo.ProxyNodes, fo.AppNodes, fo.DBNodes
	lab := NewLab(cfg, fo.Start)
	if tierCfgs == nil {
		tierCfgs = GenerousConfigs()
	}
	for t, c := range tierCfgs {
		lab.Sys.SetTierConfig(t, c)
	}
	lab.Sys.Restart()

	res := &Figure7Result{MovedAt: -1}
	res.Timeline = monitor.NewTimeline(lab.Sys.Eng, lab.Sys.Cluster,
		(cfg.Warm+cfg.Measure+cfg.Cool)/2)
	res.Timeline.Start()
	costs := labCosts(lab)
	for i := 0; i < fo.Total; i++ {
		if i == fo.SwitchAt && fo.SwitchTo != fo.Start {
			lab.Driver.SetWorkload(fo.SwitchTo)
		}
		m := lab.MeasureIteration(false)
		res.WIPS = append(res.WIPS, m.WIPS)
		res.Layouts = append(res.Layouts, lab.Sys.Cluster.Layout())

		if i == fo.CheckAt && !res.Moved {
			readings := lab.LastReadings()
			d, ok := reconfig.Decide(readings, monitor.DefaultThresholds(), lab.Sys.Cluster,
				costs, monitor.DefaultUrgencyOrder())
			if ok {
				res.Decision = d
				res.Moved = true
				res.MovedAt = i
				lab.Sys.MoveNode(d.Node, d.To, tierCfgs[d.To])
				lab.RecordEvent(telemetry.Event{
					Session: "reconfig", Kind: "move", Move: d.String(), Iter: i,
				})
			}
		}
	}
	res.Timeline.Stop()
	if res.Moved {
		// Compare the window just before the move (after any workload
		// switch settled) against the post-move steady state.
		preStart := fo.SwitchAt + 1
		if fo.SwitchAt < 0 {
			preStart = fo.CheckAt / 2
		}
		pre := res.WIPS[preStart : res.MovedAt+1]
		post := res.WIPS[res.MovedAt+2:]
		res.Before = stats.MeanOf(pre)
		res.After = stats.MeanOf(post)
		res.Improvement = stats.Improvement(res.Before, res.After)
	}
	return res
}

// RunFigure7Variants runs several reconfiguration experiments, fanned out
// over cfg.Workers; element i of the result corresponds to fos[i]. Each
// variant builds its own lab, so the results are identical to calling
// RunFigure7 once per variant sequentially. A nil tierCfgs gives every
// variant its own GenerousConfigs.
func RunFigure7Variants(cfg LabConfig, tierCfgs map[cluster.Tier]param.Config, fos ...Figure7Options) []*Figure7Result {
	out := make([]*Figure7Result, len(fos))
	ForEach(cfg.Workers, len(fos), func(i int) {
		ccfg := cfg
		if len(fos) > 1 {
			// Distinguish variant recorders; a single variant keeps the
			// caller's unit name unchanged.
			ccfg = telemetrySub(cfg, fmt.Sprintf("v%d", i))
		}
		out[i] = RunFigure7(ccfg, fos[i], tierCfgs)
	})
	return out
}

// labCosts builds the reconfiguration cost terms from live queue state.
func labCosts(lab *Lab) reconfig.Costs {
	c := reconfig.DefaultCosts()
	c.Jobs = func(node int) int {
		n := lab.Sys.Cluster.Node(node)
		if n == nil {
			return 0
		}
		return n.CPU().Busy() + n.CPU().QueueLen() + n.Disk().QueueLen() + n.NIC().QueueLen()
	}
	return c
}

// String helpers used by the CLI and the public API.

// FormatLayoutSeries renders iteration → layout transitions compactly.
func FormatLayoutSeries(layouts []string) string {
	if len(layouts) == 0 {
		return ""
	}
	out := layouts[0]
	for i := 1; i < len(layouts); i++ {
		if layouts[i] != layouts[i-1] {
			out += fmt.Sprintf(" →(iter %d) %s", i, layouts[i])
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
