package core

import (
	"fmt"

	"webharmony/internal/harmony"
	"webharmony/internal/param"
	"webharmony/internal/simplex"
	"webharmony/internal/stats"
	"webharmony/internal/telemetry"
	"webharmony/internal/tpcw"
	"webharmony/internal/websim"
)

// figure5Lookahead bounds how many candidate iterations the speculative
// Figure 5 runner evaluates ahead of the authoritative search. It is a
// constant, NOT a function of LabConfig.Workers: the set of evaluated
// (and discarded) candidates — and with it every telemetry unit name and
// rng stream — must be identical at every worker count for the output
// byte-equality contract to hold. 16 comfortably covers the deepest
// tell-independent horizon the tuners expose (a full initial-simplex
// evaluation of the widest tier space, 10 vertices for the db tier).
const figure5Lookahead = 16

// runFigure5 is the speculative evaluation engine behind RunFigure5.
//
// The sequential formulation — step the strategy, measure, report — hides
// parallelism because each proposal may depend on the previous report.
// But the tuners are ask/tell state machines whose moves are often
// tell-independent (Nelder-Mead evaluates dim+1 initial vertices after
// every restart before any cost can steer it), so the runner instead:
//
//  1. peeks a joint batch of up to lookahead upcoming proposals from the
//     strategy (Strategy.Lookahead — non-committing),
//  2. evaluates every candidate in its own forked lab via ForEach, with
//     per-candidate rng streams keyed by the global iteration index, and
//  3. commits the measurements into the authoritative strategy in
//     proposal order (Strategy.CommitStep), re-checking the lookahead
//     before each commit and discarding the rest of the batch the moment
//     a commit changes Strategy.Epoch — a shift-detection restart
//     re-anchored the search, so the remaining peeked proposals are
//     stale — then re-peeking from the restarted state.
//
// Because a candidate's measurement is a pure function of (configuration,
// workload, global step index, staged proposals) and never of engine
// history, the committed sequence is identical whether the batch runs on
// one worker or eight — and identical to lookahead 1, which is the
// sequential formulation. Speculation never crosses a phase boundary:
// those candidates would measure the wrong workload.
func runFigure5(cfg LabConfig, seq []tpcw.Workload, phaseLen, phases, lookahead int, opts harmony.Options) (*Figure5Result, *harmony.Strategy) {
	if len(seq) == 0 || phaseLen <= 0 || phases <= 0 {
		panic("core: bad Figure 5 arguments")
	}
	if lookahead < 1 {
		lookahead = 1
	}
	auth := NewLab(cfg, seq[0])
	// The authoritative lab's engine never runs — every measurement
	// happens in a fork — so trace timestamps come from a virtual clock
	// advancing one full iteration window per committed step, the cadence
	// the engine clock of a sequential run follows.
	window := cfg.Warm + cfg.Measure + cfg.Cool
	vt := 0.0
	if opts.Observer == nil && opts.Observe == nil {
		opts.Observe = specObserve(auth.Recorder(), &vt)
	}
	st := harmony.NewStrategy(harmony.StrategyDuplication, auth, 0, opts)
	res := &Figure5Result{PhaseLen: phaseLen}

	step := 0 // global iteration index; the per-candidate seed key
	for p := 0; p < phases; p++ {
		w := seq[p%len(seq)]
		if p > 0 {
			res.Switches = append(res.Switches, p*phaseLen)
		}
		remaining := phaseLen
		for remaining > 0 {
			depth := lookahead
			if depth > remaining {
				depth = remaining
			}
			props := st.Lookahead(depth)
			epoch := st.Epoch()
			batchStart := step
			specs := make([]websim.Measurement, len(props))
			ForEach(cfg.Workers, len(props), func(j int) {
				specs[j] = evalFigure5Candidate(auth, w, batchStart+j, epoch, props[j])
			})
			for j := range props {
				// The batch was peeked under this epoch, so the check can
				// only fail on a runner bug — but a silently corrupted
				// search is far worse than a panic, so verify every commit.
				if next := st.Lookahead(1); len(next) == 0 || !nodeConfigsEqual(next[0], props[j]) {
					panic(fmt.Sprintf("core: speculative candidate %d diverged from the authoritative search", batchStart+j))
				}
				vt += window
				st.CommitStep(specs[j].WIPS, specs[j].LineWIPS)
				res.WIPS = append(res.WIPS, specs[j].WIPS)
				res.Workload = append(res.Workload, w)
				step++
				remaining--
				if st.Epoch() != epoch {
					// The commit restarted the search: candidates j+1..
					// were measured for proposals the re-anchored sessions
					// will never make. Record and drop them.
					if rec := auth.Recorder(); rec != nil {
						for k := j + 1; k < len(props); k++ {
							rec.Event(telemetry.Event{
								Session: "speculate", T: vt, Iter: batchStart + k,
								Kind: "discard", Move: "speculate-discard",
							})
						}
					}
					break
				}
			}
		}
	}
	for _, sess := range st.Sessions() {
		res.Restarts += sess.Resets()
	}
	res.Recovery = recoveryIters(res.WIPS, res.Switches, phaseLen)
	return res, st
}

// evalFigure5Candidate measures one speculative candidate hermetically
// via Lab.EvalConfig: the evaluation's rng streams derive from its
// canonical key (configuration, workload, lab shape — never the step
// index), so the measurement is a pure function of the proposal,
// independent of worker count, evaluation order, speculation depth, and
// whatever the authoritative engine has or has not run. It also means a
// re-proposed configuration is an exact repeat, so the speculative runner
// shares the same content-addressed memo table (LabConfig.EvalCache) as
// the sequential runners. The telemetry unit carries the strategy epoch
// and the global step index so a step re-evaluated after discarded
// speculation registers under a fresh recorder name.
func evalFigure5Candidate(auth *Lab, w tpcw.Workload, step, epoch int, nodeCfgs map[int]param.Config) websim.Measurement {
	return auth.EvalConfig(w, nodeCfgs, fmt.Sprintf("e%02d/s%05d", epoch, step))
}

// nodeConfigsEqual reports whether two node→configuration assignments
// stage identical configurations on identical node sets.
func nodeConfigsEqual(a, b map[int]param.Config) bool {
	if len(a) != len(b) {
		return false
	}
	for n, cfg := range a {
		o, ok := b[n]
		if !ok || !cfg.Equal(o) {
			return false
		}
	}
	return true
}

// specObserve mirrors Lab.TraceObserve but stamps events from the
// speculative runner's virtual clock instead of an engine clock (the
// authoritative engine stays at zero). Nil when telemetry is disabled.
func specObserve(rec *telemetry.Recorder, vt *float64) func(label string, space *param.Space) simplex.StepObserver {
	if rec == nil {
		return nil
	}
	return func(label string, space *param.Space) simplex.StepObserver {
		return func(st simplex.Step) {
			ev := telemetry.Event{
				Session: label,
				T:       *vt,
				Iter:    st.Evaluations,
				Kind:    "step",
				Move:    st.Move,
				Cost:    st.Cost,
				Best:    st.BestCost,
			}
			if st.Move == "reset" || st.Move == "shift-restart" {
				ev.Kind = "restart"
			}
			if st.Config != nil {
				ev.Config = st.Config.Map(space)
			}
			rec.Event(ev)
		}
	}
}

// RecoveryNone in a Figure5Result.Recovery entry marks a phase whose WIPS
// never re-entered the 90% steady band (or a switch past the end of a
// truncated series, where no recovery can be observed at all).
const RecoveryNone = -1

// recoveryIters computes, for each workload switch, how many iterations
// the phase needed to first re-reach 90% of its steady level (the mean of
// the phase's second half) — the paper's Figure 5 responsiveness metric.
// A switch at or past the end of the series, or a phase that never
// re-enters the band (possible when the steady level is NaN over an
// empty tail, or with anomalous series), yields RecoveryNone rather than
// a value indistinguishable from "recovered on the last iteration".
func recoveryIters(wips []float64, switches []int, phaseLen int) []int {
	var out []int
	for _, sw := range switches {
		rec := RecoveryNone
		if sw >= 0 && sw < len(wips) {
			phase := wips[sw:min(sw+phaseLen, len(wips))]
			steady := stats.MeanOf(phase[len(phase)/2:])
			for i, v := range phase {
				if v >= 0.9*steady {
					rec = i + 1
					break
				}
			}
		}
		out = append(out, rec)
	}
	return out
}
