package core

import (
	"bytes"
	"testing"

	"webharmony/internal/harmony"
	"webharmony/internal/rng"
	"webharmony/internal/stats"
	"webharmony/internal/tpcw"
)

// replicateUnit is a cheap real experiment unit for the engine tests: one
// lab per call, one measured iteration of the default configuration.
func replicateUnit(cfg LabConfig, r int) float64 {
	lab := NewLab(cfg, tpcw.Shopping)
	return lab.MeasureConfig(DefaultConfigs(), 1)[0]
}

// TestReplicateDeterminism pins the byte-equality contract: the replicate
// slice is identical whether the fan-out runs on one worker or four.
func TestReplicateDeterminism(t *testing.T) {
	got := map[int][]float64{}
	for _, workers := range []int{1, 4} {
		cfg := parallelTestLab()
		cfg.Workers = workers
		got[workers] = Replicate(cfg, 5, replicateUnit)
	}
	for r := range got[1] {
		if got[1][r] != got[4][r] {
			t.Errorf("replicate %d differs between workers=1 and workers=4: %v vs %v",
				r, got[1][r], got[4][r])
		}
	}
}

// TestReplicateSeedIndependence asserts replicate r's result depends only
// on TaskSeed(seed, r): slot r matches a direct run of the unit under that
// seed, and is unaffected by the total replicate count R.
func TestReplicateSeedIndependence(t *testing.T) {
	cfg := parallelTestLab()
	cfg.Workers = 2
	full := Replicate(cfg, 4, replicateUnit)

	for r := 0; r < 2; r++ {
		direct := cfg
		direct.Seed = rng.TaskSeed(cfg.Seed, uint64(r))
		if want := replicateUnit(direct, r); full[r] != want {
			t.Errorf("replicate %d = %v, want the TaskSeed(seed, %d) run's %v", r, full[r], r, want)
		}
	}
	prefix := Replicate(cfg, 2, replicateUnit)
	for r := range prefix {
		if prefix[r] != full[r] {
			t.Errorf("replicate %d changed with R: %v (R=2) vs %v (R=4)", r, prefix[r], full[r])
		}
	}
	if got, want := ReplicateSeed(cfg.Seed, 3), rng.TaskSeed(cfg.Seed, 3); got != want {
		t.Errorf("ReplicateSeed = %d, want TaskSeed's %d", got, want)
	}
}

// TestReplicateSeedsVary is the sanity complement: distinct replicates see
// distinct randomness, so a stochastic measurement is not constant.
func TestReplicateSeedsVary(t *testing.T) {
	cfg := parallelTestLab()
	cfg.Workers = 2
	out := Replicate(cfg, 4, replicateUnit)
	distinct := map[float64]bool{}
	for _, v := range out {
		distinct[v] = true
	}
	if len(distinct) < 2 {
		t.Errorf("4 replicates produced a single value %v; seeds are not independent", out[0])
	}
}

// TestRunTable4ReplicatedDeterminism extends the Table 4 determinism
// contract to the replicated runner: the full export, including the
// across-replicate mean/σ/CI columns, is byte-identical at workers=1 and
// workers=4.
func TestRunTable4ReplicatedDeterminism(t *testing.T) {
	got := map[int][]byte{}
	var res *Table4Replicated
	for _, workers := range []int{1, 4} {
		cfg := parallelTestLab()
		cfg.Browsers = 200 // the 2/2/2 cluster serves more clients
		cfg.Workers = workers
		res = RunTable4Replicated(cfg, 3, 2, harmony.Options{Seed: 5})
		var buf bytes.Buffer
		if err := WriteTable4ReplicatedCSV(&buf, res); err != nil {
			t.Fatal(err)
		}
		got[workers] = append(exportJSON(t, res), buf.Bytes()...)
	}
	if !bytes.Equal(got[1], got[4]) {
		t.Errorf("replicated Table 4 export differs between workers=1 and workers=4:\n--- workers=1\n%s\n--- workers=4\n%s",
			got[1], got[4])
	}

	// The aggregation columns must be the stats of the per-replicate WIPS.
	if res.Replicates != 2 || len(res.Rows) != 5 {
		t.Fatalf("got %d replicates x %d rows, want 2 x 5", res.Replicates, len(res.Rows))
	}
	base := res.Rows[0]
	for i, row := range res.Rows {
		if len(row.WIPS) != 2 {
			t.Fatalf("row %q has %d replicate values, want 2", row.Method, len(row.WIPS))
		}
		s := stats.Summarize(row.WIPS)
		if row.Mean != s.Mean || row.StdDev != s.StdDev || row.CI95 != s.CI95 {
			t.Errorf("row %q summary %v/%v/%v, want %v/%v/%v",
				row.Method, row.Mean, row.StdDev, row.CI95, s.Mean, s.StdDev, s.CI95)
		}
		if want := stats.Improvement(base.Mean, row.Mean); i > 0 && row.Improvement != want {
			t.Errorf("row %q improvement %v, want %v", row.Method, row.Improvement, want)
		}
	}
}

// TestRunAdaptiveReplicatedDeterminism pins the parallelized §IV
// replication loop: identical results at any worker count, one
// independent lab per replicate.
func TestRunAdaptiveReplicatedDeterminism(t *testing.T) {
	opts := AdaptiveOptions{
		Strategy:      harmony.StrategyDuplication,
		Tuner:         harmony.Options{Seed: 7},
		ReconfigEvery: 2,
	}
	got := map[int][]byte{}
	for _, workers := range []int{1, 2} {
		cfg := parallelTestLab()
		cfg.Workers = workers
		res := RunAdaptiveReplicated(cfg, tpcw.Browsing, 4, 2, opts)
		got[workers] = exportJSON(t, res)
	}
	if !bytes.Equal(got[1], got[2]) {
		t.Errorf("adaptive replication differs between workers=1 and workers=2:\n--- workers=1\n%s\n--- workers=2\n%s",
			got[1], got[2])
	}
}
