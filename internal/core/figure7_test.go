package core

import (
	"testing"
)

func quickFig7Lab() LabConfig {
	cfg := QuickLab()
	cfg.Browsers = 600 // the 6-node cluster serves a larger population
	cfg.Warm = 12      // long enough to re-warm caches after each restart
	return cfg
}

func TestFigure7aMovesProxyToApp(t *testing.T) {
	fo := Figure7a()
	res := RunFigure7(quickFig7Lab(), fo, nil)
	t.Logf("layouts: %s", FormatLayoutSeries(res.Layouts))
	t.Logf("decision: %v (moved=%v at iter %d)", res.Decision, res.Moved, res.MovedAt)
	t.Logf("before=%.1f after=%.1f improvement=%.0f%%", res.Before, res.After, 100*res.Improvement)
	if !res.Moved {
		t.Fatal("reconfiguration did not trigger")
	}
	if res.Decision.To.String() != "app" {
		t.Fatalf("moved node to %v, want app tier", res.Decision.To)
	}
	if res.Improvement <= 0.10 {
		t.Fatalf("improvement = %.1f%%, want a substantial gain (paper: ~62%%)", 100*res.Improvement)
	}
}

func TestFigure7bMovesAppToProxy(t *testing.T) {
	fo := Figure7b()
	res := RunFigure7(quickFig7Lab(), fo, nil)
	t.Logf("layouts: %s", FormatLayoutSeries(res.Layouts))
	t.Logf("decision: %v (moved=%v)", res.Decision, res.Moved)
	t.Logf("before=%.1f after=%.1f improvement=%.0f%%", res.Before, res.After, 100*res.Improvement)
	if !res.Moved {
		t.Fatal("reconfiguration did not trigger")
	}
	if res.Decision.To.String() != "proxy" {
		t.Fatalf("moved node to %v, want proxy tier", res.Decision.To)
	}
	if res.Improvement <= 0.10 {
		t.Fatalf("improvement = %.1f%%, want a substantial gain (paper: ~70%%)", 100*res.Improvement)
	}
}

// TestFigure7UtilProbe prints per-node utilization in the imbalanced
// phase; diagnostic for threshold calibration.
func TestFigure7UtilProbe(t *testing.T) {
	for _, variant := range []struct {
		name string
		fo   Figure7Options
	}{{"a", Figure7a()}, {"b", Figure7b()}} {
		cfg := quickFig7Lab()
		cfg.ProxyNodes, cfg.AppNodes, cfg.DBNodes = variant.fo.ProxyNodes, variant.fo.AppNodes, variant.fo.DBNodes
		lab := NewLab(cfg, variant.fo.Start)
		for t, c := range GenerousConfigs() {
			lab.Sys.SetTierConfig(t, c)
		}
		lab.Sys.Restart()
		for i := 0; i <= variant.fo.CheckAt; i++ {
			if i == variant.fo.SwitchAt && variant.fo.SwitchTo != variant.fo.Start {
				lab.Driver.SetWorkload(variant.fo.SwitchTo)
			}
			m := lab.MeasureIteration(false)
			if i == variant.fo.CheckAt {
				t.Logf("variant %s: WIPS=%.1f err=%.2f", variant.name, m.WIPS, m.ErrorRate)
				for _, r := range lab.LastReadings() {
					t.Logf("  node%d(%v): cpu=%.2f mem=%.2f net=%.2f disk=%.2f",
						r.Node, r.Tier, r.Util[0], r.Util[1], r.Util[2], r.Util[3])
				}
			}
		}
	}
}

func TestFigure7TimelineRecorded(t *testing.T) {
	if testing.Short() {
		t.Skip("full reconfiguration run")
	}
	res := RunFigure7(quickFig7Lab(), Figure7a(), nil)
	if res.Timeline == nil || len(res.Timeline.Points()) == 0 {
		t.Fatal("no utilization timeline recorded")
	}
	// The timeline must show the app tier hot before the move: find an
	// app-node sample in the ordering phase with high CPU.
	sawHotApp := false
	for _, p := range res.Timeline.Points() {
		if p.Tier.String() == "app" && p.Util[0] > 0.8 {
			sawHotApp = true
		}
	}
	if !sawHotApp {
		t.Fatal("timeline never showed a hot application node")
	}
}
