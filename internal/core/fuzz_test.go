package core

import (
	"strings"
	"testing"
)

// canonicalSpec re-serializes parsed axes into the -sweep grammar. Labels
// are already canonical (Itoa / FormatFloat 'g' / "p/a/d"), so parsing a
// canonical spec must reproduce the same axis names and labels.
func canonicalSpec(axes []SweepAxis) string {
	parts := make([]string, len(axes))
	for i, ax := range axes {
		parts[i] = ax.Name + "=" + strings.Join(ax.Labels, ",")
	}
	return strings.Join(parts, ";")
}

// FuzzParseSweepSpec pins the parser's safety contract: it never panics,
// every accepted spec re-parses from its canonical form to the same axes
// (names and labels), and rejection always comes with an error rather
// than a nil/nil return.
func FuzzParseSweepSpec(f *testing.F) {
	for _, seed := range []string{
		"browsers=140,250",
		"browsers=140,250;think=0.3,0.6;shape=1/1/1,2/2/2",
		"scale=10000;think=0.5",
		"shape=1/1/1",
		" browsers = 60 , 80 ; scale = 800 ",
		"",
		";;",
		"browsers",
		"browsers=",
		"browsers=0",
		"browsers=-5",
		"think=NaN",
		"think=+Inf",
		"think=1e309",
		"shape=1/1",
		"shape=1/1/1/1",
		"shape=0/1/1",
		"browsers=1;browsers=2",
		"unknown=1",
		"browsers=1,,2",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		axes, err := ParseSweepSpec(spec)
		if err != nil {
			if axes != nil {
				t.Fatalf("ParseSweepSpec(%q) returned axes alongside error %v", spec, err)
			}
			return
		}
		if len(axes) == 0 {
			t.Fatalf("ParseSweepSpec(%q) accepted a spec but returned no axes", spec)
		}
		for _, ax := range axes {
			if len(ax.Labels) == 0 || ax.Apply == nil {
				t.Fatalf("ParseSweepSpec(%q) produced unusable axis %q", spec, ax.Name)
			}
		}
		canon := canonicalSpec(axes)
		again, err := ParseSweepSpec(canon)
		if err != nil {
			t.Fatalf("canonical spec %q (from %q) does not re-parse: %v", canon, spec, err)
		}
		if len(again) != len(axes) {
			t.Fatalf("canonical re-parse of %q has %d axes, want %d", canon, len(again), len(axes))
		}
		for i := range axes {
			if again[i].Name != axes[i].Name ||
				strings.Join(again[i].Labels, ",") != strings.Join(axes[i].Labels, ",") {
				t.Fatalf("canonical re-parse of %q axis %d = %s=%s, want %s=%s",
					canon, i, again[i].Name, strings.Join(again[i].Labels, ","),
					axes[i].Name, strings.Join(axes[i].Labels, ","))
			}
		}
	})
}
