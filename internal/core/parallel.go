package core

import (
	"runtime"
	"sync"
)

// ForEach runs n independent tasks, task(0) … task(n-1), on a bounded pool
// of workers goroutines and returns when all have finished. workers <= 0
// selects GOMAXPROCS; workers == 1 degenerates to a plain sequential loop.
//
// ForEach is the execution layer behind the experiment runners' fan-outs
// (the Figure 4 tuning runs and matrix cells, the Table 4 method
// replications, the Figure 7 variants). The determinism contract every
// caller must uphold:
//
//   - each task owns its state (its own Lab, engine and rng streams) and
//     writes only to its own index-addressed result slot, so no task can
//     observe another's progress;
//   - any shared inputs (a LabConfig, a best-configuration map from an
//     earlier phase) are treated as read-only.
//
// Under that contract the results are bit-for-bit identical at every
// worker count, including workers == 1 versus the pre-pool sequential
// code, because scheduling order can only permute *when* slots are
// filled, never *what* is written to them.
//
// If a task panics, the remaining tasks still run to completion and the
// first recorded panic value is re-raised on the calling goroutine, so a
// panicking task behaves like it would in a sequential loop rather than
// crashing the process from a worker goroutine.
func ForEach(workers, n int, task func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}

	var (
		panicMu    sync.Mutex
		firstPanic any
		panicked   bool
	)
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if !panicked {
					panicked = true
					firstPanic = r
				}
				panicMu.Unlock()
			}
		}()
		task(i)
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				run(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()

	if panicked {
		panic(firstPanic)
	}
}
