package core

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"

	"webharmony/internal/harmony"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 7, 16} {
		for _, n := range []int{0, 1, 3, 8, 100} {
			hits := make([]int32, n)
			ForEach(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Errorf("workers=%d n=%d: task %d ran %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForEachSequentialWithOneWorker(t *testing.T) {
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("workers=1 ran out of order: %v", order)
		}
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	var completed int32
	defer func() {
		r := recover()
		if r != "boom 3" {
			t.Errorf("recovered %v, want \"boom 3\"", r)
		}
		// The other tasks must still have run to completion.
		if got := atomic.LoadInt32(&completed); got != 7 {
			t.Errorf("%d tasks completed, want 7", got)
		}
	}()
	ForEach(4, 8, func(i int) {
		if i == 3 {
			panic(fmt.Sprintf("boom %d", i))
		}
		atomic.AddInt32(&completed, 1)
	})
	t.Error("ForEach did not re-panic")
}

// parallelTestLab is a heavily scaled-down setup: the determinism tests
// compare byte-for-byte equality of two runs, which does not need
// converged tuning, only enough load for nonzero WIPS. It is TinyLab,
// the same setup webtune's golden-file tests run at.
func parallelTestLab() LabConfig {
	return TinyLab()
}

// exportJSON renders a result through the same exporter the CLI uses, so
// equality here is equality of the artifacts users see.
func exportJSON(t *testing.T, res any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunFigure4ParallelDeterminism asserts the seed-splitting contract of
// the parallel runner: the exported Figure 4 result is byte-identical
// whether the fan-out runs on one worker or four.
func TestRunFigure4ParallelDeterminism(t *testing.T) {
	got := map[int][]byte{}
	for _, workers := range []int{1, 4} {
		cfg := parallelTestLab()
		cfg.Workers = workers
		got[workers] = exportJSON(t, RunFigure4(cfg, 4, 2, harmony.Options{Seed: 3}))
	}
	if !bytes.Equal(got[1], got[4]) {
		t.Errorf("Figure 4 export differs between workers=1 and workers=4:\n--- workers=1\n%s\n--- workers=4\n%s",
			got[1], got[4])
	}
}

// TestRunTable4ParallelDeterminism is the same contract for the Table 4
// method-comparison fan-out.
func TestRunTable4ParallelDeterminism(t *testing.T) {
	got := map[int][]byte{}
	for _, workers := range []int{1, 4} {
		cfg := parallelTestLab()
		cfg.Browsers = 200 // the 2/2/2 cluster serves more clients
		cfg.Workers = workers
		got[workers] = exportJSON(t, RunTable4(cfg, 4, harmony.Options{Seed: 5}))
	}
	if !bytes.Equal(got[1], got[4]) {
		t.Errorf("Table 4 export differs between workers=1 and workers=4:\n--- workers=1\n%s\n--- workers=4\n%s",
			got[1], got[4])
	}
}

// TestRunFigure7VariantsMatchSequential asserts the fan-out over Figure 7
// variants returns exactly what one-at-a-time RunFigure7 calls produce.
func TestRunFigure7VariantsMatchSequential(t *testing.T) {
	cfg := parallelTestLab()
	cfg.Browsers = 300 // 7-node cluster
	cfg.Warm = 4
	fos := []Figure7Options{Figure7a(), Figure7b()}

	cfg.Workers = 4
	par := RunFigure7Variants(cfg, nil, fos...)
	if len(par) != len(fos) {
		t.Fatalf("got %d results, want %d", len(par), len(fos))
	}
	for i, fo := range fos {
		seq := RunFigure7(cfg, fo, nil)
		if got, want := exportJSON(t, par[i]), exportJSON(t, seq); !bytes.Equal(got, want) {
			t.Errorf("variant %d differs between parallel and sequential runs", i)
		}
	}
}
