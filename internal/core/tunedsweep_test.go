package core

import (
	"bytes"
	"strings"
	"testing"

	"webharmony/internal/harmony"
	"webharmony/internal/stats"
	"webharmony/internal/tpcw"
)

func tunedSweepCSV(t *testing.T, res *TunedSweepResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteTunedSweepCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunTunedSweepDeterminism pins the byte-equality contract for the
// tuned grid driver: JSON and long-form CSV are identical at workers=1
// and workers=4.
func TestRunTunedSweepDeterminism(t *testing.T) {
	got := map[int][]byte{}
	for _, workers := range []int{1, 4} {
		cfg := parallelTestLab()
		cfg.Workers = workers
		res := RunTunedSweep(cfg, tpcw.Shopping,
			[]SweepAxis{BrowsersAxis(60, 80)}, 2, 1, 3, harmony.Options{Seed: 9})
		got[workers] = append(exportJSON(t, res), tunedSweepCSV(t, res)...)
	}
	if !bytes.Equal(got[1], got[4]) {
		t.Errorf("tuned sweep export differs between workers=1 and workers=4:\n--- workers=1\n%s\n--- workers=4\n%s",
			got[1], got[4])
	}
}

// TestRunTunedSweepPairing asserts the common-random-numbers pairing: the
// default arm reproduces RunSweep's wips column bit-for-bit (same grid,
// replicates and iterations), and the gain columns are the exact paired
// differences with the cell aggregates matching stats.Summarize /
// stats.SummarizePaired over the rows.
func TestRunTunedSweepPairing(t *testing.T) {
	cfg := parallelTestLab()
	cfg.Workers = 2
	axes := []SweepAxis{BrowsersAxis(60, 80)}
	const R, iters = 2, 1
	tuned := RunTunedSweep(cfg, tpcw.Shopping, axes, R, iters, 3, harmony.Options{Seed: 9})
	plain := RunSweep(cfg, tpcw.Shopping, axes, R, iters)

	if len(tuned.Rows) != len(plain.Rows) {
		t.Fatalf("got %d tuned rows, want %d", len(tuned.Rows), len(plain.Rows))
	}
	for i, row := range tuned.Rows {
		if row.DefaultWIPS != plain.Rows[i].WIPS {
			t.Errorf("row %d DefaultWIPS = %v, want RunSweep's %v", i, row.DefaultWIPS, plain.Rows[i].WIPS)
		}
		if row.Gain != row.TunedWIPS-row.DefaultWIPS {
			t.Errorf("row %d Gain = %v, want %v", i, row.Gain, row.TunedWIPS-row.DefaultWIPS)
		}
		if want := stats.Improvement(row.DefaultWIPS, row.TunedWIPS); row.RelGain != want {
			t.Errorf("row %d RelGain = %v, want %v", i, row.RelGain, want)
		}
		if row.TunedWIPS <= 0 {
			t.Errorf("row %d has non-positive tuned WIPS %v", i, row.TunedWIPS)
		}
	}
	if len(tuned.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(tuned.Cells))
	}
	for c, cell := range tuned.Cells {
		defs := make([]float64, R)
		tuneds := make([]float64, R)
		for r := 0; r < R; r++ {
			defs[r] = tuned.Rows[c*R+r].DefaultWIPS
			tuneds[r] = tuned.Rows[c*R+r].TunedWIPS
		}
		if cell.Default != stats.Summarize(defs) || cell.Tuned != stats.Summarize(tuneds) {
			t.Errorf("cell %d arm summaries do not match the rows", c)
		}
		if cell.Gain != stats.SummarizePaired(defs, tuneds) {
			t.Errorf("cell %d Gain = %+v, want the paired summary %+v",
				c, cell.Gain, stats.SummarizePaired(defs, tuneds))
		}
		if got, want := strings.Join(cell.Values, ","), strings.Join(tuned.Rows[c*R].Values, ","); got != want {
			t.Errorf("cell %d values = %q, want %q", c, got, want)
		}
	}
}

// TestRunTunedSweepGridIndependence asserts seed independence from grid
// composition: a cell's numbers (both arms) are identical whether the
// point runs alone or inside a larger grid, because replicate seeds
// depend only on the replicate index.
func TestRunTunedSweepGridIndependence(t *testing.T) {
	cfg := parallelTestLab()
	cfg.Workers = 2
	opts := harmony.Options{Seed: 9}
	alone := RunTunedSweep(cfg, tpcw.Shopping, []SweepAxis{BrowsersAxis(60)}, 2, 1, 3, opts)
	within := RunTunedSweep(cfg, tpcw.Shopping, []SweepAxis{BrowsersAxis(60, 80)}, 2, 1, 3, opts)
	for r := 0; r < 2; r++ {
		a, b := alone.Rows[r], within.Rows[r]
		if a.DefaultWIPS != b.DefaultWIPS || a.TunedWIPS != b.TunedWIPS {
			t.Errorf("replicate %d of browsers=60 depends on the grid: (%v, %v) alone vs (%v, %v) in a 2-point grid",
				r, a.DefaultWIPS, a.TunedWIPS, b.DefaultWIPS, b.TunedWIPS)
		}
	}
}

// TestRunTunedSweepRaceStress drives the tuned-sweep fan-out through a
// worker pool wider than the task count; it exists to run under -race
// (the CI race job covers internal/core) and to catch shared-state
// regressions in the paired units.
func TestRunTunedSweepRaceStress(t *testing.T) {
	cfg := parallelTestLab()
	cfg.Workers = 16
	res := RunTunedSweep(cfg, tpcw.Shopping,
		[]SweepAxis{BrowsersAxis(60, 80), ThinkAxis(0.4, 0.6)}, 2, 1, 2, harmony.Options{Seed: 9})
	if len(res.Rows) != 8 || len(res.Cells) != 4 {
		t.Fatalf("got %d rows / %d cells, want 8 / 4", len(res.Rows), len(res.Cells))
	}
	for i, row := range res.Rows {
		if row.DefaultWIPS <= 0 || row.TunedWIPS <= 0 {
			t.Errorf("row %d has non-positive WIPS: default %v, tuned %v", i, row.DefaultWIPS, row.TunedWIPS)
		}
	}
}

func TestWriteTunedSweepCSVGolden(t *testing.T) {
	res := &TunedSweepResult{
		Axes:       []string{"browsers"},
		Replicates: 2,
		Iters:      1,
		TuneIters:  3,
		Rows: []TunedSweepRow{
			{Values: []string{"100"}, Replicate: 0, DefaultWIPS: 10, TunedWIPS: 12, Gain: 2, RelGain: 0.2},
			{Values: []string{"100"}, Replicate: 1, DefaultWIPS: 20, TunedWIPS: 22, Gain: 2, RelGain: 0.1},
		},
		Cells: []TunedSweepCell{{
			Values:  []string{"100"},
			Default: stats.Summarize([]float64{10, 20}),
			Tuned:   stats.Summarize([]float64{12, 22}),
			Gain:    stats.SummarizePaired([]float64{10, 20}, []float64{12, 22}),
			RelGain: stats.Summarize([]float64{0.2, 0.1}),
		}},
	}
	got := string(tunedSweepCSV(t, res))
	wantHeader := "browsers,replicate,wips_default,wips_tuned,gain,rel_gain," +
		"mean_default,sd_default,ci95_default,mean_tuned,sd_tuned,ci95_tuned," +
		"mean_gain,sd_gain,ci95_gain,mean_rel_gain,ci95_rel_gain"
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 3 || lines[0] != wantHeader {
		t.Fatalf("tuned sweep CSV = %q, want header %q plus two rows", got, wantHeader)
	}
	// The paired gain has zero spread here (a constant +2), so the CSV
	// must show a zero-width interval even though both arms vary.
	if !strings.HasPrefix(lines[1], "100,0,10,12,2,0.2,15,") {
		t.Errorf("row 1 = %q, want prefix \"100,0,10,12,2,0.2,15,\"", lines[1])
	}
	if !strings.Contains(lines[1], ",2,0,0,") {
		t.Errorf("row 1 = %q, want the zero-spread paired gain columns \"2,0,0\"", lines[1])
	}
}

// TestRunTunedSweepRejectsBadArgs pins the argument contract.
func TestRunTunedSweepRejectsBadArgs(t *testing.T) {
	cases := []func(){
		func() {
			RunTunedSweep(parallelTestLab(), tpcw.Shopping, nil, 1, 1, 1, harmony.Options{})
		},
		func() {
			RunTunedSweep(parallelTestLab(), tpcw.Shopping, []SweepAxis{BrowsersAxis(60)}, 0, 1, 1, harmony.Options{})
		},
		func() {
			RunTunedSweep(parallelTestLab(), tpcw.Shopping, []SweepAxis{BrowsersAxis(60)}, 1, 0, 1, harmony.Options{})
		},
		func() {
			RunTunedSweep(parallelTestLab(), tpcw.Shopping, []SweepAxis{BrowsersAxis(60)}, 1, 1, 0, harmony.Options{})
		},
		func() {
			RunTunedSweep(parallelTestLab(), tpcw.Shopping, []SweepAxis{{Name: "empty"}}, 1, 1, 1, harmony.Options{})
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}
