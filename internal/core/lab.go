// Package core orchestrates the full reproduction: it wires the simulated
// web cluster (internal/websim), the TPC-W driver (internal/tpcw), the
// Active Harmony tuning layer (internal/harmony) and the reconfiguration
// algorithm (internal/reconfig) into the paper's experiments, one runner
// per table and figure.
package core

import (
	"fmt"

	"webharmony/internal/cluster"
	"webharmony/internal/evalcache"
	"webharmony/internal/harmony"
	"webharmony/internal/monitor"
	"webharmony/internal/param"
	"webharmony/internal/rng"
	"webharmony/internal/simnet"
	"webharmony/internal/simplex"
	"webharmony/internal/telemetry"
	"webharmony/internal/tpcw"
	"webharmony/internal/websim"
)

// LabConfig describes the experimental setup: cluster shape, client load
// and iteration window lengths (§III.A: 100 s warm-up, 1000 s measurement,
// 100 s cool-down per iteration).
type LabConfig struct {
	ProxyNodes int
	AppNodes   int
	DBNodes    int
	WorkLines  int

	Browsers  int
	ThinkMean float64
	Scale     int
	// Sessions drives browsers through the TPC-W session graph instead of
	// i.i.d. Table 1 draws (same steady-state mix).
	Sessions bool

	Warm    float64
	Measure float64
	Cool    float64

	Seed uint64

	// Workers bounds the worker pool the experiment runners use to fan
	// out independent units (tuning runs, matrix cells, Figure 7
	// variants). 0 selects GOMAXPROCS; 1 forces sequential execution.
	// Results are bit-for-bit identical at every worker count: each unit
	// builds its own lab from this configuration's seed.
	Workers int

	// Telemetry, when non-nil, collects a tuner step trace and a per-tier
	// metrics timeseries from every lab built from this configuration.
	// Each lab registers a recorder under (TelemetryReplicate,
	// TelemetryUnit); the experiment runners extend TelemetryUnit so
	// every lab they build gets a distinct name, and core.Replicate sets
	// TelemetryReplicate to the replicate index. The fields are excluded
	// from JSON exports and from the determinism contract's inputs: an
	// instrumented run measures exactly what a bare run measures.
	Telemetry          *telemetry.Collector `json:"-"`
	TelemetryUnit      string               `json:"-"`
	TelemetryReplicate int                  `json:"-"`

	// SimProfile attaches the trace-driven event-loop profiler to every lab
	// built from this configuration (requires Telemetry: profiles ride the
	// recorder so the collector can merge them deterministically). Like
	// telemetry, profiling never changes what a run measures — labels ride
	// along with events without reordering anything or touching any RNG.
	SimProfile bool `json:"-"`

	// Spans attaches the per-request span layer to every lab built from
	// this configuration (requires Telemetry, like SimProfile): each page
	// records an exact queue-vs-service latency decomposition folded into
	// the lab's span sink, snapshotted once per iteration window for the
	// attribution report. SpanSampleEvery > 0 additionally dumps every
	// n-th page's full span tree. Spans, too, never change what a run
	// measures.
	Spans           bool `json:"-"`
	SpanSampleEvery int  `json:"-"`

	// EvalCache, when non-nil, memoizes hermetic evaluations (see
	// evaluate.go and DESIGN.md §10) under their canonical content-derived
	// keys, so exact repeats — re-proposed lattice points, repeated
	// baseline windows, the Figure 4 matrix's re-measured (config,
	// workload) pairs — skip re-simulation. Because an evaluation is a
	// pure function of its key, memoization never changes any output;
	// like Telemetry it is excluded from JSON exports and from the
	// determinism contract's inputs. Memoization is bypassed while
	// Telemetry is attached (a hit would skip per-evaluation recorder
	// registration and change the telemetry byte stream).
	EvalCache *evalcache.Cache `json:"-"`
}

// WithTelemetryUnit returns a copy of the configuration whose telemetry
// unit path is extended by seg (runners further extend it per lab). No-op
// when telemetry is disabled.
func (c LabConfig) WithTelemetryUnit(seg string) LabConfig {
	return telemetrySub(c, seg)
}

// telemetrySub appends seg to cfg's telemetry unit path, so every lab a
// runner builds registers under a distinct recorder name.
func telemetrySub(cfg LabConfig, seg string) LabConfig {
	if cfg.Telemetry == nil {
		return cfg
	}
	if cfg.TelemetryUnit == "" {
		cfg.TelemetryUnit = seg
	} else {
		cfg.TelemetryUnit += "/" + seg
	}
	return cfg
}

// PaperLab returns the paper's timing on the 4-machine setup: 100/1000/100
// second windows. Simulated minutes per iteration; use for final runs.
func PaperLab() LabConfig {
	return LabConfig{
		ProxyNodes: 1, AppNodes: 1, DBNodes: 1,
		Browsers: 550, ThinkMean: 2, Scale: 10000,
		Warm: 100, Measure: 1000, Cool: 100,
		Seed: 1,
	}
}

// StandardLab returns the setup used by the benchmark harness: the paper's
// cluster and load with shortened (but still converged) windows.
func StandardLab() LabConfig {
	cfg := PaperLab()
	cfg.Warm, cfg.Measure, cfg.Cool = 20, 120, 10
	return cfg
}

// QuickLab returns a scaled-down setup for unit tests: a smaller store,
// fewer browsers with shorter think times (still saturating the cluster)
// and short windows.
func QuickLab() LabConfig {
	return LabConfig{
		ProxyNodes: 1, AppNodes: 1, DBNodes: 1,
		Browsers: 170, ThinkMean: 0.5, Scale: 1500,
		Warm: 5, Measure: 30, Cool: 3,
		Seed: 1,
	}
}

// TinyLab returns a deliberately undersized setup for byte-level golden
// and determinism tests: enough load for nonzero WIPS and minimal
// warm/measure/cool windows, so a full experiment runs in seconds.
// Numbers at this scale mean nothing — it exists so regression tests can
// pin exact output bytes cheaply (webtune -scale tiny).
func TinyLab() LabConfig {
	return LabConfig{
		ProxyNodes: 1, AppNodes: 1, DBNodes: 1,
		Browsers: 80, ThinkMean: 0.5, Scale: 800,
		Warm: 2, Measure: 8, Cool: 1,
		Seed: 1,
	}
}

// Lab is one instantiated experiment: a simulated cluster under TPC-W load
// with per-iteration measurement, usable as a harmony.Target.
type Lab struct {
	Cfg    LabConfig
	Sys    *websim.System
	Driver *tpcw.Driver
	Mon    *monitor.Monitor

	lastReadings []monitor.Reading
	iterations   int

	rec      *telemetry.Recorder
	sampler  *telemetry.Sampler
	spanSink *websim.SpanSink
}

// NewLab builds the simulated cluster and client population.
func NewLab(cfg LabConfig, w tpcw.Workload) *Lab {
	sys := websim.New(websim.Options{
		ProxyNodes: cfg.ProxyNodes,
		AppNodes:   cfg.AppNodes,
		DBNodes:    cfg.DBNodes,
		WorkLines:  cfg.WorkLines,
		Scale:      cfg.Scale,
		Seed:       cfg.Seed,
	})
	d := tpcw.NewDriver(sys.Eng, sys, sys.Catalog, tpcw.DriverOptions{
		Browsers:  cfg.Browsers,
		Workload:  w,
		ThinkMean: cfg.ThinkMean,
		Seed:      cfg.Seed ^ 0xeb,
		Sessions:  cfg.Sessions,
	})
	lab := &Lab{Cfg: cfg, Sys: sys, Driver: d, Mon: monitor.New(sys.Cluster)}
	if cfg.Telemetry != nil {
		lab.rec = cfg.Telemetry.Recorder(cfg.TelemetryReplicate, cfg.TelemetryUnit)
		// Two samples per iteration window, the cadence monitor.Timeline
		// uses for the Figure 7 utilization narrative.
		lab.sampler = telemetry.NewSampler(sys, lab.rec, (cfg.Warm+cfg.Measure+cfg.Cool)/2)
		lab.sampler.Start()
		if cfg.SimProfile {
			p := simnet.NewProfile()
			sys.Eng.SetProfile(p)
			lab.rec.AttachSimProfile(p)
		}
		if cfg.Spans {
			lab.spanSink = websim.NewSpanSink(cfg.SpanSampleEvery)
			sys.SetSpanSink(lab.spanSink)
			lab.rec.AttachSpans(lab.spanSink)
		}
	}
	return lab
}

// Fork builds an independent lab primed to evaluate one speculative
// candidate: the same cluster shape, catalog scale and client load as the
// parent, the parent's currently staged per-node configurations, and
// fresh rng streams seeded with rng.TaskSeed(parent seed, task) so every
// candidate's simulation is independent of the parent's, of the other
// candidates', and of which worker builds it. A live engine cannot be
// deep-copied (its event heap holds closures over simulator state), so a
// fork is generative — rebuilt from configuration, not cloned — which is
// precisely what makes speculative evaluation history-independent and
// therefore byte-identical at any worker count. The fork registers its
// telemetry recorder (when enabled) under the parent's unit extended by
// unit, runs sequentially (Workers = 1), and is discarded after one
// measurement.
func (l *Lab) Fork(task uint64, w tpcw.Workload, unit string) *Lab {
	cfg := telemetrySub(l.Cfg, unit)
	cfg.Seed = rng.TaskSeed(l.Cfg.Seed, task)
	cfg.Workers = 1
	f := NewLab(cfg, w)
	for node, nc := range l.Sys.SnapshotConfigs() {
		f.Sys.SetNodeConfig(node, nc)
	}
	return f
}

// Recorder returns the lab's telemetry recorder; nil when telemetry is
// disabled (a nil recorder still accepts appends as no-ops).
func (l *Lab) Recorder() *telemetry.Recorder { return l.rec }

// RecordEvent appends a trace event stamped with the current simulated
// time; no-op when telemetry is disabled.
func (l *Lab) RecordEvent(ev telemetry.Event) {
	if l.rec == nil {
		return
	}
	ev.T = l.Sys.Eng.Now()
	l.rec.Event(ev)
}

// TraceObserve returns the observer factory that streams tuner steps into
// the lab's telemetry recorder — assign it to harmony.Options.Observe
// before building a strategy on this lab. It returns nil (tracing
// disabled) when the lab has no recorder.
func (l *Lab) TraceObserve() func(label string, space *param.Space) simplex.StepObserver {
	if l.rec == nil {
		return nil
	}
	return func(label string, space *param.Space) simplex.StepObserver {
		return func(st simplex.Step) {
			ev := telemetry.Event{
				Session: label,
				T:       l.Sys.Eng.Now(),
				Iter:    st.Evaluations,
				Kind:    "step",
				Move:    st.Move,
				Cost:    st.Cost,
				Best:    st.BestCost,
			}
			if st.Move == "reset" || st.Move == "shift-restart" {
				ev.Kind = "restart"
			}
			if st.Config != nil {
				ev.Config = st.Config.Map(space)
			}
			l.rec.Event(ev)
		}
	}
}

// withTrace returns opts with the lab's trace-observer factory attached,
// unless the caller already supplied an observer of its own. No-op when
// the lab has no telemetry.
func withTrace(opts harmony.Options, lab *Lab) harmony.Options {
	if opts.Observe == nil && opts.Observer == nil {
		opts.Observe = lab.TraceObserve()
	}
	return opts
}

// Tiers implements harmony.Target.
func (l *Lab) Tiers() []harmony.TierSpec {
	var specs []harmony.TierSpec
	for _, t := range cluster.Tiers() {
		spec := harmony.TierSpec{Name: t.String(), Space: websim.SpaceFor(t)}
		for _, n := range l.Sys.Cluster.TierNodes(t) {
			spec.Nodes = append(spec.Nodes, n.ID())
		}
		specs = append(specs, spec)
	}
	return specs
}

// SetNodeConfig implements harmony.Target.
func (l *Lab) SetNodeConfig(node int, cfg param.Config) {
	l.Sys.SetNodeConfig(node, cfg)
}

// NodeConfig implements harmony.Target: the node's staged configuration.
func (l *Lab) NodeConfig(node int) param.Config {
	return l.Sys.NodeConfig(node)
}

// RunIteration implements harmony.Target: restart the servers with the
// staged configurations and run one warm/measure/cool window, collecting
// resource utilizations over the measurement interval.
func (l *Lab) RunIteration() (float64, []float64) {
	m := l.MeasureIteration(true)
	return m.WIPS, m.LineWIPS
}

// MeasureIteration runs one iteration window; restart controls whether the
// servers are restarted first (a tuning iteration) or left running (a
// plain observation window).
func (l *Lab) MeasureIteration(restart bool) websim.Measurement {
	if restart {
		l.Sys.Restart()
	}
	if !l.Driver.Running() {
		l.Driver.Start()
	}
	eng := l.Sys.Eng
	eng.RunUntil(eng.Now() + l.Cfg.Warm)
	l.Mon.Begin()
	m := websim.Measure(l.Sys, l.Driver, 0, l.Cfg.Measure, 0)
	l.lastReadings = l.Mon.Collect()
	eng.RunUntil(eng.Now() + l.Cfg.Cool)
	l.iterations++
	if l.spanSink != nil {
		// Close the attribution window at the iteration boundary, so the
		// -latency report can tie queue-wait shares to tuner steps and
		// reconfiguration moves.
		l.spanSink.Snapshot(l.iterations, eng.Now())
	}
	return m
}

// LastReadings returns the per-node utilizations of the last iteration's
// measurement window.
func (l *Lab) LastReadings() []monitor.Reading { return l.lastReadings }

// Iterations returns how many iteration windows have run.
func (l *Lab) Iterations() int { return l.iterations }

// MeasureConfig applies one configuration per tier (duplicated within the
// tier) and measures n hermetic iteration windows, returning the WIPS
// series. Every window is an independent per-evaluation lab under the
// same evaluation key (DESIGN.md §10), so the series is n exact repeats
// of one pure-function measurement — the same steady-state conditions
// hermetic tuning measures under — and, with an EvalCache attached, costs
// one simulation regardless of n.
func (l *Lab) MeasureConfig(cfgs map[cluster.Tier]param.Config, n int) []float64 {
	nodeCfgs := l.tierNodeConfigs(cfgs)
	w := l.Driver.Workload()
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		m := l.EvalConfig(w, nodeCfgs, fmt.Sprintf("m%04d", i))
		out = append(out, m.WIPS)
	}
	return out
}

// DefaultConfigs returns every tier's default configuration.
func DefaultConfigs() map[cluster.Tier]param.Config {
	out := make(map[cluster.Tier]param.Config)
	for _, t := range cluster.Tiers() {
		out[t] = websim.SpaceFor(t).DefaultConfig()
	}
	return out
}

// Compile-time check.
var _ harmony.Target = (*Lab)(nil)
