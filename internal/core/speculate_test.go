package core

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"webharmony/internal/harmony"
	"webharmony/internal/telemetry"
	"webharmony/internal/tpcw"
)

// specLab returns the tiny scenario the speculation tests run on: small
// enough that a full multi-phase run takes well under a second, with
// shift detection aggressive enough that restarts fire mid-speculation.
func specLab(seed uint64, workers int) LabConfig {
	cfg := TinyLab()
	cfg.Seed = seed
	cfg.Workers = workers
	return cfg
}

// histories flattens a strategy's per-session histories for comparison.
func histories(st *harmony.Strategy) [][]harmony.Record {
	var out [][]harmony.Record
	for _, sess := range st.Sessions() {
		out = append(out, sess.History())
	}
	return out
}

// TestFigure5SpeculativeMatchesSequential is the core determinism
// property: over randomized seeds, phase lengths and workload sequences,
// the speculative engine (deep lookahead, parallel workers) commits
// exactly the iteration sequence the sequential formulation (lookahead 1,
// one worker) produces — record for record in every session's history,
// including runs where shift restarts discard in-flight speculation.
func TestFigure5SpeculativeMatchesSequential(t *testing.T) {
	rnd := rand.New(rand.NewSource(41))
	sawRestart := false
	for trial := 0; trial < 4; trial++ {
		seed := uint64(rnd.Intn(1000) + 1)
		phaseLen := 5 + rnd.Intn(6)
		phases := 2 + rnd.Intn(2)
		all := tpcw.Workloads()
		seq := []tpcw.Workload{all[rnd.Intn(len(all))], all[rnd.Intn(len(all))]}
		opts := harmony.Options{Seed: seed, ShiftFactor: 0.1, ShiftPatience: 2}

		seqRes, seqSt := runFigure5(specLab(seed, 1), seq, phaseLen, phases, 1, opts)
		parRes, parSt := runFigure5(specLab(seed, 3), seq, phaseLen, phases, figure5Lookahead, opts)

		if !reflect.DeepEqual(seqRes, parRes) {
			t.Fatalf("trial %d (seed %d, phaseLen %d, seq %v): results diverged:\nsequential: %+v\nspeculative: %+v",
				trial, seed, phaseLen, seq, seqRes, parRes)
		}
		sh, ph := histories(seqSt), histories(parSt)
		if len(sh) != len(ph) {
			t.Fatalf("trial %d: session counts %d != %d", trial, len(sh), len(ph))
		}
		for i := range sh {
			if len(sh[i]) != len(ph[i]) {
				t.Fatalf("trial %d session %d: history lengths %d != %d", trial, i, len(sh[i]), len(ph[i]))
			}
			for j := range sh[i] {
				a, b := sh[i][j], ph[i][j]
				if a.Iteration != b.Iteration || a.Perf != b.Perf || !a.Config.Equal(b.Config) {
					t.Fatalf("trial %d session %d record %d: %+v != %+v", trial, i, j, a, b)
				}
			}
		}
		if seqRes.Restarts > 0 {
			sawRestart = true
		}
	}
	if !sawRestart {
		t.Fatal("no trial triggered a shift restart; the property was not exercised on the discard path")
	}
}

// figure5Telemetry runs a telemetry-instrumented Figure 5 at the given
// worker count and returns the merged trace, metrics and simprofile
// bytes plus the result.
func figure5Telemetry(t *testing.T, workers int, seed uint64, shift float64) (*Figure5Result, string, string, string) {
	t.Helper()
	col := telemetry.NewCollector()
	cfg := specLab(seed, workers)
	cfg.Telemetry = col
	cfg.TelemetryUnit = "figure5"
	cfg.SimProfile = true
	seq := []tpcw.Workload{tpcw.Browsing, tpcw.Ordering}
	res := RunFigure5(cfg, seq, 6, 3, harmony.Options{Seed: seed, ShiftFactor: shift, ShiftPatience: 2})
	var trace, metrics, profile bytes.Buffer
	if err := col.WriteTrace(&trace); err != nil {
		t.Fatal(err)
	}
	if err := col.WriteMetrics(&metrics); err != nil {
		t.Fatal(err)
	}
	if err := col.WriteSimProfile(&profile); err != nil {
		t.Fatal(err)
	}
	return res, trace.String(), metrics.String(), profile.String()
}

// TestFigure5TelemetryDeterministicAcrossWorkers pins the byte-equality
// contract at the collector level: traces, metrics and simprofile folded
// stacks from workers 1, 4 and 8 are identical, with and without shift
// detection. (The CLI-level golden test covers the same through webtune.)
func TestFigure5TelemetryDeterministicAcrossWorkers(t *testing.T) {
	for _, shift := range []float64{0, 0.1} {
		res1, trace1, metrics1, prof1 := figure5Telemetry(t, 1, 2, shift)
		if trace1 == "" || metrics1 == "" {
			t.Fatalf("shift %v: empty telemetry (trace %d bytes, metrics %d bytes)", shift, len(trace1), len(metrics1))
		}
		for _, workers := range []int{4, 8} {
			resN, traceN, metricsN, profN := figure5Telemetry(t, workers, 2, shift)
			if !reflect.DeepEqual(res1, resN) {
				t.Fatalf("shift %v: results differ at workers %d:\n%+v\n%+v", shift, workers, res1, resN)
			}
			if trace1 != traceN {
				t.Fatalf("shift %v: trace bytes differ at workers %d", shift, workers)
			}
			if metrics1 != metricsN {
				t.Fatalf("shift %v: metrics bytes differ at workers %d", shift, workers)
			}
			if prof1 != profN {
				t.Fatalf("shift %v: simprofile bytes differ at workers %d", shift, workers)
			}
		}
	}
}

// TestFigure5SpeculationStress drives the forked-lab fan-out as hard as
// the tiny scenario allows — more workers than candidates, shift
// detection firing constantly so speculative batches are repeatedly
// discarded mid-commit — and checks the result still matches the
// sequential run. Run under -race this doubles as the concurrency test
// for Fork/SnapshotConfigs/collector registration.
func TestFigure5SpeculationStress(t *testing.T) {
	seq := []tpcw.Workload{tpcw.Browsing, tpcw.Shopping, tpcw.Ordering}
	opts := harmony.Options{Seed: 11, ShiftFactor: 0.05, ShiftPatience: 1}
	want, _ := runFigure5(specLab(11, 1), seq, 5, 3, 1, opts)
	if want.Restarts == 0 {
		t.Fatal("stress scenario triggered no restarts; tighten ShiftFactor")
	}
	for run := 0; run < 3; run++ {
		got, _ := runFigure5(specLab(11, 8), seq, 5, 3, figure5Lookahead, opts)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("run %d: stressed speculative result diverged:\n%+v\n%+v", run, want, got)
		}
	}
}

// TestRecoveryIters pins the Figure5Result.Recovery semantics, including
// the edge cases the sequential implementation got wrong: a recovery on
// the phase's last iteration is reported as such (not conflated with
// "never recovered"), a switch past a truncated series yields
// RecoveryNone, and a truncated final phase is measured over the
// iterations that exist.
func TestRecoveryIters(t *testing.T) {
	cases := []struct {
		name     string
		wips     []float64
		switches []int
		phaseLen int
		want     []int
	}{
		{
			name:     "immediate recovery",
			wips:     []float64{50, 50, 100, 100, 100, 100},
			switches: []int{2},
			phaseLen: 4,
			want:     []int{1},
		},
		{
			name: "recovery only on the last iteration",
			// steady = mean(30, 100) = 65; band = 58.5; first v >= 58.5
			// is the 4th and final iteration (the old code returned
			// len(phase) for "never", making this case ambiguous).
			wips:     []float64{200, 200, 10, 20, 30, 100},
			switches: []int{2},
			phaseLen: 4,
			want:     []int{4},
		},
		{
			name:     "switch past a truncated series",
			wips:     []float64{50, 50},
			switches: []int{2},
			phaseLen: 4,
			want:     []int{RecoveryNone},
		},
		{
			name: "truncated final phase",
			// Last phase has only 3 of 10 iterations: steady covers its
			// actual tail, not out-of-range indices.
			wips:     []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 4, 90, 100},
			switches: []int{10},
			phaseLen: 10,
			want:     []int{2},
		},
		{
			name:     "NaN steady level never recovers",
			wips:     []float64{50, 50, math.NaN(), math.NaN()},
			switches: []int{2},
			phaseLen: 2,
			want:     []int{RecoveryNone},
		},
	}
	for _, tc := range cases {
		if got := recoveryIters(tc.wips, tc.switches, tc.phaseLen); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: recoveryIters = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestLabForkIndependence checks the fork mechanism itself: a fork
// inherits the parent's staged node configurations, derives a different
// seed, and measuring it leaves the parent's engine untouched.
func TestLabForkIndependence(t *testing.T) {
	parent := NewLab(specLab(5, 1), tpcw.Browsing)
	tiers := parent.Tiers()
	cfg := tiers[0].Space.DefaultConfig()
	cfg[0] = tiers[0].Space.Def(0).Min // a recognizably non-default value
	node := tiers[0].Nodes[0]
	parent.SetNodeConfig(node, cfg)

	fork := parent.Fork(3, tpcw.Ordering, "s00003")
	if !fork.NodeConfig(node).Equal(cfg) {
		t.Fatalf("fork did not inherit staged config: %v != %v", fork.NodeConfig(node), cfg)
	}
	if fork.Cfg.Seed == parent.Cfg.Seed {
		t.Fatal("fork reused the parent seed")
	}
	if fork.Cfg.Workers != 1 {
		t.Fatalf("fork Workers = %d, want 1", fork.Cfg.Workers)
	}
	m := fork.MeasureIteration(true)
	if m.WIPS <= 0 {
		t.Fatalf("fork measurement WIPS = %v, want > 0", m.WIPS)
	}
	if now := parent.Sys.Eng.Now(); now != 0 {
		t.Fatalf("measuring a fork advanced the parent engine to %v", now)
	}
	// Same (task, workload) twice → bit-identical measurement.
	m2 := parent.Fork(3, tpcw.Ordering, "again").MeasureIteration(true)
	if m.WIPS != m2.WIPS {
		t.Fatalf("fork measurement not reproducible: %v != %v", m.WIPS, m2.WIPS)
	}
}
