package core

import (
	"testing"

	"webharmony/internal/harmony"
	"webharmony/internal/tpcw"
)

// TestRunFigure4Shape runs a scaled-down Figure 4 and checks the paper's
// qualitative claims: tuning beats the default for every workload, and a
// configuration tuned for a workload performs at least as well on that
// workload as configurations tuned for the other workloads (within noise).
func TestRunFigure4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full tuning run")
	}
	res := RunFigure4(QuickLab(), 60, 5, harmony.Options{Seed: 4})
	for _, w := range tpcw.Workloads() {
		t.Logf("%v: default=%.1f tuned=%.1f (%.1f%%) cross=[%.1f %.1f %.1f]",
			w, res.Default[w], res.Matrix[w][w], 100*res.Improvement[w],
			res.Matrix[tpcw.Browsing][w], res.Matrix[tpcw.Shopping][w], res.Matrix[tpcw.Ordering][w])
	}
	for _, w := range tpcw.Workloads() {
		if res.Improvement[w] <= 0 {
			t.Errorf("%v: tuned config no better than default (%.1f%%)", w, 100*res.Improvement[w])
		}
		// The native configuration must be at least competitive with
		// foreign ones (small tolerance for measurement noise).
		for _, from := range tpcw.Workloads() {
			if from == w {
				continue
			}
			if res.Matrix[from][w] > res.Matrix[w][w]*1.05 {
				t.Errorf("config tuned for %v beats native config on %v: %.1f > %.1f",
					from, w, res.Matrix[from][w], res.Matrix[w][w])
			}
		}
	}
	// Table 3 direction: ordering needs more application threads than
	// browsing.
	asp := tierSpace(t, "app")
	bApp := res.Best[tpcw.Browsing][1] // TierApp == 1
	oApp := res.Best[tpcw.Ordering][1]
	bThreads := bApp[asp.IndexOf("maxProcessors")] + bApp[asp.IndexOf("AJPmaxProcessors")]
	oThreads := oApp[asp.IndexOf("maxProcessors")] + oApp[asp.IndexOf("AJPmaxProcessors")]
	t.Logf("threads: browsing=%d ordering=%d", bThreads, oThreads)
	if oThreads < bThreads {
		t.Logf("note: ordering tuned fewer threads than browsing in this short run")
	}
}

func tierSpace(t *testing.T, name string) interface{ IndexOf(string) int } {
	t.Helper()
	lab := NewLab(QuickLab(), tpcw.Shopping)
	for _, spec := range lab.Tiers() {
		if spec.Name == name {
			return spec.Space
		}
	}
	t.Fatalf("no tier %q", name)
	return nil
}

// TestRunTable4Shape runs a scaled-down Table 4 and checks the ordering of
// methods the paper reports: all tuning methods beat no tuning, and
// duplication converges in the fewest iterations.
func TestRunTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full tuning run")
	}
	cfg := QuickLab()
	cfg.Browsers = 400 // the 6-node cluster serves more clients
	res := RunTable4(cfg, 60, harmony.Options{Seed: 5})
	byName := map[string]Table4Row{}
	for _, r := range res.Rows {
		byName[r.Method] = r
		t.Logf("%-13s WIPS=%.1f σ=%.1f imp=%.1f%% iters=%d",
			r.Method, r.WIPS, r.StdDev, 100*r.Improvement, r.Iterations)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	base := byName["none"]
	for _, m := range []string{"default", "duplication", "partitioning", "hybrid"} {
		if byName[m].WIPS <= base.WIPS {
			t.Errorf("%s did not beat the no-tuning baseline", m)
		}
	}
	// The paper's ordering: duplication explores least, partitioning is in
	// between, the default single-server method needs the most iterations
	// before tuning takes effect (159 vs 33 vs 107 in Table 4).
	if !(byName["duplication"].Iterations < byName["partitioning"].Iterations &&
		byName["partitioning"].Iterations < byName["default"].Iterations) {
		t.Errorf("exploration ordering wrong: dup=%d part=%d def=%d",
			byName["duplication"].Iterations, byName["partitioning"].Iterations,
			byName["default"].Iterations)
	}
}
