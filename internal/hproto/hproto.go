// Package hproto implements the Active Harmony wire protocol: a JSON-lines
// dialect over TCP through which applications register their tunable
// parameters, fetch candidate configurations and report measured
// performance. It mirrors the client API of the real Active Harmony server
// (which the paper's modified Squid/Tomcat/MySQL wrappers call), so the
// tuning server can run as a separate process (cmd/harmonyd) from the
// system being tuned.
package hproto

import (
	"encoding/json"
	"fmt"

	"webharmony/internal/param"
)

// Op identifies a request type.
type Op string

// Protocol operations.
const (
	OpRegister Op = "register" // create a tuning session
	OpNext     Op = "next"     // fetch the next configuration to measure
	OpReport   Op = "report"   // report performance of the last config
	OpBest     Op = "best"     // query the best configuration so far
	OpRestart  Op = "restart"  // re-center the search (workload changed)
	OpList     Op = "list"     // list live sessions
	OpClose    Op = "close"    // drop a session
	OpSave     Op = "save"     // snapshot a session (deterministic replay)
	OpRestore  Op = "restore"  // recreate a session from a snapshot
)

// Request is one client → server message.
type Request struct {
	Op      Op     `json:"op"`
	Session string `json:"session,omitempty"`

	// Register fields.
	Params      []param.Def `json:"params,omitempty"`
	Algorithm   string      `json:"algorithm,omitempty"` // "", "nelder-mead", "random", "coordinate"
	Seed        uint64      `json:"seed,omitempty"`
	GuardFactor float64     `json:"guard_factor,omitempty"`
	ShiftFactor float64     `json:"shift_factor,omitempty"`

	// Report fields.
	Perf float64 `json:"perf,omitempty"`

	// Restore fields: a snapshot previously returned by OpSave.
	Snapshot json.RawMessage `json:"snapshot,omitempty"`
}

// Response is one server → client message.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`

	Config     param.Config     `json:"config,omitempty"`
	Values     map[string]int64 `json:"values,omitempty"`
	Perf       float64          `json:"perf,omitempty"`
	HavePerf   bool             `json:"have_perf,omitempty"`
	Iterations int              `json:"iterations,omitempty"`
	Sessions   []string         `json:"sessions,omitempty"`
	Snapshot   json.RawMessage  `json:"snapshot,omitempty"`
}

// Errorf builds a failed response.
func Errorf(format string, args ...any) Response {
	return Response{Error: fmt.Sprintf(format, args...)}
}

// MaxMessageSize bounds one wire message (the line, including the
// terminating newline). Legitimate messages are a few KB at most — the
// largest carries a snapshot of a tuning session — so the server drops a
// connection whose line exceeds this rather than buffering an unbounded
// frame from a misbehaving client.
const MaxMessageSize = 1 << 20

// DecodeRequest parses one request message (a JSON line; a trailing
// newline is tolerated). It is total: any input yields either a Request
// or an error, never a panic — the server feeds it bytes straight off the
// network, and FuzzDecodeMessage pins that property.
func DecodeRequest(line []byte) (Request, error) {
	var req Request
	if len(line) > MaxMessageSize {
		return Request{}, fmt.Errorf("hproto: message of %d bytes exceeds limit %d", len(line), MaxMessageSize)
	}
	if err := json.Unmarshal(line, &req); err != nil {
		return Request{}, err
	}
	return req, nil
}

// DecodeResponse parses one response message, with the same totality
// guarantee as DecodeRequest.
func DecodeResponse(line []byte) (Response, error) {
	var resp Response
	if len(line) > MaxMessageSize {
		return Response{}, fmt.Errorf("hproto: message of %d bytes exceeds limit %d", len(line), MaxMessageSize)
	}
	if err := json.Unmarshal(line, &resp); err != nil {
		return Response{}, err
	}
	return resp, nil
}

// EncodeLine marshals v followed by a newline.
func EncodeLine(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
