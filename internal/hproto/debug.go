package hproto

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
)

// serverStats holds one server's runtime counters. The expvar.Int values
// give atomic increments and consistent JSON rendering, but they are NOT
// registered in the process-global expvar namespace — registration there
// panics on duplicate names, and tests (or one process hosting several
// tuning servers) create many servers. DebugHandler exposes them instead.
type serverStats struct {
	sessionsCreated expvar.Int // sessions ever registered or restored
	asks            expvar.Int // next-configuration requests served
	tells           expvar.Int // performance reports accepted
	frames          expvar.Int // protocol frames decoded off the wire
	conns           expvar.Int // connections ever accepted
	connsOpen       expvar.Int // connections currently being served
}

// state returns the server's lifecycle phase for /debug/vars.
func (s *Server) state() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "closed"
	}
	if s.draining {
		return "draining"
	}
	return "running"
}

// setDraining flags a drain in progress; a no-op once the server closed.
func (s *Server) setDraining(v bool) {
	s.mu.Lock()
	if !s.closed {
		s.draining = v
	}
	s.mu.Unlock()
}

// liveSessions returns the number of currently registered sessions.
func (s *Server) liveSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// DebugHandler returns the server's runtime-introspection endpoints:
// /debug/vars with the protocol counters as expvar-style JSON,
// /debug/latency with per-operation wall-clock dispatch histograms
// (count, mean and deterministic log-bucket percentiles in microseconds),
// and the net/http/pprof profiling pages under /debug/pprof/. Serve it on
// a side listener (harmonyd -debug-addr); it is deliberately not merged
// into the tuning protocol port.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		vars := map[string]string{
			"sessions":         fmt.Sprintf("%d", s.liveSessions()),
			"sessions_created": s.stats.sessionsCreated.String(),
			"asks":             s.stats.asks.String(),
			"tells":            s.stats.tells.String(),
			"frames":           s.stats.frames.String(),
			"conns":            s.stats.conns.String(),
			"conns_open":       s.stats.connsOpen.String(),
			"drain_state":      fmt.Sprintf("%q", s.state()),
		}
		keys := make([]string, 0, len(vars))
		for k := range vars {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\n")
		for i, k := range keys {
			comma := ","
			if i == len(keys)-1 {
				comma = ""
			}
			fmt.Fprintf(w, "%q: %s%s\n", k, vars[k], comma)
		}
		fmt.Fprintf(w, "}\n")
	})
	mux.HandleFunc("/debug/latency", func(w http.ResponseWriter, r *http.Request) {
		snap := s.latencySnapshot()
		ops := make([]string, 0, len(snap))
		for op := range snap {
			ops = append(ops, string(op))
		}
		sort.Strings(ops)
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\n")
		for i, op := range ops {
			h := snap[Op(op)]
			comma := ","
			if i == len(ops)-1 {
				comma = ""
			}
			fmt.Fprintf(w,
				"%q: {\"count\": %d, \"mean_us\": %.1f, \"p50_us\": %d, \"p95_us\": %d, \"p99_us\": %d, \"max_us\": %d}%s\n",
				op, h.N(), h.Mean(),
				h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max(), comma)
		}
		fmt.Fprintf(w, "}\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
