package hproto

import (
	"sync"
	"testing"

	"webharmony/internal/param"
)

func testDefs() []param.Def {
	return []param.Def{
		{Name: "x", Min: 0, Max: 100, Default: 10, Step: 1},
		{Name: "y", Min: 0, Max: 100, Default: 90, Step: 1},
	}
}

func newPair(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

func TestRegisterNextReportBest(t *testing.T) {
	_, c := newPair(t)
	if err := c.Register("s1", testDefs(), "", 1); err != nil {
		t.Fatal(err)
	}
	// Drive a few tuning iterations over the wire: performance peaks at
	// x=70, y=30.
	for i := 0; i < 60; i++ {
		cfg, values, err := c.Next("s1")
		if err != nil {
			t.Fatal(err)
		}
		if len(cfg) != 2 {
			t.Fatalf("config = %v", cfg)
		}
		if values["x"] != cfg[0] || values["y"] != cfg[1] {
			t.Fatalf("values map mismatch: %v vs %v", values, cfg)
		}
		dx := float64(cfg[0]) - 70
		dy := float64(cfg[1]) - 30
		if err := c.Report("s1", 1000-(dx*dx+dy*dy)/10); err != nil {
			t.Fatal(err)
		}
	}
	cfg, perf, have, err := c.Best("s1")
	if err != nil {
		t.Fatal(err)
	}
	if !have || perf <= 0 {
		t.Fatalf("no best: perf=%v have=%v", perf, have)
	}
	dx := float64(cfg[0]) - 70
	dy := float64(cfg[1]) - 30
	if dx*dx+dy*dy > 3000 {
		t.Fatalf("best config %v far from the peak", cfg)
	}
}

func TestRegisterValidation(t *testing.T) {
	_, c := newPair(t)
	if err := c.Register("", testDefs(), "", 1); err == nil {
		t.Fatal("empty session accepted")
	}
	if err := c.Register("s", nil, "", 1); err == nil {
		t.Fatal("no params accepted")
	}
	if err := c.Register("s", testDefs(), "simulated-annealing", 1); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	bad := []param.Def{{Name: "x", Min: 10, Max: 0, Default: 5, Step: 1}}
	if err := c.Register("s", bad, "", 1); err == nil {
		t.Fatal("invalid def accepted")
	}
	if err := c.Register("s", testDefs(), "random", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("s", testDefs(), "", 1); err == nil {
		t.Fatal("duplicate session accepted")
	}
}

func TestReportWithoutNextFails(t *testing.T) {
	_, c := newPair(t)
	if err := c.Register("s", testDefs(), "", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Report("s", 1); err == nil {
		t.Fatal("report without next accepted")
	}
}

func TestUnknownSessionFails(t *testing.T) {
	_, c := newPair(t)
	if _, _, err := c.Next("ghost"); err == nil {
		t.Fatal("unknown session accepted")
	}
}

func TestUnknownOp(t *testing.T) {
	_, c := newPair(t)
	if err := c.Register("s", testDefs(), "", 1); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Do(Request{Op: "dance", Session: "s"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("unknown op accepted")
	}
}

func TestMalformedLineGetsErrorResponse(t *testing.T) {
	srv, _ := newPair(t)
	c2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.conn.Write([]byte("{not json\n")); err != nil {
		t.Fatal(err)
	}
	line, err := c2.r.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	if len(line) == 0 {
		t.Fatal("no response to malformed line")
	}
}

func TestListAndClose(t *testing.T) {
	_, c := newPair(t)
	c.Register("b", testDefs(), "", 1)
	c.Register("a", testDefs(), "", 1)
	resp, err := c.Do(Request{Op: OpList})
	if err != nil || !resp.OK {
		t.Fatalf("list failed: %v %v", err, resp.Error)
	}
	if len(resp.Sessions) != 2 || resp.Sessions[0] != "a" || resp.Sessions[1] != "b" {
		t.Fatalf("sessions = %v", resp.Sessions)
	}
	if resp, _ := c.Do(Request{Op: OpClose, Session: "a"}); !resp.OK {
		t.Fatal("close failed")
	}
	if resp, _ := c.Do(Request{Op: OpClose, Session: "a"}); resp.OK {
		t.Fatal("double close accepted")
	}
}

func TestRestartOverWire(t *testing.T) {
	_, c := newPair(t)
	c.Register("s", testDefs(), "", 1)
	cfg, _, _ := c.Next("s")
	_ = cfg
	c.Report("s", 50)
	if resp, _ := c.Do(Request{Op: OpRestart, Session: "s"}); !resp.OK {
		t.Fatal("restart failed")
	}
	// After restart, Best is cleared.
	_, _, have, err := c.Best("s")
	if err != nil {
		t.Fatal(err)
	}
	if have {
		t.Fatal("best survived restart")
	}
}

func TestConcurrentSessions(t *testing.T) {
	srv, _ := newPair(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			name := string(rune('a' + g))
			if err := c.Register(name, testDefs(), "", uint64(g)); err != nil {
				errs <- err
				return
			}
			for i := 0; i < 30; i++ {
				cfg, _, err := c.Next(name)
				if err != nil {
					errs <- err
					return
				}
				if err := c.Report(name, float64(cfg[0])); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServerCloseStopsAccepting(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if err := srv.Close(); err != nil {
		// Close error from the listener is acceptable; what matters is
		// that new connections fail below.
		_ = err
	}
	if c, err := Dial(addr); err == nil {
		c.Close()
		t.Fatal("dial succeeded after Close")
	}
}

func TestSaveRestoreOverWire(t *testing.T) {
	_, c := newPair(t)
	if err := c.Register("s", testDefs(), "", 17); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		cfg, _, err := c.Next("s")
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Report("s", float64(200-cfg[0])); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := c.Do(Request{Op: OpSave, Session: "s"})
	if err != nil || !resp.OK {
		t.Fatalf("save failed: %v %v", err, resp.Error)
	}
	if len(resp.Snapshot) == 0 {
		t.Fatal("empty snapshot")
	}
	// Restore under a new name; it must continue where the original is.
	resp2, err := c.Do(Request{Op: OpRestore, Session: "s2", Snapshot: resp.Snapshot})
	if err != nil || !resp2.OK {
		t.Fatalf("restore failed: %v %v", err, resp2.Error)
	}
	if resp2.Iterations != 25 {
		t.Fatalf("restored iterations = %d, want 25", resp2.Iterations)
	}
	c1, _, err := c.Next("s")
	if err != nil {
		t.Fatal(err)
	}
	c2, _, err := c.Next("s2")
	if err != nil {
		t.Fatal(err)
	}
	if !c1.Equal(c2) {
		t.Fatalf("restored session diverged: %v vs %v", c1, c2)
	}
}

func TestSaveWithPendingProposalFails(t *testing.T) {
	_, c := newPair(t)
	c.Register("s", testDefs(), "", 1)
	c.Next("s")
	resp, err := c.Do(Request{Op: OpSave, Session: "s"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("save with pending proposal accepted")
	}
}

func TestRestoreValidationOverWire(t *testing.T) {
	_, c := newPair(t)
	resp, _ := c.Do(Request{Op: OpRestore, Session: "x", Snapshot: []byte("{bad")})
	if resp.OK {
		t.Fatal("garbage snapshot accepted")
	}
	resp, _ = c.Do(Request{Op: OpRestore, Session: "", Snapshot: []byte("{}")})
	if resp.OK {
		t.Fatal("empty session name accepted")
	}
	// Duplicate name.
	c.Register("dup", testDefs(), "", 1)
	c.Next("dup")
	c.Report("dup", 1)
	save, _ := c.Do(Request{Op: OpSave, Session: "dup"})
	resp, _ = c.Do(Request{Op: OpRestore, Session: "dup", Snapshot: save.Snapshot})
	if resp.OK {
		t.Fatal("duplicate restore accepted")
	}
}
