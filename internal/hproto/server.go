package hproto

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"webharmony/internal/harmony"
	"webharmony/internal/param"
	"webharmony/internal/stats"
)

// Server is a network-facing Active Harmony tuning server. Sessions are
// shared across connections (several servers of a cluster may report into
// one session, or each may own its own), matching the deployment in §III.B
// where one tuning server drives many nodes.
type Server struct {
	ln net.Listener

	mu       sync.Mutex
	sessions map[string]*sessionState
	conns    map[net.Conn]struct{} // live accepted connections
	closed   bool
	draining bool // a DrainClose is in progress
	wg       sync.WaitGroup

	stats serverStats // runtime counters, exposed via DebugHandler

	// Per-operation wall-clock dispatch latency, the real-path twin of
	// the simulator's span histograms: same log-bucketed stats.LatencyHist,
	// observed in microseconds, exposed via /debug/latency.
	latMu sync.Mutex
	lat   map[Op]*stats.LatencyHist
}

type sessionState struct {
	mu      sync.Mutex
	space   *param.Space
	session *harmony.Session
	pending bool // a config has been handed out and awaits a report
}

// NewServer starts a tuning server listening on addr (e.g. "127.0.0.1:0").
func NewServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln:       ln,
		sessions: make(map[string]*sessionState),
		conns:    make(map[net.Conn]struct{}),
		lat:      make(map[Op]*stats.LatencyHist),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener, closes every live connection and waits for
// the connection handlers to finish. Without closing the connections a
// handler idle in a read would block Close forever (clients hold their
// connection open between requests). Close is idempotent; concurrent and
// repeated calls wait for the same shutdown and return nil.
func (s *Server) Close() error {
	return s.shutdown(func(c net.Conn) { _ = c.Close() })
}

// DrainClose stops the listener, then gives live connections up to d to
// finish before they are cut: instead of closing each connection it arms
// an absolute read/write deadline d from now, so a handler that has just
// read a request can still compute and write its response, and clients
// that close their side release their handler immediately via EOF. The
// server cannot tell an idle keep-alive connection from one whose request
// is about to arrive, so a client that simply stays connected holds its
// handler until the deadline expires — d bounds the drain, it is not a
// minimum. Like Close, DrainClose is idempotent; if a shutdown is already
// running it waits for that shutdown instead of starting another.
func (s *Server) DrainClose(d time.Duration) error {
	deadline := time.Now().Add(d)
	s.setDraining(true)
	defer s.setDraining(false)
	return s.shutdown(func(c net.Conn) { _ = c.SetDeadline(deadline) })
}

// shutdown runs the shared close sequence: mark the server closed, stop
// the listener, apply cut to every live connection (close it outright or
// arm a drain deadline) and wait for all handlers to return.
func (s *Server) shutdown(cut func(net.Conn)) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	err := s.ln.Close()
	for _, c := range conns {
		cut(c) // unblocks handlers parked in a read, now or at the deadline
	}
	s.wg.Wait()
	return err
}

// track records an accepted connection so Close can unblock its handler.
// It reports false when the server is already closed (the connection was
// accepted in the window before the listener shut); the handler must then
// drop the connection immediately instead of serving it.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	s.stats.conns.Add(1)
	s.stats.connsOpen.Add(1)
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.stats.connsOpen.Add(-1)
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	if !s.track(conn) {
		return
	}
	defer s.untrack(conn)
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		line, err := readLine(r, MaxMessageSize)
		if err != nil {
			if err != io.EOF {
				// Connection-level failure (or an oversized frame);
				// nothing to report to.
				_ = err
			}
			return
		}
		s.stats.frames.Add(1)
		var resp Response
		if req, err := DecodeRequest(line); err != nil {
			resp = Errorf("bad request: %v", err)
		} else {
			t0 := time.Now()
			resp = s.dispatch(req)
			s.observeLatency(req.Op, time.Since(t0).Microseconds())
		}
		out, err := EncodeLine(resp)
		if err != nil {
			out, _ = EncodeLine(Errorf("encode: %v", err))
		}
		if _, err := w.Write(out); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// readLine reads one newline-terminated message, failing once the line
// grows past max bytes so a misbehaving client cannot make the server
// buffer an unbounded frame. (bufio.Reader.ReadBytes has no such bound.)
func readLine(r *bufio.Reader, max int) ([]byte, error) {
	var line []byte
	for {
		chunk, err := r.ReadSlice('\n')
		line = append(line, chunk...)
		if err == bufio.ErrBufferFull {
			if len(line) > max {
				return nil, fmt.Errorf("hproto: message exceeds %d bytes", max)
			}
			continue
		}
		return line, err
	}
}

// observeLatency folds one dispatch duration into the op's histogram.
func (s *Server) observeLatency(op Op, us int64) {
	s.latMu.Lock()
	h := s.lat[op]
	if h == nil {
		h = new(stats.LatencyHist)
		s.lat[op] = h
	}
	h.Observe(us)
	s.latMu.Unlock()
}

// latencySnapshot copies the per-op histograms for lock-free reporting.
func (s *Server) latencySnapshot() map[Op]stats.LatencyHist {
	s.latMu.Lock()
	defer s.latMu.Unlock()
	out := make(map[Op]stats.LatencyHist, len(s.lat))
	for op, h := range s.lat {
		out[op] = *h
	}
	return out
}

func (s *Server) get(name string) (*sessionState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.sessions[name]
	return st, ok
}

func (s *Server) dispatch(req Request) Response {
	switch req.Op {
	case OpRegister:
		return s.register(req)
	case OpList:
		s.mu.Lock()
		names := make([]string, 0, len(s.sessions))
		for n := range s.sessions {
			names = append(names, n)
		}
		s.mu.Unlock()
		sort.Strings(names)
		return Response{OK: true, Sessions: names}
	case OpClose:
		s.mu.Lock()
		_, ok := s.sessions[req.Session]
		delete(s.sessions, req.Session)
		s.mu.Unlock()
		if !ok {
			return Errorf("no session %q", req.Session)
		}
		return Response{OK: true}
	case OpRestore:
		return s.restore(req)
	}

	st, ok := s.get(req.Session)
	if !ok {
		return Errorf("no session %q", req.Session)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	switch req.Op {
	case OpNext:
		cfg := st.session.NextConfig()
		st.pending = true
		s.stats.asks.Add(1)
		return Response{OK: true, Config: cfg, Values: cfg.Map(st.space)}
	case OpReport:
		if !st.pending {
			return Errorf("report without a pending configuration")
		}
		st.session.Report(req.Perf)
		st.pending = false
		s.stats.tells.Add(1)
		return Response{OK: true, Iterations: st.session.Iterations()}
	case OpBest:
		cfg, perf, have := st.session.Best()
		return Response{
			OK: true, Config: cfg, Values: cfg.Map(st.space),
			Perf: perf, HavePerf: have,
			Iterations: st.session.Iterations(),
		}
	case OpRestart:
		st.session.Restart()
		st.pending = false
		return Response{OK: true}
	case OpSave:
		snap, err := st.session.Save()
		if err != nil {
			return Errorf("save: %v", err)
		}
		data, err := snap.Marshal()
		if err != nil {
			return Errorf("save: %v", err)
		}
		return Response{OK: true, Snapshot: data}
	default:
		return Errorf("unknown op %q", req.Op)
	}
}

func (s *Server) register(req Request) Response {
	if req.Session == "" {
		return Errorf("register: empty session name")
	}
	if len(req.Params) == 0 {
		return Errorf("register: no parameters")
	}
	space, err := param.NewSpace(req.Params...)
	if err != nil {
		return Errorf("register: %v", err)
	}
	var algo harmony.Algorithm
	switch req.Algorithm {
	case "", "nelder-mead":
		algo = harmony.AlgoNelderMead
	case "random":
		algo = harmony.AlgoRandom
	case "coordinate":
		algo = harmony.AlgoCoordinate
	case "annealing":
		algo = harmony.AlgoAnnealing
	default:
		return Errorf("register: unknown algorithm %q", req.Algorithm)
	}
	sess := harmony.NewSession(space, harmony.Options{
		Algorithm:   algo,
		Seed:        req.Seed,
		GuardFactor: req.GuardFactor,
		ShiftFactor: req.ShiftFactor,
	})
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Errorf("server closed")
	}
	if _, dup := s.sessions[req.Session]; dup {
		return Errorf("register: session %q exists", req.Session)
	}
	s.sessions[req.Session] = &sessionState{space: space, session: sess}
	s.stats.sessionsCreated.Add(1)
	return Response{OK: true}
}

// restore recreates a session from a snapshot by deterministic replay.
func (s *Server) restore(req Request) Response {
	if req.Session == "" {
		return Errorf("restore: empty session name")
	}
	snap, err := harmony.LoadSnapshot(req.Snapshot)
	if err != nil {
		return Errorf("restore: %v", err)
	}
	sess, err := harmony.Restore(snap)
	if err != nil {
		return Errorf("restore: %v", err)
	}
	space, err := param.NewSpace(snap.Params...)
	if err != nil {
		return Errorf("restore: %v", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Errorf("server closed")
	}
	if _, dup := s.sessions[req.Session]; dup {
		return Errorf("restore: session %q exists", req.Session)
	}
	s.sessions[req.Session] = &sessionState{space: space, session: sess}
	s.stats.sessionsCreated.Add(1)
	return Response{OK: true, Iterations: sess.Iterations()}
}

// Client is a connection to a tuning server.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	mu   sync.Mutex
}

// Dial connects to a tuning server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends one request and reads one response. Safe for concurrent use.
func (c *Client) Do(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out, err := EncodeLine(req)
	if err != nil {
		return Response{}, err
	}
	if _, err := c.conn.Write(out); err != nil {
		return Response{}, err
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return Response{}, err
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return Response{}, err
	}
	if !resp.OK && resp.Error == "" {
		resp.Error = "unknown server error"
	}
	return resp, nil
}

// Register creates a session with the given parameters.
func (c *Client) Register(session string, defs []param.Def, algorithm string, seed uint64) error {
	resp, err := c.Do(Request{Op: OpRegister, Session: session, Params: defs, Algorithm: algorithm, Seed: seed})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("hproto: %s", resp.Error)
	}
	return nil
}

// Next fetches the next configuration to measure.
func (c *Client) Next(session string) (param.Config, map[string]int64, error) {
	resp, err := c.Do(Request{Op: OpNext, Session: session})
	if err != nil {
		return nil, nil, err
	}
	if !resp.OK {
		return nil, nil, fmt.Errorf("hproto: %s", resp.Error)
	}
	return resp.Config, resp.Values, nil
}

// Report submits the measured performance for the last Next.
func (c *Client) Report(session string, perf float64) error {
	resp, err := c.Do(Request{Op: OpReport, Session: session, Perf: perf})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("hproto: %s", resp.Error)
	}
	return nil
}

// Best returns the best configuration and performance so far.
func (c *Client) Best(session string) (param.Config, float64, bool, error) {
	resp, err := c.Do(Request{Op: OpBest, Session: session})
	if err != nil {
		return nil, 0, false, err
	}
	if !resp.OK {
		return nil, 0, false, fmt.Errorf("hproto: %s", resp.Error)
	}
	return resp.Config, resp.Perf, resp.HavePerf, nil
}
