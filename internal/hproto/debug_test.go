package hproto

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"webharmony/internal/param"
)

// debugVars fetches and decodes the /debug/vars document.
func debugVars(t *testing.T, url string) map[string]json.RawMessage {
	t.Helper()
	resp, err := http.Get(url + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("bad /debug/vars JSON %q: %v", body, err)
	}
	return vars
}

func intVar(t *testing.T, vars map[string]json.RawMessage, key string) int {
	t.Helper()
	raw, ok := vars[key]
	if !ok {
		t.Fatalf("missing key %q in /debug/vars", key)
	}
	n, err := strconv.Atoi(string(raw))
	if err != nil {
		t.Fatalf("key %q = %s, want an integer", key, raw)
	}
	return n
}

func stringVar(t *testing.T, vars map[string]json.RawMessage, key string) string {
	t.Helper()
	var s string
	if err := json.Unmarshal(vars[key], &s); err != nil {
		t.Fatalf("key %q = %s, want a string", key, vars[key])
	}
	return s
}

// TestDebugHandlerCounters drives a scripted client session against the
// tuning server and asserts the introspection counters advance with it.
func TestDebugHandlerCounters(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	web := httptest.NewServer(srv.DebugHandler())
	defer web.Close()

	vars := debugVars(t, web.URL)
	for _, key := range []string{"sessions", "sessions_created", "asks", "tells",
		"frames", "conns", "conns_open", "drain_state"} {
		if _, ok := vars[key]; !ok {
			t.Errorf("missing key %q in /debug/vars", key)
		}
	}
	if got := stringVar(t, vars, "drain_state"); got != "running" {
		t.Errorf("drain_state = %q, want \"running\"", got)
	}
	if got := intVar(t, vars, "sessions"); got != 0 {
		t.Errorf("sessions = %d before any register, want 0", got)
	}

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	defs := []param.Def{{Name: "threads", Min: 1, Max: 64, Default: 8, Step: 1}}
	if err := c.Register("web", defs, "", 1); err != nil {
		t.Fatal(err)
	}
	const rounds = 3
	for i := 0; i < rounds; i++ {
		if _, _, err := c.Next("web"); err != nil {
			t.Fatal(err)
		}
		if err := c.Report("web", float64(100+i)); err != nil {
			t.Fatal(err)
		}
	}

	vars = debugVars(t, web.URL)
	if got := intVar(t, vars, "sessions"); got != 1 {
		t.Errorf("sessions = %d, want 1", got)
	}
	if got := intVar(t, vars, "sessions_created"); got != 1 {
		t.Errorf("sessions_created = %d, want 1", got)
	}
	if got := intVar(t, vars, "asks"); got != rounds {
		t.Errorf("asks = %d, want %d", got, rounds)
	}
	if got := intVar(t, vars, "tells"); got != rounds {
		t.Errorf("tells = %d, want %d", got, rounds)
	}
	// register + rounds x (next + report)
	if got := intVar(t, vars, "frames"); got != 1+2*rounds {
		t.Errorf("frames = %d, want %d", got, 1+2*rounds)
	}
	if got := intVar(t, vars, "conns"); got != 1 {
		t.Errorf("conns = %d, want 1", got)
	}
	if got := intVar(t, vars, "conns_open"); got != 1 {
		t.Errorf("conns_open = %d, want 1", got)
	}
}

// TestDebugLatencyHistograms drives the protocol and asserts /debug/latency
// reports a per-operation histogram with consistent summary statistics.
func TestDebugLatencyHistograms(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	web := httptest.NewServer(srv.DebugHandler())
	defer web.Close()

	fetch := func() map[string]struct {
		Count  int64   `json:"count"`
		MeanUS float64 `json:"mean_us"`
		P50US  int64   `json:"p50_us"`
		P95US  int64   `json:"p95_us"`
		P99US  int64   `json:"p99_us"`
		MaxUS  int64   `json:"max_us"`
	} {
		t.Helper()
		resp, err := http.Get(web.URL + "/debug/latency")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]struct {
			Count  int64   `json:"count"`
			MeanUS float64 `json:"mean_us"`
			P50US  int64   `json:"p50_us"`
			P95US  int64   `json:"p95_us"`
			P99US  int64   `json:"p99_us"`
			MaxUS  int64   `json:"max_us"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("bad /debug/latency JSON %q: %v", body, err)
		}
		return out
	}

	if got := fetch(); len(got) != 0 {
		t.Fatalf("/debug/latency before any request = %v, want empty", got)
	}

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	defs := []param.Def{{Name: "threads", Min: 1, Max: 64, Default: 8, Step: 1}}
	if err := c.Register("web", defs, "", 1); err != nil {
		t.Fatal(err)
	}
	const rounds = 5
	for i := 0; i < rounds; i++ {
		if _, _, err := c.Next("web"); err != nil {
			t.Fatal(err)
		}
		if err := c.Report("web", float64(100+i)); err != nil {
			t.Fatal(err)
		}
	}

	lat := fetch()
	if got, ok := lat["register"]; !ok || got.Count != 1 {
		t.Errorf("register histogram = %+v, want count 1", got)
	}
	for _, op := range []string{"next", "report"} {
		h, ok := lat[op]
		if !ok {
			t.Fatalf("missing op %q in /debug/latency: %v", op, lat)
		}
		if h.Count != rounds {
			t.Errorf("%s count = %d, want %d", op, h.Count, rounds)
		}
		if h.P50US > h.P95US || h.P95US > h.P99US || h.P99US > h.MaxUS {
			t.Errorf("%s quantiles not monotone: %+v", op, h)
		}
		if h.MeanUS < 0 {
			t.Errorf("%s mean_us = %f, want >= 0", op, h.MeanUS)
		}
	}
	if _, ok := lat["best"]; ok {
		t.Error("/debug/latency reports an op that was never dispatched")
	}
}

// TestDebugHandlerDrainState checks the lifecycle phases land in
// /debug/vars: running -> closed via Close, with DrainClose reporting the
// same terminal state.
func TestDebugHandlerDrainState(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	web := httptest.NewServer(srv.DebugHandler())
	defer web.Close()

	if got := stringVar(t, debugVars(t, web.URL), "drain_state"); got != "running" {
		t.Fatalf("drain_state = %q, want \"running\"", got)
	}
	if err := srv.DrainClose(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := stringVar(t, debugVars(t, web.URL), "drain_state"); got != "closed" {
		t.Errorf("drain_state after DrainClose = %q, want \"closed\"", got)
	}
}

// TestTwoServersIndependentStats guards the design choice of per-server
// (unregistered) expvar counters: two servers in one process must not
// collide in a global namespace or share counts.
func TestTwoServersIndependentStats(t *testing.T) {
	a, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	webA := httptest.NewServer(a.DebugHandler())
	defer webA.Close()
	webB := httptest.NewServer(b.DebugHandler())
	defer webB.Close()

	c, err := Dial(a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	defs := []param.Def{{Name: "threads", Min: 1, Max: 64, Default: 8, Step: 1}}
	if err := c.Register("only-on-a", defs, "", 1); err != nil {
		t.Fatal(err)
	}

	if got := intVar(t, debugVars(t, webA.URL), "sessions_created"); got != 1 {
		t.Errorf("server A sessions_created = %d, want 1", got)
	}
	if got := intVar(t, debugVars(t, webB.URL), "sessions_created"); got != 0 {
		t.Errorf("server B sessions_created = %d, want 0", got)
	}
}
