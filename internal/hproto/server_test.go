package hproto

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestCloseReturnsWithIdleClient is the regression test for the shutdown
// hang: a client that has completed a request and sits idle keeps its
// connection open, leaving the server's handler parked in a read. Close
// must close the connection to unblock the handler rather than waiting on
// it forever.
func TestCloseReturnsWithIdleClient(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Complete one round trip so the handler goroutine is provably up and
	// back in its blocking read when Close runs.
	if err := c.Register("idle", testDefs(), "", 1); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Server.Close hung with an idle client connected")
	}

	// The client's connection was closed server-side: the next request
	// must fail rather than hang.
	if _, _, err := c.Next("idle"); err == nil {
		t.Error("request succeeded after server Close")
	}
}

// TestCloseIdempotent verifies repeated and concurrent Close calls all
// return promptly.
func TestCloseIdempotent(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.Close()
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("concurrent Close calls hung")
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close after Close: %v", err)
	}
}

// TestConcurrentConnectCloseStress hammers the server with clients
// connecting, registering and querying while Close runs, to surface
// unsynchronized state (run under -race). Close must return promptly no
// matter where each connection is in its lifecycle.
func TestConcurrentConnectCloseStress(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; ; n++ {
				c, err := Dial(addr)
				if err != nil {
					return // listener closed
				}
				name := fmt.Sprintf("s%d-%d", i, n)
				// Errors are expected once shutdown begins; the loop only
				// ends when the listener stops accepting.
				if err := c.Register(name, testDefs(), "", 1); err == nil {
					if _, _, err := c.Next(name); err == nil {
						c.Report(name, 1)
					}
				}
				c.Close()
			}
		}(i)
	}

	time.Sleep(20 * time.Millisecond) // let connections churn
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Server.Close hung during concurrent connects")
	}
	wg.Wait()
}
