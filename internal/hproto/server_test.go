package hproto

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestCloseReturnsWithIdleClient is the regression test for the shutdown
// hang: a client that has completed a request and sits idle keeps its
// connection open, leaving the server's handler parked in a read. Close
// must close the connection to unblock the handler rather than waiting on
// it forever.
func TestCloseReturnsWithIdleClient(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Complete one round trip so the handler goroutine is provably up and
	// back in its blocking read when Close runs.
	if err := c.Register("idle", testDefs(), "", 1); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Server.Close hung with an idle client connected")
	}

	// The client's connection was closed server-side: the next request
	// must fail rather than hang.
	if _, _, err := c.Next("idle"); err == nil {
		t.Error("request succeeded after server Close")
	}
}

// TestCloseIdempotent verifies repeated and concurrent Close calls all
// return promptly.
func TestCloseIdempotent(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.Close()
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("concurrent Close calls hung")
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close after Close: %v", err)
	}
}

// TestConcurrentConnectCloseStress hammers the server with clients
// connecting, registering and querying while Close runs, to surface
// unsynchronized state (run under -race). Close must return promptly no
// matter where each connection is in its lifecycle.
func TestConcurrentConnectCloseStress(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; ; n++ {
				c, err := Dial(addr)
				if err != nil {
					return // listener closed
				}
				name := fmt.Sprintf("s%d-%d", i, n)
				// Errors are expected once shutdown begins; the loop only
				// ends when the listener stops accepting.
				if err := c.Register(name, testDefs(), "", 1); err == nil {
					if _, _, err := c.Next(name); err == nil {
						c.Report(name, 1)
					}
				}
				c.Close()
			}
		}(i)
	}

	time.Sleep(20 * time.Millisecond) // let connections churn
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Server.Close hung during concurrent connects")
	}
	wg.Wait()
}

// TestDrainCloseServesInFlightRequests pins the graceful path: during the
// drain window an already-connected client can still complete a request
// and gets a real response; once it closes its side, DrainClose returns
// without waiting out the rest of the (deliberately long) window.
func TestDrainCloseServesInFlightRequests(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// One round trip so the handler is provably up before the drain starts.
	if err := c.Register("drain", testDefs(), "", 1); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- srv.DrainClose(30 * time.Second) }()
	time.Sleep(20 * time.Millisecond) // let the drain deadline arm

	start := time.Now()
	if _, _, err := c.Next("drain"); err != nil {
		t.Fatalf("request during the drain window failed: %v", err)
	}
	c.Close() // client done; its handler sees EOF and exits

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("DrainClose: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("DrainClose waited for the full window after the last client left")
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("DrainClose took %v, want a prompt return once clients are gone", waited)
	}
}

// TestDrainCloseCutsIdleClientAtDeadline pins the timeout path: a client
// that holds its connection open without sending anything cannot stall
// shutdown past the drain window — the armed deadline fails the handler's
// read and DrainClose returns.
func TestDrainCloseCutsIdleClientAtDeadline(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Register("stuck", testDefs(), "", 1); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- srv.DrainClose(100 * time.Millisecond) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("DrainClose: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("DrainClose hung on a client that never disconnects")
	}

	// The connection's deadline has expired server-side: the next request
	// must fail rather than hang.
	if _, _, err := c.Next("stuck"); err == nil {
		t.Error("request succeeded after the drain deadline cut the connection")
	}
}

// TestDrainCloseIdempotentWithClose verifies a DrainClose racing plain
// Close (and repeated DrainClose calls) all settle on one shutdown.
func TestDrainCloseIdempotentWithClose(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				srv.DrainClose(50 * time.Millisecond)
			} else {
				srv.Close()
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("concurrent DrainClose/Close calls hung")
	}
	if err := srv.DrainClose(time.Second); err != nil {
		t.Errorf("DrainClose after shutdown: %v", err)
	}
}
