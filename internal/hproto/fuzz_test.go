package hproto

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"webharmony/internal/param"
)

// fuzzSeeds are well-formed wire messages covering every operation plus a
// few malformed shapes; the checked-in corpus under testdata/fuzz mirrors
// and extends them.
var fuzzSeeds = []string{
	`{"op":"register","session":"s","params":[{"name":"threads","min":1,"max":64,"default":8,"step":1}],"algorithm":"nelder-mead","seed":7}`,
	`{"op":"next","session":"s"}`,
	`{"op":"report","session":"s","perf":132.75}`,
	`{"op":"best","session":"s"}`,
	`{"op":"restart","session":"s"}`,
	`{"op":"list"}`,
	`{"op":"close","session":"s"}`,
	`{"op":"save","session":"s"}`,
	`{"op":"restore","session":"s","snapshot":{"params":[],"history":[1,2,3]}}`,
	`{"ok":true,"config":[8,16],"values":{"threads":8},"perf":1.5,"have_perf":true,"iterations":12}`,
	`{"ok":false,"error":"no session \"x\""}`,
	`{"op":"register","params":[{"name":"x","min":9,"max":1,"default":5,"step":0}]}`,
	`{"op":123}`,
	`{"op":"next","session":` + `"` + strings.Repeat("a", 100) + `"}`,
	`not json at all`,
	`{}`,
	``,
}

// FuzzDecodeMessage fuzzes the wire-message parsing layer on both sides
// of the protocol. Invariants: decoding never panics on any input; a
// successfully decoded message re-encodes without error; and
// encode∘decode is idempotent — re-decoding the canonical encoding and
// encoding again reproduces it byte for byte (so a server relaying a
// message cannot drift).
func FuzzDecodeMessage(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := DecodeRequest(data); err == nil {
			b1, err := EncodeLine(req)
			if err != nil {
				t.Fatalf("decoded request %q does not re-encode: %v", data, err)
			}
			req2, err := DecodeRequest(b1)
			if err != nil {
				t.Fatalf("canonical encoding %q does not decode: %v", b1, err)
			}
			b2, err := EncodeLine(req2)
			if err != nil {
				t.Fatalf("re-decoded request does not encode: %v", err)
			}
			if !bytes.Equal(b1, b2) {
				t.Errorf("request encoding not idempotent:\n first %q\nsecond %q", b1, b2)
			}
		}
		if resp, err := DecodeResponse(data); err == nil {
			b1, err := EncodeLine(resp)
			if err != nil {
				t.Fatalf("decoded response %q does not re-encode: %v", data, err)
			}
			resp2, err := DecodeResponse(b1)
			if err != nil {
				t.Fatalf("canonical encoding %q does not decode: %v", b1, err)
			}
			b2, err := EncodeLine(resp2)
			if err != nil {
				t.Fatalf("re-decoded response does not encode: %v", err)
			}
			if !bytes.Equal(b1, b2) {
				t.Errorf("response encoding not idempotent:\n first %q\nsecond %q", b1, b2)
			}
		}
	})
}

func TestDecodeRequest(t *testing.T) {
	req, err := DecodeRequest([]byte(fuzzSeeds[0] + "\n"))
	if err != nil {
		t.Fatalf("decode with trailing newline failed: %v", err)
	}
	if req.Op != OpRegister || req.Session != "s" || len(req.Params) != 1 || req.Seed != 7 {
		t.Errorf("decoded request = %+v", req)
	}
	if _, err := DecodeRequest([]byte(`{"op":`)); err == nil {
		t.Error("truncated JSON decoded without error")
	}
	huge := make([]byte, MaxMessageSize+1)
	if _, err := DecodeRequest(huge); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("oversized message error = %v, want size-limit error", err)
	}
}

func TestDecodeResponse(t *testing.T) {
	resp, err := DecodeResponse([]byte(`{"ok":true,"config":[8,16],"perf":1.5,"have_perf":true}`))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || !resp.Config.Equal(param.Config{8, 16}) || resp.Perf != 1.5 || !resp.HavePerf {
		t.Errorf("decoded response = %+v", resp)
	}
	if _, err := DecodeResponse([]byte("[")); err == nil {
		t.Error("truncated JSON decoded without error")
	}
}

// TestServerDropsOversizedMessage pins the frame bound: a client that
// streams a line past MaxMessageSize is disconnected instead of growing
// the server's buffer without limit.
func TestServerDropsOversizedMessage(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))

	junk := bytes.Repeat([]byte("a"), 64<<10)
	for sent := 0; sent <= MaxMessageSize+len(junk); sent += len(junk) {
		if _, err := conn.Write(junk); err != nil {
			return // server already cut the connection — also a pass
		}
	}
	if _, err := conn.Write([]byte("\n")); err != nil {
		return
	}
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("server answered an oversized frame; want the connection dropped")
	}
}
