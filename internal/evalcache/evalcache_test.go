package evalcache

import (
	"math"
	"strings"
	"sync"
	"testing"

	"webharmony/internal/param"
	"webharmony/internal/websim"
)

// testSpec returns a fully-populated spec; tests derive variants from it.
func testSpec() Spec {
	return Spec{
		ProxyNodes: 1, AppNodes: 2, DBNodes: 1, WorkLines: 2,
		Browsers: 200, ThinkMean: 0.5, Scale: 800, Sessions: true,
		Warm: 2, Measure: 8, Cool: 1,
		Seed:     7,
		Workload: "shopping",
		Nodes: map[int]param.Config{
			0: {133, 90, 95},
			1: {5, 20, 10},
			2: {5, 20, 11},
			3: {32768, 100, 101},
		},
	}
}

func testMeasurement(wips float64) websim.Measurement {
	return websim.Measurement{
		WIPS: wips, WIPSb: wips / 2, WIPSo: wips / 4,
		ErrorRate: 0.01, LineWIPS: []float64{wips / 2, wips / 2},
		RespMean: 0.2, RespP50: 0.1, RespP90: 0.4, RespP99: 0.9,
	}
}

func TestKeyDeterministic(t *testing.T) {
	k1, k2 := testSpec().Key(), testSpec().Key()
	if k1.String() != k2.String() {
		t.Fatalf("same spec, different keys:\n%s\n%s", k1, k2)
	}
	if k1.Hash() != k2.Hash() {
		t.Fatalf("same key string, different hashes: %d vs %d", k1.Hash(), k2.Hash())
	}
	if !strings.HasPrefix(k1.String(), "eval/v1|") {
		t.Fatalf("key not versioned: %q", k1)
	}
}

// TestKeyNodeOrderIndependent checks the canonical encoding does not
// depend on map insertion order.
func TestKeyNodeOrderIndependent(t *testing.T) {
	a := testSpec()
	b := testSpec()
	b.Nodes = make(map[int]param.Config)
	for _, id := range []int{3, 1, 0, 2} { // reversed-ish insertion order
		b.Nodes[id] = testSpec().Nodes[id]
	}
	if a.Key().String() != b.Key().String() {
		t.Fatalf("insertion order changed the key:\n%s\n%s", a.Key(), b.Key())
	}
}

// TestKeyFieldSeparation checks that every spec field reaches the key:
// mutating any one of them must change the encoding.
func TestKeyFieldSeparation(t *testing.T) {
	base := testSpec().Key().String()
	mutants := map[string]func(*Spec){
		"ProxyNodes": func(s *Spec) { s.ProxyNodes++ },
		"AppNodes":   func(s *Spec) { s.AppNodes++ },
		"DBNodes":    func(s *Spec) { s.DBNodes++ },
		"WorkLines":  func(s *Spec) { s.WorkLines++ },
		"Browsers":   func(s *Spec) { s.Browsers++ },
		"ThinkMean":  func(s *Spec) { s.ThinkMean += 1e-12 },
		"Scale":      func(s *Spec) { s.Scale++ },
		"Sessions":   func(s *Spec) { s.Sessions = !s.Sessions },
		"Warm":       func(s *Spec) { s.Warm += 1e-9 },
		"Measure":    func(s *Spec) { s.Measure += 1e-9 },
		"Cool":       func(s *Spec) { s.Cool += 1e-9 },
		"Seed":       func(s *Spec) { s.Seed++ },
		"Workload":   func(s *Spec) { s.Workload += "x" },
		"NodeValue":  func(s *Spec) { s.Nodes[0] = param.Config{133, 90, 96} },
		"NodeID":     func(s *Spec) { s.Nodes[9] = s.Nodes[3]; delete(s.Nodes, 3) },
		"NodeCount":  func(s *Spec) { delete(s.Nodes, 3) },
	}
	for name, mutate := range mutants {
		s := testSpec()
		mutate(&s)
		if s.Key().String() == base {
			t.Errorf("mutating %s did not change the key", name)
		}
	}
}

// TestKeyDelimiterSafety crafts workload names that try to forge the
// field structure; the length prefix must keep them distinct.
func TestKeyDelimiterSafety(t *testing.T) {
	a := testSpec()
	a.Workload = "shopping|nodes=0"
	a.Nodes = map[int]param.Config{0: {1}}
	b := testSpec()
	b.Workload = "shopping"
	b.Nodes = map[int]param.Config{0: {1}}
	if a.Key().String() == b.Key().String() {
		t.Fatalf("workload with embedded delimiters collided: %s", a.Key())
	}
}

// TestKeyFloatExact checks the hex encoding separates floats that a
// short decimal rendering would merge, and tolerates non-finite values.
func TestKeyFloatExact(t *testing.T) {
	a, b := testSpec(), testSpec()
	a.ThinkMean = 0.1
	b.ThinkMean = 0.1 + 1e-17 // not representable apart? make sure distinct bits
	if a.ThinkMean == b.ThinkMean {
		b.ThinkMean = math.Nextafter(0.1, 1)
	}
	if a.Key().String() == b.Key().String() {
		t.Fatal("adjacent float bit patterns collided")
	}
	c := testSpec()
	c.ThinkMean = math.NaN()
	d := testSpec()
	d.ThinkMean = math.Inf(1)
	if c.Key().String() == d.Key().String() {
		t.Fatal("NaN and +Inf collided")
	}
}

func TestDoMemoizesAndCounts(t *testing.T) {
	c := New()
	key := testSpec().Key()
	calls := 0
	compute := func() websim.Measurement { calls++; return testMeasurement(100) }

	m1, cached := c.Do(key, compute)
	if cached {
		t.Fatal("first Do reported a cache hit")
	}
	m2, cached := c.Do(key, compute)
	if !cached {
		t.Fatal("second Do missed")
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	if m1.WIPS != m2.WIPS || len(m1.LineWIPS) != len(m2.LineWIPS) {
		t.Fatalf("hit returned a different measurement: %+v vs %+v", m1, m2)
	}

	s := c.Stats()
	if s.Lookups != 2 || s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want lookups=2 hits=1 misses=1 entries=1", s)
	}
	if s.Bytes == 0 {
		t.Fatal("stats.Bytes = 0 after a stored entry")
	}
	if got := s.HitRate(); got != 0.5 {
		t.Fatalf("HitRate = %v, want 0.5", got)
	}
	if (Stats{}).HitRate() != 0 {
		t.Fatal("empty stats HitRate != 0")
	}
}

// TestDoCloneIsolation checks a caller mutating the returned LineWIPS
// cannot corrupt the cached value, in either direction.
func TestDoCloneIsolation(t *testing.T) {
	c := New()
	key := testSpec().Key()
	src := testMeasurement(100)
	m1, _ := c.Do(key, func() websim.Measurement { return src })
	src.LineWIPS[0] = -1 // the computed value's slice
	m1.LineWIPS[1] = -2  // the returned value's slice
	m2, _ := c.Do(key, func() websim.Measurement { panic("must not recompute") })
	if m2.LineWIPS[0] != 50 || m2.LineWIPS[1] != 50 {
		t.Fatalf("cached LineWIPS corrupted: %v", m2.LineWIPS)
	}
}

// TestDoSingleFlight hammers one key from many goroutines: compute must
// run exactly once and every caller must see its result.
func TestDoSingleFlight(t *testing.T) {
	c := New()
	key := testSpec().Key()
	var mu sync.Mutex
	calls := 0
	start := make(chan struct{})
	var wg sync.WaitGroup
	const n = 16
	errs := make(chan string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			m, _ := c.Do(key, func() websim.Measurement {
				mu.Lock()
				calls++
				mu.Unlock()
				return testMeasurement(42)
			})
			if m.WIPS != 42 {
				errs <- "wrong measurement"
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times under contention, want 1", calls)
	}
	s := c.Stats()
	if s.Lookups != n || s.Misses != 1 || s.Hits != n-1 {
		t.Fatalf("stats = %+v, want lookups=%d misses=1 hits=%d", s, n, n-1)
	}
}

// TestDoPanicPropagates checks a panicking compute re-raises on the
// computing caller and on later lookups of the same key.
func TestDoPanicPropagates(t *testing.T) {
	c := New()
	key := testSpec().Key()
	boom := func() websim.Measurement { panic("boom") }
	mustPanic := func(f func()) (r any) {
		defer func() { r = recover() }()
		f()
		return nil
	}
	if r := mustPanic(func() { c.Do(key, boom) }); r != "boom" {
		t.Fatalf("computing caller recovered %v, want boom", r)
	}
	if r := mustPanic(func() { c.Do(key, func() websim.Measurement { return testMeasurement(1) }) }); r != "boom" {
		t.Fatalf("later lookup recovered %v, want boom", r)
	}
}

func TestAddExistingWins(t *testing.T) {
	c := New()
	key := testSpec().Key()
	if _, cached := c.Do(key, func() websim.Measurement { return testMeasurement(100) }); cached {
		t.Fatal("unexpected hit")
	}
	if c.add(key.String(), testMeasurement(999)) {
		t.Fatal("add replaced a live entry")
	}
	m, cached := c.Do(key, func() websim.Measurement { panic("must not recompute") })
	if !cached || m.WIPS != 100 {
		t.Fatalf("entry replaced: cached=%v wips=%v", cached, m.WIPS)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestAddCountsAsLaterHit(t *testing.T) {
	c := New()
	key := testSpec().Key()
	if !c.add(key.String(), testMeasurement(77)) {
		t.Fatal("add rejected a fresh key")
	}
	s := c.Stats()
	if s.Lookups != 0 || s.Hits != 0 || s.Misses != 0 || s.Entries != 1 {
		t.Fatalf("warm-start stats = %+v, want only entries=1", s)
	}
	m, cached := c.Do(key, func() websim.Measurement { panic("must not recompute") })
	if !cached || m.WIPS != 77 {
		t.Fatalf("warm-started entry not served: cached=%v wips=%v", cached, m.WIPS)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 0 {
		t.Fatalf("stats after warm hit = %+v", s)
	}
}
