// Package evalcache memoizes hermetic evaluations: a deterministic,
// content-addressed table from a canonical evaluation key — the complete
// input set of one warm/measure/cool simulation window — to the
// websim.Measurement that window produces.
//
// The cache is sound only under the hermetic-evaluation discipline the
// experiment runners follow (see DESIGN.md §10): every evaluation runs in
// a fresh lab whose rng streams derive from the evaluation key alone, so
// the measurement is a pure function of the key and a cache hit returns
// byte-for-byte what the simulation would have measured. Memoization then
// cannot change any experiment's output — it only skips re-simulating
// exact repeats, which the tuning kernels produce constantly (integer
// rounding, shrink steps near convergence, post-shift restarts) and the
// Figure 4 matrix produces by design (the same (config, workload) pair
// re-measured for every evaluation window).
//
// Concurrent lookups of the same key are single-flight: the first caller
// simulates, later callers wait and share the result. That keeps the
// hit/miss counters deterministic at any worker count — misses equal the
// number of distinct keys, hits equal lookups minus misses — so the
// `webtune -evalstats` report is as reproducible as the experiments.
package evalcache

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"

	"webharmony/internal/param"
	"webharmony/internal/websim"
)

// Spec is the complete input set of one hermetic evaluation: the lab
// topology and load, the iteration window lengths, the base seed the
// evaluation's rng streams derive from, the workload name and the staged
// node→configuration assignment. Two evaluations with equal Specs are the
// same simulation.
type Spec struct {
	ProxyNodes int
	AppNodes   int
	DBNodes    int
	WorkLines  int

	Browsers  int
	ThinkMean float64
	Scale     int
	Sessions  bool

	Warm    float64
	Measure float64
	Cool    float64

	Seed uint64

	Workload string
	Nodes    map[int]param.Config
}

// Key is a canonical, collision-resistant encoding of a Spec: the cache
// index. String() is the full canonical form (every field delimited or
// length-prefixed, floats in exact hex notation, node entries sorted by
// node ID); Hash() is a 64-bit digest of that form, used to derive the
// evaluation's rng seed so that the whole simulation is a pure function
// of the key.
type Key struct {
	c string
	h uint64
}

// String returns the canonical encoding. Two Specs encode to the same
// string exactly when they describe the same evaluation.
func (k Key) String() string { return k.c }

// Hash returns the FNV-1a digest of the canonical encoding.
func (k Key) Hash() uint64 { return k.h }

// hexFloat renders a float in exact hexadecimal notation: every distinct
// bit pattern (including NaN and the infinities, which strconv prints as
// "NaN"/"+Inf"/"-Inf") gets a distinct, round-trippable token.
func hexFloat(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

// Key builds the canonical evaluation key. The encoding is versioned and
// unambiguous: fixed fields are '|'-delimited "name=value" pairs, the
// workload is length-prefixed (its name is free text), and node entries
// are sorted by node ID with explicit value counts, so no two distinct
// Specs can collide. FuzzEvalKey exercises exactly these properties.
func (s Spec) Key() Key {
	var b strings.Builder
	fmt.Fprintf(&b, "eval/v1|shape=%d/%d/%d/%d|browsers=%d|think=%s|scale=%d|sessions=%t",
		s.ProxyNodes, s.AppNodes, s.DBNodes, s.WorkLines,
		s.Browsers, hexFloat(s.ThinkMean), s.Scale, s.Sessions)
	fmt.Fprintf(&b, "|win=%s,%s,%s|seed=%d",
		hexFloat(s.Warm), hexFloat(s.Measure), hexFloat(s.Cool), s.Seed)
	fmt.Fprintf(&b, "|wl=%d:%s|nodes=%d", len(s.Workload), s.Workload, len(s.Nodes))
	ids := make([]int, 0, len(s.Nodes))
	for id := range s.Nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		cfg := s.Nodes[id]
		fmt.Fprintf(&b, "|n%d=%d:%s", id, len(cfg), cfg.Key())
	}
	c := b.String()
	h := fnv.New64a()
	h.Write([]byte(c))
	return Key{c: c, h: h.Sum64()}
}

// Stats is the cache's counter set. All counts are deterministic at any
// worker count: lookups depend only on the evaluation sequence, misses
// equal the number of distinct keys simulated (single-flight guarantees
// each is simulated exactly once), and hits are the difference. Bytes
// approximates the resident size of the stored entries (key bytes plus
// 8 bytes per stored numeric field).
type Stats struct {
	Lookups uint64
	Hits    uint64
	Misses  uint64
	Entries uint64
	Bytes   uint64
}

// HitRate returns Hits/Lookups, or 0 before the first lookup.
func (s Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// entry is one memoized evaluation. done is closed once m is valid (or
// the compute panicked); waiters block on it.
type entry struct {
	done     chan struct{}
	m        websim.Measurement
	panicked any
}

// Cache is the content-addressed memo table. Safe for concurrent use;
// the experiment runners share one cache across their whole worker pool.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*entry

	lookups uint64
	hits    uint64
	misses  uint64
	bytes   uint64
}

// New returns an empty cache.
func New() *Cache {
	return &Cache{entries: make(map[string]*entry)}
}

// Do returns the measurement for key, invoking compute to simulate it on
// first use. Concurrent callers with the same key coalesce: one computes,
// the rest wait and share the result. The boolean reports whether the
// value came from the cache (true) or from this call's compute (false).
// A panicking compute is re-raised on every caller of the key.
func (c *Cache) Do(key Key, compute func() websim.Measurement) (websim.Measurement, bool) {
	c.mu.Lock()
	c.lookups++
	if e, ok := c.entries[key.String()]; ok {
		c.hits++
		c.mu.Unlock()
		<-e.done
		if e.panicked != nil {
			panic(e.panicked)
		}
		return cloneMeasurement(e.m), true
	}
	e := &entry{done: make(chan struct{})}
	c.entries[key.String()] = e
	c.misses++
	c.mu.Unlock()

	defer func() {
		if r := recover(); r != nil {
			e.panicked = r
			close(e.done)
			panic(r)
		}
	}()
	m := compute()
	e.m = cloneMeasurement(m)
	c.mu.Lock()
	c.bytes += uint64(len(key.String())) + measurementBytes(e.m)
	c.mu.Unlock()
	close(e.done)
	return cloneMeasurement(e.m), false
}

// add installs a precomputed entry (a warm start from a snapshot). It
// counts toward Entries and Bytes but not Lookups/Hits/Misses; a lookup
// that finds it later counts as a hit. Existing entries win: a live
// in-flight computation is never replaced.
func (c *Cache) add(key string, m websim.Measurement) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return false
	}
	e := &entry{done: make(chan struct{}), m: cloneMeasurement(m)}
	close(e.done)
	c.entries[key] = e
	c.bytes += uint64(len(key)) + measurementBytes(e.m)
	return true
}

// Len returns the number of stored entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the current counter values.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Lookups: c.lookups,
		Hits:    c.hits,
		Misses:  c.misses,
		Entries: uint64(len(c.entries)),
		Bytes:   c.bytes,
	}
}

// cloneMeasurement deep-copies the one reference field so cached values
// can never alias a caller's slice.
func cloneMeasurement(m websim.Measurement) websim.Measurement {
	if m.LineWIPS != nil {
		m.LineWIPS = append([]float64(nil), m.LineWIPS...)
	}
	return m
}

// measurementBytes approximates a stored measurement's size: 8 bytes per
// numeric field. Deterministic by construction (no pointer sizes or
// allocator rounding involved).
func measurementBytes(m websim.Measurement) uint64 {
	const floats = 8 // WIPS, WIPSb, WIPSo, ErrorRate, RespMean, RespP50, RespP90, RespP99
	counters := uint64(len(m.Counters.Completed)) + 3
	return 8 * (floats + counters + uint64(len(m.LineWIPS)))
}
