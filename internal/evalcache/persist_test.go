package evalcache

import (
	"math"
	"strings"
	"testing"

	"webharmony/internal/tpcw"
	"webharmony/internal/websim"
)

func TestSnapshotRoundTrip(t *testing.T) {
	c := New()
	specs := []Spec{testSpec()}
	s2 := testSpec()
	s2.Seed++
	specs = append(specs, s2)
	var counters tpcw.Counters
	counters.Completed[0] = 41
	counters.Browse, counters.Order, counters.Errors = 40, 1, 2
	ms := []websim.Measurement{
		{WIPS: 123.456789012345, WIPSb: 100, WIPSo: 23, ErrorRate: 1.0 / 3.0,
			Counters: counters, LineWIPS: []float64{61.5, 61.5},
			RespMean: 0.25, RespP50: 0.125, RespP90: 0.5, RespP99: 1.5},
		{WIPS: 0, RespMean: math.NaN(), RespP50: math.NaN(),
			RespP90: math.Inf(1), RespP99: math.Inf(-1)},
	}
	for i, spec := range specs {
		m := ms[i]
		c.Do(spec.Key(), func() websim.Measurement { return m })
	}

	data, err := c.Snapshot().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := LoadSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	fresh := New()
	if added := fresh.AddSnapshot(snap); added != 2 {
		t.Fatalf("AddSnapshot added %d, want 2", added)
	}
	for i, spec := range specs {
		got, cached := fresh.Do(spec.Key(), func() websim.Measurement { panic("must not recompute") })
		if !cached {
			t.Fatalf("entry %d not restored", i)
		}
		if !measurementsEqual(got, ms[i]) {
			t.Fatalf("entry %d round-trip mismatch:\n got %+v\nwant %+v", i, got, ms[i])
		}
	}
}

// measurementsEqual compares with NaN==NaN semantics (exact bits
// otherwise — the round-trip must not lose precision).
func measurementsEqual(a, b websim.Measurement) bool {
	feq := func(x, y float64) bool {
		if math.IsNaN(x) && math.IsNaN(y) {
			return true
		}
		return x == y
	}
	if !feq(a.WIPS, b.WIPS) || !feq(a.WIPSb, b.WIPSb) || !feq(a.WIPSo, b.WIPSo) ||
		!feq(a.ErrorRate, b.ErrorRate) || !feq(a.RespMean, b.RespMean) ||
		!feq(a.RespP50, b.RespP50) || !feq(a.RespP90, b.RespP90) || !feq(a.RespP99, b.RespP99) {
		return false
	}
	if a.Counters != b.Counters || len(a.LineWIPS) != len(b.LineWIPS) {
		return false
	}
	for i := range a.LineWIPS {
		if !feq(a.LineWIPS[i], b.LineWIPS[i]) {
			return false
		}
	}
	return true
}

// TestSnapshotByteStable checks two snapshots of the same logical state
// marshal identically even when entries were inserted in opposite order.
func TestSnapshotByteStable(t *testing.T) {
	build := func(order []int) []byte {
		c := New()
		for _, i := range order {
			s := testSpec()
			s.Seed = uint64(i)
			m := testMeasurement(float64(i))
			c.Do(s.Key(), func() websim.Measurement { return m })
		}
		data, err := c.Snapshot().Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := build([]int{1, 2, 3})
	b := build([]int{3, 1, 2})
	if string(a) != string(b) {
		t.Fatalf("insertion order changed the snapshot bytes:\n%s\n---\n%s", a, b)
	}
}

func TestLoadSnapshotRejectsBadInput(t *testing.T) {
	if _, err := LoadSnapshot([]byte("{not json")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := LoadSnapshot([]byte(`{"version": 999, "entries": []}`)); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("wrong version accepted: %v", err)
	}
	if _, err := LoadSnapshot([]byte(`{"version": 1, "entries": [{"key": "k", "measurement": {"wips": "zzz"}}]}`)); err == nil {
		t.Fatal("bad float token accepted")
	}
}

// TestAddSnapshotExistingWins checks a live entry survives a warm start
// carrying the same key.
func TestAddSnapshotExistingWins(t *testing.T) {
	c := New()
	key := testSpec().Key()
	c.Do(key, func() websim.Measurement { return testMeasurement(100) })
	snap := c.Snapshot()
	snap.Entries[0].Measurement.WIPS = 999
	if added := c.AddSnapshot(snap); added != 0 {
		t.Fatalf("AddSnapshot replaced %d live entries", added)
	}
	m, _ := c.Do(key, func() websim.Measurement { panic("must not recompute") })
	if m.WIPS != 100 {
		t.Fatalf("live entry overwritten: wips=%v", m.WIPS)
	}
}

// TestSnapshotSkipsInFlight checks an unfinished computation never
// reaches the snapshot.
func TestSnapshotSkipsInFlight(t *testing.T) {
	c := New()
	entered := make(chan struct{})
	release := make(chan struct{})
	go c.Do(testSpec().Key(), func() websim.Measurement {
		close(entered)
		<-release
		return testMeasurement(1)
	})
	<-entered
	if snap := c.Snapshot(); len(snap.Entries) != 0 {
		t.Fatalf("in-flight entry snapshotted: %d entries", len(snap.Entries))
	}
	close(release)
}
