package evalcache

import (
	"math"
	"testing"

	"webharmony/internal/param"
)

// FuzzEvalKey exercises the canonical key encoding's contract: it is
// deterministic, independent of node-map insertion order, and injective
// under single-field mutation — no crafted workload string or float bit
// pattern may make two distinct specs collide.
func FuzzEvalKey(f *testing.F) {
	f.Add(1, 2, 1, 2, 200, 0.5, 800, true, 2.0, 8.0, 1.0, uint64(7), "shopping", int64(133), int64(90))
	f.Add(0, 0, 0, 0, 0, 0.0, 0, false, 0.0, 0.0, 0.0, uint64(0), "", int64(0), int64(0))
	f.Add(3, 1, 4, 1, 5, math.Pi, 9, true, 2.6, 5.3, 5.8, uint64(97), "wl|nodes=1|n0=1:2", int64(-1), int64(1<<40))
	f.Add(1, 1, 1, 1, 1, math.Inf(1), 1, false, math.NaN(), 1e300, 5e-324, ^uint64(0), "a=b|c", int64(7), int64(7))
	f.Fuzz(func(t *testing.T, proxy, app, db, lines, browsers int, think float64,
		scale int, sessions bool, warm, measure, cool float64, seed uint64,
		workload string, v0, v1 int64) {

		spec := func() Spec {
			return Spec{
				ProxyNodes: proxy, AppNodes: app, DBNodes: db, WorkLines: lines,
				Browsers: browsers, ThinkMean: think, Scale: scale, Sessions: sessions,
				Warm: warm, Measure: measure, Cool: cool, Seed: seed,
				Workload: workload,
				Nodes:    map[int]param.Config{0: {v0}, 1: {v1, v0}},
			}
		}
		base := spec().Key()

		// Deterministic: rebuilding the same spec reproduces the key.
		if again := spec().Key(); again.String() != base.String() || again.Hash() != base.Hash() {
			t.Fatalf("key not deterministic:\n%s\n%s", base, again)
		}

		// Insertion-order independent.
		reordered := spec()
		reordered.Nodes = map[int]param.Config{1: {v1, v0}, 0: {v0}}
		if reordered.Key().String() != base.String() {
			t.Fatalf("node insertion order changed the key:\n%s\n%s", base, reordered.Key())
		}

		// Single-field mutations must change the encoding. Floats mutate
		// via nextFloat, which always yields a distinct bit pattern.
		mutants := []struct {
			name string
			mut  func(*Spec)
		}{
			{"proxy", func(s *Spec) { s.ProxyNodes++ }},
			{"app", func(s *Spec) { s.AppNodes++ }},
			{"db", func(s *Spec) { s.DBNodes++ }},
			{"lines", func(s *Spec) { s.WorkLines++ }},
			{"browsers", func(s *Spec) { s.Browsers++ }},
			{"think", func(s *Spec) { s.ThinkMean = nextFloat(s.ThinkMean) }},
			{"scale", func(s *Spec) { s.Scale++ }},
			{"sessions", func(s *Spec) { s.Sessions = !s.Sessions }},
			{"warm", func(s *Spec) { s.Warm = nextFloat(s.Warm) }},
			{"measure", func(s *Spec) { s.Measure = nextFloat(s.Measure) }},
			{"cool", func(s *Spec) { s.Cool = nextFloat(s.Cool) }},
			{"seed", func(s *Spec) { s.Seed++ }},
			{"workload", func(s *Spec) { s.Workload += "|" }},
			{"node-value", func(s *Spec) { s.Nodes[0] = param.Config{v0 + 1} }},
			{"node-extra", func(s *Spec) { s.Nodes[2] = param.Config{v0} }},
			{"node-gone", func(s *Spec) { delete(s.Nodes, 1) }},
		}
		for _, m := range mutants {
			s := spec()
			m.mut(&s)
			if s.Key().String() == base.String() {
				t.Fatalf("mutating %s did not change the key: %s", m.name, base)
			}
		}

		// The workload's length prefix forecloses delimiter forgery: moving
		// the tail of the workload into a node entry (or vice versa) can
		// never reproduce the same canonical string, because the recorded
		// length differs. Spot-check the classic splice.
		spliced := spec()
		spliced.Workload = workload + "|n0=1:2"
		if spliced.Key().String() == base.String() {
			t.Fatalf("delimiter splice collided: %s", base)
		}
	})
}

// nextFloat returns a float guaranteed to differ from v in bit pattern:
// the adjacent representable value toward +Inf, or 0 for NaN and +Inf
// (Nextafter would return them unchanged).
func nextFloat(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 1) {
		return 0
	}
	return math.Nextafter(v, math.Inf(1))
}
