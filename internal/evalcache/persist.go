package evalcache

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"

	"webharmony/internal/tpcw"
	"webharmony/internal/websim"
)

// SnapshotVersion identifies the on-disk format; Load rejects snapshots
// written by an incompatible version.
const SnapshotVersion = 1

// Snapshot is the serializable image of a cache, for cross-run warm
// starts (webtune -evalcache). Like harmony.Snapshot it is plain JSON;
// entries are sorted by key so a snapshot of a given cache state is
// byte-reproducible. Floats round-trip exactly: finite values use Go's
// shortest-exact JSON numbers, NaN and the infinities (which plain JSON
// cannot carry) are encoded as strings.
type Snapshot struct {
	Version int             `json:"version"`
	Entries []SnapshotEntry `json:"entries"`
}

// SnapshotEntry is one memoized evaluation: the canonical key and its
// measurement.
type SnapshotEntry struct {
	Key         string          `json:"key"`
	Measurement measurementJSON `json:"measurement"`
}

// jfloat is a float64 whose JSON encoding survives NaN and ±Inf (legal
// measurement values — an empty response-time sample has NaN
// percentiles) by falling back to a string token for them.
type jfloat float64

// MarshalJSON encodes finite values as numbers, NaN/±Inf as strings.
func (f jfloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return json.Marshal(strconv.FormatFloat(v, 'g', -1, 64))
	}
	return json.Marshal(v)
}

// UnmarshalJSON accepts both encodings.
func (f *jfloat) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("evalcache: bad float token %q: %w", s, err)
		}
		*f = jfloat(v)
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = jfloat(v)
	return nil
}

// measurementJSON mirrors websim.Measurement with NaN/Inf-safe floats.
type measurementJSON struct {
	WIPS      jfloat        `json:"wips"`
	WIPSb     jfloat        `json:"wips_b"`
	WIPSo     jfloat        `json:"wips_o"`
	ErrorRate jfloat        `json:"error_rate"`
	Counters  tpcw.Counters `json:"counters"`
	LineWIPS  []jfloat      `json:"line_wips,omitempty"`
	RespMean  jfloat        `json:"resp_mean"`
	RespP50   jfloat        `json:"resp_p50"`
	RespP90   jfloat        `json:"resp_p90"`
	RespP99   jfloat        `json:"resp_p99"`
}

func toJSONMeasurement(m websim.Measurement) measurementJSON {
	j := measurementJSON{
		WIPS: jfloat(m.WIPS), WIPSb: jfloat(m.WIPSb), WIPSo: jfloat(m.WIPSo),
		ErrorRate: jfloat(m.ErrorRate), Counters: m.Counters,
		RespMean: jfloat(m.RespMean), RespP50: jfloat(m.RespP50),
		RespP90: jfloat(m.RespP90), RespP99: jfloat(m.RespP99),
	}
	for _, v := range m.LineWIPS {
		j.LineWIPS = append(j.LineWIPS, jfloat(v))
	}
	return j
}

func fromJSONMeasurement(j measurementJSON) websim.Measurement {
	m := websim.Measurement{
		WIPS: float64(j.WIPS), WIPSb: float64(j.WIPSb), WIPSo: float64(j.WIPSo),
		ErrorRate: float64(j.ErrorRate), Counters: j.Counters,
		RespMean: float64(j.RespMean), RespP50: float64(j.RespP50),
		RespP90: float64(j.RespP90), RespP99: float64(j.RespP99),
	}
	for _, v := range j.LineWIPS {
		m.LineWIPS = append(m.LineWIPS, float64(v))
	}
	return m
}

// Snapshot captures every settled entry, sorted by key. In-flight
// computations (no value yet) are skipped.
func (c *Cache) Snapshot() *Snapshot {
	c.mu.Lock()
	keys := make([]string, 0, len(c.entries))
	for k, e := range c.entries {
		select {
		case <-e.done:
			if e.panicked == nil {
				keys = append(keys, k)
			}
		default:
		}
	}
	sort.Strings(keys)
	snap := &Snapshot{Version: SnapshotVersion}
	for _, k := range keys {
		snap.Entries = append(snap.Entries, SnapshotEntry{
			Key:         k,
			Measurement: toJSONMeasurement(c.entries[k].m),
		})
	}
	c.mu.Unlock()
	return snap
}

// Marshal renders the snapshot as indented JSON.
func (snap *Snapshot) Marshal() ([]byte, error) {
	return json.MarshalIndent(snap, "", "  ")
}

// LoadSnapshot parses a snapshot previously produced by Marshal.
func LoadSnapshot(data []byte) (*Snapshot, error) {
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("evalcache: bad snapshot: %w", err)
	}
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("evalcache: snapshot version %d, want %d", snap.Version, SnapshotVersion)
	}
	return &snap, nil
}

// AddSnapshot warm-starts the cache with the snapshot's entries and
// returns how many were added (existing keys are kept, not overwritten —
// an entry computed this run is exactly as authoritative as a stored
// one, because both are pure functions of the key).
func (c *Cache) AddSnapshot(snap *Snapshot) int {
	added := 0
	for _, e := range snap.Entries {
		if c.add(e.Key, fromJSONMeasurement(e.Measurement)) {
			added++
		}
	}
	return added
}
