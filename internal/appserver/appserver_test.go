package appserver

import (
	"testing"

	"webharmony/internal/cluster"
	"webharmony/internal/param"
	"webharmony/internal/simnet"
)

func newServer(cfg Config) (*simnet.Engine, *Server) {
	eng := &simnet.Engine{}
	node := cluster.NewNode(eng, 0, cluster.TierApp, cluster.DefaultHardware())
	return eng, New(eng, node, cfg, DefaultCostModel())
}

func defaults() Config { return DecodeConfig(Space().DefaultConfig()) }

func TestSpaceDefaultsMatchTable3(t *testing.T) {
	cfg := defaults()
	if cfg.MinProcessors != 5 || cfg.MaxProcessors != 20 {
		t.Errorf("processors = %d/%d, want 5/20", cfg.MinProcessors, cfg.MaxProcessors)
	}
	if cfg.AcceptCount != 10 {
		t.Errorf("acceptCount = %d, want 10", cfg.AcceptCount)
	}
	if cfg.BufferSize != 2048 {
		t.Errorf("bufferSize = %d, want 2048", cfg.BufferSize)
	}
	if cfg.AJPMinProcessors != 5 || cfg.AJPMaxProcessors != 20 || cfg.AJPAcceptCount != 10 {
		t.Error("AJP defaults wrong")
	}
}

func TestDecodeConfigRaisesMaxToMin(t *testing.T) {
	sp := Space()
	c := sp.DefaultConfig()
	c[sp.IndexOf(ParamMinProcessors)] = 100
	c[sp.IndexOf(ParamMaxProcessors)] = 10
	cfg := DecodeConfig(c)
	if cfg.MaxProcessors != 100 {
		t.Fatalf("max = %d, want raised to 100", cfg.MaxProcessors)
	}
}

func TestDecodeConfigPanicsOnWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on short config")
		}
	}()
	DecodeConfig(param.Config{1})
}

func TestStaticRequestCompletes(t *testing.T) {
	eng, s := newServer(defaults())
	var ok bool
	completed := false
	s.Serve(8<<10, 0, nil, func(o bool) { ok = o; completed = true })
	eng.Run()
	if !completed || !ok {
		t.Fatal("static request did not complete successfully")
	}
	if s.Stats().Completed != 1 || s.Stats().Accepted != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestDynamicRequestCallsBackend(t *testing.T) {
	eng, s := newServer(defaults())
	backendCalled := false
	var ok bool
	s.Serve(8<<10, 0, func(release func(bool)) {
		backendCalled = true
		eng.Schedule(0.05, func() { release(true) }) // 50 ms in the DB
	}, func(o bool) { ok = o })
	eng.Run()
	if !backendCalled || !ok {
		t.Fatal("dynamic request flow broken")
	}
}

func TestBackendFailurePropagates(t *testing.T) {
	eng, s := newServer(defaults())
	var ok = true
	s.Serve(8<<10, 0, func(release func(bool)) { release(false) }, func(o bool) { ok = o })
	eng.Run()
	if ok {
		t.Fatal("backend failure not propagated")
	}
	// Threads must have been released: a follow-up request succeeds.
	var ok2 bool
	s.Serve(8<<10, 0, nil, func(o bool) { ok2 = o })
	eng.Run()
	if !ok2 {
		t.Fatal("threads leaked after backend failure")
	}
}

func TestAccessorsAndThreadAccounting(t *testing.T) {
	eng, s := newServer(defaults())
	if s.Config() != defaults() {
		t.Errorf("Config() = %+v, want the construction config", s.Config())
	}
	if s.Node() == nil || s.Node().Tier() != cluster.TierApp {
		t.Errorf("Node() = %v, want the app-tier node", s.Node())
	}
	// While the backend holds the request, one HTTP and one AJP
	// processor thread must show as busy; both return to idle when the
	// pooled call record is released.
	var httpBusy, ajpBusy int
	s.Serve(8<<10, 0, func(release func(bool)) {
		httpBusy, ajpBusy = s.ThreadsInUse()
		eng.Schedule(0.05, func() { release(true) })
	}, func(bool) {})
	eng.Run()
	if httpBusy != 1 || ajpBusy != 1 {
		t.Errorf("ThreadsInUse at backend = %d/%d, want 1/1", httpBusy, ajpBusy)
	}
	if h, a := s.ThreadsInUse(); h != 0 || a != 0 {
		t.Errorf("ThreadsInUse after drain = %d/%d, want 0/0", h, a)
	}
}

func TestBufferEfficiencyFloorsNonPositiveSize(t *testing.T) {
	cfg := defaults()
	cfg.BufferSize = 0
	_, s := newServer(cfg)
	// A zero/negative buffer size is treated as the 0.5 KB floor, so the
	// multiplier stays finite and strictly above the large-buffer limit.
	if e := s.bufferEfficiency(); !(e > 1 && e < 2) {
		t.Errorf("bufferEfficiency(0) = %v, want within (1, 2)", e)
	}
}

func TestAcceptQueueOverflowRejects(t *testing.T) {
	cfg := defaults()
	cfg.MaxProcessors = 1
	cfg.MinProcessors = 1
	cfg.AcceptCount = 2
	eng, s := newServer(cfg)
	rejected := 0
	// Hold the only thread with a never-returning backend for a while.
	s.Serve(1<<10, 0, func(release func(bool)) {
		eng.Schedule(100, func() { release(true) })
	}, func(bool) {})
	// Two fit in the accept queue; the rest must be rejected.
	for i := 0; i < 5; i++ {
		s.Serve(1<<10, 0, nil, func(ok bool) {
			if !ok {
				rejected++
			}
		})
	}
	eng.RunUntil(1)
	if rejected != 3 {
		t.Fatalf("rejected = %d, want 3", rejected)
	}
	if s.Stats().RejectedHTTP != 3 {
		t.Fatalf("RejectedHTTP = %d, want 3", s.Stats().RejectedHTTP)
	}
}

func TestAJPQueueOverflowRejects(t *testing.T) {
	cfg := defaults()
	cfg.AJPMaxProcessors = 1
	cfg.AJPMinProcessors = 1
	cfg.AJPAcceptCount = 1
	eng, s := newServer(cfg)
	outcomes := map[bool]int{}
	for i := 0; i < 4; i++ {
		s.Serve(1<<10, 0, func(release func(bool)) {
			eng.Schedule(50, func() { release(true) })
		}, func(ok bool) { outcomes[ok]++ })
	}
	eng.RunUntil(10)
	if s.Stats().RejectedAJP == 0 {
		t.Fatal("AJP queue overflow did not reject")
	}
	if outcomes[false] == 0 {
		t.Fatal("no request observed the rejection")
	}
}

func TestMoreThreadsHelpDBHeavyLoad(t *testing.T) {
	// With a 100 ms database delay per request, throughput is thread-bound:
	// doubling threads should roughly double completions in a fixed window.
	run := func(threads int64) uint64 {
		cfg := defaults()
		cfg.MaxProcessors = threads
		cfg.AJPMaxProcessors = threads
		cfg.AcceptCount = 1024
		cfg.AJPAcceptCount = 1024
		eng, s := newServer(cfg)
		for i := 0; i < 600; i++ {
			eng.Schedule(float64(i)*0.01, func() {
				s.Serve(4<<10, 0, func(release func(bool)) {
					eng.Schedule(0.1, func() { release(true) })
				}, func(bool) {})
			})
		}
		eng.RunUntil(6)
		return s.Stats().Completed
	}
	few, many := run(5), run(50)
	if float64(many) < 1.5*float64(few) {
		t.Fatalf("threads did not relieve DB-bound load: 5→%d, 50→%d", few, many)
	}
}

func TestLargerBufferReducesCPUDemand(t *testing.T) {
	small := defaults()
	small.BufferSize = 512
	big := defaults()
	big.BufferSize = 16384
	_, s1 := newServer(small)
	_, s2 := newServer(big)
	d1 := s1.generationDemand(32 << 10)
	d2 := s2.generationDemand(32 << 10)
	if d2 >= d1 {
		t.Fatalf("larger buffer not cheaper: %v >= %v", d2, d1)
	}
}

func TestMemoryFootprintGrowsWithThreads(t *testing.T) {
	small := defaults()
	big := defaults()
	big.MaxProcessors = 512
	big.AJPMaxProcessors = 512
	if big.MemoryFootprint() <= small.MemoryFootprint() {
		t.Fatal("footprint not monotone in threads")
	}
	// 512+512 threads should still be under ~2 GB (sane scale).
	if big.MemoryFootprint() > 2<<30 {
		t.Fatalf("footprint unreasonably large: %d", big.MemoryFootprint())
	}
}

func TestResetStats(t *testing.T) {
	eng, s := newServer(defaults())
	s.Serve(1<<10, 0, nil, func(bool) {})
	eng.Run()
	s.ResetStats()
	if s.Stats() != (Stats{}) {
		t.Fatal("ResetStats left residue")
	}
}

func TestQueueDepths(t *testing.T) {
	cfg := defaults()
	cfg.MaxProcessors = 1
	cfg.MinProcessors = 1
	cfg.AcceptCount = 10
	eng, s := newServer(cfg)
	s.Serve(1<<10, 0, func(release func(bool)) {
		eng.Schedule(100, func() { release(true) })
	}, func(bool) {})
	s.Serve(1<<10, 0, nil, func(bool) {})
	s.Serve(1<<10, 0, nil, func(bool) {})
	eng.RunUntil(1)
	httpQ, _ := s.QueueDepths()
	if httpQ != 2 {
		t.Fatalf("httpQ = %d, want 2", httpQ)
	}
}

func BenchmarkServeStatic(b *testing.B) {
	eng, s := newServer(defaults())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Serve(8<<10, 0, nil, func(bool) {})
		eng.Run()
	}
}
