// Package appserver models the middleware tier: a Tomcat-like application
// server with an HTTP connector and an AJP (servlet-worker) connector, each
// a bounded thread pool with a bounded accept queue, governed by the seven
// Tomcat parameters of Table 3 of the paper.
//
// The key behaviour reproduced from the paper: a worker thread is held for
// the whole request, including while it waits on the database. Workloads
// whose requests spend long in the database (ordering) therefore need many
// more threads than workloads that mostly serve computed pages (browsing) —
// which is exactly the shift Table 3 shows for min/maxProcessors and the
// AJP pool. More threads, however, cost memory (thread stacks and request
// buffers), coupling this tier to the node's 1 GB memory budget.
package appserver

import (
	"fmt"

	"webharmony/internal/cluster"
	"webharmony/internal/param"
	"webharmony/internal/simnet"
)

// Parameter names, as in Table 3.
const (
	ParamMinProcessors    = "minProcessors"
	ParamMaxProcessors    = "maxProcessors"
	ParamAcceptCount      = "acceptCount"
	ParamBufferSize       = "bufferSize"
	ParamAJPMinProcessors = "AJPminProcessors"
	ParamAJPMaxProcessors = "AJPmaxProcessors"
	ParamAJPAcceptCount   = "AJPacceptCount"
)

// Space returns the application tier's tunable-parameter space with the
// paper's default values.
func Space() *param.Space {
	return param.MustSpace(
		param.Def{Name: ParamMinProcessors, Min: 1, Max: 256, Default: 5, Step: 1, Unit: "threads"},
		param.Def{Name: ParamMaxProcessors, Min: 1, Max: 512, Default: 20, Step: 1, Unit: "threads"},
		param.Def{Name: ParamAcceptCount, Min: 1, Max: 1024, Default: 10, Step: 1, Unit: "requests"},
		param.Def{Name: ParamBufferSize, Min: 512, Max: 16384, Default: 2048, Step: 1, Unit: "bytes"},
		param.Def{Name: ParamAJPMinProcessors, Min: 1, Max: 256, Default: 5, Step: 1, Unit: "threads"},
		param.Def{Name: ParamAJPMaxProcessors, Min: 1, Max: 512, Default: 20, Step: 1, Unit: "threads"},
		param.Def{Name: ParamAJPAcceptCount, Min: 1, Max: 1024, Default: 10, Step: 1, Unit: "requests"},
	)
}

// Config is the decoded application-server configuration.
type Config struct {
	MinProcessors    int64
	MaxProcessors    int64
	AcceptCount      int64
	BufferSize       int64
	AJPMinProcessors int64
	AJPMaxProcessors int64
	AJPAcceptCount   int64
}

// DecodeConfig interprets a param.Config laid out per Space(). As in
// Tomcat, maxProcessors below minProcessors is raised to minProcessors.
func DecodeConfig(c param.Config) Config {
	sp := Space()
	if len(c) != sp.Len() {
		panic(fmt.Sprintf("appserver: config has %d values, want %d", len(c), sp.Len()))
	}
	get := func(name string) int64 { return c[sp.IndexOf(name)] }
	cfg := Config{
		MinProcessors:    get(ParamMinProcessors),
		MaxProcessors:    get(ParamMaxProcessors),
		AcceptCount:      get(ParamAcceptCount),
		BufferSize:       get(ParamBufferSize),
		AJPMinProcessors: get(ParamAJPMinProcessors),
		AJPMaxProcessors: get(ParamAJPMaxProcessors),
		AJPAcceptCount:   get(ParamAJPAcceptCount),
	}
	if cfg.MaxProcessors < cfg.MinProcessors {
		cfg.MaxProcessors = cfg.MinProcessors
	}
	if cfg.AJPMaxProcessors < cfg.AJPMinProcessors {
		cfg.AJPMaxProcessors = cfg.AJPMinProcessors
	}
	return cfg
}

// MemoryFootprint returns the bytes of node memory the server consumes:
// JVM baseline plus per-thread stacks and request buffers for both pools.
func (c Config) MemoryFootprint() int64 {
	const (
		jvmBase     = 96 << 20 // JVM heap and code
		threadStack = 1 << 20  // per-thread stack + session state
	)
	httpThreads := c.MaxProcessors
	ajpThreads := c.AJPMaxProcessors
	return jvmBase +
		httpThreads*(threadStack+c.BufferSize*4) +
		ajpThreads*(threadStack/2+c.BufferSize*2)
}

// CostModel holds the CPU cost coefficients of the servlet engine; the
// defaults are calibrated so a single default-configured node saturates at
// roughly the paper's per-node request rates.
type CostModel struct {
	ParseCost   float64 // fixed request parse/dispatch CPU seconds
	PerKBCost   float64 // CPU seconds per KB of response generated
	BufferRefKB float64 // reference buffer size for IO efficiency
	ThreadOver  float64 // per-active-thread scheduling overhead factor
}

// DefaultCostModel returns the calibrated cost model.
func DefaultCostModel() CostModel {
	return CostModel{
		ParseCost:   0.0012,
		PerKBCost:   0.0002,
		BufferRefKB: 8,
		ThreadOver:  0.000003,
	}
}

// Stats counts server activity since the last reset.
type Stats struct {
	Accepted     uint64
	RejectedHTTP uint64 // accept queue overflow at the HTTP connector
	RejectedAJP  uint64 // accept queue overflow at the AJP connector
	Completed    uint64
}

// Server is one application-server instance bound to a cluster node.
type Server struct {
	cfg   Config
	cost  CostModel
	node  *cluster.Node
	http  *simnet.TokenPool
	ajp   *simnet.TokenPool
	stats Stats

	// free recycles per-request call records so the steady-state request
	// path allocates no closures; see the call type and DESIGN.md §7.
	free []*call
}

// New creates an application server on the given node.
func New(eng *simnet.Engine, node *cluster.Node, cfg Config, cost CostModel) *Server {
	s := &Server{
		cfg:  cfg,
		cost: cost,
		node: node,
		http: simnet.NewTokenPool(eng, node.Name()+".http", int(cfg.MaxProcessors), int(cfg.AcceptCount)),
		ajp:  simnet.NewTokenPool(eng, node.Name()+".ajp", int(cfg.AJPMaxProcessors), int(cfg.AJPAcceptCount)),
	}
	s.http.SetSpanSite(cluster.SpanSiteAppHTTPPool)
	s.ajp.SetSpanSite(cluster.SpanSiteAppAJPPool)
	return s
}

// Config returns the server's configuration.
func (s *Server) Config() Config { return s.cfg }

// Node returns the node the server runs on.
func (s *Server) Node() *cluster.Node { return s.node }

// Stats returns a snapshot of the activity counters.
func (s *Server) Stats() Stats { return s.stats }

// ResetStats zeroes the activity counters.
func (s *Server) ResetStats() { s.stats = Stats{} }

// bufferEfficiency returns the IO-cost multiplier for the configured
// buffer size: small buffers cause extra write syscalls; very large
// buffers stop helping (diminishing returns).
func (s *Server) bufferEfficiency() float64 {
	bufKB := float64(s.cfg.BufferSize) / 1024
	if bufKB <= 0 {
		bufKB = 0.5
	}
	// 1 + ref/buf: 2048B buffer → 5x reference syscall cost becomes
	// 1+4 = 5? Keep it gentle: extra cost halves for each doubling.
	return 1 + s.cost.BufferRefKB/(s.cost.BufferRefKB+bufKB)
}

// generationDemand returns the CPU seconds to generate a response of the
// given size with the current configuration and concurrency.
func (s *Server) generationDemand(respBytes int64) float64 {
	kb := float64(respBytes) / 1024
	d := s.cost.ParseCost + s.cost.PerKBCost*kb*s.bufferEfficiency()
	// Context-switch overhead grows with the number of active threads.
	active := float64(s.http.InUse() + s.ajp.InUse())
	d += s.cost.ThreadOver * active
	return d
}

// call stages. The stage names the event whose completion the call is
// waiting on; callFree is the recycled sentinel — any dispatch on it means
// a stale callback fired on a recycled record, and panics.
const (
	callFree int8 = iota
	callHTTPGrant
	callParsed
	callComputed
	callAJPGrant
	callGenerated
	callSent
)

// call is one in-flight request's state at the application tier: the
// pooled replacement for the closure chain Serve used to build per
// request. Its three callbacks (step, reject, release) are method values
// allocated once when the record is first created and reused across
// recycles, so a steady-state request costs zero closure allocations here.
//
// Records are released back to the server's free list before the request's
// done callback runs (the engine's release-before-callback discipline), so
// a synchronous grant chain triggered by done can immediately reuse them.
type call struct {
	srv       *Server
	respBytes int64
	extraCPU  float64
	backend   func(release func(ok bool))
	done      func(ok bool)
	stage     int8

	stepFn    func()        // bound step, scheduled for every stage advance
	rejectFn  func()        // bound reject, passed to both pool Acquires
	releaseFn func(ok bool) // bound release, handed to the backend
}

// getCall returns a recycled call record, or a fresh one with its
// callbacks bound.
func (s *Server) getCall(respBytes int64, extraCPU float64, backend func(release func(ok bool)), done func(ok bool)) *call {
	var c *call
	if n := len(s.free); n > 0 {
		c = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		c = &call{srv: s}
		c.stepFn = c.step
		c.rejectFn = c.reject
		c.releaseFn = c.release
	}
	c.respBytes = respBytes
	c.extraCPU = extraCPU
	c.backend = backend
	c.done = done
	return c
}

// putCall recycles a call record, dropping its callback references and
// arming the stale-dispatch sentinel.
func (s *Server) putCall(c *call) {
	c.backend = nil
	c.done = nil
	c.stage = callFree
	s.free = append(s.free, c)
}

// step advances the call through the same event sequence the closure chain
// produced: HTTP grant → parse CPU → (generation CPU | AJP grant → backend
// → generation CPU) → NIC transmit → completion.
func (c *call) step() {
	s := c.srv
	switch c.stage {
	case callHTTPGrant:
		s.stats.Accepted++
		// Parse + static part of the work on the HTTP connector thread.
		c.stage = callParsed
		s.node.CPU().Submit(s.cost.ParseCost, c.stepFn)
	case callParsed:
		if c.backend == nil {
			// Pure servlet computation, no database.
			c.stage = callComputed
			s.node.CPU().Submit(s.generationDemand(c.respBytes)+c.extraCPU, c.stepFn)
			return
		}
		// Dynamic request: hand off to an AJP worker.
		c.stage = callAJPGrant
		s.ajp.Acquire(c.stepFn, c.rejectFn)
	case callAJPGrant:
		// On the AJP worker: run the database leg. The backend may invoke
		// release synchronously, recycling c — this must be the last use.
		c.backend(c.releaseFn)
	case callComputed:
		c.stage = callSent
		s.node.NIC().Submit(s.node.NetDemand(c.respBytes), c.stepFn)
	case callGenerated:
		s.ajp.Release()
		c.stage = callSent
		s.node.NIC().Submit(s.node.NetDemand(c.respBytes), c.stepFn)
	case callSent:
		done := c.done
		s.putCall(c)
		s.http.Release()
		s.stats.Completed++
		done(true)
	default:
		panic("appserver: call stepped after release")
	}
}

// reject handles an accept-queue overflow at whichever connector the call
// is waiting on.
func (c *call) reject() {
	s := c.srv
	done := c.done
	switch c.stage {
	case callHTTPGrant:
		s.putCall(c)
		s.stats.RejectedHTTP++
		done(false)
	case callAJPGrant:
		s.putCall(c)
		s.stats.RejectedAJP++
		s.http.Release()
		done(false)
	default:
		panic("appserver: call rejected after release")
	}
}

// release is the completion the backend invokes when the database leg
// settles; ok=false means the query was shed.
func (c *call) release(ok bool) {
	s := c.srv
	if c.stage != callAJPGrant {
		panic("appserver: backend release after call settled")
	}
	if !ok {
		done := c.done
		s.putCall(c)
		s.ajp.Release()
		s.http.Release()
		done(false)
		return
	}
	// Back from the database: generate the page.
	c.stage = callGenerated
	s.node.CPU().Submit(s.generationDemand(c.respBytes)+c.extraCPU, c.stepFn)
}

// Serve processes one request at the application tier.
//
// respBytes is the size of the generated response and extraCPU is
// additional servlet CPU beyond the size-based model (transactional pages
// spend extra cycles on session state and order validation). If backend is non-nil
// the request needs the database: the servlet runs on an AJP worker and
// blocks (holding both threads) until the backend signals completion by
// invoking the function it is given with ok=true (or ok=false if the
// database shed the query). done reports whether the request succeeded;
// false means it was shed at an accept queue or by the backend.
func (s *Server) Serve(respBytes int64, extraCPU float64, backend func(release func(ok bool)), done func(ok bool)) {
	c := s.getCall(respBytes, extraCPU, backend, done)
	c.stage = callHTTPGrant
	s.http.Acquire(c.stepFn, c.rejectFn)
}

// QueueDepths returns the HTTP and AJP wait-queue lengths, for diagnostics.
func (s *Server) QueueDepths() (httpQ, ajpQ int) {
	return s.http.Waiting(), s.ajp.Waiting()
}

// ThreadsInUse returns the HTTP and AJP processor threads currently
// serving requests, for diagnostics and the telemetry sampler.
func (s *Server) ThreadsInUse() (httpBusy, ajpBusy int) {
	return s.http.InUse(), s.ajp.InUse()
}
