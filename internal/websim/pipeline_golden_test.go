package websim

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"webharmony/internal/cluster"
	"webharmony/internal/simnet"
	"webharmony/internal/tpcw"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// pipelineFingerprint drives one small simulated site through a fixed
// scenario and renders every observable the request pipeline produces —
// page counters, per-interaction counts, response-time statistics,
// per-tier server stats and the full sim-time-weighted attribution
// profile — into one deterministic document.
//
// The golden recorded from this fingerprint pins the closure-based
// pipeline's exact behavior: event order, RNG draw order, queueing
// integrals and profiler contexts. The pooled pageRequest state machine
// must reproduce it byte-for-byte (see DESIGN.md §7), so any refactor
// that reorders a Schedule/Submit/Acquire or drops an attribution frame
// fails this test instead of silently shifting experiment output.
func pipelineFingerprint(t *testing.T, seed uint64, sessions, churn bool) string {
	t.Helper()
	sys := New(Options{
		ProxyNodes:     2,
		AppNodes:       2,
		DBNodes:        2,
		Scale:          300,
		Seed:           seed,
		ProxyDiskBytes: 1 << 20,
	})
	prof := simnet.NewProfile()
	sys.Eng.SetProfile(prof)
	d := tpcw.NewDriver(sys.Eng, sys, sys.Catalog, tpcw.DriverOptions{
		Browsers:  60,
		Workload:  tpcw.Shopping,
		ThinkMean: 0.5,
		Seed:      seed ^ 0xfeed,
		Sessions:  sessions,
	})
	d.Start()
	run := func(until float64) { sys.Eng.RunUntil(until) }
	run(6)
	if churn {
		// Exercise the failure, restart and reconfiguration surfaces with
		// requests in flight: pooled request state must survive servers
		// being replaced underneath it.
		var proxyID, appID int
		for _, n := range sys.Cluster.TierNodes(cluster.TierProxy) {
			proxyID = n.ID()
		}
		for _, n := range sys.Cluster.TierNodes(cluster.TierApp) {
			appID = n.ID()
		}
		sys.FailNode(proxyID)
		run(8)
		sys.FailNode(appID)
		run(10)
		sys.Restart()
		run(12)
		sys.RecoverNode(proxyID)
		sys.RecoverNode(appID)
		run(14)
		d.SetWorkload(tpcw.Ordering)
		run(18)
	} else {
		run(18)
	}
	d.Stop()
	sys.Eng.Run() // drain in-flight pages

	var b strings.Builder
	fmt.Fprintf(&b, "now=%.9f pending=%d\n", sys.Eng.Now(), sys.Eng.Pending())
	fmt.Fprintf(&b, "pages ok=%d fail=%d\n", sys.PagesOK(), sys.PagesFailed())
	c := d.Counters()
	fmt.Fprintf(&b, "browse=%d order=%d errors=%d\n", c.Browse, c.Order, c.Errors)
	for i := 0; i < tpcw.NumInteractions; i++ {
		fmt.Fprintf(&b, "completed[%02d]=%d\n", i, c.Completed[i])
	}
	rt := d.ResponseTimes()
	fmt.Fprintf(&b, "resp mean=%.12g p50=%.12g p90=%.12g p99=%.12g\n",
		rt.Mean(), rt.Percentile(50), rt.Percentile(90), rt.Percentile(99))
	for _, n := range sys.Cluster.Nodes() {
		fmt.Fprintf(&b, "node %d tier=%v cpu(busy=%.9f done=%d) disk(done=%d) nic(done=%d)\n",
			n.ID(), n.Tier(), n.CPU().BusyTime(), n.CPU().Completed(),
			n.Disk().Completed(), n.NIC().Completed())
		if ps, ok := sys.ProxyStats(n.ID()); ok {
			fmt.Fprintf(&b, "  proxy hits=%d/%d misses=%d\n", ps.HitsMem, ps.HitsDisk, ps.Misses)
		}
		if a, ok := sys.AppServer(n.ID()); ok {
			as := a.Stats()
			fmt.Fprintf(&b, "  app acc=%d rejH=%d rejA=%d done=%d\n",
				as.Accepted, as.RejectedHTTP, as.RejectedAJP, as.Completed)
		}
		if dbs, ok := sys.DBServer(n.ID()); ok {
			ds := dbs.Stats()
			fmt.Fprintf(&b, "  db q=%d rej=%d reopen=%d spill=%d reads=%d done=%d\n",
				ds.Queries, ds.RejectedConns, ds.TableReopens, ds.BinlogSpills, ds.DiskReads, ds.Completed)
		}
	}
	b.WriteString("--- profile ---\n")
	if err := prof.WriteFolded(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestPipelineFingerprintGolden locks the request pipeline's observable
// behavior across a seed matrix — quiet runs, session-graph browsing and
// mid-flight failure/restart churn — against a checked-in golden recorded
// before the pooled state-machine refactor. Regenerate (only when an
// intentional behavior change is being made) with:
//
//	go test ./internal/websim/ -run TestPipelineFingerprintGolden -update
func TestPipelineFingerprintGolden(t *testing.T) {
	var doc strings.Builder
	for _, seed := range []uint64{1, 2, 3} {
		for _, tc := range []struct {
			name            string
			sessions, churn bool
		}{
			{"steady", false, false},
			{"sessions", true, false},
			{"churn", false, true},
		} {
			fmt.Fprintf(&doc, "=== seed=%d scenario=%s ===\n", seed, tc.name)
			doc.WriteString(pipelineFingerprint(t, seed, tc.sessions, tc.churn))
		}
	}
	golden := filepath.Join("testdata", "pipeline_fingerprint.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(doc.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update): %v", err)
	}
	if doc.String() != string(want) {
		got, exp := doc.String(), string(want)
		line := 1
		for i := 0; i < len(got) && i < len(exp); i++ {
			if got[i] != exp[i] {
				lo := i - 120
				if lo < 0 {
					lo = 0
				}
				hi := i + 120
				if hi > len(got) {
					hi = len(got)
				}
				t.Fatalf("pipeline fingerprint diverges from golden at byte %d (line %d):\n got …%q…\nwant …%q…",
					i, line, got[lo:hi], exp[lo:min(hi, len(exp))])
			}
			if got[i] == '\n' {
				line++
			}
		}
		t.Fatalf("pipeline fingerprint length differs: got %d bytes, golden %d", len(got), len(exp))
	}
}
