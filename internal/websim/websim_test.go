package websim

import (
	"testing"

	"webharmony/internal/cluster"
	"webharmony/internal/param"
	"webharmony/internal/proxy"
	"webharmony/internal/tpcw"
)

func smallSystem(workLines int) *System {
	return New(Options{
		ProxyNodes: 2, AppNodes: 2, DBNodes: 2,
		Scale: 500, Seed: 3, WorkLines: workLines,
	})
}

func driveFor(sys *System, w tpcw.Workload, seconds float64) tpcw.Counters {
	d := tpcw.NewDriver(sys.Eng, sys, sys.Catalog, tpcw.DriverOptions{
		Browsers: 60, Workload: w, ThinkMean: 1, Seed: 5,
	})
	d.Start()
	sys.Eng.RunUntil(sys.Eng.Now() + seconds)
	return d.Counters()
}

func TestSystemServesTraffic(t *testing.T) {
	sys := smallSystem(0)
	c := driveFor(sys, tpcw.Shopping, 60)
	if c.Total() == 0 {
		t.Fatal("no pages completed")
	}
	if sys.PagesOK() == 0 {
		t.Fatal("system did not count completed pages")
	}
	st, ok := sys.ProxyStats(0)
	if !ok {
		t.Fatal("proxy stats missing")
	}
	if st.HitsMem+st.HitsDisk == 0 {
		t.Fatal("cache never hit during 60s of traffic")
	}
}

func TestSetNodeConfigValidates(t *testing.T) {
	sys := smallSystem(0)
	defer func() {
		if recover() == nil {
			t.Fatal("infeasible config accepted")
		}
	}()
	sys.SetNodeConfig(0, param.Config{1, 2}) // wrong length for proxy space
}

func TestSetNodeConfigUnknownNodePanics(t *testing.T) {
	sys := smallSystem(0)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown node accepted")
		}
	}()
	sys.SetNodeConfig(99, proxy.Space().DefaultConfig())
}

func TestRestartAppliesConfigAndClearsCaches(t *testing.T) {
	sys := smallSystem(0)
	driveFor(sys, tpcw.Browsing, 30)
	before, _ := sys.ProxyStats(0)
	if before.Admitted == 0 {
		t.Fatal("cache never filled")
	}
	sp := proxy.Space()
	cfg := sp.DefaultConfig()
	cfg[sp.IndexOf(proxy.ParamCacheMem)] = 64
	sys.SetTierConfig(cluster.TierProxy, cfg)
	sys.Restart()
	after, _ := sys.ProxyStats(0)
	if after.Admitted != 0 || after.HitsMem != 0 {
		t.Fatal("Restart did not clear cache stats")
	}
	if got := proxy.DecodeConfig(sys.NodeConfig(0)); got.CacheMemMB != 64 {
		t.Fatalf("config not applied: cache_mem = %d", got.CacheMemMB)
	}
}

func TestMoveNodeChangesRole(t *testing.T) {
	sys := smallSystem(0)
	if _, ok := sys.ProxyStats(1); !ok {
		t.Fatal("node 1 should start as proxy")
	}
	sys.MoveNode(1, cluster.TierApp, nil)
	if _, ok := sys.ProxyStats(1); ok {
		t.Fatal("node 1 still has a proxy after move")
	}
	if _, ok := sys.AppServer(1); !ok {
		t.Fatal("node 1 has no app server after move")
	}
	if sys.Cluster.Layout() != "1/3/2" {
		t.Fatalf("layout = %s, want 1/3/2", sys.Cluster.Layout())
	}
	// Traffic still flows after the move.
	c := driveFor(sys, tpcw.Shopping, 30)
	if c.Total() == 0 {
		t.Fatal("no traffic after reconfiguration")
	}
}

func TestMoveNodeRefusesToEmptyTier(t *testing.T) {
	sys := New(Options{ProxyNodes: 1, AppNodes: 1, DBNodes: 1, Scale: 200, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("emptied a tier")
		}
	}()
	sys.MoveNode(0, cluster.TierApp, nil)
}

func TestMoveNodeToSameTierIsNoop(t *testing.T) {
	sys := smallSystem(0)
	sys.MoveNode(0, cluster.TierProxy, nil)
	if sys.Cluster.Layout() != "2/2/2" {
		t.Fatal("same-tier move changed layout")
	}
}

func TestWorkLinesRouteAndCount(t *testing.T) {
	sys := smallSystem(2)
	if sys.WorkLines() != 2 {
		t.Fatal("WorkLines wrong")
	}
	driveFor(sys, tpcw.Shopping, 60)
	l0, l1 := sys.LineCompleted(0), sys.LineCompleted(1)
	if l0 == 0 || l1 == 0 {
		t.Fatalf("lines unevenly used: %d / %d", l0, l1)
	}
	if sys.LineCompleted(5) != 0 || sys.LineCompleted(-1) != 0 {
		t.Fatal("out-of-range line should count 0")
	}
	total := sys.PagesOK()
	if l0+l1 != total {
		t.Fatalf("line counts %d+%d != total %d", l0, l1, total)
	}
}

func TestWorkLinesRequireEnoughNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("work lines with too few nodes accepted")
		}
	}()
	New(Options{ProxyNodes: 1, AppNodes: 2, DBNodes: 2, WorkLines: 2, Scale: 100})
}

func TestSystemDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		sys := smallSystem(0)
		driveFor(sys, tpcw.Ordering, 60)
		return sys.PagesOK(), sys.PagesFailed()
	}
	ok1, f1 := run()
	ok2, f2 := run()
	if ok1 != ok2 || f1 != f2 {
		t.Fatalf("system not deterministic: (%d,%d) vs (%d,%d)", ok1, f1, ok2, f2)
	}
}

func TestResetCounters(t *testing.T) {
	sys := smallSystem(2)
	driveFor(sys, tpcw.Shopping, 20)
	sys.ResetCounters()
	if sys.PagesOK() != 0 || sys.PagesFailed() != 0 || sys.LineCompleted(0) != 0 {
		t.Fatal("ResetCounters left residue")
	}
}

func TestMeasureWindows(t *testing.T) {
	sys := smallSystem(0)
	d := tpcw.NewDriver(sys.Eng, sys, sys.Catalog, tpcw.DriverOptions{
		Browsers: 40, Workload: tpcw.Shopping, ThinkMean: 1, Seed: 9,
	})
	m1 := Measure(sys, d, 5, 30, 5)
	if m1.WIPS <= 0 {
		t.Fatal("Measure returned no throughput")
	}
	if sys.Eng.Now() != 40 {
		t.Fatalf("clock = %v, want 40 after 5+30+5 windows", sys.Eng.Now())
	}
	// WIPSb + WIPSo == WIPS.
	if diff := m1.WIPS - (m1.WIPSb + m1.WIPSo); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("WIPS split inconsistent: %v != %v + %v", m1.WIPS, m1.WIPSb, m1.WIPSo)
	}
	// A second iteration continues from the current clock.
	sys.Restart()
	m2 := Measure(sys, d, 5, 30, 5)
	if sys.Eng.Now() != 80 {
		t.Fatalf("clock = %v, want 80", sys.Eng.Now())
	}
	if m2.WIPS <= 0 {
		t.Fatal("second iteration no throughput")
	}
}

func TestSpaceForTiers(t *testing.T) {
	if SpaceFor(cluster.TierProxy).Len() != 7 {
		t.Fatal("proxy space should have 7 parameters")
	}
	if SpaceFor(cluster.TierApp).Len() != 7 {
		t.Fatal("app space should have 7 parameters")
	}
	if SpaceFor(cluster.TierDB).Len() != 9 {
		t.Fatal("db space should have 9 parameters")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad tier accepted")
		}
	}()
	SpaceFor(cluster.Tier(9))
}

func TestMeasurementResponseTimes(t *testing.T) {
	sys := smallSystem(0)
	d := tpcw.NewDriver(sys.Eng, sys, sys.Catalog, tpcw.DriverOptions{
		Browsers: 40, Workload: tpcw.Shopping, ThinkMean: 1, Seed: 9,
	})
	m := Measure(sys, d, 5, 30, 2)
	if m.RespMean <= 0 || m.RespP50 <= 0 {
		t.Fatal("response times not measured")
	}
	if !(m.RespP50 <= m.RespP90 && m.RespP90 <= m.RespP99) {
		t.Fatalf("percentiles not ordered: %v %v %v", m.RespP50, m.RespP90, m.RespP99)
	}
	if m.RespP99 > 30 {
		t.Fatalf("P99 response %vs implausible", m.RespP99)
	}
}

func TestMeasurementLineWIPSSumsToWIPS(t *testing.T) {
	sys := smallSystem(2)
	d := tpcw.NewDriver(sys.Eng, sys, sys.Catalog, tpcw.DriverOptions{
		Browsers: 40, Workload: tpcw.Shopping, ThinkMean: 1, Seed: 9,
	})
	m := Measure(sys, d, 5, 30, 2)
	if len(m.LineWIPS) != 2 {
		t.Fatalf("LineWIPS = %v", m.LineWIPS)
	}
	sum := m.LineWIPS[0] + m.LineWIPS[1]
	if diff := sum - m.WIPS; diff > 0.5 || diff < -0.5 {
		t.Fatalf("line WIPS %v do not sum to WIPS %v", m.LineWIPS, m.WIPS)
	}
}
