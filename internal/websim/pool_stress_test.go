package websim

import (
	"testing"

	"webharmony/internal/cluster"
	"webharmony/internal/tpcw"
)

// TestPoolChurnStress hammers the pooled request records with mid-flight
// churn: nodes of every tier failing and recovering, whole-system
// restarts replacing the tier servers underneath in-flight pages, and
// workload switches — under an ordering-heavy load that exercises
// rejections at every accept queue. The stage sentinels panic if a stale
// callback ever reaches a recycled record, so the test completing at all
// proves recycled structs never alias a live page; the live counters and
// free-list bounds then prove the pools neither leak records nor
// double-free them. The CI race job runs this under -race.
func TestPoolChurnStress(t *testing.T) {
	const browsers = 120
	sys := New(Options{
		ProxyNodes:     2,
		AppNodes:       2,
		DBNodes:        2,
		Scale:          300,
		Seed:           77,
		ProxyDiskBytes: 1 << 20,
	})
	d := tpcw.NewDriver(sys.Eng, sys, sys.Catalog, tpcw.DriverOptions{
		Browsers:  browsers,
		Workload:  tpcw.Ordering,
		ThinkMean: 0.2,
		Seed:      77,
	})
	d.Start()

	ids := map[cluster.Tier][]int{}
	maxImages := 0
	for _, n := range sys.Cluster.Nodes() {
		ids[n.Tier()] = append(ids[n.Tier()], n.ID())
	}
	for i := 0; i < tpcw.NumInteractions; i++ {
		if p := tpcw.ProfileOf(tpcw.Interaction(i)); p.Images > maxImages {
			maxImages = p.Images
		}
	}

	now := 0.0
	step := func(dt float64) {
		now += dt
		sys.Eng.RunUntil(now)
	}
	workloads := tpcw.Workloads()
	for round := 0; round < 24; round++ {
		step(0.8)
		// Fail one node of a rotating tier with requests in flight, run
		// with the tier degraded, then bring it back.
		tier := cluster.Tiers()[round%3]
		id := ids[tier][round%len(ids[tier])]
		sys.FailNode(id)
		step(0.7)
		sys.RecoverNode(id)
		if round%3 == 0 {
			// Replace every tier server underneath the in-flight pages.
			sys.Restart()
		}
		if round%4 == 0 {
			d.SetWorkload(workloads[(round/4)%len(workloads)])
		}
		if sys.livePages < 0 || sys.liveObjs < 0 {
			t.Fatalf("round %d: negative live counts (pages=%d objs=%d): a record was double-freed",
				round, sys.livePages, sys.liveObjs)
		}
		if sys.livePages > browsers {
			t.Fatalf("round %d: %d live pages for %d browsers: records leaked",
				round, sys.livePages, browsers)
		}
	}
	d.Stop()
	sys.Eng.Run() // drain every in-flight page

	if sys.livePages != 0 || sys.liveObjs != 0 {
		t.Errorf("after drain: %d pages and %d objects still live, want 0/0", sys.livePages, sys.liveObjs)
	}
	c := d.Counters()
	if got, want := sys.PagesOK()+sys.PagesFailed(), c.Total()+c.Errors; got != want {
		t.Errorf("page accounting diverged: system settled %d pages, driver saw %d", got, want)
	}
	// Each browser has at most one page in flight, and a page at most
	// 1+maxImages objects, so the free lists can never legitimately exceed
	// those high-water marks — more would mean double-freed records.
	if len(sys.freePages) > browsers {
		t.Errorf("free page list holds %d records, cap is %d browsers", len(sys.freePages), browsers)
	}
	if max := browsers * (1 + maxImages); len(sys.freeObjs) > max {
		t.Errorf("free object list holds %d records, cap is %d", len(sys.freeObjs), max)
	}
	if sys.PagesOK() == 0 || sys.PagesFailed() == 0 {
		t.Errorf("stress run not exercising both outcomes: ok=%d fail=%d", sys.PagesOK(), sys.PagesFailed())
	}
}
