package websim

import (
	"testing"

	"webharmony/internal/tpcw"
)

// TestCalibrationReport is a diagnostic: it prints the default-config WIPS
// for each workload on the 4-machine (1/1/1) setup so the cost models can
// be sanity-checked. It never fails unless throughput is zero.
func TestCalibrationReport(t *testing.T) {
	for _, w := range tpcw.Workloads() {
		sys := New(Options{ProxyNodes: 1, AppNodes: 1, DBNodes: 1, Seed: 1})
		d := tpcw.NewDriver(sys.Eng, sys, sys.Catalog, tpcw.DriverOptions{
			Browsers: 550, Workload: w, ThinkMean: 2.0, Seed: 2,
		})
		m := Measure(sys, d, 20, 100, 5)
		t.Logf("%v: WIPS=%.1f (b=%.1f o=%.1f) err=%.3f", w, m.WIPS, m.WIPSb, m.WIPSo, m.ErrorRate)
		if m.WIPS == 0 {
			t.Fatalf("%v: zero throughput", w)
		}
		// Utilization snapshot for the report.
		for _, n := range sys.Cluster.Nodes() {
			snap := n.Snapshot()
			sys.Eng.RunUntil(sys.Eng.Now() + 20)
			u := n.Utilization(snap)
			t.Logf("  %s(%v): cpu=%.2f disk=%.2f net=%.2f mem=%.2f",
				n.Name(), n.Tier(), u[0], u[3], u[2], u[1])
		}
	}
}
