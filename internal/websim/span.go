package websim

import (
	"webharmony/internal/cluster"
	"webharmony/internal/simnet"
	"webharmony/internal/stats"
	"webharmony/internal/tpcw"
)

// SpanSink aggregates completed page span trees into the latency
// attribution surface: per-(interaction, tier-group, kind) latency
// histograms, running queue/service attribution totals snapshotted at
// tuning-iteration boundaries, and a deterministically sampled set of full
// span dumps. One sink serves one System — in a tuning run, one
// (replicate, unit) lab — so everything here is single-threaded and the
// telemetry collector can merge sinks in (replicate, unit) order for
// worker-count-independent output.
//
// The fold path (page) is on the simulator's hot path and allocates
// nothing in steady state: histograms are value-embedded fixed arrays,
// attribution totals are plain counters, and only the sampled pages copy
// their span tree out of the pooled request records.
type SpanSink struct {
	eng *simnet.Engine

	// hists[interaction][group][kind] observes, per successful page, the
	// page's summed ticks in that (tier group, queue|service) cell —
	// summed across parallel children, so it is resource time, not wall
	// clock. resp observes successful pages' end-to-end response time.
	hists [tpcw.NumInteractions][cluster.NumSpanGroups][2]stats.LatencyHist
	resp  [tpcw.NumInteractions]stats.LatencyHist

	// Running attribution totals over all pages (failed ones included:
	// their waiting is real), with the previous snapshot's values kept for
	// per-iteration deltas.
	totals    [cluster.NumSpanGroups][2]int64
	prev      [cluster.NumSpanGroups][2]int64
	pages     uint64
	prevPages uint64

	snaps []AttrSnap

	// sampleEvery > 0 dumps every sampleEvery-th folded page (the first
	// page always included), a deterministic systematic sample; 0 disables
	// dumping.
	sampleEvery int
	dumps       []SpanDump
}

// AttrSnap is the attribution delta accumulated since the previous
// snapshot — one tuning iteration's queue/service ticks per tier group.
type AttrSnap struct {
	Iter  int     // tuning iteration the window ended at
	T     float64 // simulated time of the snapshot
	Pages uint64  // pages folded in the window
	Queue [cluster.NumSpanGroups]int64
	Svc   [cluster.NumSpanGroups]int64
}

// SpanDump is one sampled page's full span tree, copied out of the pooled
// request record at fold time.
type SpanDump struct {
	T     int64 // start tick
	Iter  tpcw.Interaction
	OK    bool
	Total int64 // end-to-end response ticks
	Segs  []simnet.SpanSeg
	Kids  []KidDump
}

// KidDump is one folded child span (page document or embedded image).
type KidDump struct {
	Offset   int64 // start tick relative to the page's start
	Total    int64 // child response ticks
	Critical bool
	OK       bool
	Cache    uint8 // objCache* label; ObjCacheName exports it
	Segs     []simnet.SpanSeg
}

// NewSpanSink creates a sink; sampleEvery > 0 additionally dumps every
// sampleEvery-th page's full span tree.
func NewSpanSink(sampleEvery int) *SpanSink {
	return &SpanSink{sampleEvery: sampleEvery}
}

// SetSpanSink attaches a sink to the system: every page request from now
// on records a span tree and folds it into the sink on completion. A nil
// sink detaches, making span recording fully inert again.
func (s *System) SetSpanSink(k *SpanSink) {
	if k != nil {
		k.eng = s.Eng
	}
	s.spanSink = k
}

// SpanSink returns the attached sink, or nil.
func (s *System) SpanSink() *SpanSink { return s.spanSink }

// page folds a completing page's span tree into the sink. Called from
// pageReq.finish before the record is recycled; the span buffer's storage
// survives only until this returns.
func (k *SpanSink) page(r *pageReq, ok bool) {
	end := k.eng.NowTicks()
	b := &r.span
	b.Deactivate()
	// Work the page's done callback schedules (browser think timers)
	// belongs to no request; detaching here keeps the recycled buffer from
	// leaking into it.
	k.eng.SetSpan(nil)

	total := end - b.Start()
	var acc [cluster.NumSpanGroups][2]int64
	var rootSum, critSum int64
	for _, sg := range b.Segs {
		acc[cluster.SpanSiteGroup(sg.Site)][sg.Kind] += sg.Dur
		rootSum += sg.Dur
	}
	for i := range b.Kids {
		if b.Kids[i].Critical {
			critSum += b.Kids[i].End - b.Kids[i].Start
		}
	}
	for _, sg := range b.KidSegs {
		acc[cluster.SpanSiteGroup(sg.Site)][sg.Kind] += sg.Dur
	}
	// The page's own segments plus its critical children tile the response
	// time; a page that died mid-pipeline may leave an uncovered tail,
	// which stays visible as unattributed ("other") time rather than
	// silently vanishing. Overshoot means the decomposition is broken.
	residual := total - rootSum - critSum
	if residual < 0 {
		panic("websim: span decomposition exceeds page response time")
	}
	if residual > 0 {
		acc[cluster.SpanGroupOther][simnet.SpanQueue] += residual
	}

	k.pages++
	it := r.pr.Interaction
	if it < 0 || int(it) >= tpcw.NumInteractions {
		it = 0
	}
	for g := range acc {
		for kind := range acc[g] {
			d := acc[g][kind]
			if d == 0 {
				continue
			}
			k.totals[g][kind] += d
			if ok {
				k.hists[it][g][kind].Observe(d)
			}
		}
	}
	if ok {
		k.resp[it].Observe(total)
	}
	if k.sampleEvery > 0 && (k.pages-1)%uint64(k.sampleEvery) == 0 {
		k.dump(b, it, ok, total)
	}
}

// dump copies one page's span tree out of its pooled buffer.
func (k *SpanSink) dump(b *simnet.SpanBuf, it tpcw.Interaction, ok bool, total int64) {
	d := SpanDump{
		T:     b.Start(),
		Iter:  it,
		OK:    ok,
		Total: total,
		Segs:  append([]simnet.SpanSeg(nil), b.Segs...),
	}
	if len(b.Kids) > 0 {
		d.Kids = make([]KidDump, len(b.Kids))
		for i := range b.Kids {
			kid := &b.Kids[i]
			d.Kids[i] = KidDump{
				Offset:   kid.Start - b.Start(),
				Total:    kid.End - kid.Start,
				Critical: kid.Critical,
				OK:       kid.OK,
				Cache:    kid.Label,
				Segs:     append([]simnet.SpanSeg(nil), b.KidSpanSegs(i)...),
			}
		}
	}
	k.dumps = append(k.dumps, d)
}

// Snapshot closes the current attribution window: the queue/service ticks
// accumulated since the previous snapshot are recorded against tuning
// iteration iter at simulated time t. Call once per measured iteration.
func (k *SpanSink) Snapshot(iter int, t float64) {
	sn := AttrSnap{Iter: iter, T: t, Pages: k.pages - k.prevPages}
	for g := range k.totals {
		sn.Queue[g] = k.totals[g][simnet.SpanQueue] - k.prev[g][simnet.SpanQueue]
		sn.Svc[g] = k.totals[g][simnet.SpanService] - k.prev[g][simnet.SpanService]
	}
	k.prev = k.totals
	k.prevPages = k.pages
	k.snaps = append(k.snaps, sn)
}

// Pages returns the number of pages folded so far.
func (k *SpanSink) Pages() uint64 { return k.pages }

// Snapshots returns the attribution snapshots taken so far.
func (k *SpanSink) Snapshots() []AttrSnap { return k.snaps }

// Dumps returns the sampled span dumps.
func (k *SpanSink) Dumps() []SpanDump { return k.dumps }

// Hist returns the latency histogram of (interaction, tier group, kind);
// kind is simnet.SpanQueue or simnet.SpanService.
func (k *SpanSink) Hist(it tpcw.Interaction, group, kind uint8) *stats.LatencyHist {
	return &k.hists[it][group][kind]
}

// RespHist returns the end-to-end response-time histogram of an
// interaction (successful pages).
func (k *SpanSink) RespHist(it tpcw.Interaction) *stats.LatencyHist {
	return &k.resp[it]
}

// QueueTotals returns the running per-group queue-wait tick totals.
func (k *SpanSink) QueueTotals() [cluster.NumSpanGroups]int64 {
	var out [cluster.NumSpanGroups]int64
	for g := range k.totals {
		out[g] = k.totals[g][simnet.SpanQueue]
	}
	return out
}

// ServiceTotals returns the running per-group service tick totals.
func (k *SpanSink) ServiceTotals() [cluster.NumSpanGroups]int64 {
	var out [cluster.NumSpanGroups]int64
	for g := range k.totals {
		out[g] = k.totals[g][simnet.SpanService]
	}
	return out
}
