package websim

import "webharmony/internal/tpcw"

// Measurement summarizes one measurement window.
type Measurement struct {
	WIPS      float64 // completed web interactions per second
	WIPSb     float64 // browse-class interactions per second
	WIPSo     float64 // order-class interactions per second
	ErrorRate float64
	Counters  tpcw.Counters
	LineWIPS  []float64 // per-work-line WIPS (nil without work lines)

	// Response-time statistics over the measurement window, seconds.
	RespMean float64
	RespP50  float64
	RespP90  float64
	RespP99  float64
}

// Measure runs one paper-style iteration window against the system: warm
// seconds of warm-up, measure seconds of measurement, cool seconds of
// cool-down. The driver keeps running across calls; the caller typically
// invokes System.Restart between iterations to apply a new configuration.
func Measure(sys *System, d *tpcw.Driver, warm, measure, cool float64) Measurement {
	if !d.Running() {
		d.Start()
	}
	eng := sys.Eng
	eng.RunUntil(eng.Now() + warm)
	d.ResetCounters()
	sys.ResetCounters()
	eng.RunUntil(eng.Now() + measure)
	c := d.Counters()
	rt := d.ResponseTimes()
	m := Measurement{
		WIPS:      c.WIPS(measure),
		WIPSb:     float64(c.Browse) / measure,
		WIPSo:     float64(c.Order) / measure,
		ErrorRate: c.ErrorRate(),
		Counters:  c,
		RespMean:  rt.Mean(),
		RespP50:   rt.Percentile(50),
		RespP90:   rt.Percentile(90),
		RespP99:   rt.Percentile(99),
	}
	if lines := sys.WorkLines(); lines > 0 {
		m.LineWIPS = make([]float64, lines)
		for l := 0; l < lines; l++ {
			m.LineWIPS[l] = float64(sys.LineCompleted(l)) / measure
		}
	}
	eng.RunUntil(eng.Now() + cool)
	return m
}
