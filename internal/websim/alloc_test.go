package websim

import (
	"testing"

	"webharmony/internal/rng"
	"webharmony/internal/tpcw"
	"webharmony/internal/webobj"
)

// TestPagePathAllocs pins the steady-state allocation cost of one complete
// page request (System.Request through finishPage, across all three
// tiers). With the pooled pageReq/objReq/call/query state machines and the
// engine's event free list, a warmed system serves pages from recycled
// records: the only remaining allocations are amortized container growth
// and cache-admission bookkeeping on the occasional miss, so the per-page
// average must stay a small constant (DESIGN.md §7).
func TestPagePathAllocs(t *testing.T) {
	sys := New(Options{
		ProxyNodes: 1,
		AppNodes:   1,
		DBNodes:    1,
		Scale:      200,
		Seed:       11,
	})
	gen := tpcw.NewPageGen(sys.Catalog, rng.New(99))
	var buf []webobj.Object
	done := func(bool) {}
	next := 0
	serve := func() {
		pr := gen.PageBuf(tpcw.Interaction(next%tpcw.NumInteractions), 0, buf)
		next++
		buf = pr.Images
		sys.Request(pr, done)
		sys.Eng.Run()
	}
	// Warm up: fill the proxy cache, grow the free lists, the event heap
	// and the pool wait queues to their steady-state capacities.
	for i := 0; i < 3000; i++ {
		serve()
	}
	const ceiling = 2.0
	if avg := testing.AllocsPerRun(3000, serve); avg > ceiling {
		t.Errorf("page path: %.3f allocs/page, ceiling %.1f", avg, ceiling)
	}
	if sys.livePages != 0 || sys.liveObjs != 0 {
		t.Errorf("leaked pooled records: %d pages, %d objects still live after drain",
			sys.livePages, sys.liveObjs)
	}
}
