package websim

import (
	"testing"

	"webharmony/internal/appserver"
	"webharmony/internal/cluster"
	"webharmony/internal/db"
	"webharmony/internal/proxy"
	"webharmony/internal/tpcw"
)

// runWith measures WIPS on a 1/1/1 cluster for workload w, optionally
// mutating configurations first.
func runWith(t *testing.T, w tpcw.Workload, browsers int, mutate func(sys *System)) Measurement {
	t.Helper()
	sys := New(Options{ProxyNodes: 1, AppNodes: 1, DBNodes: 1, Seed: 11})
	if mutate != nil {
		mutate(sys)
		sys.Restart()
	}
	d := tpcw.NewDriver(sys.Eng, sys, sys.Catalog, tpcw.DriverOptions{
		Browsers: browsers, Workload: w, ThinkMean: 2.0, Seed: 12,
	})
	return Measure(sys, d, 30, 150, 5)
}

// applyTable3 sets per-tier configurations resembling the paper's tuned
// values for the given workload (Table 3).
func applyTable3(sys *System, w tpcw.Workload) {
	psp, asp, dsp := proxy.Space(), appserver.Space(), db.Space()
	pc, ac, dc := psp.DefaultConfig(), asp.DefaultConfig(), dsp.DefaultConfig()
	setP := func(n string, v int64) { pc[psp.IndexOf(n)] = v }
	setA := func(n string, v int64) { ac[asp.IndexOf(n)] = v }
	setD := func(n string, v int64) { dc[dsp.IndexOf(n)] = v }
	switch w {
	case tpcw.Browsing:
		setP(proxy.ParamCacheMem, 64)
		setP(proxy.ParamMaxObjectSizeMem, 128)
		setA(appserver.ParamMinProcessors, 1)
		setA(appserver.ParamMaxProcessors, 24)
		setA(appserver.ParamAJPMaxProcessors, 86)
		setA(appserver.ParamAJPAcceptCount, 76)
		setD(db.ParamTableCache, 873)
		setD(db.ParamThreadConcurrency, 81)
		setD(db.ParamJoinBufferSize, 407552)
		setD(db.ParamMaxConnections, 201)
		setD(db.ParamBinlogCacheSize, 63488)
		setD(db.ParamDelayedQueueSize, 2600)
	case tpcw.Shopping:
		setP(proxy.ParamCacheMem, 96)
		setP(proxy.ParamMaxObjectSizeMem, 256)
		setA(appserver.ParamMinProcessors, 16)
		setA(appserver.ParamMaxProcessors, 40)
		setA(appserver.ParamAcceptCount, 21)
		setA(appserver.ParamBufferSize, 3585)
		setA(appserver.ParamAJPMaxProcessors, 296)
		setA(appserver.ParamAJPAcceptCount, 306)
		setD(db.ParamTableCache, 905)
		setD(db.ParamThreadConcurrency, 91)
		setD(db.ParamJoinBufferSize, 407552)
		setD(db.ParamMaxConnections, 451)
		setD(db.ParamBinlogCacheSize, 153600)
		setD(db.ParamDelayedQueueSize, 9100)
	case tpcw.Ordering:
		setP(proxy.ParamCacheMem, 21)
		setP(proxy.ParamMaxObjectSizeMem, 256)
		setA(appserver.ParamMinProcessors, 102)
		setA(appserver.ParamMaxProcessors, 131)
		setA(appserver.ParamAcceptCount, 136)
		setA(appserver.ParamBufferSize, 6657)
		setA(appserver.ParamAJPMaxProcessors, 161)
		setA(appserver.ParamAJPAcceptCount, 671)
		setD(db.ParamTableCache, 761)
		setD(db.ParamThreadConcurrency, 76)
		setD(db.ParamJoinBufferSize, 407552)
		setD(db.ParamMaxConnections, 701)
		setD(db.ParamBinlogCacheSize, 284672)
		setD(db.ParamDelayedQueueSize, 7100)
	}
	sys.SetTierConfig(cluster.TierProxy, pc)
	sys.SetTierConfig(cluster.TierApp, ac)
	sys.SetTierConfig(cluster.TierDB, dc)
}

// TestSurfaceDirections verifies that a Table-3-style tuned configuration
// beats the default for every workload, with the paper's relative order of
// gains (ordering gains least: its default is already adequate).
func TestSurfaceDirections(t *testing.T) {
	const ebs = 550
	gains := map[tpcw.Workload]float64{}
	for _, w := range tpcw.Workloads() {
		base := runWith(t, w, ebs, nil)
		tuned := runWith(t, w, ebs, func(sys *System) { applyTable3(sys, w) })
		gain := (tuned.WIPS - base.WIPS) / base.WIPS
		gains[w] = gain
		t.Logf("%v: default=%.1f (err %.2f) tuned=%.1f (err %.2f) gain=%.1f%%",
			w, base.WIPS, base.ErrorRate, tuned.WIPS, tuned.ErrorRate, 100*gain)
		if gain <= 0 {
			t.Errorf("%v: tuned config did not beat default", w)
		}
	}
	// The paper's gains are 5–16%; ours should land in a comparable band
	// (at least a few percent, not an order of magnitude more).
	for w, g := range gains {
		if g > 0.6 {
			t.Errorf("%v: gain %.0f%% implausibly large vs the paper's 5-16%%", w, 100*g)
		}
	}
}

// TestMemoryOvercommitHurts verifies the memory coupling: a bloated
// database configuration thrashes the node and collapses throughput.
func TestMemoryOvercommitHurts(t *testing.T) {
	base := runWith(t, tpcw.Shopping, 550, nil)
	bloated := runWith(t, tpcw.Shopping, 550, func(sys *System) {
		dsp := db.Space()
		dcfg := dsp.DefaultConfig()
		dcfg[dsp.IndexOf(db.ParamThreadConcurrency)] = 128
		dcfg[dsp.IndexOf(db.ParamJoinBufferSize)] = 16777216
		dcfg[dsp.IndexOf(db.ParamThreadStack)] = 2097152
		dcfg[dsp.IndexOf(db.ParamMaxConnections)] = 1001
		dcfg[dsp.IndexOf(db.ParamNetBufferLength)] = 65536
		sys.SetTierConfig(cluster.TierDB, dcfg)
	})
	t.Logf("shopping: default=%.1f bloatedDB=%.1f", base.WIPS, bloated.WIPS)
	if bloated.WIPS >= base.WIPS {
		t.Errorf("memory overcommit did not hurt: %v >= %v", bloated.WIPS, base.WIPS)
	}
}
