package websim

import (
	"testing"

	"webharmony/internal/cluster"
	"webharmony/internal/rng"
	"webharmony/internal/simnet"
	"webharmony/internal/tpcw"
	"webharmony/internal/webobj"
)

// spanSystem builds a small system with a sink sampling every page, so
// invariant tests see every span tree.
func spanSystem(t *testing.T, opts Options) (*System, *SpanSink) {
	t.Helper()
	sys := New(opts)
	sink := NewSpanSink(1)
	sys.SetSpanSink(sink)
	return sys, sink
}

// servePages drives n pages to completion, round-robin over interactions,
// issuing them in concurrent batches so stations and pools actually queue.
func servePages(sys *System, n int, seed uint64) {
	gen := tpcw.NewPageGen(sys.Catalog, rng.New(seed))
	done := func(bool) {}
	const batch = 16
	for i := 0; i < n; i += batch {
		for j := i; j < i+batch && j < n; j++ {
			pr := gen.Page(tpcw.Interaction(j%tpcw.NumInteractions), j%7)
			sys.Request(pr, done)
		}
		sys.Eng.Run()
	}
}

// TestSpanDecompositionInvariant is the property test of the span layer:
// for every recorded page, the page's own segments plus its critical-path
// children tile the end-to-end response time exactly — integer ticks, no
// epsilon, no unattributed residual on successful pages.
func TestSpanDecompositionInvariant(t *testing.T) {
	sys, sink := spanSystem(t, Options{
		ProxyNodes: 1, AppNodes: 2, DBNodes: 1, Scale: 300, Seed: 7,
	})
	servePages(sys, 2000, 21)

	if sink.Pages() == 0 || len(sink.Dumps()) != int(sink.Pages()) {
		t.Fatalf("sampled %d dumps of %d pages, want all", len(sink.Dumps()), sink.Pages())
	}
	var withKids, withQueue int
	for di, d := range sink.Dumps() {
		var rootSum, critSum int64
		for _, sg := range d.Segs {
			if sg.Dur <= 0 {
				t.Fatalf("dump %d: non-positive segment %+v", di, sg)
			}
			if d.OK && sg.Site == 0 {
				t.Errorf("dump %d: unattributed segment on a successful page", di)
			}
			if sg.Kind == simnet.SpanQueue {
				withQueue++
			}
			rootSum += sg.Dur
		}
		for ki, kid := range d.Kids {
			withKids++
			var kidSum int64
			for _, sg := range kid.Segs {
				if sg.Dur <= 0 {
					t.Fatalf("dump %d kid %d: non-positive segment %+v", di, ki, sg)
				}
				if kid.OK && sg.Site == 0 {
					t.Errorf("dump %d kid %d: unattributed segment on a successful child", di, ki)
				}
				kidSum += sg.Dur
			}
			if kidSum != kid.Total {
				t.Errorf("dump %d kid %d: segments sum %d != child total %d", di, ki, kidSum, kid.Total)
			}
			if kid.Critical {
				critSum += kid.Total
			}
		}
		if d.OK && rootSum+critSum != d.Total {
			t.Errorf("dump %d (%v): root %d + critical kids %d != response %d",
				di, d.Iter, rootSum, critSum, d.Total)
		}
	}
	if withKids == 0 {
		t.Error("no child spans recorded — image fan-out not captured")
	}
	if withQueue == 0 {
		t.Error("no queue segments recorded across 2000 pages")
	}
	// The tier-group histograms must agree with the running totals on
	// total observation mass for successful pages.
	if sink.RespHist(tpcw.Home).N() == 0 {
		t.Error("no Home response-time observations")
	}
}

// TestSpanAttributionSnapshots checks windowed attribution deltas: two
// snapshots split the run, deltas are non-negative and sum to the running
// totals.
func TestSpanAttributionSnapshots(t *testing.T) {
	sys, sink := spanSystem(t, Options{
		ProxyNodes: 1, AppNodes: 1, DBNodes: 1, Scale: 200, Seed: 3,
	})
	servePages(sys, 400, 5)
	sink.Snapshot(1, sys.Eng.Now())
	servePages(sys, 400, 6)
	sink.Snapshot(2, sys.Eng.Now())

	snaps := sink.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("got %d snapshots, want 2", len(snaps))
	}
	if snaps[0].Pages == 0 || snaps[1].Pages == 0 {
		t.Errorf("empty snapshot windows: %d/%d pages", snaps[0].Pages, snaps[1].Pages)
	}
	if snaps[0].Pages+snaps[1].Pages != sink.Pages() {
		t.Errorf("window pages %d+%d != total %d", snaps[0].Pages, snaps[1].Pages, sink.Pages())
	}
	qt, st := sink.QueueTotals(), sink.ServiceTotals()
	for g := 0; g < cluster.NumSpanGroups; g++ {
		if snaps[0].Queue[g] < 0 || snaps[1].Queue[g] < 0 || snaps[0].Svc[g] < 0 || snaps[1].Svc[g] < 0 {
			t.Fatalf("negative attribution delta in group %s", cluster.SpanGroupName(uint8(g)))
		}
		if snaps[0].Queue[g]+snaps[1].Queue[g] != qt[g] {
			t.Errorf("group %s queue windows do not sum to total", cluster.SpanGroupName(uint8(g)))
		}
		if snaps[0].Svc[g]+snaps[1].Svc[g] != st[g] {
			t.Errorf("group %s service windows do not sum to total", cluster.SpanGroupName(uint8(g)))
		}
	}
	// A loaded three-tier run must show service time in every tier group.
	for _, g := range []uint8{cluster.SpanGroupProxy, cluster.SpanGroupApp, cluster.SpanGroupDB, cluster.SpanGroupNet} {
		if st[g] == 0 {
			t.Errorf("no service time attributed to group %s", cluster.SpanGroupName(g))
		}
	}
}

// TestSpanRecordingIsInvisible pins the zero-overhead contract: span
// recording touches no RNG and reorders no events, so the measured
// workload metric is bit-identical with and without a sink attached.
func TestSpanRecordingIsInvisible(t *testing.T) {
	run := func(withSink bool) (uint64, float64) {
		sys := New(Options{ProxyNodes: 1, AppNodes: 1, DBNodes: 1, Scale: 200, Seed: 17})
		if withSink {
			sys.SetSpanSink(NewSpanSink(1))
		}
		servePages(sys, 1500, 9)
		return sys.PagesOK(), sys.Eng.Now()
	}
	okA, tA := run(false)
	okB, tB := run(true)
	if okA != okB || tA != tB {
		t.Errorf("span recording perturbed the simulation: pages %d vs %d, clock %v vs %v",
			okA, okB, tA, tB)
	}
}

// TestPagePathAllocsWithSpans mirrors TestPagePathAllocs with a span sink
// attached (sampling off, as in a -latency run): span recording itself
// must add zero steady-state allocations, holding the same ceiling.
func TestPagePathAllocsWithSpans(t *testing.T) {
	sys := New(Options{
		ProxyNodes: 1,
		AppNodes:   1,
		DBNodes:    1,
		Scale:      200,
		Seed:       11,
	})
	sys.SetSpanSink(NewSpanSink(0))
	gen := tpcw.NewPageGen(sys.Catalog, rng.New(99))
	var buf []webobj.Object
	done := func(bool) {}
	next := 0
	serve := func() {
		pr := gen.PageBuf(tpcw.Interaction(next%tpcw.NumInteractions), 0, buf)
		next++
		buf = pr.Images
		sys.Request(pr, done)
		sys.Eng.Run()
	}
	for i := 0; i < 3000; i++ {
		serve()
	}
	const ceiling = 2.0
	if avg := testing.AllocsPerRun(3000, serve); avg > ceiling {
		t.Errorf("page path with spans: %.3f allocs/page, ceiling %.1f", avg, ceiling)
	}
	if sys.livePages != 0 || sys.liveObjs != 0 {
		t.Errorf("leaked pooled records: %d pages, %d objects still live after drain",
			sys.livePages, sys.liveObjs)
	}
	if sys.spanSink.Pages() == 0 {
		t.Error("sink folded no pages")
	}
}

// TestSpanSitesFollowMoves checks that reassigning a node to another tier
// re-points its stations' span attribution (the §IV reconfiguration move).
func TestSpanSitesFollowMoves(t *testing.T) {
	sys, sink := spanSystem(t, Options{
		ProxyNodes: 2, AppNodes: 1, DBNodes: 1, Scale: 200, Seed: 5,
	})
	servePages(sys, 300, 11)
	before := sink.ServiceTotals()
	// Move a proxy node into the app tier; its CPU/disk/NIC time must now
	// land in the app group.
	moved := sys.Cluster.TierNodes(cluster.TierProxy)[1].ID()
	sys.MoveNode(moved, cluster.TierApp, nil)
	sink.Snapshot(1, sys.Eng.Now())
	servePages(sys, 300, 12)
	after := sink.ServiceTotals()
	if after[cluster.SpanGroupApp] <= before[cluster.SpanGroupApp] {
		t.Error("no app-tier service time accrued after the move")
	}
}
