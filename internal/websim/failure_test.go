package websim

import (
	"testing"

	"webharmony/internal/tpcw"
)

func TestServiceSurvivesProxyFailure(t *testing.T) {
	sys := smallSystem(0) // 2/2/2
	d := tpcw.NewDriver(sys.Eng, sys, sys.Catalog, tpcw.DriverOptions{
		Browsers: 60, Workload: tpcw.Shopping, ThinkMean: 1, Seed: 5,
	})
	d.Start()
	sys.Eng.RunUntil(30)
	d.ResetCounters()
	sys.FailNode(0) // one of two proxies
	if !sys.NodeFailed(0) {
		t.Fatal("node not marked failed")
	}
	sys.Eng.RunUntil(sys.Eng.Now() + 60)
	c := d.Counters()
	if c.Total() == 0 {
		t.Fatal("service died with one proxy remaining")
	}
	if c.ErrorRate() > 0.2 {
		t.Fatalf("error rate %.2f after single-proxy failure", c.ErrorRate())
	}
	// The dead node served nothing.
	if st, ok := sys.ProxyStats(0); ok {
		t.Fatalf("failed node still has a live proxy: %+v", st)
	}
}

func TestTierOutageFailsRequests(t *testing.T) {
	sys := New(Options{ProxyNodes: 1, AppNodes: 1, DBNodes: 1, Scale: 300, Seed: 2})
	d := tpcw.NewDriver(sys.Eng, sys, sys.Catalog, tpcw.DriverOptions{
		Browsers: 20, Workload: tpcw.Shopping, ThinkMean: 0.5, Seed: 3,
	})
	d.Start()
	sys.Eng.RunUntil(20)
	d.ResetCounters()
	sys.FailNode(2) // the only database node
	sys.Eng.RunUntil(sys.Eng.Now() + 30)
	c := d.Counters()
	if c.Errors == 0 {
		t.Fatal("no errors despite a total database outage")
	}
	// Static pages (no DB) can still complete.
	if c.Total() == 0 {
		t.Fatal("even static pages failed")
	}
}

func TestRecoveryRestoresService(t *testing.T) {
	sys := New(Options{ProxyNodes: 1, AppNodes: 1, DBNodes: 1, Scale: 300, Seed: 2})
	d := tpcw.NewDriver(sys.Eng, sys, sys.Catalog, tpcw.DriverOptions{
		Browsers: 20, Workload: tpcw.Ordering, ThinkMean: 0.5, Seed: 3,
	})
	d.Start()
	sys.FailNode(2)
	sys.Eng.RunUntil(20)
	sys.RecoverNode(2)
	if sys.NodeFailed(2) {
		t.Fatal("node still marked failed")
	}
	d.ResetCounters()
	sys.Eng.RunUntil(sys.Eng.Now() + 40)
	c := d.Counters()
	if c.Order == 0 {
		t.Fatal("order pages still failing after recovery")
	}
	if c.ErrorRate() > 0.3 {
		t.Fatalf("error rate %.2f after recovery", c.ErrorRate())
	}
}

func TestFailedNodeStaysDownAcrossRestart(t *testing.T) {
	sys := smallSystem(0)
	sys.FailNode(1)
	sys.Restart()
	if _, ok := sys.ProxyStats(1); ok {
		t.Fatal("Restart resurrected a failed node")
	}
	sys.RecoverNode(1)
	if _, ok := sys.ProxyStats(1); !ok {
		t.Fatal("recovery did not restart the server")
	}
}

func TestFailUnknownNodePanics(t *testing.T) {
	sys := smallSystem(0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	sys.FailNode(99)
}

func TestFailRecoverIdempotent(t *testing.T) {
	sys := smallSystem(0)
	sys.FailNode(0)
	sys.FailNode(0) // no-op
	sys.RecoverNode(0)
	sys.RecoverNode(0) // no-op
	if sys.NodeFailed(0) {
		t.Fatal("state wrong after idempotent ops")
	}
}
