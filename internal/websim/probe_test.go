package websim

import (
	"testing"

	"webharmony/internal/tpcw"
)

// TestProbeRejectionSources prints where requests are shed per workload
// under the default configuration. Diagnostic only.
func TestProbeRejectionSources(t *testing.T) {
	for _, w := range tpcw.Workloads() {
		sys := New(Options{ProxyNodes: 1, AppNodes: 1, DBNodes: 1, Seed: 11})
		d := tpcw.NewDriver(sys.Eng, sys, sys.Catalog, tpcw.DriverOptions{
			Browsers: 550, Workload: w, ThinkMean: 2.0, Seed: 12,
		})
		m := Measure(sys, d, 30, 150, 5)
		a, _ := sys.AppServer(1)
		dbs, _ := sys.DBServer(2)
		ps, _ := sys.ProxyStats(0)
		t.Logf("%v: WIPS=%.1f err=%.3f | app rejHTTP=%d rejAJP=%d acc=%d | db rejConn=%d q=%d | proxy hitMem=%d hitDisk=%d miss=%d",
			w, m.WIPS, m.ErrorRate,
			a.Stats().RejectedHTTP, a.Stats().RejectedAJP, a.Stats().Accepted,
			dbs.Stats().RejectedConns, dbs.Stats().Queries,
			ps.HitsMem, ps.HitsDisk, ps.Misses)
	}
}
