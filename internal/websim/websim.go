// Package websim wires the substrate models — cluster nodes, the proxy
// cache tier, the application-server tier, the database tier and the TPC-W
// object catalog — into one simulated cluster-based e-commerce site. It
// implements tpcw.Site: emulated browsers issue page requests, pages flow
// through the tier pipeline exactly as described in §II.A of the paper
// (tier 1 serves cacheable content, tiers 1+2 serve generated pages,
// tiers 1+2+3 serve transactional pages), and the measured output is WIPS.
//
// The simulator is the stand-in for the paper's 10-machine testbed: the
// Active Harmony layers above it only ever see (configuration → measured
// performance), so any system with the same qualitative response surfaces
// reproduces the tuning behaviour.
package websim

import (
	"fmt"
	"strings"

	"webharmony/internal/appserver"
	"webharmony/internal/cluster"
	"webharmony/internal/db"
	"webharmony/internal/param"
	"webharmony/internal/proxy"
	"webharmony/internal/rng"
	"webharmony/internal/simnet"
	"webharmony/internal/tpcw"
	"webharmony/internal/webobj"
)

// Options configures a simulated site.
type Options struct {
	ProxyNodes int // nodes initially in the proxy tier
	AppNodes   int // nodes initially in the application tier
	DBNodes    int // nodes initially in the database tier

	Scale          int    // TPC-W scale factor (items); paper: 10,000
	Seed           uint64 // master seed for all stochastic components
	ProxyDiskBytes int64  // proxy disk-store capacity per node

	// WorkLines > 0 partitions the cluster into that many independent
	// work lines (§III.B parameter partitioning): a request is served
	// entirely by the nodes of one line.
	WorkLines int

	Hardware cluster.Hardware // zero value uses the paper's machines
}

func (o Options) withDefaults() Options {
	if o.ProxyNodes == 0 {
		o.ProxyNodes = 1
	}
	if o.AppNodes == 0 {
		o.AppNodes = 1
	}
	if o.DBNodes == 0 {
		o.DBNodes = 1
	}
	if o.Scale == 0 {
		o.Scale = 10000
	}
	if o.ProxyDiskBytes == 0 {
		o.ProxyDiskBytes = 4 << 30
	}
	if o.Hardware == (cluster.Hardware{}) {
		o.Hardware = cluster.DefaultHardware()
	}
	return o
}

// interTierLatency is the one-way LAN latency between tiers, seconds.
const interTierLatency = 0.0003

// osPageCacheHit is the probability that a proxy disk-store read is served
// by the operating system's page cache instead of the physical disk.
const osPageCacheHit = 0.55

// diskHitExtraCPU is the additional CPU a proxy disk-store hit costs over
// a memory hit (store open, page-cache copy), seconds.
const diskHitExtraCPU = 0.0012

// txnPageExtraCPU is the additional application-tier CPU a transactional
// (database-writing) page costs: session management, cart and order
// validation, receipt rendering. It makes the ordering workload
// application-bound, as in the paper's Figure 7(a).
const txnPageExtraCPU = 0.0065

// osBaseMemory is the per-node memory consumed by the OS and daemons.
const osBaseMemory int64 = 128 << 20

// proxyServer is one node of the presentation tier.
type proxyServer struct {
	node  *cluster.Node
	cache *proxy.Cache
	cfg   proxy.Config
}

// System is the simulated cluster-based web service.
type System struct {
	Eng     *simnet.Engine
	Cluster *cluster.Cluster
	Catalog *webobj.Catalog

	opts Options
	src  *rng.Source

	proxies map[int]*proxyServer
	apps    map[int]*appserver.Server
	dbs     map[int]*db.Server

	// Per-node current configurations, by tier space.
	nodeCfg map[int]param.Config

	rr struct{ proxy, app, db uint64 }

	// failed marks nodes that are down: they receive no traffic until
	// recovered.
	failed map[int]bool

	// Per-work-line completion counters (successful interactions).
	lineDone []uint64
	pageOK   uint64
	pageFail uint64
}

// New builds the simulated site.
func New(opts Options) *System {
	opts = opts.withDefaults()
	eng := &simnet.Engine{}
	s := &System{
		Eng:     eng,
		Catalog: webobj.NewCatalog(opts.Scale, opts.Seed^0xCA7A106),
		opts:    opts,
		src:     rng.New(opts.Seed ^ 0x51731a7e),
		proxies: make(map[int]*proxyServer),
		apps:    make(map[int]*appserver.Server),
		dbs:     make(map[int]*db.Server),
		nodeCfg: make(map[int]param.Config),
		failed:  make(map[int]bool),
	}
	s.Cluster = cluster.New(eng, opts.Hardware, opts.ProxyNodes, opts.AppNodes, opts.DBNodes)
	if opts.WorkLines > 0 {
		for _, t := range cluster.Tiers() {
			if s.Cluster.TierSize(t) < opts.WorkLines {
				panic(fmt.Sprintf("websim: %d work lines need >= %d nodes in tier %v", opts.WorkLines, opts.WorkLines, t))
			}
		}
		s.lineDone = make([]uint64, opts.WorkLines)
	}
	for _, n := range s.Cluster.Nodes() {
		s.nodeCfg[n.ID()] = defaultConfigFor(n.Tier())
		s.startServer(n)
	}
	return s
}

// defaultConfigFor returns the tier's default parameter configuration.
func defaultConfigFor(t cluster.Tier) param.Config {
	return SpaceFor(t).DefaultConfig()
}

// SpaceFor returns the tunable-parameter space of a tier.
func SpaceFor(t cluster.Tier) *param.Space {
	switch t {
	case cluster.TierProxy:
		return proxy.Space()
	case cluster.TierApp:
		return appserver.Space()
	case cluster.TierDB:
		return db.Space()
	default:
		panic("websim: unknown tier")
	}
}

// startServer instantiates the tier server process on a node from its
// stored configuration and charges its memory footprint.
func (s *System) startServer(n *cluster.Node) {
	id := n.ID()
	cfg := s.nodeCfg[id]
	switch n.Tier() {
	case cluster.TierProxy:
		pc := proxy.DecodeConfig(cfg)
		// Each restart starts with an empty store. Real Squid persists its
		// disk store across restarts; the simulator deliberately clears it
		// so every iteration's measurement is attributable to its own
		// configuration (with an inherited store, a configuration that
		// admits nothing still measures well). The warm-up window fills
		// the cache before measurement begins.
		s.proxies[id] = &proxyServer{node: n, cache: proxy.New(pc, s.opts.ProxyDiskBytes), cfg: pc}
		n.SetMemUsed(osBaseMemory + pc.MemoryFootprint())
	case cluster.TierApp:
		ac := appserver.DecodeConfig(cfg)
		s.apps[id] = appserver.New(s.Eng, n, ac, appserver.DefaultCostModel())
		n.SetMemUsed(osBaseMemory + ac.MemoryFootprint())
	case cluster.TierDB:
		dc := db.DecodeConfig(cfg)
		s.dbs[id] = db.New(s.Eng, n, dc, db.DefaultCostModel(), s.src.Split(uint64(1000+id)))
		n.SetMemUsed(osBaseMemory + dc.MemoryFootprint())
	}
}

// stopServer removes the tier server process from a node.
func (s *System) stopServer(n *cluster.Node) {
	delete(s.proxies, n.ID())
	delete(s.apps, n.ID())
	delete(s.dbs, n.ID())
	n.SetMemUsed(osBaseMemory)
}

// SetNodeConfig stores a node's configuration; it takes effect at the next
// Restart (the paper restarts servers between tuning iterations).
func (s *System) SetNodeConfig(nodeID int, cfg param.Config) {
	n := s.Cluster.Node(nodeID)
	if n == nil {
		panic(fmt.Sprintf("websim: no node %d", nodeID))
	}
	sp := SpaceFor(n.Tier())
	if !sp.Feasible(cfg) {
		panic(fmt.Sprintf("websim: infeasible config for node %d (%v tier)", nodeID, n.Tier()))
	}
	s.nodeCfg[nodeID] = cfg.Clone()
}

// NodeConfig returns the node's stored configuration.
func (s *System) NodeConfig(nodeID int) param.Config { return s.nodeCfg[nodeID].Clone() }

// SnapshotConfigs returns a copy of every node's stored configuration,
// keyed by node ID — the state a forked system needs to start from the
// same staged configurations as this one. The snapshot is independent of
// the system (deep-copied configs) and safe to take from concurrent
// readers as long as no configuration is being staged at the same time.
func (s *System) SnapshotConfigs() map[int]param.Config {
	out := make(map[int]param.Config, len(s.nodeCfg))
	for id, cfg := range s.nodeCfg {
		out[id] = cfg.Clone()
	}
	return out
}

// SetTierConfig stores the same configuration on every node of a tier
// (§III.B parameter duplication).
func (s *System) SetTierConfig(t cluster.Tier, cfg param.Config) {
	for _, n := range s.Cluster.TierNodes(t) {
		s.SetNodeConfig(n.ID(), cfg)
	}
}

// Restart re-instantiates every server from its stored configuration,
// clearing caches and statistics — one tuning-iteration boundary. Failed
// nodes stay down.
func (s *System) Restart() {
	for _, n := range s.Cluster.Nodes() {
		s.stopServer(n)
		if !s.failed[n.ID()] {
			s.startServer(n)
		}
	}
}

// MoveNode reassigns a node to another tier and starts the tier's server
// on it with the tier default configuration (or cfg, if non-nil). This is
// the §IV reconfiguration action; remaining nodes keep serving throughout.
func (s *System) MoveNode(nodeID int, to cluster.Tier, cfg param.Config) {
	n := s.Cluster.Node(nodeID)
	if n == nil {
		panic(fmt.Sprintf("websim: no node %d", nodeID))
	}
	if n.Tier() == to {
		return
	}
	if s.Cluster.TierSize(n.Tier()) <= 1 {
		panic(fmt.Sprintf("websim: cannot empty tier %v", n.Tier()))
	}
	s.stopServer(n)
	n.SetTier(to)
	if cfg == nil {
		cfg = defaultConfigFor(to)
	}
	s.nodeCfg[nodeID] = cfg.Clone()
	s.startServer(n)
}

// FailNode takes a node down: its server process stops and the router
// stops sending it traffic. Requests in flight on the node still drain
// (the front-end retries are not modeled; pages routed to a tier with no
// live node fail). The node's stored configuration is kept for recovery.
func (s *System) FailNode(nodeID int) {
	n := s.Cluster.Node(nodeID)
	if n == nil {
		panic(fmt.Sprintf("websim: no node %d", nodeID))
	}
	if s.failed[nodeID] {
		return
	}
	s.failed[nodeID] = true
	s.stopServer(n)
}

// RecoverNode brings a failed node back with its stored configuration
// (empty caches, as after a crash).
func (s *System) RecoverNode(nodeID int) {
	n := s.Cluster.Node(nodeID)
	if n == nil {
		panic(fmt.Sprintf("websim: no node %d", nodeID))
	}
	if !s.failed[nodeID] {
		return
	}
	delete(s.failed, nodeID)
	s.startServer(n)
}

// NodeFailed reports whether the node is currently down.
func (s *System) NodeFailed(nodeID int) bool { return s.failed[nodeID] }

// lineFor returns the work line serving the given browser.
func (s *System) lineFor(eb int) int {
	if s.opts.WorkLines <= 0 {
		return -1
	}
	return eb % s.opts.WorkLines
}

// pick returns the serving node of a tier for the given browser, rotating
// round-robin; with work lines, selection is restricted to the line.
func (s *System) pick(t cluster.Tier, eb int, rr *uint64) *cluster.Node {
	nodes := s.Cluster.TierNodes(t)
	if len(s.failed) > 0 {
		live := nodes[:0:0]
		for _, n := range nodes {
			if !s.failed[n.ID()] {
				live = append(live, n)
			}
		}
		nodes = live
	}
	if len(nodes) == 0 {
		return nil
	}
	if line := s.lineFor(eb); line >= 0 {
		var lineNodes []*cluster.Node
		for i, n := range nodes {
			if i%s.opts.WorkLines == line {
				lineNodes = append(lineNodes, n)
			}
		}
		if len(lineNodes) > 0 {
			nodes = lineNodes
		}
	}
	*rr++
	return nodes[int(*rr)%len(nodes)]
}

// pickProxy returns a live proxy server for the browser, or nil.
func (s *System) pickProxy(eb int) *proxyServer {
	n := s.pick(cluster.TierProxy, eb, &s.rr.proxy)
	if n == nil {
		return nil
	}
	return s.proxies[n.ID()]
}

// pickApp returns a live application server for the browser, or nil.
func (s *System) pickApp(eb int) *appserver.Server {
	n := s.pick(cluster.TierApp, eb, &s.rr.app)
	if n == nil {
		return nil
	}
	return s.apps[n.ID()]
}

// pickDB returns a live database server for the browser, or nil.
func (s *System) pickDB(eb int) *db.Server {
	n := s.pick(cluster.TierDB, eb, &s.rr.db)
	if n == nil {
		return nil
	}
	return s.dbs[n.ID()]
}

// pageFrames precomputes the "page/<interaction>" attribution frame for
// every TPC-W interaction. Interaction names contain spaces ("New
// Products"); folded-stack frames cannot (space separates stack from
// weight), so names are lowercased and dashed.
var pageFrames = func() [tpcw.NumInteractions]string {
	var out [tpcw.NumInteractions]string
	for i := range out {
		name := strings.ToLower(tpcw.Interaction(i).String())
		out[i] = "page/" + strings.ReplaceAll(name, " ", "-")
	}
	return out
}()

// pageFrame returns the attribution root frame for an interaction.
func pageFrame(i tpcw.Interaction) string {
	if i < 0 || int(i) >= tpcw.NumInteractions {
		return "page/unknown"
	}
	return pageFrames[i]
}

// Request implements tpcw.Site: it serves the page HTML and then all
// embedded images through the tier pipeline. The page succeeds only if
// every component succeeds.
func (s *System) Request(pr tpcw.PageRequest, done func(ok bool)) {
	// Every event this page schedules — across all tiers and queues — is
	// attributed under its interaction class.
	f := s.Eng.EnterRoot(pageFrame(pr.Interaction))
	defer f.Exit()
	s.serveHTML(pr, func(htmlOK bool) {
		if len(pr.Images) == 0 {
			s.finishPage(pr, htmlOK, done)
			return
		}
		remaining := len(pr.Images)
		allOK := htmlOK
		for _, img := range pr.Images {
			s.serveObject(img, pr.Browser, func(ok bool) {
				if !ok {
					allOK = false
				}
				remaining--
				if remaining == 0 {
					s.finishPage(pr, allOK, done)
				}
			})
		}
	})
}

func (s *System) finishPage(pr tpcw.PageRequest, ok bool, done func(bool)) {
	if ok {
		s.pageOK++
		if line := s.lineFor(pr.Browser); line >= 0 {
			s.lineDone[line]++
		}
	} else {
		s.pageFail++
	}
	done(ok)
}

// serveHTML serves the page document: static pages go through the cache
// path, dynamic pages are always forwarded to the application tier, with
// the database involved per the interaction profile.
func (s *System) serveHTML(pr tpcw.PageRequest, done func(ok bool)) {
	if pr.Profile.Static {
		s.serveObject(pr.HTML, pr.Browser, done)
		return
	}
	p := s.pickProxy(pr.Browser)
	if p == nil {
		done(false)
		return
	}
	// The proxy relays the request and the generated response.
	f := s.Eng.Enter("tier/proxy")
	defer f.Exit()
	s.proxyCPU(p, 0, pr.HTML.Size, func() {
		xf := s.Eng.Enter("xfer")
		defer xf.Exit()
		s.Eng.Schedule(interTierLatency, func() {
			s.appGenerate(pr, func(ok bool) {
				if !ok {
					done(false)
					return
				}
				p.node.NIC().Submit(p.node.NetDemand(pr.HTML.Size), func() { done(true) })
			})
		})
	})
}

// appGenerate runs the dynamic-page generation on the application tier,
// calling into the database tier as the profile requires.
func (s *System) appGenerate(pr tpcw.PageRequest, done func(ok bool)) {
	a := s.pickApp(pr.Browser)
	if a == nil {
		done(false)
		return
	}
	var backend func(release func(ok bool))
	if pr.Profile.DB != tpcw.DBNone {
		backend = func(release func(ok bool)) {
			d := s.pickDB(pr.Browser)
			if d == nil {
				release(false)
				return
			}
			kind := db.QueryRead
			switch pr.Profile.DB {
			case tpcw.DBJoin:
				kind = db.QueryJoin
			case tpcw.DBWrite:
				kind = db.QueryWrite
			}
			xf := s.Eng.Enter("xfer")
			defer xf.Exit()
			s.Eng.Schedule(interTierLatency, func() {
				df := s.Eng.Enter("tier/db")
				defer df.Exit()
				d.Query(kind, pr.Profile.DBResultKB<<10, func(ok bool) {
					// External services (the TPC-W payment gateway on Buy
					// Confirm) run after the transaction, while the
					// application server still holds its worker threads.
					delay := interTierLatency + pr.Profile.ExtDelaySec
					s.Eng.Schedule(delay, func() { release(ok) })
				})
			})
		}
	}
	extra := 0.0
	if pr.Profile.DB == tpcw.DBWrite {
		extra = txnPageExtraCPU
	}
	af := s.Eng.Enter("tier/app")
	defer af.Exit()
	a.Serve(pr.HTML.Size, extra, backend, done)
}

// serveObject serves one cacheable object (static page or image) from the
// proxy tier, fetching from the application tier on a miss.
func (s *System) serveObject(o webobj.Object, eb int, done func(ok bool)) {
	p := s.pickProxy(eb)
	if p == nil {
		done(false)
		return
	}
	f := s.Eng.Enter("tier/proxy")
	defer f.Exit()
	res, scan := p.cache.Lookup(o)
	switch res {
	case proxy.HitMem:
		s.proxyCPU(p, scan, o.Size, func() {
			p.node.NIC().Submit(p.node.NetDemand(o.Size), func() { done(true) })
		})
	case proxy.HitDisk:
		// Disk hits pay extra CPU (open/copy from the store) on top of the
		// lookup cost; most are then absorbed by the OS page cache, and
		// only the rest touch the physical disk.
		s.proxyCPU(p, scan, o.Size, func() {
			p.node.CPU().Submit(diskHitExtraCPU, func() {
				if s.src.Bernoulli(osPageCacheHit) {
					p.node.NIC().Submit(p.node.NetDemand(o.Size), func() { done(true) })
					return
				}
				p.node.Disk().Submit(p.node.DiskDemand(o.Size), func() {
					p.node.NIC().Submit(p.node.NetDemand(o.Size), func() { done(true) })
				})
			})
		})
	default: // Miss: fetch from the origin (application tier), then admit.
		s.proxyCPU(p, scan, o.Size, func() {
			xf := s.Eng.Enter("xfer")
			defer xf.Exit()
			s.Eng.Schedule(interTierLatency, func() {
				a := s.pickApp(eb)
				if a == nil {
					done(false)
					return
				}
				af := s.Eng.Enter("tier/app")
				defer af.Exit()
				a.Serve(o.Size, 0, nil, func(ok bool) {
					if !ok {
						done(false)
						return
					}
					p.cache.Admit(o)
					p.node.NIC().Submit(p.node.NetDemand(o.Size), func() { done(true) })
				})
			})
		})
	}
}

// proxyCPU charges the proxy's per-request CPU: protocol handling, the
// directory scan, and per-KB copy costs.
func (s *System) proxyCPU(p *proxyServer, scan int, bytes int64, then func()) {
	const (
		baseCost    = 0.0009 // accept/parse/log
		perScanCost = 0.000002
		perKBCost   = 0.000018
	)
	d := baseCost + float64(scan)*perScanCost + float64(bytes)/1024*perKBCost
	p.node.CPU().Submit(d, then)
}

// PagesOK returns the number of successfully completed page requests.
func (s *System) PagesOK() uint64 { return s.pageOK }

// PagesFailed returns the number of failed page requests.
func (s *System) PagesFailed() uint64 { return s.pageFail }

// LineCompleted returns the completed-page count of a work line.
func (s *System) LineCompleted(line int) uint64 {
	if line < 0 || line >= len(s.lineDone) {
		return 0
	}
	return s.lineDone[line]
}

// WorkLines returns the configured number of work lines (0 = none).
func (s *System) WorkLines() int { return s.opts.WorkLines }

// ResetCounters zeroes the system's page counters (not server stats).
func (s *System) ResetCounters() {
	s.pageOK, s.pageFail = 0, 0
	for i := range s.lineDone {
		s.lineDone[i] = 0
	}
}

// ProxyStats returns the cache statistics of the proxy on the given node.
func (s *System) ProxyStats(nodeID int) (proxy.Stats, bool) {
	p, ok := s.proxies[nodeID]
	if !ok {
		return proxy.Stats{}, false
	}
	return p.cache.Stats(), true
}

// AppServer returns the application server on the given node, if any.
func (s *System) AppServer(nodeID int) (*appserver.Server, bool) {
	a, ok := s.apps[nodeID]
	return a, ok
}

// DBServer returns the database server on the given node, if any.
func (s *System) DBServer(nodeID int) (*db.Server, bool) {
	d, ok := s.dbs[nodeID]
	return d, ok
}

// Compile-time check: System drives tpcw browsers.
var _ tpcw.Site = (*System)(nil)
