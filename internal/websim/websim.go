// Package websim wires the substrate models — cluster nodes, the proxy
// cache tier, the application-server tier, the database tier and the TPC-W
// object catalog — into one simulated cluster-based e-commerce site. It
// implements tpcw.Site: emulated browsers issue page requests, pages flow
// through the tier pipeline exactly as described in §II.A of the paper
// (tier 1 serves cacheable content, tiers 1+2 serve generated pages,
// tiers 1+2+3 serve transactional pages), and the measured output is WIPS.
//
// The simulator is the stand-in for the paper's 10-machine testbed: the
// Active Harmony layers above it only ever see (configuration → measured
// performance), so any system with the same qualitative response surfaces
// reproduces the tuning behaviour.
package websim

import (
	"fmt"

	"webharmony/internal/appserver"
	"webharmony/internal/cluster"
	"webharmony/internal/db"
	"webharmony/internal/param"
	"webharmony/internal/proxy"
	"webharmony/internal/rng"
	"webharmony/internal/simnet"
	"webharmony/internal/tpcw"
	"webharmony/internal/webobj"
)

// Options configures a simulated site.
type Options struct {
	ProxyNodes int // nodes initially in the proxy tier
	AppNodes   int // nodes initially in the application tier
	DBNodes    int // nodes initially in the database tier

	Scale          int    // TPC-W scale factor (items); paper: 10,000
	Seed           uint64 // master seed for all stochastic components
	ProxyDiskBytes int64  // proxy disk-store capacity per node

	// WorkLines > 0 partitions the cluster into that many independent
	// work lines (§III.B parameter partitioning): a request is served
	// entirely by the nodes of one line.
	WorkLines int

	Hardware cluster.Hardware // zero value uses the paper's machines
}

func (o Options) withDefaults() Options {
	if o.ProxyNodes == 0 {
		o.ProxyNodes = 1
	}
	if o.AppNodes == 0 {
		o.AppNodes = 1
	}
	if o.DBNodes == 0 {
		o.DBNodes = 1
	}
	if o.Scale == 0 {
		o.Scale = 10000
	}
	if o.ProxyDiskBytes == 0 {
		o.ProxyDiskBytes = 4 << 30
	}
	if o.Hardware == (cluster.Hardware{}) {
		o.Hardware = cluster.DefaultHardware()
	}
	return o
}

// interTierLatency is the one-way LAN latency between tiers, seconds.
const interTierLatency = 0.0003

// osPageCacheHit is the probability that a proxy disk-store read is served
// by the operating system's page cache instead of the physical disk.
const osPageCacheHit = 0.55

// diskHitExtraCPU is the additional CPU a proxy disk-store hit costs over
// a memory hit (store open, page-cache copy), seconds.
const diskHitExtraCPU = 0.0012

// txnPageExtraCPU is the additional application-tier CPU a transactional
// (database-writing) page costs: session management, cart and order
// validation, receipt rendering. It makes the ordering workload
// application-bound, as in the paper's Figure 7(a).
const txnPageExtraCPU = 0.0065

// osBaseMemory is the per-node memory consumed by the OS and daemons.
const osBaseMemory int64 = 128 << 20

// proxyServer is one node of the presentation tier.
type proxyServer struct {
	node  *cluster.Node
	cache *proxy.Cache
	cfg   proxy.Config
}

// System is the simulated cluster-based web service.
type System struct {
	Eng     *simnet.Engine
	Cluster *cluster.Cluster
	Catalog *webobj.Catalog

	opts Options
	src  *rng.Source

	proxies map[int]*proxyServer
	apps    map[int]*appserver.Server
	dbs     map[int]*db.Server

	// Per-node current configurations, by tier space.
	nodeCfg map[int]param.Config

	rr struct{ proxy, app, db uint64 }

	// failed marks nodes that are down: they receive no traffic until
	// recovered.
	failed map[int]bool

	// Per-work-line completion counters (successful interactions).
	lineDone []uint64
	pageOK   uint64
	pageFail uint64

	// Free lists recycling the pooled request state machines (pageReq,
	// objReq) so the steady-state page path allocates no per-request
	// closures; live counters track records currently in flight so tests
	// can assert the pools neither leak nor double-free. See DESIGN.md §7.
	freePages []*pageReq
	freeObjs  []*objReq
	livePages int
	liveObjs  int

	// spanSink, when set, receives every completed page's span tree for
	// latency attribution (span.go). Nil keeps span recording fully inert.
	spanSink *SpanSink
}

// New builds the simulated site.
func New(opts Options) *System {
	opts = opts.withDefaults()
	eng := &simnet.Engine{}
	s := &System{
		Eng:     eng,
		Catalog: webobj.NewCatalog(opts.Scale, opts.Seed^0xCA7A106),
		opts:    opts,
		src:     rng.New(opts.Seed ^ 0x51731a7e),
		proxies: make(map[int]*proxyServer),
		apps:    make(map[int]*appserver.Server),
		dbs:     make(map[int]*db.Server),
		nodeCfg: make(map[int]param.Config),
		failed:  make(map[int]bool),
	}
	s.Cluster = cluster.New(eng, opts.Hardware, opts.ProxyNodes, opts.AppNodes, opts.DBNodes)
	if opts.WorkLines > 0 {
		for _, t := range cluster.Tiers() {
			if s.Cluster.TierSize(t) < opts.WorkLines {
				panic(fmt.Sprintf("websim: %d work lines need >= %d nodes in tier %v", opts.WorkLines, opts.WorkLines, t))
			}
		}
		s.lineDone = make([]uint64, opts.WorkLines)
	}
	for _, n := range s.Cluster.Nodes() {
		s.nodeCfg[n.ID()] = defaultConfigFor(n.Tier())
		s.startServer(n)
	}
	return s
}

// defaultConfigFor returns the tier's default parameter configuration.
func defaultConfigFor(t cluster.Tier) param.Config {
	return SpaceFor(t).DefaultConfig()
}

// SpaceFor returns the tunable-parameter space of a tier.
func SpaceFor(t cluster.Tier) *param.Space {
	switch t {
	case cluster.TierProxy:
		return proxy.Space()
	case cluster.TierApp:
		return appserver.Space()
	case cluster.TierDB:
		return db.Space()
	default:
		panic("websim: unknown tier")
	}
}

// startServer instantiates the tier server process on a node from its
// stored configuration and charges its memory footprint.
func (s *System) startServer(n *cluster.Node) {
	id := n.ID()
	cfg := s.nodeCfg[id]
	switch n.Tier() {
	case cluster.TierProxy:
		pc := proxy.DecodeConfig(cfg)
		// Each restart starts with an empty store. Real Squid persists its
		// disk store across restarts; the simulator deliberately clears it
		// so every iteration's measurement is attributable to its own
		// configuration (with an inherited store, a configuration that
		// admits nothing still measures well). The warm-up window fills
		// the cache before measurement begins.
		s.proxies[id] = &proxyServer{node: n, cache: proxy.New(pc, s.opts.ProxyDiskBytes), cfg: pc}
		n.SetMemUsed(osBaseMemory + pc.MemoryFootprint())
	case cluster.TierApp:
		ac := appserver.DecodeConfig(cfg)
		s.apps[id] = appserver.New(s.Eng, n, ac, appserver.DefaultCostModel())
		n.SetMemUsed(osBaseMemory + ac.MemoryFootprint())
	case cluster.TierDB:
		dc := db.DecodeConfig(cfg)
		s.dbs[id] = db.New(s.Eng, n, dc, db.DefaultCostModel(), s.src.Split(uint64(1000+id)))
		n.SetMemUsed(osBaseMemory + dc.MemoryFootprint())
	}
}

// stopServer removes the tier server process from a node.
func (s *System) stopServer(n *cluster.Node) {
	delete(s.proxies, n.ID())
	delete(s.apps, n.ID())
	delete(s.dbs, n.ID())
	n.SetMemUsed(osBaseMemory)
}

// SetNodeConfig stores a node's configuration; it takes effect at the next
// Restart (the paper restarts servers between tuning iterations).
func (s *System) SetNodeConfig(nodeID int, cfg param.Config) {
	n := s.Cluster.Node(nodeID)
	if n == nil {
		panic(fmt.Sprintf("websim: no node %d", nodeID))
	}
	sp := SpaceFor(n.Tier())
	if !sp.Feasible(cfg) {
		panic(fmt.Sprintf("websim: infeasible config for node %d (%v tier)", nodeID, n.Tier()))
	}
	s.nodeCfg[nodeID] = cfg.Clone()
}

// NodeConfig returns the node's stored configuration.
func (s *System) NodeConfig(nodeID int) param.Config { return s.nodeCfg[nodeID].Clone() }

// SnapshotConfigs returns a copy of every node's stored configuration,
// keyed by node ID — the state a forked system needs to start from the
// same staged configurations as this one. The snapshot is independent of
// the system (deep-copied configs) and safe to take from concurrent
// readers as long as no configuration is being staged at the same time.
func (s *System) SnapshotConfigs() map[int]param.Config {
	out := make(map[int]param.Config, len(s.nodeCfg))
	for id, cfg := range s.nodeCfg {
		out[id] = cfg.Clone()
	}
	return out
}

// SetTierConfig stores the same configuration on every node of a tier
// (§III.B parameter duplication).
func (s *System) SetTierConfig(t cluster.Tier, cfg param.Config) {
	for _, n := range s.Cluster.TierNodes(t) {
		s.SetNodeConfig(n.ID(), cfg)
	}
}

// Restart re-instantiates every server from its stored configuration,
// clearing caches and statistics — one tuning-iteration boundary. Failed
// nodes stay down.
func (s *System) Restart() {
	for _, n := range s.Cluster.Nodes() {
		s.stopServer(n)
		if !s.failed[n.ID()] {
			s.startServer(n)
		}
	}
}

// MoveNode reassigns a node to another tier and starts the tier's server
// on it with the tier default configuration (or cfg, if non-nil). This is
// the §IV reconfiguration action; remaining nodes keep serving throughout.
func (s *System) MoveNode(nodeID int, to cluster.Tier, cfg param.Config) {
	n := s.Cluster.Node(nodeID)
	if n == nil {
		panic(fmt.Sprintf("websim: no node %d", nodeID))
	}
	if n.Tier() == to {
		return
	}
	if s.Cluster.TierSize(n.Tier()) <= 1 {
		panic(fmt.Sprintf("websim: cannot empty tier %v", n.Tier()))
	}
	s.stopServer(n)
	n.SetTier(to)
	if cfg == nil {
		cfg = defaultConfigFor(to)
	}
	s.nodeCfg[nodeID] = cfg.Clone()
	s.startServer(n)
}

// FailNode takes a node down: its server process stops and the router
// stops sending it traffic. Requests in flight on the node still drain
// (the front-end retries are not modeled; pages routed to a tier with no
// live node fail). The node's stored configuration is kept for recovery.
func (s *System) FailNode(nodeID int) {
	n := s.Cluster.Node(nodeID)
	if n == nil {
		panic(fmt.Sprintf("websim: no node %d", nodeID))
	}
	if s.failed[nodeID] {
		return
	}
	s.failed[nodeID] = true
	s.stopServer(n)
}

// RecoverNode brings a failed node back with its stored configuration
// (empty caches, as after a crash).
func (s *System) RecoverNode(nodeID int) {
	n := s.Cluster.Node(nodeID)
	if n == nil {
		panic(fmt.Sprintf("websim: no node %d", nodeID))
	}
	if !s.failed[nodeID] {
		return
	}
	delete(s.failed, nodeID)
	s.startServer(n)
}

// NodeFailed reports whether the node is currently down.
func (s *System) NodeFailed(nodeID int) bool { return s.failed[nodeID] }

// lineFor returns the work line serving the given browser.
func (s *System) lineFor(eb int) int {
	if s.opts.WorkLines <= 0 {
		return -1
	}
	return eb % s.opts.WorkLines
}

// pick returns the serving node of a tier for the given browser, rotating
// round-robin; with work lines, selection is restricted to the line.
func (s *System) pick(t cluster.Tier, eb int, rr *uint64) *cluster.Node {
	nodes := s.Cluster.TierNodes(t)
	if len(s.failed) > 0 {
		live := nodes[:0:0]
		for _, n := range nodes {
			if !s.failed[n.ID()] {
				live = append(live, n)
			}
		}
		nodes = live
	}
	if len(nodes) == 0 {
		return nil
	}
	if line := s.lineFor(eb); line >= 0 {
		var lineNodes []*cluster.Node
		for i, n := range nodes {
			if i%s.opts.WorkLines == line {
				lineNodes = append(lineNodes, n)
			}
		}
		if len(lineNodes) > 0 {
			nodes = lineNodes
		}
	}
	*rr++
	return nodes[int(*rr)%len(nodes)]
}

// pickProxy returns a live proxy server for the browser, or nil.
func (s *System) pickProxy(eb int) *proxyServer {
	n := s.pick(cluster.TierProxy, eb, &s.rr.proxy)
	if n == nil {
		return nil
	}
	return s.proxies[n.ID()]
}

// pickApp returns a live application server for the browser, or nil.
func (s *System) pickApp(eb int) *appserver.Server {
	n := s.pick(cluster.TierApp, eb, &s.rr.app)
	if n == nil {
		return nil
	}
	return s.apps[n.ID()]
}

// pickDB returns a live database server for the browser, or nil.
func (s *System) pickDB(eb int) *db.Server {
	n := s.pick(cluster.TierDB, eb, &s.rr.db)
	if n == nil {
		return nil
	}
	return s.dbs[n.ID()]
}

// pageFrames precomputes the "page/<interaction>" attribution frame for
// every TPC-W interaction. Interaction names contain spaces ("New
// Products"); folded-stack frames cannot (space separates stack from
// weight), so the slug form is used.
var pageFrames = func() [tpcw.NumInteractions]string {
	var out [tpcw.NumInteractions]string
	for i := range out {
		out[i] = "page/" + tpcw.Interaction(i).Slug()
	}
	return out
}()

// pageFrame returns the attribution root frame for an interaction.
func pageFrame(i tpcw.Interaction) string {
	if i < 0 || int(i) >= tpcw.NumInteractions {
		return "page/unknown"
	}
	return pageFrames[i]
}

// pageReq stages. Each stage names the event whose completion the page is
// waiting on; pgFree is the recycled sentinel — a dispatch on it means a
// stale callback fired on a recycled record, and panics rather than
// corrupting another page's state.
const (
	pgFree        int8 = iota
	pgHTMLRelayed      // proxy relay CPU done → hop to the application tier
	pgHTMLAtApp        // inter-tier hop done → generate at the app tier
	pgDBQuery          // hop to the database tier done → issue the query
	pgDBRelease        // post-query external delay done → release the AJP worker
	pgHTMLSent         // proxy NIC transmit of the generated page done
	pgImages           // embedded-image fan-out in flight
)

// pageReq is one in-flight page request's state: the pooled replacement
// for the closure chain Request used to build per page (serveHTML →
// appGenerate → fan-in over serveObject → finishPage). Its callbacks are
// method values allocated once when the record is first created and reused
// across recycles, so a steady-state page costs zero closure allocations
// in this package.
//
// Records return to the system's free list before the page's done callback
// runs (the engine's release-before-callback discipline); gen counts
// recycles so stress tests can detect a stale callback reaching a reused
// record.
type pageReq struct {
	s    *System
	pr   tpcw.PageRequest
	done func(ok bool)

	remaining int  // embedded images still in flight
	allOK     bool // no component has failed yet

	prx   *proxyServer  // proxy relaying the dynamic page
	dbSrv *db.Server    // database serving the query leg
	rel   func(ok bool) // appserver release, held across the database leg
	relOK bool          // query outcome, carried to the pgDBRelease event
	stage int8
	gen   uint32

	// span is the page's latency span, recorded only when the system has a
	// span sink; its storage is recycled with the record. critKid tracks the
	// current critical-path candidate among captured children: during the
	// parallel image fan-out, captures arrive in completion order, so the
	// latest capture is the child whose chain ends the page.
	span    simnet.SpanBuf
	critKid int

	stepFn    func()                      // bound step, scheduled per stage advance
	htmlFn    func(ok bool)               // bound htmlDone, the page-document fan-in
	objFn     func(ok bool)               // bound objDone, the per-image fan-in
	servedFn  func(ok bool)               // bound served, the app tier's done
	queryFn   func(ok bool)               // bound queryDone, the database's done
	backendFn func(release func(ok bool)) // bound backend, handed to appserver.Serve
}

// getPage returns a recycled page record, or a fresh one with its
// callbacks bound.
func (s *System) getPage(pr tpcw.PageRequest, done func(ok bool)) *pageReq {
	var r *pageReq
	if n := len(s.freePages); n > 0 {
		r = s.freePages[n-1]
		s.freePages[n-1] = nil
		s.freePages = s.freePages[:n-1]
	} else {
		r = &pageReq{s: s}
		r.stepFn = r.step
		r.htmlFn = r.htmlDone
		r.objFn = r.objDone
		r.servedFn = r.served
		r.queryFn = r.queryDone
		r.backendFn = r.backend
	}
	r.pr = pr
	r.done = done
	s.livePages++
	return r
}

// putPage recycles a page record: references are dropped, the stale-
// dispatch sentinel armed and the generation bumped.
func (s *System) putPage(r *pageReq) {
	r.gen++
	r.stage = pgFree
	r.pr = tpcw.PageRequest{}
	r.done = nil
	r.prx = nil
	r.dbSrv = nil
	r.rel = nil
	s.livePages--
	s.freePages = append(s.freePages, r)
}

// Request implements tpcw.Site: it serves the page HTML and then all
// embedded images through the tier pipeline. The page succeeds only if
// every component succeeds.
func (s *System) Request(pr tpcw.PageRequest, done func(ok bool)) {
	// Every event this page schedules — across all tiers and queues — is
	// attributed under its interaction class.
	f := s.Eng.EnterRoot(pageFrame(pr.Interaction))
	defer f.Exit()
	r := s.getPage(pr, done)
	if s.spanSink != nil {
		r.span.Begin(s.Eng.NowTicks())
		r.critKid = -1
		s.Eng.SetSpan(&r.span)
	}
	r.serveHTML()
}

// serveHTML serves the page document: static pages go through the cache
// path, dynamic pages are always forwarded to the application tier, with
// the database involved per the interaction profile.
func (r *pageReq) serveHTML() {
	s := r.s
	if r.pr.Profile.Static {
		s.serveObject(r.pr.HTML, r, r.htmlFn)
		return
	}
	p := s.pickProxy(r.pr.Browser)
	if p == nil {
		r.htmlDone(false)
		return
	}
	r.prx = p
	// The proxy relays the request and the generated response.
	f := s.Eng.Enter("tier/proxy")
	defer f.Exit()
	r.stage = pgHTMLRelayed
	s.proxyCPU(p, 0, r.pr.HTML.Size, r.stepFn)
}

// step advances the dynamic-page leg through the same event sequence the
// closure chain produced.
func (r *pageReq) step() {
	s := r.s
	switch r.stage {
	case pgHTMLRelayed:
		xf := s.Eng.Enter("xfer")
		defer xf.Exit()
		r.stage = pgHTMLAtApp
		s.Eng.Schedule(interTierLatency, r.stepFn)
	case pgHTMLAtApp:
		// The inter-tier hop just finished; attribute it before the
		// application tier starts marking.
		r.span.Mark(cluster.SpanSiteXfer, simnet.SpanService, s.Eng.NowTicks())
		// Generate the page on the application tier, with the database
		// involved per the interaction profile.
		a := s.pickApp(r.pr.Browser)
		if a == nil {
			r.served(false)
			return
		}
		var backend func(release func(ok bool))
		if r.pr.Profile.DB != tpcw.DBNone {
			backend = r.backendFn
		}
		extra := 0.0
		if r.pr.Profile.DB == tpcw.DBWrite {
			extra = txnPageExtraCPU
		}
		af := s.Eng.Enter("tier/app")
		defer af.Exit()
		a.Serve(r.pr.HTML.Size, extra, backend, r.servedFn)
	case pgDBQuery:
		r.span.Mark(cluster.SpanSiteXfer, simnet.SpanService, s.Eng.NowTicks())
		kind := db.QueryRead
		switch r.pr.Profile.DB {
		case tpcw.DBJoin:
			kind = db.QueryJoin
		case tpcw.DBWrite:
			kind = db.QueryWrite
		}
		df := s.Eng.Enter("tier/db")
		defer df.Exit()
		r.dbSrv.Query(kind, r.pr.Profile.DBResultKB<<10, r.queryFn)
	case pgDBRelease:
		// The return hop and any external-service delay (payment gateway)
		// ran together in one timer; split them at the delay boundary so
		// ext time is not misread as network time. Both marks telescope, so
		// the decomposition stays exact regardless of where the cut rounds.
		r.span.Mark(cluster.SpanSiteXfer, simnet.SpanService,
			simnet.Ticks(s.Eng.Now()-r.pr.Profile.ExtDelaySec))
		r.span.Mark(cluster.SpanSiteExt, simnet.SpanService, s.Eng.NowTicks())
		rel := r.rel
		r.rel = nil
		rel(r.relOK)
	case pgHTMLSent:
		r.htmlDone(true)
	default:
		panic("websim: page request stepped after release")
	}
}

// backend is the database leg the application server runs on its AJP
// worker (appserver.Serve's backend argument).
func (r *pageReq) backend(release func(ok bool)) {
	s := r.s
	d := s.pickDB(r.pr.Browser)
	if d == nil {
		release(false)
		return
	}
	r.dbSrv = d
	r.rel = release
	xf := s.Eng.Enter("xfer")
	defer xf.Exit()
	r.stage = pgDBQuery
	s.Eng.Schedule(interTierLatency, r.stepFn)
}

// queryDone receives the database outcome. External services (the TPC-W
// payment gateway on Buy Confirm) run after the transaction, while the
// application server still holds its worker threads.
func (r *pageReq) queryDone(ok bool) {
	if r.stage != pgDBQuery {
		panic("websim: query completion on a settled page request")
	}
	r.relOK = ok
	r.stage = pgDBRelease
	r.s.Eng.Schedule(interTierLatency+r.pr.Profile.ExtDelaySec, r.stepFn)
}

// served receives the application tier's outcome for the generated page;
// on success the proxy relays the response to the browser.
func (r *pageReq) served(ok bool) {
	if !ok {
		r.htmlDone(false)
		return
	}
	r.stage = pgHTMLSent
	r.prx.node.NIC().Submit(r.prx.node.NetDemand(r.pr.HTML.Size), r.stepFn)
}

// htmlDone is the page-document fan-in: once the HTML has settled, fan out
// over the embedded images (even after an HTML failure, as a browser
// would) or finish an imageless page.
func (r *pageReq) htmlDone(ok bool) {
	s := r.s
	if len(r.pr.Images) == 0 {
		r.finish(ok)
		return
	}
	r.remaining = len(r.pr.Images)
	r.allOK = ok
	r.stage = pgImages
	for _, img := range r.pr.Images {
		s.serveObject(img, r, r.objFn)
	}
}

// objDone is the per-image fan-in.
func (r *pageReq) objDone(ok bool) {
	if r.stage != pgImages {
		panic("websim: image completion on a settled page request")
	}
	if !ok {
		r.allOK = false
	}
	r.remaining--
	if r.remaining == 0 {
		r.finish(r.allOK)
	}
}

// finish accounts the page outcome and reports it. The record is recycled
// before done runs, so a completion chain that synchronously issues new
// work can reuse it immediately.
func (r *pageReq) finish(ok bool) {
	s := r.s
	if s.spanSink != nil && r.span.Active() {
		// Fold the span before the record is recycled; the sink also
		// detaches the engine's span context so work scheduled by done
		// (think timers) belongs to no request.
		s.spanSink.page(r, ok)
	}
	done := r.done
	eb := r.pr.Browser
	s.putPage(r)
	if ok {
		s.pageOK++
		if line := s.lineFor(eb); line >= 0 {
			s.lineDone[line]++
		}
	} else {
		s.pageFail++
	}
	done(ok)
}

// objReq stages, named like the pageReq stages.
const (
	objFree      int8 = iota
	objMemCPU         // memory-hit lookup CPU done → transmit
	objDiskCPU        // disk-hit lookup CPU done → store open/copy CPU
	objDiskCheck      // store CPU done → OS page-cache draw
	objDiskRead       // physical disk read done → transmit
	objMissCPU        // miss lookup CPU done → hop to the application tier
	objMissAtApp      // inter-tier hop done → fetch from the origin
	objSent           // proxy NIC transmit done → complete
)

// objReq is one in-flight cacheable-object request's state (a static page
// or embedded image served by the proxy tier): the pooled replacement for
// serveObject's closure chains, with the same lifecycle as pageReq.
type objReq struct {
	s     *System
	o     webobj.Object
	eb    int
	p     *proxyServer
	done  func(ok bool)
	stage int8
	gen   uint32

	// span is the object's latency span; pg is the page whose span tree it
	// folds into on completion, non-nil only while recording. label carries
	// the cache outcome (objCache*) into the folded child span.
	span  simnet.SpanBuf
	pg    *pageReq
	label uint8

	stepFn   func()        // bound step, scheduled per stage advance
	servedFn func(ok bool) // bound served, the origin fetch's done
}

// Cache-outcome labels carried on folded object spans.
const (
	objCacheNone uint8 = iota // page documents, unrecorded objects
	objCacheMem               // proxy memory hit
	objCacheDisk              // proxy disk-store hit
	objCacheMiss              // fetched from the origin
)

// objCacheNames indexes label → exported name, in label order.
var objCacheNames = [...]string{"", "hit-mem", "hit-disk", "miss"}

// ObjCacheName returns the exported name of a folded child span's cache
// label ("" for page documents).
func ObjCacheName(label uint8) string {
	if int(label) >= len(objCacheNames) {
		return "unknown"
	}
	return objCacheNames[label]
}

// getObj returns a recycled object record, or a fresh one with its
// callbacks bound.
func (s *System) getObj(o webobj.Object, eb int, p *proxyServer, done func(ok bool)) *objReq {
	var r *objReq
	if n := len(s.freeObjs); n > 0 {
		r = s.freeObjs[n-1]
		s.freeObjs[n-1] = nil
		s.freeObjs = s.freeObjs[:n-1]
	} else {
		r = &objReq{s: s}
		r.stepFn = r.step
		r.servedFn = r.served
	}
	r.o = o
	r.eb = eb
	r.p = p
	r.done = done
	s.liveObjs++
	return r
}

// putObj recycles an object record.
func (s *System) putObj(r *objReq) {
	r.gen++
	r.stage = objFree
	r.o = webobj.Object{}
	r.p = nil
	r.done = nil
	r.pg = nil
	r.label = objCacheNone
	s.liveObjs--
	s.freeObjs = append(s.freeObjs, r)
}

// serveObject serves one cacheable object (the static page document or an
// embedded image) of page pg from the proxy tier, fetching from the
// application tier on a miss.
func (s *System) serveObject(o webobj.Object, pg *pageReq, done func(ok bool)) {
	eb := pg.pr.Browser
	p := s.pickProxy(eb)
	if p == nil {
		done(false)
		return
	}
	r := s.getObj(o, eb, p, done)
	f := s.Eng.Enter("tier/proxy")
	defer f.Exit()
	var prevSpan *simnet.SpanBuf
	if pg.span.Active() {
		// The object records its own span (it may overlap siblings in the
		// image fan-out) and folds it into the page's tree on completion.
		r.pg = pg
		r.span.Begin(s.Eng.NowTicks())
		prevSpan = s.Eng.SetSpan(&r.span)
	}
	res, scan := p.cache.Lookup(o)
	switch res {
	case proxy.HitMem:
		r.stage = objMemCPU
		r.label = objCacheMem
	case proxy.HitDisk:
		r.stage = objDiskCPU
		r.label = objCacheDisk
	default: // Miss: fetch from the origin (application tier), then admit.
		r.stage = objMissCPU
		r.label = objCacheMiss
	}
	s.proxyCPU(p, scan, o.Size, r.stepFn)
	if r.pg != nil {
		s.Eng.SetSpan(prevSpan)
	}
}

// step advances the object through the same event sequence the closure
// chains produced for the hit, disk-hit and miss paths.
func (r *objReq) step() {
	s := r.s
	switch r.stage {
	case objMemCPU:
		r.stage = objSent
		r.p.node.NIC().Submit(r.p.node.NetDemand(r.o.Size), r.stepFn)
	case objDiskCPU:
		// Disk hits pay extra CPU (open/copy from the store) on top of the
		// lookup cost; most are then absorbed by the OS page cache, and
		// only the rest touch the physical disk.
		r.stage = objDiskCheck
		r.p.node.CPU().Submit(diskHitExtraCPU, r.stepFn)
	case objDiskCheck:
		if s.src.Bernoulli(osPageCacheHit) {
			r.stage = objSent
			r.p.node.NIC().Submit(r.p.node.NetDemand(r.o.Size), r.stepFn)
			return
		}
		r.stage = objDiskRead
		r.p.node.Disk().Submit(r.p.node.DiskDemand(r.o.Size), r.stepFn)
	case objDiskRead:
		r.stage = objSent
		r.p.node.NIC().Submit(r.p.node.NetDemand(r.o.Size), r.stepFn)
	case objMissCPU:
		xf := s.Eng.Enter("xfer")
		defer xf.Exit()
		r.stage = objMissAtApp
		s.Eng.Schedule(interTierLatency, r.stepFn)
	case objMissAtApp:
		r.span.Mark(cluster.SpanSiteXfer, simnet.SpanService, s.Eng.NowTicks())
		a := s.pickApp(r.eb)
		if a == nil {
			r.complete(false)
			return
		}
		af := s.Eng.Enter("tier/app")
		defer af.Exit()
		a.Serve(r.o.Size, 0, nil, r.servedFn)
	case objSent:
		r.complete(true)
	default:
		panic("websim: object request stepped after release")
	}
}

// served receives the origin fetch's outcome; on success the object is
// admitted to the cache and transmitted.
func (r *objReq) served(ok bool) {
	if !ok {
		r.complete(false)
		return
	}
	r.p.cache.Admit(r.o)
	r.stage = objSent
	r.p.node.NIC().Submit(r.p.node.NetDemand(r.o.Size), r.stepFn)
}

// complete reports the object outcome, folding the span into its page and
// recycling the record first.
func (r *objReq) complete(ok bool) {
	s := r.s
	done := r.done
	if r.pg != nil {
		r.pg.captureChild(&r.span, ok, r.label)
	}
	s.putObj(r)
	done(ok)
}

// captureChild folds a completed object's span into the page's tree and
// maintains the critical-path marking: during the parallel image fan-out
// the latest capture (completion order is time order) supersedes the
// previous candidate; a sequential child (the static page document) is
// always critical.
func (r *pageReq) captureChild(c *simnet.SpanBuf, ok bool, label uint8) {
	if !r.span.Active() {
		return
	}
	i := r.span.AddChild(c, r.s.Eng.NowTicks(), ok, label)
	if r.stage == pgImages {
		if r.critKid >= 0 {
			r.span.SetCritical(r.critKid, false)
		}
		r.critKid = i
	}
	r.span.SetCritical(i, true)
}

// proxyCPU charges the proxy's per-request CPU: protocol handling, the
// directory scan, and per-KB copy costs.
func (s *System) proxyCPU(p *proxyServer, scan int, bytes int64, then func()) {
	const (
		baseCost    = 0.0009 // accept/parse/log
		perScanCost = 0.000002
		perKBCost   = 0.000018
	)
	d := baseCost + float64(scan)*perScanCost + float64(bytes)/1024*perKBCost
	p.node.CPU().Submit(d, then)
}

// PagesOK returns the number of successfully completed page requests.
func (s *System) PagesOK() uint64 { return s.pageOK }

// PagesFailed returns the number of failed page requests.
func (s *System) PagesFailed() uint64 { return s.pageFail }

// LineCompleted returns the completed-page count of a work line.
func (s *System) LineCompleted(line int) uint64 {
	if line < 0 || line >= len(s.lineDone) {
		return 0
	}
	return s.lineDone[line]
}

// WorkLines returns the configured number of work lines (0 = none).
func (s *System) WorkLines() int { return s.opts.WorkLines }

// ResetCounters zeroes the system's page counters (not server stats).
func (s *System) ResetCounters() {
	s.pageOK, s.pageFail = 0, 0
	for i := range s.lineDone {
		s.lineDone[i] = 0
	}
}

// ProxyStats returns the cache statistics of the proxy on the given node.
func (s *System) ProxyStats(nodeID int) (proxy.Stats, bool) {
	p, ok := s.proxies[nodeID]
	if !ok {
		return proxy.Stats{}, false
	}
	return p.cache.Stats(), true
}

// AppServer returns the application server on the given node, if any.
func (s *System) AppServer(nodeID int) (*appserver.Server, bool) {
	a, ok := s.apps[nodeID]
	return a, ok
}

// DBServer returns the database server on the given node, if any.
func (s *System) DBServer(nodeID int) (*db.Server, bool) {
	d, ok := s.dbs[nodeID]
	return d, ok
}

// Compile-time check: System drives tpcw browsers.
var _ tpcw.Site = (*System)(nil)
