package webobj

import (
	"testing"
	"testing/quick"

	"webharmony/internal/rng"
)

func TestCatalogCounts(t *testing.T) {
	c := NewCatalog(10000, 1)
	if c.Scale() != 10000 {
		t.Fatal("scale wrong")
	}
	if c.CacheableTotal() >= c.Total() {
		t.Fatal("dynamic objects missing")
	}
	if c.CacheableTotal() != c.Total()-uint64(10000)-1000 {
		t.Fatalf("cacheable=%d total=%d", c.CacheableTotal(), c.Total())
	}
}

func TestCatalogPanicsOnZeroScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCatalog(0) did not panic")
		}
	}()
	NewCatalog(0, 1)
}

func TestObjectDeterminism(t *testing.T) {
	c1 := NewCatalog(1000, 7)
	c2 := NewCatalog(1000, 7)
	for id := uint64(0); id < c1.Total(); id += 97 {
		if c1.Object(id) != c2.Object(id) {
			t.Fatalf("object %d differs across identical catalogs", id)
		}
	}
}

func TestObjectSeedChangesSizes(t *testing.T) {
	a := NewCatalog(1000, 1)
	b := NewCatalog(1000, 2)
	diff := 0
	for id := uint64(0); id < 100; id++ {
		if a.Object(id).Size != b.Object(id).Size {
			diff++
		}
	}
	if diff < 50 {
		t.Fatalf("different seeds changed only %d/100 sizes", diff)
	}
}

func TestObjectKinds(t *testing.T) {
	c := NewCatalog(1000, 3)
	static := c.Object(0)
	if static.Kind != KindStatic || !static.Cacheable() {
		t.Fatalf("object 0 = %+v, want static cacheable", static)
	}
	img := c.Object(c.CacheableTotal() - 1)
	if img.Kind != KindImage || !img.Cacheable() {
		t.Fatalf("last cacheable = %+v, want image", img)
	}
	dyn := c.Object(c.Total() - 1)
	if dyn.Kind != KindDynamic || dyn.Cacheable() {
		t.Fatalf("last object = %+v, want dynamic non-cacheable", dyn)
	}
}

func TestKindString(t *testing.T) {
	if KindStatic.String() != "static" || KindImage.String() != "image" ||
		KindDynamic.String() != "dynamic" || Kind(99).String() != "unknown" {
		t.Fatal("Kind.String wrong")
	}
}

func TestObjectSizeBounds(t *testing.T) {
	c := NewCatalog(5000, 11)
	f := func(seed uint64) bool {
		id := seed % c.Total()
		o := c.Object(id)
		switch o.Kind {
		case KindStatic:
			return o.Size >= 1<<10 && o.Size <= 60<<10
		case KindImage:
			return o.Size >= 2<<10 && o.Size <= 512<<10
		case KindDynamic:
			return o.Size >= 2<<10 && o.Size <= 80<<10
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestObjectPanicsOutOfRange(t *testing.T) {
	c := NewCatalog(100, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range ID did not panic")
		}
	}()
	c.Object(c.Total())
}

func TestPopularityInRangeAndCacheable(t *testing.T) {
	c := NewCatalog(2000, 5)
	p := NewPopularity(c, rng.New(9), 0.9)
	for i := 0; i < 20000; i++ {
		o := p.Next()
		if !o.Cacheable() {
			t.Fatalf("popularity sampler returned non-cacheable object %d", o.ID)
		}
		if o.ID >= c.CacheableTotal() {
			t.Fatalf("ID %d outside cacheable range", o.ID)
		}
	}
}

func TestPopularityIsSkewed(t *testing.T) {
	c := NewCatalog(2000, 5)
	p := NewPopularity(c, rng.New(10), 0.9)
	counts := map[uint64]int{}
	const draws = 50000
	for i := 0; i < draws; i++ {
		counts[p.Next().ID]++
	}
	// With Zipf popularity a small set of objects dominates: the most
	// popular single object should appear far above the uniform rate.
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	uniform := float64(draws) / float64(c.CacheableTotal())
	if float64(max) < 20*uniform {
		t.Fatalf("top object count %d not skewed (uniform %.1f)", max, uniform)
	}
}

func TestRankToIDBijection(t *testing.T) {
	c := NewCatalog(500, 2)
	p := NewPopularity(c, rng.New(3), 0.8)
	seen := make(map[uint64]bool, p.N())
	for r := uint64(0); r < p.N(); r++ {
		id := p.rankToID(r)
		if id >= p.N() {
			t.Fatalf("rankToID(%d) = %d out of range", r, id)
		}
		if seen[id] {
			t.Fatalf("rankToID not injective: id %d repeated", id)
		}
		seen[id] = true
	}
}

func BenchmarkCatalogObject(b *testing.B) {
	c := NewCatalog(10000, 1)
	var sink Object
	for i := 0; i < b.N; i++ {
		sink = c.Object(uint64(i) % c.Total())
	}
	_ = sink
}

func BenchmarkPopularityNext(b *testing.B) {
	c := NewCatalog(10000, 1)
	p := NewPopularity(c, rng.New(1), 0.9)
	for i := 0; i < b.N; i++ {
		p.Next()
	}
}
