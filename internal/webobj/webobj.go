// Package webobj models the population of web objects served by the
// simulated TPC-W store: static pages, product images and dynamically
// generated pages. Object sizes are deterministic functions of the object
// ID, so the catalog needs no storage proportional to its size, and
// popularity follows a Zipf distribution as observed for web traffic.
package webobj

import "webharmony/internal/rng"

// Kind classifies an object by how it is produced and whether a proxy may
// cache it.
type Kind int

const (
	// KindStatic is a fixed HTML page or style asset; always cacheable.
	KindStatic Kind = iota
	// KindImage is a product image; cacheable and comparatively large.
	KindImage
	// KindDynamic is generated per request by the application server
	// (possibly with database queries); never cacheable.
	KindDynamic
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindStatic:
		return "static"
	case KindImage:
		return "image"
	case KindDynamic:
		return "dynamic"
	default:
		return "unknown"
	}
}

// Object is one addressable web object.
type Object struct {
	ID   uint64
	Kind Kind
	Size int64 // bytes
}

// Cacheable reports whether a proxy is allowed to cache the object.
func (o Object) Cacheable() bool { return o.Kind != KindDynamic }

// Catalog describes the object population for a store of a given TPC-W
// scale factor (number of items). Objects are identified by dense IDs:
//
//	[0, nStatic)                      static pages
//	[nStatic, nStatic+nImages)        product images (several per item)
//	[nStatic+nImages, Total)          dynamic page identities
type Catalog struct {
	scale    int
	nStatic  uint64
	nImages  uint64
	nDynamic uint64
	sizeSeed uint64
}

// ImagesPerItem is the number of product images per catalog item
// (thumbnail and full size, per the TPC-W page layouts).
const ImagesPerItem = 2

// NewCatalog creates the object population for a store selling scale items
// (the paper uses scale = 10,000). sizeSeed makes object sizes
// reproducible.
func NewCatalog(scale int, sizeSeed uint64) *Catalog {
	if scale <= 0 {
		panic("webobj: scale must be positive")
	}
	return &Catalog{
		scale:    scale,
		nStatic:  uint64(scale)/10 + 50, // site chrome + per-category pages
		nImages:  uint64(scale) * ImagesPerItem,
		nDynamic: uint64(scale) + 1000, // product-detail and result pages
		sizeSeed: sizeSeed,
	}
}

// Scale returns the catalog's item count.
func (c *Catalog) Scale() int { return c.scale }

// Total returns the total number of distinct objects.
func (c *Catalog) Total() uint64 { return c.nStatic + c.nImages + c.nDynamic }

// CacheableTotal returns the number of proxy-cacheable objects.
func (c *Catalog) CacheableTotal() uint64 { return c.nStatic + c.nImages }

// Object returns the object with the given ID. Sizes are deterministic:
// the same (catalog seed, ID) always yields the same size.
func (c *Catalog) Object(id uint64) Object {
	if id >= c.Total() {
		panic("webobj: object ID out of range")
	}
	// Derive a per-object random source from the ID. A stack-allocated
	// source: object sizes are drawn on every catalog reference, which is
	// the proxy tier's hot path.
	src := rng.Seeded(c.sizeSeed ^ (id * 0x9e3779b97f4a7c15) ^ 0xC0FFEE)
	switch {
	case id < c.nStatic:
		// Static pages: 2–30 KB, log-normal-ish.
		size := int64(src.LogNormal(8.8, 0.6)) // median ≈ 6.6 KB
		return Object{ID: id, Kind: KindStatic, Size: clampSize(size, 1<<10, 60<<10)}
	case id < c.nStatic+c.nImages:
		// Images: heavy-tailed Pareto, 2 KB – 512 KB (thumbnails dominate).
		size := int64(src.Pareto(3<<10, 1.5))
		return Object{ID: id, Kind: KindImage, Size: clampSize(size, 2<<10, 512<<10)}
	default:
		// Dynamic pages: 4–40 KB of generated HTML.
		size := int64(src.LogNormal(9.3, 0.5)) // median ≈ 11 KB
		return Object{ID: id, Kind: KindDynamic, Size: clampSize(size, 2<<10, 80<<10)}
	}
}

func clampSize(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Popularity draws cacheable object references with Zipf popularity. The
// permutation of ranks to IDs is derived from the seed so that popular
// objects are spread across static pages and images.
type Popularity struct {
	cat  *Catalog
	zipf *rng.Zipf
	// rank → object id mapping via a cheap deterministic permutation
	a, b uint64
	n    uint64
}

// NewPopularity creates a Zipf popularity sampler over the catalog's
// cacheable objects with exponent theta (use ≈ 0.8–0.99 for web traffic).
func NewPopularity(cat *Catalog, src *rng.Source, theta float64) *Popularity {
	n := cat.CacheableTotal()
	p := &Popularity{
		cat:  cat,
		zipf: rng.NewZipf(src, n, theta),
		n:    n,
	}
	// Affine permutation rank → id: a must be odd and coprime with n is
	// not required since we mod by n after multiply with odd a on a prime
	// extension; use a simple multiply-xor then mod, which is a uniform
	// (if not bijective) spreading. To guarantee a bijection we use
	// a = odd, over 2^k >= n with cycle-walking.
	p.a = src.Uint64() | 1
	p.b = src.Uint64()
	return p
}

// pow2At returns the smallest power of two >= n.
func pow2At(n uint64) uint64 {
	p := uint64(1)
	for p < n {
		p <<= 1
	}
	return p
}

// rankToID maps a popularity rank to an object ID bijectively using an
// affine permutation over the next power of two with cycle-walking.
func (p *Popularity) rankToID(rank uint64) uint64 {
	m := pow2At(p.n)
	x := rank
	for {
		x = (x*p.a + p.b) & (m - 1)
		if x < p.n {
			return x
		}
	}
}

// Next draws the next referenced cacheable object.
func (p *Popularity) Next() Object {
	rank := p.zipf.Next()
	return p.cat.Object(p.rankToID(rank))
}

// N returns the number of objects the sampler draws from.
func (p *Popularity) N() uint64 { return p.n }
