package db

import (
	"testing"

	"webharmony/internal/cluster"
	"webharmony/internal/param"
	"webharmony/internal/rng"
	"webharmony/internal/simnet"
)

func newServer(cfg Config) (*simnet.Engine, *Server) {
	eng := &simnet.Engine{}
	node := cluster.NewNode(eng, 0, cluster.TierDB, cluster.DefaultHardware())
	return eng, New(eng, node, cfg, DefaultCostModel(), rng.New(7))
}

func defaults() Config { return DecodeConfig(Space().DefaultConfig()) }

func TestSpaceDefaultsMatchTable3(t *testing.T) {
	cfg := defaults()
	if cfg.BinlogCacheSize != 32768 {
		t.Errorf("binlog_cache_size = %d, want 32768", cfg.BinlogCacheSize)
	}
	if cfg.DelayedInsertLimit != 100 {
		t.Errorf("delayed_insert_limit = %d, want 100", cfg.DelayedInsertLimit)
	}
	if cfg.MaxConnections != 101 { // 100 rounded onto the step-25 lattice
		t.Errorf("max_connections = %d, want 101", cfg.MaxConnections)
	}
	if cfg.DelayedQueueSize != 1000 {
		t.Errorf("delayed_queue_size = %d, want 1000", cfg.DelayedQueueSize)
	}
	if cfg.JoinBufferSize != 8388608 {
		t.Errorf("join_buffer_size = %d, want 8388608", cfg.JoinBufferSize)
	}
	if cfg.NetBufferLength != 16384 {
		t.Errorf("net_buffer_length = %d, want 16384", cfg.NetBufferLength)
	}
	if cfg.TableCache != 64 {
		t.Errorf("table_cache = %d, want 64", cfg.TableCache)
	}
	if cfg.ThreadConcurrency != 10 {
		t.Errorf("thread_con = %d, want 10", cfg.ThreadConcurrency)
	}
	if cfg.ThreadStack != 65536 {
		t.Errorf("thread_stack = %d, want 65536", cfg.ThreadStack)
	}
}

func TestDecodeConfigPanicsOnWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on short config")
		}
	}()
	DecodeConfig(param.Config{1})
}

func TestQueryKindString(t *testing.T) {
	if QueryRead.String() != "read" || QueryJoin.String() != "join" ||
		QueryWrite.String() != "write" || QueryKind(9).String() != "unknown" {
		t.Fatal("QueryKind.String wrong")
	}
}

func TestSimpleQueryCompletes(t *testing.T) {
	eng, s := newServer(defaults())
	var ok bool
	s.Query(QueryRead, 4<<10, func(o bool) { ok = o })
	eng.Run()
	if !ok {
		t.Fatal("read query failed")
	}
	if s.Stats().Completed != 1 || s.Stats().Queries != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestConnectionLimitRejects(t *testing.T) {
	cfg := defaults()
	cfg.MaxConnections = 1
	cfg.ThreadConcurrency = 1
	eng, s := newServer(cfg)
	// Backlog equals max_connections (1), so the third concurrent query
	// must be rejected.
	rejected := 0
	for i := 0; i < 3; i++ {
		s.Query(QueryJoin, 64<<10, func(ok bool) {
			if !ok {
				rejected++
			}
		})
	}
	if rejected != 1 {
		t.Fatalf("rejected = %d, want 1", rejected)
	}
	if s.Stats().RejectedConns != 1 {
		t.Fatalf("RejectedConns = %d", s.Stats().RejectedConns)
	}
	eng.Run()
	if s.Stats().Completed != 2 {
		t.Fatalf("Completed = %d, want 2", s.Stats().Completed)
	}
}

func TestThreadConcurrencyLimitsParallelism(t *testing.T) {
	// With 1 thread, N queries serialize; with many threads they overlap.
	run := func(threads int64) float64 {
		cfg := defaults()
		cfg.ThreadConcurrency = threads
		cfg.MaxConnections = 1001
		eng, s := newServer(cfg)
		remaining := 50
		for i := 0; i < 50; i++ {
			s.Query(QueryJoin, 32<<10, func(bool) { remaining-- })
		}
		eng.Run()
		if remaining != 0 {
			t.Fatalf("%d queries never completed", remaining)
		}
		return eng.Now()
	}
	serial, parallel := run(1), run(64)
	if parallel >= serial {
		t.Fatalf("thread_con had no effect: 1→%v, 64→%v", serial, parallel)
	}
}

func TestSmallTableCacheCausesReopens(t *testing.T) {
	small := defaults()
	small.TableCache = 16
	large := defaults()
	large.TableCache = 1024
	engS, sS := newServer(small)
	engL, sL := newServer(large)
	for i := 0; i < 500; i++ {
		sS.Query(QueryRead, 4<<10, func(bool) {})
		sL.Query(QueryRead, 4<<10, func(bool) {})
	}
	engS.Run()
	engL.Run()
	if sS.Stats().TableReopens == 0 {
		t.Fatal("small table cache produced no reopens")
	}
	if sL.Stats().TableReopens != 0 {
		t.Fatalf("large table cache produced %d reopens", sL.Stats().TableReopens)
	}
}

func TestSmallBinlogCacheSpills(t *testing.T) {
	small := defaults()
	small.BinlogCacheSize = 4096
	large := defaults()
	large.BinlogCacheSize = 1048576
	engS, sS := newServer(small)
	engL, sL := newServer(large)
	for i := 0; i < 300; i++ {
		sS.Query(QueryWrite, 2<<10, func(bool) {})
		sL.Query(QueryWrite, 2<<10, func(bool) {})
	}
	engS.Run()
	engL.Run()
	if sS.Stats().BinlogSpills <= sL.Stats().BinlogSpills {
		t.Fatalf("spills: small-cache %d <= large-cache %d",
			sS.Stats().BinlogSpills, sL.Stats().BinlogSpills)
	}
	// Spills cost disk time: the small-cache run takes longer.
	if engS.Now() <= engL.Now() {
		t.Fatalf("binlog spills did not slow the server: %v <= %v", engS.Now(), engL.Now())
	}
}

func TestDelayedQueueAmortizesInsertIO(t *testing.T) {
	small := defaults()
	small.DelayedQueueSize = 100
	small.DelayedInsertLimit = 1000
	large := defaults()
	large.DelayedQueueSize = 10000
	large.DelayedInsertLimit = 1000
	engS, sS := newServer(small)
	engL, sL := newServer(large)
	for i := 0; i < 300; i++ {
		sS.Query(QueryWrite, 2<<10, func(bool) {})
		sL.Query(QueryWrite, 2<<10, func(bool) {})
	}
	engS.Run()
	engL.Run()
	if engL.Now() >= engS.Now() {
		t.Fatalf("larger delayed queue did not reduce write time: %v >= %v", engL.Now(), engS.Now())
	}
}

func TestJoinBufferBarelyAffectsPerformance(t *testing.T) {
	// The paper's finding: join_buffer_size has no performance impact
	// (but it does cost memory). Allow at most a 5% completion-time delta.
	run := func(jb int64) float64 {
		cfg := defaults()
		cfg.JoinBufferSize = jb
		eng, s := newServer(cfg)
		for i := 0; i < 300; i++ {
			s.Query(QueryJoin, 32<<10, func(bool) {})
		}
		eng.Run()
		return eng.Now()
	}
	small, large := run(407552), run(8388608)
	ratio := small / large
	if ratio > 1.05 || ratio < 0.95 {
		t.Fatalf("join_buffer_size affected performance too much: ratio %v", ratio)
	}
	// ... but it must dominate the memory footprint difference.
	a := defaults()
	a.JoinBufferSize = 407552
	b := defaults()
	b.JoinBufferSize = 8388608
	if b.MemoryFootprint()-a.MemoryFootprint() < 30<<20 {
		t.Fatal("join buffer memory cost too small to matter")
	}
}

func TestMemoryFootprintScalesWithThreadsAndConnections(t *testing.T) {
	base := defaults()
	more := defaults()
	more.ThreadConcurrency = 100
	more.MaxConnections = 1001
	if more.MemoryFootprint() <= base.MemoryFootprint() {
		t.Fatal("footprint not monotone")
	}
}

func TestNetBufferEfficiency(t *testing.T) {
	small := defaults()
	small.NetBufferLength = 1024
	large := defaults()
	large.NetBufferLength = 65536
	_, s1 := newServer(small)
	_, s2 := newServer(large)
	if s2.netEfficiency() >= s1.netEfficiency() {
		t.Fatal("larger net buffer not more efficient")
	}
}

func TestInsertBatchFactorMonotone(t *testing.T) {
	cfg := defaults()
	cfg.DelayedInsertLimit = 1000
	prev := 0.0
	for _, q := range []int64{100, 400, 1600, 6400} {
		cfg.DelayedQueueSize = q
		_, s := newServer(cfg)
		f := s.insertBatchFactor()
		if f < prev {
			t.Fatalf("batch factor not monotone at queue=%d: %v < %v", q, f, prev)
		}
		prev = f
	}
	// delayed_insert_limit caps the batch.
	cfg.DelayedQueueSize = 10000
	cfg.DelayedInsertLimit = 10
	_, s := newServer(cfg)
	capped := s.insertBatchFactor()
	cfg.DelayedInsertLimit = 1000
	_, s2 := newServer(cfg)
	if capped >= s2.insertBatchFactor() {
		t.Fatal("delayed_insert_limit did not cap batching")
	}
}

func TestResetStats(t *testing.T) {
	eng, s := newServer(defaults())
	s.Query(QueryRead, 1<<10, func(bool) {})
	eng.Run()
	s.ResetStats()
	if s.Stats() != (Stats{}) {
		t.Fatal("ResetStats left residue")
	}
}

func BenchmarkQueryRead(b *testing.B) {
	eng, s := newServer(defaults())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Query(QueryRead, 4<<10, func(bool) {})
		eng.Run()
	}
}
