// Package db models the backend tier: a MySQL-3.23-like database server
// governed by the nine tunable parameters of Table 3 of the paper.
//
// The qualitative effects reproduced:
//
//   - max_connections caps concurrent client connections; the ordering
//     workload's long transactions need far more than the default 100.
//   - thread_con (thread_concurrency) caps queries executing at once;
//     raising it helps under load but each running thread costs
//     thread_stack bytes of memory.
//   - table_cache below the working set forces table re-opens (extra CPU
//     and a disk seek), so the tuner pushes it up (Table 3: 64 → ~800).
//   - binlog_cache_size below the transaction log size spills the binlog
//     to disk; ordering transactions are the largest.
//   - join_buffer_size costs memory per concurrent thread but barely
//     affects service times — the paper's observation that shrinking it
//     (8 MB → ~400 KB) freed memory without hurting performance.
//   - net_buffer_length trades per-KB result transfer CPU against memory.
//   - delayed_insert_limit / delayed_queue_size batch insert flushes.
package db

import (
	"fmt"

	"webharmony/internal/cluster"
	"webharmony/internal/param"
	"webharmony/internal/rng"
	"webharmony/internal/simnet"
)

// Parameter names, as in Table 3.
const (
	ParamBinlogCacheSize    = "binlog_cache_size"
	ParamDelayedInsertLimit = "delayed_insert_limit"
	ParamMaxConnections     = "max_connections"
	ParamDelayedQueueSize   = "delayed_queue_size"
	ParamJoinBufferSize     = "join_buffer_size"
	ParamNetBufferLength    = "net_buffer_length"
	ParamTableCache         = "table_cache"
	ParamThreadConcurrency  = "thread_con"
	ParamThreadStack        = "thread_stack"
)

// Space returns the database tier's tunable-parameter space with the
// paper's default values (64-KB thread_stack default rounded to its
// power-of-two lattice point).
func Space() *param.Space {
	return param.MustSpace(
		param.Def{Name: ParamBinlogCacheSize, Min: 4096, Max: 1048576, Default: 32768, Step: 1024, Unit: "bytes"},
		param.Def{Name: ParamDelayedInsertLimit, Min: 10, Max: 1000, Default: 100, Step: 10, Unit: "rows"},
		param.Def{Name: ParamMaxConnections, Min: 1, Max: 1001, Default: 101, Step: 25, Unit: "connections"},
		param.Def{Name: ParamDelayedQueueSize, Min: 100, Max: 10000, Default: 1000, Step: 100, Unit: "rows"},
		param.Def{Name: ParamJoinBufferSize, Min: 4096, Max: 16777216, Default: 8388608, Step: 2048, Unit: "bytes"},
		param.Def{Name: ParamNetBufferLength, Min: 1024, Max: 65536, Default: 16384, Step: 1024, Unit: "bytes"},
		param.Def{Name: ParamTableCache, Min: 16, Max: 1024, Default: 64, Step: 1, Unit: "tables"},
		param.Def{Name: ParamThreadConcurrency, Min: 1, Max: 128, Default: 10, Step: 1, Unit: "threads"},
		param.Def{Name: ParamThreadStack, Min: 65536, Max: 2097152, Default: 65536, Step: 1024, Unit: "bytes"},
	)
}

// Config is the decoded database configuration.
type Config struct {
	BinlogCacheSize    int64
	DelayedInsertLimit int64
	MaxConnections     int64
	DelayedQueueSize   int64
	JoinBufferSize     int64
	NetBufferLength    int64
	TableCache         int64
	ThreadConcurrency  int64
	ThreadStack        int64
}

// DecodeConfig interprets a param.Config laid out per Space().
func DecodeConfig(c param.Config) Config {
	sp := Space()
	if len(c) != sp.Len() {
		panic(fmt.Sprintf("db: config has %d values, want %d", len(c), sp.Len()))
	}
	get := func(name string) int64 { return c[sp.IndexOf(name)] }
	return Config{
		BinlogCacheSize:    get(ParamBinlogCacheSize),
		DelayedInsertLimit: get(ParamDelayedInsertLimit),
		MaxConnections:     get(ParamMaxConnections),
		DelayedQueueSize:   get(ParamDelayedQueueSize),
		JoinBufferSize:     get(ParamJoinBufferSize),
		NetBufferLength:    get(ParamNetBufferLength),
		TableCache:         get(ParamTableCache),
		ThreadConcurrency:  get(ParamThreadConcurrency),
		ThreadStack:        get(ParamThreadStack),
	}
}

// MemoryFootprint returns the bytes of node memory the server consumes.
// Per-thread buffers (stack and join buffer) scale with thread_con, and
// per-connection buffers with max_connections — the couplings that let the
// tuner trade join_buffer_size for more threads, as in Table 3.
func (c Config) MemoryFootprint() int64 {
	const (
		baseline   = 64 << 20 // server code, key buffer, dictionary
		rowSize    = 256      // delayed-insert queue row
		connExtra  = 16 << 10 // per-connection session state
		activeFrac = 2        // ~half the running threads hold a join buffer
	)
	perConn := c.NetBufferLength*2 + connExtra
	perThread := c.ThreadStack + c.JoinBufferSize/activeFrac
	return baseline +
		c.MaxConnections*perConn +
		c.ThreadConcurrency*perThread +
		c.DelayedQueueSize*rowSize +
		c.BinlogCacheSize*(c.ThreadConcurrency/4+1)
}

// QueryKind classifies database requests.
type QueryKind int

const (
	// QueryRead is a simple indexed select (product detail, cart read).
	QueryRead QueryKind = iota
	// QueryJoin is a multi-table select (best sellers, search results).
	QueryJoin
	// QueryWrite is a transactional insert/update (buy confirm, cart add).
	QueryWrite
)

// String returns the query-kind name.
func (k QueryKind) String() string {
	switch k {
	case QueryRead:
		return "read"
	case QueryJoin:
		return "join"
	case QueryWrite:
		return "write"
	default:
		return "unknown"
	}
}

// CostModel holds the cost coefficients of the query engine.
type CostModel struct {
	ParseCost     float64 // CPU seconds to parse/plan a query
	RowCost       float64 // CPU seconds per KB of result produced
	JoinExtraCost float64 // additional CPU for join queries
	WorkingTables int64   // tables touched by the TPC-W schema workload
	ReadMissProb  float64 // buffer-pool miss probability for reads
	ReadMissBytes int64   // bytes fetched from disk on a miss
	WriteLogBytes int64   // bytes appended to the log per transaction
	TxnSizeMu     float64 // lognormal mu of transaction binlog size
	TxnSizeSigma  float64 // lognormal sigma of transaction binlog size
}

// DefaultCostModel returns the calibrated cost model.
func DefaultCostModel() CostModel {
	return CostModel{
		ParseCost:     0.0010,
		RowCost:       0.00005,
		JoinExtraCost: 0.0012,
		WorkingTables: 420,
		ReadMissProb:  0.18,
		ReadMissBytes: 16 << 10,
		WriteLogBytes: 20 << 10,
		TxnSizeMu:     10.2, // median ≈ 27 KB
		TxnSizeSigma:  0.8,
	}
}

// Stats counts database activity since the last reset.
type Stats struct {
	Queries       uint64
	RejectedConns uint64
	TableReopens  uint64
	BinlogSpills  uint64
	DiskReads     uint64
	Completed     uint64
}

// Server is one database instance bound to a cluster node.
type Server struct {
	cfg     Config
	cost    CostModel
	node    *cluster.Node
	conns   *simnet.TokenPool
	threads *simnet.TokenPool
	src     *rng.Source
	stats   Stats

	// free recycles per-query records so the steady-state query path
	// allocates no closures; see the query type and DESIGN.md §7.
	free []*query
}

// New creates a database server on the given node. src drives the
// stochastic parts of the cost model (cache misses, transaction sizes).
func New(eng *simnet.Engine, node *cluster.Node, cfg Config, cost CostModel, src *rng.Source) *Server {
	backlog := int(cfg.MaxConnections) // listen backlog beyond the limit
	s := &Server{
		cfg:     cfg,
		cost:    cost,
		node:    node,
		conns:   simnet.NewTokenPool(eng, node.Name()+".conns", int(cfg.MaxConnections), backlog),
		threads: simnet.NewTokenPool(eng, node.Name()+".threads", int(cfg.ThreadConcurrency), -1),
		src:     src,
	}
	s.conns.SetSpanSite(cluster.SpanSiteDBConnPool)
	s.threads.SetSpanSite(cluster.SpanSiteDBThreadPool)
	return s
}

// Config returns the server's configuration.
func (s *Server) Config() Config { return s.cfg }

// Node returns the node the server runs on.
func (s *Server) Node() *cluster.Node { return s.node }

// Stats returns a snapshot of the activity counters.
func (s *Server) Stats() Stats { return s.stats }

// ResetStats zeroes the activity counters.
func (s *Server) ResetStats() { s.stats = Stats{} }

// PoolOccupancy returns the connection pool's in-use, waiting and capacity
// counts, for diagnostics and the telemetry sampler.
func (s *Server) PoolOccupancy() (inUse, waiting, capacity int) {
	return s.conns.InUse(), s.conns.Waiting(), s.conns.Capacity()
}

// netEfficiency returns the result-transfer CPU multiplier for the
// configured net buffer (small buffers mean more packets and syscalls).
func (s *Server) netEfficiency() float64 {
	refKB := 32.0
	bufKB := float64(s.cfg.NetBufferLength) / 1024
	return 1 + refKB/(refKB+bufKB)
}

// tableReopenProb returns the probability a query must re-open a table
// because the descriptor cache is smaller than the working set.
func (s *Server) tableReopenProb() float64 {
	if s.cfg.TableCache >= s.cost.WorkingTables {
		return 0
	}
	return 1 - float64(s.cfg.TableCache)/float64(s.cost.WorkingTables)
}

// insertBatchFactor returns the disk-cost divisor for delayed inserts:
// a larger delayed queue amortizes more flushes (diminishing returns),
// while a tiny delayed_insert_limit caps the benefit.
func (s *Server) insertBatchFactor() float64 {
	batch := float64(s.cfg.DelayedQueueSize) / 100
	if lim := float64(s.cfg.DelayedInsertLimit); batch > lim {
		batch = lim
	}
	if batch < 1 {
		batch = 1
	}
	// log2 amortization: queue 100 → 1x, 800 → 4x, 6400 → ~7x.
	f := 1.0
	for b := batch; b > 1; b /= 2 {
		f++
	}
	return f
}

// query stages. The stage names the event whose completion the query is
// waiting on; qFree is the recycled sentinel — a dispatch on it means a
// stale callback fired on a recycled record, and panics.
const (
	qFree int8 = iota
	qConnGrant
	qThreadGrant
	qExecuted
	qDiskDone
	qSent
)

// query is one in-flight database request's state: the pooled replacement
// for the closure chain Query/execute used to build per request. Its two
// callbacks are method values allocated once when the record is first
// created and reused across recycles; records return to the server's free
// list before the request's done callback runs.
type query struct {
	srv         *Server
	kind        QueryKind
	resultBytes int64
	done        func(ok bool)
	diskSeconds float64
	stage       int8

	stepFn   func() // bound step, scheduled per stage advance
	rejectFn func() // bound reject, passed to the connection Acquire
}

// getQuery returns a recycled query record, or a fresh one with its
// callbacks bound.
func (s *Server) getQuery(kind QueryKind, resultBytes int64, done func(ok bool)) *query {
	var q *query
	if n := len(s.free); n > 0 {
		q = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		q = &query{srv: s}
		q.stepFn = q.step
		q.rejectFn = q.reject
	}
	q.kind = kind
	q.resultBytes = resultBytes
	q.done = done
	return q
}

// putQuery recycles a query record, dropping its callback reference and
// arming the stale-dispatch sentinel.
func (s *Server) putQuery(q *query) {
	q.done = nil
	q.stage = qFree
	s.free = append(s.free, q)
}

// step advances the query through the same event sequence the closure
// chain produced: connection grant → thread grant → CPU → (disk) → NIC →
// completion.
func (q *query) step() {
	s := q.srv
	switch q.stage {
	case qConnGrant:
		q.stage = qThreadGrant
		s.threads.Acquire(q.stepFn, nil) // thread queue is unbounded; connections bound admission
	case qThreadGrant:
		q.execute()
	case qExecuted:
		if q.diskSeconds > 0 {
			q.stage = qDiskDone
			s.node.Disk().Submit(q.diskSeconds, q.stepFn)
			return
		}
		q.stage = qSent
		s.node.NIC().Submit(s.node.NetDemand(q.resultBytes), q.stepFn)
	case qDiskDone:
		q.stage = qSent
		s.node.NIC().Submit(s.node.NetDemand(q.resultBytes), q.stepFn)
	case qSent:
		done := q.done
		s.putQuery(q)
		s.threads.Release()
		s.conns.Release()
		s.stats.Completed++
		done(true)
	default:
		panic("db: query stepped after release")
	}
}

// reject handles a shed connection at the listener.
func (q *query) reject() {
	s := q.srv
	if q.stage != qConnGrant {
		panic("db: query rejected after release")
	}
	done := q.done
	s.putQuery(q)
	s.stats.RejectedConns++
	done(false)
}

// Query executes a database request of the given kind producing
// resultBytes of output. done(ok) fires on completion; ok=false means the
// connection was shed at the listener.
func (s *Server) Query(kind QueryKind, resultBytes int64, done func(ok bool)) {
	s.stats.Queries++
	q := s.getQuery(kind, resultBytes, done)
	q.stage = qConnGrant
	s.conns.Acquire(q.stepFn, q.rejectFn)
}

// execute runs the query body on the node's resources: the cost-model
// draws happen here, in the same order the closure pipeline made them,
// and the resulting CPU/disk/NIC demands drive the remaining stages.
func (q *query) execute() {
	s := q.srv
	cpu := s.cost.ParseCost
	if q.kind == QueryJoin {
		cpu += s.cost.JoinExtraCost
		// An undersized join buffer costs a little extra CPU for block
		// nested-loop passes; above ~256 KB the effect vanishes. This is
		// deliberately small: the paper found join_buffer_size did not
		// matter for performance (only for memory).
		if s.cfg.JoinBufferSize < 256<<10 {
			cpu += 0.0004
		}
	}
	cpu += s.cost.RowCost * float64(q.resultBytes) / 1024 * s.netEfficiency()

	// Stack-cramped threads re-allocate frames for deep plans.
	if s.cfg.ThreadStack < 96<<10 {
		cpu += 0.0002
	}

	diskSeconds := 0.0
	if q.kind == QueryWrite {
		txn := int64(s.src.LogNormal(s.cost.TxnSizeMu, s.cost.TxnSizeSigma))
		logBytes := s.cost.WriteLogBytes
		if txn > s.cfg.BinlogCacheSize {
			// Binlog cache spill: the whole transaction goes through disk.
			s.stats.BinlogSpills++
			logBytes += txn
		}
		// Group commit: delayed-queue batching amortizes the whole flush
		// (seek + transfer), not just the bytes.
		diskSeconds += s.node.DiskDemand(logBytes) / s.insertBatchFactor()
		// Updates read the rows they modify; those reads miss too.
		if s.src.Bernoulli(s.cost.ReadMissProb) {
			s.stats.DiskReads++
			diskSeconds += s.node.DiskDemand(s.cost.ReadMissBytes)
		}
	} else if s.src.Bernoulli(s.cost.ReadMissProb) {
		s.stats.DiskReads++
		diskSeconds += s.node.DiskDemand(s.cost.ReadMissBytes)
	}
	if s.src.Bernoulli(s.tableReopenProb()) {
		s.stats.TableReopens++
		cpu += 0.0008
		diskSeconds += s.node.DiskDemand(4 << 10) // .frm read
	}

	q.diskSeconds = diskSeconds
	q.stage = qExecuted
	s.node.CPU().Submit(cpu, q.stepFn)
}
