package telemetry

import (
	"strings"
	"testing"
)

func TestWriteEvalStats(t *testing.T) {
	var b strings.Builder
	s := EvalStats{Lookups: 68, Hits: 22, Misses: 46, Entries: 46, Bytes: 25354}
	if err := WriteEvalStats(&b, s); err != nil {
		t.Fatal(err)
	}
	want := "evalcache lookups=68 hits=22 misses=46 entries=46 bytes=25354 hit_rate=0.3235\n"
	if b.String() != want {
		t.Errorf("WriteEvalStats = %q, want %q", b.String(), want)
	}
}

func TestEvalStatsHitRate(t *testing.T) {
	if got := (EvalStats{}).HitRate(); got != 0 {
		t.Errorf("zero-lookup HitRate = %v, want 0", got)
	}
	if got := (EvalStats{Lookups: 4, Hits: 3}).HitRate(); got != 0.75 {
		t.Errorf("HitRate = %v, want 0.75", got)
	}
}

func TestCollectorEvalStats(t *testing.T) {
	c := NewCollector()
	if _, ok := c.EvalStats(); ok {
		t.Fatal("fresh collector reports stored stats")
	}
	var b strings.Builder
	if err := c.WriteEvalStats(&b); err != nil || b.Len() != 0 {
		t.Fatalf("empty collector wrote %q (err %v), want nothing", b.String(), err)
	}
	s := EvalStats{Lookups: 10, Hits: 4, Misses: 6, Entries: 6, Bytes: 100}
	c.SetEvalStats(s)
	got, ok := c.EvalStats()
	if !ok || got != s {
		t.Fatalf("EvalStats = %+v ok=%v, want %+v", got, ok, s)
	}
	if err := c.WriteEvalStats(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "lookups=10") || !strings.Contains(b.String(), "hit_rate=0.4000") {
		t.Errorf("collector WriteEvalStats = %q", b.String())
	}
}
