package telemetry

import (
	"webharmony/internal/cluster"
	"webharmony/internal/simnet"
	"webharmony/internal/websim"
)

// Sampler periodically samples a simulated web cluster into a Recorder,
// one Sample per tier per interval, driven by the simulated clock (the
// same scheme monitor.Timeline uses for per-node utilization). The sampler
// only reads simulation state: its events shift the engine's sequence
// numbers uniformly without reordering any simulation event relative to
// another, so an instrumented run produces the same WIPS as a bare one.
//
// Utilizations are interval means from cluster.UtilSnapshot deltas; queue
// depths and pool occupancy are instantaneous gauges; the proxy hit ratio
// covers the interval's lookups, tolerating the counter resets a server
// restart causes (each tuning iteration rebuilds the servers).
type Sampler struct {
	sys      *websim.System
	rec      *Recorder
	interval float64

	snaps   map[int]cluster.UtilSnapshot
	prev    map[int]proxyCounters // per-node cache counters at the last sample
	timer   simnet.Timer
	running bool
}

type proxyCounters struct {
	hits    uint64
	lookups uint64
}

// NewSampler creates a sampler recording every interval simulated seconds.
// Start must be called to begin.
func NewSampler(sys *websim.System, rec *Recorder, interval float64) *Sampler {
	if interval <= 0 {
		panic("telemetry: sampler interval must be positive")
	}
	return &Sampler{
		sys: sys, rec: rec, interval: interval,
		snaps: make(map[int]cluster.UtilSnapshot),
		prev:  make(map[int]proxyCounters),
	}
}

// Start begins sampling; each sample covers the interval since the
// previous one.
func (s *Sampler) Start() {
	if s.running {
		return
	}
	s.running = true
	for _, n := range s.sys.Cluster.Nodes() {
		s.snaps[n.ID()] = n.Snapshot()
	}
	s.schedule()
}

// Stop halts sampling; recorded samples remain in the recorder.
func (s *Sampler) Stop() {
	s.running = false
	s.timer.Cancel()
}

func (s *Sampler) schedule() {
	// Sampling events belong to the telemetry layer, not to whatever
	// request context happened to be live when the previous tick fired.
	f := s.sys.Eng.EnterRoot("telemetry/sample")
	s.timer = s.sys.Eng.Schedule(s.interval, func() {
		if !s.running {
			return
		}
		s.sample()
		s.schedule()
	})
	f.Exit()
}

func (s *Sampler) sample() {
	now := s.sys.Eng.Now()
	for _, tier := range cluster.Tiers() {
		nodes := s.sys.Cluster.TierNodes(tier)
		if len(nodes) == 0 {
			continue
		}
		smp := Sample{T: now, Tier: tier.String(), Nodes: len(nodes)}
		var hits, lookups uint64
		for _, n := range nodes {
			if snap, ok := s.snaps[n.ID()]; ok {
				u := n.Utilization(snap)
				smp.CPU += u[cluster.ResCPU]
				smp.Memory += u[cluster.ResMemory]
				smp.Net += u[cluster.ResNet]
				smp.Disk += u[cluster.ResDisk]
			}
			s.snaps[n.ID()] = n.Snapshot()
			smp.Queue += n.CPU().QueueLen() + n.Disk().QueueLen() + n.NIC().QueueLen()

			switch tier {
			case cluster.TierProxy:
				if st, ok := s.sys.ProxyStats(n.ID()); ok {
					cur := proxyCounters{
						hits:    st.HitsMem + st.HitsDisk,
						lookups: st.HitsMem + st.HitsDisk + st.Misses,
					}
					p := s.prev[n.ID()]
					dh, dl := cur.hits-p.hits, cur.lookups-p.lookups
					if cur.lookups < p.lookups || cur.hits < p.hits {
						// The server restarted since the last sample and
						// its counters reset; count from zero.
						dh, dl = cur.hits, cur.lookups
					}
					hits += dh
					lookups += dl
					s.prev[n.ID()] = cur
				}
			case cluster.TierApp:
				if a, ok := s.sys.AppServer(n.ID()); ok {
					hb, ab := a.ThreadsInUse()
					smp.PoolBusy += hb + ab
					hq, aq := a.QueueDepths()
					smp.PoolWait += hq + aq
				}
			case cluster.TierDB:
				if d, ok := s.sys.DBServer(n.ID()); ok {
					busy, waiting, _ := d.PoolOccupancy()
					smp.PoolBusy += busy
					smp.PoolWait += waiting
				}
			}
		}
		f := float64(len(nodes))
		smp.CPU /= f
		smp.Memory /= f
		smp.Net /= f
		smp.Disk /= f
		if lookups > 0 {
			smp.HitRatio = float64(hits) / float64(lookups)
		}
		s.rec.Sample(smp)
	}
}
