package telemetry

import (
	"reflect"
	"testing"

	"webharmony/internal/tpcw"
	"webharmony/internal/websim"
)

// loadedSystem builds a small 1/1/1 cluster under TPC-W load, started.
func loadedSystem(t *testing.T) *websim.System {
	t.Helper()
	sys := websim.New(websim.Options{
		ProxyNodes: 1, AppNodes: 1, DBNodes: 1, Scale: 800, Seed: 1,
	})
	d := tpcw.NewDriver(sys.Eng, sys, sys.Catalog, tpcw.DriverOptions{
		Browsers: 60, Workload: tpcw.Browsing, ThinkMean: 0.5, Seed: 7,
	})
	d.Start()
	return sys
}

func TestSamplerRecordsPerTierSamples(t *testing.T) {
	sys := loadedSystem(t)
	rec := NewCollector().Recorder(0, "test")
	s := NewSampler(sys, rec, 5)
	s.Start()
	sys.Eng.RunUntil(21)

	samples := rec.Samples()
	// 4 sampling points (t=5,10,15,20) x 3 tiers.
	if len(samples) != 12 {
		t.Fatalf("got %d samples, want 12", len(samples))
	}
	tiers := map[string]bool{}
	var busy float64
	for _, smp := range samples {
		tiers[smp.Tier] = true
		if smp.Nodes != 1 {
			t.Fatalf("sample on tier %s reports %d nodes, want 1", smp.Tier, smp.Nodes)
		}
		if smp.CPU < 0 || smp.CPU > 1 {
			t.Fatalf("CPU utilization %v out of [0,1]", smp.CPU)
		}
		busy += smp.CPU
	}
	if !tiers["proxy"] || !tiers["app"] || !tiers["db"] {
		t.Fatalf("missing tiers in %v", tiers)
	}
	if busy == 0 {
		t.Fatal("a loaded cluster should show nonzero CPU utilization")
	}
}

func TestSamplerStopHaltsSampling(t *testing.T) {
	sys := loadedSystem(t)
	rec := NewCollector().Recorder(0, "test")
	s := NewSampler(sys, rec, 5)
	s.Start()
	sys.Eng.RunUntil(11)
	n := len(rec.Samples())
	s.Stop()
	sys.Eng.RunUntil(40)
	if got := len(rec.Samples()); got != n {
		t.Fatalf("sampler recorded %d samples after Stop, want %d", got, n)
	}
}

func TestSamplerDeterministic(t *testing.T) {
	runOnce := func() []Sample {
		sys := loadedSystem(t)
		rec := NewCollector().Recorder(0, "test")
		NewSampler(sys, rec, 5).Start()
		sys.Eng.RunUntil(30)
		return rec.Samples()
	}
	a, b := runOnce(), runOnce()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical runs produced different samples")
	}
}

func TestSamplerRejectsBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("interval <= 0 should panic")
		}
	}()
	NewSampler(loadedSystem(t), nil, 0)
}
