package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Event(Event{Kind: "step"})
	r.Sample(Sample{Tier: "app"})
	if r.Events() != nil || r.Samples() != nil {
		t.Fatal("nil recorder should report no data")
	}
}

func TestRecorderStampsIdentity(t *testing.T) {
	c := NewCollector()
	r := c.Recorder(3, "unitA")
	r.Event(Event{Kind: "step", Replicate: 99, Unit: "spoofed"})
	r.Sample(Sample{Tier: "db", Replicate: 99, Unit: "spoofed"})
	if ev := r.Events()[0]; ev.Replicate != 3 || ev.Unit != "unitA" {
		t.Fatalf("event identity = %d/%q, want 3/unitA", ev.Replicate, ev.Unit)
	}
	if s := r.Samples()[0]; s.Replicate != 3 || s.Unit != "unitA" {
		t.Fatalf("sample identity = %d/%q, want 3/unitA", s.Replicate, s.Unit)
	}
}

func TestDuplicateRecorderPanics(t *testing.T) {
	c := NewCollector()
	c.Recorder(0, "u")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Recorder(0, u) should panic")
		}
	}()
	c.Recorder(0, "u")
}

// TestWriteOrderIndependentOfRegistration pins the determinism contract:
// the exported bytes depend only on the recorded data, never on the order
// the worker pool happened to register recorders in.
func TestWriteOrderIndependentOfRegistration(t *testing.T) {
	build := func(order []int) *Collector {
		c := NewCollector()
		keys := [][2]interface{}{{0, "a"}, {0, "b"}, {1, "a"}}
		recs := make([]*Recorder, len(keys))
		for _, i := range order {
			recs[i] = c.Recorder(keys[i][0].(int), keys[i][1].(string))
		}
		for i, r := range recs {
			r.Event(Event{Kind: "step", Iter: i, Cost: float64(i)})
			r.Sample(Sample{T: float64(i), Tier: "app", Nodes: 1})
		}
		return c
	}
	var tr1, tr2, m1, m2 bytes.Buffer
	c1 := build([]int{0, 1, 2})
	c2 := build([]int{2, 0, 1})
	if err := c1.WriteTrace(&tr1); err != nil {
		t.Fatal(err)
	}
	if err := c2.WriteTrace(&tr2); err != nil {
		t.Fatal(err)
	}
	if tr1.String() != tr2.String() {
		t.Error("trace bytes depend on registration order")
	}
	if err := c1.WriteMetrics(&m1); err != nil {
		t.Fatal(err)
	}
	if err := c2.WriteMetrics(&m2); err != nil {
		t.Fatal(err)
	}
	if m1.String() != m2.String() {
		t.Error("metrics bytes depend on registration order")
	}

	lines := strings.Split(strings.TrimSpace(tr1.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d trace lines, want 3", len(lines))
	}
	for i, want := range []string{`"unit":"a"`, `"unit":"b"`, `"unit":"a"`} {
		if !strings.Contains(lines[i], want) {
			t.Errorf("trace line %d = %s, want it to contain %s", i, lines[i], want)
		}
	}
}

func TestWriteMetricsHeaderAndFormat(t *testing.T) {
	c := NewCollector()
	r := c.Recorder(0, "u")
	r.Sample(Sample{
		T: 5.5, Tier: "proxy", Nodes: 2,
		CPU: 0.5, Memory: 0.25, Net: 0.125, Disk: 0,
		Queue: 7, HitRatio: 0.75, PoolBusy: 3, PoolWait: 1,
	})
	var buf bytes.Buffer
	if err := c.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	want := metricsHeader + "0,u,5.500,proxy,2,0.5000,0.2500,0.1250,0.0000,7,0.7500,3,1\n"
	if buf.String() != want {
		t.Fatalf("metrics CSV:\n got %q\nwant %q", buf.String(), want)
	}
}

func TestEmpty(t *testing.T) {
	c := NewCollector()
	if !c.Empty() {
		t.Fatal("fresh collector should be empty")
	}
	c.Recorder(0, "u")
	if !c.Empty() {
		t.Fatal("collector with a silent recorder should be empty")
	}
	c.Recorder(0, "v").Event(Event{Kind: "step"})
	if c.Empty() {
		t.Fatal("collector with an event should not be empty")
	}
}
