package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"webharmony/internal/rng"
	"webharmony/internal/tpcw"
	"webharmony/internal/websim"
)

// spanFixture builds a collector with one span-recording unit driven
// through a few hundred pages and one attribution snapshot.
func spanFixture(t *testing.T) *Collector {
	t.Helper()
	c := NewCollector()
	rec := c.Recorder(0, "unit-a")
	// A second, spanless recorder: the writers must skip it cleanly.
	c.Recorder(1, "unit-b").Event(Event{T: 2, Iter: 1, Kind: "step"})
	sys := websim.New(websim.Options{ProxyNodes: 1, AppNodes: 1, DBNodes: 1, Scale: 200, Seed: 9})
	sink := websim.NewSpanSink(50)
	sys.SetSpanSink(sink)
	rec.AttachSpans(sink)
	rec.Event(Event{T: 1, Iter: 1, Kind: "move", Move: "proxy->app"})

	gen := tpcw.NewPageGen(sys.Catalog, rng.New(4))
	done := func(bool) {}
	for i := 0; i < 600; i++ {
		sys.Request(gen.Page(tpcw.Interaction(i%tpcw.NumInteractions), i%5), done)
		if i%16 == 15 {
			sys.Eng.Run()
		}
	}
	sys.Eng.Run()
	sink.Snapshot(1, sys.Eng.Now())
	return c
}

func TestWriteSpansJSONL(t *testing.T) {
	c := spanFixture(t)
	var buf bytes.Buffer
	if err := c.WriteSpans(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) < 5 {
		t.Fatalf("got %d span lines, want several (sample every 50 of 600 pages)", len(lines))
	}
	for i, line := range lines {
		var row struct {
			Replicate   int    `json:"replicate"`
			Unit        string `json:"unit"`
			Interaction string `json:"interaction"`
			TotalUS     int64  `json:"total_us"`
			Spans       []struct {
				Site string `json:"site"`
				Kind string `json:"kind"`
				US   int64  `json:"us"`
			} `json:"spans"`
			Children []struct {
				TotalUS  int64 `json:"total_us"`
				Critical bool  `json:"critical"`
			} `json:"children"`
		}
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if row.Unit != "unit-a" || row.Interaction == "" || row.TotalUS <= 0 {
			t.Errorf("line %d: malformed row %q", i, line)
		}
		for _, sp := range row.Spans {
			if sp.Site == "" || (sp.Kind != "queue" && sp.Kind != "service") || sp.US <= 0 {
				t.Errorf("line %d: malformed segment %+v", i, sp)
			}
		}
	}
}

func TestWriteLatencyCSV(t *testing.T) {
	c := spanFixture(t)
	var buf bytes.Buffer
	if err := c.WriteLatency(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "replicate,unit,interaction,tier,kind,count,mean_us,p50_us,p95_us,p99_us,max_us\n") {
		t.Fatalf("unexpected header: %q", strings.SplitN(out, "\n", 2)[0])
	}
	for _, want := range []string{
		",all,total,response,",
		",all,app,service,",
		",home,total,response,",
		"# attribution\n",
		"replicate,unit,iter,t,tier,queue_us,service_us,queue_share,note\n",
		"move:proxy->app", // the iteration-1 move lands in the window's note
	} {
		if !strings.Contains(out, want) {
			t.Errorf("latency output missing %q", want)
		}
	}
	// Deterministic: a second write emits identical bytes.
	var again bytes.Buffer
	if err := c.WriteLatency(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != out {
		t.Error("WriteLatency is not byte-stable across calls")
	}
}

func TestWriteLatencyRollupAndTopGroup(t *testing.T) {
	c := spanFixture(t)
	var buf bytes.Buffer
	if err := c.WriteLatencyRollup(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "unit unit-a:") || !strings.Contains(out, "queue-wait") {
		t.Errorf("rollup output malformed: %q", out)
	}
	if !strings.Contains(out, "1 moves") {
		t.Errorf("rollup did not count the move event: %q", out)
	}
	top := c.TopQueueGroup("unit-a")
	if top == "" {
		t.Error("TopQueueGroup found no attributed queue-wait")
	}
	if got := c.TopQueueGroup("no-such-unit"); got != "" {
		t.Errorf("TopQueueGroup(%q) = %q, want empty", "no-such-unit", got)
	}
}

func TestSpanAccessorsNilSafe(t *testing.T) {
	var r *Recorder
	r.AttachSpans(websim.NewSpanSink(0)) // must not panic
	if r.Spans() != nil {
		t.Error("nil recorder returned a sink")
	}
	c := NewCollector()
	rec := c.Recorder(0, "u")
	if rec.Spans() != nil {
		t.Error("fresh recorder has a sink before AttachSpans")
	}
	sink := websim.NewSpanSink(0)
	rec.AttachSpans(sink)
	if rec.Spans() != sink {
		t.Error("Spans() did not return the attached sink")
	}
	if got := c.TopQueueGroup("u"); got != "" {
		t.Errorf("TopQueueGroup with an empty sink = %q, want empty", got)
	}
}

func TestSpansCountTowardEmpty(t *testing.T) {
	c := NewCollector()
	rec := c.Recorder(0, "u")
	if !c.Empty() {
		t.Fatal("fresh collector not empty")
	}
	sink := websim.NewSpanSink(0)
	rec.AttachSpans(sink)
	if !c.Empty() {
		t.Fatal("collector with an unused sink should still be empty")
	}
	sys := websim.New(websim.Options{ProxyNodes: 1, AppNodes: 1, DBNodes: 1, Scale: 200, Seed: 2})
	sys.SetSpanSink(sink)
	done := func(bool) {}
	gen := tpcw.NewPageGen(sys.Catalog, rng.New(3))
	sys.Request(gen.Page(tpcw.Home, 0), done)
	sys.Eng.Run()
	if c.Empty() {
		t.Error("collector with folded pages reported empty")
	}
}
