package telemetry

import (
	"strings"
	"testing"

	"webharmony/internal/simnet"
)

// buildProfile records a few stacks onto a fresh engine-backed profile.
func buildProfile(t *testing.T, frames []string) *simnet.Profile {
	t.Helper()
	e := &simnet.Engine{}
	p := simnet.NewProfile()
	e.SetProfile(p)
	for i, name := range frames {
		f := e.EnterRoot(name)
		e.Schedule(float64(i+1)*0.5, func() {})
		f.Exit()
	}
	e.Run()
	return p
}

// TestCollectorMergesSimProfilesInFixedOrder: the merged profile's folded
// bytes must not depend on recorder registration order — only on the
// (replicate, unit) keys — mirroring the trace/metrics contract.
func TestCollectorMergesSimProfilesInFixedOrder(t *testing.T) {
	render := func(order []int) string {
		c := NewCollector()
		units := []struct {
			rep    int
			unit   string
			frames []string
		}{
			{0, "b", []string{"x", "y"}},
			{1, "a", []string{"y", "z"}},
			{0, "a", []string{"x", "z", "z"}},
		}
		for _, i := range order {
			u := units[i]
			r := c.Recorder(u.rep, u.unit)
			r.AttachSimProfile(buildProfile(t, u.frames))
		}
		var sb strings.Builder
		if err := c.WriteSimProfile(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	first := render([]int{0, 1, 2})
	second := render([]int{2, 0, 1})
	if first != second {
		t.Fatalf("merged profile depends on registration order:\n%s\n----\n%s", first, second)
	}
	if first == "" {
		t.Fatal("merged profile is empty")
	}
}

// TestNilRecorderSimProfileSafe: the nil-recorder contract extends to the
// profile hooks.
func TestNilRecorderSimProfileSafe(t *testing.T) {
	var r *Recorder
	r.AttachSimProfile(simnet.NewProfile())
	if r.SimProfile() != nil {
		t.Fatal("nil recorder returned a profile")
	}
}

// TestEmptyConsidersSimProfiles: a collector whose only content is an
// attached profile is not Empty.
func TestEmptyConsidersSimProfiles(t *testing.T) {
	c := NewCollector()
	r := c.Recorder(0, "u")
	if !c.Empty() {
		t.Fatal("collector with blank recorder should be empty")
	}
	r.AttachSimProfile(buildProfile(t, []string{"s"}))
	if c.Empty() {
		t.Fatal("collector with a recorded profile reported Empty")
	}
}

// TestWriteSimProfileRollup smoke-checks the rollup path through the
// collector.
func TestWriteSimProfileRollup(t *testing.T) {
	c := NewCollector()
	c.Recorder(0, "u").AttachSimProfile(buildProfile(t, []string{"s", "t"}))
	var sb strings.Builder
	if err := c.WriteSimProfileRollup(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "simnet event-loop profile:") {
		t.Fatalf("unexpected rollup: %q", sb.String())
	}
}
