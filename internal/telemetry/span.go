package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"webharmony/internal/cluster"
	"webharmony/internal/simnet"
	"webharmony/internal/stats"
	"webharmony/internal/tpcw"
	"webharmony/internal/websim"
)

// AttachSpans associates the unit's span sink with the recorder, so the
// collector can emit latency histograms, attribution windows and sampled
// span dumps in the same fixed (replicate, unit) order it uses for traces.
func (r *Recorder) AttachSpans(s *websim.SpanSink) {
	if r == nil {
		return
	}
	r.spans = s
}

// Spans returns the attached span sink, if any.
func (r *Recorder) Spans() *websim.SpanSink {
	if r == nil {
		return nil
	}
	return r.spans
}

// spanSegJSON is one span segment in an exported dump.
type spanSegJSON struct {
	Site string `json:"site"`
	Kind string `json:"kind"`
	US   int64  `json:"us"`
}

// spanKidJSON is one folded child span in an exported dump.
type spanKidJSON struct {
	OffsetUS int64         `json:"offset_us"`
	TotalUS  int64         `json:"total_us"`
	Critical bool          `json:"critical"`
	OK       bool          `json:"ok"`
	Cache    string        `json:"cache,omitempty"`
	Spans    []spanSegJSON `json:"spans"`
}

// spanDumpJSON is one sampled page span tree, one JSON line in -spans
// output.
type spanDumpJSON struct {
	Replicate   int           `json:"replicate"`
	Unit        string        `json:"unit"`
	TUS         int64         `json:"t_us"`
	Interaction string        `json:"interaction"`
	OK          bool          `json:"ok"`
	TotalUS     int64         `json:"total_us"`
	Spans       []spanSegJSON `json:"spans"`
	Children    []spanKidJSON `json:"children,omitempty"`
}

// segsJSON converts span segments to their exported form.
func segsJSON(segs []simnet.SpanSeg) []spanSegJSON {
	out := make([]spanSegJSON, len(segs))
	for i, s := range segs {
		out[i] = spanSegJSON{
			Site: cluster.SpanSiteName(s.Site),
			Kind: simnet.SpanKindName(s.Kind),
			US:   s.Dur,
		}
	}
	return out
}

// WriteSpans writes the sampled span dumps as JSON lines, recorders in
// (replicate, unit) order and each recorder's dumps in fold (simulated
// time) order — byte-identical at any worker count.
func (c *Collector) WriteSpans(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, r := range c.sorted() {
		if r.spans == nil {
			continue
		}
		for _, d := range r.spans.Dumps() {
			row := spanDumpJSON{
				Replicate:   r.replicate,
				Unit:        r.unit,
				TUS:         d.T,
				Interaction: d.Iter.Slug(),
				OK:          d.OK,
				TotalUS:     d.Total,
				Spans:       segsJSON(d.Segs),
			}
			if len(d.Kids) > 0 {
				row.Children = make([]spanKidJSON, len(d.Kids))
				for i, k := range d.Kids {
					row.Children[i] = spanKidJSON{
						OffsetUS: k.Offset,
						TotalUS:  k.Total,
						Critical: k.Critical,
						OK:       k.OK,
						Cache:    websim.ObjCacheName(k.Cache),
						Spans:    segsJSON(k.Segs),
					}
				}
			}
			line, err := json.Marshal(row)
			if err != nil {
				return err
			}
			if _, err := bw.Write(line); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// latencyHeader is the -latency histogram CSV schema. Times are integer
// span ticks (microseconds of simulated time).
const latencyHeader = "replicate,unit,interaction,tier,kind,count,mean_us,p50_us,p95_us,p99_us,max_us\n"

// attributionHeader heads the second section of -latency output: windowed
// queue/service attribution per tier group, one window per tuning
// iteration, with the share of the window's total queue-wait. The note
// column carries the trace events (reconfiguration moves, restarts) that
// landed in the window.
const attributionHeader = "replicate,unit,iter,t,tier,queue_us,service_us,queue_share,note\n"

// writeHistRow emits one histogram CSV row; empty histograms are skipped.
func writeHistRow(bw *bufio.Writer, replicate int, unit, interaction, tier, kind string, h *stats.LatencyHist) error {
	if h.N() == 0 {
		return nil
	}
	_, err := fmt.Fprintf(bw, "%d,%s,%s,%s,%s,%d,%.1f,%d,%d,%d,%d\n",
		replicate, unit, interaction, tier, kind,
		h.N(), h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99), h.Max())
	return err
}

// kindNames orders the two segment kinds for emission.
var kindNames = [2]string{simnet.SpanQueue: "queue", simnet.SpanService: "service"}

// WriteLatency writes the per-(interaction, tier, kind) latency histograms
// followed by the windowed attribution table, recorders in (replicate,
// unit) order. The "all" interaction rows merge every interaction's
// histogram; the tier "total" kind "response" rows are end-to-end response
// times of successful pages.
func (c *Collector) WriteLatency(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(latencyHeader); err != nil {
		return err
	}
	for _, r := range c.sorted() {
		k := r.spans
		if k == nil {
			continue
		}
		// Merged-across-interactions block first.
		var all stats.LatencyHist
		for it := 0; it < tpcw.NumInteractions; it++ {
			all.Merge(k.RespHist(tpcw.Interaction(it)))
		}
		if err := writeHistRow(bw, r.replicate, r.unit, "all", "total", "response", &all); err != nil {
			return err
		}
		for g := 0; g < cluster.NumSpanGroups; g++ {
			for kind := range kindNames {
				var m stats.LatencyHist
				for it := 0; it < tpcw.NumInteractions; it++ {
					m.Merge(k.Hist(tpcw.Interaction(it), uint8(g), uint8(kind)))
				}
				if err := writeHistRow(bw, r.replicate, r.unit, "all",
					cluster.SpanGroupName(uint8(g)), kindNames[kind], &m); err != nil {
					return err
				}
			}
		}
		// Then per interaction, in Table 1 order.
		for it := 0; it < tpcw.NumInteractions; it++ {
			slug := tpcw.Interaction(it).Slug()
			if err := writeHistRow(bw, r.replicate, r.unit, slug, "total", "response",
				k.RespHist(tpcw.Interaction(it))); err != nil {
				return err
			}
			for g := 0; g < cluster.NumSpanGroups; g++ {
				for kind := range kindNames {
					if err := writeHistRow(bw, r.replicate, r.unit, slug,
						cluster.SpanGroupName(uint8(g)), kindNames[kind],
						k.Hist(tpcw.Interaction(it), uint8(g), uint8(kind))); err != nil {
						return err
					}
				}
			}
		}
	}
	if _, err := bw.WriteString("# attribution\n"); err != nil {
		return err
	}
	if _, err := bw.WriteString(attributionHeader); err != nil {
		return err
	}
	for _, r := range c.sorted() {
		k := r.spans
		if k == nil {
			continue
		}
		notes := iterNotes(r.events)
		for _, sn := range k.Snapshots() {
			var totalQueue int64
			for g := 0; g < cluster.NumSpanGroups; g++ {
				totalQueue += sn.Queue[g]
			}
			for g := 0; g < cluster.NumSpanGroups; g++ {
				if sn.Queue[g] == 0 && sn.Svc[g] == 0 {
					continue
				}
				share := 0.0
				if totalQueue > 0 {
					share = float64(sn.Queue[g]) / float64(totalQueue)
				}
				_, err := fmt.Fprintf(bw, "%d,%s,%d,%s,%s,%d,%d,%.4f,%s\n",
					r.replicate, r.unit, sn.Iter,
					strconv.FormatFloat(sn.T, 'f', 3, 64),
					cluster.SpanGroupName(uint8(g)),
					sn.Queue[g], sn.Svc[g], share, notes[sn.Iter])
				if err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// iterNotes joins each iteration's non-step trace events ("move:...",
// "restart") into the note shown on that iteration's attribution rows, so
// a reader sees which reconfiguration landed in the window.
func iterNotes(events []Event) map[int]string {
	notes := make(map[int]string)
	for _, ev := range events {
		if ev.Kind == "step" {
			continue
		}
		note := ev.Kind
		if ev.Move != "" {
			note += ":" + strings.ReplaceAll(ev.Move, ",", ";")
		}
		if prev := notes[ev.Iter]; prev != "" {
			note = prev + " " + note
		}
		notes[ev.Iter] = note
	}
	return notes
}

// WriteLatencyRollup writes the human-readable bottleneck summary: per
// unit, tiers ranked by their share of total queue-wait, with pages folded
// and windows/moves counted — the "why did the simplex move" answer at a
// glance.
func (c *Collector) WriteLatencyRollup(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, r := range c.sorted() {
		k := r.spans
		if k == nil {
			continue
		}
		queue := k.QueueTotals()
		var totalQueue int64
		for _, q := range queue {
			totalQueue += q
		}
		type rank struct {
			g uint8
			q int64
		}
		ranks := make([]rank, 0, cluster.NumSpanGroups)
		for g := range queue {
			if queue[g] > 0 {
				ranks = append(ranks, rank{uint8(g), queue[g]})
			}
		}
		sort.SliceStable(ranks, func(i, j int) bool { return ranks[i].q > ranks[j].q })
		moves := 0
		for _, ev := range r.events {
			if ev.Kind == "move" {
				moves++
			}
		}
		fmt.Fprintf(bw, "replicate %d unit %s: %d pages, %d windows, %d moves; queue-wait",
			r.replicate, r.unit, k.Pages(), len(k.Snapshots()), moves)
		if totalQueue == 0 {
			fmt.Fprintf(bw, " none\n")
			continue
		}
		for _, rk := range ranks {
			fmt.Fprintf(bw, " %s %.1f%%", cluster.SpanGroupName(rk.g),
				100*float64(rk.q)/float64(totalQueue))
		}
		fmt.Fprintf(bw, "\n")
	}
	return bw.Flush()
}

// TopQueueGroup returns the name of the tier group holding the largest
// share of a unit's total queue-wait across every replicate of that unit,
// or "" if nothing was attributed — the bottleneck the attribution report
// names. Exposed for tests and programmatic assertions.
func (c *Collector) TopQueueGroup(unit string) string {
	var totals [cluster.NumSpanGroups]int64
	for _, r := range c.sorted() {
		if r.unit != unit || r.spans == nil {
			continue
		}
		q := r.spans.QueueTotals()
		for g := range q {
			totals[g] += q[g]
		}
	}
	best, bestG := int64(0), -1
	for g, q := range totals {
		if q > best {
			best, bestG = q, g
		}
	}
	if bestG < 0 {
		return ""
	}
	return cluster.SpanGroupName(uint8(bestG))
}
