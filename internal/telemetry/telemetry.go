// Package telemetry is the deterministic observability layer of the
// reproduction: tuner step traces (one JSON line per simplex move,
// reconfiguration or search restart) and per-tier metrics timeseries
// (utilization, queue depths, cache hit ratio, pool occupancy sampled on
// the simulated clock).
//
// Determinism is the design constraint. Every experiment unit (one lab)
// owns a Recorder registered under a (replicate, unit-name) key; appends
// within a unit are single-threaded (the unit's worker), and the writers
// emit recorders sorted by key, so the exported bytes are identical at any
// worker count — the same contract core.ForEach gives result slices.
// Timestamps are simulated seconds, never wall-clock, so reruns are
// byte-stable too. A nil *Recorder is safe to use and records nothing,
// which is how the layer costs nothing when disabled.
package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"webharmony/internal/simnet"
	"webharmony/internal/websim"
)

// Event is one trace record: a tuner step, a reconfiguration move or a
// search restart. Config maps parameter names to the evaluated values;
// encoding/json sorts the keys, keeping the line byte-stable.
type Event struct {
	Replicate int              `json:"replicate"`
	Unit      string           `json:"unit"`
	Session   string           `json:"session,omitempty"`
	T         float64          `json:"t"`
	Iter      int              `json:"iter"`
	Kind      string           `json:"kind"` // "step", "restart" or "move"
	Move      string           `json:"move,omitempty"`
	Config    map[string]int64 `json:"config,omitempty"`
	Cost      float64          `json:"cost"`
	Best      float64          `json:"best"`
}

// Sample is one per-tier metrics observation covering the interval since
// the previous sample: mean resource utilization across the tier's nodes,
// instantaneous queued jobs, the proxy tier's cache hit ratio over the
// interval, and the tier's pool occupancy (app-server threads in use, DB
// connections in use) with the matching wait-queue length.
type Sample struct {
	Replicate int
	Unit      string
	T         float64
	Tier      string
	Nodes     int
	CPU       float64
	Memory    float64
	Net       float64
	Disk      float64
	Queue     int
	HitRatio  float64
	PoolBusy  int
	PoolWait  int
}

// Recorder accumulates the events and samples of one experiment unit.
// Appends must come from a single goroutine (the unit's worker); a nil
// receiver records nothing, so instrumented code needs no nil checks
// beyond the one it already pays to find the recorder.
type Recorder struct {
	replicate int
	unit      string
	events    []Event
	samples   []Sample
	simProf   *simnet.Profile
	spans     *websim.SpanSink
}

// Event appends a trace event, stamping the recorder's replicate and unit.
func (r *Recorder) Event(ev Event) {
	if r == nil {
		return
	}
	ev.Replicate = r.replicate
	ev.Unit = r.unit
	r.events = append(r.events, ev)
}

// Sample appends a metrics sample, stamping replicate and unit.
func (r *Recorder) Sample(s Sample) {
	if r == nil {
		return
	}
	s.Replicate = r.replicate
	s.Unit = r.unit
	r.samples = append(r.samples, s)
}

// Events returns the recorded trace events. Callers must not modify it.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Samples returns the recorded metrics samples. Callers must not modify it.
func (r *Recorder) Samples() []Sample {
	if r == nil {
		return nil
	}
	return r.samples
}

// AttachSimProfile associates the unit's event-loop profile with the
// recorder so the collector can merge profiles across units in the same
// fixed (replicate, unit) order it uses for traces and metrics.
func (r *Recorder) AttachSimProfile(p *simnet.Profile) {
	if r == nil {
		return
	}
	r.simProf = p
}

// SimProfile returns the attached event-loop profile, if any.
func (r *Recorder) SimProfile() *simnet.Profile {
	if r == nil {
		return nil
	}
	return r.simProf
}

type recorderKey struct {
	replicate int
	unit      string
}

// Collector owns the recorders of one experiment run. Recorder
// registration is safe to call from the worker pool; the writers must run
// after the experiments finish (the CLI writes once at exit).
type Collector struct {
	mu        sync.Mutex
	recs      map[recorderKey]*Recorder
	evalStats *EvalStats
}

// NewCollector creates an empty collector.
func NewCollector() *Collector {
	return &Collector{recs: make(map[recorderKey]*Recorder)}
}

// Recorder registers and returns the recorder for (replicate, unit). Each
// key may be claimed once; a duplicate claim panics, because two units
// appending to one recorder would race and break the determinism contract
// — it means a runner failed to derive distinct unit names for its labs.
func (c *Collector) Recorder(replicate int, unit string) *Recorder {
	k := recorderKey{replicate: replicate, unit: unit}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.recs[k]; dup {
		panic(fmt.Sprintf("telemetry: duplicate recorder %d/%q", replicate, unit))
	}
	r := &Recorder{replicate: replicate, unit: unit}
	c.recs[k] = r
	return r
}

// sorted returns the recorders ordered by (replicate, unit) — the fixed
// emission order that makes the exported bytes independent of the order
// the worker pool happened to register them in.
func (c *Collector) sorted() []*Recorder {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Recorder, 0, len(c.recs))
	for _, r := range c.recs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].replicate != out[j].replicate {
			return out[i].replicate < out[j].replicate
		}
		return out[i].unit < out[j].unit
	})
	return out
}

// WriteTrace writes every recorded event as JSON lines, recorders in
// (replicate, unit) order and each recorder's events in record order.
func (c *Collector) WriteTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, r := range c.sorted() {
		for _, ev := range r.events {
			line, err := json.Marshal(ev)
			if err != nil {
				return err
			}
			if _, err := bw.Write(line); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// metricsHeader is the long-form metrics CSV schema.
const metricsHeader = "replicate,unit,t,tier,nodes,cpu,memory,net,disk,queue,hit_ratio,pool_busy,pool_wait\n"

// WriteMetrics writes every recorded sample as a long-form CSV, recorders
// in (replicate, unit) order and each recorder's samples in record order.
// Ratios use fixed four-decimal precision and times three decimals, so the
// output is byte-stable and diff-friendly.
func (c *Collector) WriteMetrics(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(metricsHeader); err != nil {
		return err
	}
	for _, r := range c.sorted() {
		for _, s := range r.samples {
			_, err := fmt.Fprintf(bw, "%d,%s,%s,%s,%d,%.4f,%.4f,%.4f,%.4f,%d,%.4f,%d,%d\n",
				s.Replicate, s.Unit,
				strconv.FormatFloat(s.T, 'f', 3, 64), s.Tier, s.Nodes,
				s.CPU, s.Memory, s.Net, s.Disk,
				s.Queue, s.HitRatio, s.PoolBusy, s.PoolWait)
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// MergedSimProfile merges every recorder's event-loop profile into one,
// in (replicate, unit) order. Per-stack weights are float sums, so the
// fixed merge order is what makes the merged profile — and everything
// written from it — byte-identical at any worker count. Returns an empty
// profile if no recorder attached one.
func (c *Collector) MergedSimProfile() *simnet.Profile {
	merged := simnet.NewProfile()
	for _, r := range c.sorted() {
		merged.Merge(r.simProf)
	}
	return merged
}

// WriteSimProfile writes the merged event-loop profile in folded-stack
// format (flamegraph.pl / speedscope input).
func (c *Collector) WriteSimProfile(w io.Writer) error {
	return c.MergedSimProfile().WriteFolded(w)
}

// WriteSimProfileRollup writes the merged profile's human-readable rollup.
func (c *Collector) WriteSimProfileRollup(w io.Writer) error {
	return c.MergedSimProfile().WriteRollup(w)
}

// Empty reports whether the collector recorded nothing at all.
func (c *Collector) Empty() bool {
	for _, r := range c.sorted() {
		if len(r.events) > 0 || len(r.samples) > 0 || !r.simProf.Empty() {
			return false
		}
		if r.spans != nil && r.spans.Pages() > 0 {
			return false
		}
	}
	return true
}
