package telemetry

import (
	"fmt"
	"io"
)

// EvalStats is the evaluation-memoization counter set a run reports via
// `webtune -evalstats`. It is field-compatible with evalcache.Stats so
// the CLI converts with a plain type conversion; telemetry keeps its own
// copy of the type rather than importing the cache, because the
// observability layer reports on the run — it never participates in it.
type EvalStats struct {
	Lookups uint64
	Hits    uint64
	Misses  uint64
	Entries uint64
	Bytes   uint64
}

// HitRate returns Hits/Lookups, or 0 before the first lookup.
func (s EvalStats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// WriteEvalStats writes the counters as a fixed-layout, byte-stable
// report. All counts are deterministic at any worker count (see
// internal/evalcache), so two runs of the same experiment produce
// identical reports.
func WriteEvalStats(w io.Writer, s EvalStats) error {
	_, err := fmt.Fprintf(w,
		"evalcache lookups=%d hits=%d misses=%d entries=%d bytes=%d hit_rate=%.4f\n",
		s.Lookups, s.Hits, s.Misses, s.Entries, s.Bytes, s.HitRate())
	return err
}

// SetEvalStats stores the run's final cache counters on the collector so
// exporters can ship them alongside traces and metrics.
func (c *Collector) SetEvalStats(s EvalStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evalStats = &s
}

// EvalStats returns the stored counters and whether any were set.
func (c *Collector) EvalStats() (EvalStats, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.evalStats == nil {
		return EvalStats{}, false
	}
	return *c.evalStats, true
}

// WriteEvalStats writes the stored counters; without any it writes
// nothing and reports no error, mirroring the other writers' behavior on
// an empty collector.
func (c *Collector) WriteEvalStats(w io.Writer) error {
	s, ok := c.EvalStats()
	if !ok {
		return nil
	}
	return WriteEvalStats(w, s)
}
