package param

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"

	"webharmony/internal/rng"
)

func def(name string, min, max, dflt, step int64) Def {
	return Def{Name: name, Min: min, Max: max, Default: dflt, Step: step}
}

func TestDefValidate(t *testing.T) {
	good := def("x", 0, 10, 5, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid def rejected: %v", err)
	}
	bad := []Def{
		def("", 0, 10, 5, 1),
		def("x", 10, 0, 5, 1),
		def("x", 0, 10, 5, 0),
		def("x", 0, 10, 11, 1),
		def("x", 0, 10, -1, 1),
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("bad def %d accepted", i)
		}
	}
}

func TestDefClamp(t *testing.T) {
	d := def("x", 10, 100, 10, 5)
	cases := []struct{ in, want int64 }{
		{5, 10}, {10, 10}, {12, 10}, {13, 15}, {14, 15},
		{100, 100}, {101, 100}, {99, 100}, {97, 95}, {1000, 100},
	}
	for _, c := range cases {
		if got := d.Clamp(c.in); got != c.want {
			t.Errorf("Clamp(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestDefClampStepNotDividingRange(t *testing.T) {
	// Range 0..10 step 4: feasible {0,4,8}; 10 should snap to 8 not 12.
	d := def("x", 0, 10, 0, 4)
	if got := d.Clamp(10); got != 8 {
		t.Fatalf("Clamp(10) = %d, want 8", got)
	}
	if got := d.Clamp(9); got != 8 {
		t.Fatalf("Clamp(9) = %d, want 8", got)
	}
}

func TestDefClampFloat(t *testing.T) {
	d := def("x", 0, 100, 50, 1)
	if got := d.ClampFloat(math.NaN()); got != 50 {
		t.Fatalf("ClampFloat(NaN) = %d, want default 50", got)
	}
	if got := d.ClampFloat(math.Inf(1)); got != 100 {
		t.Fatalf("ClampFloat(+Inf) = %d, want 100", got)
	}
	if got := d.ClampFloat(math.Inf(-1)); got != 0 {
		t.Fatalf("ClampFloat(-Inf) = %d, want 0", got)
	}
	if got := d.ClampFloat(49.7); got != 50 {
		t.Fatalf("ClampFloat(49.7) = %d, want 50", got)
	}
}

func TestDefLevels(t *testing.T) {
	if got := def("x", 0, 10, 0, 5).Levels(); got != 3 {
		t.Fatalf("Levels = %d, want 3", got)
	}
	if got := def("x", 7, 7, 7, 1).Levels(); got != 1 {
		t.Fatalf("Levels = %d, want 1", got)
	}
}

func TestNewSpaceRejectsDuplicates(t *testing.T) {
	_, err := NewSpace(def("a", 0, 1, 0, 1), def("a", 0, 1, 0, 1))
	if err == nil {
		t.Fatal("duplicate names accepted")
	}
}

func TestSpaceDefaults(t *testing.T) {
	s := MustSpace(def("a", 0, 10, 3, 1), def("b", 5, 50, 20, 5))
	c := s.DefaultConfig()
	if c[0] != 3 || c[1] != 20 {
		t.Fatalf("DefaultConfig = %v", c)
	}
	if !s.Feasible(c) {
		t.Fatal("default config not feasible")
	}
	if s.Len() != 2 {
		t.Fatal("Len wrong")
	}
	if s.IndexOf("b") != 1 || s.IndexOf("zz") != -1 {
		t.Fatal("IndexOf wrong")
	}
	names := s.Names()
	if names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
}

func TestFeasible(t *testing.T) {
	s := MustSpace(def("a", 0, 10, 0, 2))
	if s.Feasible(Config{3}) {
		t.Fatal("off-lattice value accepted")
	}
	if s.Feasible(Config{12}) {
		t.Fatal("out-of-range value accepted")
	}
	if s.Feasible(Config{2, 4}) {
		t.Fatal("wrong-length config accepted")
	}
	if !s.Feasible(Config{4}) {
		t.Fatal("feasible value rejected")
	}
}

func TestNormalizeDenormalizeRoundTrip(t *testing.T) {
	s := MustSpace(def("a", 10, 110, 10, 10), def("b", 0, 7, 0, 7))
	f := func(seed uint64) bool {
		src := rng.New(seed)
		c := Config{
			s.Def(0).Clamp(int64(src.IntRange(10, 110))),
			s.Def(1).Clamp(int64(src.IntRange(0, 7))),
		}
		u := s.Normalize(c)
		back := s.Denormalize(u)
		return back.Equal(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDenormalizeClampsCube(t *testing.T) {
	s := MustSpace(def("a", 0, 100, 50, 1))
	if got := s.Denormalize([]float64{-3})[0]; got != 0 {
		t.Fatalf("Denormalize(-3) = %d, want 0", got)
	}
	if got := s.Denormalize([]float64{9})[0]; got != 100 {
		t.Fatalf("Denormalize(9) = %d, want 100", got)
	}
}

func TestDenormalizeAlwaysFeasible(t *testing.T) {
	s := MustSpace(
		def("a", 10, 113, 10, 7),
		def("b", -50, 50, 0, 3),
		def("c", 0, 1, 0, 1),
	)
	f := func(x, y, z float64) bool {
		c := s.Denormalize([]float64{x, y, z})
		return s.Feasible(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDegenerateParam(t *testing.T) {
	s := MustSpace(def("fixed", 5, 5, 5, 1))
	u := s.Normalize(Config{5})
	if u[0] != 0 {
		t.Fatalf("Normalize degenerate = %v", u[0])
	}
	if got := s.Denormalize([]float64{0.7})[0]; got != 5 {
		t.Fatalf("Denormalize degenerate = %d", got)
	}
}

func TestClampConfigInPlace(t *testing.T) {
	s := MustSpace(def("a", 0, 10, 0, 2), def("b", 0, 100, 0, 1))
	c := Config{37, -5}
	s.Clamp(c)
	if c[0] != 10 || c[1] != 0 {
		t.Fatalf("Clamp = %v", c)
	}
	if !s.Feasible(c) {
		t.Fatal("clamped config not feasible")
	}
}

func TestConfigCloneEqual(t *testing.T) {
	c := Config{1, 2, 3}
	d := c.Clone()
	if !c.Equal(d) {
		t.Fatal("clone not equal")
	}
	d[0] = 9
	if c.Equal(d) || c[0] == 9 {
		t.Fatal("clone aliases original")
	}
	if c.Equal(Config{1, 2}) {
		t.Fatal("length mismatch considered equal")
	}
}

func TestConfigKey(t *testing.T) {
	if got := (Config{1, -2, 3}).Key(); got != "1,-2,3" {
		t.Fatalf("Key = %q", got)
	}
	if got := (Config{}).Key(); got != "" {
		t.Fatalf("empty Key = %q", got)
	}
}

func TestConfigMapAndFromMap(t *testing.T) {
	s := MustSpace(def("a", 0, 10, 3, 1), def("b", 0, 10, 4, 1))
	m := Config{7, 8}.Map(s)
	if m["a"] != 7 || m["b"] != 8 {
		t.Fatalf("Map = %v", m)
	}
	c, err := FromMap(s, map[string]int64{"b": 9})
	if err != nil {
		t.Fatal(err)
	}
	if c[0] != 3 || c[1] != 9 {
		t.Fatalf("FromMap = %v", c)
	}
	if _, err := FromMap(s, map[string]int64{"zz": 1}); err == nil {
		t.Fatal("unknown name accepted")
	}
	if _, err := FromMap(s, map[string]int64{"a": 99}); err == nil {
		t.Fatal("infeasible value accepted")
	}
}

func TestConcatAndSlice(t *testing.T) {
	s1 := MustSpace(def("x", 0, 10, 1, 1))
	s2 := MustSpace(def("x", 0, 20, 2, 1), def("y", 0, 30, 3, 1))
	cat, err := Concat([]string{"p1", "p2"}, []*Space{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if cat.Len() != 3 {
		t.Fatalf("concat Len = %d", cat.Len())
	}
	if cat.IndexOf("p2.y") != 2 {
		t.Fatalf("prefixed name missing: %v", cat.Names())
	}
	c := Config{11, 12, 13}
	sub := Slice(c, []*Space{s1, s2}, 1)
	if len(sub) != 2 || sub[0] != 12 || sub[1] != 13 {
		t.Fatalf("Slice = %v", sub)
	}
	// Slice copies, not aliases.
	sub[0] = 99
	if c[1] == 99 {
		t.Fatal("Slice aliases source")
	}
}

func TestConcatMismatch(t *testing.T) {
	if _, err := Concat([]string{"a"}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	c := Config{1, 2, 3}
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "[1,2,3]" {
		t.Fatalf("marshal = %s", b)
	}
	var back Config
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(c) {
		t.Fatal("round trip mismatch")
	}
}

func TestNormalizePanicsOnLengthMismatch(t *testing.T) {
	s := MustSpace(def("a", 0, 10, 0, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	s.Normalize(Config{1, 2})
}
