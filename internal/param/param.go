// Package param models tunable server parameters the way Active Harmony
// sees them: each parameter is a bounded integer with a default value and a
// step granularity, and a configuration is a point in the integer lattice
// spanned by a parameter space.
//
// The tuning algorithms work in a normalized continuous unit cube; this
// package provides the round-trip between that cube and feasible integer
// configurations (the "nearest integer point" adaptation from §II.B of the
// paper).
package param

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// Def describes one tunable parameter.
type Def struct {
	Name    string `json:"name"`
	Min     int64  `json:"min"`
	Max     int64  `json:"max"`
	Default int64  `json:"default"`
	Step    int64  `json:"step"` // lattice granularity, >= 1
	Unit    string `json:"unit,omitempty"`
}

// Validate reports whether the definition is internally consistent.
func (d Def) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("param: empty name")
	}
	if d.Max < d.Min {
		return fmt.Errorf("param %s: max %d < min %d", d.Name, d.Max, d.Min)
	}
	if d.Step < 1 {
		return fmt.Errorf("param %s: step %d < 1", d.Name, d.Step)
	}
	if d.Default < d.Min || d.Default > d.Max {
		return fmt.Errorf("param %s: default %d outside [%d, %d]", d.Name, d.Default, d.Min, d.Max)
	}
	return nil
}

// Clamp rounds v to the parameter's lattice: the value is clamped into
// [Min, Max] and snapped to Min + k*Step for the nearest feasible k.
func (d Def) Clamp(v int64) int64 {
	if v <= d.Min {
		return d.Min
	}
	if v >= d.Max {
		v = d.Max
	}
	offset := v - d.Min
	k := (offset + d.Step/2) / d.Step
	snapped := d.Min + k*d.Step
	if snapped > d.Max {
		snapped -= d.Step
	}
	return snapped
}

// ClampFloat rounds a continuous proposal to the nearest feasible value.
func (d Def) ClampFloat(v float64) int64 {
	if math.IsNaN(v) {
		return d.Default
	}
	if v >= float64(d.Max) {
		return d.Clamp(d.Max)
	}
	if v <= float64(d.Min) {
		return d.Min
	}
	return d.Clamp(int64(math.RoundToEven(v)))
}

// Levels returns the number of feasible lattice points.
func (d Def) Levels() int64 { return (d.Max-d.Min)/d.Step + 1 }

// Space is an ordered collection of parameter definitions; it defines the
// search space for one tuning server.
type Space struct {
	defs  []Def
	index map[string]int
}

// NewSpace builds a space from defs, validating each and rejecting
// duplicate names.
func NewSpace(defs ...Def) (*Space, error) {
	s := &Space{defs: append([]Def(nil), defs...), index: make(map[string]int, len(defs))}
	for i, d := range s.defs {
		if err := d.Validate(); err != nil {
			return nil, err
		}
		if _, dup := s.index[d.Name]; dup {
			return nil, fmt.Errorf("param: duplicate name %q", d.Name)
		}
		s.index[d.Name] = i
	}
	return s, nil
}

// MustSpace is NewSpace that panics on error; for static definitions.
func MustSpace(defs ...Def) *Space {
	s, err := NewSpace(defs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of parameters (the search dimensionality).
func (s *Space) Len() int { return len(s.defs) }

// Def returns the i-th definition.
func (s *Space) Def(i int) Def { return s.defs[i] }

// Defs returns the definitions in order. Callers must not modify them.
func (s *Space) Defs() []Def { return s.defs }

// IndexOf returns the position of the named parameter, or -1.
func (s *Space) IndexOf(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Names returns the parameter names in order.
func (s *Space) Names() []string {
	names := make([]string, len(s.defs))
	for i, d := range s.defs {
		names[i] = d.Name
	}
	return names
}

// DefaultConfig returns the configuration with every parameter at its
// default value.
func (s *Space) DefaultConfig() Config {
	c := make(Config, len(s.defs))
	for i, d := range s.defs {
		c[i] = d.Default
	}
	return c
}

// Clamp snaps every coordinate of c onto the feasible lattice, in place,
// and returns c. It panics if the length does not match the space.
func (s *Space) Clamp(c Config) Config {
	s.checkLen(c)
	for i, d := range s.defs {
		c[i] = d.Clamp(c[i])
	}
	return c
}

// Feasible reports whether every coordinate of c lies on the lattice.
func (s *Space) Feasible(c Config) bool {
	if len(c) != len(s.defs) {
		return false
	}
	for i, d := range s.defs {
		v := c[i]
		if v < d.Min || v > d.Max || (v-d.Min)%d.Step != 0 {
			return false
		}
	}
	return true
}

// Normalize maps a configuration into the continuous unit cube [0,1]^k.
// Degenerate parameters (Min == Max) map to 0.
func (s *Space) Normalize(c Config) []float64 {
	s.checkLen(c)
	u := make([]float64, len(c))
	for i, d := range s.defs {
		if d.Max == d.Min {
			u[i] = 0
			continue
		}
		u[i] = float64(c[i]-d.Min) / float64(d.Max-d.Min)
	}
	return u
}

// Denormalize maps a unit-cube point to the nearest feasible configuration,
// clamping coordinates outside [0,1].
func (s *Space) Denormalize(u []float64) Config {
	if len(u) != len(s.defs) {
		panic(fmt.Sprintf("param: point has %d dims, space has %d", len(u), len(s.defs)))
	}
	c := make(Config, len(u))
	for i, d := range s.defs {
		v := u[i]
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		c[i] = d.ClampFloat(float64(d.Min) + v*float64(d.Max-d.Min))
	}
	return c
}

func (s *Space) checkLen(c Config) {
	if len(c) != len(s.defs) {
		panic(fmt.Sprintf("param: config has %d values, space has %d", len(c), len(s.defs)))
	}
}

// Concat returns a new space containing the parameters of all the given
// spaces in order, with each parameter name prefixed by the corresponding
// prefix ("prefix.name") so duplicates across servers stay distinct.
func Concat(prefixes []string, spaces []*Space) (*Space, error) {
	if len(prefixes) != len(spaces) {
		return nil, fmt.Errorf("param: %d prefixes for %d spaces", len(prefixes), len(spaces))
	}
	var defs []Def
	for i, sp := range spaces {
		for _, d := range sp.defs {
			d.Name = prefixes[i] + "." + d.Name
			defs = append(defs, d)
		}
	}
	return NewSpace(defs...)
}

// Slice extracts from a concatenated configuration the sub-configuration of
// the i-th constituent space, given the same spaces passed to Concat.
func Slice(c Config, spaces []*Space, i int) Config {
	off := 0
	for j := 0; j < i; j++ {
		off += spaces[j].Len()
	}
	return append(Config(nil), c[off:off+spaces[i].Len()]...)
}

// Config is a point in a parameter space: one value per definition, in
// space order.
type Config []int64

// Clone returns an independent copy.
func (c Config) Clone() Config { return append(Config(nil), c...) }

// Equal reports whether two configurations are identical.
func (c Config) Equal(o Config) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}

// Key returns a compact string usable as a map key.
func (c Config) Key() string {
	var b strings.Builder
	for i, v := range c {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// Map renders the configuration as name → value for the given space.
func (c Config) Map(s *Space) map[string]int64 {
	m := make(map[string]int64, len(c))
	for i, d := range s.defs {
		m[d.Name] = c[i]
	}
	return m
}

// FromMap builds a configuration for space s from a name → value map;
// missing names take their defaults, unknown names are an error.
func FromMap(s *Space, m map[string]int64) (Config, error) {
	c := s.DefaultConfig()
	for name, v := range m {
		i := s.IndexOf(name)
		if i < 0 {
			return nil, fmt.Errorf("param: unknown parameter %q", name)
		}
		c[i] = v
	}
	if !s.Feasible(c) {
		return nil, fmt.Errorf("param: values not feasible for space")
	}
	return c, nil
}

// MarshalJSON encodes the configuration as a plain JSON array.
func (c Config) MarshalJSON() ([]byte, error) { return json.Marshal([]int64(c)) }

// UnmarshalJSON decodes a plain JSON array.
func (c *Config) UnmarshalJSON(b []byte) error {
	var vs []int64
	if err := json.Unmarshal(b, &vs); err != nil {
		return err
	}
	*c = vs
	return nil
}
