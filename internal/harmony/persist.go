package harmony

import (
	"encoding/json"
	"fmt"

	"webharmony/internal/param"
)

// Snapshot is a serializable image of a tuning session. Because every
// search kernel is deterministic given (options, reported values), the
// snapshot stores only the session's options and history; Load replays the
// history through a fresh kernel and verifies that the proposals match.
// This is how sessions survive a tuning-server restart.
type Snapshot struct {
	Params  []param.Def `json:"params"`
	Options struct {
		Algorithm     string       `json:"algorithm"`
		Seed          uint64       `json:"seed"`
		GuardFactor   float64      `json:"guard_factor,omitempty"`
		Anchor        param.Config `json:"anchor,omitempty"`
		ShiftFactor   float64      `json:"shift_factor,omitempty"`
		ShiftPatience int          `json:"shift_patience,omitempty"`
	} `json:"options"`
	Perf []float64 `json:"perf"` // reported performance, in order
	// Configs are stored for verification: replay must propose the same.
	Configs []param.Config `json:"configs"`
}

// Save captures the session's state.
func (s *Session) Save() (*Snapshot, error) {
	if s.asked {
		return nil, fmt.Errorf("harmony: cannot save with an outstanding proposal")
	}
	snap := &Snapshot{Params: append([]param.Def(nil), s.space.Defs()...)}
	snap.Options.Algorithm = s.opts.Algorithm.String()
	snap.Options.Seed = s.opts.Seed
	snap.Options.GuardFactor = s.opts.GuardFactor
	if s.opts.Anchor != nil {
		snap.Options.Anchor = s.opts.Anchor.Clone()
	}
	snap.Options.ShiftFactor = s.opts.ShiftFactor
	snap.Options.ShiftPatience = s.opts.ShiftPatience
	for _, r := range s.history {
		snap.Perf = append(snap.Perf, r.Perf)
		snap.Configs = append(snap.Configs, r.Config.Clone())
	}
	return snap, nil
}

// MarshalJSON support: Snapshot is a plain struct; this helper writes it.
func (snap *Snapshot) Marshal() ([]byte, error) { return json.MarshalIndent(snap, "", "  ") }

// LoadSnapshot parses a snapshot previously produced by Marshal.
func LoadSnapshot(data []byte) (*Snapshot, error) {
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("harmony: bad snapshot: %w", err)
	}
	return &snap, nil
}

// Restore rebuilds a live session from the snapshot by deterministic
// replay. It fails if the replayed proposals diverge from the recorded
// ones (e.g. the snapshot was edited, or the code's search kernel
// changed incompatibly).
func Restore(snap *Snapshot) (*Session, error) {
	space, err := param.NewSpace(snap.Params...)
	if err != nil {
		return nil, fmt.Errorf("harmony: snapshot space: %w", err)
	}
	var algo Algorithm
	switch snap.Options.Algorithm {
	case "", "nelder-mead":
		algo = AlgoNelderMead
	case "random":
		algo = AlgoRandom
	case "coordinate":
		algo = AlgoCoordinate
	case "annealing":
		algo = AlgoAnnealing
	default:
		return nil, fmt.Errorf("harmony: snapshot algorithm %q unknown", snap.Options.Algorithm)
	}
	if len(snap.Perf) != len(snap.Configs) {
		return nil, fmt.Errorf("harmony: snapshot has %d perf values for %d configs",
			len(snap.Perf), len(snap.Configs))
	}
	sess := NewSession(space, Options{
		Algorithm:     algo,
		Seed:          snap.Options.Seed,
		GuardFactor:   snap.Options.GuardFactor,
		Anchor:        snap.Options.Anchor,
		ShiftFactor:   snap.Options.ShiftFactor,
		ShiftPatience: snap.Options.ShiftPatience,
	})
	for i, perf := range snap.Perf {
		cfg := sess.NextConfig()
		if !cfg.Equal(snap.Configs[i]) {
			return nil, fmt.Errorf("harmony: replay diverged at iteration %d: got %v, snapshot has %v",
				i+1, cfg, snap.Configs[i])
		}
		sess.Report(perf)
	}
	return sess, nil
}
