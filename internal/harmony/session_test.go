package harmony

import (
	"math"
	"testing"

	"webharmony/internal/param"
	"webharmony/internal/rng"
)

func testSpace() *param.Space {
	return param.MustSpace(
		param.Def{Name: "x", Min: 0, Max: 100, Default: 10, Step: 1},
		param.Def{Name: "y", Min: 0, Max: 100, Default: 90, Step: 1},
	)
}

// peakAt builds a performance function with a single maximum at (px, py).
func peakAt(px, py float64) func(param.Config) float64 {
	return func(c param.Config) float64 {
		dx := float64(c[0]) - px
		dy := float64(c[1]) - py
		return 1000 - (dx*dx+dy*dy)/10
	}
}

func runSession(s *Session, f func(param.Config) float64, n int) {
	for i := 0; i < n; i++ {
		cfg := s.NextConfig()
		s.Report(f(cfg))
	}
}

func TestAlgorithmString(t *testing.T) {
	if AlgoNelderMead.String() != "nelder-mead" || AlgoRandom.String() != "random" ||
		AlgoCoordinate.String() != "coordinate" || Algorithm(9).String() != "unknown" {
		t.Fatal("Algorithm names wrong")
	}
}

func TestSessionImprovesPerformance(t *testing.T) {
	s := NewSession(testSpace(), Options{Seed: 1})
	f := peakAt(70, 30)
	defPerf := f(testSpace().DefaultConfig())
	runSession(s, f, 150)
	_, best, ok := s.Best()
	if !ok || best <= defPerf {
		t.Fatalf("no improvement: best %v vs default %v", best, defPerf)
	}
	if s.Iterations() != 150 {
		t.Fatalf("Iterations = %d", s.Iterations())
	}
}

func TestSessionMaximizes(t *testing.T) {
	// The session must seek HIGH performance (WIPS), not low.
	s := NewSession(testSpace(), Options{Seed: 2})
	f := peakAt(50, 50)
	runSession(s, f, 100)
	best, bestPerf, _ := s.Best()
	if bestPerf < f(param.Config{30, 30}) {
		t.Fatalf("best %v at %v worse than a mediocre point", bestPerf, best)
	}
}

func TestSessionNextConfigIdempotentUntilReport(t *testing.T) {
	s := NewSession(testSpace(), Options{})
	a := s.NextConfig()
	b := s.NextConfig()
	if !a.Equal(b) {
		t.Fatal("NextConfig changed without a Report")
	}
	s.Report(1)
}

func TestSessionReportWithoutAskPanics(t *testing.T) {
	s := NewSession(testSpace(), Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("Report without NextConfig did not panic")
		}
	}()
	s.Report(1)
}

func TestSessionHistory(t *testing.T) {
	s := NewSession(testSpace(), Options{Seed: 3})
	runSession(s, peakAt(10, 10), 20)
	h := s.History()
	if len(h) != 20 {
		t.Fatalf("history has %d records", len(h))
	}
	for i, r := range h {
		if r.Iteration != i+1 {
			t.Fatalf("record %d has iteration %d", i, r.Iteration)
		}
		if len(r.Config) != 2 {
			t.Fatal("record config wrong length")
		}
	}
}

func TestSessionBestEverSurvivesRestart(t *testing.T) {
	s := NewSession(testSpace(), Options{Seed: 4})
	f := peakAt(70, 70)
	runSession(s, f, 60)
	_, bestBefore, _ := s.BestEver()
	s.Restart()
	if _, _, ok := s.Best(); ok {
		t.Fatal("Best not cleared by Restart")
	}
	_, bestEver, ok := s.BestEver()
	if !ok || bestEver != bestBefore {
		t.Fatal("BestEver lost by Restart")
	}
	if s.Resets() != 1 {
		t.Fatalf("Resets = %d", s.Resets())
	}
	// Session keeps working after restart.
	runSession(s, f, 30)
	if s.Iterations() != 90 {
		t.Fatal("iterations not accumulated across restart")
	}
}

func TestShiftDetectionTriggersRestart(t *testing.T) {
	s := NewSession(testSpace(), Options{Seed: 5, ShiftFactor: 0.3, ShiftPatience: 3})
	f1 := peakAt(80, 20)
	runSession(s, f1, 80) // learn environment 1
	if s.Resets() != 0 {
		t.Fatal("spurious restart during stable environment")
	}
	// Environment shifts: performance scale collapses.
	f2 := func(c param.Config) float64 { return peakAt(20, 80)(c) / 10 }
	runSession(s, f2, 30)
	if s.Resets() == 0 {
		t.Fatal("workload shift not detected")
	}
	// And the session adapts to the new peak.
	runSession(s, f2, 100)
	best, _, _ := s.Best()
	d := math.Hypot(float64(best[0])-20, float64(best[1])-80)
	if d > 60 {
		t.Fatalf("after shift best %v still far from new peak", best)
	}
}

func TestShiftDetectionDisabledByDefault(t *testing.T) {
	s := NewSession(testSpace(), Options{Seed: 6})
	runSession(s, peakAt(50, 50), 50)
	runSession(s, func(param.Config) float64 { return 1 }, 50)
	if s.Resets() != 0 {
		t.Fatal("shift detection ran despite being disabled")
	}
}

func TestConvergenceIteration(t *testing.T) {
	s := NewSession(testSpace(), Options{Seed: 7})
	runSession(s, peakAt(40, 60), 100)
	ci := s.ConvergenceIteration()
	if ci <= 0 || ci > 100 {
		t.Fatalf("ConvergenceIteration = %d", ci)
	}
	best, _, _ := s.BestEver()
	if !s.History()[ci-1].Config.Equal(best) {
		t.Fatal("ConvergenceIteration does not point at the best config")
	}
}

func TestSessionAlgorithms(t *testing.T) {
	f := peakAt(60, 40)
	for _, algo := range []Algorithm{AlgoNelderMead, AlgoRandom, AlgoCoordinate} {
		s := NewSession(testSpace(), Options{Algorithm: algo, Seed: 8})
		runSession(s, f, 120)
		_, best, ok := s.Best()
		if !ok {
			t.Fatalf("%v: no best", algo)
		}
		if best < f(testSpace().DefaultConfig()) {
			t.Fatalf("%v: best %v worse than default", algo, best)
		}
	}
}

func TestNelderMeadBeatsRandomOnPeak(t *testing.T) {
	f := peakAt(73, 27)
	nm := NewSession(testSpace(), Options{Algorithm: AlgoNelderMead, Seed: 9})
	rs := NewSession(testSpace(), Options{Algorithm: AlgoRandom, Seed: 9})
	runSession(nm, f, 60)
	runSession(rs, f, 60)
	_, nmBest, _ := nm.Best()
	_, rsBest, _ := rs.Best()
	if nmBest < rsBest {
		t.Fatalf("simplex (%v) lost to random (%v)", nmBest, rsBest)
	}
}

func TestSessionGuardFactorPlumbs(t *testing.T) {
	// The guard approaches extremes slowly: on a landscape whose optimum
	// sits at the boundary corner, a guarded session proposes fewer
	// extreme configurations than an unguarded one over the same budget.
	count := func(guard float64) int {
		s := NewSession(testSpace(), Options{GuardFactor: guard, Seed: 10})
		src := rng.New(1)
		extremes := 0
		for i := 0; i < 50; i++ {
			cfg := s.NextConfig()
			if cfg[0] == 0 || cfg[0] == 100 || cfg[1] == 0 || cfg[1] == 100 {
				extremes++
			}
			s.Report(float64(cfg[0]+cfg[1]) + src.Float64()) // push to corner
		}
		return extremes
	}
	guarded, unguarded := count(0.3), count(0)
	if guarded >= unguarded {
		t.Fatalf("guard did not reduce extreme proposals: %d >= %d", guarded, unguarded)
	}
}

func TestSessionNoisyLandscapeStillImproves(t *testing.T) {
	src := rng.New(42)
	f := func(c param.Config) float64 {
		return peakAt(65, 35)(c) + src.Normal(0, 20) // ~2% noise near peak
	}
	s := NewSession(testSpace(), Options{Seed: 11})
	runSession(s, f, 200)
	best, _, _ := s.BestEver()
	d := math.Hypot(float64(best[0])-65, float64(best[1])-35)
	if d > 50 {
		t.Fatalf("noisy tuning landed far from peak: %v", best)
	}
}

func TestSessionStringer(t *testing.T) {
	s := NewSession(testSpace(), Options{})
	if s.String() == "" {
		t.Fatal("empty String")
	}
	if s.Space().Len() != 2 {
		t.Fatal("Space accessor wrong")
	}
}

func TestAnnealingAlgorithmViaSession(t *testing.T) {
	f := peakAt(60, 40)
	s := NewSession(testSpace(), Options{Algorithm: AlgoAnnealing, Seed: 15})
	runSession(s, f, 200)
	_, best, ok := s.Best()
	if !ok || best < f(testSpace().DefaultConfig()) {
		t.Fatalf("annealing session did not improve: %v", best)
	}
	if AlgoAnnealing.String() != "annealing" {
		t.Fatal("algorithm name wrong")
	}
	// Persistence round-trips the annealer too.
	snap, err := s.Save()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.NextConfig().Equal(s.NextConfig()) {
		t.Fatal("annealing restore diverged")
	}
}
