package harmony

import (
	"fmt"

	"webharmony/internal/param"
	"webharmony/internal/simplex"
)

// TierSpec describes one tier of the tunable system as a strategy sees it.
type TierSpec struct {
	Name  string
	Space *param.Space
	Nodes []int // node IDs currently serving the tier
}

// Target is the system under tuning, as seen by a cluster strategy. The
// web-cluster simulator (or a live cluster) implements it.
type Target interface {
	// Tiers returns the current tier layout.
	Tiers() []TierSpec
	// SetNodeConfig stages a configuration for one node; it takes effect
	// at the next RunIteration.
	SetNodeConfig(node int, cfg param.Config)
	// NodeConfig returns the node's currently staged configuration; the
	// strategies anchor their searches at it.
	NodeConfig(node int) param.Config
	// RunIteration restarts the servers with the staged configurations and
	// runs one warm/measure/cool cycle, returning the measured global WIPS
	// and, when the system is partitioned into work lines, per-line WIPS.
	RunIteration() (wips float64, lineWIPS []float64)
}

// StrategyKind selects a cluster tuning method (§III.B).
type StrategyKind int

const (
	// StrategyDefault uses a single tuning server for every parameter of
	// every node: dimension = Σ nodes×params. Slowest to converge.
	StrategyDefault StrategyKind = iota
	// StrategyDuplication tunes one parameter set per tier and copies the
	// values to every node of the tier: dimension = Σ tier params.
	StrategyDuplication
	// StrategyPartitioning runs an independent tuning server per work
	// line, each tuning the parameters of the line's nodes against the
	// line's own throughput.
	StrategyPartitioning
	// StrategyHybrid runs duplication for a first phase, then switches to
	// partitioning seeded from the duplication best (§III.B future work).
	StrategyHybrid
)

// String returns the strategy name.
func (k StrategyKind) String() string {
	switch k {
	case StrategyDefault:
		return "default"
	case StrategyDuplication:
		return "duplication"
	case StrategyPartitioning:
		return "partitioning"
	case StrategyHybrid:
		return "hybrid"
	default:
		return "unknown"
	}
}

// sessionMap describes how one session's configuration scatters to nodes:
// with spaces == nil the whole configuration goes to every node
// (duplication); otherwise the configuration is the concatenation of
// spaces[j] and slice j goes to nodes[j].
type sessionMap struct {
	nodes  []int
	spaces []*param.Space
}

// Strategy drives tuning sessions against a Target, one iteration at a
// time.
type Strategy struct {
	kind     StrategyKind
	target   Target
	opts     Options
	lines    int
	sessions []*Session
	maps     []sessionMap

	// layout captured at construction; strategies assume a stable cluster
	// during a tuning run (reconfiguration restarts tuning).
	tiers []TierSpec

	iters   int
	perf    []float64 // global WIPS per iteration
	best    float64
	bestIt  int
	hybridK int
	gen     int // session generations: bumped when the hybrid switches
}

// NewStrategy creates a tuning strategy of the given kind over the target.
// For StrategyPartitioning and StrategyHybrid, lines is the number of work
// lines the target was built with.
func NewStrategy(kind StrategyKind, target Target, lines int, opts Options) *Strategy {
	s := &Strategy{kind: kind, target: target, opts: opts, lines: lines, tiers: target.Tiers()}
	switch kind {
	case StrategyDefault:
		s.initDefault()
	case StrategyDuplication:
		s.initDuplication()
	case StrategyPartitioning:
		s.initPartitioning()
	case StrategyHybrid:
		s.initDuplication()
		s.hybridK = 40 // duplication phase length before fine tuning
	default:
		panic(fmt.Sprintf("harmony: unknown strategy %d", kind))
	}
	return s
}

// sessionOpts derives per-session options with distinct seeds.
func (s *Strategy) sessionOpts(i int) Options {
	o := s.opts
	o.Seed = o.Seed*1315423911 + uint64(i+1)
	return o
}

// observerFor resolves the observer a session labeled label over space
// should use: a directly-set Observer wins, otherwise Observe derives one.
func (s *Strategy) observerFor(label string, space *param.Space) simplex.StepObserver {
	if s.opts.Observer != nil || s.opts.Observe == nil {
		return s.opts.Observer
	}
	return s.opts.Observe(label, space)
}

// initDefault builds one session over the concatenation of every node's
// space.
func (s *Strategy) initDefault() {
	var prefixes []string
	var m sessionMap
	for _, t := range s.tiers {
		for _, n := range t.Nodes {
			prefixes = append(prefixes, fmt.Sprintf("%s%d", t.Name, n))
			m.spaces = append(m.spaces, t.Space)
			m.nodes = append(m.nodes, n)
		}
	}
	all, err := param.Concat(prefixes, m.spaces)
	if err != nil {
		panic(err)
	}
	opts := s.sessionOpts(0)
	opts.Anchor = concatAnchor(s.target, m)
	opts.Observer = s.observerFor("all", all)
	s.sessions = []*Session{NewSession(all, opts)}
	s.maps = []sessionMap{m}
}

// concatAnchor builds the concatenated current configuration of a
// session's nodes, or nil if any node has none.
func concatAnchor(t Target, m sessionMap) param.Config {
	var anchor param.Config
	for _, n := range m.nodes {
		cfg := t.NodeConfig(n)
		if cfg == nil {
			return nil
		}
		anchor = append(anchor, cfg...)
	}
	return anchor
}

// initDuplication builds one session per tier; each session's
// configuration is duplicated to every node of the tier.
func (s *Strategy) initDuplication() {
	s.sessions = nil
	s.maps = nil
	for i, t := range s.tiers {
		opts := s.sessionOpts(i)
		if len(t.Nodes) > 0 {
			opts.Anchor = s.target.NodeConfig(t.Nodes[0])
		}
		opts.Observer = s.observerFor(t.Name, t.Space)
		s.sessions = append(s.sessions, NewSession(t.Space, opts))
		s.maps = append(s.maps, sessionMap{nodes: t.Nodes})
	}
}

// initPartitioning builds one session per work line over the concatenation
// of the line's node spaces. Line l owns every l-th node of each tier (the
// same assignment the simulator's router uses).
func (s *Strategy) initPartitioning() {
	if s.lines < 1 {
		panic("harmony: partitioning needs at least one work line")
	}
	s.sessions = nil
	s.maps = nil
	for l := 0; l < s.lines; l++ {
		var prefixes []string
		var m sessionMap
		for _, t := range s.tiers {
			for i, n := range t.Nodes {
				if i%s.lines == l {
					prefixes = append(prefixes, fmt.Sprintf("%s%d", t.Name, n))
					m.spaces = append(m.spaces, t.Space)
					m.nodes = append(m.nodes, n)
				}
			}
		}
		lineSpace, err := param.Concat(prefixes, m.spaces)
		if err != nil {
			panic(err)
		}
		opts := s.sessionOpts(l)
		opts.Anchor = concatAnchor(s.target, m)
		opts.Observer = s.observerFor(fmt.Sprintf("line%d", l), lineSpace)
		s.sessions = append(s.sessions, NewSession(lineSpace, opts))
		s.maps = append(s.maps, m)
	}
}

// scatter distributes per-session configurations (obtained via get) to the
// target's nodes and returns the node → configuration map.
func (s *Strategy) scatter(get func(*Session) param.Config, stage bool) map[int]param.Config {
	out := make(map[int]param.Config)
	for i, sess := range s.sessions {
		s.assign(i, get(sess), stage, out)
	}
	return out
}

// assign scatters session i's configuration to its nodes, writing the
// per-node slices into out and, when stage is set, staging them on the
// target.
func (s *Strategy) assign(i int, cfg param.Config, stage bool, out map[int]param.Config) {
	m := s.maps[i]
	if m.spaces == nil {
		for _, n := range m.nodes {
			out[n] = cfg.Clone()
			if stage {
				s.target.SetNodeConfig(n, cfg)
			}
		}
		return
	}
	for j, n := range m.nodes {
		sub := param.Slice(cfg, m.spaces, j)
		out[n] = sub
		if stage {
			s.target.SetNodeConfig(n, sub)
		}
	}
}

// Kind returns the strategy kind.
func (s *Strategy) Kind() StrategyKind { return s.kind }

// Sessions returns the strategy's tuning sessions.
func (s *Strategy) Sessions() []*Session { return s.sessions }

// Step runs one tuning iteration: stage configurations, measure, report.
// It returns the iteration's global WIPS.
func (s *Strategy) Step() float64 {
	s.maybeSwitch()
	s.scatter(func(sess *Session) param.Config { return sess.NextConfig() }, true)
	wips, lineWIPS := s.target.RunIteration()
	s.commitReports(wips, lineWIPS)
	return wips
}

// CommitStep completes one tuning iteration whose measurement was taken
// elsewhere — a speculatively evaluated candidate: it stages the
// iteration's configurations exactly as Step would, then reports the
// given measurement to the sessions, skipping target.RunIteration. The
// caller must have measured the configurations Lookahead(1) proposes at
// the moment of the call; committing a measurement taken for any other
// configuration corrupts the search (speculative runners re-check the
// lookahead before every commit for exactly this reason).
func (s *Strategy) CommitStep(wips float64, lineWIPS []float64) {
	s.maybeSwitch()
	s.scatter(func(sess *Session) param.Config { return sess.NextConfig() }, true)
	s.commitReports(wips, lineWIPS)
}

// commitReports is the shared bookkeeping tail of Step and CommitStep:
// report the iteration's measurement to every session and update the
// strategy's performance record.
func (s *Strategy) commitReports(wips float64, lineWIPS []float64) {
	perLine := s.kind == StrategyPartitioning ||
		(s.kind == StrategyHybrid && s.iters >= s.hybridK)
	for l, sess := range s.sessions {
		if perLine && l < len(lineWIPS) {
			sess.Report(lineWIPS[l])
		} else {
			sess.Report(wips)
		}
	}
	s.iters++
	s.perf = append(s.perf, wips)
	if wips > s.best {
		s.best = wips
		s.bestIt = s.iters
	}
}

// Lookahead returns up to max upcoming iterations' node→configuration
// assignments without advancing any session: entry j is exactly what
// iteration Iterations()+j would stage. The joint depth is the minimum of
// the sessions' peek depths (at least one); a hybrid strategy's lookahead
// is additionally truncated at the duplication→partitioning switch, whose
// new sessions depend on the duplication phase's results. Entries are
// valid only while Epoch() is unchanged — a shift-detection restart
// re-anchors a session's search, invalidating everything peeked past it.
func (s *Strategy) Lookahead(max int) []map[int]param.Config {
	s.maybeSwitch()
	if max < 1 {
		max = 1
	}
	if s.kind == StrategyHybrid && s.gen == 0 && max > s.hybridK-s.iters {
		max = s.hybridK - s.iters
	}
	depth := max
	peeks := make([][]param.Config, len(s.sessions))
	for i, sess := range s.sessions {
		peeks[i] = sess.Peek(max)
		if len(peeks[i]) < depth {
			depth = len(peeks[i])
		}
	}
	out := make([]map[int]param.Config, 0, depth)
	for j := 0; j < depth; j++ {
		m := make(map[int]param.Config)
		for i := range s.sessions {
			s.assign(i, peeks[i][j], false, m)
		}
		out = append(out, m)
	}
	return out
}

// Epoch identifies the strategy's current search lineage: it advances
// whenever any session restarts (shift detection or an explicit Restart)
// and when the hybrid switches session generations. Speculative runners
// capture it alongside a Lookahead and discard any uncommitted candidates
// once a commit changes it — their proposals no longer match what the
// re-anchored sessions will ask next.
func (s *Strategy) Epoch() int {
	e := s.gen << 20
	for _, sess := range s.sessions {
		e += sess.Resets()
	}
	return e
}

// maybeSwitch performs the hybrid's one-time duplication→partitioning
// transition once the duplication phase has run its course. Both the
// stepping entry points and Lookahead call it, so a lookahead taken at
// the boundary peeks the sessions that will actually run next.
func (s *Strategy) maybeSwitch() {
	if s.kind == StrategyHybrid && s.gen == 0 && s.iters >= s.hybridK {
		s.switchToPartitioning()
	}
}

// switchToPartitioning converts a hybrid strategy's sessions to per-line
// sessions whose searches start from the duplication-phase best.
func (s *Strategy) switchToPartitioning() {
	s.scatter(func(sess *Session) param.Config {
		best, _, ok := sess.BestEver()
		if !ok {
			best = sess.Space().DefaultConfig()
		}
		return best
	}, true)
	s.initPartitioning()
	s.gen++
}

// BestNodeConfigs returns, for every node, the configuration the strategy
// would deploy as its final answer (each session's best-ever point).
func (s *Strategy) BestNodeConfigs() map[int]param.Config {
	return s.scatter(func(sess *Session) param.Config {
		best, _, ok := sess.BestEver()
		if !ok {
			best = sess.Space().DefaultConfig()
		}
		return best
	}, false)
}

// Iterations returns the number of completed iterations.
func (s *Strategy) Iterations() int { return s.iters }

// Perf returns the global WIPS time series, one value per iteration.
func (s *Strategy) Perf() []float64 { return s.perf }

// Best returns the best global WIPS observed and the iteration it
// occurred at (1-based; 0 if none).
func (s *Strategy) Best() (float64, int) { return s.best, s.bestIt }

// ConvergenceIteration returns the iteration at which the strategy's
// tuned configuration was first proposed: the maximum over its sessions of
// the first iteration whose configuration equals that session's best-ever
// configuration. Under heavy measurement noise this estimate is itself
// noisy; see ExplorationIterations for the structural component.
func (s *Strategy) ConvergenceIteration() int {
	worst := 0
	for _, sess := range s.sessions {
		if ci := sess.ConvergenceIteration(); ci > worst {
			worst = ci
		}
	}
	return worst
}

// ExplorationIterations returns the iterations the strategy necessarily
// spends exploring its initial simplex before improvements can take
// effect — the "tuning n parameters requires exploring n+1 configurations"
// cost of §III.B, which is what separates the methods in Table 4's
// iterations column (the widest tuning server dominates; parallel sessions
// explore concurrently). For the hybrid, the duplication phase length is
// added once the partitioning phase has started.
func (s *Strategy) ExplorationIterations() int {
	worst := 0
	for _, sess := range s.sessions {
		if d := sess.Space().Len() + 1; d > worst {
			worst = d
		}
	}
	if s.kind == StrategyHybrid && s.iters >= s.hybridK {
		worst += s.hybridK
	}
	return worst
}
