// Package harmony implements the Active Harmony tuning server: tuning
// sessions that drive an ask/tell optimizer over a parameter space from
// one performance observation per iteration, plus the cluster-scale tuning
// strategies of §III.B of the paper — a single server for all parameters
// (the default), parameter duplication (one space per tier, values copied
// to every node of the tier), and parameter partitioning (an independent
// tuning server per work line).
package harmony

import (
	"fmt"

	"webharmony/internal/param"
	"webharmony/internal/simplex"
)

// Algorithm selects the session's search kernel.
type Algorithm int

const (
	// AlgoNelderMead is the paper's adapted simplex method (the default).
	AlgoNelderMead Algorithm = iota
	// AlgoRandom is uniform random search (baseline).
	AlgoRandom
	// AlgoCoordinate is one-knob-at-a-time hill climbing (baseline).
	AlgoCoordinate
	// AlgoAnnealing is simulated annealing (the related-work Nimrod/O
	// approach; baseline).
	AlgoAnnealing
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case AlgoNelderMead:
		return "nelder-mead"
	case AlgoRandom:
		return "random"
	case AlgoCoordinate:
		return "coordinate"
	case AlgoAnnealing:
		return "annealing"
	default:
		return "unknown"
	}
}

// Options configures a tuning session.
type Options struct {
	Algorithm Algorithm
	Seed      uint64

	// GuardFactor enables the extreme-value guard in the simplex kernel
	// (§III.A future work); 0 disables it, matching the published system.
	GuardFactor float64

	// Anchor, when non-nil, is the configuration the search starts from
	// (the system's currently-running configuration); nil anchors at the
	// space defaults.
	Anchor param.Config

	// ShiftFactor enables workload-shift detection: when the session's
	// recent performance deviates from the performance remembered for its
	// best configuration by more than this relative factor for
	// ShiftPatience consecutive iterations, the search restarts around the
	// current best configuration (Figure 5 responsiveness). 0 disables.
	ShiftFactor   float64
	ShiftPatience int

	// Observer, when non-nil, receives one simplex.Step per completed
	// tuning step of the session's kernel, plus a "shift-restart" step
	// when shift detection fires. It runs synchronously on the tuning
	// path and must be cheap; nil disables tracing. Not persisted by
	// Save/Restore.
	Observer simplex.StepObserver `json:"-"`

	// Observe, when non-nil, derives a per-session Observer inside the
	// cluster strategies: it is called once per session with the
	// session's label ("all" for the default method, the tier name under
	// duplication, "lineN" under partitioning) and parameter space.
	// Ignored when Observer is set directly.
	Observe func(label string, space *param.Space) simplex.StepObserver `json:"-"`
}

func (o Options) withDefaults() Options {
	if o.ShiftPatience == 0 {
		o.ShiftPatience = 3
	}
	return o
}

// Record is one completed tuning iteration.
type Record struct {
	Iteration int
	Config    param.Config
	Perf      float64 // measured performance (higher is better)
}

// Session is one Active Harmony tuning server instance: it owns a
// parameter space and proposes one configuration per iteration.
type Session struct {
	space *param.Space
	opts  Options
	tuner simplex.Tuner

	pending  param.Config
	asked    bool
	history  []Record
	bestCfg  param.Config
	bestPerf float64
	haveBest bool

	shiftStreak int
	resets      int
}

// NewSession creates a tuning session over the given space.
func NewSession(space *param.Space, opts Options) *Session {
	opts = opts.withDefaults()
	s := &Session{space: space, opts: opts}
	s.tuner = s.newTuner()
	if opts.Observer != nil {
		// Attach before the anchored Reset below so the trace records
		// where the search started.
		if o, ok := s.tuner.(simplex.Observable); ok {
			o.SetObserver(opts.Observer)
		}
	}
	if opts.Anchor != nil {
		anchor := opts.Anchor.Clone()
		space.Clamp(anchor)
		s.tuner.Reset(anchor)
	}
	return s
}

func (s *Session) newTuner() simplex.Tuner {
	switch s.opts.Algorithm {
	case AlgoRandom:
		return simplex.NewRandomSearch(s.space, s.opts.Seed)
	case AlgoCoordinate:
		return simplex.NewCoordinateSearch(s.space, 0)
	case AlgoAnnealing:
		return simplex.NewSimulatedAnnealing(s.space, simplex.AnnealingOptions{Seed: s.opts.Seed})
	default:
		return simplex.NewNelderMead(s.space, simplex.Options{
			Seed:        s.opts.Seed,
			GuardFactor: s.opts.GuardFactor,
		})
	}
}

// Space returns the session's parameter space.
func (s *Session) Space() *param.Space { return s.space }

// NextConfig returns the configuration to run for the next iteration.
func (s *Session) NextConfig() param.Config {
	if s.asked {
		return s.pending.Clone()
	}
	s.pending = s.tuner.Ask()
	s.asked = true
	return s.pending.Clone()
}

// Peek returns up to max upcoming proposals without advancing the
// session: provided no Restart intervenes, the next NextConfig/Report
// cycles will propose exactly these configurations, in order, whatever
// performance the Reports carry. At least one configuration is returned;
// fewer than max when the kernel's later moves depend on measurements it
// has not seen yet. With an outstanding proposal only that proposal is
// visible (its Report may steer everything after it).
func (s *Session) Peek(max int) []param.Config {
	if max < 1 {
		max = 1
	}
	if s.asked {
		return []param.Config{s.pending.Clone()}
	}
	return s.tuner.Peek(max)
}

// Report records the measured performance (higher is better) of the
// configuration returned by the last NextConfig.
func (s *Session) Report(perf float64) {
	if !s.asked {
		panic("harmony: Report without NextConfig")
	}
	s.asked = false
	s.tuner.Tell(-perf) // tuners minimize cost
	s.history = append(s.history, Record{
		Iteration: len(s.history) + 1,
		Config:    s.pending.Clone(),
		Perf:      perf,
	})
	if !s.haveBest || perf > s.bestPerf {
		s.bestCfg = s.pending.Clone()
		s.bestPerf = perf
		s.haveBest = true
		s.shiftStreak = 0
		return
	}
	s.maybeDetectShift(perf)
}

// maybeDetectShift restarts the search when sustained performance deviates
// from the remembered best — the environment (workload) has changed and
// stored measurements are stale.
func (s *Session) maybeDetectShift(perf float64) {
	if s.opts.ShiftFactor <= 0 || !s.haveBest || s.bestPerf <= 0 {
		return
	}
	dev := perf/s.bestPerf - 1
	if dev < 0 {
		dev = -dev
	}
	if dev > s.opts.ShiftFactor {
		s.shiftStreak++
	} else {
		s.shiftStreak = 0
	}
	if s.shiftStreak >= s.opts.ShiftPatience {
		if s.opts.Observer != nil {
			// Record why the search is about to re-anchor: the tuner's
			// own Reset step follows with the new anchor.
			s.opts.Observer(simplex.Step{
				Move: "shift-restart",
				Cost: -perf, BestCost: -s.bestPerf,
				Evaluations: s.tuner.Evaluations(),
			})
		}
		s.Restart()
	}
}

// Restart re-centers the search around the current best configuration and
// forgets the remembered best performance, so the session re-learns the
// new environment. Safe to call at any point between iterations.
func (s *Session) Restart() {
	anchor := s.space.DefaultConfig()
	if s.haveBest {
		anchor = s.bestCfg
	}
	s.tuner.Reset(anchor)
	s.haveBest = false
	s.shiftStreak = 0
	s.resets++
}

// Best returns the best configuration and performance seen since the last
// restart.
func (s *Session) Best() (param.Config, float64, bool) {
	if !s.haveBest {
		return s.space.DefaultConfig(), 0, false
	}
	return s.bestCfg.Clone(), s.bestPerf, true
}

// BestEver returns the best configuration over the whole history
// (including before restarts).
func (s *Session) BestEver() (param.Config, float64, bool) {
	var cfg param.Config
	best := 0.0
	found := false
	for _, r := range s.history {
		if !found || r.Perf > best {
			cfg, best, found = r.Config, r.Perf, true
		}
	}
	if !found {
		return s.space.DefaultConfig(), 0, false
	}
	return cfg.Clone(), best, true
}

// History returns the completed iterations. Callers must not modify it.
func (s *Session) History() []Record { return s.history }

// Iterations returns the number of completed iterations.
func (s *Session) Iterations() int { return len(s.history) }

// Resets returns how many times the search restarted (shift detections
// plus explicit Restart calls).
func (s *Session) Resets() int { return s.resets }

// Converged reports whether the underlying search has collapsed.
func (s *Session) Converged() bool { return s.tuner.Converged() }

// ConvergenceIteration returns the first iteration whose configuration
// equals the best-ever configuration — the paper's "iterations" column in
// Table 4 (how long tuning took to find the configuration it settled on).
// It returns 0 if there is no history.
func (s *Session) ConvergenceIteration() int {
	best, _, ok := s.BestEver()
	if !ok {
		return 0
	}
	for _, r := range s.history {
		if r.Config.Equal(best) {
			return r.Iteration
		}
	}
	return 0
}

// String describes the session.
func (s *Session) String() string {
	return fmt.Sprintf("Session{dim=%d algo=%v iters=%d resets=%d}",
		s.space.Len(), s.opts.Algorithm, len(s.history), s.resets)
}
