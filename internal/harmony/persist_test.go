package harmony

import (
	"strings"
	"testing"
)

func TestSaveRestoreRoundTrip(t *testing.T) {
	s := NewSession(testSpace(), Options{Seed: 21, GuardFactor: 0.2})
	f := peakAt(33, 66)
	runSession(s, f, 40)
	snap, err := s.Save()
	if err != nil {
		t.Fatal(err)
	}
	data, err := snap.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(loaded)
	if err != nil {
		t.Fatal(err)
	}
	// The restored session agrees on history and best...
	if restored.Iterations() != s.Iterations() {
		t.Fatalf("iterations: %d vs %d", restored.Iterations(), s.Iterations())
	}
	b1, p1, _ := s.Best()
	b2, p2, _ := restored.Best()
	if !b1.Equal(b2) || p1 != p2 {
		t.Fatalf("best diverged: %v/%v vs %v/%v", b1, p1, b2, p2)
	}
	// ...and continues identically.
	for i := 0; i < 20; i++ {
		c1 := s.NextConfig()
		c2 := restored.NextConfig()
		if !c1.Equal(c2) {
			t.Fatalf("post-restore proposal %d diverged: %v vs %v", i, c1, c2)
		}
		v := f(c1)
		s.Report(v)
		restored.Report(v)
	}
}

func TestSaveWithOutstandingProposalFails(t *testing.T) {
	s := NewSession(testSpace(), Options{Seed: 1})
	s.NextConfig()
	if _, err := s.Save(); err == nil {
		t.Fatal("Save with outstanding proposal accepted")
	}
}

func TestRestoreDetectsTampering(t *testing.T) {
	s := NewSession(testSpace(), Options{Seed: 5})
	runSession(s, peakAt(10, 10), 10)
	snap, _ := s.Save()
	snap.Configs[3][0] = snap.Configs[3][0] + 1 // corrupt one proposal
	if _, err := Restore(snap); err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("tampered snapshot accepted: %v", err)
	}
}

func TestRestoreValidation(t *testing.T) {
	s := NewSession(testSpace(), Options{Seed: 5})
	runSession(s, peakAt(10, 10), 5)
	snap, _ := s.Save()

	bad := *snap
	bad.Options.Algorithm = "genetic"
	if _, err := Restore(&bad); err == nil {
		t.Fatal("unknown algorithm accepted")
	}

	bad2 := *snap
	bad2.Perf = bad2.Perf[:2]
	if _, err := Restore(&bad2); err == nil {
		t.Fatal("mismatched lengths accepted")
	}

	bad3 := *snap
	bad3.Params = nil
	if _, err := Restore(&bad3); err == nil {
		t.Fatal("empty space accepted")
	}
}

func TestLoadSnapshotRejectsGarbage(t *testing.T) {
	if _, err := LoadSnapshot([]byte("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSaveRestoreAllAlgorithms(t *testing.T) {
	for _, algo := range []Algorithm{AlgoNelderMead, AlgoRandom, AlgoCoordinate} {
		s := NewSession(testSpace(), Options{Algorithm: algo, Seed: 13})
		runSession(s, peakAt(40, 40), 25)
		snap, err := s.Save()
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		restored, err := Restore(snap)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		c1, c2 := s.NextConfig(), restored.NextConfig()
		if !c1.Equal(c2) {
			t.Fatalf("%v: continuation diverged", algo)
		}
	}
}

func TestSaveRestoreWithAnchor(t *testing.T) {
	anchor := testSpace().DefaultConfig()
	anchor[0] = 77
	s := NewSession(testSpace(), Options{Seed: 2, Anchor: anchor})
	runSession(s, peakAt(77, 20), 15)
	snap, _ := s.Save()
	restored, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.NextConfig().Equal(s.NextConfig()) {
		t.Fatal("anchored session diverged after restore")
	}
}
