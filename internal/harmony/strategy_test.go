package harmony

import (
	"testing"

	"webharmony/internal/param"
	"webharmony/internal/rng"
)

// fakeCluster is a synthetic Target: two tiers with two nodes each. Global
// performance is the sum of per-node peak functions plus noise; per-line
// performance splits nodes by index parity, as the simulator's router does.
type fakeCluster struct {
	spaces  map[string]*param.Space
	configs map[int]param.Config
	src     *rng.Source
	noise   float64
	bias    float64 // added to every line's output; flip it to fake a workload shift
	iters   int
}

func newFakeCluster(noise float64) *fakeCluster {
	f := &fakeCluster{
		spaces: map[string]*param.Space{
			"front": param.MustSpace(
				param.Def{Name: "a", Min: 0, Max: 100, Default: 10, Step: 1},
				param.Def{Name: "b", Min: 0, Max: 100, Default: 10, Step: 1},
			),
			"back": param.MustSpace(
				param.Def{Name: "c", Min: 0, Max: 100, Default: 90, Step: 1},
			),
		},
		configs: map[int]param.Config{},
		src:     rng.New(99),
		noise:   noise,
	}
	f.configs[0] = f.spaces["front"].DefaultConfig()
	f.configs[1] = f.spaces["front"].DefaultConfig()
	f.configs[2] = f.spaces["back"].DefaultConfig()
	f.configs[3] = f.spaces["back"].DefaultConfig()
	return f
}

func (f *fakeCluster) Tiers() []TierSpec {
	return []TierSpec{
		{Name: "front", Space: f.spaces["front"], Nodes: []int{0, 1}},
		{Name: "back", Space: f.spaces["back"], Nodes: []int{2, 3}},
	}
}

func (f *fakeCluster) SetNodeConfig(node int, cfg param.Config) {
	f.configs[node] = cfg.Clone()
}

func (f *fakeCluster) NodeConfig(node int) param.Config {
	return f.configs[node].Clone()
}

// nodePerf peaks at a=60,b=40 for front nodes and c=25 for back nodes.
func (f *fakeCluster) nodePerf(node int) float64 {
	c := f.configs[node]
	if node < 2 {
		da, db := float64(c[0])-60, float64(c[1])-40
		return 50 - (da*da+db*db)/200
	}
	dc := float64(c[0]) - 25
	return 50 - dc*dc/200
}

func (f *fakeCluster) RunIteration() (float64, []float64) {
	f.iters++
	line0 := f.nodePerf(0) + f.nodePerf(2)
	line1 := f.nodePerf(1) + f.nodePerf(3)
	n0 := f.src.Normal(0, f.noise) + f.bias
	n1 := f.src.Normal(0, f.noise) + f.bias
	return line0 + line1 + n0 + n1, []float64{line0 + n0, line1 + n1}
}

func (f *fakeCluster) defaultPerf() float64 {
	return f.nodePerf(0) + f.nodePerf(1) + f.nodePerf(2) + f.nodePerf(3)
}

func TestStrategyKindString(t *testing.T) {
	names := map[StrategyKind]string{
		StrategyDefault: "default", StrategyDuplication: "duplication",
		StrategyPartitioning: "partitioning", StrategyHybrid: "hybrid",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
	if StrategyKind(9).String() != "unknown" {
		t.Fatal("unknown kind name")
	}
}

func TestAllStrategiesImprove(t *testing.T) {
	for _, kind := range []StrategyKind{StrategyDefault, StrategyDuplication, StrategyPartitioning, StrategyHybrid} {
		fc := newFakeCluster(0.5)
		base := fc.defaultPerf()
		st := NewStrategy(kind, fc, 2, Options{Seed: 7})
		for i := 0; i < 120; i++ {
			st.Step()
		}
		best, bestIt := st.Best()
		if best <= base {
			t.Errorf("%v: best %v did not beat default %v", kind, best, base)
		}
		if bestIt < 1 || bestIt > 120 {
			t.Errorf("%v: bestIt = %d", kind, bestIt)
		}
		if st.Iterations() != 120 || len(st.Perf()) != 120 {
			t.Errorf("%v: iteration bookkeeping wrong", kind)
		}
	}
}

func TestDefaultStrategyTunesAllNodesIndependently(t *testing.T) {
	fc := newFakeCluster(0)
	st := NewStrategy(StrategyDefault, fc, 0, Options{Seed: 3})
	if len(st.Sessions()) != 1 {
		t.Fatalf("default strategy has %d sessions, want 1", len(st.Sessions()))
	}
	// Dimension = 2 front nodes × 2 params + 2 back nodes × 1 param = 6.
	if dim := st.Sessions()[0].Space().Len(); dim != 6 {
		t.Fatalf("default strategy dimension = %d, want 6", dim)
	}
	st.Step()
	// Node configs may differ across nodes of the same tier.
	if len(fc.configs[0]) != 2 || len(fc.configs[2]) != 1 {
		t.Fatal("config scatter wrong")
	}
}

func TestDuplicationStrategySharesTierConfigs(t *testing.T) {
	fc := newFakeCluster(0)
	st := NewStrategy(StrategyDuplication, fc, 0, Options{Seed: 3})
	if len(st.Sessions()) != 2 {
		t.Fatalf("duplication has %d sessions, want 2 (one per tier)", len(st.Sessions()))
	}
	for i := 0; i < 10; i++ {
		st.Step()
		if !fc.configs[0].Equal(fc.configs[1]) {
			t.Fatal("front tier nodes diverged under duplication")
		}
		if !fc.configs[2].Equal(fc.configs[3]) {
			t.Fatal("back tier nodes diverged under duplication")
		}
	}
}

func TestPartitioningStrategyUsesLineFeedback(t *testing.T) {
	fc := newFakeCluster(0)
	st := NewStrategy(StrategyPartitioning, fc, 2, Options{Seed: 3})
	if len(st.Sessions()) != 2 {
		t.Fatalf("partitioning has %d sessions, want 2 (one per line)", len(st.Sessions()))
	}
	// Line sessions own nodes (0,2) and (1,3): dimension 3 each.
	for _, sess := range st.Sessions() {
		if sess.Space().Len() != 3 {
			t.Fatalf("line session dimension = %d, want 3", sess.Space().Len())
		}
	}
	for i := 0; i < 60; i++ {
		st.Step()
	}
	// Nodes of the same tier may legitimately differ across lines.
	// Each line session must have 60 iterations of its own feedback.
	for _, sess := range st.Sessions() {
		if sess.Iterations() != 60 {
			t.Fatalf("line session has %d iterations", sess.Iterations())
		}
	}
}

func TestDuplicationConvergesFasterThanDefault(t *testing.T) {
	// The paper's Table 4: duplication (fewer dimensions) finds its tuned
	// configuration in far fewer iterations than the default method. With
	// a noiseless fake target the measured convergence iteration is
	// reliable.
	run := func(kind StrategyKind) (int, int) {
		fc := newFakeCluster(0)
		st := NewStrategy(kind, fc, 2, Options{Seed: 11})
		for i := 0; i < 200; i++ {
			st.Step()
		}
		return st.ConvergenceIteration(), st.ExplorationIterations()
	}
	def, defExp := run(StrategyDefault)
	dup, dupExp := run(StrategyDuplication)
	if dup >= def {
		t.Fatalf("duplication (%d iters) not faster than default (%d iters)", dup, def)
	}
	// Structural exploration: default = 6+1, duplication = max(2,1)+1.
	if defExp != 7 || dupExp != 3 {
		t.Fatalf("exploration lengths: def=%d dup=%d, want 7/3", defExp, dupExp)
	}
}

func TestHybridSwitchesPhases(t *testing.T) {
	fc := newFakeCluster(0.2)
	st := NewStrategy(StrategyHybrid, fc, 2, Options{Seed: 5})
	if len(st.Sessions()) != 2 { // duplication phase: one per tier
		t.Fatal("hybrid should start in duplication")
	}
	for i := 0; i < 41; i++ {
		st.Step()
	}
	// After the switch, sessions are per-line with concatenated spaces.
	if got := st.Sessions()[0].Space().Len(); got != 3 {
		t.Fatalf("hybrid did not switch to partitioning (dim=%d)", got)
	}
	for i := 0; i < 40; i++ {
		st.Step()
	}
	if st.Iterations() != 81 {
		t.Fatal("iterations lost across phase switch")
	}
}

func TestPartitioningRequiresLines(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("partitioning without lines accepted")
		}
	}()
	NewStrategy(StrategyPartitioning, newFakeCluster(0), 0, Options{})
}

func TestConvergenceIterationBounds(t *testing.T) {
	fc := newFakeCluster(0)
	st := NewStrategy(StrategyDuplication, fc, 0, Options{Seed: 1})
	if st.ConvergenceIteration() != 0 {
		t.Fatal("no-history convergence should be 0")
	}
	for i := 0; i < 50; i++ {
		st.Step()
	}
	ci := st.ConvergenceIteration()
	if ci < 1 || ci > 50 {
		t.Fatalf("ConvergenceIteration = %d", ci)
	}
	if st.Kind() != StrategyDuplication {
		t.Fatal("Kind accessor wrong")
	}
}
