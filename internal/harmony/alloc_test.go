package harmony

import "testing"

// TestStrategyStepAllocs pins the steady-state allocation cost of one
// tuning iteration so event-loop and bookkeeping wins don't silently
// erode. Measured on the synthetic two-tier cluster: 16 allocs/Step for
// the default strategy and 22 for duplication/partitioning (stable
// across seeds — the ask/tell path allocates only proposal clones and
// the per-iteration report slices). The ceiling leaves ~18% headroom over
// the 22-alloc worst case so legitimate small changes don't trip it, while
// a quadratic or per-parameter regression will.
func TestStrategyStepAllocs(t *testing.T) {
	const ceiling = 26.0
	for _, kind := range []StrategyKind{StrategyDefault, StrategyDuplication, StrategyPartitioning} {
		fc := newFakeCluster(0.5)
		st := NewStrategy(kind, fc, 2, Options{Seed: 7})
		// Warm past structural exploration so the measurement covers the
		// steady ask/tell cycle, not one-time session setup.
		for i := 0; i < 40; i++ {
			st.Step()
		}
		if avg := testing.AllocsPerRun(200, func() { st.Step() }); avg > ceiling {
			t.Errorf("%v: %.1f allocs/Step, ceiling %.0f", kind, avg, ceiling)
		}
	}
}
