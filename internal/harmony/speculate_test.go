package harmony

import (
	"reflect"
	"testing"

	"webharmony/internal/param"
)

// stageConfigs applies one Lookahead entry to the fake cluster, the way a
// speculative runner stages a candidate on a forked lab.
func stageConfigs(fc *fakeCluster, m map[int]param.Config) {
	for node, cfg := range m {
		fc.SetNodeConfig(node, cfg)
	}
}

// driveSpeculative runs iters tuning iterations through the speculative
// Lookahead/CommitStep protocol: peek a batch of upcoming proposals,
// measure every candidate up front (batch measurement is what a parallel
// runner does), then commit the measurements in proposal order,
// discarding the rest of the batch when a commit changes Epoch. shiftAt,
// when positive, flips the cluster's bias once that many iterations have
// committed — the same flip the Step-driven twin applies. Like the real
// runner, speculation never crosses the workload boundary: a candidate
// measured under the old workload must not be committed under the new
// one, so batches are capped at the flip. It returns how many peeked
// candidates were discarded.
func driveSpeculative(st *Strategy, fc *fakeCluster, iters, lookahead, shiftAt int) int {
	type meas struct {
		wips  float64
		lines []float64
	}
	discarded := 0
	done := 0
	for done < iters {
		depth := lookahead
		if depth > iters-done {
			depth = iters - done
		}
		if done < shiftAt && depth > shiftAt-done {
			depth = shiftAt - done
		}
		props := st.Lookahead(depth)
		epoch := st.Epoch()
		specs := make([]meas, len(props))
		for j, m := range props {
			stageConfigs(fc, m)
			w, l := fc.RunIteration()
			specs[j] = meas{w, l}
		}
		for j := range props {
			if next := st.Lookahead(1); !next[0][0].Equal(props[j][0]) {
				panic("speculative candidate diverged from the search")
			}
			st.CommitStep(specs[j].wips, specs[j].lines)
			done++
			if done == shiftAt {
				fc.bias = -60
			}
			if st.Epoch() != epoch {
				discarded += len(props) - j - 1
				break
			}
		}
	}
	return discarded
}

// TestCommitStepMatchesStep is the harmony-level property behind the
// speculative Figure 5 runner: for every strategy kind, driving the
// strategy through Lookahead/CommitStep batches — including batches cut
// short by shift-detection restarts — produces exactly the state a plain
// Step loop reaches: same performance record, same per-session histories
// and resets, same final answer. The fake cluster is noiseless so the
// speculative run's extra measurements of discarded candidates cannot
// desynchronize the two runs.
func TestCommitStepMatchesStep(t *testing.T) {
	const iters, shiftAt = 80, 10
	opts := Options{Seed: 7, ShiftFactor: 0.05, ShiftPatience: 1}
	for _, kind := range []StrategyKind{StrategyDefault, StrategyDuplication, StrategyPartitioning, StrategyHybrid} {
		// Reference: the sequential formulation.
		seqFC := newFakeCluster(0)
		seq := NewStrategy(kind, seqFC, 2, opts)
		for i := 0; i < iters; i++ {
			seq.Step()
			if i+1 == shiftAt {
				seqFC.bias = -60
			}
		}

		specFC := newFakeCluster(0)
		spec := NewStrategy(kind, specFC, 2, opts)
		discarded := driveSpeculative(spec, specFC, iters, 16, shiftAt)

		if kind != StrategyDuplication && discarded == 0 {
			// The equality below is only meaningful if restarts actually cut
			// batches short. Duplication is exempt structurally: its joint
			// lookahead is capped at 2 by the one-knob back tier, and a
			// restart can never fire sooner than the second commit after the
			// previous one (the first always sets the new best), so its
			// restarts always land on a batch's last entry.
			t.Errorf("%v: shift restart discarded no speculation", kind)
		}
		if !reflect.DeepEqual(seq.Perf(), spec.Perf()) {
			t.Fatalf("%v: Perf histories differ", kind)
		}
		if sb, si := seq.Best(); true {
			if pb, pi := spec.Best(); sb != pb || si != pi {
				t.Errorf("%v: Best (%v, %d) != (%v, %d)", kind, sb, si, pb, pi)
			}
		}
		if seq.Iterations() != spec.Iterations() || seq.Epoch() != spec.Epoch() {
			t.Errorf("%v: iterations/epoch diverged", kind)
		}
		for i, sess := range seq.Sessions() {
			other := spec.Sessions()[i]
			if sess.Resets() != other.Resets() {
				t.Errorf("%v session %d: resets %d != %d", kind, i, sess.Resets(), other.Resets())
			}
			if !reflect.DeepEqual(sess.History(), other.History()) {
				t.Fatalf("%v session %d: histories differ", kind, i)
			}
		}
		want, got := seq.BestNodeConfigs(), spec.BestNodeConfigs()
		if len(want) != 4 || len(got) != 4 {
			t.Fatalf("%v: BestNodeConfigs covers %d/%d nodes, want 4", kind, len(want), len(got))
		}
		for node, cfg := range want {
			if !cfg.Equal(got[node]) {
				t.Errorf("%v: best config for node %d differs", kind, node)
			}
		}
	}
}

// TestLookaheadBounds pins the Lookahead contract edges: a non-positive
// max still yields one entry, a hybrid's lookahead never crosses the
// duplication→partitioning switch, and peeking never advances the search.
func TestLookaheadBounds(t *testing.T) {
	fc := newFakeCluster(0)
	st := NewStrategy(StrategyHybrid, fc, 2, Options{Seed: 5})
	if got := len(st.Lookahead(0)); got != 1 {
		t.Fatalf("Lookahead(0) returned %d entries, want 1", got)
	}
	// Walk to one iteration short of the hybrid switch: the lookahead
	// must be truncated to that single remaining duplication iteration.
	for st.Iterations() < st.hybridK-1 {
		st.Step()
	}
	if got := len(st.Lookahead(16)); got != 1 {
		t.Fatalf("Lookahead(16) at switch-1 returned %d entries, want 1", got)
	}
	before := st.Iterations()
	st.Lookahead(16)
	st.Lookahead(16)
	if st.Iterations() != before {
		t.Fatal("Lookahead advanced the search")
	}
	// The switch is lazy: after the duplication phase's final Step it
	// happens on the next Lookahead, which must peek the new
	// partitioning sessions rather than the retired duplication ones.
	st.Step()
	if len(st.Lookahead(4)) < 1 {
		t.Fatal("post-switch lookahead empty")
	}
	if got := st.Sessions()[0].Space().Len(); got != 3 {
		t.Fatalf("Lookahead did not perform the hybrid switch (dim=%d)", got)
	}
}

// TestSessionPeekPending verifies Session.Peek while a proposal is
// outstanding: it returns that pending proposal (depth 1) rather than
// panicking, so a runner holding an un-reported ask can still inspect
// what it owes the session.
func TestSessionPeekPending(t *testing.T) {
	space := param.MustSpace(param.Def{Name: "a", Min: 0, Max: 10, Default: 5, Step: 1})
	sess := NewSession(space, Options{Seed: 3})
	cfg := sess.NextConfig()
	peek := sess.Peek(8)
	if len(peek) != 1 || !peek[0].Equal(cfg) {
		t.Fatalf("Peek during outstanding ask = %v, want [%v]", peek, cfg)
	}
	sess.Report(1)
	if sess.Converged() {
		t.Fatal("one-iteration session claims convergence")
	}
}
