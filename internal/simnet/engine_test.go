package simnet

import (
	"sort"
	"testing"
	"testing/quick"

	"webharmony/internal/rng"
)

func TestScheduleOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.Schedule(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(2, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %v, want 3", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	var e Engine
	fired := false
	e.Schedule(10, func() {
		e.Schedule(-5, func() { fired = true })
	})
	e.Run()
	if !fired {
		t.Fatal("negative-delay event did not fire")
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %v, want 10", e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	var e Engine
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(float64(i), func() { count++ })
	}
	e.RunUntil(5.5)
	if count != 5 {
		t.Fatalf("RunUntil executed %d events, want 5", count)
	}
	if e.Now() != 5.5 {
		t.Fatalf("Now = %v, want 5.5", e.Now())
	}
	e.RunUntil(100)
	if count != 10 {
		t.Fatalf("after second RunUntil count = %d, want 10", count)
	}
	if e.Now() != 100 {
		t.Fatalf("Now = %v, want 100", e.Now())
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	var e Engine
	fired := false
	e.Schedule(5, func() { fired = true })
	e.RunUntil(5)
	if !fired {
		t.Fatal("event exactly at boundary should fire")
	}
}

func TestTimerCancel(t *testing.T) {
	var e Engine
	fired := false
	tm := e.Schedule(1, func() { fired = true })
	tm.Cancel()
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	tm.Cancel() // double cancel is a no-op
	var nilTimer *Timer
	nilTimer.Cancel() // nil-safe
}

func TestAtAbsoluteTime(t *testing.T) {
	var e Engine
	var at float64
	e.Schedule(3, func() {
		e.At(10, func() { at = e.Now() })
	})
	e.Run()
	if at != 10 {
		t.Fatalf("At fired at %v, want 10", at)
	}
}

func TestNestedScheduling(t *testing.T) {
	var e Engine
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.Schedule(1, recurse)
		}
	}
	e.Schedule(0, recurse)
	e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if e.Now() != 99 {
		t.Fatalf("Now = %v, want 99", e.Now())
	}
}

func TestEventOrderProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		var e Engine
		n := 1 + src.Intn(200)
		delays := make([]float64, n)
		for i := range delays {
			delays[i] = src.Uniform(0, 100)
		}
		var fireTimes []float64
		for _, d := range delays {
			e.Schedule(d, func() { fireTimes = append(fireTimes, e.Now()) })
		}
		e.Run()
		if len(fireTimes) != n {
			return false
		}
		return sort.Float64sAreSorted(fireTimes)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStationSingleServer(t *testing.T) {
	var e Engine
	st := NewStation(&e, "cpu", 1, 1)
	var done []float64
	for i := 0; i < 3; i++ {
		st.Submit(2, func() { done = append(done, e.Now()) })
	}
	e.Run()
	want := []float64{2, 4, 6}
	for i, w := range want {
		if done[i] != w {
			t.Fatalf("completion %d at %v, want %v", i, done[i], w)
		}
	}
	if st.Completed() != 3 || st.Arrived() != 3 {
		t.Fatal("counters wrong")
	}
}

func TestStationMultiServer(t *testing.T) {
	var e Engine
	st := NewStation(&e, "cpu", 2, 1)
	var done []float64
	for i := 0; i < 4; i++ {
		st.Submit(2, func() { done = append(done, e.Now()) })
	}
	e.Run()
	// Two run in parallel finishing at 2, next two at 4.
	want := []float64{2, 2, 4, 4}
	for i, w := range want {
		if done[i] != w {
			t.Fatalf("completion %d at %v, want %v", i, done[i], w)
		}
	}
}

func TestStationSpeed(t *testing.T) {
	var e Engine
	st := NewStation(&e, "cpu", 1, 2) // double speed
	var at float64
	st.Submit(4, func() { at = e.Now() })
	e.Run()
	if at != 2 {
		t.Fatalf("sped-up job completed at %v, want 2", at)
	}
}

func TestStationUtilization(t *testing.T) {
	var e Engine
	st := NewStation(&e, "cpu", 2, 1)
	base := st.BusyTime()
	from := e.Now()
	st.Submit(10, nil) // one of two servers busy for 10s
	e.RunUntil(10)
	u := st.Utilization(base, from)
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
}

func TestStationUtilizationFullLoad(t *testing.T) {
	var e Engine
	st := NewStation(&e, "cpu", 1, 1)
	base := st.BusyTime()
	from := e.Now()
	for i := 0; i < 10; i++ {
		st.Submit(5, nil)
	}
	e.RunUntil(20)
	if u := st.Utilization(base, from); u != 1 {
		t.Fatalf("utilization = %v, want 1 (saturated)", u)
	}
}

func TestStationZeroDemand(t *testing.T) {
	var e Engine
	st := NewStation(&e, "cpu", 1, 1)
	fired := false
	st.Submit(0, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("zero-demand job never completed")
	}
	if e.Now() != 0 {
		t.Fatalf("zero-demand job advanced clock to %v", e.Now())
	}
}

func TestStationFIFOWithinQueue(t *testing.T) {
	var e Engine
	st := NewStation(&e, "d", 1, 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		st.Submit(1, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("queue not FIFO: %v", order)
		}
	}
}

func TestStationConservation(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		var e Engine
		st := NewStation(&e, "cpu", 1+src.Intn(4), 1)
		n := src.Intn(200)
		completed := 0
		for i := 0; i < n; i++ {
			st.Submit(src.Exp(1), func() { completed = completed + 1 })
		}
		e.Run()
		return completed == n && st.Completed() == uint64(n) && st.Busy() == 0 && st.QueueLen() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStationPanics(t *testing.T) {
	var e Engine
	for _, fn := range []func(){
		func() { NewStation(&e, "x", 0, 1) },
		func() { NewStation(&e, "x", 1, 0) },
		func() { NewStation(&e, "x", 1, 1).SetSpeed(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestTokenPoolImmediateGrant(t *testing.T) {
	var e Engine
	p := NewTokenPool(&e, "threads", 2, 0)
	granted := 0
	p.Acquire(func() { granted++ }, nil)
	p.Acquire(func() { granted++ }, nil)
	if granted != 2 || p.InUse() != 2 {
		t.Fatalf("granted=%d inUse=%d", granted, p.InUse())
	}
}

func TestTokenPoolRejectWhenFull(t *testing.T) {
	var e Engine
	p := NewTokenPool(&e, "threads", 1, 1)
	p.Acquire(func() {}, nil) // takes the token
	p.Acquire(func() {}, nil) // waits (queue slot 1)
	rejected := false
	p.Acquire(func() { t.Fatal("should not grant") }, func() { rejected = true })
	if !rejected || p.Rejected() != 1 {
		t.Fatal("third acquire should be rejected")
	}
}

func TestTokenPoolFIFOWakeup(t *testing.T) {
	var e Engine
	p := NewTokenPool(&e, "threads", 1, -1)
	var order []int
	p.Acquire(func() {}, nil)
	for i := 0; i < 3; i++ {
		i := i
		p.Acquire(func() { order = append(order, i) }, nil)
	}
	for i := 0; i < 3; i++ {
		p.Release()
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("waiters woken out of order: %v", order)
	}
}

func TestTokenPoolResizeGrowsGrants(t *testing.T) {
	var e Engine
	p := NewTokenPool(&e, "threads", 1, -1)
	p.Acquire(func() {}, nil)
	woke := false
	p.Acquire(func() { woke = true }, nil)
	p.Resize(2)
	if !woke {
		t.Fatal("resize did not wake waiter")
	}
}

func TestTokenPoolShrink(t *testing.T) {
	var e Engine
	p := NewTokenPool(&e, "threads", 2, -1)
	p.Acquire(func() {}, nil)
	p.Acquire(func() {}, nil)
	p.Resize(1)
	woke := false
	p.Acquire(func() { woke = true }, nil)
	p.Release() // 2 in use -> 1 in use == new capacity; no wake
	if woke {
		t.Fatal("waiter woken while pool above capacity")
	}
	p.Release()
	if !woke {
		t.Fatal("waiter not woken after pool drained below capacity")
	}
}

func TestTokenPoolReleaseWithoutAcquirePanics(t *testing.T) {
	var e Engine
	p := NewTokenPool(&e, "threads", 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Acquire did not panic")
		}
	}()
	p.Release()
}

func TestTokenPoolInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		var e Engine
		cap := 1 + src.Intn(8)
		p := NewTokenPool(&e, "x", cap, src.Intn(10)-1)
		held := 0
		for i := 0; i < 300; i++ {
			if src.Bernoulli(0.6) {
				p.Acquire(func() { held++ }, nil)
			} else if held > 0 {
				p.Release()
				held--
			}
			if p.InUse() > cap || p.InUse() < 0 {
				return false
			}
			if p.InUse() < cap && p.Waiting() > 0 {
				return false // free tokens with waiters queued
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStationResetPreservesInFlight(t *testing.T) {
	var e Engine
	st := NewStation(&e, "cpu", 1, 1)
	completions := 0
	st.Submit(5, func() { completions++ })
	e.RunUntil(1)
	st.Reset()
	e.Run()
	if completions != 1 {
		t.Fatal("in-flight job lost on Reset")
	}
	if st.Completed() != 1 {
		// completion happened after reset, so counter restarts and counts it
		t.Fatalf("Completed = %d, want 1", st.Completed())
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var e Engine
		for j := 0; j < 1000; j++ {
			e.Schedule(float64(j%17), func() {})
		}
		e.Run()
	}
}

func BenchmarkStationThroughput(b *testing.B) {
	var e Engine
	st := NewStation(&e, "cpu", 2, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Submit(0.001, nil)
		e.Step()
	}
	e.Run()
}
