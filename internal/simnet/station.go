package simnet

// Station models a multi-server FIFO queueing station (e.g. a node's CPU
// cores or its disk). Jobs arrive with a service demand in seconds; when a
// server is free the job occupies it for exactly that demand and then the
// completion callback fires.
//
// The station keeps a running integral of busy-server-seconds so callers can
// compute utilization over measurement windows via snapshots.
type Station struct {
	eng     *Engine
	name    string
	servers int
	speed   float64 // service rate multiplier; demand/speed = service time

	busy       int
	queue      []stationJob
	busyTime   float64 // integral of busy servers dt, up to lastStamp
	lastStamp  float64
	completed  uint64
	arrived    uint64
	queuedPeak int
}

type stationJob struct {
	demand float64
	done   func()
}

// NewStation creates a station with the given number of parallel servers.
// speed scales service times: a job with demand d takes d/speed seconds.
func NewStation(eng *Engine, name string, servers int, speed float64) *Station {
	if servers <= 0 {
		panic("simnet: station needs at least one server")
	}
	if speed <= 0 {
		panic("simnet: station speed must be positive")
	}
	return &Station{eng: eng, name: name, servers: servers, speed: speed, lastStamp: eng.Now()}
}

// Name returns the station's diagnostic name.
func (s *Station) Name() string { return s.name }

// Servers returns the number of parallel servers.
func (s *Station) Servers() int { return s.servers }

// SetSpeed changes the service-rate multiplier for jobs started afterwards.
// Used to model thrashing slowdowns from memory pressure.
func (s *Station) SetSpeed(speed float64) {
	if speed <= 0 {
		panic("simnet: station speed must be positive")
	}
	s.speed = speed
}

// Speed returns the current service-rate multiplier.
func (s *Station) Speed() float64 { return s.speed }

func (s *Station) stamp() {
	now := s.eng.Now()
	s.busyTime += float64(s.busy) * (now - s.lastStamp)
	s.lastStamp = now
}

// Submit enqueues a job with the given service demand; done runs when the
// job completes service. Demand may be zero, in which case the job still
// cycles through the queue discipline.
func (s *Station) Submit(demand float64, done func()) {
	if demand < 0 {
		demand = 0
	}
	s.arrived++
	if s.busy < s.servers {
		s.start(demand, done)
		return
	}
	s.queue = append(s.queue, stationJob{demand: demand, done: done})
	if len(s.queue) > s.queuedPeak {
		s.queuedPeak = len(s.queue)
	}
}

func (s *Station) start(demand float64, done func()) {
	s.stamp()
	s.busy++
	s.eng.Schedule(demand/s.speed, func() {
		s.stamp()
		s.busy--
		s.completed++
		if len(s.queue) > 0 {
			next := s.queue[0]
			copy(s.queue, s.queue[1:])
			s.queue = s.queue[:len(s.queue)-1]
			s.start(next.demand, next.done)
		}
		if done != nil {
			done()
		}
	})
}

// QueueLen returns the number of jobs waiting (not in service).
func (s *Station) QueueLen() int { return len(s.queue) }

// Busy returns the number of servers currently serving a job.
func (s *Station) Busy() int { return s.busy }

// Completed returns the number of jobs that have finished service.
func (s *Station) Completed() uint64 { return s.completed }

// Arrived returns the number of jobs submitted.
func (s *Station) Arrived() uint64 { return s.arrived }

// BusyTime returns the cumulative busy-server-seconds up to now.
func (s *Station) BusyTime() float64 {
	s.stamp()
	return s.busyTime
}

// Utilization returns average utilization in (fromTime, now] given the
// BusyTime snapshot taken at fromTime. Result is in [0, 1].
func (s *Station) Utilization(busyAtFrom, fromTime float64) float64 {
	elapsed := s.eng.Now() - fromTime
	if elapsed <= 0 {
		return 0
	}
	u := (s.BusyTime() - busyAtFrom) / (elapsed * float64(s.servers))
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// Reset clears counters and the queue (jobs in service still complete).
// Used between measurement iterations when servers are "restarted".
func (s *Station) Reset() {
	s.stamp()
	s.busyTime = 0
	s.completed = 0
	s.arrived = 0
	s.queuedPeak = 0
	s.queue = nil
}

// TokenPool is a counting semaphore with a FIFO wait queue of bounded
// length. It models thread pools (tokens = threads) and connection limits;
// the wait-queue bound models an accept/backlog queue, with arrivals beyond
// it rejected.
type TokenPool struct {
	eng      *Engine
	name     string
	capacity int
	maxWait  int // -1 means unbounded

	inUse    int
	waiters  []func()
	granted  uint64
	rejected uint64
	waitPeak int
}

// NewTokenPool creates a pool of capacity tokens whose wait queue holds at
// most maxWait requests (maxWait < 0 means unbounded).
func NewTokenPool(eng *Engine, name string, capacity, maxWait int) *TokenPool {
	if capacity <= 0 {
		panic("simnet: token pool needs positive capacity")
	}
	return &TokenPool{eng: eng, name: name, capacity: capacity, maxWait: maxWait}
}

// Name returns the pool's diagnostic name.
func (p *TokenPool) Name() string { return p.name }

// Capacity returns the number of tokens.
func (p *TokenPool) Capacity() int { return p.capacity }

// Resize changes the pool capacity. Growing immediately grants tokens to
// waiters; shrinking takes effect as tokens are released.
func (p *TokenPool) Resize(capacity int) {
	if capacity <= 0 {
		panic("simnet: token pool needs positive capacity")
	}
	p.capacity = capacity
	p.grantWaiters()
}

// SetMaxWait changes the wait-queue bound (maxWait < 0 means unbounded).
// Requests already waiting are not evicted.
func (p *TokenPool) SetMaxWait(maxWait int) { p.maxWait = maxWait }

// Acquire requests a token. If one is free, onGrant runs immediately
// (synchronously). If the wait queue has room, the request waits FIFO and
// onGrant runs when a token frees up. Otherwise onReject (if non-nil) runs
// immediately and the request counts as rejected.
func (p *TokenPool) Acquire(onGrant func(), onReject func()) {
	if p.inUse < p.capacity {
		p.inUse++
		p.granted++
		onGrant()
		return
	}
	if p.maxWait >= 0 && len(p.waiters) >= p.maxWait {
		p.rejected++
		if onReject != nil {
			onReject()
		}
		return
	}
	p.waiters = append(p.waiters, onGrant)
	if len(p.waiters) > p.waitPeak {
		p.waitPeak = len(p.waiters)
	}
}

// Release returns a token to the pool, waking the oldest waiter if any.
func (p *TokenPool) Release() {
	if p.inUse <= 0 {
		panic("simnet: Release without matching Acquire on pool " + p.name)
	}
	p.inUse--
	p.grantWaiters()
}

func (p *TokenPool) grantWaiters() {
	for p.inUse < p.capacity && len(p.waiters) > 0 {
		onGrant := p.waiters[0]
		copy(p.waiters, p.waiters[1:])
		p.waiters = p.waiters[:len(p.waiters)-1]
		p.inUse++
		p.granted++
		onGrant()
	}
}

// InUse returns the number of tokens currently held.
func (p *TokenPool) InUse() int { return p.inUse }

// Waiting returns the number of requests in the wait queue.
func (p *TokenPool) Waiting() int { return len(p.waiters) }

// Granted returns the number of successful acquisitions so far.
func (p *TokenPool) Granted() uint64 { return p.granted }

// Rejected returns the number of rejected acquisitions so far.
func (p *TokenPool) Rejected() uint64 { return p.rejected }

// ResetCounters zeroes the granted/rejected counters (state is preserved).
func (p *TokenPool) ResetCounters() {
	p.granted = 0
	p.rejected = 0
	p.waitPeak = 0
}
