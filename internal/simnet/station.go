package simnet

// Station models a multi-server FIFO queueing station (e.g. a node's CPU
// cores or its disk). Jobs arrive with a service demand in seconds; when a
// server is free the job occupies it for exactly that demand and then the
// completion callback fires.
//
// The station keeps a running integral of busy-server-seconds so callers can
// compute utilization over measurement windows via snapshots.
type Station struct {
	eng     *Engine
	name    string
	servers int
	speed   float64 // service rate multiplier; demand/speed = service time

	site uint8 // span attribution site (span.go); 0 = unattributed

	busy       int
	queue      []stationJob
	busyTime   float64 // integral of busy servers dt, up to lastStamp
	lastStamp  float64
	completed  uint64
	arrived    uint64
	queuedPeak int

	// onEvict, when set, receives each queued job's completion callback if
	// Reset clears a non-empty queue; see Reset.
	onEvict func(done func())

	// freeSvc recycles in-service completion records so steady-state
	// Submit/complete cycles are allocation-free: each record carries a
	// fire closure allocated once, scheduled in place of a fresh per-job
	// closure. See DESIGN.md §7.
	freeSvc []*svcRecord
}

type stationJob struct {
	demand float64
	done   func()
	label  string   // attribution stack captured at Submit (profiling runs)
	span   *SpanBuf // submitter's span, captured at Submit (span runs)
}

// svcRecord is one in-service job's completion state. fire is allocated
// once per record and reused across recycles; it dispatches back into the
// owning station, which releases the record before running the job's done
// callback (mirroring the engine's release-before-callback discipline).
type svcRecord struct {
	st   *Station
	done func()
	fire func()
	span *SpanBuf // submitter's span, stamped with the service segment
}

// getSvc returns a recycled service record, or a fresh one.
func (s *Station) getSvc(done func()) *svcRecord {
	var r *svcRecord
	if n := len(s.freeSvc); n > 0 {
		r = s.freeSvc[n-1]
		s.freeSvc[n-1] = nil
		s.freeSvc = s.freeSvc[:n-1]
	} else {
		r = &svcRecord{st: s}
		r.fire = func() { r.st.complete(r) }
	}
	r.done = done
	return r
}

// putSvc recycles a service record, dropping its callback reference.
func (s *Station) putSvc(r *svcRecord) {
	r.done = nil
	r.span = nil
	s.freeSvc = append(s.freeSvc, r)
}

// SetSpanSite assigns the station's span attribution site; segments the
// station records carry it (span.go).
func (s *Station) SetSpanSite(site uint8) { s.site = site }

// NewStation creates a station with the given number of parallel servers.
// speed scales service times: a job with demand d takes d/speed seconds.
func NewStation(eng *Engine, name string, servers int, speed float64) *Station {
	if servers <= 0 {
		panic("simnet: station needs at least one server")
	}
	if speed <= 0 {
		panic("simnet: station speed must be positive")
	}
	return &Station{eng: eng, name: name, servers: servers, speed: speed, lastStamp: eng.Now()}
}

// Name returns the station's diagnostic name.
func (s *Station) Name() string { return s.name }

// Servers returns the number of parallel servers.
func (s *Station) Servers() int { return s.servers }

// SetSpeed changes the service-rate multiplier for jobs started afterwards.
// Used to model thrashing slowdowns from memory pressure.
func (s *Station) SetSpeed(speed float64) {
	if speed <= 0 {
		panic("simnet: station speed must be positive")
	}
	s.speed = speed
}

// Speed returns the current service-rate multiplier.
func (s *Station) Speed() float64 { return s.speed }

func (s *Station) stamp() {
	now := s.eng.Now()
	s.busyTime += float64(s.busy) * (now - s.lastStamp)
	s.lastStamp = now
}

// Submit enqueues a job with the given service demand; done runs when the
// job completes service. Demand may be zero, in which case the job still
// cycles through the queue discipline.
func (s *Station) Submit(demand float64, done func()) {
	if demand < 0 {
		demand = 0
	}
	s.arrived++
	// The service completion is attributed to the context that submitted
	// the job (stack extended by "station/svc"), not to whichever event
	// later pops it off the queue.
	var label string
	if s.eng.prof != nil {
		label = appendFrame(s.eng.ctx, s.name+"/svc")
	}
	span := s.eng.curSpan
	if s.busy < s.servers {
		s.start(demand, done, label, span)
		return
	}
	s.queue = append(s.queue, stationJob{demand: demand, done: done, label: label, span: span})
	if len(s.queue) > s.queuedPeak {
		s.queuedPeak = len(s.queue)
	}
}

func (s *Station) start(demand float64, done func(), label string, span *SpanBuf) {
	s.stamp()
	s.busy++
	if span != nil {
		// Whatever elapsed since Submit was time in this station's queue.
		span.Mark(s.site, SpanQueue, s.eng.NowTicks())
	}
	r := s.getSvc(done)
	r.span = span
	s.eng.scheduleSpanned(demand/s.speed, label, span, r.fire)
}

// complete finishes one job's service: the record is recycled first, then
// the next queued job starts, then the job's completion callback runs —
// the same order the per-job closures used, so event sequences are
// unchanged.
func (s *Station) complete(r *svcRecord) {
	done := r.done
	if r.span != nil {
		r.span.Mark(s.site, SpanService, s.eng.NowTicks())
	}
	s.putSvc(r)
	s.stamp()
	s.busy--
	s.completed++
	if len(s.queue) > 0 {
		next := s.queue[0]
		copy(s.queue, s.queue[1:])
		s.queue[len(s.queue)-1] = stationJob{} // release the closure
		s.queue = s.queue[:len(s.queue)-1]
		s.start(next.demand, next.done, next.label, next.span)
	}
	if done != nil {
		done()
	}
}

// QueueLen returns the number of jobs waiting (not in service).
func (s *Station) QueueLen() int { return len(s.queue) }

// Busy returns the number of servers currently serving a job.
func (s *Station) Busy() int { return s.busy }

// Completed returns the number of jobs that have finished service.
func (s *Station) Completed() uint64 { return s.completed }

// Arrived returns the number of jobs submitted.
func (s *Station) Arrived() uint64 { return s.arrived }

// BusyTime returns the cumulative busy-server-seconds up to now.
func (s *Station) BusyTime() float64 {
	s.stamp()
	return s.busyTime
}

// Utilization returns average utilization in (fromTime, now] given the
// BusyTime snapshot taken at fromTime. Result is in [0, 1].
func (s *Station) Utilization(busyAtFrom, fromTime float64) float64 {
	elapsed := s.eng.Now() - fromTime
	if elapsed <= 0 {
		return 0
	}
	u := (s.BusyTime() - busyAtFrom) / (elapsed * float64(s.servers))
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// SetOnEvict installs the handler Reset hands queued jobs to. The handler
// receives each evicted job's completion callback and must settle whatever
// resources the job's submitter holds (release pool tokens, fail the
// request, or — if completion semantics are acceptable — invoke done).
func (s *Station) SetOnEvict(h func(done func())) { s.onEvict = h }

// Reset clears counters and the queue (jobs in service still complete).
// Used between measurement iterations when servers are "restarted".
//
// A queued job's done callback closes over upstream state — typically
// TokenPool tokens the request holds while it waits — so silently dropping
// the queue leaks that state across iterations. Reset therefore drains a
// non-empty queue through the SetOnEvict handler; without one it panics,
// asserting the invariant every current caller relies on (reset only after
// the queue has drained).
func (s *Station) Reset() {
	s.stamp()
	s.busyTime = 0
	s.completed = 0
	s.arrived = 0
	s.queuedPeak = 0
	if len(s.queue) > 0 {
		if s.onEvict == nil {
			panic("simnet: Reset would drop " + s.name +
				"'s queued jobs (and leak what their callbacks hold); drain first or SetOnEvict")
		}
		// Detach the queue before draining: an evict handler may settle its
		// job by resubmitting work to this station, and those jobs belong
		// to the post-reset queue — they must survive, not be dropped with
		// the evicted batch.
		q := s.queue
		s.queue = nil
		for _, j := range q {
			s.onEvict(j.done)
		}
	}
}

// TokenPool is a counting semaphore with a FIFO wait queue of bounded
// length. It models thread pools (tokens = threads) and connection limits;
// the wait-queue bound models an accept/backlog queue, with arrivals beyond
// it rejected.
type TokenPool struct {
	eng      *Engine
	name     string
	capacity int
	maxWait  int   // -1 means unbounded
	site     uint8 // span attribution site (span.go); 0 = unattributed

	inUse    int
	waiters  []waiter
	granted  uint64
	rejected uint64
	waitPeak int
	granting bool // grantWaiters is draining; re-entrant calls return
}

// waiter is one queued Acquire: its grant callback plus the attribution
// stack captured when the request started waiting, so the eventual grant
// is charged to the acquirer, not to whichever event released the token.
type waiter struct {
	fn   func()
	ctx  string
	span *SpanBuf // acquirer's span, stamped with the wait when granted
}

// NewTokenPool creates a pool of capacity tokens whose wait queue holds at
// most maxWait requests (maxWait < 0 means unbounded).
func NewTokenPool(eng *Engine, name string, capacity, maxWait int) *TokenPool {
	if capacity <= 0 {
		panic("simnet: token pool needs positive capacity")
	}
	return &TokenPool{eng: eng, name: name, capacity: capacity, maxWait: maxWait}
}

// Name returns the pool's diagnostic name.
func (p *TokenPool) Name() string { return p.name }

// SetSpanSite assigns the pool's span attribution site; the wait segments
// it records carry it (span.go).
func (p *TokenPool) SetSpanSite(site uint8) { p.site = site }

// Capacity returns the number of tokens.
func (p *TokenPool) Capacity() int { return p.capacity }

// Resize changes the pool capacity. Growing immediately grants tokens to
// waiters; shrinking takes effect as tokens are released.
func (p *TokenPool) Resize(capacity int) {
	if capacity <= 0 {
		panic("simnet: token pool needs positive capacity")
	}
	p.capacity = capacity
	p.grantWaiters()
}

// SetMaxWait changes the wait-queue bound (maxWait < 0 means unbounded).
// Requests already waiting are not evicted.
func (p *TokenPool) SetMaxWait(maxWait int) { p.maxWait = maxWait }

// Acquire requests a token. If one is free and nobody is queued ahead,
// onGrant runs immediately (synchronously). If the wait queue has room,
// the request waits FIFO and onGrant runs when a token frees up. Otherwise
// onReject (if non-nil) runs immediately and the request counts as
// rejected.
//
// The len(p.waiters) == 0 guard matters only while grantWaiters is
// dispatching: there a token can be momentarily free while earlier
// requests are still queued, and an Acquire from inside a grant callback
// must queue behind them rather than barge past the FIFO order.
func (p *TokenPool) Acquire(onGrant func(), onReject func()) {
	if p.inUse < p.capacity && len(p.waiters) == 0 {
		p.inUse++
		p.granted++
		onGrant()
		return
	}
	if p.maxWait >= 0 && len(p.waiters) >= p.maxWait {
		p.rejected++
		if onReject != nil {
			onReject()
		}
		return
	}
	w := waiter{fn: onGrant, span: p.eng.curSpan}
	if p.eng.prof != nil {
		w.ctx = appendFrame(p.eng.ctx, p.name+"/grant")
	}
	p.waiters = append(p.waiters, w)
	if len(p.waiters) > p.waitPeak {
		p.waitPeak = len(p.waiters)
	}
}

// Release returns a token to the pool, waking the oldest waiter if any.
func (p *TokenPool) Release() {
	if p.inUse <= 0 {
		panic("simnet: Release without matching Acquire on pool " + p.name)
	}
	p.inUse--
	p.grantWaiters()
}

// grantWaiters grants tokens to queued waiters in FIFO order. Grant
// callbacks run synchronously and may re-enter the pool (Acquire, Release,
// Resize); the granting flag turns a re-entrant call into a no-op — the
// outermost loop re-checks capacity after every callback and keeps
// draining — so the queue is never shifted underneath an active copy and
// recursion depth stays bounded no matter how grants chain.
func (p *TokenPool) grantWaiters() {
	if p.granting {
		return
	}
	p.granting = true
	for p.inUse < p.capacity && len(p.waiters) > 0 {
		w := p.waiters[0]
		copy(p.waiters, p.waiters[1:])
		p.waiters[len(p.waiters)-1] = waiter{} // release the closure
		p.waiters = p.waiters[:len(p.waiters)-1]
		p.inUse++
		p.granted++
		e := p.eng
		if w.span != nil {
			// The time since Acquire queued is this pool's wait; the grant
			// callback runs under the waiter's span, not the releaser's.
			w.span.Mark(p.site, SpanQueue, e.NowTicks())
		}
		savedSpan := e.curSpan
		e.curSpan = w.span
		if e.prof != nil {
			saved := e.ctx
			e.ctx = w.ctx
			w.fn()
			e.ctx = saved
		} else {
			w.fn()
		}
		e.curSpan = savedSpan
	}
	p.granting = false
}

// InUse returns the number of tokens currently held.
func (p *TokenPool) InUse() int { return p.inUse }

// Waiting returns the number of requests in the wait queue.
func (p *TokenPool) Waiting() int { return len(p.waiters) }

// Granted returns the number of successful acquisitions so far.
func (p *TokenPool) Granted() uint64 { return p.granted }

// Rejected returns the number of rejected acquisitions so far.
func (p *TokenPool) Rejected() uint64 { return p.rejected }

// ResetCounters zeroes the granted/rejected counters (state is preserved).
func (p *TokenPool) ResetCounters() {
	p.granted = 0
	p.rejected = 0
	p.waitPeak = 0
}
