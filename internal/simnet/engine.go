// Package simnet is a deterministic discrete-event simulation engine with
// the queueing primitives (multi-server stations, token pools) used to model
// the three-tier web cluster.
//
// Time is a float64 number of simulated seconds. Events scheduled for the
// same instant fire in scheduling order (a monotone sequence number breaks
// ties), so simulations are fully deterministic.
package simnet

import "container/heap"

// Engine is the event loop of a simulation. The zero value is ready to use
// and starts at time 0.
type Engine struct {
	now    float64
	seq    uint64
	events eventHeap
}

// event is a scheduled callback.
type event struct {
	at       float64
	seq      uint64
	fn       func()
	canceled bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Timer is a handle to a scheduled event that can be canceled.
type Timer struct{ ev *event }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled timer is a no-op.
func (t *Timer) Cancel() {
	if t != nil && t.ev != nil {
		t.ev.canceled = true
	}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule arranges for fn to run delay seconds from now. A negative delay
// is treated as zero. It returns a Timer that can cancel the event.
func (e *Engine) Schedule(delay float64, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	ev := &event{at: e.now + delay, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return &Timer{ev: ev}
}

// At arranges for fn to run at absolute simulated time t; if t is in the
// past it runs at the current time.
func (e *Engine) At(t float64, fn func()) *Timer {
	return e.Schedule(t-e.now, fn)
}

// Step executes the next pending event and returns true, or returns false
// if no events remain.
func (e *Engine) Step() bool {
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// RunUntil executes events in order until the next event would fire after
// time t (or no events remain), then advances the clock to exactly t.
func (e *Engine) RunUntil(t float64) {
	for e.events.Len() > 0 {
		// Peek; heap index 0 is the earliest event.
		next := e.events[0]
		if next.at > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// Pending returns the number of scheduled (possibly canceled) events.
func (e *Engine) Pending() int { return e.events.Len() }
