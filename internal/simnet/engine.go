// Package simnet is a deterministic discrete-event simulation engine with
// the queueing primitives (multi-server stations, token pools) used to model
// the three-tier web cluster.
//
// Time is a float64 number of simulated seconds. Events scheduled for the
// same instant fire in scheduling order (a monotone sequence number breaks
// ties), so simulations are fully deterministic.
//
// The event loop is the hot path of every experiment in the repo: a single
// tuning iteration dispatches millions of events, so the loop avoids
// per-event heap allocation by recycling event records through a free list
// (Timers carry a generation number so a handle to a fired-and-recycled
// event can never cancel its successor) and keeps canceled timers cheap by
// marking them dead in place (lazy cancel) and compacting the heap only
// when dead entries pile up. See DESIGN.md §7.
package simnet

// Engine is the event loop of a simulation. The zero value is ready to use
// and starts at time 0.
type Engine struct {
	now      float64
	seq      uint64
	events   eventHeap
	canceled int      // dead (canceled, unpopped) events still in the heap
	free     []*event // recycled event records

	// Attribution state for the trace-driven profiler (profile.go). ctx is
	// the folded stack of the event being dispatched; events scheduled
	// during dispatch inherit it. All of it is inert until SetProfile.
	prof *Profile
	ctx  string

	// curSpan is the span buffer of the request whose event is being
	// dispatched (span.go); events scheduled during dispatch inherit it.
	// Inert (nil) until a request begins a span.
	curSpan *SpanBuf
}

// event is a scheduled callback. Records are recycled through Engine.free;
// gen increments on every recycle so stale Timer handles turn into no-ops.
// A nil fn marks a canceled (dead) event awaiting pop or compaction.
type event struct {
	at    float64
	seq   uint64
	fn    func()
	gen   uint64
	label string   // attribution stack (profiling runs only)
	span  *SpanBuf // span context of the submitting request (span runs only)
}

// compactMin is the minimum number of dead events before Cancel considers
// compacting the heap; below it the lazy pop-time sweep is always cheaper.
const compactMin = 64

// eventHeap is a binary min-heap ordered by (at, seq). It is hand-rolled
// rather than layered on container/heap: the event loop pushes and pops
// millions of times per experiment and the interface indirection of
// heap.Push/heap.Pop is measurable there.
type eventHeap []*event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && h.less(right, left) {
			least = right
		}
		if !h.less(least, i) {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

func (h *eventHeap) push(ev *event) {
	*h = append(*h, ev)
	h.siftUp(len(*h) - 1)
}

func (h *eventHeap) pop() *event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = nil
	*h = old[:n]
	if n > 1 {
		(*h).siftDown(0)
	}
	return top
}

// init re-establishes the heap invariant after the slice was rebuilt.
func (h eventHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// Timer is a handle to a scheduled event that can be canceled. The zero
// value (and a nil *Timer) is a valid no-op handle.
type Timer struct {
	eng *Engine
	ev  *event
	gen uint64
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled timer is a no-op. The canceled event's callback — and
// any state its closure captured — is released immediately rather than
// lingering in the heap until popped, and when dead events outnumber live
// ones the heap is compacted, so long runs that cancel many timers (e.g.
// the Figure 5 think-time churn) hold no unbounded garbage.
func (t *Timer) Cancel() {
	if t == nil || t.ev == nil {
		return
	}
	ev := t.ev
	if ev.gen != t.gen || ev.fn == nil {
		return // already fired, recycled, or canceled
	}
	ev.fn = nil // drop the closure (and everything it captured) now
	ev.label = ""
	ev.span = nil
	e := t.eng
	e.canceled++
	if e.canceled >= compactMin && e.canceled*2 > len(e.events) {
		e.compact()
	}
}

// compact rebuilds the heap without its dead events, recycling them.
func (e *Engine) compact() {
	live := e.events[:0]
	for _, ev := range e.events {
		if ev.fn != nil {
			live = append(live, ev)
		} else {
			e.release(ev)
		}
	}
	// Zero the tail so released records are not retained twice.
	for i := len(live); i < len(e.events); i++ {
		e.events[i] = nil
	}
	e.events = live
	e.events.init()
	e.canceled = 0
}

// alloc returns a recycled event record, or a fresh one.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

// release recycles a popped event record. The generation bump invalidates
// every Timer handle still pointing at it.
func (e *Engine) release(ev *event) {
	ev.fn = nil
	ev.label = ""
	ev.span = nil
	ev.gen++
	e.free = append(e.free, ev)
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule arranges for fn to run delay seconds from now. A negative delay
// is treated as zero. It returns a Timer that can cancel the event.
func (e *Engine) Schedule(delay float64, fn func()) Timer {
	if delay < 0 {
		delay = 0
	}
	ev := e.alloc()
	ev.at = e.now + delay
	ev.seq = e.seq
	ev.fn = fn
	ev.span = e.curSpan
	if e.prof != nil {
		ev.label = e.ctx
	}
	e.seq++
	e.events.push(ev)
	return Timer{eng: e, ev: ev, gen: ev.gen}
}

// scheduleLabeled is Schedule with an explicit attribution stack, used by
// the queueing primitives to attribute deferred work (queued jobs, pool
// waiters) to the context that submitted it rather than the event that
// happened to start it.
func (e *Engine) scheduleLabeled(delay float64, label string, fn func()) Timer {
	t := e.Schedule(delay, fn)
	if e.prof != nil {
		t.ev.label = label
	}
	return t
}

// At arranges for fn to run at absolute simulated time t; if t is in the
// past it runs at the current time.
func (e *Engine) At(t float64, fn func()) Timer {
	return e.Schedule(t-e.now, fn)
}

// Step executes the next pending event and returns true, or returns false
// if no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := e.events.pop()
		if ev.fn == nil {
			e.canceled--
			e.release(ev)
			continue
		}
		fn := ev.fn
		span := ev.span
		if e.prof != nil {
			e.prof.record(ev.label, ev.at-e.now)
			e.ctx = ev.label
		}
		e.now = ev.at
		e.release(ev)
		e.curSpan = span
		fn()
		e.curSpan = nil
		if e.prof != nil {
			e.ctx = ""
		}
		return true
	}
	return false
}

// RunUntil executes events in order until the next event would fire after
// time t (or no events remain), then advances the clock to exactly t.
func (e *Engine) RunUntil(t float64) {
	for len(e.events) > 0 {
		// Peek; heap index 0 is the earliest event. A dead event at the
		// head is fine: every live event fires at or after its time.
		if e.events[0].at > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// Pending returns the number of live (scheduled and not canceled) events.
func (e *Engine) Pending() int { return len(e.events) - e.canceled }
