package simnet

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file is the trace-driven event-loop profiler: it answers "where does
// simulated time go?" by attributing every event dispatch to a folded stack
// of attribution frames (page class → tier → station → event kind) and
// accumulating two weights per stack — the number of dispatches and the
// simulated time the clock advanced to reach the event.
//
// Attribution is threaded, not sampled. The engine keeps a current context
// (the folded stack of the event being dispatched); events scheduled during
// dispatch inherit it, instrumented call sites push frames with Enter/
// EnterRoot, and the queueing primitives carry the submitter's context
// across their queues. Everything is derived from the deterministic event
// sequence, so a profile is byte-identical across runs and worker counts —
// unlike wall-clock pprof, which the repo also ships (harmonyd -debug-addr)
// but which cannot be compared across machines or checked into a test.
//
// With no profile attached (SetProfile never called) the whole layer is a
// nil check per event and per instrumented call site.

// maxFrames bounds the folded-stack depth so a mislabeled recursive chain
// cannot grow contexts without bound; deeper frames are dropped (the stack
// keeps its prefix). The instrumented pipeline needs ~12 frames.
const maxFrames = 24

// unattributed is the stack that owns dispatches outside any frame.
const unattributed = "(unattributed)"

// appendFrame extends a folded stack by one frame, enforcing maxFrames.
func appendFrame(ctx, name string) string {
	if ctx == "" {
		return name
	}
	if strings.Count(ctx, ";") >= maxFrames-1 {
		return ctx
	}
	return ctx + ";" + name
}

// SetProfile attaches a profile to the engine; every subsequent dispatch is
// recorded. A nil profile detaches and restores the zero-overhead path.
// Attaching a profile never changes what the simulation computes: labels
// ride along with events but neither reorder them nor touch any RNG.
func (e *Engine) SetProfile(p *Profile) {
	e.prof = p
	if p == nil {
		e.ctx = ""
	}
}

// Profiling reports whether a profile is attached.
func (e *Engine) Profiling() bool { return e.prof != nil }

// Frame is a token returned by Enter/EnterRoot and restored by Exit; the
// zero value (returned when profiling is off) makes Exit a no-op.
type Frame struct {
	eng  *Engine
	prev string
	ok   bool
}

// Enter pushes an attribution frame: events scheduled until the matching
// Exit carry the extended stack. No-op (and allocation-free) when no
// profile is attached.
func (e *Engine) Enter(name string) Frame {
	if e.prof == nil {
		return Frame{}
	}
	f := Frame{eng: e, prev: e.ctx, ok: true}
	e.ctx = appendFrame(e.ctx, name)
	return f
}

// EnterRoot resets the attribution stack to a single frame — the start of
// a new logical unit of work (a page request, a browser think period) —
// so stacks cannot grow across request boundaries.
func (e *Engine) EnterRoot(name string) Frame {
	if e.prof == nil {
		return Frame{}
	}
	f := Frame{eng: e, prev: e.ctx, ok: true}
	e.ctx = name
	return f
}

// Exit restores the attribution stack saved by Enter/EnterRoot.
func (f Frame) Exit() {
	if f.ok {
		f.eng.ctx = f.prev
	}
}

// stackWeight accumulates one folded stack's two weights.
type stackWeight struct {
	events  uint64
	simTime float64
}

// Profile accumulates sim-time-weighted folded stacks from one engine (or,
// after Merge, several). Not safe for concurrent use; in parallel runs each
// lab owns a profile and the collector merges them after the join.
type Profile struct {
	stacks map[string]*stackWeight
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{stacks: make(map[string]*stackWeight)}
}

// record attributes one dispatch: dt simulated seconds of clock advance.
func (p *Profile) record(stack string, dt float64) {
	if stack == "" {
		stack = unattributed
	}
	w := p.stacks[stack]
	if w == nil {
		w = &stackWeight{}
		p.stacks[stack] = w
	}
	w.events++
	w.simTime += dt
}

// Merge adds every stack of o into p. Per-stack sums commute across merge
// order up to float association; callers that need byte-stable output must
// merge in a fixed order (the telemetry collector merges recorders sorted
// by (replicate, unit)).
func (p *Profile) Merge(o *Profile) {
	if o == nil {
		return
	}
	for stack, ow := range o.stacks {
		w := p.stacks[stack]
		if w == nil {
			w = &stackWeight{}
			p.stacks[stack] = w
		}
		w.events += ow.events
		w.simTime += ow.simTime
	}
}

// Empty reports whether nothing has been recorded. A nil profile is empty.
func (p *Profile) Empty() bool { return p == nil || len(p.stacks) == 0 }

// Events returns the total number of recorded dispatches.
func (p *Profile) Events() uint64 {
	var n uint64
	for _, w := range p.stacks {
		n += w.events
	}
	return n
}

// SimTime returns the total attributed simulated seconds.
func (p *Profile) SimTime() float64 {
	var t float64
	for _, w := range p.stacks {
		t += w.simTime
	}
	return t
}

// sortedStacks returns the stack keys in lexicographic order.
func (p *Profile) sortedStacks() []string {
	out := make([]string, 0, len(p.stacks))
	for s := range p.stacks {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// WriteFolded writes the profile in the folded-stack format consumed by
// flamegraph.pl and speedscope: one "frame;frame;frame weight" line per
// stack, weight in integer microseconds of simulated time, stacks in
// lexicographic order so the bytes are stable across runs and merges.
func (p *Profile) WriteFolded(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, stack := range p.sortedStacks() {
		sw := p.stacks[stack]
		us := int64(sw.simTime*1e6 + 0.5)
		if _, err := fmt.Fprintf(bw, "%s %d\n", stack, us); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// rollupRows bounds the stack table in WriteRollup; the remainder is
// aggregated into one line so the rollup stays readable at any scale.
const rollupRows = 40

// WriteRollup writes a human-readable rollup: totals, then the stacks
// ordered by attributed simulated time (descending; stack name breaks
// ties) with share-of-total and dispatch counts. Deterministic: both sort
// keys and all weights are exact functions of the event sequence.
func (p *Profile) WriteRollup(w io.Writer) error {
	type row struct {
		stack string
		w     *stackWeight
	}
	rows := make([]row, 0, len(p.stacks))
	for _, s := range p.sortedStacks() {
		rows = append(rows, row{stack: s, w: p.stacks[s]})
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].w.simTime != rows[j].w.simTime {
			return rows[i].w.simTime > rows[j].w.simTime
		}
		return rows[i].stack < rows[j].stack
	})
	total := p.SimTime()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "simnet event-loop profile: %d dispatches, %.3fs simulated, %d stacks\n",
		p.Events(), total, len(rows))
	fmt.Fprintf(bw, "%14s %7s %12s  %s\n", "sim-time", "share", "dispatches", "stack")
	shown := rows
	if len(shown) > rollupRows {
		shown = shown[:rollupRows]
	}
	pct := func(t float64) float64 {
		if total <= 0 {
			return 0
		}
		return 100 * t / total
	}
	for _, r := range shown {
		fmt.Fprintf(bw, "%13.3fs %6.2f%% %12d  %s\n",
			r.w.simTime, pct(r.w.simTime), r.w.events, r.stack)
	}
	if rest := rows[len(shown):]; len(rest) > 0 {
		var t float64
		var n uint64
		for _, r := range rest {
			t += r.w.simTime
			n += r.w.events
		}
		fmt.Fprintf(bw, "%13.3fs %6.2f%% %12d  … %d more stacks\n", t, pct(t), n, len(rest))
	}
	return bw.Flush()
}
