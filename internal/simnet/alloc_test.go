package simnet

import "testing"

// TestStationAllocs pins the hot submit/step path of the event loop at
// its measured cost of zero allocations per job: completions reuse pooled
// events and the station's svcRecord free list supplies the in-service
// completion state, so nothing is allocated after warm-up. This is the
// loop BenchmarkStationThroughput times — the guard turns the allocation
// half of that win into a regression test that fails fast instead of a
// benchmark number someone has to notice drifting.
func TestStationAllocs(t *testing.T) {
	var e Engine
	st := NewStation(&e, "cpu", 2, 1)
	for i := 0; i < 1000; i++ {
		st.Submit(0.001, nil)
		e.Step()
	}
	if avg := testing.AllocsPerRun(5000, func() {
		st.Submit(0.001, nil)
		e.Step()
	}); avg > 0.5 {
		t.Errorf("station submit+step: %.2f allocs, want 0 (ceiling 0.5)", avg)
	}
}
