package simnet

import (
	"math/rand"
	"testing"
)

// --- event free-list, lazy cancel, and Pending semantics ---

// TestPendingExcludesCanceled locks the Pending contract: canceled events
// still physically in the heap do not count as pending.
func TestPendingExcludesCanceled(t *testing.T) {
	e := &Engine{}
	timers := make([]Timer, 10)
	for i := range timers {
		timers[i] = e.Schedule(float64(i+1), func() {})
	}
	if got := e.Pending(); got != 10 {
		t.Fatalf("Pending = %d, want 10", got)
	}
	for i := 0; i < 4; i++ {
		timers[i].Cancel()
	}
	if got := e.Pending(); got != 6 {
		t.Fatalf("Pending after 4 cancels = %d, want 6", got)
	}
	// Canceling twice must not double-count.
	timers[0].Cancel()
	if got := e.Pending(); got != 6 {
		t.Fatalf("Pending after re-cancel = %d, want 6", got)
	}
	e.Run()
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending after Run = %d, want 0", got)
	}
}

// TestCancelReleasesClosure verifies the leak fix: Cancel drops the
// callback immediately (ev.fn = nil) instead of keeping the closure — and
// everything it captures — alive until the event's pop time.
func TestCancelReleasesClosure(t *testing.T) {
	e := &Engine{}
	fired := false
	tm := e.Schedule(5, func() { fired = true })
	tm.Cancel()
	if tm.ev.fn != nil {
		t.Fatal("Cancel left the closure attached to the heap entry")
	}
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
}

// TestCancelCompaction verifies that heavy cancellation triggers heap
// compaction: dead events are physically removed and recycled rather than
// retained until their (possibly far-future) pop time.
func TestCancelCompaction(t *testing.T) {
	e := &Engine{}
	const n = 4 * compactMin
	timers := make([]Timer, n)
	for i := range timers {
		timers[i] = e.Schedule(float64(i+1), func() {})
	}
	// Cancel most of the far-future events. Compaction keeps the invariant
	// "dead entries stay under compactMin or under half the heap", so the
	// heap must shrink well below the scheduled total instead of retaining
	// every canceled record until its pop time.
	for i := n / 4; i < n; i++ {
		timers[i].Cancel()
		if e.canceled >= compactMin && e.canceled*2 > len(e.events) {
			t.Fatalf("after cancel %d: %d dead in a %d-entry heap, compaction never ran",
				i, e.canceled, len(e.events))
		}
	}
	if len(e.events) >= n/2 {
		t.Fatalf("heap holds %d of %d entries after mass cancel; compaction reclaimed nothing", len(e.events), n)
	}
	if e.Pending() != n/4 {
		t.Fatalf("Pending = %d, want %d", e.Pending(), n/4)
	}
	// The surviving events still fire in order.
	var prev float64 = -1
	count := 0
	for e.Step() {
		if e.Now() < prev {
			t.Fatalf("time went backwards: %g after %g", e.Now(), prev)
		}
		prev = e.Now()
		count++
	}
	if count != n/4 {
		t.Fatalf("fired %d events, want %d", count, n/4)
	}
}

// TestStaleTimerCannotCancelRecycledEvent verifies the generation guard:
// after an event fires its record is recycled, and a retained handle to
// the fired event must not cancel whatever event inherited the record.
func TestStaleTimerCannotCancelRecycledEvent(t *testing.T) {
	e := &Engine{}
	stale := e.Schedule(1, func() {})
	e.Run() // fires and recycles the record
	fired := false
	fresh := e.Schedule(1, func() { fired = true })
	if fresh.ev != stale.ev {
		t.Skip("free list did not recycle the record; guard untestable here")
	}
	stale.Cancel() // must be a no-op: generation mismatch
	e.Run()
	if !fired {
		t.Fatal("stale Timer canceled a recycled event")
	}
}

// TestSelfCancelDuringDispatch: a callback canceling its own (already
// popped and recycled) timer must be a no-op.
func TestSelfCancelDuringDispatch(t *testing.T) {
	e := &Engine{}
	var tm Timer
	other := false
	tm = e.Schedule(1, func() {
		tm.Cancel() // the event is mid-dispatch; this must not corrupt anything
		e.Schedule(1, func() { other = true })
	})
	e.Run()
	if !other {
		t.Fatal("follow-up event did not fire after self-cancel")
	}
}

// --- property test: determinism under interleaved Schedule/Cancel/Step ---

// refEvent is the reference model's event: a plain sorted list, no
// free-list, no lazy cancel.
type refEvent struct {
	at       float64
	seq      uint64
	id       int
	canceled bool
}

// TestInterleavedScheduleCancelStepProperty drives the engine and a naive
// reference model through the same randomized Schedule/Cancel/Step
// interleavings and requires identical firing sequences. This pins the
// (at, seq) ordering contract across the free-list recycling, lazy
// cancellation, and compaction machinery.
func TestInterleavedScheduleCancelStepProperty(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		e := &Engine{}
		var (
			ref      []refEvent
			timers   []Timer
			refIDs   []int
			gotFired []int
			nextID   int
		)
		refFire := func() (int, bool) {
			best := -1
			for i, ev := range ref {
				if ev.canceled {
					continue
				}
				if best < 0 || ev.at < ref[best].at ||
					(ev.at == ref[best].at && ev.seq < ref[best].seq) {
					best = i
				}
			}
			if best < 0 {
				return 0, false
			}
			id := ref[best].id
			ref = append(ref[:best], ref[best+1:]...)
			return id, true
		}
		for op := 0; op < 400; op++ {
			switch r := rng.Float64(); {
			case r < 0.55: // schedule
				id := nextID
				nextID++
				delay := rng.Float64() * 10
				// A quarter of events land at an already-used time to
				// exercise the seq tiebreak.
				if len(ref) > 0 && rng.Intn(4) == 0 {
					delay = ref[rng.Intn(len(ref))].at - e.Now()
					if delay < 0 {
						delay = 0
					}
				}
				tm := e.Schedule(delay, func() { gotFired = append(gotFired, id) })
				at := e.Now() + delay
				ref = append(ref, refEvent{at: at, seq: tm.ev.seq, id: id})
				timers = append(timers, tm)
				refIDs = append(refIDs, id)
			case r < 0.75 && len(timers) > 0: // cancel a random timer
				i := rng.Intn(len(timers))
				timers[i].Cancel()
				for j := range ref {
					if ref[j].id == refIDs[i] {
						ref[j].canceled = true
					}
				}
			default: // step
				wantID, wantOK := refFire()
				before := len(gotFired)
				gotOK := e.Step()
				// The reference skips canceled events; Step reports false
				// only when nothing live remains.
				if gotOK != wantOK {
					t.Fatalf("trial %d op %d: Step = %v, reference = %v", trial, op, gotOK, wantOK)
				}
				if wantOK {
					if len(gotFired) != before+1 || gotFired[len(gotFired)-1] != wantID {
						t.Fatalf("trial %d op %d: fired %v, reference wants id %d", trial, op, gotFired[before:], wantID)
					}
				}
			}
		}
		// Drain both and require the same tail.
		for {
			wantID, wantOK := refFire()
			before := len(gotFired)
			gotOK := e.Step()
			if gotOK != wantOK {
				t.Fatalf("trial %d drain: Step = %v, reference = %v", trial, gotOK, wantOK)
			}
			if !wantOK {
				break
			}
			if gotFired[before] != wantID {
				t.Fatalf("trial %d drain: fired %d, reference wants %d", trial, gotFired[before], wantID)
			}
		}
		if e.Pending() != 0 {
			t.Fatalf("trial %d: Pending = %d after drain", trial, e.Pending())
		}
	}
}

// --- Station.Reset drop-on-reset regression ---

// TestStationResetPanicsOnQueuedJobs reproduces the drop-on-Reset bug: a
// queued job's done callback holds a pool token; silently dropping it
// leaked the token across measurement iterations. Without an evict
// handler, Reset must refuse (panic) rather than leak.
func TestStationResetPanicsOnQueuedJobs(t *testing.T) {
	e := &Engine{}
	st := NewStation(e, "cpu", 1, 1)
	pool := NewTokenPool(e, "threads", 1, -1)
	pool.Acquire(func() {
		st.Submit(1, func() { pool.Release() }) // in service
		st.Submit(1, func() { pool.Release() }) // queued, holds nothing yet
	}, nil)
	if st.QueueLen() != 1 {
		t.Fatalf("QueueLen = %d, want 1", st.QueueLen())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Reset silently dropped queued jobs (the token-leak bug)")
		}
	}()
	st.Reset()
}

// TestStationResetDrainsThroughEvictHandler verifies the explicit
// rejection path: with SetOnEvict installed, Reset hands every queued
// job's completion callback to the handler so the submitter's resources
// (here: a pool token per queued request) can be settled.
func TestStationResetDrainsThroughEvictHandler(t *testing.T) {
	e := &Engine{}
	st := NewStation(e, "cpu", 1, 1)
	pool := NewTokenPool(e, "threads", 3, -1)
	// Three requests each hold a token across their station job; one runs,
	// two queue.
	for i := 0; i < 3; i++ {
		pool.Acquire(func() {
			st.Submit(1, func() { pool.Release() })
		}, nil)
	}
	if pool.InUse() != 3 || st.QueueLen() != 2 {
		t.Fatalf("setup: InUse=%d QueueLen=%d, want 3 and 2", pool.InUse(), st.QueueLen())
	}
	evicted := 0
	st.SetOnEvict(func(done func()) {
		evicted++
		done() // settle: completion semantics are fine for this model
	})
	st.Reset()
	if evicted != 2 {
		t.Fatalf("evicted %d jobs, want 2", evicted)
	}
	if st.QueueLen() != 0 {
		t.Fatalf("QueueLen = %d after Reset, want 0", st.QueueLen())
	}
	// The in-service job still completes and releases the last token.
	e.Run()
	if pool.InUse() != 0 {
		t.Fatalf("pool leaked %d token(s) across Reset", pool.InUse())
	}
}

// TestStationResetEvictResubmitSurvives: an evict handler that settles a
// job by retrying it resubmits into the station mid-Reset. The resubmitted
// job belongs to the post-reset queue; Reset used to clear the queue again
// after the drain, silently dropping exactly the retries the evict hook
// exists to protect. The pooled in-service record from before the Reset
// must also complete and recycle normally.
func TestStationResetEvictResubmitSurvives(t *testing.T) {
	e := &Engine{}
	st := NewStation(e, "cpu", 1, 1)
	ran := 0
	st.Submit(1, func() { ran++ }) // in service across the Reset
	st.Submit(1, func() { ran++ }) // queued; evicted by Reset
	st.SetOnEvict(func(done func()) {
		st.Submit(1, done) // retry; the server is busy, so it queues
	})
	st.Reset()
	if st.QueueLen() != 1 {
		t.Fatalf("QueueLen = %d after evict-resubmit, want 1 (the retry was dropped)", st.QueueLen())
	}
	e.Run()
	if ran != 2 {
		t.Fatalf("%d jobs completed, want 2 (pre-reset in-service + resubmitted)", ran)
	}
	if st.Busy() != 0 || st.QueueLen() != 0 {
		t.Fatalf("station not idle after drain: busy=%d queued=%d", st.Busy(), st.QueueLen())
	}
	if n := len(st.freeSvc); n < 1 || n > 2 {
		t.Fatalf("free list holds %d service records after drain, want 1–2 (recycle broken)", n)
	}
}

// --- TokenPool reentrancy regressions ---

// TestTokenPoolReentrantReleaseDuringGrant: a grant callback that
// immediately releases its token re-enters grantWaiters mid-loop. The old
// loop would run a nested drain while the outer copy still held stale
// slice state; the guard makes the outer loop do all the work. Every
// waiter must be granted exactly once, in FIFO order.
func TestTokenPoolReentrantReleaseDuringGrant(t *testing.T) {
	e := &Engine{}
	p := NewTokenPool(e, "pool", 1, -1)
	var order []int
	p.Acquire(func() {}, nil) // take the only token
	for i := 1; i <= 4; i++ {
		i := i
		p.Acquire(func() {
			order = append(order, i)
			p.Release() // re-enters grantWaiters while it is dispatching
		}, nil)
	}
	p.Release() // kicks off the chain
	if want := []int{1, 2, 3, 4}; len(order) != len(want) {
		t.Fatalf("granted %v, want %v", order, want)
	} else {
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("granted %v, want %v", order, want)
			}
		}
	}
	if p.InUse() != 0 || p.Waiting() != 0 {
		t.Fatalf("InUse=%d Waiting=%d after chain, want 0 and 0", p.InUse(), p.Waiting())
	}
}

// TestTokenPoolReentrantAcquirePreservesFIFO: an Acquire issued from
// inside a grant callback during a Resize-growth drain must queue behind
// the already-waiting requests, not barge past them through a momentarily
// free token.
func TestTokenPoolReentrantAcquirePreservesFIFO(t *testing.T) {
	e := &Engine{}
	p := NewTokenPool(e, "pool", 1, -1)
	var order []string
	p.Acquire(func() {}, nil) // hold the only token; B, C wait
	p.Acquire(func() {
		order = append(order, "B")
		// D arrives while the growth drain still owes C its token.
		p.Acquire(func() { order = append(order, "D") }, nil)
	}, nil)
	p.Acquire(func() { order = append(order, "C") }, nil)
	p.Resize(4) // grow: grants B, then C, then D — strictly FIFO
	want := []string{"B", "C", "D"}
	if len(order) != len(want) {
		t.Fatalf("grant order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v (reentrant Acquire barged)", order, want)
		}
	}
}

// TestTokenPoolInvariantUnderReentrancy re-checks the free-tokens-with-
// waiters invariant while grant callbacks re-enter the pool arbitrarily.
func TestTokenPoolInvariantUnderReentrancy(t *testing.T) {
	e := &Engine{}
	p := NewTokenPool(e, "pool", 2, -1)
	rng := rand.New(rand.NewSource(7))
	var active int
	var churn func()
	churn = func() {
		active++
		if rng.Intn(3) == 0 && active < 40 {
			p.Acquire(churn, nil)
		}
		e.Schedule(rng.Float64(), func() {
			p.Release()
			if p.InUse() < p.Capacity() && p.Waiting() > 0 {
				t.Errorf("invariant broken: %d/%d in use with %d waiting",
					p.InUse(), p.Capacity(), p.Waiting())
			}
		})
	}
	for i := 0; i < 25; i++ {
		p.Acquire(churn, nil)
	}
	e.Run()
	if p.InUse() != 0 || p.Waiting() != 0 {
		t.Fatalf("InUse=%d Waiting=%d after drain", p.InUse(), p.Waiting())
	}
}

// --- microbenchmarks (before/after numbers in the PR) ---

// BenchmarkEngineScheduleCancel measures the cancel-heavy pattern the
// Figure 5 think-time churn produces: schedule far-future work, cancel
// most of it, keep the loop moving.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	b.ReportAllocs()
	e := &Engine{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keep := e.Schedule(1, func() {})
		for j := 0; j < 4; j++ {
			tm := e.Schedule(1e6, func() {})
			tm.Cancel()
		}
		_ = keep
		e.Step()
	}
}

// BenchmarkEngineDispatchProfiled measures per-event profiler overhead
// relative to BenchmarkEngineScheduleRun's bare dispatch loop.
func BenchmarkEngineDispatchProfiled(b *testing.B) {
	b.ReportAllocs()
	e := &Engine{}
	e.SetProfile(NewProfile())
	f := e.EnterRoot("bench")
	defer f.Exit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 1000; j++ {
			e.Schedule(float64(j%10), func() {})
		}
		e.Run()
	}
}
