package simnet

import "testing"

// sumSegs adds up the durations of a segment slice.
func sumSegs(segs []SpanSeg) int64 {
	var total int64
	for _, s := range segs {
		total += s.Dur
	}
	return total
}

func TestSpanBufMarksTileTimeline(t *testing.T) {
	var b SpanBuf
	b.Begin(100)
	b.Mark(1, SpanQueue, 100) // zero-length: skipped
	b.Mark(1, SpanQueue, 150)
	b.Mark(1, SpanService, 400)
	b.Mark(2, SpanService, 400) // zero-length: skipped
	b.Mark(2, SpanService, 1000)

	want := []SpanSeg{
		{Site: 1, Kind: SpanQueue, Dur: 50},
		{Site: 1, Kind: SpanService, Dur: 250},
		{Site: 2, Kind: SpanService, Dur: 600},
	}
	if len(b.Segs) != len(want) {
		t.Fatalf("got %d segments, want %d: %+v", len(b.Segs), len(want), b.Segs)
	}
	for i, seg := range want {
		if b.Segs[i] != seg {
			t.Errorf("seg %d = %+v, want %+v", i, b.Segs[i], seg)
		}
	}
	if got := sumSegs(b.Segs); got != b.Last()-b.Start() {
		t.Errorf("segment sum %d != span extent %d", got, b.Last()-b.Start())
	}
}

func TestSpanBufCloseAtResidual(t *testing.T) {
	var b SpanBuf
	b.Begin(0)
	b.Mark(3, SpanService, 40)
	b.CloseAt(100)
	if b.Active() {
		t.Fatal("buffer still active after CloseAt")
	}
	if len(b.Segs) != 2 {
		t.Fatalf("got %d segments, want 2: %+v", len(b.Segs), b.Segs)
	}
	res := b.Segs[1]
	if res.Site != 0 || res.Dur != 60 {
		t.Errorf("residual = %+v, want site 0 dur 60", res)
	}
	// Sealing exactly at Last leaves no residual.
	var c SpanBuf
	c.Begin(0)
	c.Mark(3, SpanService, 40)
	c.CloseAt(40)
	if len(c.Segs) != 1 {
		t.Errorf("residual appended for flush close: %+v", c.Segs)
	}
	// Marks after CloseAt are ignored.
	c.Mark(3, SpanService, 80)
	if len(c.Segs) != 1 {
		t.Errorf("mark accepted on sealed buffer: %+v", c.Segs)
	}
}

func TestSpanBufBeginReusesStorage(t *testing.T) {
	var b SpanBuf
	b.Begin(0)
	for i := int64(1); i <= 8; i++ {
		b.Mark(1, SpanService, i*10)
	}
	var kid SpanBuf
	kid.Begin(0)
	kid.Mark(2, SpanService, 5)
	b.AddChild(&kid, 5, true, 0)
	b.CloseAt(80)

	segCap, kidCap, ksCap := cap(b.Segs), cap(b.Kids), cap(b.KidSegs)
	allocs := testing.AllocsPerRun(100, func() {
		b.Begin(0)
		for i := int64(1); i <= 8; i++ {
			b.Mark(1, SpanService, i*10)
		}
		kid.Begin(0)
		kid.Mark(2, SpanService, 5)
		b.AddChild(&kid, 5, true, 0)
		b.CloseAt(80)
	})
	if allocs != 0 {
		t.Errorf("steady-state span recording allocates %.1f/op, want 0", allocs)
	}
	if cap(b.Segs) != segCap || cap(b.Kids) != kidCap || cap(b.KidSegs) != ksCap {
		t.Errorf("storage reallocated across Begin: caps %d/%d/%d -> %d/%d/%d",
			segCap, kidCap, ksCap, cap(b.Segs), cap(b.Kids), cap(b.KidSegs))
	}
}

func TestSpanBufAddChildAndCritical(t *testing.T) {
	var parent, kid1, kid2 SpanBuf
	parent.Begin(0)
	parent.Mark(1, SpanService, 10)

	kid1.Begin(10)
	kid1.Mark(2, SpanQueue, 15)
	kid1.Mark(2, SpanService, 30)
	i1 := parent.AddChild(&kid1, 30, true, 7)

	kid2.Begin(10)
	kid2.Mark(3, SpanService, 50)
	i2 := parent.AddChild(&kid2, 50, false, 0)

	parent.SetCritical(i1, true)
	parent.SetCritical(i1, false)
	parent.SetCritical(i2, true)

	if len(parent.Kids) != 2 {
		t.Fatalf("got %d kids, want 2", len(parent.Kids))
	}
	k1, k2 := parent.Kids[0], parent.Kids[1]
	if k1.Critical || !k2.Critical {
		t.Errorf("critical flags = %v/%v, want false/true", k1.Critical, k2.Critical)
	}
	if !k1.OK || k2.OK {
		t.Errorf("ok flags = %v/%v, want true/false", k1.OK, k2.OK)
	}
	if k1.Label != 7 {
		t.Errorf("kid1 label = %d, want 7", k1.Label)
	}
	if k1.Start != 10 || k1.End != 30 || k2.Start != 10 || k2.End != 50 {
		t.Errorf("kid extents = [%d,%d] [%d,%d], want [10,30] [10,50]",
			k1.Start, k1.End, k2.Start, k2.End)
	}
	s1 := parent.KidSpanSegs(i1)
	if len(s1) != 2 || sumSegs(s1) != 20 {
		t.Errorf("kid1 segs = %+v, want 2 segs summing 20", s1)
	}
	s2 := parent.KidSpanSegs(i2)
	if len(s2) != 1 || sumSegs(s2) != 40 {
		t.Errorf("kid2 segs = %+v, want 1 seg summing 40", s2)
	}
	if kid1.Active() || kid2.Active() {
		t.Error("children still active after AddChild")
	}
}

func TestEngineThreadsSpanThroughEvents(t *testing.T) {
	var eng Engine
	var b SpanBuf
	b.Begin(0)

	var sawInner, sawOuter *SpanBuf
	eng.Schedule(0, func() {
		eng.SetSpan(&b)
		// Scheduled while b is installed: the nested event captures it.
		eng.Schedule(1, func() {
			sawInner = eng.CurrentSpan()
			// An event scheduled from inside inherits too.
			eng.Schedule(1, func() { sawOuter = eng.CurrentSpan() })
		})
		eng.SetSpan(nil)
		// Scheduled after detach: carries no span.
		eng.Schedule(2, func() {
			if eng.CurrentSpan() != nil {
				t.Error("detached event carries a span")
			}
		})
	})
	eng.Run()
	if sawInner != &b || sawOuter != &b {
		t.Errorf("span not threaded through dispatch: inner=%p outer=%p want %p",
			sawInner, sawOuter, &b)
	}
	if eng.CurrentSpan() != nil {
		t.Error("engine span context not cleared after dispatch")
	}
}

func TestStationRecordsQueueAndService(t *testing.T) {
	var eng Engine
	st := NewStation(&eng, "st", 1, 1.0) // 1 server: second job queues
	st.SetSpanSite(9)

	var a, b SpanBuf
	submit := func(buf *SpanBuf, demand float64) {
		eng.Schedule(0, func() {
			buf.Begin(eng.NowTicks())
			prev := eng.SetSpan(buf)
			st.Submit(demand, func() {
				buf.CloseAt(eng.NowTicks())
			})
			eng.SetSpan(prev)
		})
	}
	submit(&a, 0.5)  // served immediately: [0, 0.5]
	submit(&b, 0.25) // queued behind a: waits [0, 0.5], served [0.5, 0.75]
	eng.Run()

	if len(a.Segs) != 1 || a.Segs[0] != (SpanSeg{Site: 9, Kind: SpanService, Dur: 500000}) {
		t.Errorf("immediate job segs = %+v, want one 500000-tick service seg", a.Segs)
	}
	wantB := []SpanSeg{
		{Site: 9, Kind: SpanQueue, Dur: 500000},
		{Site: 9, Kind: SpanService, Dur: 250000},
	}
	if len(b.Segs) != 2 || b.Segs[0] != wantB[0] || b.Segs[1] != wantB[1] {
		t.Errorf("queued job segs = %+v, want %+v", b.Segs, wantB)
	}
	if got := sumSegs(b.Segs); got != b.Last()-b.Start() {
		t.Errorf("decomposition sum %d != extent %d", got, b.Last()-b.Start())
	}
}

func TestTokenPoolRecordsWait(t *testing.T) {
	var eng Engine
	pool := NewTokenPool(&eng, "pool", 1, 4)
	pool.SetSpanSite(5)
	st := NewStation(&eng, "st", 1, 1.0)
	st.SetSpanSite(6)

	// Holder takes the token for 1s of station service, then releases.
	eng.Schedule(0, func() {
		pool.Acquire(func() {
			st.Submit(1.0, pool.Release)
		}, nil)
	})
	// Waiter arrives at t=0 too; granted at t=1 when the holder releases.
	var w SpanBuf
	eng.Schedule(0, func() {
		w.Begin(eng.NowTicks())
		prev := eng.SetSpan(&w)
		pool.Acquire(func() {
			// Span context restored to the waiter's at grant time.
			if eng.CurrentSpan() != &w {
				t.Error("pool grant did not restore waiter span context")
			}
			st.Submit(0.5, func() {
				pool.Release()
				w.CloseAt(eng.NowTicks())
			})
		}, nil)
		eng.SetSpan(prev)
	})
	eng.Run()

	want := []SpanSeg{
		{Site: 5, Kind: SpanQueue, Dur: 1000000},
		{Site: 6, Kind: SpanService, Dur: 500000},
	}
	if len(w.Segs) != 2 || w.Segs[0] != want[0] || w.Segs[1] != want[1] {
		t.Errorf("waiter segs = %+v, want %+v", w.Segs, want)
	}
}

func TestTicksRounding(t *testing.T) {
	cases := []struct {
		t    float64
		want int64
	}{
		{0, 0},
		{1.0, 1000000},
		{0.0000004, 0},
		{0.0000006, 1},
		{12.3456789, 12345679},
	}
	for _, c := range cases {
		if got := Ticks(c.t); got != c.want {
			t.Errorf("Ticks(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}
