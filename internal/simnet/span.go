package simnet

// Per-request span recording. A SpanBuf collects one request's timeline as
// a sequence of contiguous segments, each attributed to a site (an opaque
// uint8 the caller assigns to stations and pools — the web simulator maps
// them to tier resources) and a kind (queue wait or service). The engine
// threads the active buffer through event dispatch exactly the way it
// threads the profiler's attribution stack: events capture the submitting
// request's buffer and restore it around their callback, stations stamp a
// queue segment when a job enters service and a service segment when it
// completes, and token pools stamp the wait when a queued Acquire is
// granted. Everything is inert — and free — until a request begins a span.
//
// Time inside a span is integer microsecond ticks: each float64 timestamp
// is rounded once, durations are tick differences, and consecutive
// segments share their boundary tick, so segment durations telescope —
// their sum equals the last tick minus the first exactly, with no epsilon.
// That integer-exact decomposition is what the latency attribution layer's
// invariant tests pin (DESIGN.md §9).

// Span segment kinds: time a request spent waiting for a resource versus
// holding it.
const (
	// SpanQueue is time spent waiting: in a station's FIFO queue or a
	// token pool's wait queue.
	SpanQueue uint8 = iota
	// SpanService is time spent being served: station service, inter-tier
	// transfers, external-service delays.
	SpanService
)

// SpanKindName returns the segment-kind name used in exported span dumps.
func SpanKindName(k uint8) string {
	if k == SpanQueue {
		return "queue"
	}
	return "service"
}

// Ticks converts a simulated time in seconds to integer microsecond ticks,
// the span layer's time unit. Rounding happens exactly once per timestamp;
// all span arithmetic is on ticks, which is what makes decomposition sums
// exact.
func Ticks(t float64) int64 { return int64(t*1e6 + 0.5) }

// NowTicks returns the current simulated time in span ticks.
func (e *Engine) NowTicks() int64 { return Ticks(e.now) }

// SpanSeg is one contiguous interval of a request's timeline: Dur ticks
// attributed to Site doing Kind. Site 0 is reserved for unattributed time
// (closing residuals on requests that died mid-pipeline).
type SpanSeg struct {
	Site uint8
	Kind uint8
	Dur  int64
}

// SpanKid is one child span folded into its parent: a contiguous
// sub-request (an embedded image, a static page document) whose copied
// segments live in the parent's KidSegs[Seg0:Seg0+NSeg]. Critical marks
// the child whose chain is on the parent's critical path — for a parallel
// fan-out, the last child to complete.
type SpanKid struct {
	Start    int64 // absolute start tick
	End      int64 // absolute end tick
	Seg0     int32 // first segment in the parent's KidSegs
	NSeg     int32
	Critical bool
	OK       bool
	Label    uint8 // caller-defined classification (websim: cache outcome)
}

// SpanBuf is one request's span recording. It lives inside the request's
// pooled record and is recycled with it: Begin resets the buffer in place,
// reusing the segment storage, so steady-state recording allocates nothing
// once the slices reach their high-water capacity.
type SpanBuf struct {
	active bool
	start  int64 // tick of Begin
	last   int64 // end tick of the last recorded segment

	// Segs is the request's own timeline; Kids/KidSegs hold folded child
	// spans. Exported so the aggregation layer can fold and seal buffers
	// without copying; callers must treat them as read-only outside the
	// owning request's completion path.
	Segs    []SpanSeg
	Kids    []SpanKid
	KidSegs []SpanSeg
}

// Begin starts (or restarts) recording at tick now, resetting the buffer
// in place and keeping the segment storage.
func (b *SpanBuf) Begin(now int64) {
	b.active = true
	b.start = now
	b.last = now
	b.Segs = b.Segs[:0]
	b.Kids = b.Kids[:0]
	b.KidSegs = b.KidSegs[:0]
}

// Active reports whether the buffer is recording.
func (b *SpanBuf) Active() bool { return b.active }

// Start returns the tick recording began at.
func (b *SpanBuf) Start() int64 { return b.start }

// Last returns the end tick of the last recorded segment (the start tick
// if nothing has been recorded yet).
func (b *SpanBuf) Last() int64 { return b.last }

// Mark records the interval [Last, now] as a segment attributed to
// (site, kind) and advances Last. Zero-length intervals are skipped —
// dropping them changes no sums. No-op on an inactive buffer, which is how
// instrumentation sites cost nothing when span recording is off.
func (b *SpanBuf) Mark(site, kind uint8, now int64) {
	if !b.active || now <= b.last {
		return
	}
	b.Segs = append(b.Segs, SpanSeg{Site: site, Kind: kind, Dur: now - b.last})
	b.last = now
}

// CloseAt seals the buffer at tick end: an uncovered tail [Last, end] is
// recorded as an unattributed segment (site 0) so the segments always tile
// [Start, end] exactly, and the buffer stops accepting marks. Requests
// that complete synchronously from their last mark leave no residual.
func (b *SpanBuf) CloseAt(end int64) {
	if !b.active {
		return
	}
	if end > b.last {
		b.Segs = append(b.Segs, SpanSeg{Site: 0, Kind: SpanQueue, Dur: end - b.last})
		b.last = end
	}
	b.active = false
}

// Deactivate stops recording without sealing (the aggregation layer seals
// page spans itself, because child spans — not a trailing segment — cover
// the tail of a fan-out).
func (b *SpanBuf) Deactivate() { b.active = false }

// AddChild seals child c at tick end and folds it into b as a child span,
// copying its segments into b's reused child storage. Returns the child's
// index for SetCritical. The child buffer is left inactive and ready to be
// recycled with its record.
func (b *SpanBuf) AddChild(c *SpanBuf, end int64, ok bool, label uint8) int {
	c.CloseAt(end)
	seg0 := int32(len(b.KidSegs))
	b.KidSegs = append(b.KidSegs, c.Segs...)
	b.Kids = append(b.Kids, SpanKid{
		Start: c.start,
		End:   c.last,
		Seg0:  seg0,
		NSeg:  int32(len(c.Segs)),
		OK:    ok,
		Label: label,
	})
	return len(b.Kids) - 1
}

// SetCritical marks or unmarks a child span as on the critical path.
func (b *SpanBuf) SetCritical(i int, v bool) { b.Kids[i].Critical = v }

// KidSpanSegs returns the segments of child i.
func (b *SpanBuf) KidSpanSegs(i int) []SpanSeg {
	k := b.Kids[i]
	return b.KidSegs[k.Seg0 : k.Seg0+int32(k.NSeg)]
}

// CurrentSpan returns the span buffer of the request whose event is being
// dispatched, or nil.
func (e *Engine) CurrentSpan() *SpanBuf { return e.curSpan }

// SetSpan installs b as the current span context and returns the previous
// one; events scheduled while it is installed capture it. Pass nil to
// detach — work scheduled afterwards (think timers, samplers) belongs to
// no request.
func (e *Engine) SetSpan(b *SpanBuf) *SpanBuf {
	prev := e.curSpan
	e.curSpan = b
	return prev
}

// scheduleSpanned is scheduleLabeled with an explicit span context, used
// by the queueing primitives so a deferred job's completion restores the
// submitting request's span, not whichever request's event started it.
func (e *Engine) scheduleSpanned(delay float64, label string, span *SpanBuf, fn func()) Timer {
	t := e.scheduleLabeled(delay, label, fn)
	t.ev.span = span
	return t
}
