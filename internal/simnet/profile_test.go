package simnet

import (
	"strings"
	"testing"
)

// TestProfileAttributionInheritance: events scheduled during a dispatch
// inherit the dispatching event's stack; Enter extends it for the span of
// the frame and Exit restores it.
func TestProfileAttributionInheritance(t *testing.T) {
	e := &Engine{}
	p := NewProfile()
	e.SetProfile(p)

	root := e.EnterRoot("req")
	e.Schedule(1, func() {
		f := e.Enter("inner")
		e.Schedule(1, func() {}) // stack req;inner
		f.Exit()
		e.Schedule(2, func() {}) // stack req (restored)
	})
	root.Exit()
	e.Run()

	want := map[string]uint64{"req": 2, "req;inner": 1}
	if len(p.stacks) != len(want) {
		t.Fatalf("stacks %v, want keys %v", p.stacks, want)
	}
	for stack, events := range want {
		w := p.stacks[stack]
		if w == nil || w.events != events {
			t.Fatalf("stack %q: got %+v, want %d events", stack, w, events)
		}
	}
}

// TestProfileEnterRootResets: EnterRoot replaces the whole stack, so
// request chains cannot grow without bound across logical work units.
func TestProfileEnterRootResets(t *testing.T) {
	e := &Engine{}
	p := NewProfile()
	e.SetProfile(p)
	f1 := e.Enter("a")
	f2 := e.Enter("b")
	r := e.EnterRoot("fresh")
	e.Schedule(1, func() {})
	r.Exit()
	if e.ctx != "a;b" {
		t.Fatalf("ctx after Exit = %q, want %q", e.ctx, "a;b")
	}
	f2.Exit()
	f1.Exit()
	e.Run()
	if w := p.stacks["fresh"]; w == nil || w.events != 1 {
		t.Fatalf("stack %q not recorded: %v", "fresh", p.stacks)
	}
}

// TestProfileDepthCap: beyond maxFrames the stack keeps its prefix instead
// of growing without bound.
func TestProfileDepthCap(t *testing.T) {
	e := &Engine{}
	e.SetProfile(NewProfile())
	for i := 0; i < 2*maxFrames; i++ {
		e.Enter("f")
	}
	if got := strings.Count(e.ctx, ";") + 1; got != maxFrames {
		t.Fatalf("stack depth = %d, want capped at %d", got, maxFrames)
	}
}

// TestProfileUnattributed: dispatches outside any frame land under the
// sentinel stack rather than an empty key.
func TestProfileUnattributed(t *testing.T) {
	e := &Engine{}
	p := NewProfile()
	e.SetProfile(p)
	e.Schedule(1, func() {})
	e.Run()
	if w := p.stacks[unattributed]; w == nil || w.events != 1 {
		t.Fatalf("unattributed dispatch not recorded: %v", p.stacks)
	}
}

// TestProfileSimTimeWeights: each dispatch is weighted by the clock
// advance it causes, so per-stack sim-time sums to total simulated time.
func TestProfileSimTimeWeights(t *testing.T) {
	e := &Engine{}
	p := NewProfile()
	e.SetProfile(p)
	r := e.EnterRoot("a")
	e.Schedule(2, func() {})
	r.Exit()
	r = e.EnterRoot("b")
	e.Schedule(5, func() {})
	r.Exit()
	e.Run()
	if got := p.stacks["a"].simTime; got != 2 {
		t.Fatalf("stack a simTime = %g, want 2", got)
	}
	if got := p.stacks["b"].simTime; got != 3 {
		t.Fatalf("stack b simTime = %g, want 3 (5 minus the 2 already elapsed)", got)
	}
	if got := p.SimTime(); got != e.Now() {
		t.Fatalf("total simTime %g != clock %g", got, e.Now())
	}
}

// TestProfileStationAttribution: a station job's completion is charged to
// the submitter's stack plus a "<station>/svc" frame — even when the job
// waited in the queue and was started by another request's completion.
func TestProfileStationAttribution(t *testing.T) {
	e := &Engine{}
	p := NewProfile()
	e.SetProfile(p)
	st := NewStation(e, "cpu", 1, 1)
	r := e.EnterRoot("first")
	st.Submit(1, nil)
	r.Exit()
	r = e.EnterRoot("second")
	st.Submit(1, nil) // queues behind first; first's completion starts it
	r.Exit()
	e.Run()
	for _, want := range []string{"first;cpu/svc", "second;cpu/svc"} {
		if w := p.stacks[want]; w == nil || w.events != 1 {
			t.Fatalf("stack %q missing: %v", want, p.stacks)
		}
	}
}

// TestProfilePoolGrantAttribution: a queued Acquire's grant work is
// charged to the acquirer's stack (plus "<pool>/grant"), not to whichever
// request happened to release the token.
func TestProfilePoolGrantAttribution(t *testing.T) {
	e := &Engine{}
	p := NewProfile()
	e.SetProfile(p)
	pool := NewTokenPool(e, "threads", 1, -1)
	st := NewStation(e, "cpu", 1, 1)
	r := e.EnterRoot("holder")
	pool.Acquire(func() {
		e.Schedule(1, func() { pool.Release() })
	}, nil)
	r.Exit()
	r = e.EnterRoot("waiter")
	pool.Acquire(func() {
		st.Submit(1, func() { pool.Release() })
	}, nil)
	r.Exit()
	e.Run()
	want := "waiter;threads/grant;cpu/svc"
	if w := p.stacks[want]; w == nil || w.events != 1 {
		t.Fatalf("stack %q missing: %v", want, p.stacks)
	}
}

// TestProfileFoldedDeterministicAndMergeOrder: WriteFolded output is
// byte-identical across re-runs, and merging the same per-unit profiles in
// the collector's fixed order reproduces it regardless of which engine
// recorded which half.
func TestProfileFoldedDeterministicAndMergeOrder(t *testing.T) {
	build := func(seedFrames []string) *Profile {
		e := &Engine{}
		p := NewProfile()
		e.SetProfile(p)
		for i, name := range seedFrames {
			r := e.EnterRoot(name)
			d := float64(i%5) + 0.125
			e.Schedule(d, func() {
				f := e.Enter("leaf")
				e.Schedule(d/2, func() {})
				f.Exit()
			})
			r.Exit()
		}
		e.Run()
		return p
	}
	frames := []string{"a", "b", "c", "a", "b", "a"}
	var out1, out2 strings.Builder
	if err := build(frames).WriteFolded(&out1); err != nil {
		t.Fatal(err)
	}
	if err := build(frames).WriteFolded(&out2); err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Fatalf("folded output differs across identical runs:\n%s\n----\n%s", out1.String(), out2.String())
	}
	// Merge in fixed order from two builds; must equal merging fresh copies.
	m1 := NewProfile()
	m1.Merge(build(frames[:3]))
	m1.Merge(build(frames[3:]))
	m2 := NewProfile()
	m2.Merge(build(frames[:3]))
	m2.Merge(build(frames[3:]))
	var f1, f2 strings.Builder
	if err := m1.WriteFolded(&f1); err != nil {
		t.Fatal(err)
	}
	if err := m2.WriteFolded(&f2); err != nil {
		t.Fatal(err)
	}
	if f1.String() != f2.String() {
		t.Fatal("fixed-order merge is not byte-stable")
	}
}

// TestProfileFoldedFormat: one "stack weight" line per stack, integer
// microsecond weights, lexicographic order, no spaces inside frames.
func TestProfileFoldedFormat(t *testing.T) {
	p := NewProfile()
	p.record("b;y", 0.25)
	p.record("a;x", 1.5)
	p.record("", 0.000001)
	var sb strings.Builder
	if err := p.WriteFolded(&sb); err != nil {
		t.Fatal(err)
	}
	want := "(unattributed) 1\na;x 1500000\nb;y 250000\n"
	if sb.String() != want {
		t.Fatalf("folded output:\n%q\nwant:\n%q", sb.String(), want)
	}
}

// TestProfileRollup: header totals, descending sim-time order, and the
// overflow aggregate line.
func TestProfileRollup(t *testing.T) {
	p := NewProfile()
	for i := 0; i < rollupRows+5; i++ {
		p.record(strings.Repeat("s", i+1), float64(i+1))
	}
	var sb strings.Builder
	if err := p.WriteRollup(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "more stacks") {
		t.Fatalf("rollup lacks the overflow aggregate:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// header + column row + rollupRows + aggregate
	if len(lines) != 2+rollupRows+1 {
		t.Fatalf("rollup has %d lines, want %d", len(lines), 2+rollupRows+1)
	}
	if !strings.HasPrefix(lines[0], "simnet event-loop profile:") {
		t.Fatalf("bad header: %q", lines[0])
	}
}

// TestProfileDetachedZeroState: detaching clears the context so a later
// re-attach does not inherit stale frames, and an unprofiled engine
// records nothing.
func TestProfileDetachedZeroState(t *testing.T) {
	e := &Engine{}
	p := NewProfile()
	e.SetProfile(p)
	e.Enter("left-open")
	e.SetProfile(nil)
	if e.ctx != "" {
		t.Fatalf("ctx = %q after detach, want empty", e.ctx)
	}
	e.Schedule(1, func() {})
	e.Run()
	if !p.Empty() {
		t.Fatalf("detached engine recorded stacks: %v", p.stacks)
	}
	if f := e.Enter("x"); f.ok {
		t.Fatal("Enter returned a live frame with profiling off")
	}
}
