// Package reconfig implements the automatic cluster reconfiguration
// algorithm of §IV (Figure 6): find over-loaded nodes, find under-loaded
// nodes, pick the most urgent over-loaded node and the cheapest
// under-loaded donor from another tier, and move the donor into the
// over-loaded tier — immediately if the move is cheaper than waiting for
// its jobs to finish (equation 1: F + N_k·M_km − N_k·A_k).
package reconfig

import (
	"fmt"
	"sort"

	"webharmony/internal/cluster"
	"webharmony/internal/monitor"
)

// Costs supplies the cost terms of Table 5 for the move decision.
type Costs struct {
	// F is the fixed configuration cost, in seconds, of restarting a node
	// in a new role.
	F float64
	// MoveCost returns M_pq: the cost to move one job from node p to node
	// q (same-tier neighbours absorb the donor's jobs).
	MoveCost func(p, q int) float64
	// AvgProc returns A_i: the average remaining processing time of a job
	// on node i.
	AvgProc func(i int) float64
	// Jobs returns N_i: the number of jobs currently on node i.
	Jobs func(i int) int
}

// DefaultCosts returns a cost model suitable for the simulator: restarting
// a role costs 30 s, moving a job to a neighbour costs 50 ms, and jobs
// average 100 ms of remaining work.
func DefaultCosts() Costs {
	return Costs{
		F:        30,
		MoveCost: func(p, q int) float64 { return 0.05 },
		AvgProc:  func(i int) float64 { return 0.1 },
		Jobs:     func(i int) int { return 0 },
	}
}

// Decision is the algorithm's output: move node Node from tier From to
// tier To. Immediate reports whether existing jobs should be migrated now
// (equation 1 non-positive) or the node drained first.
type Decision struct {
	Node       int
	From, To   cluster.Tier
	Immediate  bool
	Overloaded int     // the node whose overload triggered the move
	Cost       float64 // the evaluated equation-1 value for the donor
	Urgency    float64 // urgency score of the overloaded node
}

// String formats the decision.
func (d Decision) String() string {
	mode := "after draining"
	if d.Immediate {
		mode = "immediately"
	}
	return fmt.Sprintf("move node%d %v→%v %s (relieving node%d)",
		d.Node, d.From, d.To, mode, d.Overloaded)
}

// TierSizer reports how many nodes currently serve a tier (M(t)).
type TierSizer interface {
	TierSize(t cluster.Tier) int
}

// Decide runs Figure 6 over one window of readings. It returns false when
// no reconfiguration is warranted (no overloaded node, no eligible donor).
func Decide(readings []monitor.Reading, th monitor.Thresholds, sizes TierSizer,
	costs Costs, urgencyOrder []cluster.Resource) (Decision, bool) {

	// Step 1: overloaded nodes.
	var l1 []monitor.Reading
	for _, r := range readings {
		if r.Overloaded(th) {
			l1 = append(l1, r)
		}
	}
	if len(l1) == 0 {
		return Decision{}, false
	}
	// Step 2: underloaded nodes.
	var l2 []monitor.Reading
	for _, r := range readings {
		if r.Underloaded(th) {
			l2 = append(l2, r)
		}
	}
	if len(l2) == 0 {
		return Decision{}, false
	}
	// Step 3: sort L1 by degree of urgency (most urgent first; stable on
	// node ID for determinism).
	sort.SliceStable(l1, func(a, b int) bool {
		ua := l1[a].Urgency(th, urgencyOrder)
		ub := l1[b].Urgency(th, urgencyOrder)
		if ua != ub {
			return ua > ub
		}
		return l1[a].Node < l1[b].Node
	})

	// Step 4: for the head of L1, find the donor k in L2 satisfying
	// (a) Tier(i) != Tier(k), (b) M(Tier(k)) > 1, (c) minimal equation 1.
	for _, hot := range l1 {
		bestIdx := -1
		bestCost := 0.0
		for idx, cand := range l2 {
			if cand.Tier == hot.Tier {
				continue // (a)
			}
			if sizes.TierSize(cand.Tier) <= 1 {
				continue // (b): never empty a tier
			}
			n := float64(costs.Jobs(cand.Node))
			m := costs.MoveCost(cand.Node, neighbourOf(readings, cand))
			c := costs.F + n*m - n*costs.AvgProc(cand.Node) // (c)
			if bestIdx < 0 || c < bestCost {
				bestIdx, bestCost = idx, c
			}
		}
		if bestIdx < 0 {
			continue // try the next overloaded node
		}
		donor := l2[bestIdx]
		return Decision{
			Node:       donor.Node,
			From:       donor.Tier,
			To:         hot.Tier,
			Immediate:  bestCost <= 0,
			Overloaded: hot.Node,
			Cost:       bestCost,
			Urgency:    hot.Urgency(th, urgencyOrder),
		}, true
	}
	return Decision{}, false
}

// neighbourOf returns a same-tier neighbour of the donor (the node m in
// equation 1 that absorbs its jobs), or the donor itself when alone.
func neighbourOf(readings []monitor.Reading, donor monitor.Reading) int {
	for _, r := range readings {
		if r.Tier == donor.Tier && r.Node != donor.Node {
			return r.Node
		}
	}
	return donor.Node
}
