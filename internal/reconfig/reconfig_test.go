package reconfig

import (
	"strings"
	"testing"

	"webharmony/internal/cluster"
	"webharmony/internal/monitor"
)

type sizes map[cluster.Tier]int

func (s sizes) TierSize(t cluster.Tier) int { return s[t] }

func reading(node int, tier cluster.Tier, cpu, mem, net, disk float64) monitor.Reading {
	var r monitor.Reading
	r.Node = node
	r.Tier = tier
	r.Util[cluster.ResCPU] = cpu
	r.Util[cluster.ResMemory] = mem
	r.Util[cluster.ResNet] = net
	r.Util[cluster.ResDisk] = disk
	return r
}

func th() monitor.Thresholds    { return monitor.DefaultThresholds() }
func order() []cluster.Resource { return monitor.DefaultUrgencyOrder() }
func costsWithJobs(n int, avg, move float64) Costs {
	c := DefaultCosts()
	c.Jobs = func(int) int { return n }
	c.AvgProc = func(int) float64 { return avg }
	c.MoveCost = func(p, q int) float64 { return move }
	return c
}

func TestNoOverloadedNoDecision(t *testing.T) {
	rs := []monitor.Reading{
		reading(0, cluster.TierProxy, 0.4, 0.3, 0.2, 0.1),
		reading(1, cluster.TierApp, 0.1, 0.1, 0.05, 0.02),
	}
	if _, ok := Decide(rs, th(), sizes{cluster.TierProxy: 1, cluster.TierApp: 1}, DefaultCosts(), order()); ok {
		t.Fatal("decision without overload")
	}
}

func TestNoUnderloadedNoDecision(t *testing.T) {
	rs := []monitor.Reading{
		reading(0, cluster.TierProxy, 0.95, 0.3, 0.2, 0.1),
		reading(1, cluster.TierApp, 0.6, 0.4, 0.4, 0.4),
	}
	if _, ok := Decide(rs, th(), sizes{cluster.TierProxy: 1, cluster.TierApp: 1}, DefaultCosts(), order()); ok {
		t.Fatal("decision without donor")
	}
}

func TestBasicMoveDecision(t *testing.T) {
	// App node 2 overloaded; proxy node 1 idle; proxy tier has 2 nodes.
	rs := []monitor.Reading{
		reading(0, cluster.TierProxy, 0.5, 0.3, 0.3, 0.2),
		reading(1, cluster.TierProxy, 0.05, 0.2, 0.05, 0.02),
		reading(2, cluster.TierApp, 0.97, 0.5, 0.3, 0.1),
	}
	d, ok := Decide(rs, th(), sizes{cluster.TierProxy: 2, cluster.TierApp: 1, cluster.TierDB: 1}, DefaultCosts(), order())
	if !ok {
		t.Fatal("no decision")
	}
	if d.Node != 1 || d.From != cluster.TierProxy || d.To != cluster.TierApp {
		t.Fatalf("decision = %+v", d)
	}
	if d.Overloaded != 2 {
		t.Fatalf("overloaded = %d, want 2", d.Overloaded)
	}
	if !strings.Contains(d.String(), "node1") {
		t.Fatalf("String = %q", d.String())
	}
}

func TestDonorNeverEmptiesTier(t *testing.T) {
	// Only proxy node is idle but it's the tier's last node: rule (b).
	rs := []monitor.Reading{
		reading(0, cluster.TierProxy, 0.05, 0.2, 0.05, 0.02),
		reading(1, cluster.TierApp, 0.97, 0.5, 0.3, 0.1),
	}
	if _, ok := Decide(rs, th(), sizes{cluster.TierProxy: 1, cluster.TierApp: 1}, DefaultCosts(), order()); ok {
		t.Fatal("algorithm emptied a tier")
	}
}

func TestDonorNotFromSameTier(t *testing.T) {
	// Idle node is in the SAME tier as the hot one: rule (a). Moving it
	// would not change tier capacities.
	rs := []monitor.Reading{
		reading(0, cluster.TierApp, 0.05, 0.2, 0.05, 0.02),
		reading(1, cluster.TierApp, 0.97, 0.5, 0.3, 0.1),
	}
	if _, ok := Decide(rs, th(), sizes{cluster.TierApp: 2, cluster.TierProxy: 1}, DefaultCosts(), order()); ok {
		t.Fatal("donor chosen from the overloaded tier")
	}
}

func TestMostUrgentOverloadedWins(t *testing.T) {
	// Both app (CPU 0.99) and proxy (net 0.85) overloaded; CPU overload is
	// more urgent, so the donor goes to the app tier.
	rs := []monitor.Reading{
		reading(0, cluster.TierProxy, 0.2, 0.2, 0.85, 0.1),
		reading(1, cluster.TierApp, 0.99, 0.5, 0.3, 0.1),
		reading(2, cluster.TierDB, 0.05, 0.2, 0.05, 0.02),
	}
	d, ok := Decide(rs, th(), sizes{cluster.TierProxy: 1, cluster.TierApp: 1, cluster.TierDB: 2}, DefaultCosts(), order())
	if !ok {
		t.Fatal("no decision")
	}
	if d.To != cluster.TierApp {
		t.Fatalf("donor sent to %v, want app tier", d.To)
	}
}

func TestImmediateWhenMovingIsCheap(t *testing.T) {
	rs := []monitor.Reading{
		reading(0, cluster.TierProxy, 0.05, 0.2, 0.05, 0.02),
		reading(1, cluster.TierProxy, 0.5, 0.3, 0.3, 0.2),
		reading(2, cluster.TierApp, 0.97, 0.5, 0.3, 0.1),
	}
	s := sizes{cluster.TierProxy: 2, cluster.TierApp: 1}
	// Equation 1: F + N·M − N·A. With F=1, N=100, M=0.01, A=1:
	// 1 + 1 − 100 = −98 → immediate.
	c := costsWithJobs(100, 1, 0.01)
	c.F = 1
	d, ok := Decide(rs, th(), s, c, order())
	if !ok || !d.Immediate {
		t.Fatalf("cheap move not immediate: %+v", d)
	}
	// With F=1000 the cost is positive → wait for draining.
	c.F = 1000
	d, ok = Decide(rs, th(), s, c, order())
	if !ok || d.Immediate {
		t.Fatalf("expensive move marked immediate: %+v", d)
	}
}

func TestCheapestDonorChosen(t *testing.T) {
	rs := []monitor.Reading{
		reading(0, cluster.TierProxy, 0.05, 0.2, 0.05, 0.02),
		reading(1, cluster.TierDB, 0.05, 0.2, 0.05, 0.02),
		reading(2, cluster.TierApp, 0.97, 0.5, 0.3, 0.1),
	}
	s := sizes{cluster.TierProxy: 2, cluster.TierDB: 2, cluster.TierApp: 1}
	c := DefaultCosts()
	// Node 1 (DB) has many finished jobs pending → cheaper by equation 1.
	c.Jobs = func(i int) int {
		if i == 1 {
			return 500
		}
		return 0
	}
	c.AvgProc = func(int) float64 { return 1 }
	c.MoveCost = func(p, q int) float64 { return 0.01 }
	d, ok := Decide(rs, th(), s, c, order())
	if !ok {
		t.Fatal("no decision")
	}
	if d.Node != 1 {
		t.Fatalf("picked node %d, want cheapest donor 1", d.Node)
	}
}

func TestFallsThroughToNextOverloadedNode(t *testing.T) {
	// Most urgent hot node has no eligible donor (only donor shares its
	// tier); the algorithm should relieve the next hot node instead.
	rs := []monitor.Reading{
		reading(0, cluster.TierApp, 0.05, 0.1, 0.02, 0.01), // idle app node
		reading(1, cluster.TierApp, 0.99, 0.5, 0.3, 0.1),   // hot app (most urgent)
		reading(2, cluster.TierProxy, 0.90, 0.3, 0.3, 0.2), // hot proxy
	}
	s := sizes{cluster.TierApp: 2, cluster.TierProxy: 1}
	d, ok := Decide(rs, th(), s, DefaultCosts(), order())
	if !ok {
		t.Fatal("no decision")
	}
	if d.To != cluster.TierProxy || d.Node != 0 {
		t.Fatalf("decision = %+v, want app node 0 moved to proxy", d)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	rs := []monitor.Reading{
		reading(3, cluster.TierProxy, 0.05, 0.2, 0.05, 0.02),
		reading(1, cluster.TierProxy, 0.05, 0.2, 0.05, 0.02),
		reading(2, cluster.TierApp, 0.97, 0.5, 0.3, 0.1),
	}
	s := sizes{cluster.TierProxy: 2, cluster.TierApp: 1}
	d1, _ := Decide(rs, th(), s, DefaultCosts(), order())
	d2, _ := Decide(rs, th(), s, DefaultCosts(), order())
	if d1.Node != d2.Node {
		t.Fatal("decision not deterministic")
	}
}
