package tpcw

import (
	"webharmony/internal/rng"
	"webharmony/internal/simnet"
	"webharmony/internal/stats"
	"webharmony/internal/webobj"
)

// Site serves complete page requests; the web-cluster simulator implements
// it. done(ok) must fire exactly once; ok=false means the request was shed
// somewhere in the pipeline.
type Site interface {
	Request(pr PageRequest, done func(ok bool))
}

// DriverOptions configures the emulated-browser driver.
type DriverOptions struct {
	Browsers  int // number of emulated browsers (EBs)
	Workload  Workload
	ThinkMean float64 // mean exponential think time, seconds (TPC-W: 7)
	Seed      uint64

	// Sessions switches each browser from i.i.d. Table 1 draws to a
	// per-browser walk of the TPC-W session graph (same steady-state mix,
	// realistic request sequences).
	Sessions bool
}

func (o DriverOptions) withDefaults() DriverOptions {
	if o.Browsers == 0 {
		o.Browsers = 100
	}
	if o.ThinkMean == 0 {
		o.ThinkMean = 7
	}
	return o
}

// Counters accumulates completed-interaction counts for a measurement
// window.
type Counters struct {
	Completed [NumInteractions]uint64
	Browse    uint64 // completed browse-class interactions
	Order     uint64 // completed order-class interactions
	Errors    uint64 // shed/failed interactions
}

// Total returns the total completed interactions.
func (c Counters) Total() uint64 { return c.Browse + c.Order }

// WIPS returns web interactions per second over a window of the given
// duration.
func (c Counters) WIPS(seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(c.Total()) / seconds
}

// ErrorRate returns errors / (errors + completed).
func (c Counters) ErrorRate() float64 {
	t := float64(c.Total()) + float64(c.Errors)
	if t == 0 {
		return 0
	}
	return float64(c.Errors) / t
}

// Driver runs the emulated browsers against a Site.
type Driver struct {
	eng      *simnet.Engine
	site     Site
	gen      *PageGen
	opts     DriverOptions
	sampler  *Sampler
	sessions []*SessionSampler // per-browser walks (Sessions mode)
	think    []*rng.Source     // per-browser think-time streams
	browsers []*browser        // per-browser reusable request state
	running  bool
	ctr      Counters
	resp     stats.Sample // response times of completed interactions
}

// browser is one emulated browser's persistent state. Each browser has at
// most one page in flight, so its completion and think-timer callbacks are
// allocated once here and reused for every interaction — the steady-state
// think/request loop schedules zero fresh closures (DESIGN.md §7).
type browser struct {
	d       *Driver
	eb      int
	it      Interaction     // interaction currently in flight
	issued  float64         // sim time the in-flight page was issued
	imgBuf  []webobj.Object // image-slice backing store, reused per page
	doneFn  func(ok bool)   // bound pageDone, passed to Site.Request
	thinkFn func()          // bound browse, scheduled on the think timer
}

// newBrowser creates the reusable state for emulated browser eb.
func newBrowser(d *Driver, eb int) *browser {
	b := &browser{d: d, eb: eb}
	b.doneFn = b.pageDone
	b.thinkFn = b.browse
	return b
}

// NewDriver creates a driver over the catalog. Browsers are not started
// until Start.
func NewDriver(eng *simnet.Engine, site Site, cat *webobj.Catalog, opts DriverOptions) *Driver {
	opts = opts.withDefaults()
	root := rng.New(opts.Seed ^ 0x7e57ab1e)
	d := &Driver{
		eng:     eng,
		site:    site,
		gen:     NewPageGen(cat, root.Split(100)),
		opts:    opts,
		sampler: NewSampler(opts.Workload, root.Split(200)),
	}
	d.think = make([]*rng.Source, opts.Browsers)
	for i := range d.think {
		d.think[i] = root.Split(uint64(300 + i))
	}
	d.browsers = make([]*browser, opts.Browsers)
	for i := range d.browsers {
		d.browsers[i] = newBrowser(d, i)
	}
	if opts.Sessions {
		d.sessions = make([]*SessionSampler, opts.Browsers)
		for i := range d.sessions {
			d.sessions[i] = NewSessionSampler(opts.Workload, root.Split(uint64(900000+i)))
		}
	}
	return d
}

// Start launches the emulated browsers; each starts with a random initial
// think offset so arrivals are not synchronized.
func (d *Driver) Start() {
	if d.running {
		return
	}
	d.running = true
	f := d.eng.EnterRoot("browser/think")
	defer f.Exit()
	for i := 0; i < d.opts.Browsers; i++ {
		d.eng.Schedule(d.think[i].Uniform(0, d.opts.ThinkMean), d.browsers[i].thinkFn)
	}
}

// Stop halts request issuing: browsers finish their in-flight interaction
// and then go idle. Used when an iteration's cool-down begins.
func (d *Driver) Stop() { d.running = false }

// Running reports whether browsers are issuing requests.
func (d *Driver) Running() bool { return d.running }

// SetWorkload switches the interaction mix (the Figure 5 experiment).
func (d *Driver) SetWorkload(w Workload) {
	d.opts.Workload = w
	d.sampler.SetWorkload(w)
	for _, s := range d.sessions {
		s.SetWorkload(w)
	}
}

// Workload returns the current workload.
func (d *Driver) Workload() Workload { return d.opts.Workload }

// browse runs one emulated browser's think/request loop iteration: draw
// the next interaction, generate the page and issue it with the browser's
// reusable completion callback.
func (b *browser) browse() {
	d := b.d
	if !d.running {
		return
	}
	if d.sessions != nil {
		b.it = d.sessions[b.eb].Next()
	} else {
		b.it = d.sampler.Next()
	}
	pr := d.gen.PageBuf(b.it, b.eb, b.imgBuf)
	b.imgBuf = pr.Images // keep the (possibly grown) backing store
	b.issued = d.eng.Now()
	d.site.Request(pr, b.doneFn)
}

// pageDone records the in-flight interaction's outcome and schedules the
// next think period.
func (b *browser) pageDone(ok bool) {
	d := b.d
	if ok {
		d.resp.Add(d.eng.Now() - b.issued)
		d.ctr.Completed[b.it]++
		if b.it.Class() == ClassBrowse {
			d.ctr.Browse++
		} else {
			d.ctr.Order++
		}
	} else {
		d.ctr.Errors++
	}
	// Think, then issue the next interaction. The think timer starts a
	// new logical unit of work: without the root reset, each browser's
	// attribution stack would thread through every page it ever loaded.
	f := d.eng.EnterRoot("browser/think")
	defer f.Exit()
	d.eng.Schedule(d.think[b.eb].Exp(d.opts.ThinkMean), b.thinkFn)
}

// Counters returns the accumulated counters.
func (d *Driver) Counters() Counters { return d.ctr }

// ResetCounters zeroes the counters and response-time sample (start of a
// measurement window).
func (d *Driver) ResetCounters() {
	d.ctr = Counters{}
	d.resp = stats.Sample{}
}

// ResponseTimes returns the response-time sample of the current window.
// Callers must not retain it across ResetCounters.
func (d *Driver) ResponseTimes() *stats.Sample { return &d.resp }
