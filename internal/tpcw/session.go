package tpcw

import (
	"fmt"
	"math"
	"sync"

	"webharmony/internal/rng"
)

// The TPC-W specification drives each emulated browser through a session
// graph: from every page only certain next pages are reachable (you reach
// Buy Confirm through Buy Request, search results through a search
// request, and so on). The plain Sampler draws interactions i.i.d. from
// the Table 1 mix; SessionSampler walks the navigation graph instead, with
// transition probabilities calibrated so that the walk's stationary
// distribution still matches Table 1. Both therefore load the cluster
// identically in steady state, but the session walk also produces
// realistic request sequences (funnels, repeated searches).

// sessionEdges lists the navigation graph: the pages reachable from each
// page, per the TPC-W page links. Home is reachable from everywhere (the
// site banner) and every row includes a plausible "continue shopping"
// path so the graph is strongly connected.
var sessionEdges = [NumInteractions][]Interaction{
	Home:                 {Home, NewProducts, BestSellers, SearchRequest, ProductDetail, ShoppingCart, OrderInquiry},
	NewProducts:          {ProductDetail, SearchRequest, Home, ShoppingCart, NewProducts},
	BestSellers:          {ProductDetail, SearchRequest, Home, ShoppingCart, BestSellers},
	ProductDetail:        {ProductDetail, SearchRequest, ShoppingCart, Home, AdminRequest, NewProducts, BestSellers},
	SearchRequest:        {SearchResults, Home},
	SearchResults:        {ProductDetail, SearchRequest, ShoppingCart, Home, SearchResults},
	ShoppingCart:         {CustomerRegistration, SearchRequest, Home, ShoppingCart, ProductDetail},
	CustomerRegistration: {BuyRequest, Home, SearchRequest},
	BuyRequest:           {BuyConfirm, Home, ShoppingCart},
	BuyConfirm:           {Home, SearchRequest, OrderInquiry},
	OrderInquiry:         {OrderDisplay, Home, SearchRequest},
	OrderDisplay:         {Home, SearchRequest, OrderInquiry},
	AdminRequest:         {AdminConfirm, Home, ProductDetail},
	AdminConfirm:         {Home, ProductDetail},
}

// transitionMatrix calibrates transition probabilities on the session
// graph so the stationary distribution equals the workload's Table 1 mix.
// It uses iterative proportional fitting: repeatedly rescale the columns
// toward the target distribution and renormalize the rows, re-deriving
// the stationary distribution by power iteration.
func transitionMatrix(w Workload) [NumInteractions][NumInteractions]float64 {
	target := Mix(w)
	total := 0.0
	for _, p := range target {
		total += p
	}
	var want [NumInteractions]float64
	for i, p := range target {
		want[i] = p / total
	}

	// Start uniform over the allowed edges.
	var p [NumInteractions][NumInteractions]float64
	for i, outs := range sessionEdges {
		for _, j := range outs {
			p[i][j] = 1 / float64(len(outs))
		}
	}

	stationary := func() [NumInteractions]float64 {
		var pi [NumInteractions]float64
		for i := range pi {
			pi[i] = 1.0 / float64(NumInteractions)
		}
		for it := 0; it < 300; it++ {
			var next [NumInteractions]float64
			for i := range pi {
				for j := range pi {
					next[j] += pi[i] * p[i][j]
				}
			}
			pi = next
		}
		return pi
	}

	for round := 0; round < 400; round++ {
		pi := stationary()
		worst := 0.0
		for j := range pi {
			if pi[j] <= 0 {
				continue
			}
			if d := math.Abs(pi[j] - want[j]); d > worst {
				worst = d
			}
		}
		if worst < 1e-7 {
			break
		}
		// Column rescale toward the target, then row renormalize.
		for i := range p {
			rowSum := 0.0
			for j := range p[i] {
				if p[i][j] > 0 && pi[j] > 0 {
					p[i][j] *= want[j] / pi[j]
				}
				rowSum += p[i][j]
			}
			if rowSum > 0 {
				for j := range p[i] {
					p[i][j] /= rowSum
				}
			}
		}
	}
	return p
}

// matrixCache memoizes the calibrated matrices (deterministic, so safe to
// share). Access is guarded by matrixMu: labs are single-threaded
// internally, but the parallel experiment runners build labs for several
// workloads concurrently, so first-use population can race.
var (
	matrixMu    sync.Mutex
	matrixCache = map[Workload]*[NumInteractions][NumInteractions]float64{}
)

func matrixFor(w Workload) *[NumInteractions][NumInteractions]float64 {
	matrixMu.Lock()
	defer matrixMu.Unlock()
	if m, ok := matrixCache[w]; ok {
		return m
	}
	m := transitionMatrix(w)
	matrixCache[w] = &m
	return &m
}

// SessionSampler draws interactions by walking the TPC-W session graph.
// Its long-run interaction frequencies match the workload's Table 1 mix.
type SessionSampler struct {
	src *rng.Source
	p   *[NumInteractions][NumInteractions]float64
	cur Interaction
}

// NewSessionSampler creates a session walk starting at the Home page.
func NewSessionSampler(w Workload, src *rng.Source) *SessionSampler {
	return &SessionSampler{src: src, p: matrixFor(w), cur: Home}
}

// SetWorkload switches the sampler to another mix; the walk continues
// from the current page.
func (s *SessionSampler) SetWorkload(w Workload) { s.p = matrixFor(w) }

// Current returns the page the session is on.
func (s *SessionSampler) Current() Interaction { return s.cur }

// Next advances the session and returns the new page.
func (s *SessionSampler) Next() Interaction {
	u := s.src.Float64()
	acc := 0.0
	row := s.p[s.cur]
	for j, pr := range row {
		acc += pr
		if u < acc {
			s.cur = Interaction(j)
			return s.cur
		}
	}
	// Rounding residue: take the last reachable page.
	outs := sessionEdges[s.cur]
	s.cur = outs[len(outs)-1]
	return s.cur
}

// StationaryError returns the largest absolute deviation (in percentage
// points) between the calibrated walk's stationary distribution and the
// Table 1 mix — a diagnostic for the calibration quality.
func StationaryError(w Workload) float64 {
	p := matrixFor(w)
	var pi [NumInteractions]float64
	for i := range pi {
		pi[i] = 1.0 / float64(NumInteractions)
	}
	for it := 0; it < 500; it++ {
		var next [NumInteractions]float64
		for i := range pi {
			for j := range pi {
				next[j] += pi[i] * p[i][j]
			}
		}
		pi = next
	}
	mix := Mix(w)
	worst := 0.0
	for j := range pi {
		if d := math.Abs(pi[j]*100 - mix[j]); d > worst {
			worst = d
		}
	}
	return worst
}

// validateGraph panics if the session graph references an unknown page or
// leaves a page without exits; run by tests.
func validateGraph() error {
	for i, outs := range sessionEdges {
		if len(outs) == 0 {
			return fmt.Errorf("tpcw: page %v has no exits", Interaction(i))
		}
		for _, j := range outs {
			if j < 0 || int(j) >= NumInteractions {
				return fmt.Errorf("tpcw: page %v links to invalid page %d", Interaction(i), j)
			}
		}
	}
	return nil
}
