package tpcw

import (
	"math"
	"testing"

	"webharmony/internal/rng"
)

func TestSessionGraphValid(t *testing.T) {
	if err := validateGraph(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionGraphOrderFunnel(t *testing.T) {
	// The purchase funnel must be navigable: Cart → Registration →
	// Buy Request → Buy Confirm.
	has := func(from, to Interaction) bool {
		for _, j := range sessionEdges[from] {
			if j == to {
				return true
			}
		}
		return false
	}
	if !has(ShoppingCart, CustomerRegistration) ||
		!has(CustomerRegistration, BuyRequest) ||
		!has(BuyRequest, BuyConfirm) {
		t.Fatal("purchase funnel broken")
	}
	// Search results only via a search request.
	for i, outs := range sessionEdges {
		for _, j := range outs {
			if j == SearchResults && Interaction(i) != SearchRequest && Interaction(i) != SearchResults {
				t.Fatalf("%v links directly to search results", Interaction(i))
			}
		}
	}
}

func TestTransitionMatrixRowsNormalized(t *testing.T) {
	for _, w := range Workloads() {
		p := matrixFor(w)
		for i := range p {
			sum := 0.0
			for j := range p[i] {
				if p[i][j] < 0 {
					t.Fatalf("%v: negative probability at %v→%v", w, Interaction(i), Interaction(j))
				}
				// Off-graph transitions must stay zero.
				allowed := false
				for _, k := range sessionEdges[i] {
					if int(k) == j {
						allowed = true
					}
				}
				if !allowed && p[i][j] != 0 {
					t.Fatalf("%v: probability on non-edge %v→%v", w, Interaction(i), Interaction(j))
				}
				sum += p[i][j]
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("%v: row %v sums to %v", w, Interaction(i), sum)
			}
		}
	}
}

func TestSessionStationaryMatchesTable1(t *testing.T) {
	for _, w := range Workloads() {
		if err := StationaryError(w); err > 0.05 {
			t.Errorf("%v: stationary distribution deviates %.3f points from Table 1", w, err)
		}
	}
}

func TestSessionWalkFrequenciesMatchTable1(t *testing.T) {
	for _, w := range Workloads() {
		s := NewSessionSampler(w, rng.New(uint64(w)*7+1))
		var counts [NumInteractions]int
		const n = 400000
		for i := 0; i < n; i++ {
			counts[s.Next()]++
		}
		mix := Mix(w)
		for i, want := range mix {
			got := float64(counts[i]) / n * 100
			if math.Abs(got-want) > 0.4 {
				t.Errorf("%v %v: walked %.2f%%, Table 1 %.2f%%", w, Interaction(i), got, want)
			}
		}
	}
}

func TestSessionWalkOnlyUsesGraphEdges(t *testing.T) {
	s := NewSessionSampler(Shopping, rng.New(5))
	prev := s.Current()
	for i := 0; i < 20000; i++ {
		next := s.Next()
		found := false
		for _, j := range sessionEdges[prev] {
			if j == next {
				found = true
			}
		}
		if !found {
			t.Fatalf("walk used non-edge %v→%v", prev, next)
		}
		prev = next
	}
}

func TestSessionStartsAtHome(t *testing.T) {
	s := NewSessionSampler(Browsing, rng.New(1))
	if s.Current() != Home {
		t.Fatal("session should start at Home")
	}
}

func TestSessionSetWorkloadShiftsMix(t *testing.T) {
	s := NewSessionSampler(Browsing, rng.New(9))
	for i := 0; i < 1000; i++ {
		s.Next()
	}
	s.SetWorkload(Ordering)
	orders := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if s.Next().Class() == ClassOrder {
			orders++
		}
	}
	share := float64(orders) / n
	if math.Abs(share-0.5) > 0.02 {
		t.Fatalf("order share after switch = %v, want ~0.5", share)
	}
}

func TestSessionDeterministicGivenSeed(t *testing.T) {
	a := NewSessionSampler(Shopping, rng.New(11))
	b := NewSessionSampler(Shopping, rng.New(11))
	for i := 0; i < 5000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("walk diverged at step %d", i)
		}
	}
}

func BenchmarkSessionSamplerNext(b *testing.B) {
	s := NewSessionSampler(Shopping, rng.New(1))
	for i := 0; i < b.N; i++ {
		s.Next()
	}
}
