package tpcw

import (
	"math"
	"testing"

	"webharmony/internal/rng"
	"webharmony/internal/simnet"
	"webharmony/internal/webobj"
)

func TestMixesSumTo100(t *testing.T) {
	for _, w := range Workloads() {
		m := Mix(w)
		sum := 0.0
		for _, p := range m {
			sum += p
		}
		if math.Abs(sum-100) > 0.01 {
			t.Errorf("%v mix sums to %v, want 100", w, sum)
		}
	}
}

func TestMixBrowseOrderSplit(t *testing.T) {
	// Table 1 headline splits: 95/5, 80/20, 50/50.
	want := map[Workload]float64{Browsing: 95, Shopping: 80, Ordering: 50}
	for w, browseWant := range want {
		m := Mix(w)
		browse := 0.0
		for i, p := range m {
			if Interaction(i).Class() == ClassBrowse {
				browse += p
			}
		}
		if math.Abs(browse-browseWant) > 0.01 {
			t.Errorf("%v browse share = %v, want %v", w, browse, browseWant)
		}
	}
}

func TestTable1SpotValues(t *testing.T) {
	if Mix(Browsing)[Home] != 29.00 {
		t.Error("browsing Home != 29.00")
	}
	if Mix(Shopping)[SearchRequest] != 20.00 {
		t.Error("shopping Search Request != 20.00")
	}
	if Mix(Ordering)[BuyConfirm] != 10.18 {
		t.Error("ordering Buy Confirm != 10.18")
	}
	if Mix(Ordering)[AdminConfirm] != 0.11 {
		t.Error("ordering Admin Confirm != 0.11")
	}
}

func TestInteractionNamesAndClasses(t *testing.T) {
	if Home.String() != "Home" || BuyConfirm.String() != "Buy Confirm" {
		t.Fatal("interaction names wrong")
	}
	if Interaction(-1).String() != "unknown" || Interaction(99).String() != "unknown" {
		t.Fatal("out-of-range interaction name")
	}
	if Home.Class() != ClassBrowse || SearchResults.Class() != ClassBrowse {
		t.Fatal("browse classification wrong")
	}
	if ShoppingCart.Class() != ClassOrder || AdminConfirm.Class() != ClassOrder {
		t.Fatal("order classification wrong")
	}
	if ClassBrowse.String() != "browse" || ClassOrder.String() != "order" {
		t.Fatal("class names wrong")
	}
}

func TestWorkloadString(t *testing.T) {
	if Browsing.String() != "browsing" || Shopping.String() != "shopping" ||
		Ordering.String() != "ordering" || Workload(9).String() != "unknown" {
		t.Fatal("workload names wrong")
	}
}

func TestDBActionString(t *testing.T) {
	if DBNone.String() != "none" || DBRead.String() != "read" ||
		DBJoin.String() != "join" || DBWrite.String() != "write" ||
		DBAction(9).String() != "unknown" {
		t.Fatal("DBAction names wrong")
	}
}

func TestProfilesSaneShape(t *testing.T) {
	// Order-class pages that confirm purchases must write to the DB.
	for _, i := range []Interaction{ShoppingCart, BuyRequest, BuyConfirm, AdminConfirm} {
		if ProfileOf(i).DB != DBWrite {
			t.Errorf("%v should write to the database", i)
		}
	}
	// Static pages need no database.
	for i := 0; i < NumInteractions; i++ {
		p := ProfileOf(Interaction(i))
		if p.Static && p.DB != DBNone {
			t.Errorf("%v is static but touches the DB", Interaction(i))
		}
		if !p.Static && p.DBResultKB <= 0 && p.DB != DBNone {
			t.Errorf("%v has DB work but no result size", Interaction(i))
		}
	}
	if !ProfileOf(Home).Static {
		t.Error("Home should be static")
	}
	if ProfileOf(BestSellers).DB != DBJoin {
		t.Error("Best Sellers should join")
	}
}

func TestProfileOfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad interaction")
		}
	}()
	ProfileOf(Interaction(99))
}

func TestSamplerMatchesMix(t *testing.T) {
	for _, w := range Workloads() {
		s := NewSampler(w, rng.New(uint64(w)+1))
		var counts [NumInteractions]int
		const n = 300000
		for i := 0; i < n; i++ {
			counts[s.Next()]++
		}
		m := Mix(w)
		for i, want := range m {
			got := float64(counts[i]) / n * 100
			// Within 0.35 percentage points of Table 1.
			if math.Abs(got-want) > 0.35 {
				t.Errorf("%v %v: sampled %.2f%%, want %.2f%%", w, Interaction(i), got, want)
			}
		}
	}
}

func TestSamplerSetWorkloadSwitchesMix(t *testing.T) {
	s := NewSampler(Browsing, rng.New(3))
	s.SetWorkload(Ordering)
	orders := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Next().Class() == ClassOrder {
			orders++
		}
	}
	share := float64(orders) / n
	if math.Abs(share-0.5) > 0.01 {
		t.Fatalf("after switch order share = %v, want 0.5", share)
	}
}

func TestPageGenRespectProfiles(t *testing.T) {
	cat := webobj.NewCatalog(1000, 1)
	g := NewPageGen(cat, rng.New(5))
	for i := 0; i < 500; i++ {
		for it := 0; it < NumInteractions; it++ {
			pr := g.Page(Interaction(it), 0)
			p := ProfileOf(Interaction(it))
			if len(pr.Images) != p.Images {
				t.Fatalf("%v: %d images, want %d", Interaction(it), len(pr.Images), p.Images)
			}
			if p.Static && pr.HTML.Kind != webobj.KindStatic {
				t.Fatalf("%v: HTML kind %v, want static", Interaction(it), pr.HTML.Kind)
			}
			if !p.Static && pr.HTML.Kind != webobj.KindDynamic {
				t.Fatalf("%v: HTML kind %v, want dynamic", Interaction(it), pr.HTML.Kind)
			}
			for _, img := range pr.Images {
				if img.Kind != webobj.KindImage {
					t.Fatalf("%v: embedded object kind %v, want image", Interaction(it), img.Kind)
				}
			}
		}
	}
}

// fakeSite completes every request after a fixed simulated latency.
type fakeSite struct {
	eng     *simnet.Engine
	latency float64
	fail    bool
	seen    int
}

func (f *fakeSite) Request(pr PageRequest, done func(bool)) {
	f.seen++
	f.eng.Schedule(f.latency, func() { done(!f.fail) })
}

func TestDriverGeneratesLoad(t *testing.T) {
	eng := &simnet.Engine{}
	site := &fakeSite{eng: eng, latency: 0.1}
	cat := webobj.NewCatalog(1000, 1)
	d := NewDriver(eng, site, cat, DriverOptions{Browsers: 20, Workload: Shopping, ThinkMean: 1, Seed: 1})
	d.Start()
	eng.RunUntil(100)
	c := d.Counters()
	if c.Total() == 0 {
		t.Fatal("no interactions completed")
	}
	// 20 EBs, ~1.1s per cycle → ≈ 1800 interactions in 100s.
	if c.Total() < 1000 || c.Total() > 2600 {
		t.Fatalf("completed = %d, want ≈1800", c.Total())
	}
	wips := c.WIPS(100)
	if wips < 10 || wips > 26 {
		t.Fatalf("WIPS = %v", wips)
	}
	// Shopping mix: ~80% browse.
	share := float64(c.Browse) / float64(c.Total())
	if math.Abs(share-0.8) > 0.05 {
		t.Fatalf("browse share = %v, want ~0.8", share)
	}
}

func TestDriverErrorsCounted(t *testing.T) {
	eng := &simnet.Engine{}
	site := &fakeSite{eng: eng, latency: 0.1, fail: true}
	cat := webobj.NewCatalog(500, 1)
	d := NewDriver(eng, site, cat, DriverOptions{Browsers: 5, ThinkMean: 1, Seed: 2})
	d.Start()
	eng.RunUntil(20)
	c := d.Counters()
	if c.Total() != 0 || c.Errors == 0 {
		t.Fatalf("counters = %+v, want only errors", c)
	}
	if c.ErrorRate() != 1 {
		t.Fatalf("ErrorRate = %v, want 1", c.ErrorRate())
	}
}

func TestDriverStopHaltsTraffic(t *testing.T) {
	eng := &simnet.Engine{}
	site := &fakeSite{eng: eng, latency: 0.1}
	cat := webobj.NewCatalog(500, 1)
	d := NewDriver(eng, site, cat, DriverOptions{Browsers: 5, ThinkMean: 0.5, Seed: 3})
	d.Start()
	eng.RunUntil(10)
	d.Stop()
	seenAtStop := site.seen
	eng.RunUntil(30)
	// In-flight interactions may finish, but no new ones are issued after
	// each browser's current cycle ends.
	if site.seen > seenAtStop+5 {
		t.Fatalf("traffic continued after Stop: %d → %d", seenAtStop, site.seen)
	}
	if d.Running() {
		t.Fatal("Running() true after Stop")
	}
}

func TestDriverSetWorkloadMidRun(t *testing.T) {
	eng := &simnet.Engine{}
	site := &fakeSite{eng: eng, latency: 0.01}
	cat := webobj.NewCatalog(500, 1)
	d := NewDriver(eng, site, cat, DriverOptions{Browsers: 50, Workload: Browsing, ThinkMean: 0.2, Seed: 4})
	d.Start()
	eng.RunUntil(50)
	d.ResetCounters()
	d.SetWorkload(Ordering)
	if d.Workload() != Ordering {
		t.Fatal("workload not switched")
	}
	eng.RunUntil(150)
	c := d.Counters()
	share := float64(c.Order) / float64(c.Total())
	if math.Abs(share-0.5) > 0.05 {
		t.Fatalf("order share after switch = %v, want ~0.5", share)
	}
}

func TestDriverDeterminism(t *testing.T) {
	run := func() Counters {
		eng := &simnet.Engine{}
		site := &fakeSite{eng: eng, latency: 0.05}
		cat := webobj.NewCatalog(500, 9)
		d := NewDriver(eng, site, cat, DriverOptions{Browsers: 10, ThinkMean: 1, Seed: 11})
		d.Start()
		eng.RunUntil(50)
		return d.Counters()
	}
	if run() != run() {
		t.Fatal("driver not deterministic for fixed seed")
	}
}

func TestCountersHelpers(t *testing.T) {
	var c Counters
	if c.WIPS(10) != 0 || c.ErrorRate() != 0 || c.WIPS(0) != 0 {
		t.Fatal("zero counters should yield zeros")
	}
	c.Browse = 80
	c.Order = 20
	c.Errors = 25
	if c.Total() != 100 {
		t.Fatal("Total wrong")
	}
	if c.WIPS(50) != 2 {
		t.Fatalf("WIPS = %v, want 2", c.WIPS(50))
	}
	if c.ErrorRate() != 0.2 {
		t.Fatalf("ErrorRate = %v, want 0.2", c.ErrorRate())
	}
}

func BenchmarkSamplerNext(b *testing.B) {
	s := NewSampler(Shopping, rng.New(1))
	for i := 0; i < b.N; i++ {
		s.Next()
	}
}

func BenchmarkPageGen(b *testing.B) {
	cat := webobj.NewCatalog(10000, 1)
	g := NewPageGen(cat, rng.New(1))
	s := NewSampler(Shopping, rng.New(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Page(s.Next(), i%100)
	}
}

func TestDriverSessionMode(t *testing.T) {
	eng := &simnet.Engine{}
	site := &fakeSite{eng: eng, latency: 0.02}
	cat := webobj.NewCatalog(500, 1)
	d := NewDriver(eng, site, cat, DriverOptions{
		Browsers: 40, Workload: Ordering, ThinkMean: 0.2, Seed: 6, Sessions: true,
	})
	d.Start()
	eng.RunUntil(400)
	c := d.Counters()
	if c.Total() == 0 {
		t.Fatal("no traffic in session mode")
	}
	// Long-run class split still matches Table 1 (50/50 for ordering).
	share := float64(c.Order) / float64(c.Total())
	if math.Abs(share-0.5) > 0.03 {
		t.Fatalf("session-mode order share = %v, want ~0.5", share)
	}
	// Workload switches propagate to sessions.
	d.ResetCounters()
	d.SetWorkload(Browsing)
	eng.RunUntil(800)
	c = d.Counters()
	share = float64(c.Order) / float64(c.Total())
	if share > 0.1 {
		t.Fatalf("after switch order share = %v, want ~0.05", share)
	}
}

func TestDriverResponseTimesRecorded(t *testing.T) {
	eng := &simnet.Engine{}
	site := &fakeSite{eng: eng, latency: 0.25}
	cat := webobj.NewCatalog(500, 1)
	d := NewDriver(eng, site, cat, DriverOptions{Browsers: 5, ThinkMean: 1, Seed: 7})
	d.Start()
	eng.RunUntil(60)
	rt := d.ResponseTimes()
	if rt.N() == 0 {
		t.Fatal("no response times recorded")
	}
	if m := rt.Mean(); math.Abs(m-0.25) > 1e-9 {
		t.Fatalf("mean response = %v, want 0.25 (fixed latency)", m)
	}
	d.ResetCounters()
	if d.ResponseTimes().N() != 0 {
		t.Fatal("response times survived ResetCounters")
	}
}
