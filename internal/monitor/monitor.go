// Package monitor observes per-node resource utilization over tuning
// windows and classifies nodes against the low/high thresholds used by the
// automatic reconfiguration algorithm of §IV (Table 5: R_ij, LT_ij, HT_ij).
package monitor

import (
	"webharmony/internal/cluster"
)

// Thresholds holds the per-resource low and high utilization thresholds
// (the paper's LT and HT). Readings below every low threshold mark a node
// under-utilized; any reading above its high threshold marks it
// over-utilized.
type Thresholds struct {
	Low  [cluster.NumResources]float64
	High [cluster.NumResources]float64
}

// DefaultThresholds returns the thresholds used in the experiments.
func DefaultThresholds() Thresholds {
	var t Thresholds
	t.Low[cluster.ResCPU] = 0.40
	t.Low[cluster.ResMemory] = 0.70
	t.Low[cluster.ResNet] = 0.30
	t.Low[cluster.ResDisk] = 0.30
	t.High[cluster.ResCPU] = 0.85
	t.High[cluster.ResMemory] = 0.95
	t.High[cluster.ResNet] = 0.80
	t.High[cluster.ResDisk] = 0.80
	return t
}

// Reading is one node's utilization over the observed window.
type Reading struct {
	Node int
	Tier cluster.Tier
	Util [cluster.NumResources]float64
}

// Overloaded reports whether any resource exceeds its high threshold.
func (r Reading) Overloaded(t Thresholds) bool {
	for j := 0; j < cluster.NumResources; j++ {
		if r.Util[j] > t.High[j] {
			return true
		}
	}
	return false
}

// Underloaded reports whether every resource is below its low threshold
// (the paper's step 2: R_ij <= LT_ij for all j).
func (r Reading) Underloaded(t Thresholds) bool {
	for j := 0; j < cluster.NumResources; j++ {
		if r.Util[j] > t.Low[j] {
			return false
		}
	}
	return true
}

// Urgency scores how badly the node needs relief: the threshold excess of
// each resource weighted by the priority order (earlier resources in order
// matter more — the paper's footnote 3, e.g. an overloaded CPU is a bigger
// problem than a saturated NIC). A non-overloaded node scores 0.
func (r Reading) Urgency(t Thresholds, order []cluster.Resource) float64 {
	score := 0.0
	weight := float64(len(order))
	for _, res := range order {
		if excess := r.Util[res] - t.High[res]; excess > 0 {
			score += excess * weight
		}
		weight--
	}
	return score
}

// DefaultUrgencyOrder puts CPU first, then memory, disk, and network.
func DefaultUrgencyOrder() []cluster.Resource {
	return []cluster.Resource{cluster.ResCPU, cluster.ResMemory, cluster.ResDisk, cluster.ResNet}
}

// Monitor snapshots a cluster's counters and produces per-node readings.
type Monitor struct {
	cl    *cluster.Cluster
	snaps map[int]cluster.UtilSnapshot
}

// New creates a monitor over the cluster.
func New(cl *cluster.Cluster) *Monitor {
	return &Monitor{cl: cl, snaps: make(map[int]cluster.UtilSnapshot)}
}

// Begin starts a new observation window.
func (m *Monitor) Begin() {
	for _, n := range m.cl.Nodes() {
		m.snaps[n.ID()] = n.Snapshot()
	}
}

// Collect returns the utilization of every node since Begin. Nodes added
// after Begin are skipped.
func (m *Monitor) Collect() []Reading {
	var out []Reading
	for _, n := range m.cl.Nodes() {
		snap, ok := m.snaps[n.ID()]
		if !ok {
			continue
		}
		out = append(out, Reading{
			Node: n.ID(),
			Tier: n.Tier(),
			Util: n.Utilization(snap),
		})
	}
	return out
}
