package monitor

import (
	"bytes"
	"strings"
	"testing"

	"webharmony/internal/cluster"
	"webharmony/internal/simnet"
)

func TestTimelineSamples(t *testing.T) {
	eng := &simnet.Engine{}
	cl := cluster.New(eng, cluster.DefaultHardware(), 1, 1, 1)
	tl := NewTimeline(eng, cl, 5)
	tl.Start()
	// Keep node 0's CPU fully busy for the whole run.
	cl.Node(0).CPU().Submit(1000, nil)
	cl.Node(0).CPU().Submit(1000, nil)
	eng.RunUntil(26)
	tl.Stop()
	pts := tl.Points()
	// 5 sampling instants × 3 nodes.
	if len(pts) != 15 {
		t.Fatalf("points = %d, want 15", len(pts))
	}
	times, vals := tl.NodeSeries(0, cluster.ResCPU)
	if len(times) != 5 {
		t.Fatalf("node series length = %d", len(times))
	}
	for i, v := range vals {
		if v < 0.99 {
			t.Fatalf("sample %d: node0 CPU %v, want ~1", i, v)
		}
	}
	if times[0] != 5 || times[4] != 25 {
		t.Fatalf("sample times = %v", times)
	}
	_, idle := tl.NodeSeries(1, cluster.ResCPU)
	for _, v := range idle {
		if v != 0 {
			t.Fatal("idle node shows load")
		}
	}
}

func TestTimelineStopsSampling(t *testing.T) {
	eng := &simnet.Engine{}
	cl := cluster.New(eng, cluster.DefaultHardware(), 1, 1, 1)
	tl := NewTimeline(eng, cl, 2)
	tl.Start()
	eng.RunUntil(5)
	tl.Stop()
	n := len(tl.Points())
	// Keep the engine alive with an unrelated event.
	eng.Schedule(10, func() {})
	eng.RunUntil(20)
	if len(tl.Points()) != n {
		t.Fatal("sampling continued after Stop")
	}
	tl.Start() // restart works
	eng.Schedule(10, func() {})
	eng.RunUntil(30)
	if len(tl.Points()) == n {
		t.Fatal("sampling did not resume after restart")
	}
}

func TestTimelineWriteCSV(t *testing.T) {
	eng := &simnet.Engine{}
	cl := cluster.New(eng, cluster.DefaultHardware(), 1, 1, 1)
	tl := NewTimeline(eng, cl, 1)
	tl.Start()
	eng.RunUntil(3)
	var buf bytes.Buffer
	if err := tl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "time,node,tier,cpu,memory,net,disk") {
		t.Fatalf("header wrong: %s", out)
	}
	if !strings.Contains(out, "proxy") || !strings.Contains(out, "db") {
		t.Fatalf("tiers missing: %s", out)
	}
}

func TestTimelinePanicsOnBadInterval(t *testing.T) {
	eng := &simnet.Engine{}
	cl := cluster.New(eng, cluster.DefaultHardware(), 1, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewTimeline(eng, cl, 0)
}

func TestTimelineDoubleStartIdempotent(t *testing.T) {
	eng := &simnet.Engine{}
	cl := cluster.New(eng, cluster.DefaultHardware(), 1, 1, 1)
	tl := NewTimeline(eng, cl, 1)
	tl.Start()
	tl.Start()
	eng.RunUntil(2.5)
	if len(tl.Points()) != 6 { // 2 instants × 3 nodes
		t.Fatalf("points = %d, want 6 (double Start must not double-sample)", len(tl.Points()))
	}
}
