package monitor

import (
	"testing"

	"webharmony/internal/cluster"
	"webharmony/internal/simnet"
)

func reading(cpu, mem, net, disk float64, tier cluster.Tier) Reading {
	var r Reading
	r.Tier = tier
	r.Util[cluster.ResCPU] = cpu
	r.Util[cluster.ResMemory] = mem
	r.Util[cluster.ResNet] = net
	r.Util[cluster.ResDisk] = disk
	return r
}

func TestOverUnderClassification(t *testing.T) {
	th := DefaultThresholds()
	hot := reading(0.95, 0.2, 0.1, 0.1, cluster.TierApp)
	if !hot.Overloaded(th) {
		t.Fatal("0.95 CPU not overloaded")
	}
	if hot.Underloaded(th) {
		t.Fatal("hot node classified underloaded")
	}
	cold := reading(0.05, 0.3, 0.02, 0.01, cluster.TierProxy)
	if cold.Overloaded(th) {
		t.Fatal("cold node classified overloaded")
	}
	if !cold.Underloaded(th) {
		t.Fatal("cold node not underloaded")
	}
	mid := reading(0.5, 0.4, 0.2, 0.2, cluster.TierDB)
	if mid.Overloaded(th) || mid.Underloaded(th) {
		t.Fatal("mid node misclassified")
	}
}

func TestUnderloadedRequiresAllResources(t *testing.T) {
	th := DefaultThresholds()
	// CPU idle but disk busy: NOT underloaded (step 2 requires all).
	r := reading(0.05, 0.2, 0.05, 0.7, cluster.TierProxy)
	if r.Underloaded(th) {
		t.Fatal("node with busy disk classified underloaded")
	}
}

func TestUrgencyOrdering(t *testing.T) {
	th := DefaultThresholds()
	order := DefaultUrgencyOrder()
	cpuHot := reading(0.95, 0.2, 0.1, 0.1, cluster.TierApp)
	netHot := reading(0.2, 0.2, 0.90, 0.1, cluster.TierProxy)
	if cpuHot.Urgency(th, order) <= netHot.Urgency(th, order) {
		t.Fatal("CPU overload should be more urgent than net overload")
	}
	cool := reading(0.2, 0.2, 0.2, 0.2, cluster.TierDB)
	if cool.Urgency(th, order) != 0 {
		t.Fatal("cool node has non-zero urgency")
	}
}

func TestMonitorCollect(t *testing.T) {
	eng := &simnet.Engine{}
	cl := cluster.New(eng, cluster.DefaultHardware(), 1, 1, 1)
	m := New(cl)
	m.Begin()
	// Load node 0's CPU fully for the window.
	cl.Node(0).CPU().Submit(100, nil)
	cl.Node(0).CPU().Submit(100, nil)
	eng.RunUntil(10)
	rs := m.Collect()
	if len(rs) != 3 {
		t.Fatalf("collected %d readings", len(rs))
	}
	if rs[0].Node != 0 || rs[0].Tier != cluster.TierProxy {
		t.Fatal("reading identity wrong")
	}
	if rs[0].Util[cluster.ResCPU] < 0.99 {
		t.Fatalf("node0 CPU util = %v, want ~1", rs[0].Util[cluster.ResCPU])
	}
	if rs[1].Util[cluster.ResCPU] != 0 {
		t.Fatal("idle node shows CPU load")
	}
}

func TestMonitorSkipsNodesAddedAfterBegin(t *testing.T) {
	eng := &simnet.Engine{}
	cl := cluster.New(eng, cluster.DefaultHardware(), 1, 1, 1)
	m := New(cl)
	m.Begin()
	rs := m.Collect()
	if len(rs) != 3 {
		t.Fatal("expected 3 readings")
	}
	// A fresh monitor without Begin yields nothing.
	m2 := New(cl)
	if len(m2.Collect()) != 0 {
		t.Fatal("Collect before Begin should be empty")
	}
}
