package monitor

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"webharmony/internal/cluster"
	"webharmony/internal/simnet"
)

// TimelinePoint is one periodic utilization sample of one node.
type TimelinePoint struct {
	Time float64
	Node int
	Tier cluster.Tier
	Util [cluster.NumResources]float64
}

// Timeline periodically samples every node's utilization while the
// simulation runs — the data behind Figure 7-style utilization plots
// ("CPU utilization is always close to 100%", "some proxy servers are
// idling"). Sampling is driven by the simulated clock.
type Timeline struct {
	eng      *simnet.Engine
	cl       *cluster.Cluster
	interval float64
	points   []TimelinePoint
	snaps    map[int]cluster.UtilSnapshot
	timer    simnet.Timer
	running  bool
}

// NewTimeline creates a recorder sampling every interval simulated
// seconds. Start must be called to begin recording.
func NewTimeline(eng *simnet.Engine, cl *cluster.Cluster, interval float64) *Timeline {
	if interval <= 0 {
		panic("monitor: timeline interval must be positive")
	}
	return &Timeline{eng: eng, cl: cl, interval: interval, snaps: make(map[int]cluster.UtilSnapshot)}
}

// Start begins sampling; each sample covers the interval since the
// previous one.
func (t *Timeline) Start() {
	if t.running {
		return
	}
	t.running = true
	for _, n := range t.cl.Nodes() {
		t.snaps[n.ID()] = n.Snapshot()
	}
	t.schedule()
}

func (t *Timeline) schedule() {
	t.timer = t.eng.Schedule(t.interval, func() {
		if !t.running {
			return
		}
		t.sample()
		t.schedule()
	})
}

func (t *Timeline) sample() {
	now := t.eng.Now()
	for _, n := range t.cl.Nodes() {
		snap, ok := t.snaps[n.ID()]
		if !ok {
			t.snaps[n.ID()] = n.Snapshot()
			continue
		}
		t.points = append(t.points, TimelinePoint{
			Time: now,
			Node: n.ID(),
			Tier: n.Tier(),
			Util: n.Utilization(snap),
		})
		t.snaps[n.ID()] = n.Snapshot()
	}
}

// Stop halts sampling; recorded points remain available.
func (t *Timeline) Stop() {
	t.running = false
	t.timer.Cancel()
}

// Points returns the recorded samples in time order.
func (t *Timeline) Points() []TimelinePoint { return t.points }

// NodeSeries returns the time series of one resource on one node.
func (t *Timeline) NodeSeries(node int, res cluster.Resource) (times, values []float64) {
	for _, p := range t.points {
		if p.Node == node {
			times = append(times, p.Time)
			values = append(values, p.Util[res])
		}
	}
	return times, values
}

// WriteCSV writes the timeline as time,node,tier,cpu,memory,net,disk rows.
func (t *Timeline) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time", "node", "tier", "cpu", "memory", "net", "disk"}); err != nil {
		return err
	}
	for _, p := range t.points {
		rec := []string{
			strconv.FormatFloat(p.Time, 'f', 3, 64),
			strconv.Itoa(p.Node),
			p.Tier.String(),
			fmt.Sprintf("%.4f", p.Util[cluster.ResCPU]),
			fmt.Sprintf("%.4f", p.Util[cluster.ResMemory]),
			fmt.Sprintf("%.4f", p.Util[cluster.ResNet]),
			fmt.Sprintf("%.4f", p.Util[cluster.ResDisk]),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
