module webharmony

go 1.22
