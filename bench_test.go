package webharmony

import (
	"fmt"
	"testing"

	"webharmony/internal/cluster"
	"webharmony/internal/db"
	"webharmony/internal/harmony"
	"webharmony/internal/param"
	"webharmony/internal/rng"
	"webharmony/internal/simplex"
	"webharmony/internal/stats"
	"webharmony/internal/tpcw"
	"webharmony/internal/websim"
)

// benchLab is the setup used by the experiment benchmarks: the quick-scale
// cluster (each full experiment below runs in seconds rather than the
// paper's multi-hour wall-clock).
func benchLab() LabConfig { return QuickLab() }

// --- Table 1: TPC-W workload mixes -----------------------------------------

// BenchmarkTable1MixGeneration draws interactions from each Table 1 mix;
// the mix percentages themselves are verified by the tpcw test suite.
func BenchmarkTable1MixGeneration(b *testing.B) {
	samplers := make([]*tpcw.Sampler, 0, 3)
	for i, w := range Workloads() {
		samplers = append(samplers, tpcw.NewSampler(w, rng.New(uint64(i)+1)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		samplers[i%len(samplers)].Next()
	}
}

// --- Figure 3: simplex method steps -----------------------------------------

// BenchmarkFigure3SimplexStep measures one ask/tell cycle of the adapted
// Nelder-Mead kernel on a Table 3-sized (23-parameter) space.
func BenchmarkFigure3SimplexStep(b *testing.B) {
	var defs []param.Def
	for _, t := range cluster.Tiers() {
		defs = append(defs, websim.SpaceFor(t).Defs()...)
	}
	for i := range defs {
		defs[i].Name = defs[i].Name + string(rune('a'+i%26)) // dedupe
	}
	sp := param.MustSpace(defs...)
	nm := simplex.NewNelderMead(sp, simplex.Options{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := nm.Ask()
		nm.Tell(float64(cfg[0]))
	}
}

// --- §III.A: single-workload tuning -----------------------------------------

// BenchmarkSection3ATuningIteration measures one complete tuning iteration
// (restart + warm + measure + cool + simplex update) on the 4-machine lab.
func BenchmarkSection3ATuningIteration(b *testing.B) {
	lab := NewLab(benchLab(), Browsing)
	st := harmony.NewStrategy(harmony.StrategyDefault, lab, 0, harmony.Options{Seed: 1})
	b.ResetTimer()
	var last float64
	for i := 0; i < b.N; i++ {
		last = st.Step()
	}
	b.ReportMetric(last, "WIPS")
}

// BenchmarkSection3A reproduces the §III.A browsing and ordering numbers.
func BenchmarkSection3A(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, w := range []Workload{Browsing, Ordering} {
			res := TuneWorkload(benchLab(), w, 100, 8, harmony.Options{Seed: 7})
			b.ReportMetric(100*res.AvgImprovement, w.String()+"_improvement_%")
			b.ReportMetric(100*res.FracBetter, w.String()+"_beats_default_%")
		}
	}
}

// --- Figure 4 + Table 3: cross-workload configurations ----------------------

// BenchmarkFigure4CrossWorkload reproduces the Figure 4 matrix (and the
// Table 3 tuned configurations, printed under -v).
func BenchmarkFigure4CrossWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := RunFigure4(benchLab(), 80, 6, harmony.Options{Seed: 4})
		for _, w := range Workloads() {
			b.ReportMetric(100*res.Improvement[w], w.String()+"_improvement_%")
		}
		if i == 0 {
			b.Logf("Figure 4 matrix: %v (defaults %v)", res.Matrix, res.Default)
		}
	}
}

// BenchmarkFigure4ParallelSpeedup measures the wall-clock effect of the
// bounded worker pool on the Figure 4 fan-out (3 independent tuning runs,
// then 9 evaluation matrix cells). The exported results are bit-for-bit
// identical at every worker count (see TestRunFigure4ParallelDeterminism);
// on a 4-core machine workers=4 should be ≥2× faster than workers=1.
func BenchmarkFigure4ParallelSpeedup(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := benchLab()
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				RunFigure4(cfg, 20, 4, harmony.Options{Seed: 4})
			}
		})
	}
}

// BenchmarkTable3FullTuning measures the full 23-parameter tuning run that
// produces one column of Table 3 (200 iterations, as in the paper).
func BenchmarkTable3FullTuning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := TuneWorkload(benchLab(), Shopping, 200, 6, harmony.Options{Seed: 9})
		b.ReportMetric(res.BestWIPS, "best_WIPS")
		if i == 0 {
			for tier, cfg := range res.BestConfigs {
				b.Logf("Table 3 shopping column, %v tier: %v", tier, cfg)
			}
		}
	}
}

// --- Figure 5: responsiveness to workload changes ---------------------------

// BenchmarkFigure5Responsiveness reproduces the changing-workload run.
func BenchmarkFigure5Responsiveness(b *testing.B) {
	seq := []Workload{Browsing, Shopping, Ordering}
	for i := 0; i < b.N; i++ {
		res := RunFigure5(benchLab(), seq, 25, 4,
			harmony.Options{Seed: 5, ShiftFactor: 0.25})
		sum := 0
		for _, r := range res.Recovery {
			sum += r
		}
		if len(res.Recovery) > 0 {
			b.ReportMetric(float64(sum)/float64(len(res.Recovery)), "recovery_iters")
		}
	}
}

// BenchmarkFigure5Speculative measures the wall-clock effect of the
// speculative lookahead engine on the responsiveness run: candidate
// evaluations fan out over forked labs while commits stay in proposal
// order, so the result is bit-for-bit identical at every worker count
// (see TestFigure5SpeculativeMatchesSequential). Short phases and a
// sensitive shift factor keep the tell-independent fraction high — every
// shift restart re-opens a full initial-simplex batch of 8–10 concurrent
// candidates — so workers=4 should be ≥1.5× faster than workers=1 on a
// 4-core machine (like BenchmarkFigure4ParallelSpeedup, the gain needs
// real cores; the committed results are identical regardless).
func BenchmarkFigure5Speculative(b *testing.B) {
	seq := []Workload{Browsing, Shopping, Ordering}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := benchLab()
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				res := RunFigure5(cfg, seq, 10, 4,
					harmony.Options{Seed: 5, ShiftFactor: 0.05})
				b.ReportMetric(float64(res.Restarts), "restarts")
			}
		})
	}
}

// --- Evaluation memoization (DESIGN.md §10) ---------------------------------

// benchMemo runs one experiment body with the evaluation cache off and
// on. Each b.N iteration builds a fresh cache, so memo=on measures a
// cold run (every hit earned within the run, none carried across
// iterations) — the honest wall-clock comparison.
func benchMemo(b *testing.B, run func(cfg LabConfig)) {
	b.Helper()
	for _, memo := range []bool{false, true} {
		name := "memo=off"
		if memo {
			name = "memo=on"
		}
		b.Run(name, func(b *testing.B) {
			var hitRate float64
			for i := 0; i < b.N; i++ {
				cfg := benchLab()
				if memo {
					cfg.EvalCache = NewEvalCache()
				}
				run(cfg)
				if memo {
					hitRate = cfg.EvalCache.Stats().HitRate()
				}
			}
			if memo {
				b.ReportMetric(100*hitRate, "hit_%")
			}
		})
	}
}

// BenchmarkFigure4Memoized measures the content-addressed evaluation
// cache on the Figure 4 run with 16 evaluation windows per baseline and
// matrix cell: under hermetic evaluation the windows of one (config,
// workload) pair share a key, the 9 matrix cells re-measure just 9
// distinct pairs, the diagonal cells re-measure configurations the
// tuning phase already evaluated, and the tuners occasionally re-propose
// lattice points — so the cache absorbs ~43% of the 432 evaluations.
// memo=on must produce byte-identical results (TestMemoByteEquality) in
// ≥25% less wall-clock than memo=off (measured: 40%).
func BenchmarkFigure4Memoized(b *testing.B) {
	benchMemo(b, func(cfg LabConfig) {
		RunFigure4(cfg, 80, 16, harmony.Options{Seed: 4})
	})
}

// BenchmarkTable4Memoized measures the cache on the Table 4 method
// comparison (four tuning methods plus the baseline on the 2/2/2
// cluster), same contract as BenchmarkFigure4Memoized. 32 iterations
// keeps the run inside the methods' initial-exploration phase, where the
// four strategies walk overlapping lattice neighbourhoods of the shared
// default configuration and the cache absorbs ~31% of the evaluations
// across arms (measured: 30% less wall-clock); at longer horizons the
// methods diverge and the hit rate decays toward the within-method
// re-proposal rate (16% at 100 iterations).
func BenchmarkTable4Memoized(b *testing.B) {
	benchMemo(b, func(cfg LabConfig) {
		c := cfg
		c.Browsers = 400
		RunTable4(c, 32, harmony.Options{Seed: 5})
	})
}

// --- Table 4: cluster tuning methods -----------------------------------------

// BenchmarkTable4ClusterTuning reproduces the Table 4 method comparison on
// the 2/2/2 cluster.
func BenchmarkTable4ClusterTuning(b *testing.B) {
	cfg := benchLab()
	cfg.Browsers = 400
	for i := 0; i < b.N; i++ {
		res := RunTable4(cfg, 100, harmony.Options{Seed: 5})
		for _, r := range res.Rows {
			if r.Method == "none" {
				continue
			}
			b.ReportMetric(100*r.Improvement, r.Method+"_improvement_%")
			b.ReportMetric(float64(r.Iterations), r.Method+"_iters")
		}
		if i == 0 {
			for _, r := range res.Rows {
				b.Logf("Table 4: %-13s WIPS=%.1f σ=%.1f imp=%.1f%% iters=%d",
					r.Method, r.WIPS, r.StdDev, 100*r.Improvement, r.Iterations)
			}
		}
	}
}

// --- Figure 7: automatic reconfiguration -------------------------------------

func benchFig7Lab() LabConfig {
	cfg := benchLab()
	cfg.Browsers = 600
	return cfg
}

// BenchmarkFigure7aReconfiguration reproduces Figure 7(a): a proxy node
// moves to the application tier when the workload turns to ordering.
func BenchmarkFigure7aReconfiguration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := RunFigure7(benchFig7Lab(), Figure7a())
		if !res.Moved {
			b.Fatal("reconfiguration did not trigger")
		}
		b.ReportMetric(100*res.Improvement, "improvement_%")
	}
}

// BenchmarkFigure7bReconfiguration reproduces Figure 7(b): an application
// node moves to the proxy tier under a browsing workload.
func BenchmarkFigure7bReconfiguration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := RunFigure7(benchFig7Lab(), Figure7b())
		if !res.Moved {
			b.Fatal("reconfiguration did not trigger")
		}
		b.ReportMetric(100*res.Improvement, "improvement_%")
	}
}

// --- Ablations (design choices called out in DESIGN.md) ----------------------

// BenchmarkAblationTunerAlgorithms compares the simplex kernel against the
// random and coordinate baselines on the same tuning problem.
func BenchmarkAblationTunerAlgorithms(b *testing.B) {
	algos := []struct {
		name string
		algo harmony.Algorithm
	}{
		{"nelder-mead", harmony.AlgoNelderMead},
		{"random", harmony.AlgoRandom},
		{"coordinate", harmony.AlgoCoordinate},
	}
	for _, a := range algos {
		b.Run(a.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lab := NewLab(benchLab(), Shopping)
				st := harmony.NewStrategy(harmony.StrategyDuplication, lab, 0,
					harmony.Options{Algorithm: a.algo, Seed: 3})
				for k := 0; k < 50; k++ {
					st.Step()
				}
				best, _ := st.Best()
				b.ReportMetric(best, "best_WIPS")
			}
		})
	}
}

// BenchmarkAblationExtremeValueGuard compares tuning with and without the
// §III.A extreme-value guard.
func BenchmarkAblationExtremeValueGuard(b *testing.B) {
	for _, guard := range []float64{0, 0.3} {
		name := "off"
		if guard > 0 {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lab := NewLab(benchLab(), Browsing)
				st := harmony.NewStrategy(harmony.StrategyDuplication, lab, 0,
					harmony.Options{Seed: 8, GuardFactor: guard})
				for k := 0; k < 50; k++ {
					st.Step()
				}
				perf := st.Perf()
				b.ReportMetric(stats.StdDevOf(perf[len(perf)/2:]), "second_half_stddev")
				best, _ := st.Best()
				b.ReportMetric(best, "best_WIPS")
			}
		})
	}
}

// BenchmarkAblationMemoryCoupling quantifies the shared-memory coupling: a
// memory-hungry database configuration vs the default on the same load.
func BenchmarkAblationMemoryCoupling(b *testing.B) {
	dsp := db.Space()
	bloated := dsp.DefaultConfig()
	bloated[dsp.IndexOf(db.ParamThreadConcurrency)] = 128
	bloated[dsp.IndexOf(db.ParamJoinBufferSize)] = 16777216
	bloated[dsp.IndexOf(db.ParamThreadStack)] = 2097152
	bloated[dsp.IndexOf(db.ParamMaxConnections)] = 1001
	for _, tc := range []struct {
		name string
		cfg  param.Config
	}{{"default", dsp.DefaultConfig()}, {"overcommitted", bloated}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lab := NewLab(benchLab(), Shopping)
				lab.Sys.SetTierConfig(cluster.TierDB, tc.cfg)
				m := lab.MeasureIteration(true)
				b.ReportMetric(m.WIPS, "WIPS")
			}
		})
	}
}

// BenchmarkAblationHybridStrategy measures the §III.B future-work hybrid
// (duplication then partitioning) against plain duplication.
func BenchmarkAblationHybridStrategy(b *testing.B) {
	cfg := benchLab()
	cfg.Browsers = 400
	cfg.ProxyNodes, cfg.AppNodes, cfg.DBNodes = 2, 2, 2
	cfg.WorkLines = 2
	for _, kind := range []harmony.StrategyKind{harmony.StrategyDuplication, harmony.StrategyHybrid} {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lab := NewLab(cfg, Shopping)
				st := harmony.NewStrategy(kind, lab, 2, harmony.Options{Seed: 6})
				for k := 0; k < 60; k++ {
					st.Step()
				}
				best, _ := st.Best()
				b.ReportMetric(best, "best_WIPS")
			}
		})
	}
}

// BenchmarkFullIterationThroughput measures raw simulator speed: simulated
// seconds per wall second on the standard 4-machine lab.
func BenchmarkFullIterationThroughput(b *testing.B) {
	lab := NewLab(benchLab(), Shopping)
	lab.Driver.Start()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lab.Sys.Eng.RunUntil(lab.Sys.Eng.Now() + 1) // one simulated second
	}
}
