package webharmony

import (
	"io"

	"webharmony/internal/core"
)

// WriteJSON serializes any experiment result as indented JSON.
func WriteJSON(w io.Writer, result any) error { return core.WriteJSON(w, result) }

// WriteFigure4CSV writes the Figure 4 cross-workload matrix as CSV.
func WriteFigure4CSV(w io.Writer, res *Figure4Result) error {
	return core.WriteFigure4CSV(w, res)
}

// WriteFigure5CSV writes the Figure 5 responsiveness series as CSV.
func WriteFigure5CSV(w io.Writer, res *Figure5Result) error {
	return core.WriteFigure5CSV(w, res)
}

// WriteTable4CSV writes the Table 4 method comparison as CSV.
func WriteTable4CSV(w io.Writer, res *Table4Result) error {
	return core.WriteTable4CSV(w, res)
}

// WriteTable4ReplicatedCSV writes the replicated Table 4 comparison
// (mean ± σ ± CI per method plus per-replicate WIPS columns) as CSV.
func WriteTable4ReplicatedCSV(w io.Writer, res *Table4Replicated) error {
	return core.WriteTable4ReplicatedCSV(w, res)
}

// WriteSweepCSV writes a parameter sweep as long-form CSV: one row per
// (knob-combination, replicate).
func WriteSweepCSV(w io.Writer, res *SweepResult) error {
	return core.WriteSweepCSV(w, res)
}

// WriteTunedSweepCSV writes a tuned sweep as long-form CSV: one row per
// (knob-combination, replicate) with the paired default/tuned WIPS, the
// gain, and the cell's mean ± σ ± 95% CI aggregates.
func WriteTunedSweepCSV(w io.Writer, res *TunedSweepResult) error {
	return core.WriteTunedSweepCSV(w, res)
}

// WriteFigure4ReplicatedCSV writes the replicated Figure 4 matrix as
// long-form CSV: one row per (configuration, workload) with
// across-replicate mean ± σ ± 95% CI.
func WriteFigure4ReplicatedCSV(w io.Writer, res *Figure4Replicated) error {
	return core.WriteFigure4ReplicatedCSV(w, res)
}

// WriteFigure7CSV writes a Figure 7 reconfiguration run as CSV.
func WriteFigure7CSV(w io.Writer, res *Figure7Result) error {
	return core.WriteFigure7CSV(w, res)
}

// WriteFigure7ReplicatedCSV writes a replicated Figure 7 run as CSV: one
// row per iteration with across-replicate mean ± σ ± 95% CI.
func WriteFigure7ReplicatedCSV(w io.Writer, res *Figure7Replicated) error {
	return core.WriteFigure7ReplicatedCSV(w, res)
}

// WriteSeriesCSV writes an iteration-indexed series as CSV.
func WriteSeriesCSV(w io.Writer, name string, series []float64) error {
	return core.WriteSeriesCSV(w, name, series)
}
