package webharmony

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"webharmony/internal/cluster"
	"webharmony/internal/stats"
	"webharmony/internal/tpcw"
	"webharmony/internal/websim"
)

// PrintTable1 renders the TPC-W workload mixes (Table 1).
func PrintTable1(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Web Interaction\tBrowsing (WIPSb)\tShopping (WIPS)\tOrdering (WIPSo)")
	mixes := map[Workload][tpcw.NumInteractions]float64{}
	for _, wl := range Workloads() {
		mixes[wl] = tpcw.Mix(wl)
	}
	for i := 0; i < tpcw.NumInteractions; i++ {
		fmt.Fprintf(tw, "%s\t%.2f %%\t%.2f %%\t%.2f %%\n",
			tpcw.Interaction(i),
			mixes[Browsing][i], mixes[Shopping][i], mixes[Ordering][i])
	}
	tw.Flush()
}

// PrintSection3A renders the §III.A statistics of a single-workload run.
func PrintSection3A(w io.Writer, res *SingleWorkloadResult) {
	base := stats.MeanOf(res.Baseline)
	fmt.Fprintf(w, "Workload: %v\n", res.Workload)
	fmt.Fprintf(w, "  default configuration: %.1f WIPS (σ %.1f over %d iterations)\n",
		base, stats.StdDevOf(res.Baseline), len(res.Baseline))
	fmt.Fprintf(w, "  best tuned:            %.1f WIPS\n", res.BestWIPS)
	fmt.Fprintf(w, "  second-half average improvement: %+.1f%%  (paper: browsing +3%%, ordering up to +5%%)\n",
		100*res.AvgImprovement)
	fmt.Fprintf(w, "  second-half iterations beating default: %.0f%%  (paper: 78%% browsing, 85%% ordering)\n",
		100*res.FracBetter)
}

// PrintFigure4 renders the cross-workload matrix and improvement table.
func PrintFigure4(w io.Writer, res *Figure4Result) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "WIPS\trun: browsing\trun: shopping\trun: ordering")
	fmt.Fprintf(tw, "default config\t%.1f\t%.1f\t%.1f\n",
		res.Default[Browsing], res.Default[Shopping], res.Default[Ordering])
	for _, from := range Workloads() {
		fmt.Fprintf(tw, "best-of-%v\t%.1f\t%.1f\t%.1f\n", from,
			res.Matrix[from][Browsing], res.Matrix[from][Shopping], res.Matrix[from][Ordering])
	}
	tw.Flush()
	fmt.Fprintf(w, "Improvement of native tuned config over default (paper: 15%% / 16%% / 5%%):\n")
	fmt.Fprintf(w, "  browsing %+.1f%%, shopping %+.1f%%, ordering %+.1f%%\n",
		100*res.Improvement[Browsing], 100*res.Improvement[Shopping], 100*res.Improvement[Ordering])
}

// PrintFigure4Replicated renders the cross-workload matrix with every
// cell summarized across replicates: mean ± σ (±95% CI).
func PrintFigure4Replicated(w io.Writer, res *Figure4Replicated) {
	cell := func(s stats.Summary) string {
		return fmt.Sprintf("%.1f ± %.1f (±%.1f)", s.Mean, s.StdDev, s.CI95)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "WIPS mean ± σ (±95% CI)\trun: browsing\trun: shopping\trun: ordering")
	fmt.Fprintf(tw, "default config\t%s\t%s\t%s\n",
		cell(res.Default[Browsing]), cell(res.Default[Shopping]), cell(res.Default[Ordering]))
	for _, from := range Workloads() {
		fmt.Fprintf(tw, "best-of-%v\t%s\t%s\t%s\n", from,
			cell(res.Matrix[from][Browsing]), cell(res.Matrix[from][Shopping]), cell(res.Matrix[from][Ordering]))
	}
	tw.Flush()
	fmt.Fprintf(w, "Improvement of native tuned config over default, across %d replicates (paper: 15%% / 16%% / 5%%):\n",
		res.Replicates)
	for _, wl := range Workloads() {
		s := res.Improvement[wl]
		fmt.Fprintf(w, "  %v %+.1f%% ± %.1f%% (95%% CI ±%.1f%%)\n",
			wl, 100*s.Mean, 100*s.StdDev, 100*s.CI95)
	}
}

// PrintTable3 renders the tuned parameter values per workload (Table 3).
func PrintTable3(w io.Writer, res *Figure4Result) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Tunable parameter\tDefault\tBrowsing\tShopping\tOrdering")
	for _, tier := range cluster.Tiers() {
		sp := websim.SpaceFor(tier)
		fmt.Fprintf(tw, "[%v server]\t\t\t\t\n", tier)
		for i, def := range sp.Defs() {
			fmt.Fprintf(tw, "%s\t%d", def.Name, def.Default)
			for _, wl := range Workloads() {
				cfg := res.Best[wl][tier]
				if cfg == nil {
					fmt.Fprintf(tw, "\t-")
					continue
				}
				fmt.Fprintf(tw, "\t%d", cfg[i])
			}
			fmt.Fprintln(tw)
		}
	}
	tw.Flush()
}

// PrintFigure5 renders the responsiveness run: the WIPS series with the
// workload phases and per-switch recovery.
func PrintFigure5(w io.Writer, res *Figure5Result) {
	fmt.Fprintf(w, "iteration\tworkload\tWIPS\n")
	for i, v := range res.WIPS {
		mark := ""
		for _, sw := range res.Switches {
			if i == sw {
				mark = "  <- workload change"
			}
		}
		fmt.Fprintf(w, "%d\t%v\t%.1f%s\n", i+1, res.Workload[i], v, mark)
	}
	fmt.Fprintf(w, "recovery after each switch (iterations to reach 90%% of steady WIPS): %v\n", res.Recovery)
	fmt.Fprintf(w, "tuning-session restarts triggered by shift detection: %d\n", res.Restarts)
}

// PrintTable4 renders the cluster tuning method comparison.
func PrintTable4(w io.Writer, res *Table4Result) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Tuning method\tWIPS\tStd dev\tImprovement\tIterations")
	for _, r := range res.Rows {
		imp := "-"
		if r.Improvement != 0 {
			imp = fmt.Sprintf("%.1f%%", 100*r.Improvement)
		}
		iters := "-"
		if r.Iterations > 0 {
			iters = fmt.Sprintf("%d", r.Iterations)
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%s\t%s\n", r.Method, r.WIPS, r.StdDev, imp, iters)
	}
	tw.Flush()
	fmt.Fprintln(w, "(paper: none 110.4/σ2.1; default 130.6/σ30.0/159 it; duplication 133.7/σ29.5/33 it; partitioning 131.3/σ9.7/107 it)")
}

// PrintTable4Replicated renders the cluster tuning method comparison with
// across-replicate statistics: mean ± σ and a 95% confidence interval
// over R independent replicates per method.
func PrintTable4Replicated(w io.Writer, res *Table4Replicated) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Tuning method\tMean WIPS\tStd dev\t95% CI\tImprovement\tIterations")
	for _, r := range res.Rows {
		imp := "-"
		if r.Improvement != 0 {
			imp = fmt.Sprintf("%.1f%%", 100*r.Improvement)
		}
		iters := "-"
		if r.Iterations > 0 {
			iters = fmt.Sprintf("%d", r.Iterations)
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t±%.1f\t%s\t%s\n", r.Method, r.Mean, r.StdDev, r.CI95, imp, iters)
	}
	tw.Flush()
	fmt.Fprintf(w, "(%d replicates per method; σ and CI are across replicates, not within a run)\n", res.Replicates)
	fmt.Fprintln(w, "(paper: none 110.4/σ2.1; default 130.6/σ30.0/159 it; duplication 133.7/σ29.5/33 it; partitioning 131.3/σ9.7/107 it)")
}

// PrintSweep renders a parameter sweep: one line per knob combination
// with the WIPS summarized across its replicates.
func PrintSweep(w io.Writer, res *SweepResult) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\tmean WIPS\tσ\t95%% CI\n", strings.Join(res.Axes, "\t"))
	for i := 0; i < len(res.Rows); i += res.Replicates {
		vals := make([]float64, 0, res.Replicates)
		for r := 0; r < res.Replicates; r++ {
			vals = append(vals, res.Rows[i+r].WIPS)
		}
		s := stats.Summarize(vals)
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t±%.1f\n",
			strings.Join(res.Rows[i].Values, "\t"), s.Mean, s.StdDev, s.CI95)
	}
	tw.Flush()
	fmt.Fprintf(w, "(%d replicates per point under common random numbers; workload %v)\n",
		res.Replicates, res.Workload)
}

// PrintTunedSweep renders a tuned sweep: one line per knob combination
// comparing the default and tuned arms with the paired gain and its
// confidence interval — where the gain interval excludes zero, tuning
// pays (or costs) significantly at that grid point.
func PrintTunedSweep(w io.Writer, res *TunedSweepResult) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\tdefault WIPS\ttuned WIPS\tgain (95%% CI)\trel gain\n", strings.Join(res.Axes, "\t"))
	for _, cell := range res.Cells {
		fmt.Fprintf(tw, "%s\t%.1f ± %.1f\t%.1f ± %.1f\t%+.1f ±%.1f\t%+.1f%% ±%.1f%%\n",
			strings.Join(cell.Values, "\t"),
			cell.Default.Mean, cell.Default.StdDev,
			cell.Tuned.Mean, cell.Tuned.StdDev,
			cell.Gain.Mean, cell.Gain.CI95,
			100*cell.RelGain.Mean, 100*cell.RelGain.CI95)
	}
	tw.Flush()
	fmt.Fprintf(w, "(%d replicates per point, paired under common random numbers; %d tuning + %d evaluation iterations per arm; workload %v)\n",
		res.Replicates, res.TuneIters, res.Iters, res.Workload)
}

// PrintFigure7Replicated renders a replicated reconfiguration run: the
// per-iteration WIPS summarized across replicates and the before/after
// jump over the replicates that reconfigured.
func PrintFigure7Replicated(w io.Writer, res *Figure7Replicated) {
	fmt.Fprintf(w, "iteration\tmean WIPS\tσ\t95%% CI\n")
	for i, s := range res.WIPS {
		fmt.Fprintf(w, "%d\t%.1f\t%.1f\t±%.1f\n", i+1, s.Mean, s.StdDev, s.CI95)
	}
	fmt.Fprintf(w, "replicates that reconfigured: %d of %d\n", res.Moved, res.Replicates)
	for r, d := range res.Decisions {
		if d != "" {
			fmt.Fprintf(w, "  replicate %d: %s\n", r, d)
		}
	}
	if res.Moved > 0 {
		fmt.Fprintf(w, "throughput before move: %.1f ± %.1f WIPS, after: %.1f ± %.1f WIPS (%+.0f%% ±%.0f%%; paper: +62%%/+70%%)\n",
			res.Before.Mean, res.Before.StdDev, res.After.Mean, res.After.StdDev,
			100*res.Improvement.Mean, 100*res.Improvement.CI95)
	} else {
		fmt.Fprintln(w, "no replicate triggered a reconfiguration")
	}
}

// PrintFigure7 renders a reconfiguration run.
func PrintFigure7(w io.Writer, res *Figure7Result) {
	fmt.Fprintf(w, "iteration\tlayout\tWIPS\n")
	for i, v := range res.WIPS {
		mark := ""
		if i == res.MovedAt {
			mark = "  <- reconfiguration: " + res.Decision.String()
		}
		fmt.Fprintf(w, "%d\t%s\t%.1f%s\n", i+1, res.Layouts[i], v, mark)
	}
	if res.Moved {
		fmt.Fprintf(w, "throughput before move: %.1f WIPS, after: %.1f WIPS (%+.0f%%; paper: +62%%/+70%%)\n",
			res.Before, res.After, 100*res.Improvement)
	} else {
		fmt.Fprintln(w, "no reconfiguration was triggered")
	}
}

// PrintConfig renders a tier configuration as sorted name=value pairs.
func PrintConfig(w io.Writer, tier string, values map[string]int64) {
	names := make([]string, 0, len(values))
	for n := range values {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "[%s]\n", tier)
	for _, n := range names {
		fmt.Fprintf(w, "  %s = %d\n", n, values[n])
	}
}
