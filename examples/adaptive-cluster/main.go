// Adaptive cluster: the complete Active Harmony loop from §IV of the
// paper — parameter tuning every iteration and, at a lower frequency, the
// automatic reconfiguration check. The cluster starts mis-provisioned
// (2 proxies, 4 application servers) under a browsing workload; the tuner
// improves the parameters it can, and the reconfiguration algorithm fixes
// what parameters cannot: the tier imbalance.
//
// Run with:
//
//	go run ./examples/adaptive-cluster
package main

import (
	"fmt"

	"webharmony"
)

func main() {
	cfg := webharmony.QuickLab()
	cfg.ProxyNodes, cfg.AppNodes, cfg.DBNodes = 2, 4, 1
	cfg.Browsers = 600
	cfg.Warm = 12
	cfg.Seed = 3

	lab := webharmony.NewLab(cfg, webharmony.Browsing)
	fmt.Printf("starting layout: %s (proxy/app/db), browsing workload\n\n", lab.Sys.Cluster.Layout())

	res := webharmony.RunAdaptive(lab, 24, webharmony.AdaptiveOptions{
		Strategy:      webharmony.StrategyDuplication,
		Tuner:         webharmony.TunerOptions{Seed: 3},
		ReconfigEvery: 8,
		MaxMoves:      1,
	})

	for i, w := range res.WIPS {
		marker := ""
		for _, mv := range res.Moves {
			if mv.Iteration == i {
				marker = "   <- " + mv.Decision.String()
			}
		}
		fmt.Printf("iter %2d  layout %s  %6.1f WIPS%s\n", i+1, res.Layouts[i], w, marker)
	}

	if len(res.Moves) == 0 {
		fmt.Println("\nno reconfiguration was needed")
		return
	}
	fmt.Printf("\nthe reconfiguration algorithm executed: %v\n", res.Moves[0].Decision)
	fmt.Println("parameter tuning continued on the new layout without stopping the service.")
}
