// Remote tuning over the Active Harmony wire protocol: this example plays
// both sides — it starts an in-process tuning server (the same code as
// cmd/harmonyd) and a "legacy application" client whose two knobs (worker
// threads and a cache size) it cannot model, only measure. The client
// registers the knobs, then loops fetch-configuration / measure / report,
// exactly like the paper's modified Squid and Tomcat.
//
// Run with:
//
//	go run ./examples/remote-tuning
package main

import (
	"fmt"
	"log"
	"math"

	"webharmony/internal/hproto"
	"webharmony/internal/param"
)

// appPerformance is the hidden response surface of the "application":
// throughput peaks at 48 worker threads and a 192 MB cache, with a penalty
// when threads × cache overcommits memory.
func appPerformance(threads, cacheMB int64) float64 {
	t := float64(threads)
	c := float64(cacheMB)
	perf := 500 - math.Abs(t-48)*3 - math.Abs(c-192)*0.5
	if mem := t*4 + c; mem > 512 { // thrashing
		perf -= (mem - 512) * 2
	}
	return perf
}

func main() {
	srv, err := hproto.NewServer("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("tuning server listening on %s\n", srv.Addr())

	client, err := hproto.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	defs := []param.Def{
		{Name: "worker_threads", Min: 1, Max: 256, Default: 16, Step: 1},
		{Name: "cache_mb", Min: 16, Max: 1024, Default: 64, Step: 16},
	}
	if err := client.Register("legacy-app", defs, "nelder-mead", 11); err != nil {
		log.Fatal(err)
	}

	defaultPerf := appPerformance(16, 64)
	fmt.Printf("default configuration: threads=16 cache=64MB → %.1f req/s\n\n", defaultPerf)

	for i := 1; i <= 60; i++ {
		_, values, err := client.Next("legacy-app")
		if err != nil {
			log.Fatal(err)
		}
		perf := appPerformance(values["worker_threads"], values["cache_mb"])
		if err := client.Report("legacy-app", perf); err != nil {
			log.Fatal(err)
		}
		if i%10 == 0 {
			fmt.Printf("iteration %2d: threads=%-3d cache=%-4dMB → %.1f req/s\n",
				i, values["worker_threads"], values["cache_mb"], perf)
		}
	}

	cfg, perf, have, err := client.Best("legacy-app")
	if err != nil || !have {
		log.Fatalf("no best configuration: %v", err)
	}
	fmt.Printf("\nbest after 60 iterations: threads=%d cache=%dMB → %.1f req/s (%+.0f%% vs default)\n",
		cfg[0], cfg[1], perf, 100*(perf-defaultPerf)/defaultPerf)
}
