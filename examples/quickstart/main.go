// Quickstart: tune the simulated TPC-W cluster for the shopping mix and
// compare against the default configuration.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"webharmony"
)

func main() {
	cfg := webharmony.QuickLab() // 1 proxy / 1 app / 1 db, short windows
	cfg.Seed = 42

	fmt.Println("Tuning the shopping workload for 40 iterations...")
	res := webharmony.TuneWorkload(cfg, webharmony.Shopping, 40, 6,
		webharmony.TunerOptions{Seed: 42})

	webharmony.PrintSection3A(os.Stdout, res)

	fmt.Println("\nBest per-tier configurations found:")
	lab := webharmony.NewLab(cfg, webharmony.Shopping)
	for _, spec := range lab.Tiers() {
		for tier, c := range res.BestConfigs {
			if tier.String() == spec.Name {
				webharmony.PrintConfig(os.Stdout, spec.Name, c.Map(spec.Space))
			}
		}
	}
}
