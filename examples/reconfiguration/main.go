// Automatic cluster reconfiguration (the Figure 7 scenario): a cluster
// provisioned with 4 proxy nodes and 2 application nodes faces a workload
// that turns from browsing to ordering. Parameter tuning alone cannot fix
// the tier imbalance; the §IV algorithm notices the overloaded application
// tier and the idle proxies, and moves a node across tiers — without
// taking the service down.
//
// Run with:
//
//	go run ./examples/reconfiguration
package main

import (
	"fmt"
	"os"

	"webharmony"
)

func main() {
	cfg := webharmony.QuickLab()
	cfg.Browsers = 600 // a 7-node cluster serves a larger population
	cfg.Seed = 3

	fmt.Println("Variant (a): 4 proxies / 2 app servers, browsing → ordering")
	resA := webharmony.RunFigure7(cfg, webharmony.Figure7a())
	webharmony.PrintFigure7(os.Stdout, resA)

	fmt.Println("\nVariant (b): 2 proxies / 4 app servers, browsing workload")
	resB := webharmony.RunFigure7(cfg, webharmony.Figure7b())
	webharmony.PrintFigure7(os.Stdout, resB)

	fmt.Println("\nThe two cases are duals: whichever tier is starved receives a")
	fmt.Println("node from the over-provisioned one, as in the paper's Figure 7.")
}
