// Failure injection: the introduction of the paper motivates clusters by
// their ability to "tolerate partial failures". This example kills one of
// the two proxy nodes mid-run, shows the service degrading rather than
// dying, then recovers the node and shows throughput restored.
//
// Run with:
//
//	go run ./examples/failure-injection
package main

import (
	"fmt"

	"webharmony"
)

func main() {
	cfg := webharmony.QuickLab()
	cfg.ProxyNodes, cfg.AppNodes, cfg.DBNodes = 2, 2, 2
	cfg.Browsers = 300
	cfg.Seed = 21

	lab := webharmony.NewLab(cfg, webharmony.Shopping)
	fmt.Printf("cluster %s (proxy/app/db), shopping workload\n\n", lab.Sys.Cluster.Layout())

	window := func(label string) {
		m := lab.MeasureIteration(false)
		fmt.Printf("%-28s %6.1f WIPS  (errors %.1f%%, P90 response %.0f ms)\n",
			label, m.WIPS, 100*m.ErrorRate, 1000*m.RespP90)
	}

	window("healthy:")
	lab.Sys.FailNode(0)
	fmt.Println("\n-- node0 (proxy) fails --")
	window("one proxy down:")
	lab.Sys.RecoverNode(0)
	fmt.Println("\n-- node0 recovers (cold caches) --")
	window("recovered:")

	fmt.Println("\nThe service never stopped: the router sent traffic around the dead")
	fmt.Println("node, at reduced capacity, and recovery needed no reconfiguration.")
}
