// Workload adaptation (the Figure 5 scenario): the site's traffic changes
// from browsing to shopping to ordering while Active Harmony keeps tuning.
// Shift detection restarts the search when the environment moves, so the
// system recovers within a few iterations of each change.
//
// Run with:
//
//	go run ./examples/workload-adaptation
package main

import (
	"fmt"
	"os"

	"webharmony"
)

func main() {
	cfg := webharmony.QuickLab()
	cfg.Seed = 7

	seq := []webharmony.Workload{
		webharmony.Browsing, webharmony.Shopping, webharmony.Ordering,
	}
	fmt.Println("Running 3 workload phases of 15 tuning iterations each...")
	res := webharmony.RunFigure5(cfg, seq, 15, 3, webharmony.TunerOptions{
		Seed:        7,
		ShiftFactor: 0.25, // restart the search on a >25% performance shift
	})

	webharmony.PrintFigure5(os.Stdout, res)

	fmt.Println("\nThe tuner needs only a few iterations to re-adapt after each")
	fmt.Println("workload change — faster than any administrator could retune by hand.")
}
