#!/usr/bin/env bash
# check_coverage.sh [profile-out]
#
# Runs `go test -short -cover` over the module, optionally writing a
# merged coverage profile to the given path, and fails if any package
# listed in scripts/coverage_floors.txt reports statement coverage below
# its floor. Packages without tests (cmd/tpcwgen, the examples) are
# intentionally absent from the floors file.
set -euo pipefail
cd "$(dirname "$0")/.."

floors=scripts/coverage_floors.txt
profile=${1:-}

args=(test -short -count=1 -cover)
if [ -n "$profile" ]; then
  args+=("-coverprofile=$profile")
fi
out=$(go "${args[@]}" ./...)
echo "$out"

fail=0
while read -r pkg floor; do
  case "$pkg" in ''|\#*) continue ;; esac
  line=$(echo "$out" | grep -E "^ok[[:space:]]+$pkg[[:space:]]" || true)
  if [ -z "$line" ]; then
    echo "FAIL coverage: no test result for $pkg (package removed? update $floors)" >&2
    fail=1
    continue
  fi
  pct=$(echo "$line" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
  if [ -z "$pct" ]; then
    echo "FAIL coverage: no coverage figure for $pkg in: $line" >&2
    fail=1
    continue
  fi
  if ! awk -v p="$pct" -v f="$floor" 'BEGIN{exit !(p+0 >= f+0)}'; then
    echo "FAIL coverage: $pkg at ${pct}% is below its ${floor}% floor" >&2
    fail=1
  fi
done < "$floors"

if [ "$fail" -ne 0 ]; then
  echo "coverage check failed; floors are in $floors" >&2
  exit 1
fi
echo "coverage check passed (floors: $floors)"
