#!/usr/bin/env bash
# check_bench.sh [bench-log]
#
# Allocation regression gate. Reads a `go test -bench ... -benchmem` log
# (or produces one itself when no argument is given) and fails if any
# benchmark pinned in scripts/bench_baseline.txt reports more than 10%
# more allocs/op than its recorded baseline. Allocation counts for the
# deterministic simulation benchmarks don't vary with machine speed, so
# a trip means the code really did start allocating more — update the
# baseline only in the PR that deliberately changes the cost.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=scripts/bench_baseline.txt
log=${1:-}

if [ -n "$log" ]; then
  out=$(cat "$log")
else
  out=$(go test -run '^$' -bench 'BenchmarkFigure5Responsiveness' \
    -benchtime 1x -benchmem .)
  echo "$out"
fi

fail=0
while read -r name base; do
  case "$name" in ''|\#*) continue ;; esac
  # Benchmark result lines look like:
  #   BenchmarkFoo[-8]  1  123 ns/op  456 B/op  789 allocs/op
  line=$(echo "$out" | grep -E "^$name(-[0-9]+)?[[:space:]]" || true)
  if [ -z "$line" ]; then
    echo "FAIL bench: no result for $name in log (run with -benchmem?)" >&2
    fail=1
    continue
  fi
  allocs=$(echo "$line" | sed -n 's/.*[[:space:]]\([0-9]*\) allocs\/op.*/\1/p')
  if [ -z "$allocs" ]; then
    echo "FAIL bench: no allocs/op figure for $name in: $line" >&2
    fail=1
    continue
  fi
  if ! awk -v a="$allocs" -v b="$base" 'BEGIN{exit !(a <= b * 1.10)}'; then
    echo "FAIL bench: $name at $allocs allocs/op exceeds baseline $base by >10%" >&2
    fail=1
  else
    echo "ok bench: $name at $allocs allocs/op (baseline $base, ceiling +10%)"
  fi
done < "$baseline"

if [ "$fail" -ne 0 ]; then
  echo "bench check failed; baselines are in $baseline" >&2
  exit 1
fi
echo "bench check passed (baselines: $baseline)"
