#!/usr/bin/env bash
# check_bench.sh [bench-log]
#
# Benchmark regression gate + machine-readable trajectory. Reads a
# `go test -bench ... -benchmem` log (or produces one itself when no
# argument is given) and:
#
#   1. fails if any benchmark pinned in scripts/bench_baseline.txt
#      reports more than 10% more allocs/op than its recorded baseline —
#      allocation counts for the deterministic simulation benchmarks
#      don't vary with machine speed, so a trip means the code really
#      did start allocating more;
#   2. fails if a pinned ns/op baseline is exceeded by more than 2.0x —
#      a deliberately loose margin that absorbs machine-speed spread
#      across CI runners while still catching order-of-magnitude
#      regressions of the event-loop and pooled-pipeline wins;
#   3. writes every benchmark result in the log to BENCH_10.json
#      (override the path with $BENCH_JSON) as
#      `name -> {ns_op, allocs_op, bytes_op}`, so the perf history is
#      tracked across PRs, not just gated.
#
# Update baselines only in the PR that deliberately changes the cost.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=scripts/bench_baseline.txt
json_out=${BENCH_JSON:-BENCH_10.json}
log=${1:-}

if [ -n "$log" ]; then
  out=$(cat "$log")
else
  out=$(go test -run '^$' \
    -bench 'BenchmarkFigure5Responsiveness|BenchmarkFigure4Memoized|BenchmarkTable4Memoized' \
    -benchtime 1x -benchmem .)
  echo "$out"
fi

# Benchmark result lines look like:
#   BenchmarkFoo[-8]  1  123 ns/op [4.0 extra_metric]  456 B/op  789 allocs/op
# Emit the machine-readable trajectory first so it exists even when a
# gate below trips (CI uploads it either way).
echo "$out" | awk '
  BEGIN { print "{"; n = 0 }
  /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
      if ($i == "ns/op") ns = $(i-1)
      if ($i == "B/op") bytes = $(i-1)
      if ($i == "allocs/op") allocs = $(i-1)
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "  \"%s\": {\"ns_op\": %s, \"allocs_op\": %s, \"bytes_op\": %s}", \
      name, ns, (allocs == "" ? "null" : allocs), (bytes == "" ? "null" : bytes)
  }
  END { if (n) printf "\n"; print "}" }
' > "$json_out"
echo "bench trajectory: $(grep -c 'ns_op' "$json_out") results -> $json_out"

fail=0
while read -r name base base_ns; do
  case "$name" in ''|\#*) continue ;; esac
  line=$(echo "$out" | grep -E "^$name(-[0-9]+)?[[:space:]]" || true)
  if [ -z "$line" ]; then
    echo "FAIL bench: no result for $name in log (run with -benchmem?)" >&2
    fail=1
    continue
  fi
  allocs=$(echo "$line" | sed -n 's/.*[[:space:]]\([0-9]*\) allocs\/op.*/\1/p')
  if [ -z "$allocs" ]; then
    echo "FAIL bench: no allocs/op figure for $name in: $line" >&2
    fail=1
    continue
  fi
  if ! awk -v a="$allocs" -v b="$base" 'BEGIN{exit !(a <= b * 1.10)}'; then
    echo "FAIL bench: $name at $allocs allocs/op exceeds baseline $base by >10%" >&2
    fail=1
  else
    echo "ok bench: $name at $allocs allocs/op (baseline $base, ceiling +10%)"
  fi
  if [ -n "$base_ns" ]; then
    ns=$(echo "$line" | sed -n 's/.*[[:space:]]\([0-9][0-9]*\) ns\/op.*/\1/p')
    if [ -z "$ns" ]; then
      echo "FAIL bench: no ns/op figure for $name in: $line" >&2
      fail=1
    elif ! awk -v a="$ns" -v b="$base_ns" 'BEGIN{exit !(a <= b * 2.0)}'; then
      echo "FAIL bench: $name at $ns ns/op exceeds baseline $base_ns by >2.0x" >&2
      fail=1
    else
      echo "ok bench: $name at $ns ns/op (baseline $base_ns, ceiling 2.0x)"
    fi
  fi
done < "$baseline"

if [ "$fail" -ne 0 ]; then
  echo "bench check failed; baselines are in $baseline" >&2
  exit 1
fi
echo "bench check passed (baselines: $baseline)"
