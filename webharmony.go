// Package webharmony reproduces "Automated Cluster-Based Web Service
// Performance Tuning" (Chung & Hollingsworth, HPDC 2004): the Active
// Harmony automated tuning system applied to a simulated cluster-based
// TPC-W e-commerce service.
//
// The package is a facade over the building blocks in internal/:
//
//   - a deterministic discrete-event simulation of a multi-tier web
//     cluster (Squid-like proxy caches, Tomcat-like application servers,
//     MySQL-like databases on 10 paper-spec machines);
//   - the TPC-W workload (Table 1 mixes, emulated browsers, WIPS metrics);
//   - the Active Harmony tuning server (an ask/tell Nelder-Mead simplex
//     adapted to bounded integer parameter lattices), including the
//     cluster-scale strategies of §III.B (parameter duplication and
//     parameter partitioning) and a TCP wire protocol (cmd/harmonyd);
//   - the automatic cluster reconfiguration algorithm of §IV.
//
// Each experiment of the paper's evaluation has a runner: TuneWorkload
// (§III.A), RunFigure4/Table 3, RunFigure5, RunTable4 and RunFigure7, plus
// printers that render the corresponding tables. See EXPERIMENTS.md for
// paper-vs-measured results.
package webharmony

import (
	"io"

	"webharmony/internal/core"
	"webharmony/internal/evalcache"
	"webharmony/internal/harmony"
	"webharmony/internal/param"
	"webharmony/internal/telemetry"
	"webharmony/internal/tpcw"
)

// Workload selects a TPC-W mix (Table 1).
type Workload = tpcw.Workload

// The three TPC-W workload mixes.
const (
	Browsing = tpcw.Browsing
	Shopping = tpcw.Shopping
	Ordering = tpcw.Ordering
)

// Workloads lists the three mixes in Table 1 order.
func Workloads() []Workload { return tpcw.Workloads() }

// LabConfig describes an experimental setup: cluster shape, client load,
// iteration windows.
type LabConfig = core.LabConfig

// TelemetryCollector gathers the deterministic tuner step trace and
// per-tier metrics timeseries of a run. Assign one to LabConfig.Telemetry
// (see WithTelemetryUnit for naming the experiment units), run experiments,
// then WriteTrace/WriteMetrics the collected data.
type TelemetryCollector = telemetry.Collector

// TelemetryEvent is one trace record (a tuner step, restart or node move).
type TelemetryEvent = telemetry.Event

// TelemetrySample is one per-tier metrics observation.
type TelemetrySample = telemetry.Sample

// TelemetryEvalStats is the evaluation-cache counter set as the telemetry
// layer carries it; convert an EvalCacheStats with a plain conversion.
type TelemetryEvalStats = telemetry.EvalStats

// NewTelemetryCollector creates an empty telemetry collector.
func NewTelemetryCollector() *TelemetryCollector { return telemetry.NewCollector() }

// EvalCache is the content-addressed memo table for hermetic evaluations.
// Assign one to LabConfig.EvalCache and the sequential experiment runners
// (TuneWorkload, RunFigure4, RunTable4, RunFigure5, the sweeps) skip
// re-simulating configurations they have already measured; results are
// byte-identical with and without the cache (DESIGN.md §10).
type EvalCache = evalcache.Cache

// EvalCacheStats is the cache's deterministic counter set.
type EvalCacheStats = evalcache.Stats

// EvalCacheSnapshot is the serializable image of an EvalCache, for
// cross-run warm starts (webtune -evalcache).
type EvalCacheSnapshot = evalcache.Snapshot

// NewEvalCache creates an empty evaluation cache.
func NewEvalCache() *EvalCache { return evalcache.New() }

// LoadEvalCacheSnapshot parses a snapshot previously produced by
// EvalCacheSnapshot.Marshal.
func LoadEvalCacheSnapshot(data []byte) (*EvalCacheSnapshot, error) {
	return evalcache.LoadSnapshot(data)
}

// WriteEvalStats writes the cache counters as a fixed-layout report.
func WriteEvalStats(w io.Writer, s EvalCacheStats) error {
	return telemetry.WriteEvalStats(w, telemetry.EvalStats(s))
}

// PaperLab returns the paper's full-size setup (100/1000/100 s windows).
func PaperLab() LabConfig { return core.PaperLab() }

// StandardLab returns the benchmark-harness setup (shortened windows).
func StandardLab() LabConfig { return core.StandardLab() }

// QuickLab returns a scaled-down setup for tests and demos.
func QuickLab() LabConfig { return core.QuickLab() }

// TinyLab returns a deliberately undersized setup for byte-level golden
// and determinism tests (webtune -scale tiny); its numbers mean nothing.
func TinyLab() LabConfig { return core.TinyLab() }

// TunerOptions configures the Active Harmony search (algorithm, seed,
// extreme-value guard, workload-shift detection).
type TunerOptions = harmony.Options

// Tuning algorithms.
const (
	AlgoNelderMead = harmony.AlgoNelderMead
	AlgoRandom     = harmony.AlgoRandom
	AlgoCoordinate = harmony.AlgoCoordinate
	AlgoAnnealing  = harmony.AlgoAnnealing
)

// ParamDef describes one tunable parameter.
type ParamDef = param.Def

// Config is a point in a parameter space.
type Config = param.Config

// Lab is an instantiated simulated cluster + TPC-W client population; it
// implements the tuning Target interface and exposes the underlying
// simulator for custom experiments.
type Lab = core.Lab

// NewLab builds a lab for the given setup and workload.
func NewLab(cfg LabConfig, w Workload) *Lab { return core.NewLab(cfg, w) }

// SingleWorkloadResult is the §III.A experiment output.
type SingleWorkloadResult = core.SingleWorkloadResult

// TuneWorkload runs the §III.A single-workload tuning experiment.
func TuneWorkload(cfg LabConfig, w Workload, iters, baselineIters int, opts TunerOptions) *SingleWorkloadResult {
	return core.TuneWorkload(cfg, w, iters, baselineIters, opts)
}

// Figure4Result is the cross-workload configuration matrix (Figure 4 and
// Table 3).
type Figure4Result = core.Figure4Result

// RunFigure4 reproduces Figure 4 and Table 3. Its three tuning runs and
// nine evaluation cells fan out over cfg.Workers parallel workers with
// bit-for-bit identical results at any worker count.
func RunFigure4(cfg LabConfig, iters, evalIters int, opts TunerOptions) *Figure4Result {
	return core.RunFigure4(cfg, iters, evalIters, opts)
}

// Figure4Replicated is the Figure 4 matrix with every cell summarized
// across R replicates (mean ± σ ± Student-t 95% CI).
type Figure4Replicated = core.Figure4Replicated

// RunFigure4Replicated reruns Figure 4 R times on independently seeded
// labs and tuners and summarizes every matrix cell, default column and
// native improvement across the replicates. All units fan out over
// cfg.Workers with bit-for-bit identical output at any worker count.
func RunFigure4Replicated(cfg LabConfig, iters, evalIters, R int, opts TunerOptions) *Figure4Replicated {
	return core.RunFigure4Replicated(cfg, iters, evalIters, R, opts)
}

// Figure5Result is the workload-responsiveness experiment output.
type Figure5Result = core.Figure5Result

// RunFigure5 reproduces Figure 5: tuning under a workload that changes
// every phaseLen iterations.
func RunFigure5(cfg LabConfig, seq []Workload, phaseLen, phases int, opts TunerOptions) *Figure5Result {
	return core.RunFigure5(cfg, seq, phaseLen, phases, opts)
}

// Table4Result compares the cluster tuning methods of §III.B.
type Table4Result = core.Table4Result

// RunTable4 reproduces Table 4 on a 2/2/2 cluster with two work lines.
// The baseline and the four method runs fan out over cfg.Workers.
func RunTable4(cfg LabConfig, iters int, opts TunerOptions) *Table4Result {
	return core.RunTable4(cfg, iters, opts)
}

// Table4Replicated is the Table 4 comparison with R replicates per
// method: mean ± σ and a 95% confidence interval across replicates.
type Table4Replicated = core.Table4Replicated

// Table4MethodStats is one row of the replicated Table 4.
type Table4MethodStats = core.Table4MethodStats

// RunTable4Replicated reruns the Table 4 comparison R times on
// independently seeded labs and tuners (seeds derived per replicate via
// ReplicateSeed) and summarizes each method across the replicates. The
// R×5 units fan out over cfg.Workers with bit-for-bit identical output at
// any worker count.
func RunTable4Replicated(cfg LabConfig, iters, R int, opts TunerOptions) *Table4Replicated {
	return core.RunTable4Replicated(cfg, iters, R, opts)
}

// Replicate runs R independent replicates of an experiment unit, fanned
// out over cfg.Workers; replicate r runs under seed ReplicateSeed(cfg.Seed, r),
// so its result depends only on (cfg, r) — not on R, the worker count or
// scheduling. See core.Replicate for the full determinism contract.
func Replicate[T any](cfg LabConfig, R int, unit func(cfg LabConfig, r int) T) []T {
	return core.Replicate(cfg, R, unit)
}

// ReplicateSeed is the pure per-replicate seed derivation Replicate uses
// (rng.TaskSeed), exported so units can derive aligned secondary seeds.
func ReplicateSeed(base uint64, r int) uint64 { return core.ReplicateSeed(base, r) }

// SweepAxis is one knob of a parameter sweep (browsers, scale, think
// time, cluster shape, or a custom Apply function).
type SweepAxis = core.SweepAxis

// Axis constructors for RunSweep grids.
var (
	BrowsersAxis = core.BrowsersAxis
	ScaleAxis    = core.ScaleAxis
	ThinkAxis    = core.ThinkAxis
	ShapeAxis    = core.ShapeAxis
)

// SweepResult is the long-form output of RunSweep: one row per
// (knob-combination, replicate).
type SweepResult = core.SweepResult

// SweepRow is one observation of a sweep.
type SweepRow = core.SweepRow

// RunSweep measures the default configuration over the grid spanned by
// axes with R replicates per combination, mapping the response surface
// around the paper's operating point. Combinations share per-replicate
// seeds (common random numbers), and all points fan out over cfg.Workers
// with bit-for-bit identical output at any worker count.
func RunSweep(cfg LabConfig, w Workload, axes []SweepAxis, R, iters int) *SweepResult {
	return core.RunSweep(cfg, w, axes, R, iters)
}

// ParseSweepSpec parses webtune's -sweep grammar
// ("browsers=140,250;think=0.3,0.6;shape=1/1/1,2/2/2") into sweep axes.
func ParseSweepSpec(spec string) ([]SweepAxis, error) { return core.ParseSweepSpec(spec) }

// TunedSweepResult is the output of RunTunedSweep: paired long-form rows
// plus per-cell aggregates (mean ± σ ± 95% CI for both arms and the
// paired gain).
type TunedSweepResult = core.TunedSweepResult

// TunedSweepRow is one paired (default, tuned) observation.
type TunedSweepRow = core.TunedSweepRow

// TunedSweepCell aggregates one knob combination across replicates.
type TunedSweepCell = core.TunedSweepCell

// RunTunedSweep runs, for every grid point, R replicated tuning sessions
// alongside R default-configuration replicates (paired under common
// random numbers) and reports where tuning pays: default vs tuned WIPS
// with absolute/relative gain and Student-t 95% confidence intervals per
// cell. All units fan out over cfg.Workers with bit-for-bit identical
// output at any worker count.
func RunTunedSweep(cfg LabConfig, w Workload, axes []SweepAxis, R, iters, tuneIters int, opts TunerOptions) *TunedSweepResult {
	return core.RunTunedSweep(cfg, w, axes, R, iters, tuneIters, opts)
}

// Figure7Result is one automatic-reconfiguration experiment output.
type Figure7Result = core.Figure7Result

// Figure7Options selects the reconfiguration experiment variant.
type Figure7Options = core.Figure7Options

// Figure7a returns the §IV variant (a): 4 proxy + 2 app nodes, workload
// changing from browsing to ordering.
func Figure7a() Figure7Options { return core.Figure7a() }

// Figure7b returns variant (b): 2 proxy + 4 app nodes under browsing.
func Figure7b() Figure7Options { return core.Figure7b() }

// RunFigure7 reproduces a Figure 7 reconfiguration experiment.
func RunFigure7(cfg LabConfig, fo Figure7Options) *Figure7Result {
	return core.RunFigure7(cfg, fo, nil)
}

// RunFigure7Variants runs several Figure 7 variants (e.g. Figure7a and
// Figure7b), fanned out over cfg.Workers parallel workers; element i of
// the result corresponds to fos[i], identical to running each variant
// alone.
func RunFigure7Variants(cfg LabConfig, fos ...Figure7Options) []*Figure7Result {
	return core.RunFigure7Variants(cfg, nil, fos...)
}

// Figure7Replicated is a Figure 7 reconfiguration experiment with R
// replicates: per-iteration WIPS summaries and the before/after jump
// across the replicates that reconfigured.
type Figure7Replicated = core.Figure7Replicated

// RunFigure7Replicated reruns a Figure 7 variant R times on independently
// seeded labs and summarizes every iteration across the replicates. The
// replicates fan out over cfg.Workers with bit-for-bit identical output
// at any worker count.
func RunFigure7Replicated(cfg LabConfig, fo Figure7Options, R int) *Figure7Replicated {
	return core.RunFigure7Replicated(cfg, fo, R)
}

// ForEach runs n independent tasks, task(0) … task(n-1), on a bounded
// pool of workers goroutines (workers <= 0 selects GOMAXPROCS). It is the
// execution layer behind the experiment runners' fan-outs, exported for
// custom experiments; see the determinism contract on core.ForEach: tasks
// must own their state and write only to index-addressed result slots.
func ForEach(workers, n int, task func(i int)) { core.ForEach(workers, n, task) }

// Tuning strategies for cluster-scale tuning (§III.B).
const (
	StrategyDefault      = harmony.StrategyDefault
	StrategyDuplication  = harmony.StrategyDuplication
	StrategyPartitioning = harmony.StrategyPartitioning
	StrategyHybrid       = harmony.StrategyHybrid
)

// AdaptiveOptions configures the combined tuning + reconfiguration loop.
type AdaptiveOptions = core.AdaptiveOptions

// AdaptiveResult is the output of RunAdaptive.
type AdaptiveResult = core.AdaptiveResult

// RunAdaptive runs the full Active Harmony loop of §IV on a lab:
// parameter tuning every iteration and the reconfiguration check at a
// lower frequency, moving nodes between tiers when a tier is overloaded
// while another sits idle.
func RunAdaptive(lab *Lab, iters int, opts AdaptiveOptions) *AdaptiveResult {
	return core.RunAdaptive(lab, iters, opts)
}

// RunAdaptiveReplicated runs R independent replicates of the adaptive
// loop in parallel (each on its own lab seeded per replicate), replacing
// a sequential replication loop; element r depends only on (cfg, r).
func RunAdaptiveReplicated(cfg LabConfig, w Workload, iters, R int, opts AdaptiveOptions) []*AdaptiveResult {
	return core.RunAdaptiveReplicated(cfg, w, iters, R, opts)
}
