package webharmony

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"testing"
	"time"
)

// TestExamplesBuildAndRun builds every program under examples/ and runs
// it to completion, so the example binaries — which no other test
// compiles or executes — stay building and exiting cleanly as the API
// underneath them moves. The examples are demos, not unit tests, so the
// only contract checked is: builds, runs, exit code 0, some output.
// Skipped under -short (the slowest example takes ~25s).
func TestExamplesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are full simulation runs; skipped in -short mode")
	}
	goTool := filepath.Join(os.Getenv("GOROOT"), "bin", "go")
	if _, err := exec.LookPath(goTool); err != nil {
		goTool = "go"
		if _, err := exec.LookPath(goTool); err != nil {
			t.Skipf("go tool not available: %v", err)
		}
	}
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(filepath.Join(root, "examples"))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) < 6 {
		t.Fatalf("found %d example programs, want at least the 6 shipped ones: %v", len(names), names)
	}

	binDir := t.TempDir()
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(binDir, name)
			build := exec.Command(goTool, "build", "-o", bin, "./examples/"+name)
			build.Dir = root
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build failed: %v\n%s", err, out)
			}

			var stdout, stderr bytes.Buffer
			cmd := exec.Command(bin)
			cmd.Dir = root
			cmd.Stdout = &stdout
			cmd.Stderr = &stderr
			done := make(chan error, 1)
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			go func() { done <- cmd.Wait() }()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("example exited with %v\nstdout:\n%s\nstderr:\n%s", err, &stdout, &stderr)
				}
			case <-time.After(3 * time.Minute):
				cmd.Process.Kill()
				t.Fatalf("example did not finish within 3 minutes\nstdout so far:\n%s", &stdout)
			}
			if stdout.Len() == 0 {
				t.Error("example produced no output")
			}
		})
	}
}
